#pragma once

/// retscan v1 public surface — parallel orchestration layer.
///
/// The work-stealing thread pool and the shard-map-reduce campaign runner
/// the pooled backends are built on. A Session owns one runner and routes
/// CampaignSpec workloads through it automatically; include this directly
/// only to drive custom map-reduce workloads by hand. Same seed → same
/// shard plan → bit-identical merged results at any thread count.

#include "parallel/campaign_runner.hpp" // CampaignRunner, plan_shards, shard_seed, RunControls
#include "util/cancel.hpp"              // CancelToken, Cancelled, CampaignStatus
#include "util/failpoint.hpp"           // failpoint(), RETSCAN_FAILPOINTS harness
#include "util/journal.hpp"             // CampaignJournal checkpoint/resume
#include "util/thread_pool.hpp"         // ThreadPool
