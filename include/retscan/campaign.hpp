#pragma once

/// retscan v1 public surface — declarative campaigns.
///
/// One spec describes any of the library's statistical workloads —
/// validation campaigns, fault-injection campaigns, fault-coverage /
/// ATPG runs, transition-delay / bridging / sequential coverage
/// measurements, and manufacturing scan-test deliveries — with uniform
/// seed / threads / shard knobs, and `run(Session&, spec)` routes it to
/// the fastest backend the session can offer (or exactly the backend you
/// pin). Same seed → bit-identical results, at any thread count, on any
/// backend that has a legacy equivalent (asserted by tests/test_api.cpp).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "atpg/atpg.hpp"
#include "atpg/scan_test.hpp"
#include "core/protected_design.hpp"
#include "parallel/campaign_runner.hpp"
#include "testbench/harness.hpp"

namespace retscan {

class Session;

/// What the campaign measures.
enum class CampaignKind {
  Validation,    ///< Fig. 8 testbench: inject → detect/correct statistics
  Injection,     ///< validation driven by an electrical corruption model
  FaultCoverage, ///< ATPG + stuck-at fault simulation over the scan frame
  ScanTest,      ///< pattern delivery through the scan fabric, checked
  TransitionDelay,    ///< launch/capture pattern-pair transition-fault coverage
  Bridging,           ///< wired-AND/OR gate-input bridge coverage
  SequentialCoverage, ///< multi-cycle stuck-at coverage, no scan access
};

/// Execution strategy. `Auto` lets the session pick the fastest backend
/// that exists for the kind; the others pin it (useful for oracles and
/// perf baselines). Every backend produces the same statistics for the
/// same seed wherever an equivalence is defined (see tests/test_api.cpp).
enum class Backend {
  Auto,           ///< fastest available (usually PackedParallel)
  Reference,      ///< scalar oracle: one trial/pattern at a time
  Packed,         ///< 64-way bit-parallel lanes, one thread
  PackedParallel, ///< 64-way lanes × work-stealing thread pool
};

/// Which model tier a validation campaign runs on.
enum class ValidationTier {
  Behavioral, ///< bit-exact behavioral protectors (paper-scale, fast)
  Structural, ///< gate-level simulated ProtectedDesign (slow, exact)
};

/// How scan-test patterns reach the design. FullWidth applies only to
/// plain scanned netlists — in a ProtectedDesign the per-chain si ports
/// are superseded by the monitor feedback muxes, so Sessions (which always
/// wrap a ProtectedDesign) reject it with an explanatory error; drive
/// apply_scan_test on a pre-monitor netlist directly for that flow.
enum class ScanAccess {
  TestMode,  ///< narrow tsi/tso ports, Fig. 5(b) concatenation
  FullWidth, ///< per-chain si/so ports (pre-monitor netlists only)
};

/// Canonical spellings — exactly the values the spec-file format and the
/// `retscan` CLI accept ("validation", "packed-parallel", "rush-model", ...).
const char* to_string(CampaignKind kind);
const char* to_string(Backend backend);
const char* to_string(ValidationTier tier);
const char* to_string(ScanAccess access);
const char* to_string(InjectionMode mode);

/// Inverse of to_string; returns false (out untouched) on unknown text.
bool from_string(std::string_view text, CampaignKind& out);
bool from_string(std::string_view text, Backend& out);
bool from_string(std::string_view text, ValidationTier& out);
bool from_string(std::string_view text, ScanAccess& out);
bool from_string(std::string_view text, InjectionMode& out);

/// Options for Session::run_scan_test — the unified replacement for the
/// five legacy `apply_*scan_test*` overloads.
struct ScanTestOptions {
  ScanAccess access = ScanAccess::TestMode;
  Backend backend = Backend::Auto;
  /// PackedParallel: pattern count per pool shard (64-lane aligned).
  std::size_t patterns_per_shard = 256;
};

/// Declarative description of one campaign. Geometry (FIFO, chains, code)
/// comes from the Session the spec runs on; the spec holds only the
/// workload. Construct with designated initializers:
///
///   CampaignSpec spec{.kind = CampaignKind::Validation,
///                     .seed = 2024,
///                     .sequences = 200000};
///   CampaignResult result = run(session, spec);
struct CampaignSpec {
  CampaignKind kind = CampaignKind::Validation;
  Backend backend = Backend::Auto;
  /// Campaign master seed. Every backend derives its per-shard / injector
  /// streams from this one value (for FaultCoverage/ScanTest it overrides
  /// atpg.seed so one knob controls the whole run).
  std::uint64_t seed = 1;
  /// Worker threads for PackedParallel backends; 0 → the session's pool
  /// (RETSCAN_THREADS / hardware_concurrency).
  unsigned threads = 0;
  /// Trials (or fault-list entries) per pool shard; 0 → backend default.
  std::size_t shard_size = 0;

  // --- Validation / Injection ------------------------------------------
  /// Sleep/wake trial count. Must be > 0 for validation kinds.
  std::size_t sequences = 0;
  ValidationTier tier = ValidationTier::Behavioral;
  /// Settle schedule for gate-level simulation (sim/schedule.hpp): Sweep
  /// evaluates the full compiled stream every settle, Event runs the
  /// dirty-net worklist, Auto defers to RETSCAN_SCHEDULE and then to
  /// per-engine activity probing. Statistics are bit-identical under every
  /// schedule; only throughput differs. Explicit Event is rejected where no
  /// gate-level sweep exists to schedule (behavioral tier, Reference
  /// backend, non-validation kinds) — use Auto there.
  Schedule schedule = Schedule::Auto;
  InjectionMode mode = InjectionMode::SingleRandom;
  std::size_t burst_size = 4;
  std::size_t burst_spread = 2;
  /// Electrical model, used when mode == InjectionMode::RushModel.
  CorruptionParameters corruption{};
  RushParameters rush{};

  // --- FaultCoverage / ScanTest / TransitionDelay / Bridging -----------
  /// Pattern generation. TransitionDelay pairs consecutive patterns
  /// (pattern k launches, k+1 captures), so N patterns exercise N-1
  /// transitions; Bridging replays the same set per bridge.
  AtpgOptions atpg{};
  ScanAccess access = ScanAccess::TestMode;
  /// ScanTest PackedParallel: patterns per pool shard.
  std::size_t patterns_per_shard = 256;

  // --- SequentialCoverage ----------------------------------------------
  /// Clock cycles per random primary-input sequence; `sequences` (above)
  /// counts the sequences. Must be > 0 for sequential-coverage campaigns
  /// and 0 (unset) everywhere else — no other kind steps a clock.
  std::size_t cycles = 0;

  // --- Durability (validation kinds, sharded backends) -----------------
  /// Checkpoint journal path (`checkpoint =` spec key / `--checkpoint`):
  /// completed shards are appended as fixed-format CRC'd records via
  /// write-temp-then-atomic-rename, so an interrupted campaign loses at
  /// most the shards in flight. Empty = no checkpointing. Validation
  /// kinds on the sharded (Auto/PackedParallel) backends only.
  std::string checkpoint;
  /// Resume from `checkpoint` (`resume =` / `--resume`): the journal
  /// header is validated against the current spec/design/version
  /// fingerprint, completed shards are merged from the journal in shard
  /// order, and the rest run — the final CampaignResult is bit-identical
  /// to an uninterrupted run. Requires `checkpoint` to be set.
  bool resume = false;
  /// Wall-clock budget (`deadline_ms =` / `--deadline-ms`): once elapsed,
  /// shards not yet started are skipped and the result carries
  /// CampaignStatus::Timeout with the partial statistics (checkpointed if
  /// a journal is armed) instead of running forever. nullopt = no budget;
  /// an explicit 0 is rejected by validate().
  std::optional<std::uint64_t> deadline_ms;
};

/// Everything a campaign produced. Only the section matching `kind` is
/// populated; the execution-shape fields are always filled.
struct CampaignResult {
  CampaignKind kind = CampaignKind::Validation;
  Backend backend = Backend::Reference; ///< resolved strategy actually run
  /// Schedule the gate-level engines were asked to run (Auto means each
  /// engine probed its own activity; see `activity` for what that chose).
  Schedule schedule = Schedule::Sweep;
  unsigned threads = 1;
  std::size_t shard_count = 1;
  double seconds = 0.0; ///< wall-clock of the campaign body

  /// How the campaign ended (util/cancel.hpp). Complete unless a SIGINT /
  /// cancellation request or an expired deadline_ms stopped it early; then
  /// the statistics cover shards_completed of shard_count shards and
  /// passed() is false regardless of the verdict counters.
  CampaignStatus status = CampaignStatus::Complete;
  std::size_t shards_completed = 0;
  /// Shards merged from the checkpoint journal instead of rerun (--resume).
  std::size_t shards_resumed = 0;

  /// Activity telemetry from the gate-level engines (avg_dirty_fraction(),
  /// event_sweeps, full_sweep_fallbacks, ...) — why Auto chose what it
  /// chose. All-zero for behavioral campaigns and non-validation kinds.
  ScheduleTelemetry activity{};

  ValidationStats validation{}; ///< Validation / Injection
  AtpgResult atpg{};            ///< FaultCoverage / ScanTest / TransitionDelay / Bridging
  /// FaultCoverage / TransitionDelay / Bridging / SequentialCoverage —
  /// detected_by indexes patterns, pattern *pairs*, patterns, and random
  /// sequences respectively (see atpg/fault_models.hpp).
  FaultSimResult faults{};
  ScanTestResult scan_test{};   ///< ScanTest

  /// Kind-appropriate "nothing escaped" verdict: no silent corruptions
  /// (validation kinds), all deliveries matched (scan test), always true
  /// for pure coverage measurements.
  bool passed() const;
};

/// Reject unrunnable specs with an actionable message (thrown as
/// retscan::Error): zero trial counts, injection with nothing to inject,
/// backends that don't exist for the tier/access, sessions lacking the
/// golden model a validation campaign needs, bad shard sizes.
void validate(const CampaignSpec& spec, const Session& session);

/// The strategy Auto resolves to (after validate()) — exposed so tools can
/// report what would run without running it.
Backend resolve_backend(const CampaignSpec& spec, const Session& session);

/// Run the campaign on the session's design. Validates first; throws
/// retscan::Error on a bad spec.
CampaignResult run(Session& session, const CampaignSpec& spec);

/// Execution hooks for services embedding the campaign router — the
/// `retscan serve` daemon runs every job through these so concurrent
/// campaigns share one pool fairly and stay individually cancellable.
/// All optional; run(session, spec) is exactly run(session, spec, {}).
/// None of the hooks can change campaign statistics: same seed → same
/// results, hooked or not (asserted by tests/test_serve.cpp).
struct RunHooks {
  /// Shared campaign runner (pool + warm workspaces) to execute on,
  /// overriding both the session's runner and the spec's threads knob.
  parallel::CampaignRunner* runner = nullptr;
  /// Caller-owned cancel token polled by the shard loop. When the spec
  /// carries deadline_ms, run() arms it on this token. nullptr → run()
  /// uses a private token (global-cancel + deadline only).
  CancelToken* cancel = nullptr;
  /// Fair shard dispatcher (parallel/fair_scheduler.hpp) multiplexing this
  /// campaign with others on the same pool. Must wrap hooks.runner's pool.
  parallel::FairScheduler* scheduler = nullptr;
  /// Per-shard progress observer, (shards_done, shard_count); called from
  /// pool threads. Sharded validation kinds only.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// run() with service hooks — see RunHooks.
CampaignResult run(Session& session, const CampaignSpec& spec,
                   const RunHooks& hooks);

/// FNV-1a hash binding a checkpoint journal to one exact campaign: the
/// library version, the spec's statistics-shaping fields (kind, tier,
/// resolved schedule, seed, sequences, injection/corruption parameters) and
/// the session's design geometry (FIFO shape + protection architecture).
/// Two specs with equal fingerprints produce bit-identical shard outcomes,
/// which is what makes merging a journal from one into the other safe.
std::uint64_t campaign_fingerprint(const CampaignSpec& spec, const Session& session);

// --- campaign spec files (the `retscan run campaign.spec` format) --------

/// A parsed spec file: the design geometry plus the campaign. The textual
/// format is `key = value` lines with '#' comments; see
/// docs/spec-reference.md for the full key reference.
struct SpecFile {
  FifoSpec fifo{32, 32};
  ProtectionConfig protection;
  CampaignSpec campaign;
  /// `netlist = <path.v>`: import a structural-Verilog netlist instead of
  /// generating the golden FIFO. load_spec_file resolves a relative path
  /// against the spec file's directory, so specs can ship next to their
  /// circuits. Empty = FIFO generator (the fifo.* keys).
  std::string netlist_file;
};

/// The base netlist a spec describes, before protection: the imported
/// Verilog file when `netlist =` is set, the generated FIFO otherwise.
/// This is what `retscan describe` reports cell/flop counts from without
/// synthesizing anything.
Netlist spec_base_netlist(const SpecFile& file);

/// Build the Session a spec file describes. FIFO specs stay lazy (no gate
/// level is built until a campaign needs it); netlist specs import the file
/// via Session::from_verilog — protected when the design has flip-flops,
/// bare (fault-coverage only) when it is purely combinational. The spec's
/// campaign.threads becomes the session's worker count.
Session make_session(const SpecFile& file);

/// Parse a spec from a stream / string / file. Errors (unknown keys,
/// malformed values) are thrown as retscan::Error naming the line.
SpecFile parse_spec(std::istream& in);
SpecFile parse_spec_text(const std::string& text);
SpecFile load_spec_file(const std::string& path);

/// The strict non-negative integer parse the spec format (and the CLI's
/// override flags) use: plain decimal digits, fully consumed. Negatives,
/// trailing junk and overflow return nullopt — never a wrapped value.
std::optional<std::uint64_t> parse_u64(std::string_view text);

}  // namespace retscan
