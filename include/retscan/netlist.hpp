#pragma once

/// retscan v1 public surface — netlist layer.
///
/// Gate-level netlists, the cell/tech libraries, the case-study circuit
/// generators, the structural-Verilog frontend for externally-authored
/// designs, and the structural tools (lint, DOT export, serialization).
/// Everything needed to *author or import* a design that the
/// session/campaign layers then protect and exercise.

#include "circuits/fifo.hpp"          // FifoSpec, make_fifo, FifoModel
#include "circuits/generators.hpp"    // make_counter, make_lfsr, ...
#include "netlist/cell_type.hpp"      // CellType
#include "netlist/dot.hpp"            // write_dot
#include "netlist/lint.hpp"           // lint_netlist
#include "netlist/netlist.hpp"        // Netlist, NetId, CellId
#include "netlist/serialize.hpp"      // save/load netlists
#include "netlist/techlib.hpp"        // TechLibrary, AreaReport, techlib_cell
#include "netlist/verilog_reader.hpp" // Netlist::from_verilog, write_verilog
