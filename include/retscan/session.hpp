#pragma once

/// retscan v1 public surface — the Session facade.
///
/// A Session owns one protected design and every expensive artifact built
/// from it — the gate-level ProtectedDesign, the capture-constrained
/// combinational frame (which compiles the netlist), the collapsed fault
/// list, the retention-session driver and the campaign thread pool — each
/// built on first use and shared across campaigns. Behavioral validation
/// campaigns never touch the gate level, so a Session is cheap until a
/// workload actually needs synthesis. It is the single entry point
/// examples, benches and services should program against; the per-engine
/// types it returns remain available for surgical work.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "core/protected_design.hpp"
#include "parallel/campaign_runner.hpp"
#include "retscan/campaign.hpp"

namespace retscan {

struct SessionOptions {
  /// Worker threads for campaign backends; 0 → RETSCAN_THREADS env
  /// override, else hardware_concurrency().
  unsigned threads = 0;
};

class Session {
 public:
  /// FIFO-backed session (the paper's case study): supports every campaign
  /// kind, including validation campaigns that need the behavioral golden
  /// FIFO model. Geometry is validated here (chain divisibility, non-zero
  /// counts); the gate-level design is synthesized on first use.
  Session(const FifoSpec& fifo, const ProtectionConfig& protection,
          const SessionOptions& options = {});

  /// Session over an arbitrary netlist: fault-coverage and scan-test
  /// campaigns plus direct retention-session access. Validation campaigns
  /// require the FIFO golden model and are rejected by validate() with an
  /// explanatory error.
  Session(Netlist base, const ProtectionConfig& protection,
          const SessionOptions& options = {});

  /// Session over an imported structural-Verilog netlist
  /// (Netlist::from_verilog). Lint issues that would make the import
  /// unusable (undriven nets, combinational cycles) are rejected here with
  /// the offending messages. Flop-bearing netlists are wrapped in the
  /// protection architecture like the Netlist constructor; combinational
  /// netlists have no state to retain, so `protection` does not apply and
  /// the session is *bare* (see unprotected()).
  static Session from_verilog(const std::string& path,
                              const ProtectionConfig& protection = {},
                              const SessionOptions& options = {});

  /// Bare session: wraps `base` with no protection architecture at all —
  /// no scan chains, no monitors, no retention flops. Supports exactly the
  /// coverage campaign kinds — fault-coverage, transition-delay and
  /// bridging (full-scan-assumed ATPG + packed fault simulation over the
  /// raw netlist), plus sequential-coverage for flop-bearing bases (no scan
  /// assumed at all); every other workload is rejected by validate() /
  /// design() with an explanatory error.
  static Session unprotected(Netlist base, const SessionOptions& options = {});

  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- owned design artifacts -------------------------------------------
  /// The protected gate-level design (synthesized on first use). Throws for
  /// bare sessions, which have no protection architecture to synthesize.
  const ProtectedDesign& design();
  /// The session's gate-level netlist: the protected design's netlist, or
  /// the raw base netlist for bare sessions.
  const Netlist& netlist();
  const ScanChains& chains() { return design().chains(); }
  const ProtectionConfig& protection() const { return protection_; }
  /// False for bare sessions (unprotected() / combinational imports): no
  /// scan fabric, no monitors — coverage campaign kinds only.
  bool is_protected() const { return protected_; }
  bool has_fifo() const { return has_fifo_; }
  /// The FIFO geometry; only valid when has_fifo().
  const FifoSpec& fifo() const;

  /// Combinational scan frame with the standard capture constraints (scan
  /// and monitor controls held at 0) applied; built on first use. Building
  /// it compiles the netlist once; the compiled core is shared with every
  /// simulator the session creates afterwards.
  CombinationalFrame& frame();
  /// Collapsed stuck-at fault list of the protected netlist (cached).
  const std::vector<Fault>& faults();
  /// Scalar retention-session driver over the shared design (built on
  /// first use) — for hand-driven sleep/wake episodes.
  RetentionSession& retention();
  /// Campaign orchestrator owning the work-stealing pool (built on first
  /// use with the session's thread count).
  parallel::CampaignRunner& runner();
  ThreadPool& pool() { return runner().pool(); }
  /// Resolved worker count (options.threads, else RETSCAN_THREADS env,
  /// else hardware_concurrency) — what runner() will be built with.
  unsigned threads() const;

  // --- unified entry points ---------------------------------------------
  /// Run a declarative campaign; equivalent to retscan::run(*this, spec).
  CampaignResult run(const CampaignSpec& spec);

  /// Deliver a pattern set through the manufacturing-test scan fabric and
  /// check responses — the one entry point replacing the legacy
  /// apply_*scan_test* overloads. Backend Auto → pooled 64-lane delivery.
  /// ScanAccess::FullWidth is rejected: a ProtectedDesign's per-chain si
  /// ports are superseded by the monitor feedback muxes (see
  /// retscan/campaign.hpp).
  ScanTestResult run_scan_test(const std::vector<BitVec>& patterns,
                               const ScanTestOptions& options = {});

  /// Generate a pattern set on the session's frame and fault list.
  AtpgResult run_atpg(const AtpgOptions& options = {});

 private:
  struct BareTag {};
  Session(BareTag, Netlist base, const SessionOptions& options);

  SessionOptions options_;
  ProtectionConfig protection_;
  FifoSpec fifo_{};
  bool has_fifo_ = false;
  bool protected_ = true;
  std::optional<Netlist> base_;  ///< pending base until design() is built
                                 ///< (kept for good on bare sessions)
  std::unique_ptr<ProtectedDesign> design_;
  std::unique_ptr<CombinationalFrame> frame_;
  std::unique_ptr<std::vector<Fault>> faults_;
  std::unique_ptr<RetentionSession> retention_;
  std::unique_ptr<parallel::CampaignRunner> runner_;
};

}  // namespace retscan
