#pragma once

/// retscan v1 public surface — protected-design layer.
///
/// The reliability-aware synthesis step (Fig. 4 of the paper) and its
/// products: ProtectedDesign (retention scan chains + monitoring /
/// correction blocks + test concatenation), the retention-session drivers
/// that run the Fig. 3(b) power-gating protocol, the design-space
/// synthesizer, the error injectors and the electrical corruption models.

#include "core/protected_design.hpp" // ProtectionConfig, ProtectedDesign, sessions
#include "core/synthesizer.hpp"      // ReliabilitySynthesizer, CostRow
#include "inject/injector.hpp"       // ErrorInjector, ErrorLocation
#include "power/corruption.hpp"      // CorruptionModel, CorruptionParameters
#include "power/pg_fsm.hpp"          // PgControllerFsm, PgState
#include "power/recovery.hpp"        // recovery/leakage models
#include "power/rush_current.hpp"    // RushCurrentModel, RushParameters
#include "scan/scan_insert.hpp"      // ScanChains, TestModeConfig
#include "scan/scan_io.hpp"          // scan_snapshot, scan_restore
