#pragma once

/// retscan v1 public surface — campaign service tier.
///
/// The `retscan serve` daemon and its client: spec-file jobs over a local
/// Unix-domain socket (line-delimited JSON), multiplexed onto one shared
/// pool with fair shard interleaving, backed by an in-memory session
/// cache and the on-disk compiled-netlist artifact store. Everything here
/// preserves the core contract: a campaign run through the daemon is
/// byte-identical to the same spec run by `retscan run`, cold or warm
/// caches, at any thread count.
///
/// Deliberately NOT in the umbrella retscan.hpp: embedding applications
/// rarely want a daemon, and this header pulls in POSIX socket usage.

#include "parallel/fair_scheduler.hpp"  // FairScheduler shard interleaving
#include "serve/client.hpp"             // Client (submit/jobs/cancel/shutdown)
#include "serve/job_manager.hpp"        // JobManager, ServeOptions, JobRecord
#include "serve/json.hpp"               // wire-format JSON value
#include "serve/protocol.hpp"           // ResultSummary, SubmitOverrides, JobState
#include "serve/server.hpp"             // Server (the daemon)
#include "serve/session_cache.hpp"      // SessionCache, session_key
#include "sim/artifact_store.hpp"       // CompiledArtifactStore
