#pragma once

/// retscan v1 — umbrella header: the whole public surface in one include.
///
///   #include "retscan/retscan.hpp"
///
///   retscan::Session session(retscan::FifoSpec{32, 32}, protection);
///   retscan::CampaignResult r = session.run({.kind = ..., .seed = ...});
///
/// Fine-grained alternatives (identical contents, smaller closures):
/// netlist.hpp, coding.hpp, design.hpp, sim.hpp, test.hpp, parallel.hpp,
/// session.hpp, campaign.hpp, runtime.hpp, version.hpp.

#include "retscan/campaign.hpp"
#include "retscan/coding.hpp"
#include "retscan/design.hpp"
#include "retscan/netlist.hpp"
#include "retscan/parallel.hpp"
#include "retscan/runtime.hpp"
#include "retscan/session.hpp"
#include "retscan/sim.hpp"
#include "retscan/test.hpp"
#include "retscan/version.hpp"
