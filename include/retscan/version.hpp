#pragma once

/// retscan public API version. Mirrors the CMake project(VERSION) and the
/// retscanConfigVersion.cmake compatibility file; bump all three together.
/// The v1 surface is everything reachable from the include/retscan/ tree —
/// internals under src/ (installed as retscan/detail/) carry no stability
/// promise.

#define RETSCAN_VERSION_MAJOR 1
#define RETSCAN_VERSION_MINOR 0
#define RETSCAN_VERSION_PATCH 0
#define RETSCAN_VERSION_STRING "1.0.0"

/// Single comparable number: major * 10000 + minor * 100 + patch, so
/// `#if RETSCAN_VERSION_NUMBER >= 10100` gates on "1.1.0 or later".
#define RETSCAN_VERSION_NUMBER                                  \
  (RETSCAN_VERSION_MAJOR * 10000 + RETSCAN_VERSION_MINOR * 100 + \
   RETSCAN_VERSION_PATCH)

namespace retscan {

constexpr int kVersionMajor = RETSCAN_VERSION_MAJOR;
constexpr int kVersionMinor = RETSCAN_VERSION_MINOR;
constexpr int kVersionPatch = RETSCAN_VERSION_PATCH;

/// "1.0.0" — the canonical version string (also printed by `retscan
/// --version`).
constexpr const char* version_string() noexcept { return RETSCAN_VERSION_STRING; }

}  // namespace retscan
