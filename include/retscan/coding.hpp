#pragma once

/// retscan v1 public surface — coding layer.
///
/// The behavioral codecs behind the state-monitoring blocks: CRC-16
/// signatures, Hamming / SEC-DED correction, MISR compaction, and the
/// chain-protector wrappers the behavioral validation tier runs on.

#include "coding/crc.hpp"        // Crc16
#include "coding/hamming.hpp"    // HammingCode
#include "coding/misr.hpp"       // Misr
#include "coding/protectors.hpp" // HammingChainProtector, CrcChainProtector
#include "coding/secded.hpp"     // SecDed
