#pragma once

/// retscan v1 public surface — manufacturing-test layer.
///
/// Stuck-at fault enumeration/collapsing, the combinational scan frame with
/// its incremental (fanout-cone) fault simulator, two-phase ATPG
/// (random + PODEM), pattern I/O, and the scan-delivery checkers.
///
/// The five `apply_*scan_test*` overloads declared by atpg/scan_test.hpp
/// are the *legacy* delivery entry points: new code should route deliveries
/// through Session::run_scan_test (retscan/session.hpp), which picks the
/// backend (scalar oracle / 64-lane packed / packed+pooled) from one
/// options struct. The overloads remain available — and are re-exported as
/// deprecated shims in retscan/legacy.hpp — for migration.

#include "atpg/atpg.hpp"       // AtpgOptions, AtpgResult, run_atpg
#include "atpg/fault.hpp"      // Fault, enumerate_faults, collapse_faults
#include "atpg/fault_sim.hpp"  // CombinationalFrame, fault_simulate
#include "atpg/pattern_io.hpp" // pattern save/load
#include "atpg/podem.hpp"      // podem_generate
#include "atpg/scan_test.hpp"  // ScanTestResult + legacy apply_* entry points
