#pragma once

#include <cstddef>
#include <optional>

namespace retscan {

/// Parsed `RETSCAN_*` environment overrides — the one place the process
/// environment is interpreted. Both knobs parse strictly: the value must be
/// a plain positive decimal integer (threads additionally capped at 4096);
/// anything else (garbage, 0, negative, trailing junk, overflow) warns on
/// stderr and is treated as unset, never silently accepted.
struct RuntimeConfig {
  /// Resolved worker count: the RETSCAN_THREADS override when set and
  /// valid, else hardware_concurrency() (else 1). Always >= 1 — campaigns
  /// default to using every core now that the persistent-workspace runner
  /// profiles profitable; RETSCAN_THREADS=1 is the explicit serial opt-out.
  unsigned threads = 1;
  /// RETSCAN_SEQUENCES campaign-budget override; nullopt means
  /// unset/invalid (use the caller's default).
  std::optional<std::size_t> sequences;
};

/// Parse the environment now. Deliberately not cached: tests and embedding
/// applications mutate the environment between calls, and the parse is two
/// getenv()s.
RuntimeConfig runtime_config();

/// Resolved worker count: RETSCAN_THREADS override, else
/// hardware_concurrency(), else 1. This is what ThreadPool(0) uses.
unsigned runtime_threads();

/// Campaign sequence budget: RETSCAN_SEQUENCES override, else
/// `default_count`. The paper runs 100M FPGA sequences; benches default to
/// counts that finish in seconds and let this env knob scale them up.
std::size_t runtime_sequences(std::size_t default_count);

}  // namespace retscan
