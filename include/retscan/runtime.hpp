#pragma once

#include <cstddef>
#include <optional>

#include "sim/schedule.hpp"

namespace retscan {

/// Parsed `RETSCAN_*` environment overrides — the one place the process
/// environment is interpreted. All knobs parse strictly: numeric values must
/// be plain positive decimal integers (threads additionally capped at 4096)
/// and RETSCAN_SCHEDULE must be one of auto/sweep/event; anything else
/// (garbage, 0, negative, trailing junk, overflow) warns on stderr and is
/// treated as unset, never silently accepted.
struct RuntimeConfig {
  /// Resolved worker count: the RETSCAN_THREADS override when set and
  /// valid, else hardware_concurrency() (else 1). Always >= 1 — campaigns
  /// default to using every core now that the persistent-workspace runner
  /// profiles profitable; RETSCAN_THREADS=1 is the explicit serial opt-out.
  unsigned threads = 1;
  /// RETSCAN_SEQUENCES campaign-budget override; nullopt means
  /// unset/invalid (use the caller's default).
  std::optional<std::size_t> sequences;
  /// RETSCAN_SCHEDULE settle-schedule override; nullopt means unset/invalid
  /// (engines default to Sweep, campaigns to the spec's schedule knob). An
  /// explicit CampaignSpec schedule always beats the environment.
  std::optional<Schedule> schedule;
};

/// The parsed environment, cached after the first call (every SimEngine
/// construction consults it, so it sits on hot construction paths). Tests
/// and embedding applications that mutate RETSCAN_* afterwards must call
/// runtime_config_refresh() to see the change.
RuntimeConfig runtime_config();

/// Re-parse the environment, replace the cache, and return the result.
RuntimeConfig runtime_config_refresh();

/// Resolved worker count: RETSCAN_THREADS override, else
/// hardware_concurrency(), else 1. This is what ThreadPool(0) uses.
unsigned runtime_threads();

/// Campaign sequence budget: RETSCAN_SEQUENCES override, else
/// `default_count`. The paper runs 100M FPGA sequences; benches default to
/// counts that finish in seconds and let this env knob scale them up.
std::size_t runtime_sequences(std::size_t default_count);

/// Resolve a requested schedule against the environment: an explicit
/// Sweep/Event request wins; Auto defers to RETSCAN_SCHEDULE when set and
/// otherwise stays Auto (engine-side activity probing).
Schedule runtime_schedule(Schedule requested);

}  // namespace retscan
