#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>

#include "sim/schedule.hpp"

namespace retscan {

/// Parsed `RETSCAN_*` environment overrides — the one place the process
/// environment is interpreted. All knobs parse strictly: numeric values must
/// be plain positive decimal integers (threads additionally capped at 4096)
/// and RETSCAN_SCHEDULE must be one of auto/sweep/event; anything else
/// (garbage, 0, negative, trailing junk, overflow) warns on stderr and is
/// treated as unset, never silently accepted.
struct RuntimeConfig {
  /// Resolved worker count: the RETSCAN_THREADS override when set and
  /// valid, else hardware_concurrency() (else 1). Always >= 1 — campaigns
  /// default to using every core now that the persistent-workspace runner
  /// profiles profitable; RETSCAN_THREADS=1 is the explicit serial opt-out.
  unsigned threads = 1;
  /// RETSCAN_SEQUENCES campaign-budget override; nullopt means
  /// unset/invalid (use the caller's default).
  std::optional<std::size_t> sequences;
  /// RETSCAN_SCHEDULE settle-schedule override; nullopt means unset/invalid
  /// (engines default to Sweep, campaigns to the spec's schedule knob). An
  /// explicit CampaignSpec schedule always beats the environment.
  std::optional<Schedule> schedule;
};

/// The parsed environment, cached after the first call (every SimEngine
/// construction consults it, so it sits on hot construction paths). Tests
/// and embedding applications that mutate RETSCAN_* afterwards must call
/// runtime_config_refresh() to see the change.
RuntimeConfig runtime_config();

/// Re-parse the environment, replace the cache, and return the result.
RuntimeConfig runtime_config_refresh();

/// Resolved worker count: RETSCAN_THREADS override, else
/// hardware_concurrency(), else 1. This is what ThreadPool(0) uses.
unsigned runtime_threads();

/// Campaign sequence budget: RETSCAN_SEQUENCES override, else
/// `default_count`. The paper runs 100M FPGA sequences; benches default to
/// counts that finish in seconds and let this env knob scale them up.
std::size_t runtime_sequences(std::size_t default_count);

/// Resolve a requested schedule against the environment: an explicit
/// Sweep/Event request wins; Auto defers to RETSCAN_SCHEDULE when set and
/// otherwise stays Auto (engine-side activity probing).
Schedule runtime_schedule(Schedule requested);

/// Build + runtime provenance in one queryable record: what this binary
/// was compiled as (version, lane geometry, AVX2 kernels) and what the
/// current environment resolves to (threads, schedule). `retscan describe`
/// and the `retscan serve` startup banner print exactly this, so a result
/// can always be tied back to the configuration that produced it.
struct BuildInfo {
  const char* version;       ///< RETSCAN_VERSION_STRING
  unsigned lane_words;       ///< 64-bit words per LaneBlock (RETSCAN_LANE_WORDS)
  unsigned lane_bits;        ///< lanes per block = 64 * lane_words
  bool avx2;                 ///< explicit AVX2 LaneBlock kernels compiled in
  unsigned threads;          ///< resolved worker count (RETSCAN_THREADS / hw)
  std::optional<Schedule> schedule; ///< RETSCAN_SCHEDULE override, if any
};

/// Snapshot the provenance (consults the cached runtime_config()).
BuildInfo build_info();

/// The canonical multi-line provenance block:
///
///     retscan:  1.0.0
///     lanes:    4 x 64 = 256 per block (avx2 kernels)
///     threads:  8 (hardware)
///     schedule: auto (engine activity probing)
void print_build_info(std::ostream& out);

}  // namespace retscan
