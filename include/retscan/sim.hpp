#pragma once

/// retscan v1 public surface — simulation layer.
///
/// The compiled simulation core and its two facades: the scalar Simulator
/// (debug/VCD-friendly) and the 64-lane PackedSim batch engine, plus VCD
/// dumping and the bit-vector / RNG utilities their APIs traffic in.
/// A Session (retscan/session.hpp) picks among these automatically; include
/// this directly only to drive a simulator by hand.

#include "sim/artifact_store.hpp"   // CompiledArtifactStore (warm starts)
#include "sim/compiled_netlist.hpp" // CompiledNetlist (shared compiled core)
#include "sim/packed_sim.hpp"       // PackedSim, LaneWord, lane helpers
#include "sim/simulator.hpp"        // Simulator
#include "sim/vcd.hpp"              // VcdWriter
#include "util/bitvec.hpp"          // BitVec
#include "util/lfsr.hpp"            // Lfsr
#include "util/rng.hpp"             // Rng
