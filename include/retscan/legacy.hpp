#pragma once

/// retscan v1 — the deprecated pre-v1 entry points, kept for migration.
///
/// Everything here still works and still produces bit-identical results to
/// its Session-routed replacement (asserted by tests/test_legacy.cpp), but
/// new code should use the facade. Migration map:
///
///   apply_scan_test(Simulator&, ...)            → no Session equivalent:
///       full-width si/so delivery only applies to plain (pre-monitor)
///       scanned netlists, which a Session never wraps — keep calling it
///       directly on those
///   apply_scan_test(PackedSim&, ...)            → same, packed
///   apply_test_mode_scan_test(...)              → Session::run_scan_test
///       {.access = ScanAccess::TestMode, .backend = Backend::Reference}
///   apply_test_mode_scan_test_packed(...)       → Session::run_scan_test
///       {.access = ScanAccess::TestMode, .backend = Backend::Packed}
///   apply_test_mode_scan_test_packed(..., pool) → Session::run_scan_test
///       {.access = ScanAccess::TestMode, .backend = Backend::PackedParallel}
///   FastTestbench(config).run(n)                → run(session, {.kind = Validation,
///       .backend = Backend::Reference, .sequences = n})
///   StructuralTestbench(config).run(n)          → ... .tier = Structural,
///       .backend = Backend::Reference
///   StructuralTestbench(config).run_packed(n)   → ... .tier = Structural,
///       .backend = Backend::Packed
///   CampaignRunner::run_fast / run_structural_packed → .backend =
///       Backend::PackedParallel (threads/shard_size knobs on the spec)
///
/// The five apply_* delivery overloads carry [[deprecated]] attributes;
/// compiling a TU that calls them warns unless RETSCAN_SUPPRESS_DEPRECATED
/// is defined before any retscan include (the library's own backends and
/// the equivalence tests do exactly that). The testbench and runner classes
/// stay undeprecated: they ARE the backend strategies the Session selects,
/// and remain supported for surgical use.

#include "atpg/scan_test.hpp"           // the deprecated apply_* overloads
#include "parallel/campaign_runner.hpp" // CampaignRunner (backend strategy)
#include "testbench/harness.hpp"        // Fast/StructuralTestbench (strategies)
