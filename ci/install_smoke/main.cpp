// Installed-package consumer: exercises the v1 surface exactly as an
// external project would — find_package(retscan), link retscan::retscan,
// include only retscan/ headers, run one declarative campaign.

#include <iostream>

#include "retscan/retscan.hpp"

int main() {
  using namespace retscan;
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 8;
  protection.test_width = 4;
  Session session(FifoSpec{32, 2}, protection);

  CampaignSpec spec;
  spec.kind = CampaignKind::ScanTest;
  spec.seed = 1;
  spec.atpg.random_patterns = 64;
  spec.atpg.run_podem = false;
  const CampaignResult result = session.run(spec);

  std::cout << "retscan " << version_string() << ": delivered "
            << result.scan_test.patterns_applied << " patterns via "
            << to_string(result.backend) << ", " << result.scan_test.mismatches
            << " mismatches\n";
  return result.passed() && result.scan_test.patterns_applied > 0 ? 0 : 1;
}
