#!/usr/bin/env python3
"""Include lint: examples, benches and tools must program against the v1
public surface (include/retscan/) only — never src/ internals directly.

Allowed quoted includes:
  * "retscan/..."            the public header tree
  * "bench_util.hpp"         bench-local helper (bench/ and tests/ only;
                             itself lint-checked to sit on retscan/runtime)

Angle-bracket includes (standard library, gtest) are always fine. Usage:

  python3 ci/check_includes.py [repo_root]
"""

import pathlib
import re
import sys

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')
CHECKED_DIRS = ("examples", "bench", "tools")
BENCH_LOCAL = {"bench_util.hpp"}


def violations(root: pathlib.Path):
    for directory in CHECKED_DIRS:
        for path in sorted((root / directory).glob("**/*")):
            if path.suffix not in {".cpp", ".hpp", ".h", ".cc"}:
                continue
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                match = INCLUDE_RE.match(line)
                if not match:
                    continue
                header = match.group(1)
                if header.startswith("retscan/"):
                    continue
                if directory == "bench" and header in BENCH_LOCAL:
                    continue
                yield path.relative_to(root), lineno, header


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    bad = list(violations(root))
    for path, lineno, header in bad:
        print(f'{path}:{lineno}: includes src internal "{header}" — '
              f"use the include/retscan/ surface (see retscan/retscan.hpp)")
    if bad:
        print(f"\n{len(bad)} violation(s); examples/benches/tools must include "
              f'only "retscan/..." headers')
        return 1
    print("include lint: examples/, bench/ and tools/ are clean "
          "(retscan/ public surface only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
