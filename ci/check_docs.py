#!/usr/bin/env python3
"""Documentation lint: keep docs/ and the public headers honest.

Checks, in order:
  1. the documentation tree exists and is non-trivial
     (docs/architecture.md, docs/spec-reference.md, docs/verilog-frontend.md);
  2. every public header under include/retscan/ opens with a Doxygen-style
     file-level doc comment (`///`) near the top — the v1 surface is
     self-describing;
  3. docs/spec-reference.md documents every spec key the parser accepts
     (extracted from src/api/campaign.cpp), so the reference cannot rot;
  4. every relative markdown link in README.md and docs/*.md resolves to a
     real file.

Usage:  python3 ci/check_docs.py [repo_root]
"""

import pathlib
import re
import sys

REQUIRED_DOCS = {
    "docs/architecture.md": 2000,
    "docs/spec-reference.md": 2000,
    "docs/verilog-frontend.md": 2000,
    "docs/serve.md": 2000,
}

SPEC_KEY_RE = re.compile(r'key == "([a-z0-9_.+]+)"')
MD_LINK_RE = re.compile(r"\]\(([^)#]+?)(?:#[^)]*)?\)")
DOC_COMMENT_WINDOW = 12  # lines to search for the file-level /// block


def check_docs_exist(root):
    for rel, min_bytes in REQUIRED_DOCS.items():
        path = root / rel
        if not path.is_file():
            yield f"{rel}: missing"
        elif path.stat().st_size < min_bytes:
            yield f"{rel}: suspiciously small ({path.stat().st_size} bytes)"


def check_header_comments(root):
    headers = sorted((root / "include" / "retscan").glob("*.hpp"))
    if not headers:
        yield "include/retscan/: no public headers found"
    for path in headers:
        head = path.read_text().splitlines()[:DOC_COMMENT_WINDOW]
        if not any(line.lstrip().startswith("///") for line in head):
            yield (f"{path.relative_to(root)}: no file-level /// doc comment in the "
                   f"first {DOC_COMMENT_WINDOW} lines")


def check_spec_keys(root):
    source = (root / "src" / "api" / "campaign.cpp").read_text()
    keys = sorted(set(SPEC_KEY_RE.findall(source)))
    if not keys:
        yield "src/api/campaign.cpp: no spec keys found (extractor broken?)"
    reference = (root / "docs" / "spec-reference.md").read_text()
    for key in keys:
        if f"`{key}`" not in reference and key not in reference:
            yield f"docs/spec-reference.md: spec key '{key}' is undocumented"


def check_markdown_links(root):
    pages = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    for page in pages:
        for target in MD_LINK_RE.findall(page.read_text()):
            if "://" in target or target.startswith("mailto:"):
                continue
            resolved = (page.parent / target).resolve()
            if not resolved.exists():
                yield f"{page.relative_to(root)}: broken link '{target}'"


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    problems = []
    for check in (check_docs_exist, check_header_comments, check_spec_keys,
                  check_markdown_links):
        problems.extend(check(root))
    for problem in problems:
        print(f"FAIL: {problem}")
    if problems:
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    headers = len(list((root / "include" / "retscan").glob("*.hpp")))
    print(f"docs lint: {len(REQUIRED_DOCS)} guides present, {headers} public "
          f"headers documented, spec keys covered, links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
