#!/usr/bin/env python3
"""Validate BENCH_*.json bench reports and gate perf regressions.

Usage:
    check_bench_json.py [--baselines DIR] [--max-regression FRAC] FILES...

Every report must be a flat JSON object with a "bench" name, a "pass"
metric equal to 1, and finite numeric values for everything else; benches
listed in REQUIRED_KEYS must carry those keys. Ratio metrics listed in
GATED_KEYS are machine-independent (packed vs scalar on the same host), so
they are compared against the checked-in baselines: a value below
baseline * (1 - max_regression) fails the gate.
"""

import argparse
import json
import math
import pathlib
import sys

# Execution-shape metadata every report must carry (seeded by
# bench::JsonReport at construction, so a missing key means a bench bypassed
# the shared reporter).
SHAPE_KEYS = ["threads", "hardware_concurrency", "lane_words", "lane_bits"]

# Keys every report of a given bench must emit (beyond "bench", "pass" and
# SHAPE_KEYS).
REQUIRED_KEYS = {
    "validation": [
        "fast_sequences_per_sec",
        "fast_detection_rate",
        "fast_correction_rate",
        "shard_count",
        "reference_sequences",
        "parallel_speedup",
        "scaling_efficiency",
        "gate_speedup",
        "event_speedup",
        "event_sweeps",
        "avg_dirty_fraction",
        "checkpoint_overhead",
        "artifact_warm_speedup",
        "artifact_cold_setup_sec",
        "artifact_warm_setup_sec",
    ]
    + [f"parallel_speedup_t{n}" for n in (1, 2, 4, 8)]
    + [f"scaling_efficiency_t{n}" for n in (1, 2, 4, 8)],
    "atpg": [
        "coverage",
        "patterns",
        "faultsim_speedup",
        "delivery_speedup",
    ]
    + [f"faultsim_speedup_t{n}" for n in (1, 2, 4, 8)]
    + [f"scaling_efficiency_t{n}" for n in (1, 2, 4, 8)],
    "engine": [
        "gates",
        "compiled_meps",
        "word_meps",
        "interp_meps",
        "compile_speedup",
        "laneblock_speedup",
        "cone_fault_evals_per_sec",
        "full_fault_evals_per_sec",
        "cone_speedup",
    ],
    "external": [
        "circuits",
        "total_cells",
        "min_coverage",
        "min_coverage_td",
        "min_coverage_seq",
        "min_coverage_iscas85",
        "min_coverage_iscas89",
        "min_coverage_epfl",
        "compiled_meps",
        "faultsim_evals_per_sec",
    ],
}

# Ratio metrics gated against bench/baselines/BENCH_<name>.json.
GATED_KEYS = {
    "validation": ["gate_speedup", "event_speedup"],
    "atpg": ["faultsim_speedup", "delivery_speedup"],
    "engine": ["compile_speedup", "cone_speedup"],
    "external": [
        "min_coverage",
        "min_coverage_td",
        "min_coverage_seq",
        "min_coverage_iscas85",
        "min_coverage_iscas89",
        "min_coverage_epfl",
    ],
}


def conditional_gates(name, report):
    """Absolute floors that only apply when the recorded execution shape can
    actually deliver them — all keyed on metadata inside the report itself,
    so the same checker passes on a 1-core container, a 4-vCPU CI runner and
    a wide dev box without per-host configuration.

    Returns a list of (key, floor, reason) tuples.
    """
    gates = []
    lane_words = report.get("lane_words", 0)
    cores = report.get("hardware_concurrency", 0)
    threads = report.get("threads", 0)

    if name == "engine" and lane_words >= 4:
        # The lane-block datapath must beat the single-word sweep by >= 2.5x
        # in the same binary on the same host (the PR6 tentpole contract).
        gates.append(("laneblock_speedup", 2.5,
                      f"lane_words={lane_words:.0f} >= 4"))

    if name == "validation":
        # The dirty-net worklist must beat the full sweep by >= 2x on the
        # low-activity retention workload (the PR7 tentpole contract). A
        # pure same-binary same-host scheduling ratio, so no shape guard.
        gates.append(("event_speedup", 2.0, "low-activity workload"))
        # A warm resubmission through the serve daemon's caches must beat
        # the cold job's setup (spec parse + synthesis + compile + warm-up)
        # by >= 1.2x — same binary, same host, a pure ratio (the PR9
        # tentpole contract; in practice it lands far above this floor).
        gates.append(("artifact_warm_speedup", 1.2, "serve warm resubmission"))
        # Thread-scaling floors need real cores (>= 8 logical, i.e. ~4
        # physical with SMT) and a non-trivial budget — tiny smoke runs are
        # dominated by shard setup.
        scalable = (cores >= 8 and report.get("reference_sequences", 0) >= 50000)
        if scalable and 4 <= threads <= cores:
            gates.append(("parallel_speedup", 1.5,
                          f"threads={threads:.0f}, cores={cores:.0f}"))
        if scalable:
            gates.append(("scaling_efficiency_t4", 0.5,
                          f"cores={cores:.0f} >= 8, full budget"))

    if name == "atpg" and cores >= 8:
        gates.append(("scaling_efficiency_t4", 0.5, f"cores={cores:.0f} >= 8"))

    return gates


def conditional_ceilings(name, report):
    """Absolute ceilings — ratios that must stay NEAR 1 rather than large.
    Same shape as conditional_gates, but the check is value <= ceiling.

    Returns a list of (key, ceiling, reason) tuples.
    """
    del report
    ceilings = []
    if name == "validation":
        # Checkpointing a campaign (one journal append + atomic rename per
        # shard) must cost at most 5% wall clock over the identical plain
        # campaign — durability is supposed to be noise, not a tax.
        ceilings.append(("checkpoint_overhead", 1.05, "journal append per shard"))
    return ceilings


def fail(message):
    print(f"FAIL: {message}")
    return 1


def check_report(path, baselines_dir, max_regression):
    errors = 0
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        return fail(f"{path}: unreadable or invalid JSON: {error}")

    if not isinstance(report, dict):
        return fail(f"{path}: expected a JSON object")

    name = report.get("bench")
    if not isinstance(name, str) or not name:
        errors += fail(f"{path}: missing/empty 'bench' name")
        name = path.stem.removeprefix("BENCH_")

    for key, value in report.items():
        if key == "bench":
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool) or not math.isfinite(value):
            errors += fail(f"{path}: metric '{key}' is not a finite number: {value!r}")

    if report.get("pass") != 1:
        errors += fail(f"{path}: 'pass' != 1 (bench-internal assertions failed)")

    required = SHAPE_KEYS + REQUIRED_KEYS.get(name, []) if name in REQUIRED_KEYS \
        else []
    for key in required:
        if key not in report:
            errors += fail(f"{path}: required metric '{key}' missing")

    for key, floor, reason in conditional_gates(name, report):
        value = report.get(key)
        if not isinstance(value, (int, float)) or value < floor:
            errors += fail(
                f"{path}: conditional gate on '{key}': {value} < {floor} ({reason})"
            )
        else:
            print(f"ok:   {name}.{key} = {value:.2f} (floor {floor}, {reason})")

    for key, ceiling, reason in conditional_ceilings(name, report):
        value = report.get(key)
        if not isinstance(value, (int, float)) or value > ceiling:
            errors += fail(
                f"{path}: conditional ceiling on '{key}': {value} > {ceiling} ({reason})"
            )
        else:
            print(f"ok:   {name}.{key} = {value:.2f} (ceiling {ceiling}, {reason})")

    baseline_path = baselines_dir / f"BENCH_{name}.json"
    gated = GATED_KEYS.get(name, [])
    if gated and baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        for key in gated:
            if key not in baseline:
                continue
            floor = baseline[key] * (1.0 - max_regression)
            value = report.get(key)
            if not isinstance(value, (int, float)) or value < floor:
                errors += fail(
                    f"{path}: perf regression on '{key}': {value} < {floor:.3f} "
                    f"(baseline {baseline[key]} - {max_regression:.0%})"
                )
            else:
                print(f"ok:   {name}.{key} = {value:.2f} (floor {floor:.2f})")
    elif gated:
        errors += fail(f"{path}: no baseline at {baseline_path} for gated bench '{name}'")

    if errors == 0:
        print(f"ok:   {path} ({len(report) - 1} metrics, pass=1)")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", type=pathlib.Path)
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=pathlib.Path("bench/baselines"))
    parser.add_argument("--max-regression", type=float, default=0.20)
    args = parser.parse_args()

    errors = 0
    for path in args.files:
        errors += check_report(path, args.baselines, args.max_regression)
    if errors:
        print(f"\n{errors} problem(s) found")
        return 1
    print(f"\nall {len(args.files)} bench report(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
