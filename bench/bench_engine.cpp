// Compiled-core throughput bench: the raw gate-evaluation engine behind
// every simulator facade and fault-sim frame.
//
//  * full-sweep kernel — million gate-evals/sec (MEPS) of the compiled flat
//    instruction stream vs the retained per-Cell reference interpreter, on
//    the protected FIFO netlist. The compiled side runs the lane-block
//    datapath (kLaneBlockBits lanes per sweep, AVX2 when compiled in); a
//    single-word sweep is also timed so laneblock_speedup isolates the
//    block-vs-word win on the same host and binary;
//  * fanout-cone incremental fault simulation — per-fault cone passes over
//    lane-block batches vs full-circuit interpreted passes on the same
//    fault dictionary, with bit-identical detect masks required.
//
// The ratios (compile_speedup, laneblock_speedup, cone_speedup) are
// same-host comparisons and land in BENCH_engine.json, where
// ci/check_bench_json.py gates them against bench/baselines/BENCH_engine.json.

#include <cstdint>
#include <iostream>

#include "retscan/test.hpp"
#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

int main() {
  bench::header("Compiled simulation core vs reference interpreter");
  bench::JsonReport json("engine");
  bool ok = true;
  std::cout << "lane width: " << kLaneWords << " words (" << kLaneBlockBits
            << " lanes/block), AVX2 kernels "
            << (lane_block_simd_compiled() ? "on" : "off") << "\n";

  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 4}), config);
  const Netlist& nl = design.netlist();
  const std::shared_ptr<const CompiledNetlist> compiled = nl.compiled();
  const std::size_t gates = compiled->instrs().size();
  std::cout << "netlist: " << nl.cell_count() << " cells, " << nl.net_count()
            << " nets, " << gates << " compiled gates\n";

  // --- full-sweep throughput ----------------------------------------------
  // Randomize every source slot, settle, repeat. The block sweep evaluates
  // gates x kLaneBlockBits lanes per pass with independent stimulus in every
  // word of every block; the word sweep and the interpreter run the stimulus
  // of word 0. All sides feed a checksum so the loops cannot be elided, and
  // the final sweep's results must agree net-for-net across all three paths.
  constexpr int kSweeps = 400;
  std::vector<LaneBlock> slot_blocks(compiled->slot_count(), LaneBlock{});
  std::vector<LaneWord> slot_values(compiled->slot_count(), 0);
  std::vector<LaneWord> net_values(nl.net_count(), 0);
  const std::size_t source_count = compiled->slot_count() - gates;

  Rng stim_rng(1);
  std::vector<std::vector<LaneBlock>> stimulus(
      kSweeps, std::vector<LaneBlock>(source_count));
  for (auto& sweep : stimulus) {
    for (LaneBlock& block : sweep) {
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        block.w[w] = stim_rng.next_u64();
      }
    }
  }

  bench::Stopwatch timer;
  LaneWord block_sum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    // Source slots are the first source_count slots by construction.
    for (std::size_t i = 0; i < source_count; ++i) {
      slot_blocks[i] = stimulus[s][i];
    }
    compiled->eval_full(slot_blocks.data());
    block_sum ^= slot_blocks[compiled->slot_count() - 1].w[0];
  }
  const double block_time = timer.seconds();

  timer.restart();
  LaneWord compiled_sum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    for (std::size_t i = 0; i < source_count; ++i) {
      slot_values[i] = stimulus[s][i].w[0];
    }
    compiled->eval_full(slot_values.data());
    compiled_sum ^= slot_values[compiled->slot_count() - 1];
  }
  const double word_time = timer.seconds();

  timer.restart();
  LaneWord interp_sum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    for (std::size_t i = 0; i < source_count; ++i) {
      net_values[compiled->net_of_slot(static_cast<std::uint32_t>(i))] =
          stimulus[s][i].w[0];
    }
    CompiledNetlist::reference_eval(nl, net_values);
    interp_sum ^= net_values[compiled->net_of_slot(
        static_cast<std::uint32_t>(compiled->slot_count() - 1))];
  }
  const double interp_time = timer.seconds();

  // Equivalence of the final sweep, every net: word 0 of the block sweep,
  // the word sweep, and the interpreter must agree bit-for-bit.
  std::size_t sweep_mismatches = 0;
  for (NetId net = 0; net < nl.net_count(); ++net) {
    const std::uint32_t slot = compiled->slot(net);
    if (slot_values[slot] != net_values[net] ||
        slot_blocks[slot].w[0] != net_values[net]) {
      ++sweep_mismatches;
    }
  }
  ok = ok && sweep_mismatches == 0 && compiled_sum == interp_sum &&
       block_sum == interp_sum;

  const double word_lane_evals =
      static_cast<double>(gates) * kSweeps * static_cast<double>(kLaneCount);
  const double block_lane_evals =
      static_cast<double>(gates) * kSweeps * static_cast<double>(kLaneBlockBits);
  const double compiled_meps = block_lane_evals / block_time / 1e6;
  const double word_meps = word_lane_evals / word_time / 1e6;
  const double interp_meps = word_lane_evals / interp_time / 1e6;
  const double compile_speedup = compiled_meps / interp_meps;
  const double laneblock_speedup = compiled_meps / word_meps;
  std::cout << "block:       " << compiled_meps << " M gate-evals/sec ("
            << kLaneBlockBits << " lanes)\n"
            << "word:        " << word_meps << " M gate-evals/sec ("
            << kLaneCount << " lanes)\n"
            << "interpreted: " << interp_meps << " M gate-evals/sec\n"
            << "compile speedup:   " << compile_speedup << "x ("
            << sweep_mismatches << " mismatching nets)\n"
            << "laneblock speedup: " << laneblock_speedup << "x\n";
  json.set("gates", static_cast<double>(gates));
  json.set("compiled_meps", compiled_meps);
  json.set("word_meps", word_meps);
  json.set("interp_meps", interp_meps);
  json.set("compile_speedup", compile_speedup);
  json.set("laneblock_speedup", laneblock_speedup);

  // --- cone-incremental vs full-circuit fault simulation ------------------
  bench::header("Fanout-cone incremental vs full-circuit fault simulation");
  CombinationalFrame frame(nl);
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Rng pattern_rng(7);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 256; ++i) {
    patterns.push_back(frame.random_pattern(pattern_rng));
  }
  frame.warm_cones(faults);

  // Preload batches so both timed loops measure pure per-fault evaluation.
  // The cone path consumes kLaneBlockBits patterns per loaded block; the
  // interpreted baseline keeps the historical 64-pattern batches so
  // cone_fault_evals_per_sec stays in faults x (patterns/64) units across PRs.
  std::vector<std::vector<BitVec>> batches;
  std::vector<std::vector<std::uint64_t>> batch_good;
  for (std::size_t base = 0; base < patterns.size(); base += kLaneCount) {
    const std::size_t count =
        std::min<std::size_t>(kLaneCount, patterns.size() - base);
    batches.emplace_back(patterns.begin() + base, patterns.begin() + base + count);
    batch_good.push_back(frame.good_response_words(batches.back()));
  }
  std::vector<CombinationalFrame::LoadedPatternBatch> loaded;
  for (std::size_t base = 0; base < patterns.size(); base += kLaneBlockBits) {
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    const std::vector<BitVec> chunk(patterns.begin() + base,
                                    patterns.begin() + base + count);
    loaded.push_back(frame.load_batch(chunk));
  }

  const double fault_evals =
      static_cast<double>(faults.size()) * static_cast<double>(batches.size());
  constexpr int kConeRepeats = 5;
  CombinationalFrame::Workspace workspace;
  std::vector<LaneBlock> cone_blocks(faults.size() * loaded.size(), LaneBlock{});
  timer.restart();
  for (int r = 0; r < kConeRepeats; ++r) {
    for (std::size_t b = 0; b < loaded.size(); ++b) {
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        cone_blocks[b * faults.size() + fi] =
            frame.detect_block(faults[fi], loaded[b], loaded[b].good, workspace);
      }
    }
  }
  const double cone_time = timer.seconds() / kConeRepeats;

  std::vector<std::uint64_t> full_masks(faults.size() * batches.size(), 0);
  timer.restart();
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      full_masks[b * faults.size() + fi] =
          frame.detect_mask_full(faults[fi], batches[b], batch_good[b]);
    }
  }
  const double full_time = timer.seconds();

  // Word w of cone block b covers the same 64 patterns as interpreted batch
  // b * kLaneWords + w; every lane must agree.
  std::size_t mask_mismatches = 0;
  for (std::size_t b = 0; b < loaded.size(); ++b) {
    for (std::size_t w = 0; w < kLaneWords; ++w) {
      const std::size_t wb = b * kLaneWords + w;
      if (wb >= batches.size()) {
        break;
      }
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (cone_blocks[b * faults.size() + fi].w[w] !=
            full_masks[wb * faults.size() + fi]) {
          ++mask_mismatches;
        }
      }
    }
  }
  ok = ok && mask_mismatches == 0;
  const double cone_rate = fault_evals / cone_time;
  const double full_rate = fault_evals / full_time;
  const double cone_speedup = cone_rate / full_rate;
  std::cout << "cone:    " << cone_rate << " fault-evals/sec over "
            << faults.size() << " faults x " << batches.size()
            << " 64-pattern batches (" << loaded.size() << " lane blocks)\n"
            << "full:    " << full_rate << " fault-evals/sec\n"
            << "speedup: " << cone_speedup << "x (masks "
            << (mask_mismatches == 0 ? "identical" : "DIVERGED") << ")\n";
  json.set("collapsed_faults", static_cast<double>(faults.size()));
  json.set("cone_fault_evals_per_sec", cone_rate);
  json.set("full_fault_evals_per_sec", full_rate);
  json.set("cone_speedup", cone_speedup);

  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[engine] PASS\n" : "\n[engine] FAIL\n");
  return ok ? 0 : 1;
}
