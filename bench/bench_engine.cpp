// Compiled-core throughput bench: the raw gate-evaluation engine behind
// every simulator facade and fault-sim frame.
//
//  * full-sweep kernel — million gate-evals/sec (MEPS) of the compiled flat
//    instruction stream vs the retained per-Cell reference interpreter, on
//    the protected FIFO netlist (64 lanes per word, both sides);
//  * fanout-cone incremental fault simulation — per-fault cone passes vs
//    full-circuit interpreted passes on the same fault dictionary, with
//    bit-identical detect masks required.
//
// Both ratios (compile_speedup, cone_speedup) are same-host comparisons and
// land in BENCH_engine.json, where ci/check_bench_json.py gates them against
// bench/baselines/BENCH_engine.json.

#include <cstdint>
#include <iostream>

#include "retscan/test.hpp"
#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

int main() {
  bench::header("Compiled simulation core vs reference interpreter");
  bench::JsonReport json("engine");
  bool ok = true;

  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 4}), config);
  const Netlist& nl = design.netlist();
  const std::shared_ptr<const CompiledNetlist> compiled = nl.compiled();
  const std::size_t gates = compiled->instrs().size();
  std::cout << "netlist: " << nl.cell_count() << " cells, " << nl.net_count()
            << " nets, " << gates << " compiled gates\n";

  // --- full-sweep throughput ----------------------------------------------
  // Randomize every source slot, settle, repeat; each sweep is gates x 64
  // lane-parallel gate evaluations. The interpreter runs the identical
  // stimulus on NetId-indexed values; both sides feed a checksum so the
  // loops cannot be elided, and every sweep's results must agree net-for-net.
  constexpr int kSweeps = 400;
  std::vector<LaneWord> slot_values(compiled->slot_count(), 0);
  std::vector<LaneWord> net_values(nl.net_count(), 0);
  const std::size_t source_count = compiled->slot_count() - gates;

  Rng stim_rng(1);
  std::vector<std::vector<LaneWord>> stimulus(kSweeps,
                                              std::vector<LaneWord>(source_count));
  for (auto& sweep : stimulus) {
    for (LaneWord& word : sweep) {
      word = stim_rng.next_u64();
    }
  }

  bench::Stopwatch timer;
  LaneWord compiled_sum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    // Source slots are the first source_count slots by construction.
    for (std::size_t i = 0; i < source_count; ++i) {
      slot_values[i] = stimulus[s][i];
    }
    compiled->eval_full(slot_values.data());
    compiled_sum ^= slot_values[compiled->slot_count() - 1];
  }
  const double compiled_time = timer.seconds();

  timer.restart();
  LaneWord interp_sum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    for (std::size_t i = 0; i < source_count; ++i) {
      net_values[compiled->net_of_slot(static_cast<std::uint32_t>(i))] = stimulus[s][i];
    }
    CompiledNetlist::reference_eval(nl, net_values);
    interp_sum ^= net_values[compiled->net_of_slot(
        static_cast<std::uint32_t>(compiled->slot_count() - 1))];
  }
  const double interp_time = timer.seconds();

  // Equivalence of the final sweep, every net.
  std::size_t sweep_mismatches = 0;
  for (NetId net = 0; net < nl.net_count(); ++net) {
    if (slot_values[compiled->slot(net)] != net_values[net]) {
      ++sweep_mismatches;
    }
  }
  ok = ok && sweep_mismatches == 0 && compiled_sum == interp_sum;

  const double lane_evals =
      static_cast<double>(gates) * kSweeps * static_cast<double>(kLaneCount);
  const double compiled_meps = lane_evals / compiled_time / 1e6;
  const double interp_meps = lane_evals / interp_time / 1e6;
  const double compile_speedup = compiled_meps / interp_meps;
  std::cout << "compiled:    " << compiled_meps << " M gate-evals/sec\n"
            << "interpreted: " << interp_meps << " M gate-evals/sec\n"
            << "speedup:     " << compile_speedup << "x ("
            << sweep_mismatches << " mismatching nets)\n";
  json.set("gates", static_cast<double>(gates));
  json.set("compiled_meps", compiled_meps);
  json.set("interp_meps", interp_meps);
  json.set("compile_speedup", compile_speedup);

  // --- cone-incremental vs full-circuit fault simulation ------------------
  bench::header("Fanout-cone incremental vs full-circuit fault simulation");
  CombinationalFrame frame(nl);
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Rng pattern_rng(7);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 256; ++i) {
    patterns.push_back(frame.random_pattern(pattern_rng));
  }
  frame.warm_cones(faults);

  // Preload batches so both timed loops measure pure per-fault evaluation.
  std::vector<std::vector<BitVec>> batches;
  std::vector<CombinationalFrame::LoadedPatternBatch> loaded;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    batches.emplace_back(patterns.begin() + base, patterns.begin() + base + count);
    loaded.push_back(frame.load_batch(batches.back()));
  }

  const double fault_evals =
      static_cast<double>(faults.size()) * static_cast<double>(loaded.size());
  constexpr int kConeRepeats = 5;
  CombinationalFrame::Workspace workspace;
  std::vector<std::uint64_t> cone_masks(faults.size() * loaded.size(), 0);
  timer.restart();
  for (int r = 0; r < kConeRepeats; ++r) {
    for (std::size_t b = 0; b < loaded.size(); ++b) {
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        cone_masks[b * faults.size() + fi] =
            frame.detect_mask(faults[fi], loaded[b], loaded[b].good, workspace);
      }
    }
  }
  const double cone_time = timer.seconds() / kConeRepeats;

  std::vector<std::uint64_t> full_masks(faults.size() * loaded.size(), 0);
  timer.restart();
  for (std::size_t b = 0; b < loaded.size(); ++b) {
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      full_masks[b * faults.size() + fi] =
          frame.detect_mask_full(faults[fi], batches[b], loaded[b].good);
    }
  }
  const double full_time = timer.seconds();

  ok = ok && cone_masks == full_masks;
  const double cone_rate = fault_evals / cone_time;
  const double full_rate = fault_evals / full_time;
  const double cone_speedup = cone_rate / full_rate;
  std::cout << "cone:    " << cone_rate << " fault-evals/sec over "
            << faults.size() << " faults x " << loaded.size() << " batches\n"
            << "full:    " << full_rate << " fault-evals/sec\n"
            << "speedup: " << cone_speedup << "x (masks "
            << (cone_masks == full_masks ? "identical" : "DIVERGED") << ")\n";
  json.set("collapsed_faults", static_cast<double>(faults.size()));
  json.set("cone_fault_evals_per_sec", cone_rate);
  json.set("full_fault_evals_per_sec", full_rate);
  json.set("cone_speedup", cone_speedup);

  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[engine] PASS\n" : "\n[engine] FAIL\n");
  return ok ? 0 : 1;
}
