// Reproduces Table II: encoding/decoding circuit area overhead, power,
// latency and energy for Hamming(7,4) with different scan chain
// configurations on the 32x32 FIFO.
//
// Paper reference (Table II): overhead 68.4% (W=4) -> 87.3% (W=80), power
// 6.7-8.4 mW, latency 2600 -> 130 ns, energy 17.6 -> 1.1 nJ. The key
// qualitative facts: Hamming overhead is roughly an order of magnitude
// larger than CRC-16 (always-on parity memory), its power is only 20-40%
// higher (scan-shift power dominates both), and latency/energy fall ~20x
// from W=4 to W=80.

#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"

using namespace retscan;

int main() {
  bench::header("Table II — Hamming(7,4) cost vs scan chain configuration (32x32 FIFO)");
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); },
                               TechLibrary::st120(), 10.0);
  std::vector<ProtectionConfig> configs;
  for (const std::size_t w : {4u, 8u, 16u, 40u, 80u}) {
    ProtectionConfig config;
    config.kind = CodeKind::HammingCorrect;
    config.hamming_r = 3;
    config.chain_count = w;
    config.test_width = 4;
    configs.push_back(config);
  }
  const auto rows = synth.sweep(configs);
  print_cost_table(std::cout, "32x32 FIFO, Hamming(7,4), st120-class, clock = 100 MHz",
                   rows);

  std::cout << "\npaper Table II reference rows (STMicro 120nm):\n"
            << "  W=4  : 120594 um^2  68.4%  6.76 mW  2600 ns  17.58 nJ\n"
            << "  W=8  : 121552 um^2  69.7%  6.91 mW  1300 ns   8.98 nJ\n"
            << "  W=16 : 123303 um^2  72.1%  7.11 mW   650 ns   4.62 nJ\n"
            << "  W=40 : 126811 um^2  77.0%  7.72 mW   260 ns   2.00 nJ\n"
            << "  W=80 : 134141 um^2  87.3%  8.43 mW   130 ns   1.08 nJ\n";

  bool ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    ok = ok && rows[i].overhead_percent > rows[i - 1].overhead_percent;
    ok = ok && rows[i].latency_ns < rows[i - 1].latency_ns;
    ok = ok && rows[i].dec_energy_nj < rows[i - 1].dec_energy_nj;
  }
  std::cout << (ok ? "\n[table2] trend check PASS\n" : "\n[table2] trend check FAIL\n");
  return ok ? 0 : 1;
}
