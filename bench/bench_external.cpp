// Imported-workload bench: the externally-authored circuits retscan runs.
// Every vendored circuit under bench/circuits/ — the ISCAS'85-class
// combinational set (gate-instance and bus+assign styles), the ISCAS'89-class
// sequential set and the EPFL-class arithmetic set — is parsed by the
// structural-Verilog frontend, lint-checked, and driven through packed
// stuck-at AND transition-delay campaigns via the same Session/CampaignSpec
// pipeline the CLI uses; the sequential benches additionally run the
// scan-free sequential-coverage model, and the largest import feeds the
// compiled-core full-sweep and cone fault-evaluation throughput loops.
//
// BENCH_external.json records per-circuit and per-suite coverage plus the
// aggregate metrics; ci/check_bench_json.py gates the coverage floors
// (deterministic for a fixed seed) against bench/baselines/BENCH_external.json.

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/session.hpp"
#include "retscan/sim.hpp"
#include "retscan/test.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

using namespace retscan;

namespace {

struct Workload {
  const char* file;
  const char* suite;  ///< "iscas85" / "iscas89" / "epfl" class
  std::size_t random_patterns;
  /// PODEM top-up: affordable on the small imports, random-only on the
  /// multi-thousand-cell ones (the bench measures throughput, not ATPG).
  bool run_podem;
  /// 0 = bare import; otherwise the circuit is wrapped in the protection
  /// architecture with this many retention scan chains.
  std::size_t chains;
  CodeKind kind;
  std::size_t test_width;
  /// '89-class circuits additionally run the scan-free sequential model.
  bool sequential;
};

constexpr Workload kWorkloads[] = {
    // ISCAS'85-class combinational: gate-instance style...
    {"c17.v", "iscas85", 64, true, 0, CodeKind::CrcDetect, 0, false},
    {"add432.v", "iscas85", 256, true, 0, CodeKind::CrcDetect, 0, false},
    {"mul880.v", "iscas85", 256, true, 0, CodeKind::CrcDetect, 0, false},
    // ...and bus + assign expression style (the expression-synthesis path).
    {"ecc499.v", "iscas85", 256, true, 0, CodeKind::CrcDetect, 0, false},
    {"par1355.v", "iscas85", 256, false, 0, CodeKind::CrcDetect, 0, false},
    {"cmp1908.v", "iscas85", 256, false, 0, CodeKind::CrcDetect, 0, false},
    {"ctl2670.v", "iscas85", 256, false, 0, CodeKind::CrcDetect, 0, false},
    {"alu3540.v", "iscas85", 128, false, 0, CodeKind::CrcDetect, 0, false},
    {"bar5315.v", "iscas85", 128, false, 0, CodeKind::CrcDetect, 0, false},
    {"mul6288.v", "iscas85", 128, false, 0, CodeKind::CrcDetect, 0, false},
    {"vot7552.v", "iscas85", 128, false, 0, CodeKind::CrcDetect, 0, false},
    // ISCAS'89-class sequential (protected wrap + sequential model).
    {"s27.v", "iscas89", 64, true, 3, CodeKind::CrcDetect, 3, true},
    {"ctrl344.v", "iscas89", 256, true, 4, CodeKind::HammingPlusCrc, 4, true},
    {"pipe1196.v", "iscas89", 128, false, 4, CodeKind::CrcDetect, 4, true},
    {"ctrl5378.v", "iscas89", 128, false, 4, CodeKind::CrcDetect, 4, true},
    // EPFL-class arithmetic.
    {"epfl_adder.v", "epfl", 128, false, 0, CodeKind::CrcDetect, 0, false},
    {"epfl_bar.v", "epfl", 128, false, 0, CodeKind::CrcDetect, 0, false},
    {"epfl_max.v", "epfl", 128, false, 0, CodeKind::CrcDetect, 0, false},
};

std::string circuit_name(const std::string& file) {
  return file.substr(0, file.find('.'));
}

/// Lint acceptance for an import: nothing structurally broken. Floating
/// inputs are tolerated — the clock ports of the sequential benches are
/// intentionally unread (retscan flops clock implicitly).
bool lint_clean(const Netlist& netlist) {
  const std::vector<LintIssue> issues = lint_netlist(netlist);
  bool clean = true;
  for (const LintIssue& issue : issues) {
    if (issue.kind == LintKind::FloatingInput) {
      continue;
    }
    std::cout << "  LINT: " << issue.message << "\n";
    clean = false;
  }
  return clean;
}

}  // namespace

int main() {
  bench::header("Imported ISCAS-style workloads (structural-Verilog frontend)");
  bench::JsonReport json("external");
  bool ok = true;

  const std::string dir = std::string(RETSCAN_CIRCUITS_DIR) + "/";
  double min_coverage = 1.0;
  double min_coverage_td = 1.0;
  double min_coverage_seq = 1.0;
  double suite_min[3] = {1.0, 1.0, 1.0};
  const char* suite_names[3] = {"iscas85", "iscas89", "epfl"};
  double total_cells = 0.0;
  unsigned threads = 1;

  for (const Workload& work : kWorkloads) {
    const std::string path = dir + work.file;
    Netlist imported = Netlist::from_verilog(path);
    const std::string name = circuit_name(work.file);
    const std::size_t ports = imported.inputs().size() + imported.outputs().size();
    const std::size_t cells = imported.cell_count() - ports;
    const std::size_t flops = imported.flops().size();
    total_cells += static_cast<double>(cells);
    const bool clean = lint_clean(imported);
    ok = ok && clean;

    ProtectionConfig protection;
    protection.kind = work.kind;
    protection.chain_count = work.chains;
    protection.test_width = work.test_width;
    Session session = work.chains == 0
                          ? Session::unprotected(std::move(imported))
                          : Session(std::move(imported), protection);

    CampaignSpec spec;
    spec.kind = CampaignKind::FaultCoverage;
    spec.backend = Backend::PackedParallel;
    spec.seed = 7;
    spec.atpg.random_patterns = work.random_patterns;
    spec.atpg.run_podem = work.run_podem;
    spec.atpg.max_backtracks = 300;
    const CampaignResult stuck = session.run(spec);
    const double coverage = stuck.atpg.coverage();
    min_coverage = std::min(min_coverage, coverage);
    threads = stuck.threads;

    // Same pattern set, transition-delay model: launch/capture pairs over
    // the uncollapsed stem universe.
    spec.kind = CampaignKind::TransitionDelay;
    const CampaignResult transition = session.run(spec);
    const double td_coverage = transition.faults.coverage();
    min_coverage_td = std::min(min_coverage_td, td_coverage);

    std::cout << name << ": " << cells << " cells, " << flops << " flops"
              << (work.chains == 0 ? " (bare)" : " (protected)") << " — "
              << stuck.atpg.patterns.size() << " patterns, stuck-at "
              << 100.0 * coverage << "% (" << stuck.faults.detected << "/"
              << stuck.faults.total_faults << ") in " << stuck.seconds
              << " s, transition " << 100.0 * td_coverage << "% ("
              << transition.faults.detected << "/"
              << transition.faults.total_faults << ") in "
              << transition.seconds << " s\n";
    json.set("coverage_" + name, coverage);
    json.set("coverage_td_" + name, td_coverage);
    json.set("cells_" + name, static_cast<double>(cells));
    ok = ok && stuck.passed() && transition.passed();

    // '89-class circuits: the scan-free multi-cycle model on the raw import
    // (a fresh bare session — no scan fabric, no capture constraints).
    if (work.sequential) {
      Session bare = Session::unprotected(Netlist::from_verilog(path));
      CampaignSpec seq;
      seq.kind = CampaignKind::SequentialCoverage;
      seq.backend = Backend::PackedParallel;
      seq.seed = 7;
      seq.sequences = 64;
      seq.cycles = 32;
      const CampaignResult sequential = bare.run(seq);
      const double seq_coverage = sequential.faults.coverage();
      min_coverage_seq = std::min(min_coverage_seq, seq_coverage);
      std::cout << "  sequential (" << seq.sequences << " seq x " << seq.cycles
                << " cycles): " << 100.0 * seq_coverage << "% ("
                << sequential.faults.detected << "/"
                << sequential.faults.total_faults << ") in "
                << sequential.seconds << " s\n";
      json.set("coverage_seq_" + name, seq_coverage);
      ok = ok && sequential.passed();
    }

    for (int s = 0; s < 3; ++s) {
      if (work.suite == std::string(suite_names[s])) {
        suite_min[s] = std::min(suite_min[s], coverage);
      }
    }
  }

  // --- compiled-core throughput on the largest import ----------------------
  bench::header("Compiled-core throughput on mul880 (imported)");
  const Netlist mul = Netlist::from_verilog(dir + "mul880.v");
  const std::shared_ptr<const CompiledNetlist> compiled = mul.compiled();
  const std::size_t gates = compiled->instrs().size();
  const std::size_t source_count = compiled->slot_count() - gates;

  // Lane-block full sweep: every word of every source block gets independent
  // stimulus, so each pass is gates x kLaneBlockBits lane evaluations.
  constexpr int kSweeps = 2000;
  std::vector<LaneBlock> slots(compiled->slot_count(), LaneBlock{});
  Rng stim_rng(1);
  bench::Stopwatch timer;
  LaneWord checksum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    for (std::size_t i = 0; i < source_count; ++i) {
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        slots[i].w[w] = stim_rng.next_u64();
      }
    }
    compiled->eval_full(slots.data());
    checksum ^= slots[compiled->slot_count() - 1].w[0];
  }
  const double sweep_time = timer.seconds();
  const double compiled_meps = static_cast<double>(gates) * kSweeps *
                               static_cast<double>(kLaneBlockBits) / sweep_time / 1e6;
  ok = ok && checksum != 0;  // keeps the loop observable

  // --- cone fault-evaluation throughput on the same import -----------------
  CombinationalFrame frame(mul);
  const auto faults = collapse_faults(mul, enumerate_faults(mul));
  Rng pattern_rng(7);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 256; ++i) {
    patterns.push_back(frame.random_pattern(pattern_rng));
  }
  frame.warm_cones(faults);
  // Each loaded block carries kLaneBlockBits patterns; the throughput unit
  // stays faults x (patterns/64) per second so the metric is comparable
  // across lane widths and PRs.
  std::vector<CombinationalFrame::LoadedPatternBatch> loaded;
  for (std::size_t base = 0; base < patterns.size(); base += kLaneBlockBits) {
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    loaded.push_back(frame.load_batch(
        std::vector<BitVec>(patterns.begin() + base, patterns.begin() + base + count)));
  }
  CombinationalFrame::Workspace workspace;
  constexpr int kRepeats = 20;
  std::uint64_t mask_checksum = 0;
  timer.restart();
  for (int r = 0; r < kRepeats; ++r) {
    for (const auto& batch : loaded) {
      for (const Fault& fault : faults) {
        const LaneBlock mask = frame.detect_block(fault, batch, batch.good, workspace);
        for (std::size_t w = 0; w < kLaneWords; ++w) {
          mask_checksum ^= mask.w[w];
        }
      }
    }
  }
  const double cone_time = timer.seconds() / kRepeats;
  const double word_batches =
      static_cast<double>((patterns.size() + kLaneCount - 1) / kLaneCount);
  const double evals_per_sec =
      static_cast<double>(faults.size()) * word_batches / cone_time;
  (void)mask_checksum;

  std::cout << "full sweep: " << compiled_meps << " M lane-gate-evals/sec over "
            << gates << " compiled gates\n"
            << "cone path:  " << evals_per_sec << " fault-evals/sec over "
            << faults.size() << " faults x " << loaded.size() << " lane blocks\n"
            << "min stuck-at coverage across imports: " << 100.0 * min_coverage
            << "%\nmin transition coverage across imports: "
            << 100.0 * min_coverage_td
            << "%\nmin sequential coverage across '89-class imports: "
            << 100.0 * min_coverage_seq << "%\n";

  json.set("circuits", static_cast<double>(std::size(kWorkloads)));
  json.set("total_cells", total_cells);
  json.set("min_coverage", min_coverage);
  json.set("min_coverage_td", min_coverage_td);
  json.set("min_coverage_seq", min_coverage_seq);
  for (int s = 0; s < 3; ++s) {
    json.set(std::string("min_coverage_") + suite_names[s], suite_min[s]);
  }
  json.set("compiled_meps", compiled_meps);
  json.set("faultsim_evals_per_sec", evals_per_sec);
  json.set("threads", static_cast<double>(threads));
  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[external] PASS\n" : "\n[external] FAIL\n");
  return ok ? 0 : 1;
}
