// Imported-workload bench: the first externally-authored circuits retscan
// runs. Every vendored ISCAS-style bench under bench/circuits/ is parsed by
// the structural-Verilog frontend, lint-checked, and driven through a packed
// fault-coverage campaign via the same Session/CampaignSpec pipeline the CLI
// uses; the largest import additionally feeds the compiled-core full-sweep
// and cone fault-evaluation throughput loops.
//
// BENCH_external.json records per-circuit coverage plus the aggregate
// metrics; ci/check_bench_json.py gates min_coverage (deterministic for a
// fixed seed) against bench/baselines/BENCH_external.json.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/session.hpp"
#include "retscan/sim.hpp"
#include "retscan/test.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

using namespace retscan;

namespace {

struct Workload {
  const char* file;
  std::size_t random_patterns;
  /// 0 = bare import; otherwise the circuit is wrapped in the protection
  /// architecture with this many retention scan chains.
  std::size_t chains;
  CodeKind kind;
  std::size_t test_width;
};

constexpr Workload kWorkloads[] = {
    {"c17.v", 64, 0, CodeKind::CrcDetect, 0},
    {"add432.v", 256, 0, CodeKind::CrcDetect, 0},
    {"mul880.v", 256, 0, CodeKind::CrcDetect, 0},
    {"s27.v", 64, 3, CodeKind::CrcDetect, 3},
    {"ctrl344.v", 256, 4, CodeKind::HammingPlusCrc, 4},
};

std::string circuit_name(const std::string& file) {
  return file.substr(0, file.find('.'));
}

/// Lint acceptance for an import: nothing structurally broken. Floating
/// inputs are tolerated — the clock ports of the sequential benches are
/// intentionally unread (retscan flops clock implicitly).
bool lint_clean(const Netlist& netlist) {
  const std::vector<LintIssue> issues = lint_netlist(netlist);
  bool clean = true;
  for (const LintIssue& issue : issues) {
    if (issue.kind == LintKind::FloatingInput) {
      continue;
    }
    std::cout << "  LINT: " << issue.message << "\n";
    clean = false;
  }
  return clean;
}

}  // namespace

int main() {
  bench::header("Imported ISCAS-style workloads (structural-Verilog frontend)");
  bench::JsonReport json("external");
  bool ok = true;

  const std::string dir = std::string(RETSCAN_CIRCUITS_DIR) + "/";
  double min_coverage = 1.0;
  double total_cells = 0.0;
  unsigned threads = 1;

  for (const Workload& work : kWorkloads) {
    const std::string path = dir + work.file;
    Netlist imported = Netlist::from_verilog(path);
    const std::string name = circuit_name(work.file);
    const std::size_t ports = imported.inputs().size() + imported.outputs().size();
    const std::size_t cells = imported.cell_count() - ports;
    const std::size_t flops = imported.flops().size();
    total_cells += static_cast<double>(cells);
    const bool clean = lint_clean(imported);
    ok = ok && clean;

    ProtectionConfig protection;
    protection.kind = work.kind;
    protection.chain_count = work.chains;
    protection.test_width = work.test_width;
    Session session = work.chains == 0
                          ? Session::unprotected(std::move(imported))
                          : Session(std::move(imported), protection);

    CampaignSpec spec;
    spec.kind = CampaignKind::FaultCoverage;
    spec.backend = Backend::PackedParallel;
    spec.seed = 7;
    spec.atpg.random_patterns = work.random_patterns;
    spec.atpg.max_backtracks = 300;
    const CampaignResult result = session.run(spec);
    const double coverage = result.atpg.coverage();
    min_coverage = std::min(min_coverage, coverage);
    threads = result.threads;

    std::cout << name << ": " << cells << " cells, " << flops << " flops"
              << (work.chains == 0 ? " (bare)" : " (protected)") << " — "
              << result.atpg.patterns.size() << " patterns, coverage "
              << 100.0 * coverage << "% (" << result.faults.detected << "/"
              << result.faults.total_faults << "), " << result.seconds << " s\n";
    json.set("coverage_" + name, coverage);
    json.set("cells_" + name, static_cast<double>(cells));
    ok = ok && result.passed();
  }

  // --- compiled-core throughput on the largest import ----------------------
  bench::header("Compiled-core throughput on mul880 (imported)");
  const Netlist mul = Netlist::from_verilog(dir + "mul880.v");
  const std::shared_ptr<const CompiledNetlist> compiled = mul.compiled();
  const std::size_t gates = compiled->instrs().size();
  const std::size_t source_count = compiled->slot_count() - gates;

  // Lane-block full sweep: every word of every source block gets independent
  // stimulus, so each pass is gates x kLaneBlockBits lane evaluations.
  constexpr int kSweeps = 2000;
  std::vector<LaneBlock> slots(compiled->slot_count(), LaneBlock{});
  Rng stim_rng(1);
  bench::Stopwatch timer;
  LaneWord checksum = 0;
  for (int s = 0; s < kSweeps; ++s) {
    for (std::size_t i = 0; i < source_count; ++i) {
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        slots[i].w[w] = stim_rng.next_u64();
      }
    }
    compiled->eval_full(slots.data());
    checksum ^= slots[compiled->slot_count() - 1].w[0];
  }
  const double sweep_time = timer.seconds();
  const double compiled_meps = static_cast<double>(gates) * kSweeps *
                               static_cast<double>(kLaneBlockBits) / sweep_time / 1e6;
  ok = ok && checksum != 0;  // keeps the loop observable

  // --- cone fault-evaluation throughput on the same import -----------------
  CombinationalFrame frame(mul);
  const auto faults = collapse_faults(mul, enumerate_faults(mul));
  Rng pattern_rng(7);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 256; ++i) {
    patterns.push_back(frame.random_pattern(pattern_rng));
  }
  frame.warm_cones(faults);
  // Each loaded block carries kLaneBlockBits patterns; the throughput unit
  // stays faults x (patterns/64) per second so the metric is comparable
  // across lane widths and PRs.
  std::vector<CombinationalFrame::LoadedPatternBatch> loaded;
  for (std::size_t base = 0; base < patterns.size(); base += kLaneBlockBits) {
    const std::size_t count =
        std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
    loaded.push_back(frame.load_batch(
        std::vector<BitVec>(patterns.begin() + base, patterns.begin() + base + count)));
  }
  CombinationalFrame::Workspace workspace;
  constexpr int kRepeats = 20;
  std::uint64_t mask_checksum = 0;
  timer.restart();
  for (int r = 0; r < kRepeats; ++r) {
    for (const auto& batch : loaded) {
      for (const Fault& fault : faults) {
        const LaneBlock mask = frame.detect_block(fault, batch, batch.good, workspace);
        for (std::size_t w = 0; w < kLaneWords; ++w) {
          mask_checksum ^= mask.w[w];
        }
      }
    }
  }
  const double cone_time = timer.seconds() / kRepeats;
  const double word_batches =
      static_cast<double>((patterns.size() + kLaneCount - 1) / kLaneCount);
  const double evals_per_sec =
      static_cast<double>(faults.size()) * word_batches / cone_time;
  (void)mask_checksum;

  std::cout << "full sweep: " << compiled_meps << " M lane-gate-evals/sec over "
            << gates << " compiled gates\n"
            << "cone path:  " << evals_per_sec << " fault-evals/sec over "
            << faults.size() << " faults x " << loaded.size() << " lane blocks\n"
            << "min coverage across imports: " << 100.0 * min_coverage << "%\n";

  json.set("circuits", static_cast<double>(std::size(kWorkloads)));
  json.set("total_cells", total_cells);
  json.set("min_coverage", min_coverage);
  json.set("compiled_meps", compiled_meps);
  json.set("faultsim_evals_per_sec", evals_per_sec);
  json.set("threads", static_cast<double>(threads));
  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[external] PASS\n" : "\n[external] FAIL\n");
  return ok ? 0 : 1;
}
