// Ablation A-2: rush-current-reduction baselines ([7], [8]) vs state
// monitoring. Staggered switch turn-on divides the rail droop by the stage
// count — reducing the upset *rate* — but any upset that still occurs goes
// uncorrected. Monitoring leaves the electrical transient alone but detects
// and repairs the damage. This bench sweeps the stagger stages and reports,
// per wake-up: expected upsets, residual corrupted-wake probability without
// monitoring, and with monitoring (Hamming+CRC), plus the wake-latency cost
// of staggering.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/parallel.hpp"
#include "retscan/design.hpp"
#include "retscan/campaign.hpp"

using namespace retscan;

int main() {
  const std::size_t sequences = bench::sequence_budget(20000);
  parallel::CampaignRunner runner;
  bench::header("Ablation A-2 — rush-reduction baseline vs monitoring (" +
                std::to_string(sequences) + " wake-ups per row, " +
                std::to_string(runner.threads()) + " threads)");

  std::cout << "# stages  droop_V  E[upsets]  settle_ns  corrupted%_baseline"
               "  corrupted%_monitored\n"
            << std::fixed;
  bool ok = true;
  double prev_baseline = 1e9;
  for (const std::size_t stages : {1u, 2u, 4u, 8u, 16u}) {
    RushParameters rush;
    rush.resistance_ohm = 0.15;  // aggressive switch sizing: rings hard
    rush.stagger_stages = stages;
    const RushCurrentModel model(rush);

    CorruptionParameters cparams;
    cparams.vulnerability = 0.05;
    const CorruptionModel corruption(cparams, model);

    // Baseline: no monitoring — every sampled upset survives into active
    // mode. Monitored: the Fig. 8 protocol repairs what it can.
    ValidationConfig config;
    config.fifo = FifoSpec{32, 32};
    config.chain_count = 80;
    config.mode = InjectionMode::RushModel;
    config.rush = rush;
    config.corruption = cparams;
    config.seed = 31 * stages;
    const ValidationStats stats = runner.run_fast(config, sequences).stats;

    const double corrupted_baseline =
        100.0 * static_cast<double>(stats.sequences_with_errors) /
        static_cast<double>(stats.sequences);
    const double corrupted_monitored =
        100.0 *
        static_cast<double>(stats.sequences_with_errors - stats.corrected) /
        static_cast<double>(stats.sequences);

    std::cout << std::setw(8) << stages << std::setprecision(3) << std::setw(9)
              << model.peak_droop() << std::setw(11)
              << corruption.expected_upsets(1040) << std::setprecision(1)
              << std::setw(11) << model.settle_time_ns() << std::setprecision(3)
              << std::setw(21) << corrupted_baseline << std::setw(22)
              << corrupted_monitored << "\n";

    // Staggering reduces the baseline corruption rate but never to the
    // monitored level at stage 1..4; monitoring dominates the baseline at
    // every operating point.
    ok = ok && corrupted_monitored <= corrupted_baseline;
    ok = ok && corrupted_baseline <= prev_baseline + 1e-9;
    ok = ok && stats.silent_corruptions == 0;
    prev_baseline = corrupted_baseline;
  }
  std::cout << "\nNote: residual corrupted%_monitored counts wake-ups with burst\n"
               "errors the SEC code cannot repair; those are flagged (detected),\n"
               "never silent — the baseline has no flag at all.\n";
  std::cout << (ok ? "\n[ablation-baseline] PASS\n" : "\n[ablation-baseline] FAIL\n");
  return ok ? 0 : 1;
}
