// Ablation A-5: hardware correction vs software recovery (Section V's
// "CRC error detection with software recovery may be considered").
// Characterizes both monitor flavors on the real FIFO, then compares the
// end-to-end repair latency, energy, and always-on area of (a) Hamming
// inline correction and (b) CRC detect + ISR + checkpoint reload.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"

using namespace retscan;

int main() {
  bench::header("Ablation A-5 — hardware correction vs software recovery (32x32 FIFO)");
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); },
                               TechLibrary::st120(), 10.0);
  const RecoveryAnalyzer analyzer{SoftwareRecoveryParameters{}};
  const std::size_t flops = FifoSpec{32, 32}.flop_count();

  std::cout << "# W    hw_lat_ns  sw_lat_ns   hw_nJ   sw_nJ   hw_area%  sw_area%\n"
            << std::fixed;
  bool ok = true;
  for (const std::size_t w : {4u, 16u, 80u}) {
    ProtectionConfig hamming;
    hamming.kind = CodeKind::HammingCorrect;
    hamming.chain_count = w;
    hamming.test_width = 4;
    const CostRow hw_row = synth.characterize(hamming);

    ProtectionConfig crc = hamming;
    crc.kind = CodeKind::CrcDetect;
    const CostRow sw_row = synth.characterize(crc);

    const RecoveryCosts hw = analyzer.hardware_correction(
        hw_row.chain_length, hw_row.dec_energy_nj,
        hw_row.total_area_um2 - hw_row.base_area_um2, hw_row.base_area_um2);
    const RecoveryCosts sw = analyzer.software_recovery(
        flops, sw_row.chain_length, sw_row.dec_energy_nj,
        sw_row.total_area_um2 - sw_row.base_area_um2, sw_row.base_area_um2);

    std::cout << std::setw(3) << w << std::setprecision(0) << std::setw(12)
              << hw.total_latency_ns << std::setw(11) << sw.total_latency_ns
              << std::setprecision(2) << std::setw(8) << hw.energy_nj << std::setw(8)
              << sw.energy_nj << std::setprecision(1) << std::setw(10)
              << hw.area_overhead_percent << std::setw(10)
              << sw.area_overhead_percent << "\n";

    // The paper's trade-off: software recovery always slower (the target
    // application is high-performance, hence hardware correction), but its
    // always-on area (CRC + dense SRAM checkpoint) is far below the
    // flip-flop parity memory.
    ok = ok && sw.total_latency_ns > hw.total_latency_ns;
    ok = ok && sw.area_overhead_percent < hw.area_overhead_percent;
  }
  std::cout << "\nSoftware recovery trades a 2-20x repair latency penalty for a fraction of\n"
               "the always-on area — matching the paper's guidance to prefer\n"
               "hardware correction for high-performance, latency-sensitive parts.\n";
  std::cout << (ok ? "\n[ablation-recovery] PASS\n" : "\n[ablation-recovery] FAIL\n");
  return ok ? 0 : 1;
}
