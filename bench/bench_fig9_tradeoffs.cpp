// Reproduces Fig. 9: implementation trade-offs of state monitoring for
// CRC-16 and Hamming(7,4).
//  (a) area overhead (%) and coding power (mW) vs number of scan chains
//  (b) coding latency (ns) and energy (nJ) vs number of scan chains
// Prints the four series in gnuplot-ready columns.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"

using namespace retscan;

int main() {
  bench::header("Fig. 9 — trade-offs vs number of scan chains (32x32 FIFO)");
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); },
                               TechLibrary::st120(), 10.0);

  std::vector<CostRow> crc_rows, hamming_rows;
  for (const std::size_t w : {4u, 8u, 16u, 40u, 80u}) {
    ProtectionConfig crc;
    crc.kind = CodeKind::CrcDetect;
    crc.chain_count = w;
    crc.test_width = 4;
    crc_rows.push_back(synth.characterize(crc));

    ProtectionConfig hamming;
    hamming.kind = CodeKind::HammingCorrect;
    hamming.chain_count = w;
    hamming.test_width = 4;
    hamming_rows.push_back(synth.characterize(hamming));
  }

  std::cout << "\n# Fig 9(a): area overhead (%) and coding power (mW)\n";
  std::cout << "# W  area_crc  power_crc  area_h74  power_h74\n" << std::fixed;
  for (std::size_t i = 0; i < crc_rows.size(); ++i) {
    std::cout << std::setw(4) << crc_rows[i].chain_count << std::setprecision(2)
              << std::setw(10) << crc_rows[i].overhead_percent << std::setw(11)
              << crc_rows[i].dec_power_mw << std::setw(10)
              << hamming_rows[i].overhead_percent << std::setw(11)
              << hamming_rows[i].dec_power_mw << "\n";
  }

  std::cout << "\n# Fig 9(b): coding latency (ns) and energy (nJ)\n";
  std::cout << "# W  latency  energy_crc  energy_h74\n";
  for (std::size_t i = 0; i < crc_rows.size(); ++i) {
    std::cout << std::setw(4) << crc_rows[i].chain_count << std::setprecision(0)
              << std::setw(9) << crc_rows[i].latency_ns << std::setprecision(3)
              << std::setw(12) << crc_rows[i].dec_energy_nj << std::setw(12)
              << hamming_rows[i].dec_energy_nj << "\n";
  }

  // Shape checks per the paper's discussion of Fig. 9:
  bool ok = true;
  for (std::size_t i = 0; i < crc_rows.size(); ++i) {
    // Hamming area overhead well above CRC; power only 20-60% higher
    // because scan-shift switching dominates both.
    ok = ok && hamming_rows[i].overhead_percent > 3.0 * crc_rows[i].overhead_percent;
    const double power_ratio = hamming_rows[i].dec_power_mw / crc_rows[i].dec_power_mw;
    ok = ok && power_ratio > 1.0 && power_ratio < 2.0;
    // Latency identical across codes (set by chain length alone).
    ok = ok && hamming_rows[i].latency_ns == crc_rows[i].latency_ns;
  }
  // Energy drops by >10x across the sweep for both codes.
  ok = ok && crc_rows.front().dec_energy_nj > 10.0 * crc_rows.back().dec_energy_nj;
  ok = ok && hamming_rows.front().dec_energy_nj > 10.0 * hamming_rows.back().dec_energy_nj;
  std::cout << (ok ? "\n[fig9] shape check PASS\n" : "\n[fig9] shape check FAIL\n");
  return ok ? 0 : 1;
}
