// Reproduces Table III: area overhead, power and correction capability of
// different Hamming codes on the 32x32 FIFO.
//
// Paper rows: (7,4) W=56 84.8% cap 14.3%* | (15,11) W=55 42.0% cap 6.67%
//             (31,26) W=52 23.2% cap 3.23% | (63,57) W=57 15.9% cap 1.59%
// (*the paper's "cap" column is r/n; we report (n-k)/k redundancy alongside)
//
// Substitution note: the paper's W values do not divide the FIFO's 1040
// flops evenly (its chains were unequal). We pad the design with spare
// flops to the next multiple of W — standard practice — and record the
// padding in the output.

#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"

using namespace retscan;

int main() {
  bench::header("Table III — Hamming code family cost (32x32 FIFO)");

  struct Entry {
    unsigned r;
    std::size_t w;
  };
  // W per the paper; padding rounds 1040 up to a multiple of W.
  const Entry entries[] = {{3, 56}, {4, 55}, {5, 52}, {6, 57}};

  std::vector<CostRow> rows;
  for (const Entry& entry : entries) {
    const std::size_t flops = FifoSpec{32, 32}.flop_count();
    const std::size_t padded = ((flops + entry.w - 1) / entry.w) * entry.w;
    const std::size_t padding = padded - flops;
    ReliabilitySynthesizer synth(
        [padding] {
          Netlist nl = make_fifo(FifoSpec{32, 32});
          append_padding_flops(nl, padding);
          return nl;
        },
        TechLibrary::st120(), 10.0);
    ProtectionConfig config;
    config.kind = CodeKind::HammingCorrect;
    config.hamming_r = entry.r;
    config.chain_count = entry.w;
    // Test width must divide W; use the largest divisor <= 4.
    config.test_width = entry.w % 4 == 0 ? 4 : (entry.w % 2 == 0 ? 2 : 1);
    rows.push_back(synth.characterize(config));
    std::cout << "  [" << rows.back().code_name << "] W=" << entry.w << " padding=+"
              << padding << " flops, l=" << rows.back().chain_length << "\n";
  }
  print_cost_table(std::cout, "32x32 FIFO, Hamming family, st120-class, 100 MHz", rows);

  std::cout << "\npaper Table III reference (STMicro 120nm):\n"
            << "  (7,4)   W=56: total 132338 um^2  84.8%  8.21 mW  cap 14.3%\n"
            << "  (15,11) W=55: total 101681 um^2  42.0%  6.52 mW  cap 6.67%\n"
            << "  (31,26) W=52: total  88311 um^2  23.2%  5.89 mW  cap 3.23%\n"
            << "  (63,57) W=57: total  82987 um^2  15.9%  5.64 mW  cap 1.59%\n";

  // Shape: overhead decreases monotonically from (7,4) to (63,57), as does
  // the correction capability.
  bool ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    ok = ok && rows[i].overhead_percent < rows[i - 1].overhead_percent;
    ok = ok && rows[i].capability_percent < rows[i - 1].capability_percent;
  }
  std::cout << (ok ? "\n[table3] trend check PASS\n" : "\n[table3] trend check FAIL\n");
  return ok ? 0 : 1;
}
