// Ablation A-6: what the monitors cost *during sleep*. Power gating exists
// to kill leakage; the monitoring architecture adds always-on storage
// (parity memory, CRC/signature registers) that leaks through every sleep
// period. This bench quantifies sleep-mode leakage per configuration and
// the monitoring energy amortization: the minimum sleep duration for which
// entering the protected sleep (encode + decode energy) still beats
// staying awake — the system-level viability check the paper leaves
// implicit.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"

using namespace retscan;

int main() {
  bench::header("Ablation A-6 — sleep-mode leakage and break-even sleep time (32x32 FIFO)");
  const TechLibrary tech = TechLibrary::st120();
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); }, tech, 10.0);

  struct Config {
    const char* label;
    CodeKind kind;
    bool secded;
  };
  const Config configs[] = {
      {"CRC-16", CodeKind::CrcDetect, false},
      {"Hamming(7,4)", CodeKind::HammingCorrect, false},
      {"SEC-DED(8,4)", CodeKind::HammingCorrect, true},
      {"Hamming+CRC", CodeKind::HammingPlusCrc, false},
  };

  // Reference: active-mode leakage of the unprotected design (what we save
  // by sleeping) measured on the CRC design's gated domain.
  std::cout << "# config          sleep_leak_uW  active_leak_uW  enc+dec_nJ"
               "  breakeven_us\n"
            << std::fixed;
  bool ok = true;
  double crc_sleep_leak = 0.0, hamming_sleep_leak = 0.0;
  for (const Config& config : configs) {
    ProtectionConfig pc;
    pc.kind = config.kind;
    pc.secded = config.secded;
    pc.chain_count = 80;
    pc.test_width = 4;
    const CostRow row = synth.characterize(pc);

    const ProtectedDesign design(make_fifo(FifoSpec{32, 32}), pc);
    const double sleep_leak_uw =
        tech.sleep_leakage_nw(design.netlist(), pc.gated_domain) * 1e-3;
    const double active_leak_uw =
        (tech.leakage_nw(design.netlist(), pc.gated_domain) +
         tech.leakage_nw(design.netlist(), kAlwaysOnDomain)) *
        1e-3;
    const double monitoring_nj = row.enc_energy_nj + row.dec_energy_nj;
    // Break-even: leakage power saved must repay the coding energy.
    const double saved_uw = active_leak_uw - sleep_leak_uw;
    const double breakeven_us = saved_uw > 0 ? monitoring_nj / saved_uw * 1e3 : -1;

    std::cout << std::left << std::setw(17) << config.label << std::right
              << std::setprecision(2) << std::setw(13) << sleep_leak_uw
              << std::setw(16) << active_leak_uw << std::setw(12) << monitoring_nj
              << std::setprecision(1) << std::setw(14) << breakeven_us << "\n";

    ok = ok && sleep_leak_uw < active_leak_uw;  // sleeping must still save power
    ok = ok && breakeven_us > 0;
    if (config.kind == CodeKind::CrcDetect) {
      crc_sleep_leak = sleep_leak_uw;
    }
    if (config.kind == CodeKind::HammingCorrect && !config.secded) {
      hamming_sleep_leak = sleep_leak_uw;
    }
  }
  // The Hamming parity memory leaks meaningfully more than the CRC
  // registers through every sleep period.
  ok = ok && hamming_sleep_leak > crc_sleep_leak;

  std::cout << "\nSleep periods longer than the break-even column amortize the\n"
               "encode+decode energy; Hamming's always-on parity memory raises the\n"
               "sleep-mode leakage floor relative to CRC — an operating-point\n"
               "consideration the area/latency tables alone do not show.\n";
  std::cout << (ok ? "\n[ablation-leakage] PASS\n" : "\n[ablation-leakage] FAIL\n");
  return ok ? 0 : 1;
}
