// Microbenchmarks (google-benchmark) of the kernels the mass experiments
// rest on: Hamming encode/decode, CRC absorption, chain-protector passes,
// and the cycle simulator's step rate on the protected FIFO.

#include <benchmark/benchmark.h>

#include "retscan/netlist.hpp"
#include "retscan/coding.hpp"
#include "retscan/design.hpp"
#include "retscan/sim.hpp"

namespace retscan {
namespace {

void BM_HammingEncode(benchmark::State& state) {
  const HammingCode code(static_cast<unsigned>(state.range(0)));
  Rng rng(1);
  const BitVec data = rng.next_bits(code.k());
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(data));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HammingEncode)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_HammingDecodeWithError(benchmark::State& state) {
  const HammingCode code(static_cast<unsigned>(state.range(0)));
  Rng rng(2);
  const BitVec original = rng.next_bits(code.k());
  const BitVec parity = code.encode(original);
  for (auto _ : state) {
    BitVec corrupted = original;
    corrupted.flip(0);
    benchmark::DoNotOptimize(code.decode(corrupted, parity));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HammingDecodeWithError)->Arg(3)->Arg(6);

void BM_Crc16Stream(benchmark::State& state) {
  const Crc16 crc = Crc16::ccitt();
  Rng rng(3);
  const BitVec bits = rng.next_bits(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc.compute(bits));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) / 8);
}
BENCHMARK(BM_Crc16Stream)->Arg(1040)->Arg(16384);

void BM_ProtectorEncodeDecode(benchmark::State& state) {
  // Paper geometry: 80 chains x 13.
  HammingChainProtector protector(HammingCode::h7_4(), 80, 13);
  Rng rng(4);
  std::vector<BitVec> chains;
  for (int c = 0; c < 80; ++c) {
    chains.push_back(rng.next_bits(13));
  }
  for (auto _ : state) {
    protector.encode(chains);
    auto copy = chains;
    copy[5].flip(7);
    benchmark::DoNotOptimize(protector.decode_and_correct(copy));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtectorEncodeDecode);

void BM_SimulatorStepProtectedFifo(benchmark::State& state) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  RetentionSession session(design);
  session.sim().set_input("wr_en", true);
  session.sim().set_input("din0", true);
  for (auto _ : state) {
    session.sim().step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorStepProtectedFifo);

void BM_FullSleepWakeCycleGateLevel(benchmark::State& state) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingCorrect;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  RetentionSession session(design);
  for (auto _ : state) {
    const auto outcome = session.sleep_wake_cycle({ErrorLocation{2, 3}}, nullptr);
    benchmark::DoNotOptimize(outcome);
    session.reset_fsm();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullSleepWakeCycleGateLevel);

}  // namespace
}  // namespace retscan

BENCHMARK_MAIN();
