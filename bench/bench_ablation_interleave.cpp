// Ablation A-3: flop-to-chain assignment vs physically clustered bursts.
// A burst of upsets hits physically adjacent flops. With the Blocked
// assignment, adjacent flops sit at adjacent positions of the SAME chain,
// so a burst lands in different codewords (one per position) and every bit
// is singly correctable. With the Interleaved assignment, adjacent flops
// sit in adjacent CHAINS at the same position — inside the same Hamming
// word — so the burst concentrates in one codeword and defeats SEC. Chain
// assignment is therefore a free reliability knob of the methodology.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/coding.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

namespace {

/// Map a physical flop index to (chain, position) per assignment policy.
struct Mapping {
  std::size_t chains, length;
  bool interleaved;
  std::pair<std::size_t, std::size_t> locate(std::size_t flop) const {
    if (interleaved) {
      return {flop % chains, flop / chains};
    }
    return {flop / length, flop % length};
  }
};

double run(bool interleaved, std::size_t burst, std::size_t sequences) {
  const std::size_t chains = 80, length = 13, flops = chains * length;
  const Mapping mapping{chains, length, interleaved};
  HammingChainProtector protector(HammingCode::h7_4(), chains, length);
  Rng rng(interleaved ? 77 : 33);
  std::size_t corrected = 0;
  for (std::size_t seq = 0; seq < sequences; ++seq) {
    std::vector<BitVec> state;
    state.reserve(chains);
    for (std::size_t c = 0; c < chains; ++c) {
      state.push_back(rng.next_bits(length));
    }
    const auto reference = state;
    protector.encode(state);
    // Physically contiguous burst of `burst` flops at a random start.
    const std::size_t start = rng.next_below(flops - burst);
    for (std::size_t i = 0; i < burst; ++i) {
      const auto [c, p] = mapping.locate(start + i);
      state[c].flip(p);
    }
    protector.decode_and_correct(state);
    if (state == reference) {
      ++corrected;
    }
  }
  return 100.0 * static_cast<double>(corrected) / static_cast<double>(sequences);
}

}  // namespace

int main() {
  const std::size_t sequences = bench::sequence_budget(20000);
  bench::header("Ablation A-3 — chain assignment vs physically contiguous bursts (" +
                std::to_string(sequences) + " sequences per point)");

  std::cout << "# burst   corrected%_blocked   corrected%_interleaved\n" << std::fixed;
  bool ok = true;
  for (const std::size_t burst : {2u, 3u, 4u, 6u, 8u}) {
    const double blocked = run(false, burst, sequences);
    const double interleaved = run(true, burst, sequences);
    std::cout << std::setw(7) << burst << std::setprecision(2) << std::setw(21)
              << blocked << std::setw(25) << interleaved << "\n";
    ok = ok && blocked > interleaved;
  }
  // Blocked keeps contiguous bursts fully correctable up to the chain
  // count boundary (each bit lands in its own codeword).
  ok = ok && run(false, 4, 2000) == 100.0;
  std::cout << (ok ? "\n[ablation-interleave] PASS\n" : "\n[ablation-interleave] FAIL\n");
  return ok ? 0 : 1;
}
