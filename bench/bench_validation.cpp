// Reproduces the Section IV FPGA validation (Fig. 8 testbench):
//  * experiment 1 — one random error per test sequence: all detected, all
//    corrected, zero comparator mismatches;
//  * experiment 2 — clustered multiple errors per sequence: all detected,
//    none silently accepted; Hamming alone cannot repair the bursts.
// The paper runs 100M sequences on a VirtexII-Pro; the behavioral tier
// reproduces the protocol bit-exactly (proven against the gate-level model
// in the test suite) at a default of 200k sequences (RETSCAN_SEQUENCES
// overrides). A gate-level confirmation pass runs a smaller count.

#include <iostream>

#include "bench_util.hpp"
#include "testbench/harness.hpp"

using namespace retscan;

namespace {
void report(const char* name, const ValidationStats& stats) {
  std::cout << name << ": sequences " << stats.sequences << ", with-errors "
            << stats.sequences_with_errors << ", injected " << stats.errors_injected
            << "\n  detected " << stats.detected << " (rate "
            << 100.0 * stats.detection_rate() << "%), corrected " << stats.corrected
            << " (rate " << 100.0 * stats.correction_rate() << "%)"
            << "\n  flagged-uncorrectable " << stats.flagged_uncorrectable
            << ", comparator mismatches " << stats.comparator_mismatches
            << ", silent corruptions " << stats.silent_corruptions << "\n";
}
}  // namespace

int main() {
  const std::size_t fast_sequences = bench::sequence_budget(200000);
  bool ok = true;
  bench::JsonReport json("validation");

  bench::header("Section IV experiment 1 — single error per sequence (behavioral tier)");
  ValidationConfig single;
  single.fifo = FifoSpec{32, 32};
  single.chain_count = 80;
  single.mode = InjectionMode::SingleRandom;
  single.seed = 2024;
  {
    FastTestbench tb(single);
    bench::Stopwatch timer;
    const ValidationStats stats = tb.run(fast_sequences);
    const double rate = static_cast<double>(stats.sequences) / timer.seconds();
    report("exp1/fast", stats);
    std::cout << "  throughput " << rate << " sequences/sec\n";
    json.set("fast_sequences_per_sec", rate);
    json.set("fast_detection_rate", stats.detection_rate());
    json.set("fast_correction_rate", stats.correction_rate());
    ok = ok && stats.detection_rate() == 1.0 && stats.correction_rate() == 1.0 &&
         stats.silent_corruptions == 0;
  }

  bench::header("Section IV experiment 2 — clustered multiple errors (behavioral tier)");
  ValidationConfig burst = single;
  burst.mode = InjectionMode::MultipleBurst;
  burst.burst_size = 4;
  burst.burst_spread = 1;
  {
    FastTestbench tb(burst);
    const ValidationStats stats = tb.run(fast_sequences / 4);
    report("exp2/fast", stats);
    ok = ok && stats.detection_rate() == 1.0 && stats.silent_corruptions == 0;
    ok = ok && stats.correction_rate() < 0.5;  // bursts defeat SEC correction
  }

  bench::header("Gate-level confirmation (structural tier, 32-word FIFO slice)");
  ValidationConfig gate;
  gate.fifo = FifoSpec{32, 2};
  gate.chain_count = 8;
  gate.mode = InjectionMode::SingleRandom;
  gate.seed = 7;
  double scalar_gate_rate = 0.0;
  {
    StructuralTestbench tb(gate);
    bench::Stopwatch timer;
    const ValidationStats stats = tb.run(40);
    scalar_gate_rate = static_cast<double>(stats.sequences) / timer.seconds();
    report("exp1/gate", stats);
    std::cout << "  throughput " << scalar_gate_rate << " sequences/sec\n";
    ok = ok && stats.detection_rate() == 1.0 && stats.correction_rate() == 1.0 &&
         stats.comparator_mismatches == 0;
  }
  gate.mode = InjectionMode::MultipleBurst;
  gate.burst_size = 4;
  gate.burst_spread = 1;
  {
    StructuralTestbench tb(gate);
    const ValidationStats stats = tb.run(20);
    report("exp2/gate", stats);
    ok = ok && stats.detection_rate() == 1.0 && stats.silent_corruptions == 0;
  }

  bench::header("Gate-level packed campaign (64 corruption trials per simulation)");
  gate.mode = InjectionMode::SingleRandom;
  {
    StructuralTestbench tb(gate);
    bench::Stopwatch timer;
    const ValidationStats stats = tb.run_packed(640);
    const double packed_gate_rate = static_cast<double>(stats.sequences) / timer.seconds();
    const double gate_speedup = packed_gate_rate / scalar_gate_rate;
    report("exp1/gate-packed", stats);
    std::cout << "  throughput " << packed_gate_rate << " sequences/sec ("
              << gate_speedup << "x over the scalar structural tier)\n";
    json.set("scalar_gate_sequences_per_sec", scalar_gate_rate);
    json.set("packed_gate_sequences_per_sec", packed_gate_rate);
    json.set("gate_speedup", gate_speedup);
    json.set("packed_detection_rate", stats.detection_rate());
    json.set("packed_correction_rate", stats.correction_rate());
    ok = ok && stats.detection_rate() == 1.0 && stats.correction_rate() == 1.0 &&
         stats.silent_corruptions == 0 && gate_speedup >= 10.0;
  }

  std::cout << "\npaper: 100M sequences; 100%% single-error correction, 100%% multi-"
               "error detection, 0 escapes.\n";
  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[validation] PASS\n" : "\n[validation] FAIL\n");
  return ok ? 0 : 1;
}
