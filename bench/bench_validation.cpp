// Reproduces the Section IV FPGA validation (Fig. 8 testbench):
//  * experiment 1 — one random error per test sequence: all detected, all
//    corrected, zero comparator mismatches;
//  * experiment 2 — clustered multiple errors per sequence: all detected,
//    none silently accepted; Hamming alone cannot repair the bursts.
// The paper runs 100M sequences on a VirtexII-Pro; the behavioral tier
// reproduces the protocol bit-exactly (proven against the gate-level model
// in the test suite) at a default of 200k sequences (RETSCAN_SEQUENCES
// overrides). A gate-level confirmation pass runs a smaller count.
//
// Campaigns run on the retscan::parallel shard-map-reduce layer: the same
// seed yields bit-identical statistics at every thread count (asserted
// below by re-running experiment 1 serially), and the threads knob
// (RETSCAN_THREADS) multiplies the 64-lane bit-parallel throughput by
// near-linear core scaling — threads/shards/efficiency land in
// BENCH_validation.json.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "retscan/parallel.hpp"
#include "retscan/campaign.hpp"
#include "retscan/netlist.hpp"
#include "retscan/serve.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

namespace {
void report(const char* name, const ValidationStats& stats) {
  std::cout << name << ": sequences " << stats.sequences << ", with-errors "
            << stats.sequences_with_errors << ", injected " << stats.errors_injected
            << "\n  detected " << stats.detected << " (rate "
            << 100.0 * stats.detection_rate() << "%), corrected " << stats.corrected
            << " (rate " << 100.0 * stats.correction_rate() << "%)"
            << "\n  flagged-uncorrectable " << stats.flagged_uncorrectable
            << ", comparator mismatches " << stats.comparator_mismatches
            << ", silent corruptions " << stats.silent_corruptions << "\n";
}
}  // namespace

int main() {
  const std::size_t fast_sequences = bench::sequence_budget(200000);
  bool ok = true;
  bench::JsonReport json("validation");

  parallel::CampaignRunner runner;  // RETSCAN_THREADS / hardware_concurrency
  parallel::CampaignRunner serial(parallel::CampaignOptions{.threads = 1});
  const unsigned threads = runner.threads();

  bench::header("Section IV experiment 1 — single error per sequence (behavioral tier)");
  ValidationConfig single;
  single.fifo = FifoSpec{32, 32};
  single.chain_count = 80;
  single.mode = InjectionMode::SingleRandom;
  single.seed = 2024;
  {
    // The serial reference exists to prove determinism and measure scaling;
    // cap it so a paper-scale budget is not dominated by a 1-thread rerun.
    const std::size_t reference_sequences =
        std::min<std::size_t>(fast_sequences, 200000);
    bench::Stopwatch timer;
    const parallel::CampaignReport serial_run =
        serial.run_fast(single, reference_sequences);
    const double serial_seconds = timer.seconds();
    timer.restart();
    const parallel::CampaignReport reference_run =
        runner.run_fast(single, reference_sequences);
    const double parallel_seconds = timer.seconds();
    // Full-budget campaign on the pool (identical to reference_run when the
    // budget fits the cap, so skip the rerun then).
    timer.restart();
    const parallel::CampaignReport run = fast_sequences == reference_sequences
                                             ? reference_run
                                             : runner.run_fast(single, fast_sequences);
    const double full_seconds =
        fast_sequences == reference_sequences ? parallel_seconds : timer.seconds();

    const ValidationStats& stats = run.stats;
    const double rate = static_cast<double>(stats.sequences) / full_seconds;
    const double serial_rate =
        static_cast<double>(serial_run.stats.sequences) / serial_seconds;
    const double speedup = serial_seconds / parallel_seconds;
    const double efficiency = speedup / static_cast<double>(threads);
    report("exp1/fast", stats);
    std::cout << "  throughput " << rate << " sequences/sec on " << threads
              << " threads x " << run.shard_count << " shards (" << speedup
              << "x over 1 thread, efficiency " << 100.0 * efficiency << "%)\n";
    json.set("fast_sequences_per_sec", rate);
    json.set("serial_sequences_per_sec", serial_rate);
    json.set("fast_detection_rate", stats.detection_rate());
    json.set("fast_correction_rate", stats.correction_rate());
    json.set("threads", static_cast<double>(threads));
    json.set("shard_count", static_cast<double>(run.shard_count));
    json.set("reference_sequences", static_cast<double>(reference_sequences));
    json.set("parallel_speedup", speedup);
    json.set("scaling_efficiency", efficiency);

    // Thread scaling curve: the same campaign at 1/2/4/8 pool threads.
    // Statistics must be bit-identical to the serial reference at every
    // point (shard plan is thread-count independent); speedup is against
    // the 1-thread wall clock measured above.
    bench::header("Thread scaling curve (behavioral tier, fixed shard plan)");
    for (const unsigned n : {1u, 2u, 4u, 8u}) {
      parallel::CampaignRunner curve(parallel::CampaignOptions{.threads = n});
      timer.restart();
      const parallel::CampaignReport curve_run =
          curve.run_fast(single, reference_sequences);
      const double curve_seconds = timer.seconds();
      const double curve_speedup = serial_seconds / curve_seconds;
      const double curve_efficiency = curve_speedup / static_cast<double>(n);
      std::cout << "  " << n << " thread(s): " << curve_seconds << " s, speedup "
                << curve_speedup << "x, efficiency " << 100.0 * curve_efficiency
                << "%\n";
      const std::string suffix = "_t" + std::to_string(n);
      json.set("parallel_speedup" + suffix, curve_speedup);
      json.set("scaling_efficiency" + suffix, curve_efficiency);
      ok = ok && curve_run.stats == serial_run.stats;
    }
    ok = ok && stats.detection_rate() == 1.0 && stats.correction_rate() == 1.0 &&
         stats.silent_corruptions == 0;
    // Determinism across thread counts is part of the contract.
    ok = ok && serial_run.stats == reference_run.stats;
    // Parallel throughput gate: ≥3x on a non-trivial budget when the
    // hardware can actually deliver it — tiny CI smoke budgets are
    // dominated by shard setup; threads beyond hardware_concurrency
    // cannot scale at all; and hardware_concurrency counts logical CPUs,
    // so require ≥8 (≈4 physical cores with SMT) before demanding 3x.
    const unsigned cores = std::thread::hardware_concurrency();
    ok = ok && (threads < 4 || threads > cores || cores < 8 ||
                reference_sequences < 50000 || speedup >= 3.0);
  }

  bench::header("Checkpoint journal overhead (serial, append per shard)");
  {
    // checkpoint_overhead is the durability-gated metric (≤ 1.05 in
    // ci/check_bench_json.py): wall clock of a checkpointed campaign over
    // the identical plain campaign, both serial (no pool scheduling noise),
    // min-of-3. Small shards on purpose — more appends per second of work
    // than the defaults, so the gate bounds the journal's worst side.
    const std::size_t ck_sequences =
        std::max<std::size_t>(std::size_t{4096}, fast_sequences / 8);
    const std::size_t ck_shard = 512;
    const std::string path = "bench_checkpoint.journal";
    const auto min_of_3 = [](auto&& body) {
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        bench::Stopwatch timer;
        body();
        best = std::min(best, timer.seconds());
      }
      return best;
    };
    parallel::CampaignReport plain, durable;
    const double plain_seconds = min_of_3(
        [&] { plain = serial.run_fast(single, ck_sequences, ck_shard); });
    const double durable_seconds = min_of_3([&] {
      // Journal construction, every per-shard append and the atomic
      // renames are all inside the timed region — the full durability tax.
      std::remove(path.c_str());
      CampaignJournal journal(path, /*fingerprint=*/1, single.seed,
                              CampaignJournal::Mode::Truncate);
      parallel::RunControls controls;
      controls.journal = &journal;
      durable = serial.run_fast(single, ck_sequences, ck_shard, controls);
    });
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    const double overhead = durable_seconds / plain_seconds;
    std::cout << "checkpoint: " << ck_sequences << " sequences x "
              << durable.shard_count << " shards: plain " << plain_seconds
              << " s, journaled " << durable_seconds << " s (overhead "
              << overhead << "x)\n";
    json.set("checkpoint_overhead", overhead);
    json.set("checkpoint_shards", static_cast<double>(durable.shard_count));
    // Journaling must not perturb the statistics, only persist them.
    ok = ok && durable.stats == plain.stats &&
         durable.status == CampaignStatus::Complete;
  }

  bench::header("Section IV experiment 2 — clustered multiple errors (behavioral tier)");
  ValidationConfig burst = single;
  burst.mode = InjectionMode::MultipleBurst;
  burst.burst_size = 4;
  burst.burst_spread = 1;
  {
    const ValidationStats stats = runner.run_fast(burst, fast_sequences / 4).stats;
    report("exp2/fast", stats);
    ok = ok && stats.detection_rate() == 1.0 && stats.silent_corruptions == 0;
    ok = ok && stats.correction_rate() < 0.5;  // bursts defeat SEC correction
  }

  bench::header("Gate-level confirmation (structural tier, 32-word FIFO slice)");
  ValidationConfig gate;
  gate.fifo = FifoSpec{32, 2};
  gate.chain_count = 8;
  gate.mode = InjectionMode::SingleRandom;
  gate.seed = 7;
  double scalar_gate_rate = 0.0;
  {
    StructuralTestbench tb(gate);
    bench::Stopwatch timer;
    const ValidationStats stats = tb.run(40);
    scalar_gate_rate = static_cast<double>(stats.sequences) / timer.seconds();
    report("exp1/gate", stats);
    std::cout << "  throughput " << scalar_gate_rate << " sequences/sec\n";
    ok = ok && stats.detection_rate() == 1.0 && stats.correction_rate() == 1.0 &&
         stats.comparator_mismatches == 0;
  }
  gate.mode = InjectionMode::MultipleBurst;
  gate.burst_size = 4;
  gate.burst_spread = 1;
  {
    StructuralTestbench tb(gate);
    const ValidationStats stats = tb.run(20);
    report("exp2/gate", stats);
    ok = ok && stats.detection_rate() == 1.0 && stats.silent_corruptions == 0;
  }

  bench::header("Gate-level packed campaign (64 trials/simulation x " +
                std::to_string(threads) + " threads)");
  gate.mode = InjectionMode::SingleRandom;
  {
    // gate_speedup is the perf-gated metric, so it must stay a pure
    // lane-parallelism ratio (packed vs scalar, both on one thread, one
    // shard — no per-shard testbench construction in the timed region) —
    // machine-independent. The pooled run is reported separately.
    bench::Stopwatch timer;
    const parallel::CampaignReport packed_serial =
        serial.run_structural_packed(gate, 640, 640);
    const double packed_serial_rate =
        static_cast<double>(packed_serial.stats.sequences) / timer.seconds();
    timer.restart();
    const parallel::CampaignReport run = runner.run_structural_packed(gate, 640, 64);
    const ValidationStats& stats = run.stats;
    const double packed_gate_rate = static_cast<double>(stats.sequences) / timer.seconds();
    const double gate_speedup = packed_serial_rate / scalar_gate_rate;
    report("exp1/gate-packed", stats);
    std::cout << "  throughput " << packed_gate_rate << " sequences/sec pooled, "
              << packed_serial_rate << " on 1 thread (" << gate_speedup
              << "x over the scalar structural tier, " << run.shard_count
              << " shards)\n";
    json.set("scalar_gate_sequences_per_sec", scalar_gate_rate);
    json.set("packed_gate_sequences_per_sec", packed_serial_rate);
    json.set("pooled_gate_sequences_per_sec", packed_gate_rate);
    json.set("gate_speedup", gate_speedup);
    json.set("packed_detection_rate", stats.detection_rate());
    json.set("packed_correction_rate", stats.correction_rate());
    // Note: the two packed runs use different shard plans (1 x 640 vs
    // 10 x 64), so their stats differ by design; thread-count invariance
    // under a FIXED shard plan is asserted in exp1 and tests/test_parallel.
    ok = ok && stats.detection_rate() == 1.0 && stats.correction_rate() == 1.0 &&
         stats.silent_corruptions == 0 && gate_speedup >= 10.0;
    ok = ok && packed_serial.stats.detection_rate() == 1.0 &&
         packed_serial.stats.correction_rate() == 1.0 &&
         packed_serial.stats.silent_corruptions == 0;
  }

  bench::header("Event-driven scheduling — low-activity retention workload");
  {
    // A power-gated design spends most of its life idle: a burst of traffic,
    // a long quiet stretch, a retention sleep/wake, repeat. The dirty-net
    // worklist (sim/schedule.hpp) should make the quiet stretches nearly
    // free; the full sweep pays the whole netlist every settle regardless.
    // event_speedup is the perf-gated metric: same PackedSim workload, same
    // stimulus stream, Sweep wall clock over Event wall clock — a pure
    // scheduling ratio, machine-independent like gate_speedup above.
    ProtectionConfig protection;
    protection.kind = CodeKind::HammingPlusCrc;
    protection.chain_count = 8;
    protection.test_width = 4;
    const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), protection);
    const Netlist& nl = design.netlist();

    constexpr int kEpisodes = 12;
    constexpr int kActiveCycles = 4;
    constexpr std::size_t kIdleCycles = 256;
    auto run_workload = [&](PackedSim& sim) {
      std::uint64_t digest = 0;
      sim.reset();
      for (const char* name : {"se", "retain", "mon_en", "mon_decode",
                               "mon_clear", "sig_capture", "sig_compare",
                               "test_mode", "rd_en"}) {
        sim.set_input_all(name, false);
      }
      Rng stim(77);  // reseeded per run: both schedules see identical lanes
      for (int episode = 0; episode < kEpisodes; ++episode) {
        for (int active = 0; active < kActiveCycles; ++active) {
          sim.set_input("wr_en", stim.next_u64());
          sim.set_input("din0", stim.next_u64());
          sim.set_input("din1", stim.next_u64());
          sim.step();
        }
        sim.set_input_all("wr_en", false);
        sim.step_n(kIdleCycles);
        sim.set_input_all("retain", true);
        sim.step();
        sim.power_off(1);
        sim.power_on(1);
        sim.set_input_all("retain", false);
        sim.step();
        for (const NetId out : nl.outputs()) {
          digest = digest * 1099511628211ull ^ sim.net_lanes(out);
        }
      }
      return digest;
    };

    PackedSim sweep_sim(nl);
    sweep_sim.set_schedule(Schedule::Sweep);
    PackedSim event_sim(nl);
    event_sim.set_schedule(Schedule::Event);

    bench::Stopwatch timer;
    const std::uint64_t sweep_digest = run_workload(sweep_sim);
    const double sweep_seconds = timer.seconds();
    timer.restart();
    const std::uint64_t event_digest = run_workload(event_sim);
    const double event_seconds = timer.seconds();

    const double event_speedup = sweep_seconds / event_seconds;
    const ScheduleTelemetry activity = event_sim.take_schedule_telemetry();
    const double cycles =
        static_cast<double>(kEpisodes) * (kActiveCycles + kIdleCycles + 2);
    std::cout << "event-sched: " << cycles << " cycles x " << PackedSim::lane_count()
              << " lanes, sweep " << sweep_seconds << " s, event " << event_seconds
              << " s (" << event_speedup << "x)\n  event settles "
              << activity.event_sweeps << ", full sweeps " << activity.full_sweeps
              << " (" << activity.full_sweep_fallbacks
              << " fallbacks), avg dirty fraction " << activity.avg_dirty_fraction()
              << "\n  digest " << (sweep_digest == event_digest ? "match" : "MISMATCH")
              << " (0x" << std::hex << event_digest << std::dec << ")\n";
    json.set("event_speedup", event_speedup);
    json.set("event_sweeps", static_cast<double>(activity.event_sweeps));
    json.set("event_full_sweep_fallbacks",
             static_cast<double>(activity.full_sweep_fallbacks));
    json.set("avg_dirty_fraction", activity.avg_dirty_fraction());
    json.set("sweep_cycles_per_sec", cycles / sweep_seconds);
    json.set("event_cycles_per_sec", cycles / event_seconds);
    // Bit-identical values are the contract; the >= 2.0 speedup floor is
    // enforced by ci/check_bench_json.py against this report.
    ok = ok && sweep_digest == event_digest && activity.event_sweeps > 0 &&
         activity.avg_dirty_fraction() < 1.0;
    const ScheduleTelemetry sweep_activity = sweep_sim.take_schedule_telemetry();
    ok = ok && sweep_activity.event_sweeps == 0 && sweep_activity.full_sweeps > 0;
  }

  bench::header("Campaign service — warm-start speedup (session + artifact caches)");
  {
    // artifact_warm_speedup is the serve-daemon warm-start metric (gated
    // >= 1.2 in ci/check_bench_json.py): job setup wall clock — spec parse,
    // protected synthesis, netlist compile, workspace warm-up — for a cold
    // submission over the identical warm resubmission through the daemon's
    // JobManager, whose caches (in-memory sessions, on-disk compiled
    // artifacts) are exactly what `retscan submit` hits twice in the serve
    // CI job. Same binary, same host: a pure ratio. The gate below also
    // re-asserts the contract that makes warm starts admissible at all —
    // cold and warm runs digest-identically.
    const std::string dir = "bench_artifacts";
    const std::string spec_path = "bench_serve.spec";
    std::filesystem::remove_all(dir);
    {
      std::ofstream spec(spec_path);
      spec << "fifo.depth = 32\nfifo.width = 2\n"
              "protection.kind = hamming+crc\nprotection.hamming_r = 3\n"
              "protection.chain_count = 8\nprotection.test_width = 4\n"
              "campaign.kind = validation\ncampaign.tier = structural\n"
              "campaign.seed = 7\ncampaign.sequences = 40\n"
              "campaign.mode = single-random\n";
    }

    serve::ServeOptions options;
    options.cache_dir = dir;
    options.threads = 1;
    options.max_active = 1;
    serve::JobManager manager(options);
    const serve::JobRecord cold =
        *manager.wait(manager.submit(spec_path, {}));
    const serve::JobRecord warm =
        *manager.wait(manager.submit(spec_path, {}));
    ok = ok && cold.state == serve::JobState::Done &&
         warm.state == serve::JobState::Done && warm.session_reused &&
         serve::summary_digest(*cold.summary) ==
             serve::summary_digest(*warm.summary);

    // Daemon restart: a fresh JobManager over the same artifact directory
    // starts with an empty session cache but a warm compiled-netlist store.
    serve::JobManager restarted(options);
    const serve::JobRecord relaunch =
        *restarted.wait(restarted.submit(spec_path, {}));
    ok = ok && relaunch.state == serve::JobState::Done &&
         !relaunch.session_reused && restarted.artifact_stats().hits >= 1 &&
         serve::summary_digest(*cold.summary) ==
             serve::summary_digest(*relaunch.summary);

    const double artifact_warm_speedup =
        cold.setup_seconds / std::max(warm.setup_seconds, 1e-9);
    std::cout << "serve: cold setup " << cold.setup_seconds << " s, warm setup "
              << warm.setup_seconds << " s (" << artifact_warm_speedup
              << "x), restart-with-artifacts setup " << relaunch.setup_seconds
              << " s\n  cold/warm/restart digests "
              << (serve::summary_digest(*cold.summary) ==
                          serve::summary_digest(*relaunch.summary)
                      ? "match"
                      : "MISMATCH")
              << "\n";
    json.set("artifact_warm_speedup", artifact_warm_speedup);
    json.set("artifact_cold_setup_sec", cold.setup_seconds);
    json.set("artifact_warm_setup_sec", warm.setup_seconds);
    json.set("artifact_restart_setup_sec", relaunch.setup_seconds);
    install_artifact_store(nullptr);  // JobManager installed it globally
    std::filesystem::remove_all(dir);
    std::remove(spec_path.c_str());
  }

  std::cout << "\npaper: 100M sequences; 100%% single-error correction, 100%% multi-"
               "error detection, 0 escapes.\n";
  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[validation] PASS\n" : "\n[validation] FAIL\n");
  return ok ? 0 : 1;
}
