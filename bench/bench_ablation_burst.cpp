// Ablation A-1: burst clustering vs scattered errors.
// The paper observes that rush-current errors are "closely clustered" and
// that this is precisely what defeats Hamming correction. This bench
// sweeps the error count for (a) clustered bursts and (b) uniformly
// scattered errors at the same count, showing the correction-rate gap —
// the justification for pairing Hamming with CRC detection.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/parallel.hpp"
#include "retscan/campaign.hpp"

using namespace retscan;

int main() {
  const std::size_t sequences = bench::sequence_budget(20000);
  parallel::CampaignRunner runner;
  bench::header("Ablation A-1 — clustered vs scattered errors (80 chains x 13, " +
                std::to_string(sequences) + " sequences per point, " +
                std::to_string(runner.threads()) + " threads)");

  std::cout << "# errors   corrected%_clustered   corrected%_scattered\n" << std::fixed;
  bool ok = true;
  for (const std::size_t count : {2u, 3u, 4u, 6u, 8u}) {
    // Clustered: spread window +/-1 (the paper's burst shape).
    ValidationConfig clustered;
    clustered.fifo = FifoSpec{32, 32};
    clustered.chain_count = 80;
    clustered.mode = InjectionMode::MultipleBurst;
    clustered.burst_size = count;
    clustered.burst_spread = 1;
    clustered.seed = 11 * count;
    const ValidationStats c = runner.run_fast(clustered, sequences).stats;

    // Scattered: same count, spread across the whole fabric.
    ValidationConfig scattered = clustered;
    scattered.burst_spread = 64;  // effectively uniform over 80x13
    const ValidationStats s = runner.run_fast(scattered, sequences).stats;

    std::cout << std::setw(8) << count << std::setprecision(2) << std::setw(22)
              << 100.0 * c.correction_rate() << std::setw(23)
              << 100.0 * s.correction_rate() << "\n";

    // Clustering must hurt correction; detection never suffers.
    ok = ok && c.correction_rate() < s.correction_rate();
    ok = ok && c.detection_rate() == 1.0 && s.detection_rate() == 1.0;
    ok = ok && c.silent_corruptions == 0 && s.silent_corruptions == 0;
  }
  std::cout << (ok ? "\n[ablation-burst] PASS\n" : "\n[ablation-burst] FAIL\n");
  return ok ? 0 : 1;
}
