// Reproduces Table I: encoding/decoding circuit area overhead, power,
// latency and energy for CRC-16 with different scan chain configurations
// on the 32x32 FIFO (120nm-class library, 100 MHz).
//
// Paper reference (Table I):
//   W=4  l=260: area 73658 (2.8%), enc/dec ~4.99 mW, t 2600 ns, E ~12.97 nJ
//   W=80 l=13 : area 78208 (9.2%), enc/dec ~5.14 mW, t  130 ns, E ~ 0.67 nJ
// Absolute values depend on the cell library; the trends (area/power up,
// latency/energy sharply down with W) are the reproduction target.

#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/design.hpp"

using namespace retscan;

int main() {
  bench::header("Table I — CRC-16 cost vs scan chain configuration (32x32 FIFO)");
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); },
                               TechLibrary::st120(), 10.0);
  std::vector<ProtectionConfig> configs;
  for (const std::size_t w : {4u, 8u, 16u, 40u, 80u}) {
    ProtectionConfig config;
    config.kind = CodeKind::CrcDetect;
    config.chain_count = w;
    config.test_width = 4;
    configs.push_back(config);
  }
  const auto rows = synth.sweep(configs);
  print_cost_table(std::cout, "32x32 FIFO, CRC-16, st120-class, clock = 100 MHz", rows);

  std::cout << "\npaper Table I reference rows (STMicro 120nm):\n"
            << "  W=4  : 73658 um^2  2.8%  4.99 mW  2600 ns  12.97 nJ\n"
            << "  W=8  : 73928 um^2  3.2%  4.96 mW  1300 ns   6.45 nJ\n"
            << "  W=16 : 74614 um^2  4.2%  4.96 mW   650 ns   3.22 nJ\n"
            << "  W=40 : 75762 um^2  5.8%  5.13 mW   260 ns   1.33 nJ\n"
            << "  W=80 : 78208 um^2  9.2%  5.14 mW   130 ns   0.67 nJ\n";

  // Shape checks (exit nonzero if the reproduction breaks).
  bool ok = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    ok = ok && rows[i].overhead_percent > rows[i - 1].overhead_percent;
    ok = ok && rows[i].latency_ns < rows[i - 1].latency_ns;
    ok = ok && rows[i].dec_energy_nj < rows[i - 1].dec_energy_nj;
  }
  ok = ok && rows.front().latency_ns == 2600.0 && rows.back().latency_ns == 130.0;
  std::cout << (ok ? "\n[table1] trend check PASS\n" : "\n[table1] trend check FAIL\n");
  return ok ? 0 : 1;
}
