// s27 — the smallest ISCAS-89 sequential benchmark: 3 flip-flops and 10
// gates, transcribed from the canonical .bench description into the
// structural subset read by retscan's Verilog frontend. CK feeds the DFF
// clock pins; retscan flops share an implicit global clock, so the pin is
// accepted and left unconnected (lint reports CK as a floating input, by
// design — see docs/verilog-frontend.md).
module s27 (CK, G0, G1, G2, G3, G17);
  input CK, G0, G1, G2, G3;
  output G17;
  wire G5, G6, G7, G8, G9, G10, G11, G12, G13, G14, G15, G16;

  DFFX1 dff_0 (.CK(CK), .D(G10), .Q(G5));
  DFFX1 dff_1 (.CK(CK), .D(G11), .Q(G6));
  DFFX1 dff_2 (.CK(CK), .D(G13), .Q(G7));

  not  not_0  (G14, G0);
  not  not_1  (G17, G11);
  and  and_0  (G8, G14, G6);
  or   or_0   (G15, G12, G8);
  or   or_1   (G16, G3, G8);
  nand nand_0 (G9, G16, G15);
  nor  nor_0  (G10, G14, G11);
  nor  nor_1  (G11, G5, G9);
  nor  nor_2  (G12, G1, G7);
  nor  nor_3  (G13, G2, G12);
endmodule
