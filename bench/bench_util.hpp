#pragma once

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "retscan/runtime.hpp"

namespace retscan::bench {

/// Sequence-count scaling for the statistical benches. The paper runs 100M
/// FPGA sequences; default bench runs are scaled down to finish in seconds.
/// Override with RETSCAN_SEQUENCES=<n> to run paper-scale campaigns.
/// Parsing (strict, with a warning on garbage) is centralized in
/// retscan::runtime_sequences; this is a bench-local alias.
inline std::size_t sequence_budget(std::size_t default_count) {
  return runtime_sequences(default_count);
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Print an ours-vs-paper comparison line.
inline void compare(const std::string& label, double ours, double paper,
                    const std::string& unit) {
  std::cout << std::left << std::setw(34) << label << std::right << "ours "
            << std::setw(10) << std::setprecision(4) << ours << " " << unit
            << "   paper " << std::setw(10) << paper << " " << unit << "\n";
}

/// Wall-clock timer for throughput metrics.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench report: write() emits BENCH_<name>.json in the
/// working directory so the perf trajectory (sequences/sec, fault-evals/sec,
/// speedups) can be tracked across PRs alongside the human-readable lines.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  void write() const {
    std::ofstream os("BENCH_" + name_ + ".json");
    os << "{\n  \"bench\": \"" << name_ << "\"";
    os << std::setprecision(12);
    for (const auto& [key, value] : metrics_) {
      os << ",\n  \"" << key << "\": " << value;
    }
    os << "\n}\n";
    std::cout << "[json] BENCH_" << name_ << ".json written (" << metrics_.size()
              << " metrics)\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace retscan::bench
