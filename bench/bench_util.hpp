#pragma once

#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "retscan/runtime.hpp"

// Compiled lane width of the linked retscan library. RETSCAN_LANE_WORDS is a
// PUBLIC compile definition of the retscan target, so it is visible here; the
// fallback only guards headers parsed outside the build.
#ifndef RETSCAN_LANE_WORDS
#define RETSCAN_LANE_WORDS 4
#endif

namespace retscan::bench {

/// Sequence-count scaling for the statistical benches. The paper runs 100M
/// FPGA sequences; default bench runs are scaled down to finish in seconds.
/// Override with RETSCAN_SEQUENCES=<n> to run paper-scale campaigns.
/// Parsing (strict, with a warning on garbage) is centralized in
/// retscan::runtime_sequences; this is a bench-local alias.
inline std::size_t sequence_budget(std::size_t default_count) {
  return runtime_sequences(default_count);
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Print an ours-vs-paper comparison line.
inline void compare(const std::string& label, double ours, double paper,
                    const std::string& unit) {
  std::cout << std::left << std::setw(34) << label << std::right << "ours "
            << std::setw(10) << std::setprecision(4) << ours << " " << unit
            << "   paper " << std::setw(10) << paper << " " << unit << "\n";
}

/// Wall-clock timer for throughput metrics.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Machine-readable bench report: write() emits BENCH_<name>.json in the
/// working directory so the perf trajectory (sequences/sec, fault-evals/sec,
/// speedups) can be tracked across PRs alongside the human-readable lines.
///
/// Every report carries the execution-shape metadata that makes the numbers
/// comparable across hosts and builds — resolved thread count, hardware
/// concurrency, and the compiled lane width — seeded at construction so no
/// bench can forget them. set() upserts, so benches may overwrite the
/// defaults (e.g. with the thread count a specific experiment used).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {
    const unsigned hw = std::thread::hardware_concurrency();
    set("threads", static_cast<double>(runtime_threads()));
    set("hardware_concurrency", static_cast<double>(hw == 0 ? 1 : hw));
    set("lane_words", static_cast<double>(RETSCAN_LANE_WORDS));
    set("lane_bits", static_cast<double>(RETSCAN_LANE_WORDS) * 64.0);
  }

  void set(const std::string& key, double value) {
    for (auto& [existing_key, existing_value] : metrics_) {
      if (existing_key == key) {
        existing_value = value;
        return;
      }
    }
    metrics_.emplace_back(key, value);
  }

  void write() const {
    std::ofstream os("BENCH_" + name_ + ".json");
    os << "{\n  \"bench\": \"" << name_ << "\"";
    os << std::setprecision(12);
    for (const auto& [key, value] : metrics_) {
      os << ",\n  \"" << key << "\": " << value;
    }
    os << "\n}\n";
    std::cout << "[json] BENCH_" << name_ << ".json written (" << metrics_.size()
              << " metrics)\n";
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace retscan::bench
