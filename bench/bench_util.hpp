#pragma once

#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>

namespace retscan::bench {

/// Sequence-count scaling for the statistical benches. The paper runs 100M
/// FPGA sequences; default bench runs are scaled down to finish in seconds.
/// Override with RETSCAN_SEQUENCES=<n> to run paper-scale campaigns.
inline std::size_t sequence_budget(std::size_t default_count) {
  if (const char* env = std::getenv("RETSCAN_SEQUENCES")) {
    const long long v = std::atoll(env);
    if (v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  return default_count;
}

inline void header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Print an ours-vs-paper comparison line.
inline void compare(const std::string& label, double ours, double paper,
                    const std::string& unit) {
  std::cout << std::left << std::setw(34) << label << std::right << "ours "
            << std::setw(10) << std::setprecision(4) << ours << " " << unit
            << "   paper " << std::setw(10) << paper << " " << unit << "\n";
}

}  // namespace retscan::bench
