// Ablation A-4: SEC vs SEC-DED monitoring under clustered bursts.
// Plain Hamming *miscorrects* a double error — it silently flips a third
// bit, and only the CRC arm notices. SEC-DED spends one extra stored
// parity bit per word to flag doubles without touching the data. This
// bench measures, per burst size: residual wrong bits after decode and the
// area cost of the upgrade.

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/coding.hpp"
#include "retscan/design.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

namespace {
double residual_bits(bool extended, std::size_t burst, std::size_t sequences) {
  const std::size_t chains = 80, length = 13;
  HammingChainProtector protector(HammingCode::h7_4(), chains, length, extended);
  ErrorInjector injector(chains, length, extended ? 5 : 3);
  Rng rng(extended ? 21 : 17);
  std::size_t residual = 0;
  for (std::size_t seq = 0; seq < sequences; ++seq) {
    std::vector<BitVec> state;
    for (std::size_t c = 0; c < chains; ++c) {
      state.push_back(rng.next_bits(length));
    }
    const auto reference = state;
    protector.encode(state);
    ErrorInjector::flip_chain_data(state, injector.clustered_burst(burst, 1));
    protector.decode_and_correct(state);
    for (std::size_t c = 0; c < chains; ++c) {
      residual += state[c].hamming_distance(reference[c]);
    }
  }
  return static_cast<double>(residual) / static_cast<double>(sequences);
}
}  // namespace

int main() {
  const std::size_t sequences = bench::sequence_budget(10000);
  bench::header("Ablation A-4 — SEC vs SEC-DED under clustered bursts (" +
                std::to_string(sequences) + " sequences per point)");

  std::cout << "# burst  residual_bits_SEC  residual_bits_SECDED\n" << std::fixed;
  bool ok = true;
  for (const std::size_t burst : {2u, 3u, 4u, 6u}) {
    const double sec = residual_bits(false, burst, sequences);
    const double secded = residual_bits(true, burst, sequences);
    std::cout << std::setw(7) << burst << std::setprecision(3) << std::setw(19) << sec
              << std::setw(21) << secded << "\n";
    // SEC's miscorrections leave MORE wrong bits than were injected when
    // doubles land in one word; SEC-DED never exceeds the injected count.
    ok = ok && secded <= sec + 1e-9;
    ok = ok && secded <= static_cast<double>(burst) + 1e-9;
  }

  // Area cost of the upgrade on the real FIFO.
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); },
                               TechLibrary::st120(), 10.0);
  ProtectionConfig sec_cfg;
  sec_cfg.kind = CodeKind::HammingCorrect;
  sec_cfg.chain_count = 80;
  sec_cfg.test_width = 4;
  ProtectionConfig secded_cfg = sec_cfg;
  secded_cfg.secded = true;
  const CostRow sec_row = synth.characterize(sec_cfg);
  const CostRow secded_row = synth.characterize(secded_cfg);
  std::cout << "\narea overhead: " << std::setprecision(1) << sec_row.overhead_percent
            << "% (SEC) vs " << secded_row.overhead_percent << "% (SEC-DED), +"
            << secded_row.overhead_percent - sec_row.overhead_percent
            << " points for guaranteed double-error flagging\n";
  ok = ok && secded_row.overhead_percent > sec_row.overhead_percent;
  ok = ok && secded_row.overhead_percent < 1.5 * sec_row.overhead_percent;

  std::cout << (ok ? "\n[ablation-secded] PASS\n" : "\n[ablation-secded] FAIL\n");
  return ok ? 0 : 1;
}
