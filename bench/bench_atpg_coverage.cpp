// Section III evidence: manufacturing test is unaffected by the monitoring
// architecture. Runs ATPG on the protected FIFO's combinational frame and
// applies the pattern set through the Fig. 5(b) test-mode concatenation on
// the live gate-level design; every pattern must pass, at full random+PODEM
// coverage of testable faults.

#include <iostream>

#include "atpg/atpg.hpp"
#include "atpg/scan_test.hpp"
#include "bench_util.hpp"
#include "circuits/fifo.hpp"

using namespace retscan;

int main() {
  bench::header("ATPG + test-mode delivery on the protected FIFO");

  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);

  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto all = enumerate_faults(design.netlist());
  const auto faults = collapse_faults(design.netlist(), all);
  std::cout << "fault universe: " << all.size() << " stem faults, " << faults.size()
            << " after collapsing\n";

  AtpgOptions options;
  options.random_patterns = 512;
  options.max_backtracks = 300;
  const AtpgResult atpg = run_atpg(frame, faults, options);
  std::cout << "ATPG: " << atpg.detected_random << " random + " << atpg.detected_podem
            << " podem detected, " << atpg.untestable << " untestable, "
            << atpg.aborted << " aborted\n"
            << "coverage " << 100.0 * atpg.coverage() << "% with "
            << atpg.patterns.size() << " patterns\n";

  RetentionSession session(design);
  const ScanTestResult applied =
      apply_test_mode_scan_test(session, design, frame, atpg.patterns);
  std::cout << "test-mode delivery: " << applied.patterns_applied << " patterns, "
            << applied.mismatches << " mismatches\n";

  const bool ok = atpg.coverage() > 0.90 && applied.all_passed();
  std::cout << (ok ? "\n[atpg] PASS\n" : "\n[atpg] FAIL\n");
  return ok ? 0 : 1;
}
