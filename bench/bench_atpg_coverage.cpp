// This file deliberately exercises the pre-v1 delivery entry points
// (they are the backends the Session facade routes onto), so the
// deprecation attributes are suppressed here.
#define RETSCAN_SUPPRESS_DEPRECATED

// Section III evidence: manufacturing test is unaffected by the monitoring
// architecture. Runs ATPG on the protected FIFO's combinational frame and
// applies the pattern set through the Fig. 5(b) test-mode concatenation on
// the live gate-level design; every pattern must pass, at full random+PODEM
// coverage of testable faults.
//
// Also the fault-sim/delivery throughput bench: the 64-way bit-parallel
// paths are timed against scalar baselines (one pattern per pass / one
// pattern per scan load) and both throughputs land in BENCH_atpg.json,
// plus the multi-threaded variants (fault list / pattern batches sharded
// over the work-stealing pool) which must reproduce the serial results
// bit-for-bit.

#include <algorithm>
#include <iostream>
#include <string>

#include "retscan/test.hpp"
#include "bench_util.hpp"
#include "retscan/netlist.hpp"
#include "retscan/parallel.hpp"

using namespace retscan;

namespace {

/// Full fault-dictionary workload (no fault dropping): every fault is
/// simulated against every pattern, so the measured cost is pure
/// pattern-evaluation throughput. `batch_size` kLaneBlockBits is the
/// block-parallel compiled cone path (256 patterns per pass at the default
/// lane width); with `reference` set, each fault instead pays a full
/// interpreted circuit evaluation per pattern pass (the seed's
/// one-fault-at-a-time flow), which is the scalar baseline.
std::size_t fault_dictionary_detects(const CombinationalFrame& frame,
                                     const std::vector<Fault>& faults,
                                     const std::vector<BitVec>& patterns,
                                     std::size_t batch_size, bool reference = false) {
  std::size_t detected = 0;
  std::vector<char> hit(faults.size(), 0);
  CombinationalFrame::Workspace workspace;
  for (std::size_t base = 0; base < patterns.size(); base += batch_size) {
    const std::size_t count = std::min(batch_size, patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    if (reference) {
      const auto good_words = frame.good_response_words(batch);
      for (std::size_t fi = 0; fi < faults.size(); ++fi) {
        if (frame.detect_mask_full(faults[fi], batch, good_words) != 0) {
          hit[fi] = 1;
        }
      }
      continue;
    }
    const CombinationalFrame::LoadedPatternBatch loaded = frame.load_batch(batch);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (block_any(frame.detect_block(faults[fi], loaded, loaded.good, workspace))) {
        hit[fi] = 1;
      }
    }
  }
  for (const char h : hit) {
    detected += h != 0 ? 1 : 0;
  }
  return detected;
}

}  // namespace

int main() {
  bench::header("ATPG + test-mode delivery on the protected FIFO");
  bench::JsonReport json("atpg");

  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);

  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto all = enumerate_faults(design.netlist());
  const auto faults = collapse_faults(design.netlist(), all);
  std::cout << "fault universe: " << all.size() << " stem faults, " << faults.size()
            << " after collapsing\n";

  AtpgOptions options;
  options.random_patterns = 512;
  options.max_backtracks = 300;
  const AtpgResult atpg = run_atpg(frame, faults, options);
  std::cout << "ATPG: " << atpg.detected_random << " random + " << atpg.detected_podem
            << " podem detected, " << atpg.untestable << " untestable, "
            << atpg.aborted << " aborted\n"
            << "coverage " << 100.0 * atpg.coverage() << "% with "
            << atpg.patterns.size() << " patterns\n";
  json.set("coverage", atpg.coverage());
  json.set("patterns", static_cast<double>(atpg.patterns.size()));
  json.set("collapsed_faults", static_cast<double>(faults.size()));

  // --- fault-simulation throughput: packed (64 patterns/pass) vs scalar ---
  // Timed on the full fault-dictionary workload (no dropping) so both sides
  // evaluate every fault against every pattern.
  bench::header("Fault-simulation throughput (block-parallel vs scalar baseline)");
  const double nominal_evals =
      static_cast<double>(faults.size()) * static_cast<double>(atpg.patterns.size());
  bench::Stopwatch timer;
  constexpr int kPackedRepeats = 5;
  std::size_t packed_detects = 0;
  for (int r = 0; r < kPackedRepeats; ++r) {
    packed_detects =
        fault_dictionary_detects(frame, faults, atpg.patterns, kLaneBlockBits);
  }
  const double packed_fs_time = timer.seconds() / kPackedRepeats;
  timer.restart();
  const std::size_t scalar_detects =
      fault_dictionary_detects(frame, faults, atpg.patterns, 1, /*reference=*/true);
  const double scalar_fs_time = timer.seconds();
  const double packed_fs_rate = nominal_evals / packed_fs_time;
  const double scalar_fs_rate = nominal_evals / scalar_fs_time;
  const double faultsim_speedup = packed_fs_rate / scalar_fs_rate;
  std::cout << "packed:  " << packed_fs_rate << " fault-evals/sec\n"
            << "scalar:  " << scalar_fs_rate << " fault-evals/sec\n"
            << "speedup: " << faultsim_speedup << "x\n";
  json.set("packed_fault_evals_per_sec", packed_fs_rate);
  json.set("scalar_fault_evals_per_sec", scalar_fs_rate);
  json.set("faultsim_speedup", faultsim_speedup);

  // --- multi-threaded fault simulation (with fault dropping) --------------
  bench::header("Multi-threaded fault simulation (N cores x 64 lanes)");
  ThreadPool pool;  // RETSCAN_THREADS / hardware_concurrency
  timer.restart();
  const FaultSimResult serial_sim = fault_simulate(frame, faults, atpg.patterns);
  const double serial_sim_time = timer.seconds();
  timer.restart();
  const FaultSimResult pooled_sim = fault_simulate(frame, faults, atpg.patterns, pool);
  const double pooled_sim_time = timer.seconds();
  const double threaded_speedup = serial_sim_time / pooled_sim_time;
  const bool pooled_matches = pooled_sim.detected_by == serial_sim.detected_by &&
                              pooled_sim.detected == serial_sim.detected;
  std::cout << "serial:  " << serial_sim.detected << "/" << serial_sim.total_faults
            << " detected in " << serial_sim_time << " s\n"
            << "pooled:  " << pooled_sim.detected << "/" << pooled_sim.total_faults
            << " detected in " << pooled_sim_time << " s on " << pool.size()
            << " threads (" << threaded_speedup << "x, results "
            << (pooled_matches ? "identical" : "DIVERGED") << ")\n";
  json.set("threads", static_cast<double>(pool.size()));
  json.set("faultsim_threaded_speedup", threaded_speedup);

  // --- thread scaling curve (1/2/4/8) -------------------------------------
  // Same workload per point; speedup is against the serial run above, and
  // efficiency = speedup / threads. Results must stay identical per point.
  bench::header("Fault-simulation thread scaling curve");
  bool scaling_matches = true;
  for (const unsigned n : {1u, 2u, 4u, 8u}) {
    ThreadPool curve_pool(n);
    timer.restart();
    const FaultSimResult curve_sim =
        fault_simulate(frame, faults, atpg.patterns, curve_pool);
    const double curve_time = timer.seconds();
    scaling_matches = scaling_matches && curve_sim.detected_by == serial_sim.detected_by;
    const double speedup = serial_sim_time / curve_time;
    const double efficiency = speedup / static_cast<double>(n);
    std::cout << n << " thread(s): " << curve_time << " s, speedup " << speedup
              << "x, efficiency " << efficiency << "\n";
    const std::string suffix = "_t" + std::to_string(n);
    json.set("faultsim_speedup" + suffix, speedup);
    json.set("scaling_efficiency" + suffix, efficiency);
  }

  // --- test-mode delivery throughput: one lane per pattern vs one load ----
  bench::header("Test-mode delivery throughput (64-lane vs scalar tester)");
  timer.restart();
  const ScanTestResult packed_applied =
      apply_test_mode_scan_test_packed(design, frame, atpg.patterns);
  const double packed_apply_time = timer.seconds();
  timer.restart();
  const ScanTestResult pooled_applied =
      apply_test_mode_scan_test_packed(design, frame, atpg.patterns, pool, 128);
  const double pooled_apply_time = timer.seconds();
  RetentionSession session(design);
  timer.restart();
  const ScanTestResult scalar_applied =
      apply_test_mode_scan_test(session, design, frame, atpg.patterns);
  const double scalar_apply_time = timer.seconds();
  const double packed_rate = packed_applied.patterns_applied / packed_apply_time;
  const double pooled_rate = pooled_applied.patterns_applied / pooled_apply_time;
  const double scalar_rate = scalar_applied.patterns_applied / scalar_apply_time;
  const double delivery_speedup = packed_rate / scalar_rate;
  std::cout << "test-mode delivery: " << scalar_applied.patterns_applied
            << " patterns, " << scalar_applied.mismatches << " mismatches (scalar), "
            << packed_applied.mismatches << " (packed), " << pooled_applied.mismatches
            << " (pooled)\n"
            << "packed:  " << packed_rate << " patterns/sec\n"
            << "pooled:  " << pooled_rate << " patterns/sec (" << pool.size()
            << " threads)\n"
            << "scalar:  " << scalar_rate << " patterns/sec\n"
            << "speedup: " << delivery_speedup << "x (single-thread packed)\n";
  json.set("packed_patterns_per_sec", packed_rate);
  json.set("pooled_patterns_per_sec", pooled_rate);
  json.set("scalar_patterns_per_sec", scalar_rate);
  json.set("delivery_speedup", delivery_speedup);

  const bool ok = atpg.coverage() > 0.90 && scalar_applied.all_passed() &&
                  packed_applied.all_passed() && pooled_applied.all_passed() &&
                  pooled_applied.patterns_applied == packed_applied.patterns_applied &&
                  pooled_matches && scaling_matches &&
                  packed_detects == scalar_detects &&
                  faultsim_speedup >= 10.0 && delivery_speedup >= 10.0;
  json.set("pass", ok ? 1.0 : 0.0);
  json.write();
  std::cout << (ok ? "\n[atpg] PASS\n" : "\n[atpg] FAIL\n");
  return ok ? 0 : 1;
}
