// Reproduces Fig. 10: error correction ability of the four Hamming codes
// when multiple random errors are injected into each test sequence of 1000
// flip-flops. The paper injects 1..10 errors over one million sequences;
// default here is scaled (RETSCAN_SEQUENCES overrides).
//
// Paper reference points: Hamming(7,4) corrects 98.81% at 2 errors and
// 94.14% at 10; Hamming(63,57) corrects 88.65% at 2 and 52.96% at 10.
// Expected shape: correction falls with error count and with code rate
// ((7,4) best, (63,57) worst).

#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/coding.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

int main() {
  const std::size_t sequences = bench::sequence_budget(20000);
  const std::size_t state_bits = 1000;
  bench::header("Fig. 10 — correction ability vs injected errors (1000 flip-flops, " +
                std::to_string(sequences) + " sequences per point)");

  const unsigned rs[] = {3, 4, 5, 6};
  std::cout << "# errors";
  for (const unsigned r : rs) {
    std::cout << std::setw(14) << HammingCode(r).name();
  }
  std::cout << "   (% of sequences fully corrected)\n" << std::fixed;

  // corrected[r][e]: % of sequences fully repaired.
  // per_error[r][e]: % of injected error bits repaired, net of
  // miscorrections — the metric closest to the paper's y-axis.
  double corrected[4][11] = {};
  double per_error[4][11] = {};
  for (std::size_t ci = 0; ci < 4; ++ci) {
    const BlockHammingCodec codec(HammingCode(rs[ci]), state_bits);
    Rng rng(1000 + rs[ci]);
    for (std::size_t errors = 1; errors <= 10; ++errors) {
      std::size_t full = 0;
      std::size_t residual_total = 0;
      for (std::size_t seq = 0; seq < sequences; ++seq) {
        const BitVec reference = rng.next_bits(state_bits);
        const auto parity = codec.encode(reference);
        BitVec state = reference;
        for (const std::size_t bit : rng.sample_distinct(state_bits, errors)) {
          state.flip(bit);
        }
        const auto stats = codec.repair(state, parity, reference);
        if (stats.fully_corrected) {
          ++full;
        }
        residual_total += stats.residual_wrong_bits;
      }
      corrected[ci][errors] = 100.0 * static_cast<double>(full) /
                              static_cast<double>(sequences);
      const double injected = static_cast<double>(errors * sequences);
      per_error[ci][errors] =
          100.0 * std::max(0.0, injected - static_cast<double>(residual_total)) /
          injected;
    }
  }

  for (std::size_t errors = 1; errors <= 10; ++errors) {
    std::cout << std::setw(8) << errors;
    for (std::size_t ci = 0; ci < 4; ++ci) {
      std::cout << std::setprecision(2) << std::setw(14) << corrected[ci][errors];
    }
    std::cout << "\n";
  }

  std::cout << "\n# errors";
  for (const unsigned r : rs) {
    std::cout << std::setw(14) << HammingCode(r).name();
  }
  std::cout << "   (% of injected errors corrected, net)\n";
  for (std::size_t errors = 1; errors <= 10; ++errors) {
    std::cout << std::setw(8) << errors;
    for (std::size_t ci = 0; ci < 4; ++ci) {
      std::cout << std::setprecision(2) << std::setw(14) << per_error[ci][errors];
    }
    std::cout << "\n";
  }

  std::cout << "\npaper reference: (7,4) 98.81% @2 errors, 94.14% @10;"
               " (63,57) 88.65% @2, 52.96% @10\n";

  bool ok = true;
  // Single errors always corrected by every code.
  for (std::size_t ci = 0; ci < 4; ++ci) {
    ok = ok && corrected[ci][1] == 100.0;
  }
  // Correction falls with error count and with k (shorter codes win).
  for (std::size_t ci = 0; ci < 4; ++ci) {
    ok = ok && corrected[ci][10] < corrected[ci][2];
  }
  for (std::size_t ci = 1; ci < 4; ++ci) {
    ok = ok && corrected[ci][10] < corrected[ci - 1][10];
  }
  // Rough bands from the paper.
  ok = ok && corrected[0][2] > 95.0;               // (7,4) near-perfect at 2
  ok = ok && corrected[3][10] < corrected[0][10];  // (63,57) well below (7,4)
  std::cout << (ok ? "\n[fig10] shape check PASS\n" : "\n[fig10] shape check FAIL\n");
  return ok ? 0 : 1;
}
