// Ablation A-7: MISR signature monitoring vs CRC-16 detection.
// A chain-count-wide MISR replaces the CRC block with zero serialization
// logic and only W bits of stored signature — but compaction aliases:
// multi-bit error patterns escape with probability ~2^-W. This bench
// measures empirical aliasing rates across MISR widths against CRC-16 and
// the theoretical 2^-W line.

#include <cmath>
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"
#include "retscan/coding.hpp"
#include "retscan/parallel.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

namespace {
/// Empirical escape rate of a detector over random >=2-bit error patterns,
/// sharded over the campaign runner (each shard owns its protector, state
/// snapshot and Rng stream, so the rate is thread-count invariant).
template <typename MakeProtector>
double escape_rate(parallel::CampaignRunner& runner, MakeProtector make,
                   std::size_t chains, std::size_t length, std::size_t trials,
                   std::uint64_t seed) {
  const std::size_t escapes = runner.map_reduce<std::size_t>(
      trials, 16384, [&](const parallel::ShardRange& shard) {
        Rng rng(parallel::shard_seed(seed, shard.index));
        std::size_t shard_escapes = 0;
        auto protector = make();
        std::vector<BitVec> state;
        for (std::size_t c = 0; c < chains; ++c) {
          state.push_back(rng.next_bits(length));
        }
        protector.encode(state);
        for (std::size_t t = 0; t < shard.count; ++t) {
          auto corrupted = state;
          const std::size_t errors = 2 + rng.next_below(4);
          for (std::size_t e = 0; e < errors; ++e) {
            corrupted[rng.next_below(chains)].flip(rng.next_below(length));
          }
          if (corrupted == state) {
            continue;  // error pattern cancelled itself
          }
          if (!protector.check(corrupted).any_error()) {
            ++shard_escapes;
          }
        }
        return shard_escapes;
      });
  return static_cast<double>(escapes) / static_cast<double>(trials);
}
}  // namespace

int main() {
  const std::size_t trials = bench::sequence_budget(200000);
  parallel::CampaignRunner runner;
  bench::header("Ablation A-7 — MISR width vs aliasing (" + std::to_string(trials) +
                " random multi-bit patterns per row, " +
                std::to_string(runner.threads()) + " threads)");

  std::cout << "# detector        escape_rate      theory(2^-W)\n" << std::scientific;
  bool ok = true;
  double previous = 1.0;
  for (const std::size_t w : {4u, 8u, 12u, 16u}) {
    const double rate = escape_rate(
        runner, [&] { return MisrChainProtector(w, 13); }, w, 13, trials, 100 + w);
    const double theory = std::pow(2.0, -static_cast<double>(w));
    std::cout << "MISR-" << std::left << std::setw(12) << w << std::right
              << std::setprecision(3) << std::setw(12) << rate << std::setw(18)
              << theory << "\n";
    // Aliasing shrinks with width but hits a floor: errors at adjacent
    // stages one cycle apart cancel in the shift register regardless of
    // width (the classic MISR error-masking effect).
    ok = ok && rate <= previous + 1e-12;
    previous = rate;
  }
  {
    const double rate = escape_rate(
        runner, [&] { return CrcChainProtector(Crc16::ccitt(), 16, 13, 16); }, 16,
        13, trials, 777);
    std::cout << "CRC-16 (16 ch) " << std::setprecision(3) << std::setw(15) << rate
              << std::setw(18) << std::pow(2.0, -16.0) << "\n";
    ok = ok && rate < 1e-3;
    ok = ok && rate < previous;  // CRC beats every MISR width measured
  }

  std::cout << "\nMISR aliasing does NOT keep improving with width: random multi-bit\n"
               "patterns include adjacent-stage/adjacent-cycle pairs that cancel in\n"
               "the shift register (error masking), a ~0.6% floor here. CRC-16's\n"
               "serial compaction has no such geometric cancellation — empirically\n"
               "at its 2^-16 aliasing bound — supporting the paper's CRC choice\n"
               "over the cheaper MISR for the detection arm.\n";
  std::cout << (ok ? "\n[ablation-misr] PASS\n" : "\n[ablation-misr] FAIL\n");
  return ok ? 0 : 1;
}
