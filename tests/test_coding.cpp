#include "coding/hamming.hpp"

#include <gtest/gtest.h>

#include "coding/crc.hpp"
#include "coding/protectors.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

TEST(Hamming, CodeParameters) {
  EXPECT_EQ(HammingCode::h7_4().n(), 7u);
  EXPECT_EQ(HammingCode::h7_4().k(), 4u);
  EXPECT_EQ(HammingCode::h15_11().k(), 11u);
  EXPECT_EQ(HammingCode::h31_26().k(), 26u);
  EXPECT_EQ(HammingCode::h63_57().k(), 57u);
  EXPECT_NEAR(HammingCode::h7_4().redundancy(), 0.75, 1e-9);
  // Table III "cap(%)" values: 14.3%, 6.67%, 3.23%, 1.59% (as fractions
  // of r/n... the paper uses (n-k)/k relative strengths; check ordering).
  EXPECT_GT(HammingCode::h7_4().redundancy(), HammingCode::h15_11().redundancy());
  EXPECT_GT(HammingCode::h15_11().redundancy(), HammingCode::h31_26().redundancy());
  EXPECT_GT(HammingCode::h31_26().redundancy(), HammingCode::h63_57().redundancy());
  EXPECT_THROW(HammingCode(1), Error);
  EXPECT_THROW(HammingCode(17), Error);
}

TEST(Hamming, DataPositionsSkipPowersOfTwo) {
  const HammingCode code = HammingCode::h7_4();
  EXPECT_EQ(code.data_position(0), 3u);
  EXPECT_EQ(code.data_position(1), 5u);
  EXPECT_EQ(code.data_position(2), 6u);
  EXPECT_EQ(code.data_position(3), 7u);
  EXPECT_THROW(code.data_position(4), Error);
}

TEST(Hamming, CleanWordDecodesClean) {
  const HammingCode code = HammingCode::h7_4();
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    BitVec data = rng.next_bits(4);
    const BitVec parity = code.encode(data);
    const BitVec original = data;
    const auto result = code.decode(data, parity);
    EXPECT_EQ(result.outcome, HammingOutcome::Clean);
    EXPECT_EQ(data, original);
  }
}

/// Exhaustive single-error correction across all four paper codes and all
/// data-bit positions: the property the paper validates with 100M FPGA
/// sequences ("all single errors corrected").
class HammingSingleError : public ::testing::TestWithParam<unsigned> {};

TEST_P(HammingSingleError, EverySingleDataErrorIsCorrected) {
  const HammingCode code(GetParam());
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec original = rng.next_bits(code.k());
    const BitVec parity = code.encode(original);
    for (std::size_t bit = 0; bit < code.k(); ++bit) {
      BitVec corrupted = original;
      corrupted.flip(bit);
      const auto result = code.decode(corrupted, parity);
      EXPECT_EQ(result.outcome, HammingOutcome::Corrected);
      EXPECT_EQ(result.corrected_data_bit, bit);
      EXPECT_EQ(corrupted, original);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperCodes, HammingSingleError, ::testing::Values(3u, 4u, 5u, 6u));

TEST(Hamming, DoubleErrorMiscorrectsOrAliases) {
  const HammingCode code = HammingCode::h7_4();
  Rng rng(2);
  int miscorrections = 0, parity_aliases = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec original = rng.next_bits(4);
    const BitVec parity = code.encode(original);
    BitVec corrupted = original;
    const auto picks = rng.sample_distinct(4, 2);
    corrupted.flip(picks[0]);
    corrupted.flip(picks[1]);
    const auto result = code.decode(corrupted, parity);
    // A double error is never reported clean, and never actually repaired.
    EXPECT_NE(result.outcome, HammingOutcome::Clean);
    EXPECT_NE(corrupted, original);
    if (result.outcome == HammingOutcome::Corrected) {
      ++miscorrections;
      EXPECT_EQ(corrupted.hamming_distance(original), 3u);  // made it worse
    } else {
      ++parity_aliases;
    }
  }
  EXPECT_GT(miscorrections, 0);
  EXPECT_GT(parity_aliases, 0);
}

TEST(Hamming, SyndromeOfParityCorruptionNamesParityPosition) {
  const HammingCode code = HammingCode::h7_4();
  Rng rng(3);
  const BitVec data = rng.next_bits(4);
  BitVec parity = code.encode(data);
  parity.flip(1);  // parity bit at codeword position 2
  BitVec received = data;
  const auto result = code.decode(received, parity);
  EXPECT_EQ(result.outcome, HammingOutcome::ParityPosition);
  EXPECT_EQ(result.syndrome, 2u);
  EXPECT_EQ(received, data);  // data untouched
}

TEST(Crc16, KnownCcittVector) {
  // CRC-16/CCITT (init 0) of ASCII "123456789", MSB-first per byte: 0x31C3.
  const Crc16 crc = Crc16::ccitt();
  BitVec bits(72);
  const std::string msg = "123456789";
  for (std::size_t i = 0; i < msg.size(); ++i) {
    for (int b = 0; b < 8; ++b) {
      bits.set(i * 8 + b, (msg[i] >> (7 - b)) & 1);
    }
  }
  EXPECT_EQ(crc.compute(bits), 0x31C3u);
}

TEST(Crc16, StreamingMatchesOneShot) {
  const Crc16 reference = Crc16::ccitt();
  Rng rng(4);
  const BitVec bits = rng.next_bits(300);
  Crc16 streaming = Crc16::ccitt();
  streaming.reset();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    streaming.shift_bit(bits.get(i));
  }
  EXPECT_EQ(streaming.value(), reference.compute(bits));
}

TEST(Crc16, DetectsEverySingleBitError) {
  const Crc16 crc = Crc16::ccitt();
  Rng rng(5);
  const BitVec original = rng.next_bits(128);
  const std::uint16_t signature = crc.compute(original);
  for (std::size_t bit = 0; bit < 128; ++bit) {
    BitVec corrupted = original;
    corrupted.flip(bit);
    EXPECT_NE(crc.compute(corrupted), signature) << "bit " << bit;
  }
}

TEST(Crc16, DetectsAllBurstsUpTo16Bits) {
  const Crc16 crc = Crc16::ccitt();
  Rng rng(6);
  const BitVec original = rng.next_bits(256);
  const std::uint16_t signature = crc.compute(original);
  for (std::size_t burst_len = 1; burst_len <= 16; ++burst_len) {
    for (int trial = 0; trial < 20; ++trial) {
      BitVec corrupted = original;
      const std::size_t start = rng.next_below(256 - burst_len);
      // A burst has its endpoints flipped; interior bits random.
      corrupted.flip(start);
      if (burst_len > 1) {
        corrupted.flip(start + burst_len - 1);
      }
      for (std::size_t i = 1; i + 1 < burst_len; ++i) {
        if (rng.next_bool(0.5)) {
          corrupted.flip(start + i);
        }
      }
      EXPECT_NE(crc.compute(corrupted), signature)
          << "burst length " << burst_len;
    }
  }
}

TEST(Crc16, PolynomialsDiffer) {
  const Crc16 a = Crc16::ccitt();
  const Crc16 b = Crc16::ibm();
  Rng rng(7);
  const BitVec bits = rng.next_bits(64);
  EXPECT_NE(a.compute(bits), b.compute(bits));
}

TEST(HammingChainProtector, GeometryAndStorage) {
  const HammingChainProtector prot(HammingCode::h7_4(), 8, 13);
  EXPECT_EQ(prot.group_count(), 2u);
  // 2 groups * 13 cycles * 3 parity bits.
  EXPECT_EQ(prot.parity_storage_bits(), 78u);
  EXPECT_THROW(HammingChainProtector(HammingCode::h7_4(), 6, 13), Error);
}

TEST(HammingChainProtector, CleanRoundTrip) {
  HammingChainProtector prot(HammingCode::h7_4(), 8, 13);
  Rng rng(8);
  std::vector<BitVec> chains;
  for (int c = 0; c < 8; ++c) {
    chains.push_back(rng.next_bits(13));
  }
  prot.encode(chains);
  const auto original = chains;
  const auto stats = prot.decode_and_correct(chains);
  EXPECT_EQ(stats.words_checked, 26u);
  EXPECT_FALSE(stats.any_error());
  EXPECT_EQ(chains, original);
}

TEST(HammingChainProtector, CorrectsAnySingleError) {
  HammingChainProtector prot(HammingCode::h7_4(), 8, 13);
  Rng rng(9);
  std::vector<BitVec> original;
  for (int c = 0; c < 8; ++c) {
    original.push_back(rng.next_bits(13));
  }
  prot.encode(original);
  for (std::size_t chain = 0; chain < 8; ++chain) {
    for (std::size_t pos = 0; pos < 13; ++pos) {
      auto corrupted = original;
      corrupted[chain].flip(pos);
      const auto stats = prot.decode_and_correct(corrupted);
      EXPECT_TRUE(stats.any_error());
      EXPECT_EQ(stats.bits_corrected, 1u);
      EXPECT_EQ(corrupted, original) << "chain " << chain << " pos " << pos;
    }
  }
}

TEST(HammingChainProtector, ErrorsInDifferentWordsAllCorrected) {
  HammingChainProtector prot(HammingCode::h7_4(), 8, 13);
  Rng rng(10);
  std::vector<BitVec> original;
  for (int c = 0; c < 8; ++c) {
    original.push_back(rng.next_bits(13));
  }
  prot.encode(original);
  auto corrupted = original;
  // Three errors in three distinct (group, cycle) words.
  corrupted[0].flip(2);   // group 0, cycle 2
  corrupted[5].flip(7);   // group 1, cycle 7
  corrupted[3].flip(11);  // group 0, cycle 11
  const auto stats = prot.decode_and_correct(corrupted);
  EXPECT_EQ(stats.bits_corrected, 3u);
  EXPECT_EQ(corrupted, original);
}

TEST(HammingChainProtector, SameWordDoubleErrorNotRepaired) {
  HammingChainProtector prot(HammingCode::h7_4(), 4, 13);
  Rng rng(11);
  std::vector<BitVec> original;
  for (int c = 0; c < 4; ++c) {
    original.push_back(rng.next_bits(13));
  }
  prot.encode(original);
  auto corrupted = original;
  corrupted[0].flip(5);
  corrupted[2].flip(5);  // same cycle, same group word
  const auto stats = prot.decode_and_correct(corrupted);
  EXPECT_TRUE(stats.any_error());
  EXPECT_NE(corrupted, original);
}

TEST(CrcChainProtector, DetectsSingleAndBurst) {
  CrcChainProtector prot(Crc16::ccitt(), 8, 13, 4);
  EXPECT_EQ(prot.group_count(), 2u);
  EXPECT_EQ(prot.signature_storage_bits(), 32u);
  Rng rng(12);
  std::vector<BitVec> original;
  for (int c = 0; c < 8; ++c) {
    original.push_back(rng.next_bits(13));
  }
  prot.encode(original);
  EXPECT_FALSE(prot.check(original).any_error());
  // Every single-bit flip is caught.
  for (std::size_t chain = 0; chain < 8; ++chain) {
    for (std::size_t pos = 0; pos < 13; ++pos) {
      auto corrupted = original;
      corrupted[chain].flip(pos);
      EXPECT_TRUE(prot.check(corrupted).any_error());
    }
  }
  // Clustered multi-bit burst is caught (the paper's experiment 2).
  auto corrupted = original;
  corrupted[2].flip(5);
  corrupted[3].flip(5);
  corrupted[2].flip(6);
  corrupted[3].flip(6);
  EXPECT_TRUE(prot.check(corrupted).any_error());
}

TEST(CrcChainProtector, MismatchIsLocalizedToGroup) {
  CrcChainProtector prot(Crc16::ccitt(), 8, 13, 4);
  Rng rng(13);
  std::vector<BitVec> original;
  for (int c = 0; c < 8; ++c) {
    original.push_back(rng.next_bits(13));
  }
  prot.encode(original);
  auto corrupted = original;
  corrupted[6].flip(0);  // group 1
  const auto stats = prot.check(corrupted);
  EXPECT_EQ(stats.groups_mismatched, 1u);
}

TEST(BlockHammingCodec, RepairSingleErrorsIn1000Bits) {
  const BlockHammingCodec codec(HammingCode::h7_4(), 1000);
  EXPECT_EQ(codec.word_count(), 250u);
  Rng rng(14);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec reference = rng.next_bits(1000);
    const auto parity = codec.encode(reference);
    BitVec state = reference;
    state.flip(rng.next_below(1000));
    const auto stats = codec.repair(state, parity, reference);
    EXPECT_TRUE(stats.fully_corrected);
    EXPECT_EQ(stats.bits_corrected, 1u);
  }
}

TEST(BlockHammingCodec, PaddedTailWordHandled) {
  // 1000 bits with k=57 gives 18 words, the last one padded.
  const BlockHammingCodec codec(HammingCode::h63_57(), 1000);
  EXPECT_EQ(codec.word_count(), 18u);
  Rng rng(15);
  const BitVec reference = rng.next_bits(1000);
  const auto parity = codec.encode(reference);
  BitVec state = reference;
  state.flip(999);  // inside the padded word
  const auto stats = codec.repair(state, parity, reference);
  EXPECT_TRUE(stats.fully_corrected);
}

}  // namespace
}  // namespace retscan
