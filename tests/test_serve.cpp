// Campaign service (src/serve/): the daemon's caches must be invisible in
// the results. A campaign submitted to a JobManager — cold session, cached
// session, 1 thread or 8 — must digest byte-identically to every other run
// of the same spec. Around that core equivalence claim: the wire JSON
// value, the session-cache key and LRU mechanics, the FairScheduler
// parallel_for contract, job lifecycle (cancel both queued and running,
// failure isolation, overrides, drain), and a live Server end-to-end over
// a real Unix socket.

#include "retscan/serve.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

namespace retscan::serve {
namespace {

std::string write_file(const std::string& name, const std::string& body) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / name;
  // Write-temp-then-rename: a daemon driver thread may be parsing the
  // previous incarnation of this path while the test writes the next one,
  // and a plain ofstream open truncates in place under the reader.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp);
    out << body;
  }
  std::filesystem::rename(tmp, path);
  return path.string();
}

// Small specs, one per campaign kind — sized to finish in well under a
// second each so the equivalence matrix (3 kinds x 2 thread counts x
// cold/cached) stays cheap.
std::string validation_spec() {
  return write_file("serve_validation.spec",
                    "fifo.depth = 32\n"
                    "fifo.width = 4\n"
                    "protection.kind = hamming+crc\n"
                    "protection.hamming_r = 3\n"
                    "protection.chain_count = 4\n"
                    "campaign.kind = validation\n"
                    "campaign.seed = 11\n"
                    "campaign.sequences = 2000\n"
                    "campaign.mode = single-random\n");
}

std::string coverage_spec() {
  return write_file("serve_coverage.spec",
                    std::string("netlist = ") + RETSCAN_CIRCUITS_DIR +
                        "/ctrl344.v\n"
                        "campaign.kind = fault-coverage\n"
                        "campaign.seed = 7\n"
                        "campaign.atpg.random_patterns = 64\n"
                        "campaign.atpg.max_backtracks = 200\n");
}

std::string scan_spec() {
  return write_file("serve_scan.spec",
                    "fifo.depth = 32\n"
                    "fifo.width = 2\n"
                    "protection.kind = hamming+crc\n"
                    "protection.hamming_r = 3\n"
                    "protection.chain_count = 8\n"
                    "protection.test_width = 4\n"
                    "campaign.kind = scan-test\n"
                    "campaign.seed = 1\n"
                    "campaign.atpg.random_patterns = 64\n"
                    "campaign.atpg.max_backtracks = 200\n");
}

JobRecord run_one(JobManager& manager, const std::string& spec,
                  const SubmitOverrides& overrides = {}) {
  const std::uint64_t id = manager.submit(spec, overrides);
  const auto record = manager.wait(id);
  EXPECT_TRUE(record.has_value());
  return record.value_or(JobRecord{});
}

// ---------------------------------------------------------------------------
// Wire JSON value.

TEST(ServeJson, RoundTripsExactU64AndStructure) {
  Json obj = Json::Object{};
  obj.set("max", std::uint64_t{18446744073709551615ull})
      .set("rate", 0.25)
      .set("name", "c17 \"quoted\" \n line")
      .set("flag", true)
      .set("none", nullptr)
      .set("list", Json(Json::Array{Json(1), Json(2), Json(3)}));
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.at("max").as_u64(), 18446744073709551615ull);
  EXPECT_EQ(back.at("rate").as_double(), 0.25);
  EXPECT_EQ(back.at("name").as_string(), "c17 \"quoted\" \n line");
  EXPECT_TRUE(back.at("flag").as_bool());
  EXPECT_TRUE(back.at("none").is_null());
  EXPECT_EQ(back.at("list").as_array().size(), 3u);
  // Single-line framing: no raw newline may survive serialization.
  EXPECT_EQ(obj.dump().find('\n'), std::string::npos);
}

TEST(ServeJson, RejectsMalformedInputWithOffsets) {
  EXPECT_THROW(Json::parse(""), Error);
  EXPECT_THROW(Json::parse("{\"a\":1,}"), Error);
  EXPECT_THROW(Json::parse("{\"a\":1} junk"), Error);
  EXPECT_THROW(Json::parse("\"\\ud800\""), Error);  // lone surrogate
  EXPECT_THROW(Json::parse("nul"), Error);
  EXPECT_THROW(Json(0.5).as_u64(), Error);  // exact integers only
  EXPECT_THROW(Json("x").as_u64(), Error);
  EXPECT_THROW(Json(true).at("missing"), Error);
}

// ---------------------------------------------------------------------------
// Session-cache key and LRU mechanics.

TEST(ServeSessionKey, HashesDesignShapingFieldsOnly) {
  SpecFile a;
  a.fifo = {8, 8};
  const std::uint64_t base = session_key(a);
  EXPECT_EQ(session_key(a), base);  // deterministic

  SpecFile b = a;
  b.campaign.seed = 999;  // campaign knobs do not shape the design
  b.campaign.threads = 7;
  EXPECT_EQ(session_key(b), base);

  b = a;
  b.fifo.depth = 16;
  EXPECT_NE(session_key(b), base);
  b = a;
  b.protection.hamming_r = 4;
  EXPECT_NE(session_key(b), base);
  b = a;
  b.protection.chain_count += 1;
  EXPECT_NE(session_key(b), base);
}

TEST(ServeSessionKey, NetlistKeyTracksFileBytesNotPath) {
  const std::string v = "module m(input a, output y); assign y = a; endmodule\n";
  SpecFile one;
  one.netlist_file = write_file("key_one.v", v);
  SpecFile two;
  two.netlist_file = write_file("key_two.v", v);
  // Same bytes at a different path: same design, same key.
  EXPECT_EQ(session_key(one), session_key(two));

  SpecFile edited;
  edited.netlist_file = write_file("key_three.v", v + "// edited\n");
  EXPECT_NE(session_key(edited), session_key(one));

  SpecFile missing;
  missing.netlist_file = "/nonexistent/never.v";
  EXPECT_THROW(session_key(missing), Error);
}

TEST(ServeSessionCache, CheckoutIsExclusiveAndEvictionIsLru) {
  SessionCache cache(2);
  EXPECT_EQ(cache.checkout(1), nullptr);  // miss
  const SpecFile file = load_spec_file(validation_spec());
  cache.checkin(1, std::make_unique<Session>(make_session(file)));
  auto session = cache.checkout(1);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(cache.checkout(1), nullptr);  // exclusive: handed out once
  cache.checkin(1, std::move(session));

  cache.checkin(2, std::make_unique<Session>(make_session(file)));
  cache.checkin(3, std::make_unique<Session>(make_session(file)));  // evicts 1
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.checkout(1), nullptr);
  EXPECT_NE(cache.checkout(3), nullptr);
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);

  SessionCache none(0);  // capacity zero: checkin is a drop
  none.checkin(9, std::make_unique<Session>(make_session(file)));
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.checkout(9), nullptr);
}

// ---------------------------------------------------------------------------
// FairScheduler: the parallel_for contract on a shared pool.

TEST(ServeFairScheduler, RunsEveryBodyOnceAcrossConcurrentJobs) {
  ThreadPool pool(4);
  parallel::FairScheduler scheduler(pool);
  constexpr std::size_t kBodies = 64;
  std::vector<std::atomic<int>> a(kBodies), b(kBodies);
  std::thread other([&] {
    scheduler.run_job(kBodies, [&](std::size_t i) { b[i].fetch_add(1); });
  });
  scheduler.run_job(kBodies, [&](std::size_t i) { a[i].fetch_add(1); });
  other.join();
  for (std::size_t i = 0; i < kBodies; ++i) {
    EXPECT_EQ(a[i].load(), 1) << i;
    EXPECT_EQ(b[i].load(), 1) << i;
  }
}

TEST(ServeFairScheduler, ThrowingBodyAbandonsRestAndRethrows) {
  ThreadPool pool(2);
  parallel::FairScheduler scheduler(pool);
  std::atomic<int> ran{0};
  try {
    scheduler.run_job(100, [&](std::size_t i) {
      if (i == 3) {
        throw Error("shard exploded");
      }
      ran.fetch_add(1);
    });
    FAIL() << "expected the body's exception";
  } catch (const Error& error) {
    EXPECT_STREQ(error.what(), "shard exploded");
  }
  EXPECT_LT(ran.load(), 100);
  // The scheduler must remain usable after an abandoned job.
  std::atomic<int> again{0};
  scheduler.run_job(10, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 10);
}

TEST(ServeFairScheduler, CancelledTokenSkipsUnstartedBodies) {
  ThreadPool pool(2);
  parallel::FairScheduler scheduler(pool);
  CancelToken token;
  std::atomic<int> ran{0};
  scheduler.run_job(
      1000,
      [&](std::size_t) {
        token.request_cancel();
        ran.fetch_add(1);
      },
      &token);
  EXPECT_GT(ran.load(), 0);
  EXPECT_LT(ran.load(), 1000);
}

// ---------------------------------------------------------------------------
// The core claim: caches and thread counts never change results.

TEST(ServeEquivalence, CachedSessionsDigestIdenticalAcrossKindsAndThreads) {
  const std::string specs[] = {validation_spec(), coverage_spec(),
                               scan_spec()};
  for (const std::string& spec : specs) {
    std::uint64_t digest_at_threads[2] = {0, 0};
    int slot = 0;
    for (const unsigned threads : {1u, 8u}) {
      ServeOptions options;
      options.threads = threads;
      options.session_capacity = 4;
      options.max_active = 1;
      JobManager manager(options);

      const JobRecord cold = run_one(manager, spec);
      ASSERT_EQ(cold.state, JobState::Done) << spec << " " << cold.error;
      ASSERT_TRUE(cold.summary.has_value());
      EXPECT_FALSE(cold.session_reused);

      const JobRecord warm = run_one(manager, spec);
      ASSERT_EQ(warm.state, JobState::Done) << spec << " " << warm.error;
      ASSERT_TRUE(warm.summary.has_value());
      EXPECT_TRUE(warm.session_reused) << spec;
      EXPECT_EQ(manager.session_stats().hits, 1u);

      // Cold vs cached: byte-identical statistics.
      EXPECT_EQ(summary_digest(*warm.summary), summary_digest(*cold.summary))
          << spec << " at " << threads << " threads";
      digest_at_threads[slot++] = summary_digest(*cold.summary);
    }
    // 1 thread vs 8 threads: byte-identical statistics.
    EXPECT_EQ(digest_at_threads[0], digest_at_threads[1]) << spec;
  }
}

TEST(ServeEquivalence, SummarySurvivesTheWireAndDetectsTampering) {
  ServeOptions options;
  options.max_active = 1;
  JobManager manager(options);
  const JobRecord record = run_one(manager, validation_spec());
  ASSERT_TRUE(record.summary.has_value());

  const Json wire = to_json(*record.summary);
  const ResultSummary back = summary_from_json(Json::parse(wire.dump()));
  EXPECT_EQ(summary_digest(back), summary_digest(*record.summary));
  EXPECT_EQ(back.sequences, record.summary->sequences);
  EXPECT_EQ(back.passed, record.summary->passed);

  Json corrupt = Json::parse(wire.dump());
  corrupt.set("detected", corrupt.at("detected").as_u64() + 1);
  EXPECT_THROW(summary_from_json(corrupt), Error);  // digest mismatch

  // The whole job record round-trips too (list/status responses).
  const JobRecord again = job_from_json(Json::parse(to_json(record).dump()));
  EXPECT_EQ(again.id, record.id);
  EXPECT_EQ(again.state, record.state);
  ASSERT_TRUE(again.summary.has_value());
  EXPECT_EQ(summary_digest(*again.summary), summary_digest(*record.summary));
}

// ---------------------------------------------------------------------------
// Job lifecycle.

TEST(ServeJobManager, OverridesShapeTheCampaign) {
  ServeOptions options;
  options.max_active = 1;
  JobManager manager(options);
  const std::string spec = validation_spec();

  SubmitOverrides overrides;
  overrides.sequences = 500;
  const JobRecord shrunk = run_one(manager, spec, overrides);
  ASSERT_EQ(shrunk.state, JobState::Done) << shrunk.error;
  EXPECT_EQ(shrunk.summary->sequences, 500u);

  // apply_overrides mirrors the `retscan run` flag loop exactly.
  SpecFile file = load_spec_file(spec);
  overrides = {};
  overrides.seed = 404;
  overrides.threads = 3;
  overrides.backend = "reference";
  overrides.schedule = "sweep";
  overrides.checkpoint = "x.journal";
  overrides.resume = true;
  overrides.deadline_ms = 5000;
  apply_overrides(file, overrides);
  EXPECT_EQ(file.campaign.seed, 404u);
  EXPECT_EQ(file.campaign.threads, 3u);
  EXPECT_EQ(file.campaign.backend, Backend::Reference);
  EXPECT_EQ(file.campaign.checkpoint, "x.journal");
  EXPECT_TRUE(file.campaign.resume);
  EXPECT_EQ(file.campaign.deadline_ms, 5000u);

  SubmitOverrides bad;
  bad.backend = "quantum";
  EXPECT_THROW(apply_overrides(file, bad), Error);

  // Overrides survive the wire.
  const SubmitOverrides back =
      overrides_from_json(Json::parse(to_json(overrides).dump()));
  EXPECT_EQ(back.seed, overrides.seed);
  EXPECT_EQ(back.backend, overrides.backend);
  EXPECT_EQ(back.resume, overrides.resume);
  EXPECT_EQ(back.deadline_ms, overrides.deadline_ms);
}

TEST(ServeJobManager, BadSpecFailsTheJobNotTheDaemon) {
  ServeOptions options;
  options.max_active = 1;
  JobManager manager(options);
  const JobRecord bad = run_one(manager, "/nonexistent/campaign.spec");
  EXPECT_EQ(bad.state, JobState::Failed);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_FALSE(bad.summary.has_value());
  EXPECT_EQ(exit_code_for(bad.state, nullptr), 2);

  // The driver thread survived: the next job runs normally.
  const JobRecord good = run_one(manager, validation_spec());
  EXPECT_EQ(good.state, JobState::Done) << good.error;
  EXPECT_EQ(exit_code_for(good.state, &*good.summary),
            good.summary->passed ? 0 : 1);
}

TEST(ServeJobManager, CancelHitsQueuedAndRunningJobs) {
  ServeOptions options;
  options.max_active = 1;  // one driver: FIFO order is deterministic
  JobManager manager(options);

  // A long-running head-of-line job (many shards, so a running cancel
  // takes effect at the next shard boundary almost immediately).
  SubmitOverrides big;
  big.sequences = 2000000;
  const std::uint64_t running = manager.submit(validation_spec(), big);
  const std::uint64_t queued = manager.submit(validation_spec(), {});

  // The second job cannot start while the single driver owns the first:
  // cancelling it exercises the queued path.
  EXPECT_TRUE(manager.cancel(queued));
  const auto queued_record = manager.wait(queued);
  ASSERT_TRUE(queued_record.has_value());
  EXPECT_EQ(queued_record->state, JobState::Cancelled);

  EXPECT_TRUE(manager.cancel(running));
  const auto running_record = manager.wait(running);
  ASSERT_TRUE(running_record.has_value());
  EXPECT_EQ(running_record->state, JobState::Cancelled);
  EXPECT_EQ(exit_code_for(running_record->state, nullptr), 130);
  if (running_record->summary.has_value()) {
    EXPECT_EQ(running_record->summary->status, "cancelled");
    EXPECT_LT(running_record->summary->shards_completed,
              running_record->summary->shard_count);
  }

  EXPECT_FALSE(manager.cancel(running));  // already terminal
  EXPECT_FALSE(manager.cancel(777));      // unknown

  EXPECT_EQ(manager.list().size(), 2u);
}

TEST(ServeJobManager, DrainFinishesQueuedWorkAndRejectsNewJobs) {
  ServeOptions options;
  options.max_active = 1;
  JobManager manager(options);
  const std::uint64_t a = manager.submit(validation_spec(), {});
  const std::uint64_t b = manager.submit(validation_spec(), {});
  manager.drain();  // must run BOTH to completion, not cancel them
  EXPECT_EQ(manager.status(a)->state, JobState::Done)
      << "job a error: " << manager.status(a)->error;
  EXPECT_EQ(manager.status(b)->state, JobState::Done);
  EXPECT_THROW(manager.submit(validation_spec(), {}), Error);
}

// ---------------------------------------------------------------------------
// Server end-to-end over a real socket.

TEST(ServeServer, FullProtocolOverAUnixSocket) {
  const std::string socket_path =
      (std::filesystem::path(::testing::TempDir()) / "serve_e2e.sock")
          .string();
  ServeOptions options;
  options.max_active = 1;
  Server server(socket_path, options);
  std::thread daemon([&] { server.run(); });

  {
    Client client(socket_path);
    const Json pong = client.request(Json(Json::Object{}).set("cmd", "ping"));
    EXPECT_EQ(pong.at("protocol").as_u64(), kProtocolVersion);
    EXPECT_FALSE(pong.at("version").as_string().empty());
    EXPECT_GT(pong.at("lane_bits").as_u64(), 0u);

    // Unknown commands and malformed ids come back as protocol errors.
    EXPECT_THROW(
        client.request(Json(Json::Object{}).set("cmd", "frobnicate")), Error);
  }

  // Streamed submit: progress events, then the terminal record.
  std::uint64_t streamed_digest = 0;
  {
    Client client(socket_path);
    client.send(Json(Json::Object{})
                    .set("cmd", "submit")
                    .set("spec", validation_spec())
                    .set("wait", true));
    Json line = client.read_line();
    std::size_t events = 0;
    while (!line.has("ok")) {
      EXPECT_EQ(line.at("event").as_string(), "progress");
      ++events;
      line = client.read_line();
    }
    EXPECT_TRUE(line.at("ok").as_bool());
    const JobRecord record = job_from_json(line.at("job"));
    EXPECT_EQ(record.state, JobState::Done) << record.error;
    ASSERT_TRUE(record.summary.has_value());
    streamed_digest = summary_digest(*record.summary);
    EXPECT_GE(events, 1u);  // at least the queued→running transition
  }

  // A second client sees the first client's job, and `result` on a fresh
  // submission blocks until terminal and digests identically (the daemon
  // reused the cached session — invisible in the statistics).
  {
    Client client(socket_path);
    const Json listed = client.request(Json(Json::Object{}).set("cmd", "list"));
    EXPECT_EQ(listed.at("jobs").as_array().size(), 1u);

    const Json submitted = client.request(Json(Json::Object{})
                                              .set("cmd", "submit")
                                              .set("spec", validation_spec()));
    const std::uint64_t id = submitted.at("id").as_u64();
    const Json done = client.request(
        Json(Json::Object{}).set("cmd", "result").set("id", id));
    const JobRecord record = job_from_json(done.at("job"));
    EXPECT_EQ(record.state, JobState::Done) << record.error;
    EXPECT_TRUE(record.session_reused);
    EXPECT_EQ(summary_digest(*record.summary), streamed_digest);

    const Json stats = client.request(Json(Json::Object{}).set("cmd", "stats"));
    EXPECT_EQ(stats.at("sessions").at("hits").as_u64(), 1u);

    const Json cancelled = client.request(
        Json(Json::Object{}).set("cmd", "cancel").set("id", 999));
    EXPECT_FALSE(cancelled.at("cancelled").as_bool());

    const Json bye = client.request(Json(Json::Object{}).set("cmd", "shutdown"));
    EXPECT_TRUE(bye.at("draining").as_bool());
  }

  daemon.join();
  EXPECT_FALSE(std::filesystem::exists(socket_path));  // socket unlinked

  // A dropped client connection must not leak into the next daemon on the
  // same path: restart immediately over the stale-free path.
  Server second(socket_path, options);
  std::thread again([&] { second.run(); });
  {
    Client client(socket_path);
    client.request(Json(Json::Object{}).set("cmd", "shutdown"));
  }
  again.join();
}

}  // namespace
}  // namespace retscan::serve
