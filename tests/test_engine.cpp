// This file deliberately exercises the pre-v1 delivery entry points
// (they are the backends the Session facade routes onto), so the
// deprecation attributes are suppressed here.
#define RETSCAN_SUPPRESS_DEPRECATED

// Cross-checks of the bit-parallel SimEngine facades: PackedSim lane 0 must
// match the scalar Simulator bit-exactly over randomized netlists (including
// power cycles and retention corruption), lanes must be fully independent,
// and the packed campaign layers must agree with their scalar counterparts.
// Also covers the power-gating corner cases: RETAIN held across multiple
// power cycles, power_off on an already-off domain, and the activity-report
// guards.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atpg/atpg.hpp"
#include "atpg/scan_test.hpp"
#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "core/protected_design.hpp"
#include "netlist/netlist.hpp"
#include "scan/scan_insert.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "testbench/harness.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

/// Random layered netlist: gates over primary inputs, a rank of flops, more
/// gates over flop outputs, a second rank of flops, outputs. Some flops are
/// retention scan flops in the gated domain so that power cycles and
/// balloon-latch traffic are exercised.
struct RandomDesign {
  Netlist nl;
  std::vector<NetId> data_inputs;
  std::vector<CellId> rdffs;
};

RandomDesign random_design(Rng& rng) {
  RandomDesign d;
  Netlist& nl = d.nl;
  const NetId se = nl.add_input("se");
  const NetId retain = nl.add_input("retain");
  std::vector<NetId> pool;
  for (int i = 0; i < 4; ++i) {
    const NetId in = nl.add_input("a" + std::to_string(i));
    d.data_inputs.push_back(in);
    pool.push_back(in);
  }
  auto random_gate = [&]() {
    const NetId a = pool[rng.next_below(pool.size())];
    const NetId b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(7)) {
      case 0: return nl.n_and(a, b);
      case 1: return nl.n_or(a, b);
      case 2: return nl.n_xor(a, b);
      case 3: return nl.n_nand(a, b);
      case 4: return nl.n_nor(a, b);
      case 5: return nl.n_not(a);
      default: return nl.n_mux(a, b, pool[rng.next_below(pool.size())]);
    }
  };
  for (int layer = 0; layer < 2; ++layer) {
    for (int g = 0; g < 12; ++g) {
      pool.push_back(random_gate());
    }
    NetId scan_prev = se;  // arbitrary existing net as the first SI
    for (int f = 0; f < 4; ++f) {
      const NetId q = nl.n_dff(pool[rng.next_below(pool.size())]);
      const CellId flop = nl.driver(q);
      if (rng.next_bool(0.5)) {
        nl.convert_flop(flop, CellType::Rdff, {scan_prev, se, retain});
        nl.set_domain(flop, 1);
        d.rdffs.push_back(flop);
        scan_prev = q;
      }
      pool.push_back(q);
    }
  }
  // A couple of combinational cells in the gated domain (isolation clamps).
  for (int g = 0; g < 4; ++g) {
    const NetId y = random_gate();
    nl.set_domain(nl.driver(y), 1);
    pool.push_back(y);
  }
  nl.add_output("y0", pool[pool.size() - 1]);
  nl.add_output("y1", nl.n_xor_tree({pool[4], pool[7], pool[pool.size() - 2]}));
  return d;
}

/// Lane 0 of a broadcast-stimulus PackedSim must match the scalar Simulator
/// net-for-net and cycle-for-cycle, through power cycles, retention upsets
/// and RETAIN traffic. (Zero power-off garbage on both sides: the scalar and
/// packed facades consume an Rng differently by design.)
TEST(PackedSim, Lane0MatchesScalarOnRandomizedCircuits) {
  Rng build_rng(1234);
  for (int trial = 0; trial < 5; ++trial) {
    RandomDesign d = random_design(build_rng);
    Simulator scalar(d.nl);
    PackedSim packed(d.nl);
    Rng stim(8000 + trial);
    scalar.set_input("se", false);
    packed.set_input_all("se", false);
    scalar.set_input("retain", false);
    packed.set_input_all("retain", false);

    auto compare_all = [&](int cycle) {
      for (NetId n = 0; n < d.nl.net_count(); ++n) {
        ASSERT_EQ(scalar.net_value(n), packed.net_value(n, 0))
            << "trial " << trial << " cycle " << cycle << " net " << n;
        ASSERT_EQ(scalar.net_value(n), packed.net_value(n, 17))
            << "broadcast lanes diverged, net " << n;
      }
      ASSERT_EQ(scalar.flop_states(), packed.flop_states(0));
    };

    for (int cycle = 0; cycle < 80; ++cycle) {
      for (const NetId in : d.data_inputs) {
        const bool v = stim.next_bool(0.5);
        scalar.set_input(in, v);
        packed.set_input_all(in, v);
      }
      scalar.step();
      packed.step();
      compare_all(cycle);

      if (cycle % 20 == 19 && !d.rdffs.empty()) {
        // Save, sleep, corrupt one balloon latch, wake, restore.
        scalar.set_input("retain", true);
        packed.set_input_all("retain", true);
        scalar.step();
        packed.step();
        scalar.power_off(1);
        packed.power_off(1);
        compare_all(cycle);
        const CellId victim = d.rdffs[stim.next_below(d.rdffs.size())];
        scalar.flip_retention(victim);
        packed.flip_retention(victim, kAllLanes);
        scalar.power_on(1);
        packed.power_on(1);
        scalar.set_input("retain", false);
        packed.set_input_all("retain", false);
        scalar.step();
        packed.step();
        compare_all(cycle);
      }
    }
  }
}

/// Each lane is a fully independent simulation: lane b of a per-lane-driven
/// PackedSim must match a dedicated scalar Simulator fed lane b's stimulus.
TEST(PackedSim, LanesAreIndependent) {
  const Netlist nl = make_shift_register(8);
  PackedSim packed(nl);
  std::vector<std::unique_ptr<Simulator>> scalars;
  for (std::size_t lane = 0; lane < PackedSim::lane_count(); ++lane) {
    scalars.push_back(std::make_unique<Simulator>(nl));
  }
  Rng rng(42);
  const NetId sin = nl.input_net("sin");
  const NetId sout = nl.output_net("sout");
  for (int cycle = 0; cycle < 40; ++cycle) {
    const LaneWord word = rng.next_u64();
    packed.set_input(sin, word);
    for (std::size_t lane = 0; lane < scalars.size(); ++lane) {
      scalars[lane]->set_input(sin, (word >> lane & 1u) != 0);
    }
    packed.step();
    LaneWord expected = 0;
    for (std::size_t lane = 0; lane < scalars.size(); ++lane) {
      scalars[lane]->step();
      expected |= LaneWord{scalars[lane]->net_value(sout)} << lane;
    }
    ASSERT_EQ(packed.net_lanes(sout), expected) << "cycle " << cycle;
  }
}

class RetainCornerFixture : public ::testing::Test {
 protected:
  RetainCornerFixture() {
    d_ = nl_.add_input("d");
    si_ = nl_.add_input("si");
    se_ = nl_.add_input("se");
    retain_ = nl_.add_input("retain");
    const NetId q = nl_.n_dff(d_);
    flop_ = nl_.driver(q);
    nl_.convert_flop(flop_, CellType::Rdff, {si_, se_, retain_});
    nl_.set_domain(flop_, 1);
    nl_.add_output("q", q);
    sim_ = std::make_unique<Simulator>(nl_);
    sim_->set_input("se", false);
    sim_->set_input("si", false);
    sim_->set_input("retain", false);
  }

  Netlist nl_;
  NetId d_, si_, se_, retain_;
  CellId flop_;
  std::unique_ptr<Simulator> sim_;
};

/// RETAIN held asserted across several power cycles: the balloon latch
/// samples exactly once (on the rising edge) and must not re-sample from the
/// garbage master during intermediate wake windows.
TEST_F(RetainCornerFixture, RetainHeldAcrossMultiplePowerCycles) {
  sim_->set_input("d", true);
  sim_->step();
  ASSERT_TRUE(sim_->output("q"));

  sim_->set_input("retain", true);
  sim_->step();  // save edge
  ASSERT_TRUE(sim_->retention_state(flop_));

  for (int cycle = 0; cycle < 3; ++cycle) {
    sim_->power_off(1);
    EXPECT_FALSE(sim_->output("q"));
    sim_->power_on(1);
    // Powered clocks with RETAIN still high: master holds (clock gated),
    // latch must not re-sample the zeroed master.
    sim_->step();
    sim_->step();
    EXPECT_TRUE(sim_->retention_state(flop_)) << "latch lost on cycle " << cycle;
  }

  sim_->set_input("retain", false);
  sim_->set_input("d", false);
  sim_->step();  // restore edge
  EXPECT_TRUE(sim_->output("q"));  // the value saved before the first cycle
}

/// power_off on an already-off domain is a no-op for the retention latches
/// and keeps the domain clamped; power_on still recovers.
TEST_F(RetainCornerFixture, PowerOffOnAlreadyOffDomain) {
  sim_->set_input("d", true);
  sim_->step();
  sim_->set_input("retain", true);
  sim_->step();
  sim_->power_off(1);
  ASSERT_FALSE(sim_->domain_powered(1));
  ASSERT_TRUE(sim_->retention_state(flop_));

  Rng rng(5);
  sim_->power_off(1, &rng);  // second cut while already asleep
  EXPECT_FALSE(sim_->domain_powered(1));
  EXPECT_FALSE(sim_->output("q"));                // still clamped
  EXPECT_TRUE(sim_->retention_state(flop_));     // balloon survives

  sim_->power_on(1);
  sim_->set_input("retain", false);
  sim_->step();
  EXPECT_TRUE(sim_->output("q"));  // restored despite the double cut
}

TEST(ActivityReport, AveragePowerGuards) {
  ActivityReport report;
  report.dynamic_energy_pj = 12.5;
  report.steps = 0;
  EXPECT_EQ(report.average_power_mw(10.0), 0.0);  // no steps: no inf/NaN
  report.steps = 10;
  EXPECT_EQ(report.average_power_mw(0.0), 0.0);   // degenerate clock
  EXPECT_EQ(report.average_power_mw(-1.0), 0.0);
  EXPECT_GT(report.average_power_mw(10.0), 0.0);
}

TEST(LaneHelpers, PackUnpackRoundTrip) {
  Rng rng(77);
  std::vector<BitVec> rows;
  for (int lane = 0; lane < 23; ++lane) {
    rows.push_back(rng.next_bits(57));
  }
  const std::vector<std::uint64_t> words = pack_lanes(rows);
  ASSERT_EQ(words.size(), 57u);
  const std::vector<BitVec> back = unpack_lanes(words, rows.size());
  for (std::size_t lane = 0; lane < rows.size(); ++lane) {
    EXPECT_EQ(back[lane], rows[lane]);
  }
}

/// The packed injection session must agree with the scalar RetentionSession
/// lane for lane: 64 different single upsets run in one packed sleep/wake
/// cycle, each checked against its own scalar cycle.
TEST(PackedRetentionSession, MatchesScalarPerLane) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  const std::size_t l = design.chain_length();

  // 64 distinct upset sets: mostly singles, a few multi-bit bursts.
  ErrorInjector injector(config.chain_count, l, 3);
  std::vector<std::vector<ErrorLocation>> upsets(PackedSim::lane_count());
  for (std::size_t lane = 0; lane < upsets.size(); ++lane) {
    if (lane % 8 == 7) {
      upsets[lane] = injector.clustered_burst(3, 1);
    } else {
      upsets[lane] = {injector.random_single()};
    }
  }
  upsets[20].clear();  // one clean lane

  PackedRetentionSession packed(design);
  const auto outcome = packed.sleep_wake_cycle(upsets, nullptr);

  for (std::size_t lane = 0; lane < upsets.size(); ++lane) {
    RetentionSession scalar(design);
    const auto expected = scalar.sleep_wake_cycle(upsets[lane], nullptr);
    EXPECT_EQ((outcome.errors_detected >> lane & 1u) != 0, expected.errors_detected)
        << "lane " << lane;
    EXPECT_EQ((outcome.recheck_clean >> lane & 1u) != 0, expected.recheck_clean)
        << "lane " << lane;
  }
}

/// Doubles a pattern set so the packed paths exercise more than one
/// 64-lane batch.
std::vector<BitVec> doubled_patterns(const std::vector<BitVec>& patterns) {
  std::vector<BitVec> out = patterns;
  out.insert(out.end(), patterns.begin(), patterns.end());
  return out;
}

/// Packed parallel-pattern scan delivery agrees with the scalar tester path
/// on a full ATPG pattern set through the full-width chains of a plain
/// scanned design (in a ProtectedDesign the si ports are superseded by the
/// monitor feedback muxes, so full-width delivery only applies pre-monitor).
TEST(PackedScanTest, MatchesScalarFullWidthDelivery) {
  Netlist nl = make_fifo(FifoSpec{32, 2});
  ScanInsertionOptions sopt;
  sopt.chain_count = 8;
  sopt.style = ScanStyle::Retention;
  const ScanChains chains = insert_scan(nl, sopt);

  CombinationalFrame frame(nl);
  frame.constrain("se", false);
  frame.constrain("retain", false);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgOptions options;
  options.random_patterns = 128;
  options.run_podem = false;
  const AtpgResult atpg = run_atpg(frame, faults, options);
  ASSERT_GT(atpg.patterns.size(), 0u);
  const std::vector<BitVec> patterns = doubled_patterns(atpg.patterns);
  ASSERT_GT(patterns.size(), 64u);

  Simulator scalar_sim(nl);
  const ScanTestResult scalar = apply_scan_test(scalar_sim, chains, frame, patterns);
  PackedSim packed_sim(nl);
  const ScanTestResult packed = apply_scan_test(packed_sim, chains, frame, patterns);
  EXPECT_EQ(packed.patterns_applied, scalar.patterns_applied);
  EXPECT_EQ(packed.mismatches, scalar.mismatches);
  EXPECT_TRUE(scalar.all_passed());
  EXPECT_TRUE(packed.all_passed());
}

/// Same agreement through the narrow Fig. 5(b) test-mode concatenation of a
/// ProtectedDesign.
TEST(PackedScanTest, MatchesScalarTestModeDelivery) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);

  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(design.netlist(), enumerate_faults(design.netlist()));
  AtpgOptions options;
  options.random_patterns = 128;
  options.run_podem = false;
  const AtpgResult atpg = run_atpg(frame, faults, options);
  ASSERT_GT(atpg.patterns.size(), 0u);
  const std::vector<BitVec> patterns = doubled_patterns(atpg.patterns);
  ASSERT_GT(patterns.size(), 64u);

  RetentionSession session(design);
  const ScanTestResult scalar =
      apply_test_mode_scan_test(session, design, frame, patterns);
  const ScanTestResult packed =
      apply_test_mode_scan_test_packed(design, frame, patterns);
  EXPECT_EQ(packed.patterns_applied, scalar.patterns_applied);
  EXPECT_EQ(packed.mismatches, scalar.mismatches);
  EXPECT_TRUE(scalar.all_passed());
  EXPECT_TRUE(packed.all_passed());
}

/// The packed structural campaign reproduces the paper's invariants: every
/// single error detected and corrected, no silent corruption — including a
/// partial tail batch.
TEST(StructuralTestbench, PackedCampaignInvariants) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 2};
  config.chain_count = 8;
  config.mode = InjectionMode::SingleRandom;
  config.seed = 99;
  StructuralTestbench tb(config);
  const ValidationStats stats = tb.run_packed(130);  // 64 + 64 + 2
  EXPECT_EQ(stats.sequences, 130u);
  EXPECT_EQ(stats.sequences_with_errors, 130u);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(stats.correction_rate(), 1.0);
  EXPECT_EQ(stats.comparator_mismatches, 0u);
  EXPECT_EQ(stats.silent_corruptions, 0u);
}

TEST(StructuralTestbench, PackedBurstsDetectedNotSilent) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 2};
  config.chain_count = 8;
  config.mode = InjectionMode::MultipleBurst;
  config.burst_size = 4;
  config.burst_spread = 1;
  config.seed = 5;
  StructuralTestbench tb(config);
  const ValidationStats stats = tb.run_packed(64);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_EQ(stats.silent_corruptions, 0u);
  EXPECT_LT(stats.correction_rate(), 0.5);  // bursts defeat SEC correction
}

}  // namespace
}  // namespace retscan
