// Equivalence tests of the event-driven settle scheduler (dirty-net
// worklist, sim/schedule.hpp + CompiledNetlist::eval_event) against the
// full-sweep reference: the kernel-level worklist must match eval_full at
// word and block lane widths (including budget fallbacks), event-scheduled
// engines must match sweep-scheduled engines net-for-net through power
// cycles and on the vendored ISCAS benches, multi-source dirty-cone replay
// must match a forced full re-evaluation, and campaign statistics must be
// schedule-invariant.

#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/fifo.hpp"
#include "core/protected_design.hpp"
#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "testbench/harness.hpp"
#include "util/rng.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

namespace retscan {
namespace {

/// Random layered netlist with retention flops and gated logic — the same
/// shape the engine equivalence suites use, so event scheduling is tested
/// through clamps, RETAIN traffic and balloon-latch save/restore.
struct RandomDesign {
  Netlist nl;
  std::vector<NetId> data_inputs;
  std::vector<CellId> rdffs;
};

RandomDesign random_design(Rng& rng) {
  RandomDesign d;
  Netlist& nl = d.nl;
  const NetId se = nl.add_input("se");
  const NetId retain = nl.add_input("retain");
  std::vector<NetId> pool;
  for (int i = 0; i < 4; ++i) {
    const NetId in = nl.add_input("a" + std::to_string(i));
    d.data_inputs.push_back(in);
    pool.push_back(in);
  }
  auto random_gate = [&]() {
    const NetId a = pool[rng.next_below(pool.size())];
    const NetId b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(7)) {
      case 0: return nl.n_and(a, b);
      case 1: return nl.n_or(a, b);
      case 2: return nl.n_xor(a, b);
      case 3: return nl.n_nand(a, b);
      case 4: return nl.n_nor(a, b);
      case 5: return nl.n_not(a);
      default: return nl.n_mux(a, b, pool[rng.next_below(pool.size())]);
    }
  };
  for (int layer = 0; layer < 2; ++layer) {
    for (int g = 0; g < 12; ++g) {
      pool.push_back(random_gate());
    }
    NetId scan_prev = se;
    for (int f = 0; f < 4; ++f) {
      const NetId q = nl.n_dff(pool[rng.next_below(pool.size())]);
      const CellId flop = nl.driver(q);
      if (rng.next_bool(0.5)) {
        nl.convert_flop(flop, CellType::Rdff, {scan_prev, se, retain});
        nl.set_domain(flop, 1);
        d.rdffs.push_back(flop);
        scan_prev = q;
      }
      pool.push_back(q);
    }
  }
  for (int g = 0; g < 4; ++g) {
    const NetId y = random_gate();
    nl.set_domain(nl.driver(y), 1);
    pool.push_back(y);
  }
  nl.add_output("y0", pool[pool.size() - 1]);
  nl.add_output("y1", nl.n_xor_tree({pool[4], pool[7], pool[pool.size() - 2]}));
  return d;
}

/// Source slots of a compiled netlist: everything no instruction writes.
std::vector<std::uint32_t> source_slots(const CompiledNetlist& compiled) {
  std::vector<bool> written(compiled.slot_count(), false);
  for (const CompiledInstr& in : compiled.instrs()) {
    written[in.out] = true;
  }
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < compiled.slot_count(); ++s) {
    if (!written[s]) {
      sources.push_back(s);
    }
  }
  return sources;
}

/// eval_event with a plain compare-and-store must reproduce eval_full slot
/// for slot across randomized dirty sets, at the word lane width, including
/// budget-crossing settles finished by a caller-side full sweep.
TEST(EvalEvent, MatchesEvalFullAtWordWidth) {
  Rng rng(101);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    const std::vector<std::uint32_t> sources = source_slots(*compiled);
    ASSERT_FALSE(sources.empty());

    std::vector<LaneWord> oracle(compiled->slot_count());
    std::vector<LaneWord> event(compiled->slot_count());
    for (const std::uint32_t s : sources) {
      oracle[s] = event[s] = rng.next_u64();
    }
    compiled->eval_full(oracle.data());
    compiled->eval_full(event.data());

    CompiledNetlist::EventWorkspace ws;
    // Alternate generous and starved budgets so both the clean path and the
    // fallback path run against the same workspace.
    for (int settle = 0; settle < 40; ++settle) {
      std::vector<std::uint32_t> dirty;
      const std::size_t changes = 1 + rng.next_below(sources.size());
      for (std::size_t c = 0; c < changes; ++c) {
        const std::uint32_t s = sources[rng.next_below(sources.size())];
        const LaneWord value = rng.next_u64();
        if (event[s] != value) {
          event[s] = value;
          oracle[s] = value;
          dirty.push_back(s);
        }
      }
      compiled->eval_full(oracle.data());
      const std::size_t budget =
          settle % 3 == 2 ? 4 : compiled->instrs().size();
      const auto result = compiled->eval_event(
          dirty, ws, budget, [&](const CompiledInstr& in) {
            const LaneWord value = CompiledNetlist::eval_instr(in, event.data());
            if (event[in.out] == value) {
              return false;
            }
            event[in.out] = value;
            return true;
          });
      if (result.fell_back) {
        // Partial worklist work is final; the full sweep just completes it.
        compiled->eval_full(event.data());
      }
      for (std::uint32_t s = 0; s < compiled->slot_count(); ++s) {
        ASSERT_EQ(event[s], oracle[s])
            << "trial " << trial << " settle " << settle << " slot " << s
            << (result.fell_back ? " (fell back)" : "");
      }
    }
  }
}

/// Same agreement at the block lane width — eval_event is width-agnostic
/// (the store lambda owns the value array), so one worklist drives both the
/// 64-lane engines and the 256-lane fault datapath.
TEST(EvalEvent, MatchesEvalFullAtBlockWidth) {
  Rng rng(202);
  const RandomDesign d = random_design(rng);
  const auto compiled = d.nl.compiled();
  const std::vector<std::uint32_t> sources = source_slots(*compiled);

  std::vector<LaneBlock> oracle(compiled->slot_count(), LaneBlock{});
  std::vector<LaneBlock> event(compiled->slot_count(), LaneBlock{});
  auto random_block = [&rng]() {
    LaneBlock block;
    for (std::size_t w = 0; w < kLaneWords; ++w) {
      block.w[w] = rng.next_u64();
    }
    return block;
  };
  for (const std::uint32_t s : sources) {
    oracle[s] = event[s] = random_block();
  }
  compiled->eval_full(oracle.data());
  compiled->eval_full(event.data());

  CompiledNetlist::EventWorkspace ws;
  for (int settle = 0; settle < 25; ++settle) {
    std::vector<std::uint32_t> dirty;
    for (std::size_t c = 0; c < 3; ++c) {
      const std::uint32_t s = sources[rng.next_below(sources.size())];
      const LaneBlock value = random_block();
      event[s] = value;
      oracle[s] = value;
      dirty.push_back(s);
    }
    compiled->eval_full(oracle.data());
    const auto result = compiled->eval_event(
        dirty, ws, compiled->instrs().size(), [&](const CompiledInstr& in) {
          const LaneBlock value = CompiledNetlist::eval_instr(in, event.data());
          bool changed = false;
          for (std::size_t w = 0; w < kLaneWords; ++w) {
            changed |= event[in.out].w[w] != value.w[w];
          }
          if (changed) {
            event[in.out] = value;
          }
          return changed;
        });
    EXPECT_FALSE(result.fell_back);
    for (std::uint32_t s = 0; s < compiled->slot_count(); ++s) {
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        ASSERT_EQ(event[s].w[w], oracle[s].w[w])
            << "settle " << settle << " slot " << s << " word " << w;
      }
    }
  }
}

/// An event-scheduled scalar Simulator must match a sweep-scheduled one
/// net-for-net and cycle-for-cycle through RETAIN traffic, power cycles
/// with randomized garbage, and retention upsets; likewise the packed
/// facade with independent per-lane stimulus.
TEST(EventSchedule, EnginesMatchSweepThroughPowerCycles) {
  Rng build_rng(4321);
  for (int trial = 0; trial < 3; ++trial) {
    RandomDesign d = random_design(build_rng);
    Simulator sweep(d.nl);
    Simulator event(d.nl);
    Simulator probe(d.nl);
    sweep.set_schedule(Schedule::Sweep);
    event.set_schedule(Schedule::Event);
    probe.set_schedule(Schedule::Auto);
    PackedSim packed_sweep(d.nl);
    PackedSim packed_event(d.nl);
    packed_sweep.set_schedule(Schedule::Sweep);
    packed_event.set_schedule(Schedule::Event);

    Rng stim(9000 + trial);
    for (Simulator* sim : {&sweep, &event, &probe}) {
      sim->set_input("se", false);
      sim->set_input("retain", false);
    }
    for (PackedSim* sim : {&packed_sweep, &packed_event}) {
      sim->set_input_all("se", false);
      sim->set_input_all("retain", false);
    }

    auto compare_all = [&](int cycle) {
      for (NetId n = 0; n < d.nl.net_count(); ++n) {
        ASSERT_EQ(sweep.net_value(n), event.net_value(n))
            << "trial " << trial << " cycle " << cycle << " net " << n;
        ASSERT_EQ(sweep.net_value(n), probe.net_value(n))
            << "auto diverged, trial " << trial << " cycle " << cycle
            << " net " << n;
        ASSERT_EQ(packed_sweep.net_lanes(n), packed_event.net_lanes(n))
            << "packed, trial " << trial << " cycle " << cycle << " net " << n;
      }
      ASSERT_EQ(sweep.flop_states(), event.flop_states());
    };

    for (int cycle = 0; cycle < 60; ++cycle) {
      for (const NetId in : d.data_inputs) {
        const bool v = stim.next_bool(0.5);
        const LaneWord lanes = stim.next_u64();
        sweep.set_input(in, v);
        event.set_input(in, v);
        probe.set_input(in, v);
        packed_sweep.set_input(in, lanes);
        packed_event.set_input(in, lanes);
      }
      sweep.step();
      event.step();
      probe.step();
      packed_sweep.step();
      packed_event.step();
      compare_all(cycle);

      if (cycle % 15 == 14 && !d.rdffs.empty()) {
        for (Simulator* sim : {&sweep, &event, &probe}) {
          sim->set_input("retain", true);
          sim->step();
        }
        for (PackedSim* sim : {&packed_sweep, &packed_event}) {
          sim->set_input_all("retain", true);
          sim->step();
        }
        // Identical garbage streams per engine so sleep state agrees.
        Rng g1(7000 + cycle), g2(7000 + cycle), g3(7000 + cycle);
        sweep.power_off(1, &g1);
        event.power_off(1, &g2);
        probe.power_off(1, &g3);
        packed_sweep.power_off(1);
        packed_event.power_off(1);
        compare_all(cycle);  // clamped while off

        const CellId victim = d.rdffs[stim.next_below(d.rdffs.size())];
        sweep.flip_retention(victim);
        event.flip_retention(victim);
        probe.flip_retention(victim);
        packed_sweep.flip_retention(victim, kAllLanes);
        packed_event.flip_retention(victim, kAllLanes);
        for (Simulator* sim : {&sweep, &event, &probe}) {
          sim->power_on(1);
          sim->set_input("retain", false);
          sim->step();
        }
        for (PackedSim* sim : {&packed_sweep, &packed_event}) {
          sim->power_on(1);
          sim->set_input_all("retain", false);
          sim->step();
        }
        compare_all(cycle);
      }
    }
    // The event engines really ran the worklist (not silent sweeps).
    const ScheduleTelemetry scalar_t = event.take_schedule_telemetry();
    EXPECT_GT(scalar_t.event_sweeps, 0u);
    EXPECT_LT(scalar_t.avg_dirty_fraction(), 1.0);
    const ScheduleTelemetry sweep_t = sweep.take_schedule_telemetry();
    EXPECT_EQ(sweep_t.event_sweeps, 0u);
    EXPECT_DOUBLE_EQ(sweep_t.avg_dirty_fraction(), 1.0);
  }
}

/// The vendored ISCAS-style benches, scalar and packed: sparse stimulus
/// (event-friendly), then dense every-input-flips stimulus that pushes the
/// worklist over its budget on the larger circuits — values must agree with
/// the sweep engine in both regimes.
TEST(EventSchedule, IscasBenchesMatchSweep) {
  const std::string dir = std::string(RETSCAN_CIRCUITS_DIR) + "/";
  for (const char* file : {"c17.v", "s27.v", "mul880.v"}) {
    SCOPED_TRACE(file);
    const Netlist nl = Netlist::from_verilog(dir + file);
    Simulator sweep(nl);
    Simulator event(nl);
    sweep.set_schedule(Schedule::Sweep);
    event.set_schedule(Schedule::Event);
    PackedSim packed_sweep(nl);
    PackedSim packed_event(nl);
    packed_sweep.set_schedule(Schedule::Sweep);
    packed_event.set_schedule(Schedule::Event);

    Rng rng(31);
    for (int cycle = 0; cycle < 40; ++cycle) {
      // First half: low activity (~1 input toggles). Second half: every
      // input redrawn per cycle — on mul880 that floods the worklist.
      const bool dense = cycle >= 20;
      for (const NetId in : nl.inputs()) {
        if (dense || rng.next_bool(0.15)) {
          const bool v = rng.next_bool(0.5);
          sweep.set_input(in, v);
          event.set_input(in, v);
          const LaneWord lanes = rng.next_u64();
          packed_sweep.set_input(in, lanes);
          packed_event.set_input(in, lanes);
        }
      }
      sweep.step();
      event.step();
      packed_sweep.step();
      packed_event.step();
      for (NetId n = 0; n < nl.net_count(); ++n) {
        ASSERT_EQ(sweep.net_value(n), event.net_value(n))
            << "cycle " << cycle << " net " << n;
        ASSERT_EQ(packed_sweep.net_lanes(n), packed_event.net_lanes(n))
            << "packed, cycle " << cycle << " net " << n;
      }
    }
    EXPECT_GT(event.take_schedule_telemetry().settles(), 0u);
  }
}

/// Multi-source dirty-cone replay against an exhaustive oracle: force the
/// same values into a copy of the settled batch, run one full block sweep,
/// and OR the observable differences by hand. Also pins the singleton case
/// to the existing fault path.
TEST(DirtyCone, ReplayDirtyMatchesForcedFullSweep) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  const Netlist& nl = design.netlist();
  CombinationalFrame frame(nl);
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto compiled = nl.compiled();

  Rng rng(88);
  std::vector<BitVec> patterns;
  for (int p = 0; p < 100; ++p) {  // partial block: lanes past 100 stay 0
    patterns.push_back(frame.random_pattern(rng));
  }
  const auto batch = frame.load_batch(patterns);

  // Dirty sources are frame sources (PIs and flop outputs) — the slots the
  // event scheduler actually reseeds between settles.
  std::vector<NetId> source_nets = frame.pi_nets();
  for (const CellId flop : frame.flops()) {
    source_nets.push_back(nl.cell(flop).out);
  }

  auto random_block = [&rng]() {
    LaneBlock block;
    for (std::size_t w = 0; w < kLaneWords; ++w) {
      block.w[w] = rng.next_u64();
    }
    return block;
  };

  CombinationalFrame::Workspace workspace;
  for (int round = 0; round < 30; ++round) {
    std::vector<NetId> sources;
    const std::size_t count = 1 + rng.next_below(4);
    for (std::size_t s = 0; s < count; ++s) {
      const NetId net = source_nets[rng.next_below(source_nets.size())];
      if (std::find(sources.begin(), sources.end(), net) == sources.end()) {
        sources.push_back(net);
      }
    }
    const CombinationalFrame::FaultCone fc = frame.dirty_cone(sources);
    ASSERT_EQ(fc.cone.source_slots.size(), sources.size());

    std::vector<LaneBlock> forced;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      forced.push_back(random_block());
    }
    const LaneBlock got =
        frame.replay_dirty(fc, forced, batch, batch.good, workspace);

    // Oracle: full copy, force, one whole-stream sweep, manual observable OR.
    std::vector<LaneBlock> values = batch.settled;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      values[fc.cone.source_slots[s]] = forced[s];
    }
    compiled->eval_full(values.data());
    LaneBlock want{};
    for (const auto& [word, slot] : fc.observables) {
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        want.w[w] |= values[slot].w[w] ^ batch.good[word].w[w];
      }
    }
    const LaneBlock live = block_lane_mask(batch.count);
    for (std::size_t w = 0; w < kLaneWords; ++w) {
      ASSERT_EQ(got.w[w], want.w[w] & live.w[w]) << "round " << round
                                                 << " word " << w;
    }
  }

  // Singleton dirty sets coincide with the stuck-at fault path.
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  for (std::size_t f = 0; f < faults.size(); f += 37) {
    const Fault& fault = faults[f];
    const CombinationalFrame::FaultCone fc = frame.dirty_cone({fault.net});
    const LaneBlock forced_value =
        fault.stuck_at ? block_lane_mask(kLaneBlockBits) : LaneBlock{};
    const LaneBlock via_dirty =
        frame.replay_dirty(fc, {forced_value}, batch, batch.good, workspace);
    const LaneBlock via_fault =
        frame.detect_block(fault, batch, batch.good, workspace);
    for (std::size_t w = 0; w < kLaneWords; ++w) {
      ASSERT_EQ(via_dirty.w[w], via_fault.w[w])
          << "fault " << fault_name(nl, fault) << " word " << w;
    }
  }
}

/// Low-activity retention campaign (the paper's sleep/wake workload, mostly
/// idle): Sweep and Event must report identical statistics on both the
/// scalar and packed testbench paths, and the event run must actually have
/// event-scheduled its settles.
TEST(EventSchedule, RetentionCampaignStatsInvariant) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 2};
  config.chain_count = 8;
  config.mode = InjectionMode::SingleRandom;
  config.seed = 61;

  config.schedule = Schedule::Sweep;
  StructuralTestbench sweep_scalar(config);
  const ValidationStats scalar_want = sweep_scalar.run(6);
  StructuralTestbench sweep_packed(config);
  const ValidationStats packed_want = sweep_packed.run_packed(128);

  config.schedule = Schedule::Event;
  StructuralTestbench event_scalar(config);
  EXPECT_EQ(event_scalar.run(6), scalar_want);
  StructuralTestbench event_packed(config);
  EXPECT_EQ(event_packed.run_packed(128), packed_want);

  const ScheduleTelemetry telemetry = event_packed.take_telemetry();
  EXPECT_GT(telemetry.event_sweeps, 0u);
  EXPECT_LT(telemetry.avg_dirty_fraction(), 1.0);
  const ScheduleTelemetry sweep_telemetry = sweep_packed.take_telemetry();
  EXPECT_EQ(sweep_telemetry.event_sweeps, 0u);
  EXPECT_GT(sweep_telemetry.full_sweeps, 0u);
}

}  // namespace
}  // namespace retscan
