// Compiled-netlist artifact store (sim/artifact_store.hpp): serialization
// round-trips must be bit-identical under both eval_full and eval_event on
// the vendored circuits, every class of corrupt/foreign artifact must be
// rejected by its named field (and recompiled, never trusted), and the
// on-disk store must hit/miss/reject with accurate accounting — including
// when installed process-globally behind Netlist::compiled().

#include "sim/artifact_store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "util/journal.hpp"  // crc32
#include "util/lanes.hpp"
#include "util/rng.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

namespace retscan {
namespace {

const char* const kCircuits[] = {"c17.v", "s27.v", "mul880.v"};

Netlist load_circuit(const std::string& file) {
  return Netlist::from_verilog(std::string(RETSCAN_CIRCUITS_DIR) + "/" + file);
}

std::vector<std::uint32_t> source_slots(const CompiledNetlist& compiled) {
  std::vector<bool> written(compiled.slot_count(), false);
  for (const CompiledInstr& in : compiled.instrs()) {
    written[in.out] = true;
  }
  std::vector<std::uint32_t> sources;
  for (std::uint32_t s = 0; s < compiled.slot_count(); ++s) {
    if (!written[s]) {
      sources.push_back(s);
    }
  }
  return sources;
}

std::string serialize(const CompiledNetlist& compiled, std::uint64_t fp) {
  std::ostringstream out(std::ios::binary);
  write_compiled_artifact(out, compiled, fp);
  return out.str();
}

std::shared_ptr<const CompiledNetlist> deserialize(const std::string& image,
                                                   std::uint64_t fp) {
  std::istringstream in(image, std::ios::binary);
  return read_compiled_artifact(in, fp);
}

/// The named field carried by a rejection, for exact-match assertions.
std::string rejection_field(const std::string& image, std::uint64_t fp) {
  try {
    deserialize(image, fp);
  } catch (const Error& error) {
    const std::string what = error.what();
    const std::size_t open = what.find('(');
    const std::size_t close = what.find(')');
    if (open != std::string::npos && close != std::string::npos) {
      return what.substr(open + 1, close - open - 1);
    }
    return what;
  }
  return "";  // accepted
}

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

TEST(ArtifactFingerprint, IsAPureFunctionOfStructure) {
  for (const char* file : kCircuits) {
    EXPECT_EQ(netlist_structure_fingerprint(load_circuit(file)),
              netlist_structure_fingerprint(load_circuit(file)))
        << file;
  }
  EXPECT_NE(netlist_structure_fingerprint(load_circuit("c17.v")),
            netlist_structure_fingerprint(load_circuit("s27.v")));
  EXPECT_NE(netlist_structure_fingerprint(load_circuit("s27.v")),
            netlist_structure_fingerprint(load_circuit("mul880.v")));
}

/// compile → save → load: the loaded stream must be indistinguishable from
/// the fresh compile — same shape, same slot mapping, and bit-identical
/// eval_full results on random stimuli.
TEST(ArtifactRoundTrip, EvalFullBitIdenticalOnVendoredCircuits) {
  Rng rng(7);
  for (const char* file : kCircuits) {
    const Netlist nl = load_circuit(file);
    const CompiledNetlist compiled(nl);
    const std::uint64_t fp = netlist_structure_fingerprint(nl);
    const auto loaded = deserialize(serialize(compiled, fp), fp);
    ASSERT_NE(loaded, nullptr) << file;

    ASSERT_EQ(loaded->slot_count(), compiled.slot_count()) << file;
    ASSERT_EQ(loaded->instrs().size(), compiled.instrs().size()) << file;
    ASSERT_EQ(loaded->level_count(), compiled.level_count()) << file;
    ASSERT_EQ(loaded->domain_count(), compiled.domain_count()) << file;
    for (std::uint32_t s = 0; s < compiled.slot_count(); ++s) {
      ASSERT_EQ(loaded->net_of_slot(s), compiled.net_of_slot(s)) << file;
    }

    const std::vector<std::uint32_t> sources = source_slots(compiled);
    for (int trial = 0; trial < 4; ++trial) {
      std::vector<LaneWord> original(compiled.slot_count());
      std::vector<LaneWord> roundtrip(compiled.slot_count());
      for (const std::uint32_t s : sources) {
        original[s] = roundtrip[s] = rng.next_u64();
      }
      compiled.eval_full(original.data());
      loaded->eval_full(roundtrip.data());
      for (std::uint32_t s = 0; s < compiled.slot_count(); ++s) {
        ASSERT_EQ(roundtrip[s], original[s])
            << file << " trial " << trial << " slot " << s;
      }
    }
  }
}

/// The loaded reader CSR must drive eval_event exactly like the fresh
/// compile's: event settles on the loaded stream must match full sweeps of
/// the original across randomized dirty sets.
TEST(ArtifactRoundTrip, EvalEventBitIdenticalOnVendoredCircuits) {
  Rng rng(11);
  for (const char* file : kCircuits) {
    const Netlist nl = load_circuit(file);
    const CompiledNetlist compiled(nl);
    const std::uint64_t fp = netlist_structure_fingerprint(nl);
    const auto loaded = deserialize(serialize(compiled, fp), fp);
    ASSERT_NE(loaded, nullptr) << file;

    const std::vector<std::uint32_t> sources = source_slots(compiled);
    ASSERT_FALSE(sources.empty()) << file;
    std::vector<LaneWord> oracle(compiled.slot_count());
    std::vector<LaneWord> event(compiled.slot_count());
    for (const std::uint32_t s : sources) {
      oracle[s] = event[s] = rng.next_u64();
    }
    compiled.eval_full(oracle.data());
    loaded->eval_full(event.data());

    CompiledNetlist::EventWorkspace ws;
    for (int settle = 0; settle < 20; ++settle) {
      std::vector<std::uint32_t> dirty;
      const std::size_t changes = 1 + rng.next_below(sources.size());
      for (std::size_t c = 0; c < changes; ++c) {
        const std::uint32_t s = sources[rng.next_below(sources.size())];
        const LaneWord value = rng.next_u64();
        if (event[s] != value) {
          event[s] = value;
          oracle[s] = value;
          dirty.push_back(s);
        }
      }
      compiled.eval_full(oracle.data());
      const auto result = loaded->eval_event(
          dirty, ws, loaded->instrs().size(), [&](const CompiledInstr& in) {
            const LaneWord value =
                CompiledNetlist::eval_instr(in, event.data());
            if (event[in.out] == value) {
              return false;
            }
            event[in.out] = value;
            return true;
          });
      ASSERT_FALSE(result.fell_back) << file;
      for (std::uint32_t s = 0; s < compiled.slot_count(); ++s) {
        ASSERT_EQ(event[s], oracle[s]) << file << " settle " << settle
                                       << " slot " << s;
      }
    }
  }
}

/// Every corruption class is rejected by its named field: truncation,
/// garbage, bit flips in each header field, a foreign fingerprint, body
/// tampering — including tampering that repairs the CRC but produces an
/// out-of-range opcode.
TEST(ArtifactRejection, NamesTheFailingField) {
  const Netlist nl = load_circuit("s27.v");
  const CompiledNetlist compiled(nl);
  const std::uint64_t fp = netlist_structure_fingerprint(nl);
  const std::string image = serialize(compiled, fp);
  ASSERT_EQ(rejection_field(image, fp), "");  // pristine image loads

  EXPECT_EQ(rejection_field("", fp), "header size");
  EXPECT_EQ(rejection_field(image.substr(0, 20), fp), "header size");
  EXPECT_EQ(rejection_field(image.substr(0, image.size() - 5), fp),
            "body size");
  EXPECT_EQ(rejection_field(image + "x", fp), "body size");

  std::string bad = image;
  bad[0] ^= 0x40;  // magic
  EXPECT_EQ(rejection_field(bad, fp), "magic");

  bad = image;
  bad[4] ^= 0x02;  // format version
  EXPECT_EQ(rejection_field(bad, fp), "format");

  bad = image;
  bad[8] ^= 0x01;  // lane_words fingerprint of the writing build
  EXPECT_EQ(rejection_field(bad, fp), "lane_words");

  bad = image;
  bad[12] ^= 0x01;  // reserved word — only the header CRC notices
  EXPECT_EQ(rejection_field(bad, fp), "header crc");

  // A valid artifact for a *different* netlist structure.
  EXPECT_EQ(rejection_field(image, fp ^ 1), "netlist_fingerprint");

  bad = image;
  bad[bad.size() / 2] ^= 0x10;  // body bit flip
  EXPECT_EQ(rejection_field(bad, fp), "body crc");

  // Adversarial body: flip the first instruction's opcode to garbage and
  // REPAIR the body CRC — structural validation must still reject it.
  constexpr std::size_t kHeaderBytes = 4 * 4 + 6 * 8 + 4;
  const std::size_t slots = compiled.slot_count();
  const std::size_t op_offset = kHeaderBytes + slots * 8 + 22;
  bad = image;
  bad[op_offset] = static_cast<char>(0xEE);
  const std::size_t body_size = bad.size() - kHeaderBytes - 4;
  const std::uint32_t patched_crc = crc32(
      reinterpret_cast<const unsigned char*>(bad.data()) + kHeaderBytes,
      body_size);
  for (int i = 0; i < 4; ++i) {
    bad[bad.size() - 4 + i] = static_cast<char>(patched_crc >> (8 * i));
  }
  EXPECT_EQ(rejection_field(bad, fp), "instr op");
}

TEST(ArtifactStore, MissStoreHitAndRejectRecompile) {
  const std::string dir = fresh_dir("artifact_store_basic");
  CompiledArtifactStore store(dir);
  const Netlist nl = load_circuit("c17.v");
  const std::uint64_t fp = netlist_structure_fingerprint(nl);

  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_EQ(store.stats().misses, 1u);

  const auto compiled = store.load_or_compile(nl);  // miss → compile → store
  ASSERT_NE(compiled, nullptr);
  EXPECT_EQ(store.stats().misses, 2u);
  EXPECT_EQ(store.stats().stored, 1u);
  EXPECT_TRUE(std::filesystem::exists(store.artifact_path(fp)));

  const auto hit = store.load(fp);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(hit->instrs().size(), compiled->instrs().size());

  // Corrupt the file on disk: load must reject (counted) and
  // load_or_compile must fall back to a fresh compile, then overwrite the
  // bad artifact with a good one.
  {
    std::ofstream out(store.artifact_path(fp), std::ios::binary);
    out << "not an artifact";
  }
  EXPECT_EQ(store.load(fp), nullptr);
  EXPECT_EQ(store.stats().rejected, 1u);
  const auto recompiled = store.load_or_compile(nl);
  ASSERT_NE(recompiled, nullptr);
  EXPECT_EQ(recompiled->instrs().size(), compiled->instrs().size());
  EXPECT_EQ(store.stats().rejected, 2u);
  EXPECT_EQ(store.stats().stored, 2u);
  ASSERT_NE(store.load(fp), nullptr);  // healed
}

/// The process-global hook: with a store installed, Netlist::compiled()
/// persists on first compile and warm-starts the next netlist instance —
/// and the warm stream is bit-identical under eval_full.
TEST(ArtifactStore, InstalledStoreBacksNetlistCompiled) {
  const std::string dir = fresh_dir("artifact_store_global");
  install_artifact_store(std::make_shared<CompiledArtifactStore>(dir));

  Netlist cold = load_circuit("s27.v");
  const auto cold_compiled = cold.compiled();
  auto store = installed_artifact_store();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->stats().stored, 1u);
  EXPECT_EQ(store->stats().hits, 0u);

  Netlist warm = load_circuit("s27.v");
  const auto warm_compiled = warm.compiled();
  EXPECT_EQ(store->stats().hits, 1u);

  Rng rng(3);
  const std::vector<std::uint32_t> sources = source_slots(*cold_compiled);
  std::vector<LaneWord> a(cold_compiled->slot_count());
  std::vector<LaneWord> b(warm_compiled->slot_count());
  ASSERT_EQ(a.size(), b.size());
  for (const std::uint32_t s : sources) {
    a[s] = b[s] = rng.next_u64();
  }
  cold_compiled->eval_full(a.data());
  warm_compiled->eval_full(b.data());
  EXPECT_EQ(a, b);

  install_artifact_store(nullptr);  // don't leak into other tests
}

}  // namespace
}  // namespace retscan
