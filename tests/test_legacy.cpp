// Deprecation-shim contract: the pre-v1 entry points re-exported through
// retscan/legacy.hpp must (a) still compile — carrying [[deprecated]]
// attributes, silenced here with the diagnostic pragma rather than
// RETSCAN_SUPPRESS_DEPRECATED so this TU proves the attributes are actually
// present and ignorable — and (b) still produce bit-identical results to
// their Session-routed replacements, per the migration map in legacy.hpp.

#include <gtest/gtest.h>

#include "retscan/legacy.hpp"
#include "retscan/retscan.hpp"

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

using namespace retscan;

namespace {

Session small_session() {
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 8;
  protection.test_width = 4;
  return Session(FifoSpec{32, 2}, protection);
}

}  // namespace

TEST(LegacyShims, DeprecatedDeliveriesStillMatchTheFacade) {
  Session session = small_session();
  AtpgOptions options;
  options.random_patterns = 96;
  options.max_backtracks = 50;
  const AtpgResult atpg = session.run_atpg(options);
  ASSERT_GT(atpg.patterns.size(), 0u);

  // Every deprecated spelling, called once — this is the compile test — and
  // checked against the Session route.
  const ProtectedDesign& design = session.design();
  CombinationalFrame& frame = session.frame();

  RetentionSession retention(design);
  const ScanTestResult a =
      apply_test_mode_scan_test(retention, design, frame, atpg.patterns);
  const ScanTestResult b = apply_test_mode_scan_test_packed(design, frame, atpg.patterns);
  const ScanTestResult c = apply_test_mode_scan_test_packed(design, frame, atpg.patterns,
                                                            session.pool(), 128);

  const ScanTestResult via_facade = session.run_scan_test(atpg.patterns);
  for (const ScanTestResult& legacy : {a, b, c}) {
    EXPECT_EQ(legacy.patterns_applied, via_facade.patterns_applied);
    EXPECT_EQ(legacy.mismatches, via_facade.mismatches);
  }
  EXPECT_TRUE(via_facade.all_passed());
}

TEST(LegacyShims, FullWidthDeliveriesStillWorkOnPlainNetlists) {
  // The two full-width apply_scan_test overloads have no Session equivalent
  // (a ProtectedDesign's si ports are superseded by the monitor muxes);
  // their contract on plain scanned netlists is unchanged.
  Netlist nl = make_counter(12);
  ScanInsertionOptions options;
  options.chain_count = 3;
  const ScanChains chains = insert_scan(nl, options);
  CombinationalFrame frame(nl);
  frame.constrain("se", false);
  frame.constrain("retain", false);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgOptions atpg_options;
  atpg_options.random_patterns = 64;
  atpg_options.run_podem = false;
  const AtpgResult atpg = run_atpg(frame, faults, atpg_options);
  ASSERT_GT(atpg.patterns.size(), 0u);

  Simulator scalar(nl);
  const ScanTestResult d = apply_scan_test(scalar, chains, frame, atpg.patterns);
  PackedSim packed(nl);
  const ScanTestResult e = apply_scan_test(packed, chains, frame, atpg.patterns);
  EXPECT_EQ(d.patterns_applied, atpg.patterns.size());
  EXPECT_EQ(e.patterns_applied, atpg.patterns.size());
  EXPECT_TRUE(d.all_passed());
  EXPECT_TRUE(e.all_passed());
}

TEST(LegacyShims, TestbenchStrategiesStillMatchTheFacade) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 32};
  config.chain_count = 80;
  config.kind = CodeKind::HammingPlusCrc;
  config.seed = 31;

  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 80;
  Session session(FifoSpec{32, 32}, protection);
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.backend = Backend::Reference;
  spec.seed = 31;
  spec.sequences = 2000;
  EXPECT_EQ(session.run(spec).validation, FastTestbench(config).run(2000));
}
