#include "core/synthesizer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "scan/scan_insert.hpp"
#include "util/error.hpp"

namespace retscan {
namespace {

ReliabilitySynthesizer make_synth() {
  return ReliabilitySynthesizer([] { return make_fifo(FifoSpec{32, 2}); },
                                TechLibrary::st120(), 10.0);
}

ProtectionConfig config_for(CodeKind kind, std::size_t chains) {
  ProtectionConfig config;
  config.kind = kind;
  config.chain_count = chains;
  config.test_width = 4;
  return config;
}

TEST(Synthesizer, CharacterizeProducesConsistentRow) {
  const auto synth = make_synth();
  const CostRow row = synth.characterize(config_for(CodeKind::HammingCorrect, 8));
  EXPECT_EQ(row.code_name, "Hamming(7,4)");
  EXPECT_EQ(row.chain_count, 8u);
  EXPECT_EQ(row.chain_length, 10u);
  EXPECT_GT(row.base_area_um2, 0.0);
  EXPECT_GT(row.total_area_um2, row.base_area_um2);
  EXPECT_NEAR(row.overhead_percent,
              100.0 * (row.total_area_um2 - row.base_area_um2) / row.base_area_um2, 1e-9);
  EXPECT_DOUBLE_EQ(row.latency_ns, 100.0);  // l = 10 at 10 ns
  EXPECT_GT(row.enc_power_mw, 0.0);
  EXPECT_GT(row.dec_power_mw, 0.0);
  // E = P * t.
  EXPECT_NEAR(row.enc_energy_nj, row.enc_power_mw * row.latency_ns * 1e-3, 1e-12);
  EXPECT_NEAR(row.capability_percent, 75.0, 1e-9);
}

/// The headline trends of Tables I/II: more chains -> shorter chains ->
/// lower latency and energy, at higher area overhead.
TEST(Synthesizer, SweepReproducesTableTrends) {
  const auto synth = make_synth();
  std::vector<ProtectionConfig> configs;
  for (const std::size_t w : {4u, 8u, 16u}) {
    configs.push_back(config_for(CodeKind::CrcDetect, w));
  }
  const auto rows = synth.sweep(configs);
  ASSERT_EQ(rows.size(), 3u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].latency_ns, rows[i - 1].latency_ns);
    EXPECT_LT(rows[i].dec_energy_nj, rows[i - 1].dec_energy_nj);
    EXPECT_GT(rows[i].overhead_percent, rows[i - 1].overhead_percent);
  }
}

TEST(Synthesizer, HammingCostsMoreThanCrc) {
  const auto synth = make_synth();
  const CostRow crc = synth.characterize(config_for(CodeKind::CrcDetect, 8));
  const CostRow hamming = synth.characterize(config_for(CodeKind::HammingCorrect, 8));
  EXPECT_GT(hamming.overhead_percent, crc.overhead_percent);
  // Latency is identical — set by chain length only (Fig. 9(b) observation).
  EXPECT_DOUBLE_EQ(hamming.latency_ns, crc.latency_ns);
}

TEST(Synthesizer, ParetoFrontFiltersDominatedRows) {
  std::vector<CostRow> rows(3);
  rows[0].overhead_percent = 5.0;
  rows[0].dec_energy_nj = 10.0;
  rows[1].overhead_percent = 6.0;
  rows[1].dec_energy_nj = 12.0;  // dominated by row 0
  rows[2].overhead_percent = 9.0;
  rows[2].dec_energy_nj = 1.0;
  const auto front = ReliabilitySynthesizer::pareto_front(rows);
  ASSERT_EQ(front.size(), 2u);
  EXPECT_EQ(front[0], 0u);
  EXPECT_EQ(front[1], 2u);
}

TEST(Synthesizer, PickRespectsConstraints) {
  std::vector<CostRow> rows(2);
  rows[0].overhead_percent = 5.0;
  rows[0].dec_energy_nj = 10.0;
  rows[0].latency_ns = 2600.0;
  rows[0].capability_percent = 75.0;
  rows[1].overhead_percent = 9.0;
  rows[1].dec_energy_nj = 1.0;
  rows[1].latency_ns = 130.0;
  rows[1].capability_percent = 75.0;
  QualityConstraints constraints;
  constraints.max_area_overhead_percent = 6.0;
  EXPECT_DOUBLE_EQ(ReliabilitySynthesizer::pick(rows, constraints).dec_energy_nj, 10.0);
  constraints.max_area_overhead_percent = 100.0;
  EXPECT_DOUBLE_EQ(ReliabilitySynthesizer::pick(rows, constraints).dec_energy_nj, 1.0);
  constraints.max_latency_ns = 50.0;
  EXPECT_THROW(ReliabilitySynthesizer::pick(rows, constraints), Error);
}

TEST(Synthesizer, PrintTableContainsColumns) {
  std::vector<CostRow> rows(1);
  rows[0].code_name = "CRC-16";
  rows[0].chain_count = 4;
  rows[0].chain_length = 260;
  rows[0].total_area_um2 = 73658;
  std::ostringstream oss;
  print_cost_table(oss, "Table I", rows);
  const std::string out = oss.str();
  EXPECT_NE(out.find("Table I"), std::string::npos);
  EXPECT_NE(out.find("CRC-16"), std::string::npos);
  EXPECT_NE(out.find("ovh %"), std::string::npos);
}

TEST(PaddingFlops, RoundsFlopCountForAwkwardChainCounts) {
  Netlist nl = make_fifo(FifoSpec{32, 32});
  EXPECT_EQ(nl.flops().size(), 1040u);
  append_padding_flops(nl, 24);  // -> 1064 = 56 * 19, Table III's W=56
  EXPECT_EQ(nl.flops().size(), 1064u);
  ScanInsertionOptions options;
  options.chain_count = 56;
  const ScanChains chains = insert_scan(nl, options);
  EXPECT_EQ(chains.length(), 19u);
}

}  // namespace
}  // namespace retscan
