// This file deliberately exercises the pre-v1 delivery entry points
// (they are the backends the Session facade routes onto), so the
// deprecation attributes are suppressed here.
#define RETSCAN_SUPPRESS_DEPRECATED

#include "atpg/atpg.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <limits>

#include "atpg/scan_test.hpp"
#include "scan/scan_insert.hpp"
#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "scan/scan_io.hpp"
#include "util/error.hpp"

namespace retscan {
namespace {

TEST(Fault, EnumerationSkipsDanglingNets) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.n_not(a);
  nl.add_output("y", y);
  nl.add_input("unused");  // no readers -> no faults
  const auto faults = enumerate_faults(nl);
  // Nets with faults: a (read by Not), y (read by Output). SA0+SA1 each.
  EXPECT_EQ(faults.size(), 4u);
}

TEST(Fault, NamesAreReadable) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output("y", nl.n_buf(a));
  const auto faults = enumerate_faults(nl);
  EXPECT_EQ(fault_name(nl, faults[0]), "a/SA0");
  EXPECT_EQ(fault_name(nl, faults[1]), "a/SA1");
}

TEST(Fault, CollapseThroughBufAndNot) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.n_buf(a);
  const NetId c = nl.n_not(b);
  nl.add_output("y", c);
  const auto faults = enumerate_faults(nl);   // a, b, c -> 6 faults
  const auto collapsed = collapse_faults(nl, faults);
  // b/SAv collapses onto a/SAv; c/SAv collapses onto a/SA(!v):
  // only a/SA0 and a/SA1 remain.
  EXPECT_EQ(faults.size(), 6u);
  ASSERT_EQ(collapsed.size(), 2u);
  EXPECT_EQ(collapsed[0].net, a);
  EXPECT_EQ(collapsed[1].net, a);
  EXPECT_NE(collapsed[0].stuck_at, collapsed[1].stuck_at);
}

TEST(CombinationalFrame, GoodResponseMatchesSimulatorSemantics) {
  Netlist nl = make_registered_adder(4);
  const CombinationalFrame frame(nl);
  EXPECT_EQ(frame.pi_nets().size(), 9u);   // a0..3, b0..3, cin
  EXPECT_EQ(frame.flops().size(), 14u);    // 4+4+1 input regs, 4+1 output regs
  Rng rng(1);
  // Cross-check one pattern against the cycle simulator.
  const BitVec pattern = frame.random_pattern(rng);
  const BitVec response = frame.good_response(pattern);
  Simulator sim(nl);
  for (std::size_t i = 0; i < frame.pi_nets().size(); ++i) {
    sim.set_input(frame.pi_nets()[i], pattern.get(i));
  }
  for (std::size_t i = 0; i < frame.flops().size(); ++i) {
    sim.set_flop_state(frame.flops()[i], pattern.get(frame.pi_nets().size() + i));
  }
  sim.eval();
  for (std::size_t i = 0; i < frame.po_nets().size(); ++i) {
    EXPECT_EQ(sim.net_value(frame.po_nets()[i]), response.get(i));
  }
  sim.step();
  for (std::size_t i = 0; i < frame.flops().size(); ++i) {
    EXPECT_EQ(sim.flop_state(frame.flops()[i]),
              response.get(frame.po_nets().size() + i));
  }
}

TEST(FaultSim, SingleFaultDetection) {
  // y = a AND b; a/SA0 detected by pattern a=1,b=1 only.
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  nl.add_output("y", nl.n_and(a, b));
  const CombinationalFrame frame(nl);
  std::vector<BitVec> patterns;
  for (int p = 0; p < 4; ++p) {
    BitVec pat(2);
    pat.set(0, p & 1);
    pat.set(1, (p >> 1) & 1);
    patterns.push_back(pat);
  }
  std::vector<BitVec> good;
  for (const auto& p : patterns) {
    good.push_back(frame.good_response(p));
  }
  const std::uint64_t mask = frame.detect_mask(Fault{a, false}, patterns, good);
  EXPECT_EQ(mask, 0b1000u);  // only pattern 3 (a=1, b=1)
  const std::uint64_t mask_sa1 = frame.detect_mask(Fault{a, true}, patterns, good);
  EXPECT_EQ(mask_sa1, 0b0100u);  // only pattern 2 (a=0, b=1)
}

TEST(FaultSim, ConeSimulationMatchesFullSimulationCoverage) {
  // The cone-incremental fault simulator must report exactly the coverage
  // of the retained full-circuit reference path — same detected set, same
  // first-detecting pattern per fault.
  Netlist nl = make_counter(10);
  ScanInsertionOptions options;
  options.chain_count = 2;
  insert_scan(nl, options);
  CombinationalFrame frame(nl);
  frame.constrain("se", false);
  frame.constrain("retain", false);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Rng rng(12);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 100; ++i) {  // two batches, second partial
    patterns.push_back(frame.random_pattern(rng));
  }
  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> reference(faults.size(), npos);
  std::size_t reference_detected = 0;
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const auto good = frame.good_response_words(batch);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (reference[fi] != npos) {
        continue;
      }
      const std::uint64_t mask = frame.detect_mask_full(faults[fi], batch, good);
      if (mask != 0) {
        reference[fi] = base + static_cast<std::size_t>(std::countr_zero(mask));
        ++reference_detected;
      }
    }
  }
  const FaultSimResult result = fault_simulate(frame, faults, patterns);
  EXPECT_EQ(result.detected_by, reference);
  EXPECT_EQ(result.detected, reference_detected);
  EXPECT_GT(result.detected, 0u);
}

TEST(FaultSim, ExhaustivePatternsDetectAllAdderFaults) {
  Netlist nl = make_registered_adder(2);
  const CombinationalFrame frame(nl);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Rng rng(2);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 256; ++i) {
    patterns.push_back(frame.random_pattern(rng));
  }
  const FaultSimResult result = fault_simulate(frame, faults, patterns);
  // The adder frame is fully testable; 256 random patterns over a handful
  // of inputs saturate it.
  EXPECT_EQ(result.detected, result.total_faults);
}

TEST(Podem, GeneratesTestsCrossCheckedByFaultSim) {
  Netlist nl = make_registered_adder(4);
  const CombinationalFrame frame(nl);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Podem podem(frame);
  Rng rng(3);
  std::size_t generated = 0;
  for (const Fault& fault : faults) {
    const PodemResult result = podem.generate(fault, rng);
    ASSERT_FALSE(result.aborted) << fault_name(nl, fault);
    if (result.success) {
      ++generated;
      // The generated pattern must actually detect the fault.
      const std::vector<BitVec> batch{result.pattern};
      const std::vector<BitVec> good{frame.good_response(result.pattern)};
      EXPECT_NE(frame.detect_mask(fault, batch, good), 0u)
          << fault_name(nl, fault);
    }
  }
  EXPECT_EQ(generated, faults.size());  // adder has no redundant faults
}

TEST(Podem, ProvesRedundantFaultUntestable) {
  // y = b OR (a AND NOT a): the AND output is constant 0, so its SA0 is
  // untestable (classic redundancy).
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId and_out = nl.n_and(a, nl.n_not(a));
  nl.add_output("y", nl.n_or(b, and_out));
  const CombinationalFrame frame(nl);
  Podem podem(frame);
  Rng rng(4);
  const PodemResult sa0 = podem.generate(Fault{and_out, false}, rng);
  EXPECT_FALSE(sa0.success);
  EXPECT_TRUE(sa0.untestable);
  // SA1 on the same net is testable (set b=0, observe 1 instead of 0).
  const PodemResult sa1 = podem.generate(Fault{and_out, true}, rng);
  EXPECT_TRUE(sa1.success);
}

TEST(Atpg, FullFlowReachesFullCoverageOnAdder) {
  Netlist nl = make_registered_adder(4);
  const CombinationalFrame frame(nl);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgOptions options;
  options.random_patterns = 64;
  const AtpgResult result = run_atpg(frame, faults, options);
  EXPECT_EQ(result.detected() + result.untestable, result.total_faults);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
  EXPECT_GT(result.patterns.size(), 0u);
  EXPECT_LT(result.patterns.size(), 80u);  // compaction keeps only useful ones
}

TEST(Atpg, RandomResistantFaultsNeedPodem) {
  // A wide AND tree's output SA0 needs the all-ones input — random-pattern
  // resistant at 16 inputs (p = 2^-16 per pattern).
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 16; ++i) {
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  }
  nl.add_output("y", nl.n_and_tree(ins));
  const CombinationalFrame frame(nl);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgOptions options;
  options.random_patterns = 128;
  options.seed = 5;
  const AtpgResult result = run_atpg(frame, faults, options);
  EXPECT_DOUBLE_EQ(result.coverage(), 1.0);
  EXPECT_GT(result.detected_podem, 0u);
}

/// Manufacturing test through real scan chains: ATPG patterns applied
/// serially to the simulated scanned design must all pass.
TEST(ScanTest, PatternsPassThroughPlainChains) {
  Netlist nl = make_counter(12);
  ScanInsertionOptions options;
  options.chain_count = 3;
  const ScanChains chains = insert_scan(nl, options);
  CombinationalFrame frame(nl);
  frame.constrain("se", false);
  frame.constrain("retain", false);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  AtpgOptions atpg_options;
  atpg_options.random_patterns = 128;
  const AtpgResult atpg = run_atpg(frame, faults, atpg_options);
  EXPECT_GT(atpg.coverage(), 0.95);

  Simulator sim(nl);
  const ScanTestResult applied = apply_scan_test(sim, chains, frame, atpg.patterns);
  EXPECT_EQ(applied.patterns_applied, atpg.patterns.size());
  EXPECT_TRUE(applied.all_passed());
}

/// Section III end-to-end: the same ATPG pattern set passes when delivered
/// through the Fig. 5(b) test-mode concatenation of a protected design —
/// the monitoring architecture does not disturb manufacturing test.
TEST(ScanTest, PatternsPassThroughTestModeConcatenation) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);

  CombinationalFrame frame(design.netlist());
  for (const char* name :
       {"se", "retain", "mon_en", "mon_decode", "mon_clear", "sig_capture",
        "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(design.netlist(), enumerate_faults(design.netlist()));
  AtpgOptions atpg_options;
  atpg_options.random_patterns = 128;
  atpg_options.run_podem = false;  // random phase is enough for delivery check
  const AtpgResult atpg = run_atpg(frame, faults, atpg_options);
  EXPECT_GT(atpg.patterns.size(), 0u);

  RetentionSession session(design);
  const ScanTestResult via_test_ports =
      apply_test_mode_scan_test(session, design, frame, atpg.patterns);
  EXPECT_EQ(via_test_ports.patterns_applied, atpg.patterns.size());
  EXPECT_TRUE(via_test_ports.all_passed());

  // Oracle: delivering the same patterns by writing flop states directly
  // gives the same verdict — the concatenation plumbing is transparent.
  // (Per-chain si ports do not exist on a protected design: Fig. 2 rewires
  // them into the mode muxes, so tsi/tso is the only external scan access.)
  RetentionSession session2(design);
  Simulator& sim2 = session2.sim();
  std::size_t direct_mismatches = 0;
  for (const BitVec& pattern : atpg.patterns) {
    const BitVec good = frame.good_response(pattern);
    for (std::size_t i = 0; i < frame.pi_nets().size(); ++i) {
      sim2.set_input(frame.pi_nets()[i], pattern.get(i));
    }
    for (std::size_t i = 0; i < frame.flops().size(); ++i) {
      sim2.set_flop_state(frame.flops()[i], pattern.get(frame.pi_nets().size() + i));
    }
    sim2.eval();
    bool ok = true;
    for (std::size_t i = 0; i < frame.po_nets().size(); ++i) {
      ok = ok && sim2.net_value(frame.po_nets()[i]) == good.get(i);
    }
    sim2.step();
    for (std::size_t i = 0; i < frame.flops().size(); ++i) {
      ok = ok &&
           sim2.flop_state(frame.flops()[i]) == good.get(frame.po_nets().size() + i);
    }
    if (!ok) {
      ++direct_mismatches;
    }
  }
  EXPECT_EQ(direct_mismatches, 0u);
}

}  // namespace
}  // namespace retscan
