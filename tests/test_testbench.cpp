#include "testbench/harness.hpp"

#include <gtest/gtest.h>

namespace retscan {
namespace {

/// Small configuration usable by both tiers: 80-flop FIFO, 8 chains of 10.
ValidationConfig small_config(InjectionMode mode) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 2};
  config.chain_count = 8;
  config.mode = mode;
  config.seed = 99;
  return config;
}

TEST(FastTestbench, NoInjectionMeansNoEvents) {
  FastTestbench tb(small_config(InjectionMode::None));
  const ValidationStats stats = tb.run(500);
  EXPECT_EQ(stats.sequences, 500u);
  EXPECT_EQ(stats.errors_injected, 0u);
  EXPECT_EQ(stats.detected, 0u);
  EXPECT_EQ(stats.comparator_mismatches, 0u);
  EXPECT_EQ(stats.silent_corruptions, 0u);
}

/// Experiment 1 (Section IV): every single injected error is detected and
/// corrected; the comparator never sees a difference after correction.
TEST(FastTestbench, AllSingleErrorsCorrected) {
  FastTestbench tb(small_config(InjectionMode::SingleRandom));
  const ValidationStats stats = tb.run(5000);
  EXPECT_EQ(stats.sequences_with_errors, 5000u);
  EXPECT_EQ(stats.detected, 5000u);
  EXPECT_EQ(stats.corrected, 5000u);
  EXPECT_EQ(stats.silent_corruptions, 0u);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(stats.correction_rate(), 1.0);
}

/// Experiment 2: clustered bursts are always detected but essentially never
/// fully corrected by the Hamming arm.
TEST(FastTestbench, BurstsDetectedNotCorrected) {
  ValidationConfig config = small_config(InjectionMode::MultipleBurst);
  config.burst_size = 4;
  config.burst_spread = 1;
  FastTestbench tb(config);
  const ValidationStats stats = tb.run(2000);
  EXPECT_EQ(stats.sequences_with_errors, 2000u);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_EQ(stats.silent_corruptions, 0u);
  // Tight bursts overwhelm SEC words; correction rate collapses.
  EXPECT_LT(stats.correction_rate(), 0.5);
  EXPECT_GT(stats.flagged_uncorrectable, 0u);
}

TEST(FastTestbench, PaperScaleGeometryRuns) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 32};  // the real 1040-flop case study
  config.chain_count = 80;
  config.mode = InjectionMode::SingleRandom;
  config.seed = 7;
  FastTestbench tb(config);
  EXPECT_EQ(tb.chain_length(), 13u);
  const ValidationStats stats = tb.run(2000);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_DOUBLE_EQ(stats.correction_rate(), 1.0);
  EXPECT_EQ(stats.silent_corruptions, 0u);
}

TEST(FastTestbench, RushModelProducesPlausibleCampaign) {
  ValidationConfig config = small_config(InjectionMode::RushModel);
  config.rush.resistance_ohm = 0.05;  // ringing wake-up
  config.corruption.vulnerability = 0.02;
  FastTestbench tb(config);
  const ValidationStats stats = tb.run(2000);
  EXPECT_GT(stats.errors_injected, 0u);
  EXPECT_EQ(stats.silent_corruptions, 0u);  // monitoring never misses
  // Some sequences have single upsets (corrected), some have bursts.
  EXPECT_GT(stats.corrected, 0u);
}

TEST(FastTestbench, CrcOnlyDetectsEverythingCorrectsNothing) {
  ValidationConfig config = small_config(InjectionMode::SingleRandom);
  config.kind = CodeKind::CrcDetect;
  FastTestbench tb(config);
  const ValidationStats stats = tb.run(2000);
  EXPECT_DOUBLE_EQ(stats.detection_rate(), 1.0);
  EXPECT_EQ(stats.corrected, 0u);
  EXPECT_EQ(stats.comparator_mismatches, 2000u);  // nothing was repaired
  EXPECT_EQ(stats.silent_corruptions, 0u);        // but everything was flagged
}

/// The structural testbench (gate-level FIFO_A + behavioral FIFO_B) agrees
/// with the fast tier on the headline result.
TEST(StructuralTestbench, SingleErrorsAllCorrectedAtGateLevel) {
  StructuralTestbench tb(small_config(InjectionMode::SingleRandom));
  const ValidationStats stats = tb.run(25);
  EXPECT_EQ(stats.sequences_with_errors, 25u);
  EXPECT_EQ(stats.detected, 25u);
  EXPECT_EQ(stats.corrected, 25u);
  EXPECT_EQ(stats.comparator_mismatches, 0u);
  EXPECT_EQ(stats.silent_corruptions, 0u);
}

TEST(StructuralTestbench, BurstsFlaggedAtGateLevel) {
  ValidationConfig config = small_config(InjectionMode::MultipleBurst);
  config.burst_size = 4;
  config.burst_spread = 1;
  StructuralTestbench tb(config);
  const ValidationStats stats = tb.run(15);
  EXPECT_EQ(stats.detected, 15u);
  EXPECT_EQ(stats.silent_corruptions, 0u);
  EXPECT_LT(stats.correction_rate(), 0.75);
}

TEST(StructuralTestbench, CleanCyclesNeverMismatch) {
  StructuralTestbench tb(small_config(InjectionMode::None));
  const ValidationStats stats = tb.run(10);
  EXPECT_EQ(stats.comparator_mismatches, 0u);
  EXPECT_EQ(stats.detected, 0u);
}

}  // namespace
}  // namespace retscan
