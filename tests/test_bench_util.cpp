// bench_util.hpp is header-only plumbing shared by every bench binary; the
// RETSCAN_SEQUENCES override must parse strictly — garbage silently running
// a bench at the wrong scale is how perf gates rot.

#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_util.hpp"

namespace {

class SequenceBudgetTest : public ::testing::Test {
 protected:
  // runtime_config() caches the parsed environment, so every mutation here
  // must be followed by a refresh before sequence_budget consults it.
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }

  void clear() {
    unsetenv("RETSCAN_SEQUENCES");
    retscan::runtime_config_refresh();
  }

  std::size_t budget(const char* env) {
    setenv("RETSCAN_SEQUENCES", env, 1);
    retscan::runtime_config_refresh();
    return retscan::bench::sequence_budget(12345);
  }
};

TEST_F(SequenceBudgetTest, DefaultWhenUnset) {
  EXPECT_EQ(retscan::bench::sequence_budget(12345), 12345u);
}

TEST_F(SequenceBudgetTest, ParsesPositiveInteger) {
  EXPECT_EQ(budget("50000"), 50000u);
  EXPECT_EQ(budget("1"), 1u);
  EXPECT_EQ(budget("100000000"), 100000000u);  // paper scale
}

TEST_F(SequenceBudgetTest, FallsBackOnZeroAndNegative) {
  EXPECT_EQ(budget("0"), 12345u);
  EXPECT_EQ(budget("-20000"), 12345u);
}

TEST_F(SequenceBudgetTest, FallsBackOnGarbage) {
  EXPECT_EQ(budget("lots"), 12345u);
  EXPECT_EQ(budget(""), 12345u);
  EXPECT_EQ(budget("  "), 12345u);
}

TEST_F(SequenceBudgetTest, FallsBackOnTrailingJunk) {
  EXPECT_EQ(budget("100x"), 12345u);
  EXPECT_EQ(budget("1e6"), 12345u);  // no float spellings
  EXPECT_EQ(budget("20 000"), 12345u);
}

TEST_F(SequenceBudgetTest, FallsBackOnOverflow) {
  EXPECT_EQ(budget("99999999999999999999999999"), 12345u);
}

}  // namespace
