// Gate-level power-gating controller (Fig. 3(b) as hardware): the whole
// encode/sleep/wake/decode/correct sequence runs autonomously in generated
// logic, driven only by the `sleep` request.

#include <gtest/gtest.h>

#include "circuits/fifo.hpp"
#include "core/protected_design.hpp"
#include "netlist/lint.hpp"
#include "scan/scan_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

ProtectedDesign make_hw_design(CodeKind kind, bool secded = false) {
  ProtectionConfig config;
  config.kind = kind;
  config.secded = secded;
  config.chain_count = 8;
  config.test_width = 4;
  config.hardware_controller = true;
  config.settle_cycles = 4;
  return ProtectedDesign(make_fifo(FifoSpec{32, 2}), config);
}

std::vector<BitVec> random_state(HardwareRetentionSession& session,
                                 const ProtectedDesign& design, Rng& rng) {
  std::vector<BitVec> state;
  for (std::size_t c = 0; c < design.chains().chain_count(); ++c) {
    state.push_back(rng.next_bits(design.chain_length()));
  }
  scan_restore(session.sim(), design.chains(), state);
  return state;
}

TEST(HardwareController, NetlistIsStructurallySound) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  const auto issues = lint_netlist(design.netlist());
  EXPECT_EQ(lint_count(issues, LintKind::UndrivenNet), 0u);
  EXPECT_EQ(lint_count(issues, LintKind::CombinationalLoop), 0u);
  // Floating ports: 8 si + the se/retain ports the controller took over.
  EXPECT_EQ(lint_count(issues, LintKind::FloatingInput), 10u);
}

TEST(HardwareController, StartsActiveAndIdles) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  HardwareRetentionSession session(design);
  EXPECT_TRUE(session.active());
  EXPECT_FALSE(session.error());
  EXPECT_FALSE(session.asleep());
  session.step(20);
  EXPECT_TRUE(session.active());  // nothing happens without a sleep request
}

TEST(HardwareController, CleanSleepWakePreservesState) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  HardwareRetentionSession session(design);
  Rng rng(1);
  const auto state = random_state(session, design, rng);
  const auto outcome = session.run_sleep_wake({});
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.error);
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), state);
  // Sequence length: clear + encode(10) + capture + save + sleep(>=1) +
  // wake settle(4) + restore + clear + decode(10) + compare + check ~ 32.
  EXPECT_GE(outcome.cycles, 28u);
  EXPECT_LE(outcome.cycles, 40u);
}

TEST(HardwareController, SingleUpsetCorrectedAutonomously) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  HardwareRetentionSession session(design);
  Rng rng(2);
  const auto state = random_state(session, design, rng);
  const auto outcome = session.run_sleep_wake({ErrorLocation{3, 7}});
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.error);
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), state);
  // The correction recheck adds a second decode pass: noticeably longer.
  EXPECT_GE(outcome.cycles, 38u);
}

TEST(HardwareController, EverySingleUpsetLocationCorrected) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingCorrect);
  HardwareRetentionSession session(design);
  Rng rng(3);
  const auto state = random_state(session, design, rng);
  for (std::size_t chain = 0; chain < 8; ++chain) {
    for (std::size_t pos = 0; pos < 10; pos += 3) {
      const auto outcome = session.run_sleep_wake({ErrorLocation{chain, pos}});
      ASSERT_TRUE(outcome.completed) << chain << "," << pos;
      ASSERT_FALSE(outcome.error) << chain << "," << pos;
      ASSERT_EQ(scan_snapshot(session.sim(), design.chains()), state)
          << chain << "," << pos;
    }
  }
}

TEST(HardwareController, SameWordBurstLandsInErrorState) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  HardwareRetentionSession session(design);
  Rng rng(4);
  random_state(session, design, rng);
  const auto outcome =
      session.run_sleep_wake({ErrorLocation{0, 4}, ErrorLocation{2, 4}});
  EXPECT_FALSE(outcome.completed);
  EXPECT_TRUE(outcome.error);
}

TEST(HardwareController, CrcOnlyFlagsWithoutCorrecting) {
  const ProtectedDesign design = make_hw_design(CodeKind::CrcDetect);
  HardwareRetentionSession session(design);
  Rng rng(5);
  random_state(session, design, rng);
  const auto outcome = session.run_sleep_wake({ErrorLocation{1, 1}});
  EXPECT_FALSE(outcome.completed);
  EXPECT_TRUE(outcome.error);
}

TEST(HardwareController, SecDedControllerRefusesDoubleMiscorrection) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingCorrect, true);
  HardwareRetentionSession session(design);
  Rng rng(6);
  const auto state = random_state(session, design, rng);
  const auto outcome =
      session.run_sleep_wake({ErrorLocation{0, 4}, ErrorLocation{2, 4}});
  EXPECT_TRUE(outcome.error);
  // Exactly the two injected flips remain — no miscorrection.
  auto expected = state;
  expected[0].flip(4);
  expected[2].flip(4);
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), expected);
}

TEST(HardwareController, StaysAsleepWhileRequested) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  HardwareRetentionSession session(design);
  Rng rng(7);
  random_state(session, design, rng);
  session.set_sleep(true);
  session.step(40);
  EXPECT_TRUE(session.asleep());
  session.step(50);
  EXPECT_TRUE(session.asleep());  // holds as long as sleep is asserted
  session.set_sleep(false);
  session.step(40);
  EXPECT_TRUE(session.active());
}

TEST(HardwareController, BackToBackEpisodes) {
  const ProtectedDesign design = make_hw_design(CodeKind::HammingPlusCrc);
  HardwareRetentionSession session(design);
  Rng rng(8);
  const auto state = random_state(session, design, rng);
  for (int episode = 0; episode < 5; ++episode) {
    const auto outcome =
        session.run_sleep_wake({ErrorLocation{static_cast<std::size_t>(episode), 3}});
    ASSERT_TRUE(outcome.completed) << episode;
    ASSERT_EQ(scan_snapshot(session.sim(), design.chains()), state) << episode;
  }
}

TEST(HardwareController, SessionTypeGuards) {
  const ProtectedDesign hw = make_hw_design(CodeKind::HammingPlusCrc);
  EXPECT_THROW(RetentionSession{hw}, Error);

  ProtectionConfig sw_config;
  sw_config.kind = CodeKind::HammingPlusCrc;
  sw_config.chain_count = 8;
  sw_config.test_width = 4;
  const ProtectedDesign sw(make_fifo(FifoSpec{32, 2}), sw_config);
  EXPECT_THROW(HardwareRetentionSession{sw}, Error);
}

}  // namespace
}  // namespace retscan
