// This file deliberately exercises the pre-v1 delivery entry points
// (they are the backends the Session facade routes onto), so the
// deprecation attributes are suppressed here.
#define RETSCAN_SUPPRESS_DEPRECATED

// The retscan::parallel orchestration layer: work-stealing ThreadPool
// semantics (completion, exception propagation, clean shutdown),
// deterministic shard planning/seeding, and — the load-bearing contract —
// thread-count invariance: the same campaign seed must produce
// bit-identical statistics at 1, 2 and 8 threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/scan_test.hpp"
#include "circuits/fifo.hpp"
#include "core/protected_design.hpp"
#include "parallel/campaign_runner.hpp"
#include "testbench/harness.hpp"
#include "util/cancel.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace retscan;

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SubmitDeliversResultsAndExceptions) {
  ThreadPool pool(2);
  auto value = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(value.get(), 42);
  auto boom = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndPoolSurvives) {
  ThreadPool pool(4);
  // Every body throws, carrying its own index as the message. The contract:
  // the first failure (by index, not wall clock) is what propagates, and
  // bodies not yet started are abandoned rather than run to completion.
  std::vector<std::atomic<int>> threw(64);
  try {
    pool.parallel_for(64, [&](std::size_t i) {
      threw[i].store(1, std::memory_order_relaxed);
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& error) {
    std::size_t lowest = 64;
    for (std::size_t i = 0; i < 64; ++i) {
      if (threw[i].load(std::memory_order_relaxed) != 0) {
        lowest = i;
        break;
      }
    }
    ASSERT_LT(lowest, 64u);
    EXPECT_EQ(error.what(), std::to_string(lowest));
  }
  // The pool stays usable afterwards; destruction at scope end is the
  // shutdown-under-exceptions check.
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(32, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 32u);

  // The inline (serial-pool) path stops at the first failure — bodies after
  // the throwing index never run.
  ThreadPool solo(1);
  std::size_t solo_ran = 0;
  EXPECT_THROW(solo.parallel_for(16,
                                 [&](std::size_t i) {
                                   ++solo_ran;
                                   if (i == 2) {
                                     throw std::runtime_error("inline shard");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(solo_ran, 3u);
}

TEST(ThreadPool, ParallelForSkipsBodiesOnceTokenIsCancelled) {
  // A pre-cancelled token is the deterministic case: no body may run, on
  // either dispatch path, and the call returns normally (cancellation is a
  // skip, not a failure — the campaign layer decides what partial means).
  CancelToken cancel;
  cancel.request_cancel();

  ThreadPool pooled(4);
  std::atomic<std::size_t> ran{0};
  pooled.parallel_for(64, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  }, &cancel);
  EXPECT_EQ(ran.load(), 0u);

  ThreadPool solo(1);
  std::size_t solo_ran = 0;
  solo.parallel_for(16, [&](std::size_t) { ++solo_ran; }, &cancel);
  EXPECT_EQ(solo_ran, 0u);

  // A fresh token lets everything through.
  CancelToken open;
  solo.parallel_for(16, [&](std::size_t) { ++solo_ran; }, &open);
  EXPECT_EQ(solo_ran, 16u);
}

TEST(ThreadPool, SerialAndNestedCallsRunInline) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no atomics needed: single-thread pools run inline
  pool.parallel_for(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);

  ThreadPool outer(2);
  std::atomic<std::size_t> total{0};
  outer.parallel_for(4, [&](std::size_t) {
    // Nested parallel_for on the same pool must not deadlock a worker.
    outer.parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ShardPlan, CoversTotalExactlyOnceIndependentOfThreads) {
  const auto shards = parallel::plan_shards(1000, 256);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t expected_first = 0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.first, expected_first);
    expected_first += shard.count;
  }
  EXPECT_EQ(expected_first, 1000u);
  EXPECT_EQ(shards.back().count, 232u);

  EXPECT_TRUE(parallel::plan_shards(0, 64).empty());
  EXPECT_EQ(parallel::plan_shards(5, 0).size(), 1u);  // 0 → one shard
}

TEST(ShardSeeds, AreDistinctStreams) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seeds.insert(parallel::shard_seed(2024, i));
  }
  EXPECT_EQ(seeds.size(), 4096u);
  EXPECT_NE(parallel::shard_seed(1, 0), parallel::shard_seed(2, 0));
  EXPECT_NE(Rng::derive_stream(0, 0), 0u);
}

namespace {
ValidationConfig fast_config() {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 32};
  config.chain_count = 80;
  config.mode = InjectionMode::SingleRandom;
  config.seed = 99;
  return config;
}
}  // namespace

TEST(CampaignRunner, FastCampaignIsThreadCountInvariant) {
  constexpr std::size_t kSequences = 2048;
  constexpr std::size_t kShard = 256;
  const ValidationConfig config = fast_config();

  parallel::CampaignReport reports[3];
  const unsigned thread_counts[3] = {1, 2, 8};
  for (int i = 0; i < 3; ++i) {
    parallel::CampaignRunner runner(
        parallel::CampaignOptions{.threads = thread_counts[i]});
    reports[i] = runner.run_fast(config, kSequences, kShard);
    EXPECT_EQ(reports[i].threads, thread_counts[i]);
    EXPECT_EQ(reports[i].shard_count, kSequences / kShard);
  }
  EXPECT_TRUE(reports[0].stats == reports[1].stats);
  EXPECT_TRUE(reports[0].stats == reports[2].stats);
  EXPECT_EQ(reports[0].stats.sequences, kSequences);
  EXPECT_EQ(reports[0].stats.detection_rate(), 1.0);
  EXPECT_EQ(reports[0].stats.correction_rate(), 1.0);
  EXPECT_EQ(reports[0].stats.silent_corruptions, 0u);
}

// Satellite regression for the exception-semantics fix, run under TSan via
// this binary: a shard that throws (injected through the failpoint harness,
// exactly how the resilience CI job arms it) must cancel the rest of the
// campaign, propagate, and leave the runner reusable — a clean rerun on the
// same warm runner reproduces an undisturbed runner's statistics.
TEST(CampaignRunner, FailpointThrownShardCancelsCampaignAndRunnerSurvives) {
  const ValidationConfig config = fast_config();
  parallel::CampaignRunner baseline(parallel::CampaignOptions{.threads = 4});
  const ValidationStats expected = baseline.run_fast(config, 1024, 128).stats;

  ::setenv("RETSCAN_FAILPOINTS", "shard.run=throw@2", 1);
  failpoints_refresh();
  parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 4});
  EXPECT_THROW(runner.run_fast(config, 1024, 128), Error);
  ::unsetenv("RETSCAN_FAILPOINTS");
  failpoints_refresh();

  const ValidationStats rerun = runner.run_fast(config, 1024, 128).stats;
  EXPECT_TRUE(rerun == expected);
}

TEST(CampaignRunner, BurstCampaignIsThreadCountInvariant) {
  ValidationConfig config = fast_config();
  config.mode = InjectionMode::MultipleBurst;
  config.burst_size = 4;
  config.burst_spread = 1;

  parallel::CampaignRunner one(parallel::CampaignOptions{.threads = 1});
  parallel::CampaignRunner eight(parallel::CampaignOptions{.threads = 8});
  const ValidationStats a = one.run_fast(config, 1024, 128).stats;
  const ValidationStats b = eight.run_fast(config, 1024, 128).stats;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.detection_rate(), 1.0);
  EXPECT_EQ(a.silent_corruptions, 0u);
}

TEST(CampaignRunner, StructuralPackedIsThreadCountInvariant) {
  ValidationConfig gate;
  gate.fifo = FifoSpec{32, 2};
  gate.chain_count = 8;
  gate.mode = InjectionMode::SingleRandom;
  gate.seed = 5;

  parallel::CampaignRunner one(parallel::CampaignOptions{.threads = 1});
  parallel::CampaignRunner three(parallel::CampaignOptions{.threads = 3});
  const ValidationStats a = one.run_structural_packed(gate, 128, 64).stats;
  const ValidationStats b = three.run_structural_packed(gate, 128, 64).stats;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.sequences, 128u);
  EXPECT_EQ(a.detection_rate(), 1.0);
  EXPECT_EQ(a.correction_rate(), 1.0);
}

namespace {
/// Protected FIFO + constrained combinational frame, as the testers use it.
struct FrameFixture {
  ProtectedDesign design;
  CombinationalFrame frame;

  FrameFixture()
      : design(make_fifo(FifoSpec{32, 2}),
               [] {
                 ProtectionConfig config;
                 config.kind = CodeKind::HammingPlusCrc;
                 config.chain_count = 8;
                 config.test_width = 4;
                 return config;
               }()),
        frame(design.netlist()) {
    for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                             "sig_capture", "sig_compare", "test_mode"}) {
      frame.constrain(name, false);
    }
  }
};
}  // namespace

// Persistent per-thread workspaces: a runner reuses compiled testbenches
// across campaigns instead of rebuilding them per shard. Reuse must be
// invisible — rerunning the same campaign on a warm runner, interleaving
// other shapes in between, and changing only the seed must all reproduce a
// cold runner's statistics bit-for-bit, on both tiers and at any thread
// count.
TEST(CampaignRunner, PersistentWorkspacesAreBitIdenticalAcrossReuse) {
  const ValidationConfig config = fast_config();
  ValidationConfig burst = fast_config();
  burst.mode = InjectionMode::MultipleBurst;
  burst.burst_size = 4;
  burst.burst_spread = 1;
  ValidationConfig reseeded = fast_config();
  reseeded.seed = 1234;

  parallel::CampaignRunner cold(parallel::CampaignOptions{.threads = 2});
  const ValidationStats first = cold.run_fast(config, 1024, 128).stats;
  const ValidationStats burst_cold = cold.run_fast(burst, 1024, 128).stats;
  const ValidationStats reseeded_cold = cold.run_fast(reseeded, 1024, 128).stats;

  // Warm reuse: same runner, same campaign again — workspaces recycled.
  EXPECT_TRUE(cold.run_fast(config, 1024, 128).stats == first);
  // Interleave a different shape, then return to the original: the pool is
  // keyed by campaign shape, so neither run may contaminate the other.
  EXPECT_TRUE(cold.run_fast(burst, 1024, 128).stats == burst_cold);
  EXPECT_TRUE(cold.run_fast(config, 1024, 128).stats == first);
  // Same shape, different seed: reseed of a recycled workspace must equal a
  // fresh construction.
  EXPECT_TRUE(cold.run_fast(reseeded, 1024, 128).stats == reseeded_cold);

  // Warm runners at other thread counts agree with the cold baseline.
  parallel::CampaignRunner wide(parallel::CampaignOptions{.threads = 8});
  (void)wide.run_fast(burst, 1024, 128);  // warm the pool with another shape
  EXPECT_TRUE(wide.run_fast(config, 1024, 128).stats == first);
  EXPECT_TRUE(wide.run_fast(reseeded, 1024, 128).stats == reseeded_cold);

  // Structural tier: same contract through the packed gate-level testbench.
  ValidationConfig gate;
  gate.fifo = FifoSpec{32, 2};
  gate.chain_count = 8;
  gate.mode = InjectionMode::SingleRandom;
  gate.seed = 5;
  ValidationConfig gate_reseeded = gate;
  gate_reseeded.seed = 17;

  parallel::CampaignRunner gate_cold(parallel::CampaignOptions{.threads = 3});
  const ValidationStats gate_first =
      gate_cold.run_structural_packed(gate, 128, 64).stats;
  const ValidationStats gate_other =
      gate_cold.run_structural_packed(gate_reseeded, 128, 64).stats;
  EXPECT_TRUE(gate_cold.run_structural_packed(gate, 128, 64).stats == gate_first);
  EXPECT_TRUE(
      gate_cold.run_structural_packed(gate_reseeded, 128, 64).stats == gate_other);
  parallel::CampaignRunner gate_warm(parallel::CampaignOptions{.threads = 1});
  (void)gate_warm.run_structural_packed(gate_reseeded, 128, 64);
  EXPECT_TRUE(gate_warm.run_structural_packed(gate, 128, 64).stats == gate_first);
}

TEST(FaultSimParallel, ShardMergeMatchesSerialFaultCoverage) {
  FrameFixture fixture;
  const auto all = enumerate_faults(fixture.design.netlist());
  const auto faults = collapse_faults(fixture.design.netlist(), all);

  Rng rng(7);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 100; ++i) {
    patterns.push_back(fixture.frame.random_pattern(rng));
  }

  const FaultSimResult serial = fault_simulate(fixture.frame, faults, patterns);
  ThreadPool pool(4);
  const FaultSimResult pooled =
      fault_simulate(fixture.frame, faults, patterns, pool, 32);

  EXPECT_EQ(pooled.total_faults, serial.total_faults);
  EXPECT_EQ(pooled.detected, serial.detected);
  EXPECT_EQ(pooled.detected_by, serial.detected_by);
  EXPECT_GT(serial.detected, 0u);
}

TEST(ScanTestParallel, PooledDeliveryMatchesSerialPacked) {
  FrameFixture fixture;
  Rng rng(11);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 70; ++i) {  // non-multiple of 64: exercises tail batch
    patterns.push_back(fixture.frame.random_pattern(rng));
  }

  const ScanTestResult serial =
      apply_test_mode_scan_test_packed(fixture.design, fixture.frame, patterns);
  ThreadPool pool(4);
  const ScanTestResult pooled = apply_test_mode_scan_test_packed(
      fixture.design, fixture.frame, patterns, pool, 64);

  EXPECT_EQ(pooled.patterns_applied, serial.patterns_applied);
  EXPECT_EQ(pooled.mismatches, serial.mismatches);
  EXPECT_EQ(pooled.patterns_applied, patterns.size());
  EXPECT_TRUE(pooled.all_passed());
}
