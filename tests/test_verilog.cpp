#include "netlist/verilog_reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "netlist/lint.hpp"
#include "netlist/serialize.hpp"
#include "netlist/techlib.hpp"
#include "retscan/campaign.hpp"
#include "retscan/session.hpp"
#include "util/error.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

namespace retscan {
namespace {

const char* kC17 = R"(
// c17 transcription (see bench/circuits/c17.v)
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
)";

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& error) {
    return error.what();
  }
  return "";
}

TEST(VerilogReader, ParsesC17Structure) {
  const Netlist nl = read_verilog_text(kC17, "c17.v");
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  const auto histogram = nl.type_histogram();
  EXPECT_EQ(histogram.at(CellType::Nand2), 6u);
  EXPECT_TRUE(nl.has_net("N10"));
  EXPECT_EQ(nl.cell(nl.driver(nl.find_net("N22"))).name, "NAND2_5");
  // Imports are structurally clean: c17 lints with zero issues.
  EXPECT_TRUE(lint_netlist(nl).empty());
}

TEST(VerilogReader, C17MatchesTruthTable) {
  const Netlist nl = read_verilog_text(kC17, "c17.v");
  CombinationalFrame frame(nl);
  ASSERT_EQ(frame.pattern_width(), 5u);
  ASSERT_EQ(frame.response_width(), 2u);
  for (unsigned v = 0; v < 32; ++v) {
    BitVec pattern(5);
    pattern.from_uint(0, 5, v);
    // pi_nets order == input declaration order: N1, N2, N3, N6, N7.
    const bool n1 = pattern.get(0), n2 = pattern.get(1), n3 = pattern.get(2);
    const bool n6 = pattern.get(3), n7 = pattern.get(4);
    const bool n10 = !(n1 && n3), n11 = !(n3 && n6);
    const bool n16 = !(n2 && n11), n19 = !(n11 && n7);
    const BitVec response = frame.good_response(pattern);
    EXPECT_EQ(response.get(0), !(n10 && n16)) << "N22 at input " << v;
    EXPECT_EQ(response.get(1), !(n16 && !(n11 && n7))) << "N23 at input " << v;
    (void)n19;
  }
}

TEST(VerilogReader, MultiInputPrimitivesUseReductionSemantics) {
  const Netlist nl = read_verilog_text(R"(
module gates (a, b, c, yand, ynand, yor, ynor, yxor, yxnor);
  input a, b, c;
  output yand, ynand, yor, ynor, yxor, yxnor;
  and  (yand, a, b, c);
  nand (ynand, a, b, c);
  or   (yor, a, b, c);
  nor  (ynor, a, b, c);
  xor  (yxor, a, b, c);
  xnor (yxnor, a, b, c);
endmodule
)");
  CombinationalFrame frame(nl);
  for (unsigned v = 0; v < 8; ++v) {
    BitVec pattern(3);
    pattern.from_uint(0, 3, v);
    const bool a = pattern.get(0), b = pattern.get(1), c = pattern.get(2);
    const BitVec r = frame.good_response(pattern);
    EXPECT_EQ(r.get(0), a && b && c);
    EXPECT_EQ(r.get(1), !(a && b && c));
    EXPECT_EQ(r.get(2), a || b || c);
    EXPECT_EQ(r.get(3), !(a || b || c));
    EXPECT_EQ(r.get(4), a ^ b ^ c);
    EXPECT_EQ(r.get(5), !(a ^ b ^ c));
  }
}

TEST(VerilogReader, TechlibLookupNormalization) {
  // Exact names win before drive-suffix stripping: MUX2 must not be
  // mangled to "MU" by treating its trailing 2 as a drive strength.
  EXPECT_EQ(techlib_cell("MUX2")->type, CellType::Mux2);
  EXPECT_EQ(techlib_cell("mux2")->type, CellType::Mux2);
  EXPECT_EQ(techlib_cell("MUX2X1")->type, CellType::Mux2);
  EXPECT_EQ(techlib_cell("mux2x4")->type, CellType::Mux2);
  EXPECT_EQ(techlib_cell("nand2")->type, CellType::Nand2);
  EXPECT_EQ(techlib_cell("NAND2X8")->type, CellType::Nand2);
  EXPECT_EQ(techlib_cell("inv")->type, CellType::Not);
  EXPECT_EQ(techlib_cell("dff")->type, CellType::Dff);
  EXPECT_EQ(techlib_cell("TIELO")->type, CellType::Const0);
  EXPECT_EQ(techlib_cell("frobnicator"), nullptr);
  EXPECT_EQ(techlib_cell("NAND2X"), nullptr);  // bare X is not a suffix
}

TEST(VerilogReader, TechlibCellsNamedPinsAndConstants) {
  const Netlist nl = read_verilog_text(R"(
module cells (a, b, s, y1, y2, y3, y4);
  input a, b, s;
  output y1, y2, y3, y4;
  wire t;
  NAND2X1 u1 (.A(a), .B(b), .Y(y1));
  invx4   u2 (.a(y1), .y(t));        // case-insensitive names and pins
  mux2    u3 (.S(s), .A(t), .B(a), .Y(y2));   // generic name whose real
                                              // spelling ends in X<digit>
  AND2X1  u4 (.A(a), .B(1'b1), .Y(y3));
  OR2X1   u5 (.A(b), .B(1'b0), .Y(y4));
endmodule
)");
  const auto histogram = nl.type_histogram();
  EXPECT_EQ(histogram.at(CellType::Nand2), 1u);
  EXPECT_EQ(histogram.at(CellType::Not), 1u);
  EXPECT_EQ(histogram.at(CellType::Mux2), 1u);
  EXPECT_EQ(histogram.at(CellType::Const1), 1u);
  EXPECT_EQ(histogram.at(CellType::Const0), 1u);
  CombinationalFrame frame(nl);
  for (unsigned v = 0; v < 8; ++v) {
    BitVec pattern(3);
    pattern.from_uint(0, 3, v);
    const bool a = pattern.get(0), b = pattern.get(1), s = pattern.get(2);
    const BitVec r = frame.good_response(pattern);
    EXPECT_EQ(r.get(0), !(a && b));
    EXPECT_EQ(r.get(1), s ? a : (a && b));  // mux: S ? B : A, A = !y1
    EXPECT_EQ(r.get(2), a);
    EXPECT_EQ(r.get(3), b);
  }
}

TEST(VerilogReader, DffCellsMakeSequentialNetlists) {
  const Netlist nl = read_verilog_text(R"(
module pipe (CK, d, q2);
  input CK, d;
  output q2;
  wire q1, n1;
  DFFX1 r1 (.CK(CK), .D(d), .Q(q1));
  not (n1, q1);
  dff r2 (.D(n1), .Q(q2));           // generic alias, no clock pin
endmodule
)");
  EXPECT_EQ(nl.flops().size(), 2u);
  CombinationalFrame frame(nl);
  // PIs (CK, d) + 2 PPIs; response: q2 PO + 2 PPOs (flop D captures).
  EXPECT_EQ(frame.pattern_width(), 4u);
  EXPECT_EQ(frame.response_width(), 3u);
}

TEST(VerilogReader, DiagnosticsCarryFileAndLine) {
  const auto expect_error = [](const std::string& source, const std::string& needle) {
    const std::string message =
        error_message([&] { read_verilog_text(source, "bad.v"); });
    EXPECT_NE(message.find("bad.v:"), std::string::npos) << message;
    EXPECT_NE(message.find(needle), std::string::npos) << message;
  };

  expect_error("module m (a);\n  input a;\n  assign a = 1'b0;\nendmodule\n",
               "assign cannot drive input port");
  expect_error("module m (a, y);\n  input a;\n  output [1:0] y;\n  assign y = a;\n"
               "endmodule\n", "width mismatch");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  assign y = a & ghost;\n"
               "endmodule\n", "undeclared net 'ghost'");
  expect_error("module m (a, b, y);\n  input a, b;\n  output y;\n  assign y = a + b;\n"
               "endmodule\n", "operator '+' is unsupported");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  wire p, q;\n"
               "  assign p = q & a;\n  assign q = p;\n  assign y = q;\nendmodule\n",
               "combinational cycle");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  assign y = a[2];\n"
               "endmodule\n", "scalar net");
  expect_error("module m (a, y);\n  input [3:0] a;\n  output y;\n  assign y = a[7];\n"
               "endmodule\n", "out of range");
  expect_error("module m (a, y);\n  input [3:0] a;\n  output y;\n"
               "  assign y = a == 2'b01;\nendmodule\n", "width mismatch");
  expect_error("module m (y);\n  output y;\n  assign y = 3;\nendmodule\n",
               "unsized literal");
  expect_error("module m (a, y);\n  input [3:0] a;\n  output [3:0] y;\n"
               "  assign y = a << a;\nendmodule\n", "shift amount must be a constant");
  expect_error("module m (a, y);\n  input [0:3] a;\n  output y;\n  assign y = a[0];\n"
               "endmodule\n", "ascending bit range");
  expect_error("module m (a, b, y);\n  input a, b;\n  output [1:0] y;\n"
               "  assign y = a ? {a, b} : b;\nendmodule\n", "width mismatch");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  frob u1 (y, a);\n"
               "endmodule\n", "unknown gate or cell 'frob'");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  buf (y, missing);\n"
               "endmodule\n", "undeclared net 'missing'");
  expect_error("module m (a, b, y);\n  input a, b;\n  output y;\n  buf (y, a);\n"
               "  buf (y, b);\nendmodule\n", "already driven");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  buf (a, y);\n"
               "endmodule\n", "cannot drive input port");
  expect_error("module m (a, y);\n  input a;\n  output y;\nendmodule\n",
               "never driven");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  wire w;\n"
               "  buf (y, w);\nendmodule\n", "read here but never driven");
  expect_error("module m (a, y);\n  input a;\n  output y;\n"
               "  NAND2X1 u1 (y, a, a);\nendmodule\n", "named pin connections");
  expect_error("module m (a, y);\n  input a;\n  output y;\n"
               "  NAND2X1 u1 (.A(a), .B(a), .Z(y));\nendmodule\n", "has no pin .Z");
  expect_error("module m (a, y);\n  input a;\n  output y;\n"
               "  NAND2X1 u1 (.A(a), .Y(y));\nendmodule\n", "unconnected");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  nand u1 (.A(a));\n"
               "endmodule\n", "positional connections");
  expect_error("module m (y, a);\n  input a;\n  output y;\n  wire x, y1;\n"
               "  and (y1, a, x);\n  and (x, a, y1);\n  buf (y, x);\nendmodule\n",
               "combinational cycle");
  expect_error("module m (input a);\nendmodule\n", "ANSI-style");
  expect_error("module m (a, y);\n  input a;\n  output y;\n  buf (y, a);\n"
               "endmodule\nmodule n ();\nendmodule\n", "multiple modules");
  expect_error("module m (a, y);\n  input a;\n  input a;\n  output y;\n"
               "  buf (y, a);\nendmodule\n", "declared twice");

  // The reported line number points at the offending token.
  const std::string message = error_message(
      [&] { read_verilog_text("module m (a, y);\n  input a;\n  output y;\n"
                              "  buf (y, zz);\nendmodule\n", "bad.v"); });
  EXPECT_NE(message.find("bad.v:4:"), std::string::npos) << message;
}

// --- expression synthesis ---------------------------------------------------

const char* kExprModule = R"(
module exprs (a, b, s, yand, yor, yxor, ynot, ymux, yshl, yshr, yeq, yne,
              ycat, chi, clo, yprec);
  input [3:0] a, b;
  input s;
  output [3:0] yand, yor, yxor, ynot, ymux, yshl, yshr;
  output yeq, yne, yprec;
  output [7:0] ycat;
  output [1:0] chi, clo;
  assign yand = a & b;
  assign yor  = a | b;
  assign yxor = a ^ b;
  assign ynot = ~a;
  assign ymux = s ? a : b;
  assign yeq  = a == b;
  assign yne  = a != 4'b0101;
  assign yshl = a << 1;
  assign yshr = a >> 2;
  assign ycat = {a, b};
  assign {chi, clo} = {a[1:0], b[3:2]};
  assign yprec = a[0] | b[0] & s;
endmodule
)";

TEST(VerilogReader, ExpressionAssignsMatchOracle) {
  const Netlist nl = read_verilog_text(kExprModule, "exprs.v");
  CombinationalFrame frame(nl);
  ASSERT_EQ(frame.pattern_width(), 9u);
  for (unsigned v = 0; v < 512; ++v) {
    BitVec pattern(9);
    pattern.from_uint(0, 9, v);
    // Inputs in declaration order, buses LSB-first: a[0..3], b[0..3], s.
    const unsigned a = v & 0xF;
    const unsigned b = (v >> 4) & 0xF;
    const bool s = ((v >> 8) & 1) != 0;
    const BitVec r = frame.good_response(pattern);
    std::size_t at = 0;
    const auto take = [&](std::size_t width) {
      unsigned value = 0;
      for (std::size_t i = 0; i < width; ++i) {
        value |= static_cast<unsigned>(r.get(at + i)) << i;
      }
      at += width;
      return value;
    };
    EXPECT_EQ(take(4), a & b);
    EXPECT_EQ(take(4), a | b);
    EXPECT_EQ(take(4), a ^ b);
    EXPECT_EQ(take(4), ~a & 0xFu);
    EXPECT_EQ(take(4), s ? a : b);
    EXPECT_EQ(take(4), (a << 1) & 0xFu);
    EXPECT_EQ(take(4), a >> 2);
    EXPECT_EQ(take(1), a == b ? 1u : 0u);
    EXPECT_EQ(take(1), a != 5u ? 1u : 0u);
    EXPECT_EQ(take(1), (a & 1u) | ((b & 1u) & (s ? 1u : 0u)));  // & binds tighter
    EXPECT_EQ(take(8), (a << 4) | b);              // {a, b}: b takes the low bits
    EXPECT_EQ(take(2), a & 3u);                    // chi = a[1:0]
    EXPECT_EQ(take(2), b >> 2);                    // clo = b[3:2]
    EXPECT_EQ(at, r.size());
  }
}

TEST(VerilogReader, BusBitSelectsConnectToInstances) {
  // Bus bits feed techlib cells and primitives directly, including flops.
  const Netlist nl = read_verilog_text(R"(
module mixed (d, q);
  input [1:0] d;
  output q;
  wire [1:0] qi;
  DFFX1 r0 (.D(d[0]), .Q(qi[0]));
  DFFX1 r1 (.D(d[1]), .Q(qi[1]));
  and (q, qi[0], qi[1]);
endmodule
)");
  EXPECT_EQ(nl.flops().size(), 2u);
  EXPECT_TRUE(lint_netlist(nl).empty());
}

TEST(VerilogReader, ExpressionCircuitsRoundTripWithIdenticalDigests) {
  // write_verilog output of a synthesized expression circuit re-parses to a
  // netlist with identical simulation and fault-coverage digests.
  const Netlist first = read_verilog_text(kExprModule, "exprs.v");
  std::ostringstream exported;
  write_verilog(exported, first);
  const Netlist second = read_verilog_text(exported.str(), "exprs_rt.v");
  EXPECT_EQ(first.type_histogram(), second.type_histogram());

  CombinationalFrame frame_a(first);
  CombinationalFrame frame_b(second);
  ASSERT_EQ(frame_a.pattern_width(), frame_b.pattern_width());
  ASSERT_EQ(frame_a.response_width(), frame_b.response_width());

  // Simulation digest: identical responses over a seeded pattern sweep.
  Rng rng(99);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 64; ++i) {
    patterns.push_back(frame_a.random_pattern(rng));
  }
  for (const BitVec& pattern : patterns) {
    EXPECT_EQ(frame_a.good_response(pattern), frame_b.good_response(pattern));
  }

  // Fault-coverage digest: identical detect counts on the same fault list.
  const std::vector<Fault> faults_a = enumerate_faults(first);
  const std::vector<Fault> faults_b = enumerate_faults(second);
  ASSERT_EQ(faults_a.size(), faults_b.size());
  const FaultSimResult cov_a = fault_simulate(frame_a, faults_a, patterns);
  const FaultSimResult cov_b = fault_simulate(frame_b, faults_b, patterns);
  EXPECT_EQ(cov_a.detected, cov_b.detected);
  EXPECT_EQ(cov_a.total_faults, cov_b.total_faults);
  EXPECT_EQ(cov_a.detected_by, cov_b.detected_by);

  // And the export is a fixed point from the first round-trip on.
  std::ostringstream exported_again;
  write_verilog(exported_again, second);
  const Netlist third = read_verilog_text(exported_again.str(), "exprs_rt2.v");
  std::ostringstream exported_third;
  write_verilog(exported_third, third);
  EXPECT_EQ(exported_again.str(), exported_third.str());
}

TEST(VerilogReader, SerializeRoundTripPreservesStructure) {
  const Netlist parsed = read_verilog_text(kC17, "c17.v");
  std::ostringstream first;
  write_netlist(first, parsed);
  std::istringstream in(first.str());
  const Netlist reloaded = read_netlist(in);
  std::ostringstream second;
  write_netlist(second, reloaded);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(parsed.type_histogram(), reloaded.type_histogram());
}

TEST(VerilogReader, VerilogRoundTripIsAFixedPoint) {
  const Netlist first = read_verilog_text(kC17, "c17.v");
  std::ostringstream exported;
  write_verilog(exported, first);
  const Netlist second = read_verilog_text(exported.str(), "c17rt.v");
  std::ostringstream exported_again;
  write_verilog(exported_again, second);
  EXPECT_EQ(exported.str(), exported_again.str());
  EXPECT_EQ(first.type_histogram(), second.type_histogram());

  // Simulation equivalence over every input combination.
  CombinationalFrame frame_a(first);
  CombinationalFrame frame_b(second);
  ASSERT_EQ(frame_a.pattern_width(), frame_b.pattern_width());
  for (unsigned v = 0; v < 32; ++v) {
    BitVec pattern(5);
    pattern.from_uint(0, 5, v);
    EXPECT_EQ(frame_a.good_response(pattern), frame_b.good_response(pattern));
  }
}

TEST(VerilogReader, ExportCoversEveryLibraryCell) {
  // A netlist touching every non-port cell type, including the flop
  // variants a protected design contains, survives export -> reparse.
  Netlist nl("allcells");
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId zero = nl.n_const(false);
  const NetId one = nl.n_const(true);
  const NetId mix = nl.n_mux(a, nl.n_xor(a, b), nl.n_xnor(a, zero));
  const NetId d = nl.n_or(nl.n_and(mix, one), nl.n_nor(a, nl.n_nand(a, b)));
  const NetId q = nl.n_dff(d, "state");
  const CellId sdff = nl.add_cell(CellType::Sdff, {q, a, b});
  const CellId rdff = nl.add_cell(CellType::Rdff, {nl.output_of(sdff), a, b, zero});
  const CellId latch = nl.add_cell(CellType::LatchL, {nl.output_of(rdff), b});
  const NetId y = nl.n_buf(nl.n_not(nl.output_of(latch)));
  // Name the port net so export takes the direct path (a port name that
  // differs from its source net would add a bridge BUFX1 on reparse).
  nl.set_net_name(y, "y");
  nl.add_output("y", y);

  std::ostringstream exported;
  write_verilog(exported, nl);
  const Netlist reparsed = read_verilog_text(exported.str(), "allcells.v");
  EXPECT_EQ(nl.type_histogram(), reparsed.type_histogram());
  std::ostringstream again;
  write_verilog(again, reparsed);
  EXPECT_EQ(exported.str(), again.str());
}

TEST(VerilogReader, VendoredBenchesLoadAndLintClean) {
  const std::string dir = std::string(RETSCAN_CIRCUITS_DIR) + "/";
  const struct {
    const char* file;
    std::size_t flops;
  } benches[] = {{"c17.v", 0}, {"add432.v", 0}, {"mul880.v", 0},
                 {"s27.v", 3}, {"ctrl344.v", 24}};
  for (const auto& bench : benches) {
    SCOPED_TRACE(bench.file);
    const Netlist nl = Netlist::from_verilog(dir + bench.file);
    EXPECT_EQ(nl.flops().size(), bench.flops);
    EXPECT_GT(nl.cell_count(), 0u);
    for (const LintIssue& issue : lint_netlist(nl)) {
      // Only the intentionally-unread clock ports may surface.
      EXPECT_EQ(issue.kind, LintKind::FloatingInput) << issue.message;
    }
    // Every vendored bench flows straight into the compiled core.
    EXPECT_GT(nl.compiled()->instrs().size(), 0u);
  }
}

TEST(VerilogSession, BareCombinationalImportRunsFaultCoverage) {
  const std::string path = std::string(RETSCAN_CIRCUITS_DIR) + "/c17.v";
  Session session = Session::from_verilog(path);
  EXPECT_FALSE(session.is_protected());
  EXPECT_FALSE(session.has_fifo());
  EXPECT_THROW(session.design(), Error);

  CampaignSpec spec;
  spec.kind = CampaignKind::FaultCoverage;
  spec.seed = 3;
  spec.atpg.random_patterns = 64;
  const CampaignResult result = session.run(spec);
  EXPECT_EQ(result.faults.detected, result.faults.total_faults);
  EXPECT_TRUE(result.passed());

  CampaignSpec scan_test;
  scan_test.kind = CampaignKind::ScanTest;
  scan_test.atpg.random_patterns = 16;
  EXPECT_NE(error_message([&] { validate(scan_test, session); }).find("scan fabric"),
            std::string::npos);
  CampaignSpec validation;
  validation.kind = CampaignKind::Validation;
  validation.sequences = 10;
  EXPECT_THROW(validate(validation, session), Error);
}

TEST(VerilogSession, ProtectedSequentialImportRunsCampaigns) {
  const std::string path = std::string(RETSCAN_CIRCUITS_DIR) + "/ctrl344.v";
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 4;
  Session session = Session::from_verilog(path, protection);
  EXPECT_TRUE(session.is_protected());
  EXPECT_EQ(session.chains().chain_count(), 4u);
  EXPECT_EQ(session.chains().length(), 6u);

  CampaignSpec coverage;
  coverage.kind = CampaignKind::FaultCoverage;
  coverage.seed = 7;
  coverage.atpg.random_patterns = 64;
  coverage.atpg.run_podem = false;
  const CampaignResult result = session.run(coverage);
  EXPECT_GT(result.atpg.coverage(), 0.5);

  CampaignSpec delivery;
  delivery.kind = CampaignKind::ScanTest;
  delivery.seed = 7;
  delivery.atpg.random_patterns = 32;
  delivery.atpg.run_podem = false;
  const CampaignResult scan = session.run(delivery);
  EXPECT_TRUE(scan.passed());
  EXPECT_EQ(scan.scan_test.mismatches, 0u);
}

TEST(VerilogSession, FromVerilogValidatesGeometry) {
  const std::string path = std::string(RETSCAN_CIRCUITS_DIR) + "/s27.v";
  ProtectionConfig indivisible;  // 3 flops % 4 chains != 0
  EXPECT_NE(error_message([&] {
              Session session = Session::from_verilog(path, indivisible);
            }).find("equal scan chains"),
            std::string::npos);
}

TEST(VerilogSpec, NetlistKeyBuildsSessions) {
  SpecFile parsed = parse_spec_text("netlist = some/file.v\n");
  EXPECT_EQ(parsed.netlist_file, "some/file.v");

  // Relative netlist paths resolve against the spec file's directory.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "retscan_verilog_spec";
  fs::create_directories(dir);
  {
    std::ofstream v(dir / "rt_c17.v");
    v << kC17;
    std::ofstream spec(dir / "rt.spec");
    spec << "netlist = rt_c17.v\n"
            "campaign.kind = fault-coverage\n"
            "campaign.seed = 3\n"
            "campaign.atpg.random_patterns = 32\n";
  }
  const SpecFile file = load_spec_file((dir / "rt.spec").string());
  EXPECT_EQ(file.netlist_file, (fs::path(dir) / "rt_c17.v").string());

  const Netlist base = spec_base_netlist(file);
  EXPECT_EQ(base.name(), "c17");
  Session session = make_session(file);
  EXPECT_FALSE(session.is_protected());
  const CampaignResult result = session.run(file.campaign);
  EXPECT_TRUE(result.passed());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace retscan
