// Tests for the supporting tool layer: VCD writer, netlist linter,
// pattern I/O, and the recovery cost analyzer.

#include <gtest/gtest.h>

#include <sstream>

#include "atpg/atpg.hpp"
#include "atpg/pattern_io.hpp"
#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "core/protected_design.hpp"
#include "netlist/lint.hpp"
#include "power/recovery.hpp"
#include "sim/vcd.hpp"
#include "util/error.hpp"

namespace retscan {
namespace {

TEST(Vcd, EmitsHeaderAndChangesOnly) {
  Netlist nl = make_counter(2);
  Simulator sim(nl);
  std::ostringstream oss;
  VcdWriter vcd(oss, sim, 10.0);
  EXPECT_TRUE(vcd.add_signal("en"));  // named input net
  vcd.add_signal(nl.output_net("q0"), "q0");
  vcd.add_signal(nl.output_net("q1"), "q1");
  EXPECT_FALSE(vcd.add_signal("nonexistent"));
  vcd.write_header("counter");
  sim.set_input("en", true);
  for (int i = 0; i < 4; ++i) {
    vcd.sample();
    sim.step();
  }
  const std::string out = oss.str();
  EXPECT_NE(out.find("$timescale 10000 ps $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! en $end"), std::string::npos);
  EXPECT_NE(out.find("q0 $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions"), std::string::npos);
  // q0 toggles every cycle: samples at t=0..3 -> timestamps 0,1,2,3.
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#3"), std::string::npos);
  // q1 changes at t=2 only (counts 0,1,2,3 -> bit1: 0,0,1,1).
  const std::size_t q1_changes = [&] {
    std::size_t n = 0, pos = 0;
    while ((pos = out.find("\"", pos)) != std::string::npos) {
      ++n;
      ++pos;
    }
    return n;
  }();
  (void)q1_changes;  // identifier code assignment is an implementation detail
  EXPECT_THROW(vcd.add_signal("q0"), Error);  // after header
}

TEST(Vcd, SampleBeforeHeaderThrows) {
  Netlist nl = make_counter(2);
  Simulator sim(nl);
  std::ostringstream oss;
  VcdWriter vcd(oss, sim);
  EXPECT_THROW(vcd.sample(), Error);
}

TEST(Lint, CleanCircuitHasNoRealIssues) {
  Netlist nl = make_fifo(FifoSpec{4, 3});
  const auto issues = lint_netlist(nl);
  EXPECT_EQ(lint_count(issues, LintKind::UndrivenNet), 0u);
  EXPECT_EQ(lint_count(issues, LintKind::CombinationalLoop), 0u);
  EXPECT_EQ(lint_count(issues, LintKind::FloatingInput), 0u);
}

TEST(Lint, DetectsFloatingInputAndDanglingNet) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_input("unused");
  nl.n_not(a);  // output dangles
  nl.add_output("y", nl.n_buf(a));
  const auto issues = lint_netlist(nl);
  EXPECT_EQ(lint_count(issues, LintKind::FloatingInput), 1u);
  EXPECT_EQ(lint_count(issues, LintKind::DanglingNet), 1u);
  EXPECT_GE(lint_count(issues, LintKind::UnreachableCell), 1u);
}

TEST(Lint, DetectsCombinationalLoop) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId placeholder = nl.add_net();
  const CellId and_cell = nl.add_cell(CellType::And2, {a, placeholder});
  const NetId y = nl.n_not(nl.output_of(and_cell));
  nl.rewire_fanin(and_cell, 1, y);
  nl.add_output("y", y);
  const auto issues = lint_netlist(nl);
  EXPECT_EQ(lint_count(issues, LintKind::CombinationalLoop), 1u);
}

TEST(Lint, ProtectedDesignOnlyHasExpectedDanglers) {
  // The protected design intentionally leaves the original per-chain si
  // ports floating (rewired into mode muxes); nothing else may dangle.
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  const auto issues = lint_netlist(design.netlist());
  EXPECT_EQ(lint_count(issues, LintKind::UndrivenNet), 0u);
  EXPECT_EQ(lint_count(issues, LintKind::CombinationalLoop), 0u);
  EXPECT_EQ(lint_count(issues, LintKind::FloatingInput), 8u);  // si0..si7
  EXPECT_EQ(lint_count(issues, LintKind::DanglingNet), 0u);
  EXPECT_EQ(lint_count(issues, LintKind::UnreachableCell), 0u);
}

TEST(PatternIo, RoundTrip) {
  Netlist nl = make_registered_adder(3);
  const CombinationalFrame frame(nl);
  Rng rng(5);
  std::vector<BitVec> patterns;
  for (int i = 0; i < 20; ++i) {
    patterns.push_back(frame.random_pattern(rng));
  }
  std::stringstream ss;
  write_patterns(ss, frame, patterns);
  const auto loaded = read_patterns(ss, frame);
  EXPECT_EQ(loaded, patterns);
}

TEST(PatternIo, RejectsGeometryMismatch) {
  Netlist nl = make_registered_adder(3);
  const CombinationalFrame frame(nl);
  Netlist other = make_registered_adder(4);
  const CombinationalFrame other_frame(other);
  std::stringstream ss;
  write_patterns(ss, frame, {});
  EXPECT_THROW(read_patterns(ss, other_frame), Error);
}

TEST(PatternIo, RejectsMalformedContent) {
  Netlist nl = make_registered_adder(2);
  const CombinationalFrame frame(nl);
  {
    std::stringstream ss("pattern 0101\n");
    EXPECT_THROW(read_patterns(ss, frame), Error);  // pattern before header
  }
  {
    std::stringstream ss("bogus line\n");
    EXPECT_THROW(read_patterns(ss, frame), Error);
  }
  {
    std::stringstream ss;
    EXPECT_THROW(read_patterns(ss, frame), Error);  // empty
  }
}

TEST(Recovery, SoftwareIsSlowerButSmaller) {
  const RecoveryAnalyzer analyzer{SoftwareRecoveryParameters{}};
  // Representative numbers: l=13 chains, Hamming monitor 60k um^2 vs CRC
  // monitor 6k um^2, base 120k um^2, 1040 flops.
  const RecoveryCosts hw = analyzer.hardware_correction(13, 2.6, 60000.0, 120000.0);
  const RecoveryCosts sw = analyzer.software_recovery(1040, 13, 0.65, 6000.0, 120000.0);
  EXPECT_GT(sw.total_latency_ns, hw.total_latency_ns);
  EXPECT_LT(sw.area_overhead_percent, hw.area_overhead_percent);
  EXPECT_GT(sw.energy_nj, hw.energy_nj);  // CPU + SRAM traffic dominates
  EXPECT_DOUBLE_EQ(hw.total_latency_ns, 260.0);
  // Software detect pass has the same latency as hardware's.
  EXPECT_DOUBLE_EQ(sw.detect_latency_ns, 130.0);
}

TEST(Recovery, LatencyScalesWithIsrAndBus) {
  SoftwareRecoveryParameters fast;
  fast.isr_cycles = 100;
  fast.mem_bus_bits = 128;
  SoftwareRecoveryParameters slow;
  slow.isr_cycles = 1000;
  slow.mem_bus_bits = 8;
  const RecoveryAnalyzer a_fast{fast}, a_slow{slow};
  const RecoveryCosts f = a_fast.software_recovery(1040, 13, 0.65, 6000.0, 120000.0);
  const RecoveryCosts s = a_slow.software_recovery(1040, 13, 0.65, 6000.0, 120000.0);
  EXPECT_LT(f.total_latency_ns, s.total_latency_ns);
}

}  // namespace
}  // namespace retscan
