// Crash-safe campaigns: cooperative cancellation (CancelToken, deadlines,
// the global SIGINT flag), the RETSCAN_FAILPOINTS injection harness, the
// checkpoint journal's format/validation/torn-write tolerance, and the
// headline contract — a campaign killed mid-run (really killed, SIGKILL via
// fork) and resumed from its journal produces a CampaignResult bit-identical
// to an uninterrupted run, at every thread count and schedule.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "parallel/campaign_runner.hpp"
#include "retscan/retscan.hpp"
#include "util/cancel.hpp"
#include "util/failpoint.hpp"
#include "util/journal.hpp"

using namespace retscan;

namespace {

/// Scoped RETSCAN_FAILPOINTS override. Saves whatever the environment
/// already arms (the resilience CI job runs the whole suite with
/// journal.flush=shortwrite@2 exported), installs `spec` (empty = disarm),
/// and restores the prior arming on destruction — so tests that assert
/// exact journal contents are deterministic without hiding the env arming
/// from the rest of the binary.
class FailpointGuard {
 public:
  explicit FailpointGuard(const char* spec) {
    const char* prior = std::getenv("RETSCAN_FAILPOINTS");
    had_prior_ = prior != nullptr;
    if (had_prior_) {
      prior_ = prior;
    }
    if (spec == nullptr || spec[0] == '\0') {
      ::unsetenv("RETSCAN_FAILPOINTS");
    } else {
      ::setenv("RETSCAN_FAILPOINTS", spec, 1);
    }
    failpoints_refresh();
  }
  ~FailpointGuard() {
    if (had_prior_) {
      ::setenv("RETSCAN_FAILPOINTS", prior_.c_str(), 1);
    } else {
      ::unsetenv("RETSCAN_FAILPOINTS");
    }
    failpoints_refresh();
  }
  FailpointGuard(const FailpointGuard&) = delete;
  FailpointGuard& operator=(const FailpointGuard&) = delete;

 private:
  bool had_prior_ = false;
  std::string prior_;
};

/// Journal path in the test's working directory, removed on scope exit.
class ScopedJournalPath {
 public:
  explicit ScopedJournalPath(std::string path) : path_(std::move(path)) {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  ~ScopedJournalPath() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

ValidationConfig behavioral_config() {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 32};
  config.chain_count = 80;
  config.mode = InjectionMode::SingleRandom;
  config.seed = 77;
  return config;
}

ValidationConfig structural_config(Schedule schedule) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 2};
  config.chain_count = 8;
  config.mode = InjectionMode::SingleRandom;
  config.seed = 5;
  config.schedule = schedule;
  return config;
}

constexpr std::uint64_t kFingerprint = 0x5EEDFACE12345678ull;

JournalRecord make_record(std::uint64_t shard_index) {
  JournalRecord record;
  record.shard_index = shard_index;
  for (std::size_t i = 0; i < JournalRecord::kStatsWords; ++i) {
    record.stats[i] = shard_index * 100 + i;
  }
  for (std::size_t i = 0; i < JournalRecord::kTelemetryWords; ++i) {
    record.telemetry[i] = shard_index * 1000 + i;
  }
  return record;
}

}  // namespace

// --- CancelToken -----------------------------------------------------------

TEST(CancelToken, ReportsRequestAndDeadline) {
  reset_global_cancel();
  CancelToken token;
  EXPECT_EQ(token.why(), CancelReason::None);
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.check());

  token.request_cancel();
  EXPECT_EQ(token.why(), CancelReason::User);
  try {
    token.check();
    FAIL() << "check() did not throw";
  } catch (const Cancelled& cancelled) {
    EXPECT_EQ(cancelled.reason(), CancelReason::User);
  }

  // A zero-millisecond deadline has always already elapsed.
  CancelToken deadline;
  deadline.set_deadline_ms(0);
  EXPECT_EQ(deadline.why(), CancelReason::Deadline);
  EXPECT_THROW(deadline.check(), Cancelled);

  // Copies share state; cancelling one cancels the other.
  CancelToken original;
  CancelToken copy = original;
  original.request_cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(CancelToken, ObservesGlobalFlag) {
  reset_global_cancel();
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  request_global_cancel();
  EXPECT_TRUE(global_cancel_requested());
  EXPECT_EQ(token.why(), CancelReason::User);
  reset_global_cancel();
  EXPECT_FALSE(token.cancelled());
}

// --- Failpoint harness -----------------------------------------------------

TEST(Failpoint, DisarmedIsFreeAndArmedActionsFire) {
  {
    FailpointGuard off("");
    EXPECT_FALSE(failpoints_enabled());
    EXPECT_EQ(failpoint("test.site"), FailAction::None);
  }
  {
    // Default @1: one-shot on the first hit.
    FailpointGuard arm("test.site=throw");
    EXPECT_TRUE(failpoints_enabled());
    EXPECT_THROW(failpoint("test.site"), Error);
    EXPECT_EQ(failpoint("test.site"), FailAction::None);
    EXPECT_EQ(failpoint("other.site"), FailAction::None);
  }
  {
    // @N is 1-based and one-shot.
    FailpointGuard arm("test.site=throw@3");
    EXPECT_EQ(failpoint("test.site"), FailAction::None);
    EXPECT_EQ(failpoint("test.site"), FailAction::None);
    EXPECT_THROW(failpoint("test.site"), Error);
    EXPECT_EQ(failpoint("test.site"), FailAction::None);
  }
  {
    FailpointGuard arm("test.site=throw@every");
    EXPECT_THROW(failpoint("test.site"), Error);
    EXPECT_THROW(failpoint("test.site"), Error);
  }
  {
    // shortwrite is delegated back to the caller; delay sleeps and moves on.
    FailpointGuard arm("io.site=shortwrite;slow.site=delay:1@every");
    EXPECT_EQ(failpoint("io.site"), FailAction::ShortWrite);
    EXPECT_EQ(failpoint("slow.site"), FailAction::None);
  }
  {
    // Malformed entries warn and are ignored; the valid entry still works.
    FailpointGuard arm("nonsense;x=;=throw;test.site=explode,test.site=throw");
    EXPECT_THROW(failpoint("test.site"), Error);
  }
  // refresh() resets hit counters.
  {
    FailpointGuard arm("test.site=throw");
    EXPECT_THROW(failpoint("test.site"), Error);
    failpoints_refresh();
    EXPECT_THROW(failpoint("test.site"), Error);
  }
}

// --- CampaignJournal -------------------------------------------------------

TEST(Journal, RoundTripsRecordsAcrossProcessRestart) {
  FailpointGuard off("");
  ScopedJournalPath path("test_durability_roundtrip.journal");
  {
    CampaignJournal journal(path.str(), kFingerprint, 42,
                            CampaignJournal::Mode::Truncate);
    journal.bind_plan(1000, 256, 4);
    journal.append(make_record(0));
    journal.append(make_record(2));
    EXPECT_TRUE(journal.find(0).has_value());
    EXPECT_FALSE(journal.find(1).has_value());
  }
  // Header survives: peek() sees the binding.
  const std::optional<CampaignJournal::Header> header =
      CampaignJournal::peek(path.str());
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->fingerprint, kFingerprint);
  EXPECT_EQ(header->seed, 42u);
  EXPECT_EQ(header->total, 1000u);
  EXPECT_EQ(header->shard_size, 256u);
  EXPECT_EQ(header->shard_count, 4u);

  CampaignJournal resumed(path.str(), kFingerprint, 42,
                          CampaignJournal::Mode::Resume);
  resumed.bind_plan(1000, 256, 4);
  EXPECT_EQ(resumed.resumed_count(), 2u);
  EXPECT_EQ(resumed.dropped_count(), 0u);
  for (const std::uint64_t shard : {0ull, 2ull}) {
    const std::optional<JournalRecord> record = resumed.find(shard);
    ASSERT_TRUE(record.has_value()) << "shard " << shard;
    const JournalRecord expected = make_record(shard);
    EXPECT_EQ(record->shard_index, expected.shard_index);
    for (std::size_t i = 0; i < JournalRecord::kStatsWords; ++i) {
      EXPECT_EQ(record->stats[i], expected.stats[i]);
    }
    for (std::size_t i = 0; i < JournalRecord::kTelemetryWords; ++i) {
      EXPECT_EQ(record->telemetry[i], expected.telemetry[i]);
    }
  }
  EXPECT_FALSE(resumed.find(1).has_value());
  EXPECT_FALSE(resumed.find(3).has_value());
}

TEST(Journal, ResumeRejectsForeignCampaigns) {
  FailpointGuard off("");
  ScopedJournalPath path("test_durability_foreign.journal");
  {
    CampaignJournal journal(path.str(), kFingerprint, 42,
                            CampaignJournal::Mode::Truncate);
    journal.bind_plan(1000, 256, 4);
    journal.append(make_record(0));
  }
  // Wrong fingerprint: different spec/design/version.
  try {
    CampaignJournal wrong(path.str(), kFingerprint + 1, 42,
                          CampaignJournal::Mode::Resume);
    FAIL() << "fingerprint mismatch accepted";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"), std::string::npos);
  }
  // Wrong seed.
  EXPECT_THROW(CampaignJournal(path.str(), kFingerprint, 43,
                               CampaignJournal::Mode::Resume),
               Error);
  // Right campaign, wrong shard plan.
  CampaignJournal resumed(path.str(), kFingerprint, 42,
                          CampaignJournal::Mode::Resume);
  try {
    resumed.bind_plan(1000, 128, 8);
    FAIL() << "plan mismatch accepted";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("shard"), std::string::npos);
  }
  // Truncate never validates — it discards.
  CampaignJournal fresh(path.str(), kFingerprint + 9, 9,
                        CampaignJournal::Mode::Truncate);
  fresh.bind_plan(10, 5, 2);
  EXPECT_EQ(fresh.resumed_count(), 0u);
}

TEST(Journal, TornTailIsDroppedAndIntactPrefixKept) {
  ScopedJournalPath path("test_durability_torn.journal");
  {
    // Third flush (the one that persists records 0..2) is cut short halfway
    // through its record region: record 0 survives, record 1 is torn,
    // record 2 never hits the disk.
    FailpointGuard arm("journal.flush=shortwrite@3");
    CampaignJournal journal(path.str(), kFingerprint, 42,
                            CampaignJournal::Mode::Truncate);
    journal.bind_plan(1000, 256, 4);
    journal.append(make_record(0));
    journal.append(make_record(1));
    journal.append(make_record(2));
  }
  FailpointGuard off("");
  CampaignJournal resumed(path.str(), kFingerprint, 42,
                          CampaignJournal::Mode::Resume);
  resumed.bind_plan(1000, 256, 4);
  EXPECT_EQ(resumed.resumed_count(), 1u);
  EXPECT_EQ(resumed.dropped_count(), 1u);
  EXPECT_TRUE(resumed.find(0).has_value());
  EXPECT_FALSE(resumed.find(1).has_value());
  EXPECT_FALSE(resumed.find(2).has_value());
}

// --- Campaign-layer cancellation, deadlines, resume -------------------------

TEST(DurableCampaign, PreCancelledTokenYieldsCancelledStatus) {
  FailpointGuard off("");
  parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 2});
  CancelToken cancel;
  cancel.request_cancel();
  parallel::RunControls controls;
  controls.cancel = &cancel;
  const parallel::CampaignReport report =
      runner.run_fast(behavioral_config(), 1024, 128, controls);
  EXPECT_EQ(report.status, CampaignStatus::Cancelled);
  EXPECT_EQ(report.shards_completed, 0u);
  EXPECT_EQ(report.stats.sequences, 0u);
}

TEST(DurableCampaign, ExpiredDeadlineYieldsTimeoutStatus) {
  FailpointGuard off("");
  parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 2});
  CancelToken deadline;
  deadline.set_deadline_ms(0);
  parallel::RunControls controls;
  controls.cancel = &deadline;
  const parallel::CampaignReport report =
      runner.run_fast(behavioral_config(), 1024, 128, controls);
  EXPECT_EQ(report.status, CampaignStatus::Timeout);
  EXPECT_EQ(report.shards_completed, 0u);
}

TEST(DurableCampaign, ThrowInterruptedCampaignResumesBitIdentically) {
  FailpointGuard off("");
  ScopedJournalPath path("test_durability_throw_resume.journal");
  const ValidationConfig config = behavioral_config();

  parallel::CampaignReport baseline;
  {
    parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 2});
    baseline = runner.run_fast(config, 2048, 256);
  }
  ASSERT_EQ(baseline.status, CampaignStatus::Complete);

  {
    FailpointGuard arm("shard.run=throw@3");
    CampaignJournal journal(path.str(), kFingerprint, config.seed,
                            CampaignJournal::Mode::Truncate);
    parallel::RunControls controls;
    controls.journal = &journal;
    parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 2});
    EXPECT_THROW(runner.run_fast(config, 2048, 256, controls), Error);
  }

  CampaignJournal journal(path.str(), kFingerprint, config.seed,
                          CampaignJournal::Mode::Resume);
  EXPECT_GE(journal.resumed_count(), 1u);
  parallel::RunControls controls;
  controls.journal = &journal;
  parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 2});
  const parallel::CampaignReport resumed =
      runner.run_fast(config, 2048, 256, controls);
  EXPECT_EQ(resumed.status, CampaignStatus::Complete);
  EXPECT_GE(resumed.shards_resumed, 1u);
  EXPECT_TRUE(resumed.stats == baseline.stats);
  EXPECT_TRUE(resumed.telemetry == baseline.telemetry);
}

// --- The headline: SIGKILL mid-campaign, resume, bit-identical --------------

namespace {

/// Fork a child that runs the campaign with a checkpoint journal and a
/// `shard.run=kill@N` failpoint armed — the child dies by real SIGKILL with
/// the journal holding whatever shards completed. Returns once the parent
/// has reaped it and asserted the death was the SIGKILL.
template <typename RunCampaign>
void run_killed_child(const std::string& journal_path, std::uint64_t seed,
                      const char* kill_spec, const RunCampaign& run_campaign) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: arm the kill, run with a fresh journal, die mid-campaign. If
    // the failpoint never fires, exit with a sentinel the parent rejects.
    ::setenv("RETSCAN_FAILPOINTS", kill_spec, 1);
    failpoints_refresh();
    try {
      CampaignJournal journal(journal_path, kFingerprint, seed,
                              CampaignJournal::Mode::Truncate);
      parallel::RunControls controls;
      controls.journal = &journal;
      run_campaign(controls);
    } catch (...) {
    }
    ::_exit(42);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status))
      << "child was not killed (exit status " << status << ")";
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
}

}  // namespace

TEST(CrashRecovery, KilledBehavioralCampaignResumesBitIdentically) {
  FailpointGuard off("");
  const ValidationConfig config = behavioral_config();
  constexpr std::size_t kSequences = 2048;
  constexpr std::size_t kShard = 256;

  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    parallel::CampaignReport baseline;
    {
      parallel::CampaignRunner runner(
          parallel::CampaignOptions{.threads = threads});
      baseline = runner.run_fast(config, kSequences, kShard);
    }

    ScopedJournalPath path("test_durability_kill_" + std::to_string(threads) +
                           ".journal");
    run_killed_child(path.str(), config.seed, "shard.run=kill@3",
                     [&](const parallel::RunControls& controls) {
                       parallel::CampaignRunner runner(
                           parallel::CampaignOptions{.threads = threads});
                       runner.run_fast(config, kSequences, kShard, controls);
                     });

    CampaignJournal journal(path.str(), kFingerprint, config.seed,
                            CampaignJournal::Mode::Resume);
    if (threads == 1) {
      // Serial child: shard hits are sequential, so exactly two shards
      // completed (and were durably journaled) before the third was killed.
      EXPECT_EQ(journal.resumed_count(), 2u);
    }
    parallel::RunControls controls;
    controls.journal = &journal;
    parallel::CampaignRunner runner(
        parallel::CampaignOptions{.threads = threads});
    const parallel::CampaignReport resumed =
        runner.run_fast(config, kSequences, kShard, controls);
    EXPECT_EQ(resumed.status, CampaignStatus::Complete);
    EXPECT_EQ(resumed.shards_completed, baseline.shards_completed);
    EXPECT_EQ(resumed.shards_resumed, journal.resumed_count());
    EXPECT_TRUE(resumed.stats == baseline.stats);
    EXPECT_TRUE(resumed.telemetry == baseline.telemetry);
  }
}

TEST(CrashRecovery, KilledStructuralCampaignResumesUnderBothSchedules) {
  FailpointGuard off("");
  constexpr std::size_t kSequences = 128;
  constexpr std::size_t kShard = 64;

  for (const Schedule schedule : {Schedule::Sweep, Schedule::Event}) {
    SCOPED_TRACE(to_string(schedule));
    const ValidationConfig config = structural_config(schedule);
    parallel::CampaignReport baseline;
    {
      parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 1});
      baseline = runner.run_structural_packed(config, kSequences, kShard);
    }

    ScopedJournalPath path(std::string("test_durability_kill_structural_") +
                           to_string(schedule) + ".journal");
    run_killed_child(path.str(), config.seed, "shard.run=kill@2",
                     [&](const parallel::RunControls& controls) {
                       parallel::CampaignRunner runner(
                           parallel::CampaignOptions{.threads = 1});
                       runner.run_structural_packed(config, kSequences, kShard,
                                                    controls);
                     });

    CampaignJournal journal(path.str(), kFingerprint, config.seed,
                            CampaignJournal::Mode::Resume);
    EXPECT_EQ(journal.resumed_count(), 1u);
    parallel::RunControls controls;
    controls.journal = &journal;
    parallel::CampaignRunner runner(parallel::CampaignOptions{.threads = 2});
    const parallel::CampaignReport resumed =
        runner.run_structural_packed(config, kSequences, kShard, controls);
    EXPECT_EQ(resumed.status, CampaignStatus::Complete);
    EXPECT_TRUE(resumed.stats == baseline.stats);
    // The schedule telemetry (event vs full sweeps, instruction counts) is
    // part of the result — resumed shards must carry the journaled counters,
    // not zeros or recomputed ones.
    EXPECT_TRUE(resumed.telemetry == baseline.telemetry);
  }
}

// --- API-level checkpoint/resume through CampaignSpec -----------------------

TEST(ApiDurability, CheckpointThenResumeReproducesCleanRun) {
  FailpointGuard off("");
  ScopedJournalPath path("test_durability_api.journal");
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.hamming_r = 3;
  protection.chain_count = 80;
  Session session(FifoSpec{32, 32}, protection);

  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.seed = 2024;
  spec.sequences = 4096;
  spec.shard_size = 512;

  const CampaignResult clean = run(session, spec);
  ASSERT_EQ(clean.status, CampaignStatus::Complete);
  EXPECT_TRUE(clean.passed());

  spec.checkpoint = path.str();
  const CampaignResult checkpointed = run(session, spec);
  EXPECT_EQ(checkpointed.status, CampaignStatus::Complete);
  EXPECT_EQ(checkpointed.shards_resumed, 0u);
  EXPECT_TRUE(checkpointed.validation == clean.validation);

  // Resume with every shard journaled: nothing reruns, same statistics.
  spec.resume = true;
  const CampaignResult resumed = run(session, spec);
  EXPECT_EQ(resumed.status, CampaignStatus::Complete);
  EXPECT_EQ(resumed.shards_resumed, resumed.shard_count);
  EXPECT_TRUE(resumed.validation == clean.validation);
  EXPECT_TRUE(resumed.passed());
}

TEST(ApiDurability, DeadlineYieldsTimeoutResultThatDoesNotPass) {
  FailpointGuard off("");
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.hamming_r = 3;
  protection.chain_count = 80;
  Session session(FifoSpec{32, 32}, protection);

  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.seed = 2024;
  spec.sequences = 65536;
  spec.deadline_ms = 1;

  const CampaignResult result = run(session, spec);
  EXPECT_EQ(result.status, CampaignStatus::Timeout);
  EXPECT_LT(result.shards_completed, result.shard_count);
  EXPECT_FALSE(result.passed());
}
