// Transition-delay, bridging and sequential fault models (atpg/fault_models):
// hand-computed detections on gate-sized circuits, golden coverage
// regressions on the vendored benchmarks (c17 / s27 + two mid-size designs),
// serial/pooled bit-identity at 1 and 8 threads, schedule invariance, and
// the campaign-kind plumbing (routing, validation, spellings).

#include "atpg/fault_models.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "netlist/verilog_reader.hpp"
#include "retscan/campaign.hpp"
#include "retscan/session.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#ifndef RETSCAN_CIRCUITS_DIR
#define RETSCAN_CIRCUITS_DIR "bench/circuits"
#endif

namespace retscan {
namespace {

std::string circuit_path(const char* file) {
  return std::string(RETSCAN_CIRCUITS_DIR) + "/" + file;
}

BitVec make_pattern(std::initializer_list<int> bits) {
  BitVec pattern(bits.size());
  std::size_t i = 0;
  for (const int bit : bits) {
    pattern.set(i++, bit != 0);
  }
  return pattern;
}

std::string error_message(const std::function<void()>& body) {
  try {
    body();
  } catch (const Error& error) {
    return error.what();
  }
  return "";
}

// --- transition delay: hand-computed --------------------------------------

constexpr const char* kBufModule =
    "module t(a, y);\n"
    "  input a;\n"
    "  output y;\n"
    "  assign y = a;\n"
    "endmodule\n";

TEST(TransitionDelay, BufferHandComputed) {
  const Netlist nl = read_verilog_text(kBufModule, "buf.v");
  const CombinationalFrame frame(nl);
  const NetId a = nl.find_net("a");
  const std::vector<TransitionFault> faults = {{a, true}, {a, false}};

  // Pattern sequence 0, 1, 0 → pair 0 launches a rising edge on `a`, pair 1
  // a falling edge. STR needs launch 0 + SA0 detected at capture (pair 0);
  // STF needs launch 1 + SA1 detected at capture (pair 1).
  const std::vector<BitVec> patterns = {make_pattern({0}), make_pattern({1}),
                                        make_pattern({0})};
  const FaultSimResult result = transition_fault_simulate(frame, faults, patterns);
  EXPECT_EQ(result.total_faults, 2u);
  EXPECT_EQ(result.detected, 2u);
  EXPECT_EQ(result.detected_by[0], 0u);  // STR by the 0→1 pair
  EXPECT_EQ(result.detected_by[1], 1u);  // STF by the 1→0 pair
}

TEST(TransitionDelay, ConstantPatternsLaunchNothing) {
  const Netlist nl = read_verilog_text(kBufModule, "buf.v");
  const CombinationalFrame frame(nl);
  const NetId a = nl.find_net("a");
  const std::vector<TransitionFault> faults = {{a, true}, {a, false}};

  // A 1,1 pair would *capture* SA0 on `a`, but the launch value never sets
  // up the rising transition — the launch mask must veto the detection.
  const std::vector<BitVec> ones = {make_pattern({1}), make_pattern({1})};
  const FaultSimResult none = transition_fault_simulate(frame, faults, ones);
  EXPECT_EQ(none.detected, 0u);
  EXPECT_EQ(none.detected_by[0], FaultSimResult::npos);
  EXPECT_EQ(none.detected_by[1], FaultSimResult::npos);
}

TEST(TransitionDelay, EnumerationCoversStuckAtUniverse) {
  const Netlist nl = read_verilog_text(kBufModule, "buf.v");
  const std::vector<TransitionFault> faults = enumerate_transition_faults(nl);
  EXPECT_EQ(faults.size(), enumerate_faults(nl).size());
  const std::string name = transition_fault_name(nl, {nl.find_net("a"), true});
  EXPECT_NE(name.find("/STR"), std::string::npos);
  EXPECT_NE(name.find('a'), std::string::npos);
}

// --- bridging: hand-computed ----------------------------------------------

constexpr const char* kBridgeModule =
    "module t(a, b, y, z);\n"
    "  input a;\n"
    "  input b;\n"
    "  output y;\n"
    "  output z;\n"
    "  assign y = a & b;\n"
    "  assign z = a | b;\n"
    "endmodule\n";

TEST(Bridging, GateInputPairHandComputed) {
  const Netlist nl = read_verilog_text(kBridgeModule, "bridge.v");
  const CombinationalFrame frame(nl);

  // Both gates share the same (a, b) input pair; after dedup exactly one
  // pair remains, one wired-AND and one wired-OR fault.
  const std::vector<BridgingFault> faults = enumerate_bridging_faults(nl);
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_TRUE(faults[0].wired_and);
  EXPECT_FALSE(faults[1].wired_and);
  EXPECT_EQ(faults[0].a, faults[1].a);
  EXPECT_EQ(faults[0].b, faults[1].b);

  // a=1, b=0 drives the nets apart: wired-AND forces both to 0 (z drops to
  // 0, good 1); wired-OR forces both to 1 (y rises to 1, good 0).
  const std::vector<BitVec> split = {make_pattern({1, 0})};
  const FaultSimResult detected = bridging_fault_simulate(frame, faults, split);
  EXPECT_EQ(detected.detected, 2u);
  EXPECT_EQ(detected.detected_by[0], 0u);
  EXPECT_EQ(detected.detected_by[1], 0u);

  // Patterns that never drive a and b apart cannot expose either dominance.
  const std::vector<BitVec> agree = {make_pattern({0, 0}), make_pattern({1, 1})};
  const FaultSimResult none = bridging_fault_simulate(frame, faults, agree);
  EXPECT_EQ(none.detected, 0u);

  const std::string name = bridging_fault_name(nl, faults[0]);
  EXPECT_NE(name.find("/AND"), std::string::npos);
}

// --- sequential: hand-checked ---------------------------------------------

constexpr const char* kFlopModule =
    "module t(CK, d, q);\n"
    "  input CK;\n"
    "  input d;\n"
    "  output q;\n"
    "  DFFX1 f0 (.D(d), .CK(CK), .Q(q));\n"
    "endmodule\n";

TEST(Sequential, FlopOutputFaultsDetectedThroughCycles) {
  const Netlist nl = Netlist(read_verilog_text(kFlopModule, "flop.v"));
  const NetId q = nl.find_net("q");
  const std::vector<Fault> faults = {{q, false}, {q, true}};

  // From the all-zero state, SA1 on q differs the moment the good machine
  // holds d=0 (cycle after reset at the latest); SA0 needs a 1 to have been
  // clocked through. The random stimulus hits both within a few cycles.
  const FaultSimResult serial = sequential_fault_simulate(nl, faults, 4, 8, 99);
  EXPECT_EQ(serial.total_faults, 2u);
  EXPECT_EQ(serial.detected, 2u);

  ThreadPool pool(4);
  const FaultSimResult pooled =
      sequential_fault_simulate(nl, faults, 4, 8, 99, pool, 1);
  EXPECT_EQ(pooled.detected, serial.detected);
  EXPECT_EQ(pooled.detected_by, serial.detected_by);
}

TEST(Sequential, CombinationalNetlistDegeneratesToSingleCycle) {
  // No flops: every cycle evaluates the same function of fresh inputs, so
  // the model still runs (degenerate but well-defined) and detects the
  // observable faults.
  const Netlist nl = read_verilog_text(kBufModule, "buf.v");
  const NetId a = nl.find_net("a");
  const std::vector<Fault> faults = {{a, false}, {a, true}};
  const FaultSimResult result = sequential_fault_simulate(nl, faults, 2, 4, 3);
  EXPECT_EQ(result.detected, 2u);
}

// --- golden regressions on vendored circuits ------------------------------

CampaignResult run_kind(Session& session, CampaignKind kind, Backend backend,
                        unsigned threads = 0, Schedule schedule = Schedule::Auto) {
  CampaignSpec spec;
  spec.kind = kind;
  spec.backend = backend;
  spec.seed = 11;
  spec.threads = threads;
  spec.schedule = schedule;
  spec.atpg.random_patterns = 64;
  if (kind == CampaignKind::SequentialCoverage) {
    spec.sequences = 16;
    spec.cycles = 32;
  }
  return run(session, spec);
}

struct Golden {
  std::size_t detected;
  std::size_t total;
};

void expect_golden(const CampaignResult& result, const Golden& golden) {
  EXPECT_EQ(result.faults.detected, golden.detected);
  EXPECT_EQ(result.faults.total_faults, golden.total);
}

TEST(GoldenCoverage, C17AllCombinationalModels) {
  Session session = Session::from_verilog(circuit_path("c17.v"));
  expect_golden(run_kind(session, CampaignKind::FaultCoverage, Backend::Auto),
                {22, 22});
  // Transition totals come from the *uncollapsed* stem universe (a buffered
  // stem still delays independently), so they can exceed the stuck-at total.
  expect_golden(run_kind(session, CampaignKind::TransitionDelay, Backend::Auto),
                {17, 22});
  expect_golden(run_kind(session, CampaignKind::Bridging, Backend::Auto),
                {10, 12});
}

TEST(GoldenCoverage, S27Sequential) {
  Session session =
      Session::unprotected(Netlist::from_verilog(circuit_path("s27.v")));
  expect_golden(
      run_kind(session, CampaignKind::SequentialCoverage, Backend::Auto),
      {30, 30});
}

TEST(GoldenCoverage, Cmp1908MidSizeCombinational) {
  Session session = Session::from_verilog(circuit_path("cmp1908.v"));
  expect_golden(run_kind(session, CampaignKind::FaultCoverage, Backend::Auto),
                {1383, 1388});
  expect_golden(run_kind(session, CampaignKind::TransitionDelay, Backend::Auto),
                {2229, 2368});
  expect_golden(run_kind(session, CampaignKind::Bridging, Backend::Auto),
                {750, 940});
}

TEST(GoldenCoverage, Ctrl344MidSizeSequential) {
  Session session =
      Session::unprotected(Netlist::from_verilog(circuit_path("ctrl344.v")));
  expect_golden(
      run_kind(session, CampaignKind::SequentialCoverage, Backend::Auto),
      {147, 244});
}

// --- invariance: threads and schedules ------------------------------------

void expect_identical(const CampaignResult& lhs, const CampaignResult& rhs) {
  EXPECT_EQ(lhs.faults.detected, rhs.faults.detected);
  EXPECT_EQ(lhs.faults.total_faults, rhs.faults.total_faults);
  EXPECT_EQ(lhs.faults.detected_by, rhs.faults.detected_by);
}

TEST(Invariance, TransitionDelayThreadsAndSchedule) {
  Session session = Session::from_verilog(circuit_path("cmp1908.v"));
  const CampaignResult serial =
      run_kind(session, CampaignKind::TransitionDelay, Backend::Packed);
  const CampaignResult one =
      run_kind(session, CampaignKind::TransitionDelay, Backend::PackedParallel, 1);
  const CampaignResult eight =
      run_kind(session, CampaignKind::TransitionDelay, Backend::PackedParallel, 8);
  const CampaignResult sweep =
      run_kind(session, CampaignKind::TransitionDelay, Backend::PackedParallel, 8,
               Schedule::Sweep);
  expect_identical(serial, one);
  expect_identical(serial, eight);
  expect_identical(serial, sweep);
}

TEST(Invariance, BridgingThreads) {
  Session session = Session::from_verilog(circuit_path("cmp1908.v"));
  const CampaignResult serial =
      run_kind(session, CampaignKind::Bridging, Backend::Packed);
  const CampaignResult eight =
      run_kind(session, CampaignKind::Bridging, Backend::PackedParallel, 8);
  expect_identical(serial, eight);
}

TEST(Invariance, SequentialThreadsAndSchedule) {
  Session session =
      Session::unprotected(Netlist::from_verilog(circuit_path("s27.v")));
  const CampaignResult serial =
      run_kind(session, CampaignKind::SequentialCoverage, Backend::Packed);
  const CampaignResult one = run_kind(
      session, CampaignKind::SequentialCoverage, Backend::PackedParallel, 1);
  const CampaignResult eight = run_kind(
      session, CampaignKind::SequentialCoverage, Backend::PackedParallel, 8);
  const CampaignResult sweep =
      run_kind(session, CampaignKind::SequentialCoverage, Backend::PackedParallel,
               8, Schedule::Sweep);
  expect_identical(serial, one);
  expect_identical(serial, eight);
  expect_identical(serial, sweep);
}

// --- campaign plumbing ----------------------------------------------------

TEST(CampaignKinds, SpellingsRoundTrip) {
  for (const CampaignKind kind :
       {CampaignKind::TransitionDelay, CampaignKind::Bridging,
        CampaignKind::SequentialCoverage}) {
    CampaignKind parsed;
    ASSERT_TRUE(from_string(to_string(kind), parsed)) << to_string(kind);
    EXPECT_EQ(parsed, kind);
  }
  CampaignKind parsed;
  EXPECT_STREQ(to_string(CampaignKind::TransitionDelay), "transition-delay");
  EXPECT_STREQ(to_string(CampaignKind::Bridging), "bridging");
  EXPECT_STREQ(to_string(CampaignKind::SequentialCoverage), "sequential-coverage");
  EXPECT_FALSE(from_string("transition_delay", parsed));
}

TEST(CampaignKinds, ValidationRejectsCyclesMisuse) {
  Session session = Session::from_verilog(circuit_path("c17.v"));

  CampaignSpec stray;
  stray.kind = CampaignKind::FaultCoverage;
  stray.cycles = 8;
  EXPECT_NE(error_message([&] { validate(stray, session); })
                .find("cycles only applies to sequential-coverage"),
            std::string::npos);

  CampaignSpec no_cycles;
  no_cycles.kind = CampaignKind::SequentialCoverage;
  no_cycles.sequences = 16;
  EXPECT_NE(error_message([&] { validate(no_cycles, session); })
                .find("cycles must be > 0"),
            std::string::npos);

  CampaignSpec no_sequences;
  no_sequences.kind = CampaignKind::SequentialCoverage;
  no_sequences.cycles = 32;
  EXPECT_NE(error_message([&] { validate(no_sequences, session); })
                .find("sequences must be > 0"),
            std::string::npos);

  CampaignSpec event;
  event.kind = CampaignKind::TransitionDelay;
  event.schedule = Schedule::Event;
  EXPECT_NE(error_message([&] { validate(event, session); })
                .find("schedule knob"),
            std::string::npos);
}

TEST(CampaignKinds, TransitionDelayRunShape) {
  Session session = Session::from_verilog(circuit_path("c17.v"));
  const CampaignResult result =
      run_kind(session, CampaignKind::TransitionDelay, Backend::Auto);
  EXPECT_EQ(result.kind, CampaignKind::TransitionDelay);
  EXPECT_EQ(result.backend, Backend::PackedParallel);
  EXPECT_FALSE(result.atpg.patterns.empty());
  EXPECT_GT(result.faults.total_faults, 0u);
  EXPECT_TRUE(result.passed());
  // detected_by indexes launch/capture *pairs*: every value is in range.
  for (const std::size_t pair : result.faults.detected_by) {
    if (pair != FaultSimResult::npos) {
      EXPECT_LT(pair, result.atpg.patterns.size() - 1);
    }
  }
}

}  // namespace
}  // namespace retscan
