#include "coding/misr.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

TEST(Misr, RejectsBadWidths) {
  EXPECT_THROW(Misr(1), Error);
  EXPECT_THROW(Misr(65), Error);
  EXPECT_THROW(Misr(21), Error);  // no tabulated polynomial
}

TEST(Misr, DeterministicSignature) {
  Rng rng(1);
  std::vector<BitVec> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(rng.next_bits(8));
  }
  Misr a(8), b(8);
  for (const auto& word : stream) {
    a.absorb(word);
    b.absorb(word);
  }
  EXPECT_EQ(a.signature(), b.signature());
  a.reset();
  EXPECT_EQ(a.signature(), 0u);
}

TEST(Misr, SignatureIsLinearInInput) {
  // sig(s ^ e) == sig(s) ^ sig(e) for streams absorbed from reset.
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BitVec> s, e;
    for (int i = 0; i < 13; ++i) {
      s.push_back(rng.next_bits(16));
      e.push_back(rng.next_bits(16));
    }
    Misr ms(16), me(16), mse(16);
    for (int i = 0; i < 13; ++i) {
      ms.absorb(s[i]);
      me.absorb(e[i]);
      mse.absorb(s[i] ^ e[i]);
    }
    EXPECT_EQ(mse.signature(), ms.signature() ^ me.signature());
  }
}

TEST(Misr, SingleBitErrorsAlwaysChangeSignature) {
  // Linearity + invertible transition matrix: a single-bit error never
  // aliases, whichever cycle and stage it lands in.
  Rng rng(3);
  const unsigned width = 8;
  const std::size_t cycles = 13;
  std::vector<BitVec> stream;
  for (std::size_t i = 0; i < cycles; ++i) {
    stream.push_back(rng.next_bits(width));
  }
  Misr clean(width);
  for (const auto& word : stream) {
    clean.absorb(word);
  }
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (unsigned bit = 0; bit < width; ++bit) {
      Misr dirty(width);
      for (std::size_t i = 0; i < cycles; ++i) {
        BitVec word = stream[i];
        if (i == cycle) {
          word.flip(bit);
        }
        dirty.absorb(word);
      }
      EXPECT_NE(dirty.signature(), clean.signature())
          << "cycle " << cycle << " bit " << bit;
    }
  }
}

TEST(Misr, SignaturesSpreadOverStates) {
  // Random streams should hit many distinct signatures (sanity against a
  // degenerate polynomial).
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int trial = 0; trial < 1000; ++trial) {
    Misr misr(12);
    for (int i = 0; i < 5; ++i) {
      misr.absorb(rng.next_bits(12));
    }
    seen.insert(misr.signature());
  }
  // Expected distinct count over 2^12 states for 1000 draws is ~889
  // (birthday collisions); anything near that is healthy.
  EXPECT_GT(seen.size(), 850u);
}

TEST(MisrChainProtector, DetectsEverySingleError) {
  MisrChainProtector protector(8, 13);
  EXPECT_EQ(protector.signature_storage_bits(), 8u);
  Rng rng(5);
  std::vector<BitVec> state;
  for (int c = 0; c < 8; ++c) {
    state.push_back(rng.next_bits(13));
  }
  protector.encode(state);
  EXPECT_FALSE(protector.check(state).any_error());
  for (std::size_t chain = 0; chain < 8; ++chain) {
    for (std::size_t pos = 0; pos < 13; ++pos) {
      auto corrupted = state;
      corrupted[chain].flip(pos);
      EXPECT_TRUE(protector.check(corrupted).any_error())
          << chain << "," << pos;
    }
  }
}

TEST(MisrChainProtector, ChecksBeforeEncodeRejected) {
  MisrChainProtector protector(4, 5);
  std::vector<BitVec> state(4, BitVec(5));
  EXPECT_THROW(protector.check(state), Error);
}

}  // namespace
}  // namespace retscan
