#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "netlist/techlib.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

/// Truth-table check for every 2-input gate type plus Not/Buf/Mux.
struct GateCase {
  CellType type;
  // expected output for input patterns 00, 01, 10, 11 (a=LSB)
  bool expected[4];
};

class GateTruth : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruth, MatchesTable) {
  const GateCase& gc = GetParam();
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const CellId cell = nl.add_cell(gc.type, {a, b});
  nl.add_output("y", nl.output_of(cell));
  Simulator sim(nl);
  for (int pattern = 0; pattern < 4; ++pattern) {
    sim.set_input("a", pattern & 1);
    sim.set_input("b", (pattern >> 1) & 1);
    sim.eval();
    EXPECT_EQ(sim.output("y"), gc.expected[pattern])
        << cell_type_name(gc.type) << " pattern " << pattern;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTruth,
    ::testing::Values(GateCase{CellType::And2, {false, false, false, true}},
                      GateCase{CellType::Or2, {false, true, true, true}},
                      GateCase{CellType::Xor2, {false, true, true, false}},
                      GateCase{CellType::Nand2, {true, true, true, false}},
                      GateCase{CellType::Nor2, {true, false, false, false}},
                      GateCase{CellType::Xnor2, {true, false, false, true}}));

TEST(Simulator, NotBufConst) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.add_output("n", nl.n_not(a));
  nl.add_output("b", nl.n_buf(a));
  nl.add_output("c1", nl.n_const(true));
  nl.add_output("c0", nl.n_const(false));
  Simulator sim(nl);
  sim.set_input("a", true);
  sim.eval();
  EXPECT_FALSE(sim.output("n"));
  EXPECT_TRUE(sim.output("b"));
  EXPECT_TRUE(sim.output("c1"));
  EXPECT_FALSE(sim.output("c0"));
}

TEST(Simulator, MuxSelects) {
  Netlist nl;
  const NetId s = nl.add_input("s");
  const NetId lo = nl.add_input("lo");
  const NetId hi = nl.add_input("hi");
  nl.add_output("y", nl.n_mux(s, lo, hi));
  Simulator sim(nl);
  sim.set_input("lo", true);
  sim.set_input("hi", false);
  sim.set_input("s", false);
  sim.eval();
  EXPECT_TRUE(sim.output("y"));
  sim.set_input("s", true);
  sim.eval();
  EXPECT_FALSE(sim.output("y"));
}

TEST(Simulator, DffCapturesOnStep) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  nl.add_output("q", nl.n_dff(d));
  Simulator sim(nl);
  sim.set_input("d", true);
  sim.eval();
  EXPECT_FALSE(sim.output("q"));  // not yet clocked
  sim.step();
  EXPECT_TRUE(sim.output("q"));
  sim.set_input("d", false);
  sim.step();
  EXPECT_FALSE(sim.output("q"));
}

TEST(Simulator, SdffScanPathSelects) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId si = nl.add_input("si");
  const NetId se = nl.add_input("se");
  const NetId q0 = nl.n_dff(d);
  const CellId flop = nl.driver(q0);
  nl.convert_flop(flop, CellType::Sdff, {si, se});
  nl.add_output("q", q0);
  Simulator sim(nl);
  sim.set_input("d", true);
  sim.set_input("si", false);
  sim.set_input("se", false);
  sim.step();
  EXPECT_TRUE(sim.output("q"));  // functional path
  sim.set_input("se", true);
  sim.step();
  EXPECT_FALSE(sim.output("q"));  // scan path
}

class RdffFixture : public ::testing::Test {
 protected:
  RdffFixture() {
    d_ = nl_.add_input("d");
    si_ = nl_.add_input("si");
    se_ = nl_.add_input("se");
    retain_ = nl_.add_input("retain");
    const NetId q = nl_.n_dff(d_);
    flop_ = nl_.driver(q);
    nl_.convert_flop(flop_, CellType::Rdff, {si_, se_, retain_});
    nl_.set_domain(flop_, 1);
    nl_.add_output("q", q);
    sim_ = std::make_unique<Simulator>(nl_);
    sim_->set_input("se", false);
    sim_->set_input("si", false);
    sim_->set_input("retain", false);
  }

  Netlist nl_;
  NetId d_, si_, se_, retain_;
  CellId flop_;
  std::unique_ptr<Simulator> sim_;
};

TEST_F(RdffFixture, RetainSaveAndRestore) {
  sim_->set_input("d", true);
  sim_->step();
  EXPECT_TRUE(sim_->output("q"));

  // Save: RETAIN=1 edge copies master into the balloon latch.
  sim_->set_input("retain", true);
  sim_->step();
  EXPECT_TRUE(sim_->retention_state(flop_));

  // Power off: master garbage (zeros with null rng), output clamps.
  sim_->power_off(1);
  EXPECT_FALSE(sim_->output("q"));
  EXPECT_TRUE(sim_->retention_state(flop_));  // balloon survives

  // Wake and restore on RETAIN falling edge.
  sim_->power_on(1);
  sim_->set_input("retain", false);
  sim_->set_input("d", false);
  sim_->step();
  EXPECT_TRUE(sim_->output("q"));  // restored, not d
  // Next cycle behaves functionally again.
  sim_->step();
  EXPECT_FALSE(sim_->output("q"));
}

TEST_F(RdffFixture, MasterHoldsWhileRetainHigh) {
  sim_->set_input("d", true);
  sim_->step();
  sim_->set_input("retain", true);
  sim_->set_input("d", false);
  sim_->step();
  sim_->step();
  EXPECT_TRUE(sim_->output("q"));  // clock-gated during retain
}

TEST_F(RdffFixture, CorruptedBalloonRestoresWrongValue) {
  sim_->set_input("d", true);
  sim_->step();
  sim_->set_input("retain", true);
  sim_->step();
  sim_->power_off(1);
  // Rush-current upset model: flip the balloon latch while asleep.
  sim_->flip_retention(flop_);
  sim_->power_on(1);
  sim_->set_input("retain", false);
  sim_->step();
  EXPECT_FALSE(sim_->output("q"));  // restored the corrupted value
}

TEST(Simulator, PowerOffClampsAndRandomizesMasters) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  std::vector<CellId> flops;
  for (int i = 0; i < 64; ++i) {
    const NetId q = nl.n_dff(i == 0 ? d : nl.output_of(flops.back()));
    flops.push_back(nl.driver(q));
    nl.set_domain(flops.back(), 1);
  }
  nl.add_output("q", nl.output_of(flops.back()));
  Simulator sim(nl);
  sim.set_input("d", true);
  for (int i = 0; i < 64; ++i) {
    sim.step();
  }
  EXPECT_TRUE(sim.output("q"));
  Rng rng(11);
  sim.power_off(1, &rng);
  EXPECT_FALSE(sim.output("q"));  // isolation clamp
  sim.power_on(1);
  // Garbage: with 64 flops, all-ones survival is ~5e-20.
  std::size_t ones = 0;
  for (const CellId f : flops) {
    ones += sim.flop_state(f) ? 1 : 0;
  }
  EXPECT_LT(ones, 64u);
  EXPECT_GT(ones, 0u);
}

TEST(Simulator, CannotPowerOffAlwaysOn) {
  Netlist nl;
  nl.add_output("y", nl.n_dff(nl.add_input("d")));
  Simulator sim(nl);
  EXPECT_THROW(sim.power_off(kAlwaysOnDomain), Error);
}

TEST(Simulator, FlopStatesRoundTrip) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  NetId q = d;
  for (int i = 0; i < 10; ++i) {
    q = nl.n_dff(q);
  }
  nl.add_output("q", q);
  Simulator sim(nl);
  Rng rng(3);
  const BitVec states = rng.next_bits(10);
  sim.set_flop_states(states);
  EXPECT_EQ(sim.flop_states(), states);
}

TEST(Simulator, SetFlopStateSettlesCombinationalNets) {
  // Like power_off/power_on, a direct flop write leaves the simulator fully
  // consistent: downstream combinational nets reflect the new state without
  // an explicit eval()/step().
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.n_dff(d);
  const NetId y = nl.n_not(q);
  nl.add_output("y", y);
  Simulator sim(nl);
  ASSERT_TRUE(sim.net_value(y));  // q = 0 after reset
  sim.set_flop_state(nl.driver(q), true);
  EXPECT_FALSE(sim.net_value(y));  // settled immediately
  sim.set_flop_states({{nl.driver(q), false}});
  EXPECT_TRUE(sim.net_value(y));  // batch setter settles too
}

TEST(Simulator, LatchHoldsWithoutEnable) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId en = nl.add_input("en");
  const CellId latch = nl.add_cell(CellType::LatchL, {d, en});
  nl.add_output("q", nl.output_of(latch));
  Simulator sim(nl);
  sim.set_input("d", true);
  sim.set_input("en", true);
  sim.step();
  EXPECT_TRUE(sim.output("q"));
  sim.set_input("en", false);
  sim.set_input("d", false);
  sim.step();
  EXPECT_TRUE(sim.output("q"));  // held
  sim.set_input("en", true);
  sim.step();
  EXPECT_FALSE(sim.output("q"));
}

TEST(Simulator, ActivityCountsTogglesAndEnergy) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  nl.add_output("q", nl.n_dff(nl.n_not(d)));
  Simulator sim(nl);
  const TechLibrary tech = TechLibrary::st120();
  sim.reset_activity();
  for (int i = 0; i < 10; ++i) {
    sim.set_input("d", i % 2 == 0);
    sim.step();
  }
  const ActivityReport report = sim.activity(tech);
  EXPECT_EQ(report.steps, 10u);
  EXPECT_GT(report.output_toggles, 10u);  // NOT + flop both toggle
  EXPECT_GT(report.dynamic_energy_pj, 0.0);
  EXPECT_GT(report.average_power_mw(10.0), 0.0);

  sim.reset_activity();
  const ActivityReport cleared = sim.activity(tech);
  EXPECT_EQ(cleared.steps, 0u);
  EXPECT_EQ(cleared.output_toggles, 0u);
}

TEST(Simulator, IdleCircuitBurnsOnlyClockEnergy) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  nl.add_output("q", nl.n_dff(d));
  Simulator sim(nl);
  const TechLibrary tech = TechLibrary::st120();
  sim.reset_activity();
  sim.step_n(100);  // d stays 0, no data toggles
  const ActivityReport report = sim.activity(tech);
  EXPECT_EQ(report.output_toggles, 0u);
  EXPECT_GT(report.dynamic_energy_pj, 0.0);  // clock pin energy remains
}

TEST(Simulator, SetInputRejectsNonInputs) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId y = nl.n_not(a);
  nl.add_output("y", y);
  Simulator sim(nl);
  EXPECT_THROW(sim.set_input(y, true), Error);
  EXPECT_THROW(sim.set_input("nope", true), Error);
}

}  // namespace
}  // namespace retscan
