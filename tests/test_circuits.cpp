#include "circuits/fifo.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "circuits/generators.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

void drive_fifo(Simulator& sim, const FifoSpec& spec, bool wr, bool rd, const BitVec& din) {
  sim.set_input("wr_en", wr);
  sim.set_input("rd_en", rd);
  for (std::size_t b = 0; b < spec.width; ++b) {
    sim.set_input("din" + std::to_string(b), din.get(b));
  }
}

BitVec read_dout(const Simulator& sim, const FifoSpec& spec) {
  BitVec out(spec.width);
  for (std::size_t b = 0; b < spec.width; ++b) {
    out.set(b, sim.output("dout" + std::to_string(b)));
  }
  return out;
}

TEST(FifoSpec, FlopCountMatchesPaper) {
  // The paper's 32x32 FIFO: 1040 flops = 80 chains x 13.
  FifoSpec spec;
  EXPECT_EQ(spec.flop_count(), 1040u);
  EXPECT_EQ(spec.pointer_bits(), 5u);
  EXPECT_EQ(spec.counter_bits(), 6u);
}

TEST(Fifo, EmptyAndFullFlags) {
  const FifoSpec spec{4, 3};
  Netlist nl = make_fifo(spec);
  Simulator sim(nl);
  Rng rng(1);
  EXPECT_TRUE(sim.output("empty"));
  EXPECT_FALSE(sim.output("full"));
  for (int i = 0; i < 4; ++i) {
    drive_fifo(sim, spec, true, false, rng.next_bits(3));
    sim.step();
  }
  EXPECT_TRUE(sim.output("full"));
  EXPECT_FALSE(sim.output("empty"));
  // Writing into a full FIFO is ignored.
  drive_fifo(sim, spec, true, false, rng.next_bits(3));
  sim.step();
  EXPECT_TRUE(sim.output("full"));
  for (int i = 0; i < 4; ++i) {
    drive_fifo(sim, spec, false, true, BitVec(3));
    sim.step();
  }
  EXPECT_TRUE(sim.output("empty"));
}

TEST(Fifo, FirstInFirstOut) {
  const FifoSpec spec{8, 5};
  Netlist nl = make_fifo(spec);
  Simulator sim(nl);
  std::vector<BitVec> written;
  Rng rng(2);
  for (int i = 0; i < 6; ++i) {
    const BitVec word = rng.next_bits(5);
    written.push_back(word);
    drive_fifo(sim, spec, true, false, word);
    sim.step();
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(read_dout(sim, spec), written[i]) << "word " << i;
    drive_fifo(sim, spec, false, true, BitVec(5));
    sim.step();
  }
  EXPECT_TRUE(sim.output("empty"));
}

/// Randomized differential test: the gate-level FIFO must agree with the
/// behavioral FifoModel cycle by cycle under arbitrary stimulus, including
/// simultaneous read+write, overflow and underflow attempts.
class FifoDifferential : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(FifoDifferential, MatchesBehavioralModel) {
  const auto [depth, width] = GetParam();
  const FifoSpec spec{depth, width};
  Netlist nl = make_fifo(spec);
  Simulator sim(nl);
  FifoModel model(spec);
  Rng rng(depth * 131 + width);
  for (int cycle = 0; cycle < 600; ++cycle) {
    const bool wr = rng.next_bool(0.55);
    const bool rd = rng.next_bool(0.45);
    const BitVec din = rng.next_bits(width);
    // Compare observable state before the clock edge.
    EXPECT_EQ(sim.output("empty"), model.empty()) << "cycle " << cycle;
    EXPECT_EQ(sim.output("full"), model.full()) << "cycle " << cycle;
    if (!model.empty()) {
      drive_fifo(sim, spec, wr, rd, din);
      sim.eval();
      EXPECT_EQ(read_dout(sim, spec), model.front()) << "cycle " << cycle;
    }
    drive_fifo(sim, spec, wr, rd, din);
    sim.step();
    model.step(wr, rd, din);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FifoDifferential,
                         ::testing::Values(std::make_pair<std::size_t, std::size_t>(2, 1),
                                           std::make_pair<std::size_t, std::size_t>(4, 8),
                                           std::make_pair<std::size_t, std::size_t>(8, 3),
                                           std::make_pair<std::size_t, std::size_t>(16, 4),
                                           std::make_pair<std::size_t, std::size_t>(32, 2)));

TEST(Fifo, RejectsBadSpecs) {
  EXPECT_THROW(make_fifo((FifoSpec{3, 4})), Error);   // not a power of two
  EXPECT_THROW(make_fifo((FifoSpec{1, 4})), Error);   // too shallow
  EXPECT_THROW(make_fifo((FifoSpec{4, 0})), Error);   // zero width
}

TEST(FifoModel, FrontOfEmptyIsZero) {
  FifoModel model(FifoSpec{4, 4});
  EXPECT_EQ(model.front(), BitVec(4));
}

TEST(Counter, CountsWithEnable) {
  Netlist nl = make_counter(4);
  Simulator sim(nl);
  sim.set_input("en", true);
  for (int expected = 1; expected <= 20; ++expected) {
    sim.step();
    std::size_t value = 0;
    for (int b = 0; b < 4; ++b) {
      value |= static_cast<std::size_t>(sim.output("q" + std::to_string(b))) << b;
    }
    EXPECT_EQ(value, static_cast<std::size_t>(expected % 16));
  }
  // Disable freezes the count.
  sim.set_input("en", false);
  sim.step_n(5);
  std::size_t value = 0;
  for (int b = 0; b < 4; ++b) {
    value |= static_cast<std::size_t>(sim.output("q" + std::to_string(b))) << b;
  }
  EXPECT_EQ(value, 20u % 16);
}

TEST(ShiftRegister, DelaysByLength) {
  Netlist nl = make_shift_register(7);
  Simulator sim(nl);
  Rng rng(5);
  const BitVec stream = rng.next_bits(40);
  for (std::size_t i = 0; i < 40; ++i) {
    sim.set_input("sin", stream.get(i));
    sim.step();
    if (i >= 7) {
      EXPECT_EQ(sim.output("sout"), stream.get(i - 6)) << "cycle " << i;
    }
  }
}

TEST(RegisterFile, WriteThenReadBack) {
  Netlist nl = make_register_file(8, 4);
  Simulator sim(nl);
  Rng rng(9);
  std::vector<BitVec> contents(8, BitVec(4));
  for (std::size_t w = 0; w < 8; ++w) {
    contents[w] = rng.next_bits(4);
    sim.set_input("we", true);
    for (int b = 0; b < 3; ++b) {
      sim.set_input("waddr" + std::to_string(b), (w >> b) & 1);
    }
    for (int b = 0; b < 4; ++b) {
      sim.set_input("wdata" + std::to_string(b), contents[w].get(b));
    }
    sim.step();
  }
  sim.set_input("we", false);
  for (std::size_t w = 0; w < 8; ++w) {
    for (int b = 0; b < 3; ++b) {
      sim.set_input("raddr" + std::to_string(b), (w >> b) & 1);
    }
    sim.eval();
    BitVec read(4);
    for (int b = 0; b < 4; ++b) {
      read.set(b, sim.output("rdata" + std::to_string(b)));
    }
    EXPECT_EQ(read, contents[w]) << "word " << w;
  }
}

TEST(RegisteredAdder, AddsExhaustively4Bit) {
  Netlist nl = make_registered_adder(4);
  Simulator sim(nl);
  for (unsigned a = 0; a < 16; ++a) {
    for (unsigned b = 0; b < 16; b += 3) {
      for (unsigned cin = 0; cin <= 1; ++cin) {
        for (int bit = 0; bit < 4; ++bit) {
          sim.set_input("a" + std::to_string(bit), (a >> bit) & 1);
          sim.set_input("b" + std::to_string(bit), (b >> bit) & 1);
        }
        sim.set_input("cin", cin != 0);
        sim.step();  // register inputs
        sim.step();  // register outputs
        unsigned sum = 0;
        for (int bit = 0; bit < 4; ++bit) {
          sum |= static_cast<unsigned>(sim.output("sum" + std::to_string(bit))) << bit;
        }
        sum |= static_cast<unsigned>(sim.output("cout")) << 4;
        EXPECT_EQ(sum, a + b + cin) << a << "+" << b << "+" << cin;
      }
    }
  }
}

}  // namespace
}  // namespace retscan
