#include "netlist/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "core/protected_design.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

void expect_structurally_equal(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.cell_count(), b.cell_count());
  ASSERT_EQ(a.net_count(), b.net_count());
  ASSERT_EQ(a.name(), b.name());
  for (CellId id = 0; id < a.cell_count(); ++id) {
    const Cell& ca = a.cell(id);
    const Cell& cb = b.cell(id);
    ASSERT_EQ(ca.type, cb.type) << "cell " << id;
    ASSERT_EQ(ca.fanin, cb.fanin) << "cell " << id;
    ASSERT_EQ(ca.out, cb.out) << "cell " << id;
    ASSERT_EQ(ca.domain, cb.domain) << "cell " << id;
    ASSERT_EQ(ca.name, cb.name) << "cell " << id;
  }
  for (NetId net = 0; net < a.net_count(); ++net) {
    ASSERT_EQ(a.net_name(net), b.net_name(net)) << "net " << net;
  }
  ASSERT_EQ(a.inputs(), b.inputs());
  ASSERT_EQ(a.outputs(), b.outputs());
}

TEST(Serialize, RoundTripCounter) {
  const Netlist original = make_counter(8);
  std::stringstream ss;
  write_netlist(ss, original);
  const Netlist loaded = read_netlist(ss);
  expect_structurally_equal(original, loaded);
}

TEST(Serialize, RoundTripFifoSimulatesIdentically) {
  const FifoSpec spec{8, 4};
  const Netlist original = make_fifo(spec);
  std::stringstream ss;
  write_netlist(ss, original);
  const Netlist loaded = read_netlist(ss);
  expect_structurally_equal(original, loaded);

  Simulator sim_a(original);
  Simulator sim_b(loaded);
  Rng rng(3);
  for (int cycle = 0; cycle < 300; ++cycle) {
    const bool wr = rng.next_bool(0.5);
    const bool rd = rng.next_bool(0.5);
    const BitVec din = rng.next_bits(4);
    for (Simulator* sim : {&sim_a, &sim_b}) {
      sim->set_input("wr_en", wr);
      sim->set_input("rd_en", rd);
      for (int b = 0; b < 4; ++b) {
        sim->set_input("din" + std::to_string(b), din.get(b));
      }
      sim->step();
    }
    ASSERT_EQ(sim_a.output("full"), sim_b.output("full")) << cycle;
    ASSERT_EQ(sim_a.output("empty"), sim_b.output("empty")) << cycle;
    for (int b = 0; b < 4; ++b) {
      ASSERT_EQ(sim_a.output("dout" + std::to_string(b)),
                sim_b.output("dout" + std::to_string(b)))
          << cycle;
    }
  }
}

TEST(Serialize, RoundTripProtectedDesignWithDomains) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  std::stringstream ss;
  write_netlist(ss, design.netlist());
  const Netlist loaded = read_netlist(ss);
  expect_structurally_equal(design.netlist(), loaded);
  // Power-domain annotations survive.
  std::size_t gated = 0;
  for (CellId id = 0; id < loaded.cell_count(); ++id) {
    if (loaded.domain(id) == 1) {
      ++gated;
    }
  }
  EXPECT_GT(gated, 500u);  // the whole FIFO slice + its scan flops
}

TEST(Serialize, RejectsMalformedInput) {
  {
    std::stringstream ss("cell and2 0 - 5 2 0 1\n");
    EXPECT_THROW(read_netlist(ss), Error);  // cell before nets
  }
  {
    std::stringstream ss("nets 2\ncell bogus 0 - 1 1 0\n");
    EXPECT_THROW(read_netlist(ss), Error);  // unknown type
  }
  {
    std::stringstream ss("nets 2\ncell and2 0 - 1 2 0 7\n");
    EXPECT_THROW(read_netlist(ss), Error);  // fanin out of range
  }
  {
    std::stringstream ss("frobnicate\n");
    EXPECT_THROW(read_netlist(ss), Error);  // unknown keyword
  }
}

TEST(Serialize, AddCellBoundEnforcesInvariants) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId fresh = nl.add_net();
  // Binding to an already driven net must fail.
  EXPECT_THROW(nl.add_cell_bound(CellType::Not, {a}, a), Error);
  // Output cells must not claim a net.
  EXPECT_THROW(nl.add_cell_bound(CellType::Output, {a}, fresh, "y"), Error);
  // Correct usage works and preserves the net id.
  const CellId inverter = nl.add_cell_bound(CellType::Not, {a}, fresh);
  EXPECT_EQ(nl.output_of(inverter), fresh);
  EXPECT_EQ(nl.driver(fresh), inverter);
}

}  // namespace
}  // namespace retscan
