#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"
#include "util/lfsr.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.next_bool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NextBitsDensity) {
  Rng rng(6);
  const BitVec bits = rng.next_bits(10000);
  EXPECT_NEAR(static_cast<double>(bits.popcount()) / 10000.0, 0.5, 0.03);
}

TEST(Rng, SampleDistinctProperties) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_distinct(40, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (const auto v : sample) {
      EXPECT_LT(v, 40u);
    }
  }
  // Full population.
  const auto all = rng.sample_distinct(5, 5);
  EXPECT_EQ(std::set<std::size_t>(all.begin(), all.end()).size(), 5u);
  EXPECT_THROW(rng.sample_distinct(3, 4), Error);
}

TEST(Rng, DeriveStreamYieldsIndependentStreams) {
  // Deterministic in both arguments …
  EXPECT_EQ(Rng::derive_stream(42, 7), Rng::derive_stream(42, 7));
  // … distinct across dense stream indices (the parallel-shard pattern) …
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 10000; ++stream) {
    seeds.insert(Rng::derive_stream(1234, stream));
  }
  EXPECT_EQ(seeds.size(), 10000u);
  // … distinct across seeds for a fixed stream, and never a zero seed for
  // the all-zero input (an Lfsr downstream must not stall).
  EXPECT_NE(Rng::derive_stream(1, 0), Rng::derive_stream(2, 0));
  EXPECT_NE(Rng::derive_stream(0, 0), 0u);

  // Streams must not be shifted copies of each other: compare the first
  // outputs of adjacent-stream generators.
  Rng a(Rng::derive_stream(5, 0));
  Rng b(Rng::derive_stream(5, 1));
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Lfsr, RejectsBadConfig) {
  EXPECT_THROW(Lfsr(1, {0}), Error);
  EXPECT_THROW(Lfsr(4, {}), Error);
  EXPECT_THROW(Lfsr(4, {4}), Error);
  EXPECT_THROW(Lfsr(4, {3, 2}, 0), Error);  // dead state
}

class LfsrMaximalPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(LfsrMaximalPeriod, PeriodIs2ToNMinus1) {
  const unsigned width = GetParam();
  Lfsr lfsr = Lfsr::maximal(width);
  EXPECT_EQ(lfsr.period(), (std::size_t{1} << width) - 1);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrMaximalPeriod,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u,
                                           13u, 14u, 15u, 16u));

TEST(Lfsr, NeverReachesZeroState) {
  Lfsr lfsr = Lfsr::maximal(8);
  for (int i = 0; i < 300; ++i) {
    lfsr.step();
    EXPECT_NE(lfsr.state(), 0u);
  }
}

TEST(Lfsr, BitsOutputsMatchSteps) {
  Lfsr a = Lfsr::maximal(12, 0x5a5);
  Lfsr b = Lfsr::maximal(12, 0x5a5);
  const BitVec bits = a.bits(64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(bits.get(i), b.step());
  }
}

TEST(Lfsr, MaximalUnknownWidthThrows) {
  EXPECT_THROW(Lfsr::maximal(21), Error);
}

}  // namespace
}  // namespace retscan
