#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "netlist/dot.hpp"
#include "netlist/techlib.hpp"
#include "util/error.hpp"

namespace retscan {
namespace {

TEST(Netlist, AddNetAndName) {
  Netlist nl;
  const NetId a = nl.add_net("a");
  EXPECT_EQ(nl.find_net("a"), a);
  EXPECT_TRUE(nl.has_net("a"));
  EXPECT_FALSE(nl.has_net("b"));
  EXPECT_THROW(nl.add_net("a"), Error);  // duplicate
  EXPECT_THROW(nl.find_net("missing"), Error);
}

TEST(Netlist, AddCellChecksPinCount) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  EXPECT_THROW(nl.add_cell(CellType::And2, {a}), Error);
  EXPECT_THROW(nl.add_cell(CellType::Not, {a, a}), Error);
  EXPECT_NO_THROW(nl.add_cell(CellType::And2, {a, a}));
}

TEST(Netlist, DriverTracking) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.n_not(a);
  const CellId drv = nl.driver(b);
  EXPECT_EQ(nl.cell(drv).type, CellType::Not);
  EXPECT_EQ(nl.driver(a), nl.inputs()[0]);
}

TEST(Netlist, FanoutsTrackReaders) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.n_not(a);
  nl.n_buf(a);
  const auto& fo = nl.fanouts();
  EXPECT_EQ(fo[a].size(), 2u);
}

TEST(Netlist, PortBookkeeping) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.n_not(a);
  nl.add_output("y", b);
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.output_net("y"), b);
  EXPECT_THROW(nl.output_net("z"), Error);
  EXPECT_THROW(nl.add_output("y", b), Error);  // duplicate port
}

TEST(Netlist, CombinationalOrderRespectsDependencies) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId x = nl.n_and(a, b);
  const NetId y = nl.n_or(x, a);
  nl.add_output("y", y);
  const auto order = nl.combinational_order();
  ASSERT_EQ(order.size(), 3u);  // and, or, output
  // The AND must appear before the OR that reads it.
  std::size_t and_pos = 99, or_pos = 99;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (nl.cell(order[i]).type == CellType::And2) and_pos = i;
    if (nl.cell(order[i]).type == CellType::Or2) or_pos = i;
  }
  EXPECT_LT(and_pos, or_pos);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  // Build a cycle: x = AND(a, y), y = NOT(x) by rewiring.
  const NetId placeholder = nl.add_net();
  const CellId and_cell = nl.add_cell(CellType::And2, {a, placeholder});
  const NetId y = nl.n_not(nl.output_of(and_cell));
  nl.rewire_fanin(and_cell, 1, y);
  EXPECT_THROW(nl.combinational_order(), Error);
}

TEST(Netlist, FlopsBreakCycles) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  // q = DFF(XOR(q, a)) — a sequential loop must be legal.
  const NetId placeholder = nl.add_net();
  const CellId flop = nl.add_cell(CellType::Dff, {placeholder});
  const NetId x = nl.n_xor(nl.output_of(flop), a);
  nl.rewire_fanin(flop, 0, x);
  EXPECT_NO_THROW(nl.combinational_order());
  EXPECT_EQ(nl.flops().size(), 1u);
}

TEST(Netlist, ConvertFlopPreservesOutput) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId si = nl.add_input("si");
  const NetId se = nl.add_input("se");
  const NetId q = nl.n_dff(d, "ff");
  const CellId flop = nl.driver(q);
  nl.convert_flop(flop, CellType::Sdff, {si, se});
  EXPECT_EQ(nl.cell(flop).type, CellType::Sdff);
  EXPECT_EQ(nl.output_of(flop), q);
  EXPECT_EQ(nl.cell(flop).fanin.size(), 3u);
  // Cannot convert twice.
  EXPECT_THROW(nl.convert_flop(flop, CellType::Rdff, {si, se, se}), Error);
}

TEST(Netlist, ConvertFlopChecksPins) {
  Netlist nl;
  const NetId d = nl.add_input("d");
  const NetId q = nl.n_dff(d);
  EXPECT_THROW(nl.convert_flop(nl.driver(q), CellType::Sdff, {d}), Error);
  EXPECT_THROW(nl.convert_flop(nl.driver(q), CellType::And2, {d, d}), Error);
}

TEST(Netlist, XorTreeReducesAllInputs) {
  Netlist nl;
  std::vector<NetId> ins;
  for (int i = 0; i < 5; ++i) {
    ins.push_back(nl.add_input("i" + std::to_string(i)));
  }
  const NetId y = nl.n_xor_tree(ins);
  nl.add_output("y", y);
  const auto hist = nl.type_histogram();
  EXPECT_EQ(hist.at(CellType::Xor2), 4u);  // n-1 gates
  EXPECT_THROW(nl.n_xor_tree({}), Error);
}

TEST(Netlist, TypeHistogram) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.n_and(a, a);
  nl.n_and(a, a);
  nl.n_not(a);
  const auto hist = nl.type_histogram();
  EXPECT_EQ(hist.at(CellType::And2), 2u);
  EXPECT_EQ(hist.at(CellType::Not), 1u);
  EXPECT_EQ(hist.at(CellType::Input), 1u);
}

TEST(Netlist, DomainAssignment) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q = nl.n_dff(a);
  const CellId flop = nl.driver(q);
  EXPECT_EQ(nl.domain(flop), kAlwaysOnDomain);
  nl.set_domain(flop, 3);
  EXPECT_EQ(nl.domain(flop), 3);
}

TEST(TechLibrary, AreaReportSeparatesSequential) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  nl.n_dff(nl.n_and(a, a));
  const TechLibrary tech = TechLibrary::st120();
  const AreaReport report = tech.area(nl);
  EXPECT_EQ(report.flop_count, 1u);
  EXPECT_GT(report.sequential_um2, 0.0);
  EXPECT_GT(report.combinational_um2, 0.0);
  EXPECT_DOUBLE_EQ(report.total_um2, report.sequential_um2 + report.combinational_um2);
}

TEST(TechLibrary, RelativeCellCostsAreSane) {
  const TechLibrary tech = TechLibrary::st120();
  // Retention flop > scan flop > plain flop > latch > gates.
  EXPECT_GT(tech.physics(CellType::Rdff).area_um2, tech.physics(CellType::Sdff).area_um2);
  EXPECT_GT(tech.physics(CellType::Sdff).area_um2, tech.physics(CellType::Dff).area_um2);
  EXPECT_GT(tech.physics(CellType::Dff).area_um2, tech.physics(CellType::LatchL).area_um2);
  EXPECT_GT(tech.physics(CellType::LatchL).area_um2, tech.physics(CellType::Xor2).area_um2);
  // XOR costs more than NAND.
  EXPECT_GT(tech.physics(CellType::Xor2).area_um2, tech.physics(CellType::Nand2).area_um2);
  // Retention flop leaks less than a scan flop (high-Vt balloon).
  EXPECT_LT(tech.physics(CellType::Rdff).leakage_nw, tech.physics(CellType::Sdff).leakage_nw);
}

TEST(TechLibrary, LeakageByDomain) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId q1 = nl.n_dff(a);
  const NetId q2 = nl.n_dff(a);
  nl.set_domain(nl.driver(q2), 1);
  nl.add_output("q1", q1);
  const TechLibrary tech = TechLibrary::st120();
  EXPECT_GT(tech.leakage_nw(nl, kAlwaysOnDomain), 0.0);
  EXPECT_GT(tech.leakage_nw(nl, 1), 0.0);
}

TEST(Dot, ExportContainsCellsAndEdges) {
  Netlist nl("demo");
  const NetId a = nl.add_input("a");
  nl.add_output("y", nl.n_not(a));
  const std::string dot = to_dot(nl);
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("not"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Dot, TruncatesHugeNetlists) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  for (int i = 0; i < 100; ++i) {
    nl.n_not(a);
  }
  DotOptions options;
  options.max_cells = 10;
  const std::string dot = to_dot(nl, options);
  EXPECT_NE(dot.find("more cells"), std::string::npos);
}

}  // namespace
}  // namespace retscan
