// Property-based and parameterized sweeps over the full protection stack:
// invariants that must hold for every code, every chain geometry and every
// error pattern, exercised with seeded randomness.

#include <gtest/gtest.h>

#include <tuple>

#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "coding/protectors.hpp"
#include "core/protected_design.hpp"
#include "scan/scan_io.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

// ---------------------------------------------------------------------------
// Codec invariants across the whole Hamming family.

class CodecProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecProperties, EncodeIsLinear) {
  // Hamming parity is GF(2)-linear: P(a ^ b) == P(a) ^ P(b).
  const HammingCode code(GetParam());
  Rng rng(GetParam() * 17);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec a = rng.next_bits(code.k());
    const BitVec b = rng.next_bits(code.k());
    EXPECT_EQ(code.encode(a ^ b), code.encode(a) ^ code.encode(b));
  }
}

TEST_P(CodecProperties, SyndromeZeroIffCleanForRandomWords) {
  const HammingCode code(GetParam());
  Rng rng(GetParam() * 23);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec data = rng.next_bits(code.k());
    const BitVec parity = code.encode(data);
    EXPECT_EQ(code.syndrome(data, parity), 0u);
    BitVec corrupted = data;
    corrupted.flip(rng.next_below(code.k()));
    EXPECT_NE(code.syndrome(corrupted, parity), 0u);
  }
}

TEST_P(CodecProperties, DecodeNeverReportsCleanOnSingleError) {
  const HammingCode code(GetParam());
  Rng rng(GetParam() * 29);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec data = rng.next_bits(code.k());
    const BitVec parity = code.encode(data);
    BitVec corrupted = data;
    corrupted.flip(rng.next_below(code.k()));
    const auto result = code.decode(corrupted, parity);
    EXPECT_EQ(result.outcome, HammingOutcome::Corrected);
    EXPECT_EQ(corrupted, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Family, CodecProperties, ::testing::Values(3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------------
// Chain-protector invariants across geometries: (r, chains, length).

using Geometry = std::tuple<unsigned, std::size_t, std::size_t>;

class ProtectorProperties : public ::testing::TestWithParam<Geometry> {};

TEST_P(ProtectorProperties, EncodeDecodeIsIdentityOnCleanData) {
  const auto [r, chains, length] = GetParam();
  HammingChainProtector protector(HammingCode(r), chains, length);
  Rng rng(r * 1000 + chains);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BitVec> data;
    for (std::size_t c = 0; c < chains; ++c) {
      data.push_back(rng.next_bits(length));
    }
    protector.encode(data);
    const auto original = data;
    const auto stats = protector.decode_and_correct(data);
    EXPECT_FALSE(stats.any_error());
    EXPECT_EQ(data, original);
  }
}

TEST_P(ProtectorProperties, AnySingleErrorAnywhereIsCorrected) {
  const auto [r, chains, length] = GetParam();
  HammingChainProtector protector(HammingCode(r), chains, length);
  Rng rng(r * 2000 + chains);
  std::vector<BitVec> original;
  for (std::size_t c = 0; c < chains; ++c) {
    original.push_back(rng.next_bits(length));
  }
  protector.encode(original);
  for (int trial = 0; trial < 40; ++trial) {
    auto corrupted = original;
    corrupted[rng.next_below(chains)].flip(rng.next_below(length));
    const auto stats = protector.decode_and_correct(corrupted);
    EXPECT_EQ(stats.bits_corrected, 1u);
    EXPECT_EQ(corrupted, original);
  }
}

TEST_P(ProtectorProperties, ErrorsInDistinctWordsAreIndependent) {
  const auto [r, chains, length] = GetParam();
  const HammingCode code(r);
  HammingChainProtector protector(code, chains, length);
  Rng rng(r * 3000 + chains);
  std::vector<BitVec> original;
  for (std::size_t c = 0; c < chains; ++c) {
    original.push_back(rng.next_bits(length));
  }
  protector.encode(original);
  // One error per distinct position — at most one per (group, position)
  // word when we keep the chain fixed within a group.
  auto corrupted = original;
  const std::size_t groups = chains / code.k();
  std::size_t injected = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t position = rng.next_below(length);
    corrupted[g * code.k()].flip(position);
    ++injected;
  }
  const auto stats = protector.decode_and_correct(corrupted);
  EXPECT_EQ(stats.bits_corrected, injected);
  EXPECT_EQ(corrupted, original);
}

TEST_P(ProtectorProperties, SecDedNeverIncreasesDamage) {
  const auto [r, chains, length] = GetParam();
  HammingChainProtector protector(HammingCode(r), chains, length, /*extended=*/true);
  Rng rng(r * 4000 + chains);
  std::vector<BitVec> original;
  for (std::size_t c = 0; c < chains; ++c) {
    original.push_back(rng.next_bits(length));
  }
  protector.encode(original);
  for (int trial = 0; trial < 30; ++trial) {
    auto corrupted = original;
    const std::size_t errors = 1 + rng.next_below(4);
    for (std::size_t e = 0; e < errors; ++e) {
      corrupted[rng.next_below(chains)].flip(rng.next_below(length));
    }
    std::size_t damage_before = 0;
    for (std::size_t c = 0; c < chains; ++c) {
      damage_before += corrupted[c].hamming_distance(original[c]);
    }
    protector.decode_and_correct(corrupted);
    std::size_t damage_after = 0;
    for (std::size_t c = 0; c < chains; ++c) {
      damage_after += corrupted[c].hamming_distance(original[c]);
    }
    // SEC-DED corrects singles and refuses doubles; triples in one word
    // can still miscorrect (+1) but the overall-parity gate means a
    // miscorrection only happens on odd-weight words, so damage never
    // grows by more than 1 per word — bounded by the word count touched.
    EXPECT_LE(damage_after, damage_before + errors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ProtectorProperties,
    ::testing::Values(Geometry{3, 4, 13}, Geometry{3, 80, 13}, Geometry{4, 11, 7},
                      Geometry{4, 22, 20}, Geometry{5, 26, 5}, Geometry{6, 57, 3}));

// ---------------------------------------------------------------------------
// CRC invariants.

TEST(CrcProperties, LinearityOfSignatureDifference) {
  // CRC of (a ^ e) differs from CRC of a by CRC of e (affine-free, init 0):
  // detection depends only on the error pattern.
  const Crc16 crc = Crc16::ccitt();
  Rng rng(71);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec a = rng.next_bits(200);
    const BitVec e = rng.next_bits(200);
    const std::uint16_t lhs = crc.compute(a ^ e);
    const std::uint16_t rhs = static_cast<std::uint16_t>(crc.compute(a) ^ crc.compute(e));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(CrcProperties, OddWeightErrorsAlwaysDetectedByCcitt) {
  // x^16+x^12+x^5+1 does NOT contain the (x+1) factor, so this checks the
  // weaker true property: error patterns of weight 1 and weight 3 within a
  // 16-bit window are always caught (burst coverage).
  const Crc16 crc = Crc16::ccitt();
  Rng rng(73);
  const BitVec zero(128);
  for (int trial = 0; trial < 300; ++trial) {
    BitVec error(128);
    const std::size_t start = rng.next_below(128 - 16);
    const auto offsets = rng.sample_distinct(16, 3);
    for (const std::size_t o : offsets) {
      error.flip(start + o);
    }
    EXPECT_NE(crc.compute(error), crc.compute(zero));
  }
}

// ---------------------------------------------------------------------------
// Structural invariants of the protected design across configurations.

using DesignParam = std::tuple<CodeKind, std::size_t, bool>;  // kind, W, secded

class ProtectedDesignProperties : public ::testing::TestWithParam<DesignParam> {};

TEST_P(ProtectedDesignProperties, CleanCycleIsAlwaysTransparent) {
  const auto [kind, chains, secded] = GetParam();
  ProtectionConfig config;
  config.kind = kind;
  config.secded = secded;
  config.chain_count = chains;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  RetentionSession session(design);
  Rng rng(chains * 7 + (secded ? 1 : 0));
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<BitVec> state;
    for (std::size_t c = 0; c < chains; ++c) {
      state.push_back(rng.next_bits(design.chain_length()));
    }
    scan_restore(session.sim(), design.chains(), state);
    const auto outcome = session.sleep_wake_cycle({}, &rng);
    EXPECT_FALSE(outcome.errors_detected);
    EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), state);
    session.reset_fsm();
  }
}

TEST_P(ProtectedDesignProperties, SingleUpsetsNeverEscape) {
  const auto [kind, chains, secded] = GetParam();
  ProtectionConfig config;
  config.kind = kind;
  config.secded = secded;
  config.chain_count = chains;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  RetentionSession session(design);
  Rng rng(chains * 13 + (secded ? 1 : 0));
  std::vector<BitVec> state;
  for (std::size_t c = 0; c < chains; ++c) {
    state.push_back(rng.next_bits(design.chain_length()));
  }
  for (int trial = 0; trial < 10; ++trial) {
    scan_restore(session.sim(), design.chains(), state);
    const ErrorLocation upset{rng.next_below(chains),
                              rng.next_below(design.chain_length())};
    const auto outcome = session.sleep_wake_cycle({upset}, &rng);
    EXPECT_TRUE(outcome.errors_detected);  // detection is universal
    if (kind != CodeKind::CrcDetect) {
      EXPECT_TRUE(outcome.recheck_clean);
      EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), state);
    }
    session.reset_fsm();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ProtectedDesignProperties,
    ::testing::Values(DesignParam{CodeKind::HammingCorrect, 4, false},
                      DesignParam{CodeKind::HammingCorrect, 8, true},
                      DesignParam{CodeKind::CrcDetect, 8, false},
                      DesignParam{CodeKind::HammingPlusCrc, 8, false},
                      DesignParam{CodeKind::HammingPlusCrc, 16, true}));

// ---------------------------------------------------------------------------
// Scan invariants under random circuits.

TEST(ScanProperties, LoadUnloadIsIdentityForRandomGeometries) {
  Rng rng(91);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t chains = 1 + rng.next_below(6);
    const std::size_t length = 2 + rng.next_below(10);
    Netlist nl = make_shift_register(chains * length);
    ScanInsertionOptions options;
    options.chain_count = chains;
    const ScanChains sc = insert_scan(nl, options);
    Simulator sim(nl);
    sim.set_input(sc.retain, false);
    sim.set_input("sin", false);
    std::vector<BitVec> data;
    for (std::size_t c = 0; c < chains; ++c) {
      data.push_back(rng.next_bits(length));
    }
    scan_load(sim, sc, data);
    EXPECT_EQ(scan_unload(sim, sc), data) << chains << "x" << length;
  }
}

TEST(ScanProperties, EncodePassIsStatePreservingForAllFifoSizes) {
  Rng rng(97);
  for (const auto& [depth, width, chains] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{32, 1, 4},
        std::tuple<std::size_t, std::size_t, std::size_t>{32, 2, 8},
        std::tuple<std::size_t, std::size_t, std::size_t>{32, 3, 16}}) {
    ProtectionConfig config;
    config.kind = CodeKind::HammingPlusCrc;
    config.chain_count = chains;
    config.test_width = 4;
    const ProtectedDesign design(make_fifo(FifoSpec{depth, width}), config);
    RetentionSession session(design);
    std::vector<BitVec> state;
    for (std::size_t c = 0; c < chains; ++c) {
      state.push_back(rng.next_bits(design.chain_length()));
    }
    scan_restore(session.sim(), design.chains(), state);
    session.encode();
    EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), state)
        << depth << "x" << width;
  }
}

}  // namespace
}  // namespace retscan
