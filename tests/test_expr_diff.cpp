// Differential fuzzing of the assign-expression frontend: a seeded random
// generator produces expression modules over a fixed port set, the text is
// parsed and lowered through read_verilog_text + ExprSynth, and the compiled
// kernel's good-machine responses are cross-checked bit-for-bit against a
// tree-walking uint64 oracle that implements the documented semantics
// independently (docs/verilog-frontend.md). Seeds are deterministic; set
// RETSCAN_FUZZ_SEEDS to widen the sweep (CI runs 64, default 16 → 1024
// modules). On mismatch the failing output is re-emitted as a minimal
// single-assign module and dumped with the offending input vector.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "atpg/fault_sim.hpp"
#include "netlist/verilog_reader.hpp"
#include "util/bitvec.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

// --- fixed port set -------------------------------------------------------

struct Signal {
  const char* name;
  int width;
};

constexpr Signal kSignals[] = {
    {"a", 8}, {"b", 8}, {"c", 4}, {"s", 1}, {"t", 1},
};
constexpr int kSignalCount = static_cast<int>(sizeof(kSignals) / sizeof(kSignals[0]));

std::uint64_t width_mask(int width) { return (std::uint64_t{1} << width) - 1; }

// --- expression AST -------------------------------------------------------

struct Expr {
  enum class Kind { Ref, Lit, Not, And, Or, Xor, Eq, Ne, Shl, Shr, Mux, Concat };

  Kind kind = Kind::Lit;
  int width = 1;
  int sig = 0;              // Ref: index into kSignals
  int lsb = 0;              // Ref: low bit of the select
  std::uint64_t value = 0;  // Lit
  bool binary_lit = false;  // Lit: emit as 'b instead of 'd
  int amount = 0;           // Shl / Shr
  std::vector<Expr> args;
};

std::string emit(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::Ref: {
      const Signal& sig = kSignals[e.sig];
      if (e.width == sig.width && e.lsb == 0) {
        return sig.name;
      }
      if (e.width == 1) {
        return std::string(sig.name) + "[" + std::to_string(e.lsb) + "]";
      }
      return std::string(sig.name) + "[" + std::to_string(e.lsb + e.width - 1) +
             ":" + std::to_string(e.lsb) + "]";
    }
    case Expr::Kind::Lit: {
      if (!e.binary_lit) {
        return std::to_string(e.width) + "'d" + std::to_string(e.value);
      }
      std::string bits;
      for (int i = e.width - 1; i >= 0; --i) {
        bits += ((e.value >> i) & 1) ? '1' : '0';
      }
      return std::to_string(e.width) + "'b" + bits;
    }
    case Expr::Kind::Not:
      return "(~" + emit(e.args[0]) + ")";
    case Expr::Kind::And:
      return "(" + emit(e.args[0]) + " & " + emit(e.args[1]) + ")";
    case Expr::Kind::Or:
      return "(" + emit(e.args[0]) + " | " + emit(e.args[1]) + ")";
    case Expr::Kind::Xor:
      return "(" + emit(e.args[0]) + " ^ " + emit(e.args[1]) + ")";
    case Expr::Kind::Eq:
      return "(" + emit(e.args[0]) + " == " + emit(e.args[1]) + ")";
    case Expr::Kind::Ne:
      return "(" + emit(e.args[0]) + " != " + emit(e.args[1]) + ")";
    case Expr::Kind::Shl:
      return "(" + emit(e.args[0]) + " << " + std::to_string(e.amount) + ")";
    case Expr::Kind::Shr:
      return "(" + emit(e.args[0]) + " >> " + std::to_string(e.amount) + ")";
    case Expr::Kind::Mux:
      return "(" + emit(e.args[0]) + " ? " + emit(e.args[1]) + " : " +
             emit(e.args[2]) + ")";
    case Expr::Kind::Concat: {
      std::string out = "{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        out += (i ? ", " : "") + emit(e.args[i]);
      }
      return out + "}";
    }
  }
  return "";
}

/// Tree-walking oracle: the value of `e` (masked to e.width) given per-signal
/// input values. Implements the documented semantics directly — independent
/// of ExprSynth's gate lowering.
std::uint64_t eval(const Expr& e, const std::uint64_t env[kSignalCount]) {
  const std::uint64_t mask = width_mask(e.width);
  switch (e.kind) {
    case Expr::Kind::Ref:
      return (env[e.sig] >> e.lsb) & mask;
    case Expr::Kind::Lit:
      return e.value & mask;
    case Expr::Kind::Not:
      return ~eval(e.args[0], env) & mask;
    case Expr::Kind::And:
      return eval(e.args[0], env) & eval(e.args[1], env);
    case Expr::Kind::Or:
      return eval(e.args[0], env) | eval(e.args[1], env);
    case Expr::Kind::Xor:
      return eval(e.args[0], env) ^ eval(e.args[1], env);
    case Expr::Kind::Eq:
      return eval(e.args[0], env) == eval(e.args[1], env) ? 1 : 0;
    case Expr::Kind::Ne:
      return eval(e.args[0], env) != eval(e.args[1], env) ? 1 : 0;
    case Expr::Kind::Shl:
      return (eval(e.args[0], env) << e.amount) & mask;
    case Expr::Kind::Shr:
      return eval(e.args[0], env) >> e.amount;
    case Expr::Kind::Mux:
      return eval(e.args[0], env) ? eval(e.args[1], env) : eval(e.args[2], env);
    case Expr::Kind::Concat: {
      std::uint64_t acc = 0;
      for (const Expr& part : e.args) {  // MSB-first source order
        acc = (acc << part.width) | eval(part, env);
      }
      return acc;
    }
  }
  return 0;
}

// --- generator ------------------------------------------------------------

std::size_t pick(Rng& rng, std::size_t bound) { return rng.next_u64() % bound; }

Expr gen(Rng& rng, int width, int depth) {
  Expr e;
  e.width = width;
  if (depth == 0 || pick(rng, 6) == 0) {
    // Terminal: a (part-)select of a wide-enough signal, or a sized literal.
    std::vector<int> candidates;
    for (int i = 0; i < kSignalCount; ++i) {
      if (kSignals[i].width >= width) {
        candidates.push_back(i);
      }
    }
    if (!candidates.empty() && pick(rng, 3) != 0) {
      e.kind = Expr::Kind::Ref;
      e.sig = candidates[pick(rng, candidates.size())];
      e.lsb = static_cast<int>(pick(rng, kSignals[e.sig].width - width + 1));
    } else {
      e.kind = Expr::Kind::Lit;
      e.value = rng.next_u64() & width_mask(width);
      e.binary_lit = pick(rng, 2) == 0;
    }
    return e;
  }

  // Operator menu; == / != only produce one bit, concat needs two or more.
  std::vector<Expr::Kind> menu = {Expr::Kind::Not, Expr::Kind::And,
                                  Expr::Kind::Or,  Expr::Kind::Xor,
                                  Expr::Kind::Shl, Expr::Kind::Shr,
                                  Expr::Kind::Mux};
  if (width == 1) {
    menu.push_back(Expr::Kind::Eq);
    menu.push_back(Expr::Kind::Ne);
  }
  if (width >= 2) {
    menu.push_back(Expr::Kind::Concat);
  }
  e.kind = menu[pick(rng, menu.size())];
  switch (e.kind) {
    case Expr::Kind::Not:
      e.args.push_back(gen(rng, width, depth - 1));
      break;
    case Expr::Kind::And:
    case Expr::Kind::Or:
    case Expr::Kind::Xor:
      e.args.push_back(gen(rng, width, depth - 1));
      e.args.push_back(gen(rng, width, depth - 1));
      break;
    case Expr::Kind::Eq:
    case Expr::Kind::Ne: {
      const int operand_width = 1 + static_cast<int>(pick(rng, 8));
      e.args.push_back(gen(rng, operand_width, depth - 1));
      e.args.push_back(gen(rng, operand_width, depth - 1));
      break;
    }
    case Expr::Kind::Shl:
    case Expr::Kind::Shr:
      // Amounts up to the full width exercise the all-zero-fill edge.
      e.amount = static_cast<int>(pick(rng, width + 1));
      e.args.push_back(gen(rng, width, depth - 1));
      break;
    case Expr::Kind::Mux:
      e.args.push_back(gen(rng, 1, depth - 1));
      e.args.push_back(gen(rng, width, depth - 1));
      e.args.push_back(gen(rng, width, depth - 1));
      break;
    case Expr::Kind::Concat: {
      const int parts = width >= 3 && pick(rng, 2) == 0 ? 3 : 2;
      // Split `width` into MSB-first part widths, each at least one bit.
      std::vector<int> widths;
      int remaining = width;
      for (int p = parts; p > 1; --p) {
        const int w = 1 + static_cast<int>(pick(rng, remaining - (p - 1)));
        widths.push_back(w);
        remaining -= w;
      }
      widths.push_back(remaining);
      for (const int w : widths) {
        e.args.push_back(gen(rng, w, depth - 1));
      }
      break;
    }
    default:
      break;
  }
  return e;
}

// --- module assembly and checking -----------------------------------------

std::string module_text(const std::vector<Expr>& outputs) {
  std::string text = "module fuzz(";
  for (int i = 0; i < kSignalCount; ++i) {
    text += std::string(i ? ", " : "") + kSignals[i].name;
  }
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    text += ", y" + std::to_string(i);
  }
  text += ");\n";
  for (const Signal& sig : kSignals) {
    text += sig.width > 1
                ? "  input [" + std::to_string(sig.width - 1) + ":0] " + sig.name + ";\n"
                : std::string("  input ") + sig.name + ";\n";
  }
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const int w = outputs[i].width;
    text += w > 1 ? "  output [" + std::to_string(w - 1) + ":0] y" +
                        std::to_string(i) + ";\n"
                  : "  output y" + std::to_string(i) + ";\n";
  }
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    text += "  assign y" + std::to_string(i) + " = " + emit(outputs[i]) + ";\n";
  }
  text += "endmodule\n";
  return text;
}

int signal_index(const std::string& name) {
  for (int i = 0; i < kSignalCount; ++i) {
    if (name == kSignals[i].name) {
      return i;
    }
  }
  return -1;
}

/// Split a bit-blasted port label ("a[3]" / "s") into base name and bit.
std::pair<std::string, int> split_label(const std::string& label) {
  const std::size_t bracket = label.find('[');
  if (bracket == std::string::npos) {
    return {label, 0};
  }
  return {label.substr(0, bracket),
          std::stoi(label.substr(bracket + 1, label.size() - bracket - 2))};
}

struct Mismatch {
  bool found = false;
  std::size_t output = 0;   // index into the module's expression list
  std::size_t pattern = 0;  // offending input vector
};

/// Cross-check one module over `vectors` random input vectors. Returns the
/// first mismatching (output, vector) pair, if any.
Mismatch check_module(const std::vector<Expr>& outputs, Rng& rng,
                      std::size_t vectors,
                      std::vector<std::uint64_t>* failing_env) {
  const Netlist nl = read_verilog_text(module_text(outputs), "fuzz.v");
  const CombinationalFrame frame(nl);

  // Pattern bit i drives pi_nets()[i]; recover (signal, bit) from the name.
  std::vector<std::pair<int, int>> pi_map;
  for (const NetId net : frame.pi_nets()) {
    const auto [base, bit] = split_label(nl.net_name(net));
    const int sig = signal_index(base);
    EXPECT_GE(sig, 0) << "unexpected primary input " << nl.net_name(net);
    pi_map.emplace_back(sig, bit);
  }
  // Response bit i is outputs()[i]; recover (expression, bit) the same way.
  std::vector<std::pair<std::size_t, int>> po_map;
  for (const CellId id : nl.outputs()) {
    const auto [base, bit] = split_label(nl.cell(id).name);
    po_map.emplace_back(std::stoul(base.substr(1)), bit);
  }

  std::vector<std::vector<std::uint64_t>> envs(vectors);
  std::vector<BitVec> patterns;
  for (std::size_t v = 0; v < vectors; ++v) {
    envs[v].resize(kSignalCount);
    for (int i = 0; i < kSignalCount; ++i) {
      envs[v][i] = rng.next_u64() & width_mask(kSignals[i].width);
    }
    BitVec pattern(frame.pattern_width());
    for (std::size_t i = 0; i < pi_map.size(); ++i) {
      pattern.set(i, (envs[v][pi_map[i].first] >> pi_map[i].second) & 1);
    }
    patterns.push_back(std::move(pattern));
  }

  Mismatch mismatch;
  for (std::size_t v = 0; v < vectors; ++v) {
    const BitVec response = frame.good_response(patterns[v]);
    for (std::size_t i = 0; i < po_map.size(); ++i) {
      const std::uint64_t expect = eval(outputs[po_map[i].first], envs[v].data());
      if (response.get(i) !=
          (((expect >> po_map[i].second) & 1) != 0)) {
        mismatch.found = true;
        mismatch.output = po_map[i].first;
        mismatch.pattern = v;
        if (failing_env != nullptr) {
          *failing_env = envs[v];
        }
        return mismatch;
      }
    }
  }
  return mismatch;
}

std::string describe_env(const std::vector<std::uint64_t>& env) {
  std::string out;
  for (int i = 0; i < kSignalCount; ++i) {
    out += std::string(i ? " " : "") + kSignals[i].name + "=" +
           std::to_string(env[static_cast<std::size_t>(i)]);
  }
  return out;
}

std::size_t fuzz_seed_count() {
  if (const char* env = std::getenv("RETSCAN_FUZZ_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return 16;
}

// --- tests ----------------------------------------------------------------

// Hand-computed cross-checks of the oracle itself, so a bug that slipped
// into eval() cannot silently agree with an equally wrong lowering.
TEST(ExprDiff, OracleMatchesHandComputedValues) {
  Expr a_ref;
  a_ref.kind = Expr::Kind::Ref;
  a_ref.width = 8;
  a_ref.sig = 0;

  Expr shifted;
  shifted.kind = Expr::Kind::Shr;
  shifted.width = 8;
  shifted.amount = 3;
  shifted.args.push_back(a_ref);

  std::uint64_t env[kSignalCount] = {0b10110101, 0, 0, 0, 0};
  EXPECT_EQ(eval(shifted, env), 0b10110u);
  EXPECT_EQ(emit(shifted), "(a >> 3)");

  Expr cat;
  cat.kind = Expr::Kind::Concat;
  cat.width = 16;
  cat.args.push_back(a_ref);   // high byte
  cat.args.push_back(shifted); // low byte
  EXPECT_EQ(eval(cat, env), (0b10110101u << 8) | 0b10110u);
  EXPECT_EQ(emit(cat), "{a, (a >> 3)}");
}

TEST(ExprDiff, FixedSeedModuleMatchesOracle) {
  Rng rng(0xd1ff5eedULL);
  std::vector<Expr> outputs;
  outputs.push_back(gen(rng, 8, 4));
  outputs.push_back(gen(rng, 4, 4));
  outputs.push_back(gen(rng, 1, 4));
  const Mismatch mismatch = check_module(outputs, rng, 64, nullptr);
  EXPECT_FALSE(mismatch.found)
      << "fixed-seed module disagrees with the oracle:\n"
      << module_text(outputs);
}

TEST(ExprDiff, RandomModulesMatchOracle) {
  const std::size_t seeds = fuzz_seed_count();
  const std::size_t modules_per_seed = 64;
  const std::size_t vectors_per_module = 32;
  std::size_t cases = 0;

  for (std::size_t seed = 0; seed < seeds; ++seed) {
    for (std::size_t m = 0; m < modules_per_seed; ++m) {
      Rng rng(Rng::derive_stream(0xe2f0'0000 + seed, m));
      std::vector<Expr> outputs;
      outputs.push_back(gen(rng, 8, 4));
      outputs.push_back(gen(rng, 8, 3));
      outputs.push_back(gen(rng, 4, 4));
      outputs.push_back(gen(rng, 1, 5));

      std::vector<std::uint64_t> env;
      Mismatch mismatch;
      try {
        mismatch = check_module(outputs, rng, vectors_per_module, &env);
      } catch (const std::exception& error) {
        FAIL() << "generated module failed to parse (seed " << seed
               << ", module " << m << "): " << error.what() << "\n"
               << module_text(outputs);
      }
      ++cases;

      if (mismatch.found) {
        // Shrink: re-emit just the disagreeing output as its own module so
        // the dump is a standalone reproducer.
        const std::vector<Expr> shrunk = {outputs[mismatch.output]};
        ADD_FAILURE() << "kernel/oracle mismatch at seed " << seed
                      << ", module " << m << ", output y" << mismatch.output
                      << ", inputs " << describe_env(env)
                      << "\nshrunk reproducer:\n"
                      << module_text(shrunk);
        return;
      }
    }
  }
  // 16 seeds x 64 modules = 1024 differential cases by default.
  EXPECT_GE(cases, seeds * modules_per_seed);
  RecordProperty("fuzz_cases", static_cast<int>(cases));
}

}  // namespace
}  // namespace retscan
