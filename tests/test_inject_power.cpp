#include <gtest/gtest.h>

#include <set>

#include "inject/injector.hpp"
#include "power/corruption.hpp"
#include "power/pg_fsm.hpp"
#include "power/rush_current.hpp"
#include "util/error.hpp"

namespace retscan {
namespace {

TEST(ErrorInjector, SingleErrorsCoverTheFabric) {
  ErrorInjector injector(8, 13, 42);
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (int i = 0; i < 5000; ++i) {
    const ErrorLocation loc = injector.random_single();
    EXPECT_LT(loc.chain, 8u);
    EXPECT_LT(loc.position, 13u);
    seen.emplace(loc.chain, loc.position);
  }
  // LFSR-driven positions should reach (nearly) every flop.
  EXPECT_GE(seen.size(), 100u);
}

TEST(ErrorInjector, MultipleErrorsAreDistinct) {
  ErrorInjector injector(8, 13, 7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto errors = injector.random_multiple(5);
    EXPECT_EQ(errors.size(), 5u);
    std::set<std::pair<std::size_t, std::size_t>> unique;
    for (const auto& e : errors) {
      unique.emplace(e.chain, e.position);
    }
    EXPECT_EQ(unique.size(), 5u);
  }
}

TEST(ErrorInjector, BurstIsClustered) {
  ErrorInjector injector(80, 13, 9);
  for (int trial = 0; trial < 50; ++trial) {
    const auto errors = injector.clustered_burst(4, 2);
    EXPECT_EQ(errors.size(), 4u);
    // All errors within a window of span 5 (mod wrap) of each other.
    for (const auto& e : errors) {
      const auto dc = (e.chain + 80 - errors[0].chain) % 80;
      EXPECT_TRUE(dc <= 4 || dc >= 76) << "chain spread too wide: " << dc;
    }
  }
}

TEST(ErrorInjector, RejectsOversizedRequests) {
  ErrorInjector injector(2, 3, 1);
  EXPECT_THROW(injector.random_multiple(7), Error);
  EXPECT_THROW(injector.clustered_burst(7), Error);
}

TEST(RushCurrent, UnderdampedDefaultsRingAndSettle) {
  const RushCurrentModel model{RushParameters{}};
  EXPECT_TRUE(model.underdamped());
  // Voltage starts at 0 and converges to Vdd.
  EXPECT_NEAR(model.domain_voltage(0.0), 0.0, 1e-9);
  EXPECT_NEAR(model.domain_voltage(10000.0), 1.2, 1e-3);
  // Underdamped response overshoots Vdd at some point.
  double peak_v = 0;
  for (int i = 1; i < 2000; ++i) {
    peak_v = std::max(peak_v, model.domain_voltage(i * 0.5));
  }
  EXPECT_GT(peak_v, 1.2);
  EXPECT_GT(model.peak_current(), 0.0);
  EXPECT_GT(model.peak_droop(), 0.0);
  EXPECT_GT(model.settle_time_ns(0.05), 0.0);
}

TEST(RushCurrent, StaggeringReducesPeakAndStretchesSettle) {
  RushParameters fast;
  RushParameters staged = fast;
  staged.stagger_stages = 4;
  const RushCurrentModel m1{fast};
  const RushCurrentModel m4{staged};
  EXPECT_NEAR(m4.peak_droop(), m1.peak_droop() / 4.0, 1e-9);
  EXPECT_NEAR(m4.peak_current(), m1.peak_current() / 4.0, 1e-9);
  EXPECT_GT(m4.settle_time_ns(), m1.settle_time_ns());
}

TEST(RushCurrent, MoreResistanceMoreDamping) {
  RushParameters soft;
  soft.resistance_ohm = 5.0;
  const RushCurrentModel damped{soft};
  RushParameters hard;
  hard.resistance_ohm = 0.1;
  const RushCurrentModel ringing{hard};
  EXPECT_GT(damped.damping_ratio(), ringing.damping_ratio());
  EXPECT_GT(ringing.peak_droop(), damped.peak_droop());
}

TEST(RushCurrent, RejectsBadParameters) {
  RushParameters bad;
  bad.capacitance_nf = 0.0;
  EXPECT_THROW(RushCurrentModel{bad}, Error);
  RushParameters zero_stage;
  zero_stage.stagger_stages = 0;
  EXPECT_THROW(RushCurrentModel{zero_stage}, Error);
}

TEST(Corruption, ProbabilityGrowsWithDroop) {
  RushParameters mild;
  mild.resistance_ohm = 4.0;  // heavily damped, small droop
  RushParameters severe;
  severe.resistance_ohm = 0.05;  // ringing, large droop
  const CorruptionParameters params;
  const CorruptionModel low(params, RushCurrentModel{mild});
  const CorruptionModel high(params, RushCurrentModel{severe});
  EXPECT_LT(low.upset_probability(), high.upset_probability());
  EXPECT_GE(low.upset_probability(), 0.0);
  EXPECT_LE(high.upset_probability(), params.vulnerability + 1e-12);
}

TEST(Corruption, StaggeredBaselineLowersUpsetRate) {
  RushParameters raw;
  raw.resistance_ohm = 0.2;
  RushParameters staged = raw;
  staged.stagger_stages = 8;
  const CorruptionParameters params;
  const CorruptionModel fast(params, RushCurrentModel{raw});
  const CorruptionModel slow(params, RushCurrentModel{staged});
  EXPECT_LT(slow.upset_probability(), fast.upset_probability());
}

TEST(Corruption, SampleCountTracksExpectation) {
  RushParameters severe;
  severe.resistance_ohm = 0.05;
  CorruptionParameters params;
  params.vulnerability = 0.05;
  const CorruptionModel model(params, RushCurrentModel{severe});
  Rng rng(21);
  double total = 0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(model.sample(80, 13, rng).size());
  }
  const double mean = total / trials;
  EXPECT_NEAR(mean, model.expected_upsets(1040), model.expected_upsets(1040) * 0.25 + 1.0);
}

TEST(Corruption, SampledLocationsDistinctAndInRange) {
  RushParameters severe;
  severe.resistance_ohm = 0.05;
  CorruptionParameters params;
  params.vulnerability = 0.03;
  const CorruptionModel model(params, RushCurrentModel{severe});
  Rng rng(22);
  for (int trial = 0; trial < 50; ++trial) {
    const auto errors = model.sample(16, 13, rng);
    std::set<std::pair<std::size_t, std::size_t>> unique;
    for (const auto& e : errors) {
      EXPECT_LT(e.chain, 16u);
      EXPECT_LT(e.position, 13u);
      unique.emplace(e.chain, e.position);
    }
    EXPECT_EQ(unique.size(), errors.size());
  }
}

TEST(PgFsm, ConventionalSkipsCoding) {
  PgControllerFsm fsm(PgControllerFsm::Flavor::Conventional);
  EXPECT_EQ(fsm.state(), PgState::Active);
  fsm.on_event(PgEvent::SleepRequest);
  EXPECT_EQ(fsm.state(), PgState::SleepEntry);  // no Encoding stop
  fsm.on_event(PgEvent::SequenceDone);
  EXPECT_EQ(fsm.state(), PgState::Sleep);
  fsm.on_event(PgEvent::WakeRequest);
  EXPECT_EQ(fsm.state(), PgState::WakeUp);
  fsm.on_event(PgEvent::SequenceDone);
  EXPECT_EQ(fsm.state(), PgState::Active);  // no Decoding stop
}

TEST(PgFsm, ProposedFullPathThroughCorrection) {
  PgControllerFsm fsm(PgControllerFsm::Flavor::Proposed);
  fsm.on_event(PgEvent::SleepRequest);
  EXPECT_EQ(fsm.state(), PgState::Encoding);
  fsm.on_event(PgEvent::SequenceDone);
  EXPECT_EQ(fsm.state(), PgState::SleepEntry);
  fsm.on_event(PgEvent::SequenceDone);
  EXPECT_EQ(fsm.state(), PgState::Sleep);
  fsm.on_event(PgEvent::WakeRequest);
  fsm.on_event(PgEvent::SequenceDone);
  EXPECT_EQ(fsm.state(), PgState::Decoding);
  fsm.on_event(PgEvent::ErrorsDetected);
  EXPECT_EQ(fsm.state(), PgState::Correcting);
  fsm.on_event(PgEvent::Corrected);
  EXPECT_EQ(fsm.state(), PgState::Active);
}

TEST(PgFsm, UncorrectableFlagsError) {
  PgControllerFsm fsm(PgControllerFsm::Flavor::Proposed);
  fsm.on_event(PgEvent::SleepRequest);
  fsm.on_event(PgEvent::SequenceDone);
  fsm.on_event(PgEvent::SequenceDone);
  fsm.on_event(PgEvent::WakeRequest);
  fsm.on_event(PgEvent::SequenceDone);
  fsm.on_event(PgEvent::Uncorrectable);
  EXPECT_EQ(fsm.state(), PgState::ErrorFlagged);
  // Terminal until reset.
  fsm.on_event(PgEvent::SleepRequest);
  EXPECT_EQ(fsm.state(), PgState::ErrorFlagged);
  fsm.reset();
  EXPECT_EQ(fsm.state(), PgState::Active);
}

TEST(PgFsm, IllegalEventsIgnored) {
  PgControllerFsm fsm(PgControllerFsm::Flavor::Proposed);
  fsm.on_event(PgEvent::WakeRequest);  // not asleep
  EXPECT_EQ(fsm.state(), PgState::Active);
  fsm.on_event(PgEvent::Corrected);
  EXPECT_EQ(fsm.state(), PgState::Active);
  EXPECT_EQ(fsm.history().size(), 1u);
}

TEST(PgFsm, HistoryRecordsPath) {
  PgControllerFsm fsm(PgControllerFsm::Flavor::Proposed);
  fsm.on_event(PgEvent::SleepRequest);
  fsm.on_event(PgEvent::SequenceDone);
  const auto& history = fsm.history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0], PgState::Active);
  EXPECT_EQ(history[1], PgState::Encoding);
  EXPECT_EQ(history[2], PgState::SleepEntry);
  EXPECT_EQ(pg_state_name(history[1]), "encoding");
}

}  // namespace
}  // namespace retscan
