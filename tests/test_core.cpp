#include "core/protected_design.hpp"

#include <gtest/gtest.h>

#include "circuits/fifo.hpp"
#include "coding/protectors.hpp"
#include "netlist/techlib.hpp"
#include "scan/scan_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

/// Small FIFO with 80 flops (32 words x 2 bits + 2x5 pointer + 6 counter):
/// divisible into 8 chains of 10 — Hamming(7,4) groups of 4 chains and
/// CRC groups of 4 chains both fit, as does a test width of 4.
ProtectedDesign make_design(CodeKind kind) {
  ProtectionConfig config;
  config.kind = kind;
  config.chain_count = 8;
  config.test_width = 4;
  return ProtectedDesign(make_fifo(FifoSpec{32, 2}), config);
}

/// Fill the FIFO with random words so its state is interesting.
void randomize_state(RetentionSession& session, Rng& rng) {
  Simulator& sim = session.sim();
  sim.set_input("rd_en", false);
  for (int i = 0; i < 20; ++i) {
    sim.set_input("wr_en", true);
    sim.set_input("din0", rng.next_bool(0.5));
    sim.set_input("din1", rng.next_bool(0.5));
    sim.step();
  }
  sim.set_input("wr_en", false);
  sim.eval();
}

TEST(ProtectedDesign, ConstructionGeometry) {
  const ProtectedDesign design = make_design(CodeKind::HammingCorrect);
  EXPECT_EQ(design.chains().chain_count(), 8u);
  EXPECT_EQ(design.chain_length(), 10u);
  EXPECT_EQ(design.flop_count(), 80u);
  // All monitor cells are always-on; all base flops are gated.
  const Netlist& nl = design.netlist();
  for (const CellId flop : nl.flops()) {
    if (nl.cell(flop).type == CellType::Rdff) {
      EXPECT_EQ(nl.domain(flop), 1);
    } else {
      EXPECT_EQ(nl.domain(flop), kAlwaysOnDomain);  // parity/crc storage
    }
  }
}

TEST(ProtectedDesign, AreaAccountingSplitsBaseAndMonitor) {
  const TechLibrary tech = TechLibrary::st120();
  const ProtectedDesign hamming = make_design(CodeKind::HammingCorrect);
  const ProtectedDesign crc = make_design(CodeKind::CrcDetect);
  EXPECT_GT(hamming.base_area(tech).total_um2, 0.0);
  EXPECT_GT(hamming.monitor_area(tech).total_um2, 0.0);
  EXPECT_GT(hamming.overhead_percent(tech), 0.0);
  // Hamming monitors (parity memory!) cost more than the single wide CRC
  // block — the contrast of Tables I vs II. (At this toy scale, l = 10,
  // the gap is small; the bench over the real 32x32 FIFO shows ~10x.)
  EXPECT_GT(hamming.overhead_percent(tech), crc.overhead_percent(tech));
  // Base area is identical across code kinds.
  EXPECT_DOUBLE_EQ(hamming.base_area(tech).total_um2, crc.base_area(tech).total_um2);
}

TEST(ProtectedDesign, EncodePreservesState) {
  const ProtectedDesign design = make_design(CodeKind::HammingPlusCrc);
  RetentionSession session(design);
  Rng rng(1);
  randomize_state(session, rng);
  const auto before = scan_snapshot(session.sim(), design.chains());
  session.encode();
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), before);
}

TEST(ProtectedDesign, CleanSleepWakeCyclePreservesState) {
  const ProtectedDesign design = make_design(CodeKind::HammingPlusCrc);
  RetentionSession session(design);
  Rng rng(2);
  randomize_state(session, rng);
  const auto before = scan_snapshot(session.sim(), design.chains());
  const auto outcome = session.sleep_wake_cycle({}, &rng);
  EXPECT_FALSE(outcome.errors_detected);
  EXPECT_TRUE(outcome.recheck_clean);
  EXPECT_EQ(outcome.final_state, PgState::Active);
  EXPECT_EQ(outcome.decode_passes, 1u);
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), before);
}

TEST(ProtectedDesign, SingleUpsetDetectedAndCorrected) {
  const ProtectedDesign design = make_design(CodeKind::HammingPlusCrc);
  RetentionSession session(design);
  Rng rng(3);
  randomize_state(session, rng);
  const auto before = scan_snapshot(session.sim(), design.chains());
  const auto outcome = session.sleep_wake_cycle({ErrorLocation{3, 7}}, &rng);
  EXPECT_TRUE(outcome.errors_detected);
  EXPECT_TRUE(outcome.recheck_clean);
  EXPECT_EQ(outcome.final_state, PgState::Active);
  EXPECT_EQ(outcome.decode_passes, 2u);
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), before);
}

/// The paper's experiment 1 at integration scale: every possible single
/// retention upset in the design is corrected.
TEST(ProtectedDesign, EverySingleUpsetLocationCorrected) {
  const ProtectedDesign design = make_design(CodeKind::HammingCorrect);
  RetentionSession session(design);
  Rng rng(4);
  randomize_state(session, rng);
  const auto before = scan_snapshot(session.sim(), design.chains());
  for (std::size_t chain = 0; chain < 8; ++chain) {
    for (std::size_t pos = 0; pos < 10; ++pos) {
      const auto outcome =
          session.sleep_wake_cycle({ErrorLocation{chain, pos}}, nullptr);
      ASSERT_TRUE(outcome.errors_detected) << chain << "," << pos;
      ASSERT_TRUE(outcome.recheck_clean) << chain << "," << pos;
      ASSERT_EQ(scan_snapshot(session.sim(), design.chains()), before)
          << chain << "," << pos;
    }
  }
}

TEST(ProtectedDesign, ScatteredUpsetsInDistinctWordsCorrected) {
  const ProtectedDesign design = make_design(CodeKind::HammingPlusCrc);
  RetentionSession session(design);
  Rng rng(5);
  randomize_state(session, rng);
  const auto before = scan_snapshot(session.sim(), design.chains());
  // Three upsets in three distinct (group, position) words.
  const std::vector<ErrorLocation> upsets = {
      {0, 2}, {5, 7}, {2, 9}};
  const auto outcome = session.sleep_wake_cycle(upsets, &rng);
  EXPECT_TRUE(outcome.errors_detected);
  EXPECT_TRUE(outcome.recheck_clean);
  EXPECT_EQ(outcome.final_state, PgState::Active);
  EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), before);
}

/// The paper's experiment 2: clustered burst errors land in the same
/// codeword; Hamming cannot repair them but the CRC arm flags the state as
/// uncorrectable instead of silently accepting a miscorrection.
TEST(ProtectedDesign, ClusteredBurstFlaggedUncorrectable) {
  const ProtectedDesign design = make_design(CodeKind::HammingPlusCrc);
  RetentionSession session(design);
  Rng rng(6);
  randomize_state(session, rng);
  const auto before = scan_snapshot(session.sim(), design.chains());
  // Two upsets in the same Hamming word (chains 0 and 2 are in group 0;
  // same position -> same codeword).
  const std::vector<ErrorLocation> burst = {{0, 4}, {2, 4}};
  const auto outcome = session.sleep_wake_cycle(burst, &rng);
  EXPECT_TRUE(outcome.errors_detected);
  EXPECT_FALSE(outcome.recheck_clean);
  EXPECT_EQ(outcome.final_state, PgState::ErrorFlagged);
  EXPECT_NE(scan_snapshot(session.sim(), design.chains()), before);
}

TEST(ProtectedDesign, CrcOnlyDetectsButNeverCorrects) {
  const ProtectedDesign design = make_design(CodeKind::CrcDetect);
  RetentionSession session(design);
  Rng rng(7);
  randomize_state(session, rng);
  const auto outcome = session.sleep_wake_cycle({ErrorLocation{1, 1}}, &rng);
  EXPECT_TRUE(outcome.errors_detected);
  EXPECT_FALSE(outcome.recheck_clean);
  EXPECT_EQ(outcome.final_state, PgState::ErrorFlagged);
  EXPECT_EQ(outcome.decode_passes, 1u);
}

TEST(ProtectedDesign, FsmHistoryMatchesFigure3b) {
  const ProtectedDesign design = make_design(CodeKind::HammingCorrect);
  RetentionSession session(design);
  Rng rng(8);
  randomize_state(session, rng);
  session.sleep_wake_cycle({ErrorLocation{0, 0}}, &rng);
  const auto& history = session.fsm().history();
  const std::vector<PgState> expected = {
      PgState::Active,    PgState::Encoding,  PgState::SleepEntry,
      PgState::Sleep,     PgState::WakeUp,    PgState::Decoding,
      PgState::Correcting, PgState::Active};
  EXPECT_EQ(history, expected);
}

/// Structural decode must agree bit-for-bit with the behavioral
/// HammingChainProtector — including miscorrections on multi-error words.
TEST(ProtectedDesign, StructuralMatchesBehavioralProtector) {
  const ProtectedDesign design = make_design(CodeKind::HammingCorrect);
  RetentionSession session(design);
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    randomize_state(session, rng);
    const auto reference = scan_snapshot(session.sim(), design.chains());

    // Behavioral model.
    HammingChainProtector protector(HammingCode::h7_4(), 8, 10);
    protector.encode(reference);
    auto behavioral = reference;
    const std::size_t error_count = 1 + rng.next_below(4);
    std::vector<ErrorLocation> upsets;
    for (std::size_t i = 0; i < error_count; ++i) {
      ErrorLocation loc{rng.next_below(8), rng.next_below(10)};
      if (std::find(upsets.begin(), upsets.end(), loc) == upsets.end()) {
        upsets.push_back(loc);
      }
    }
    ErrorInjector::flip_chain_data(behavioral, upsets);
    protector.decode_and_correct(behavioral);

    // Structural model.
    session.sleep_wake_cycle(upsets, nullptr);
    EXPECT_EQ(scan_snapshot(session.sim(), design.chains()), behavioral)
        << "trial " << trial;
    // Re-sync the design state for the next trial.
    scan_restore(session.sim(), design.chains(), reference);
  }
}

/// Manufacturing test through the Fig. 5(b) concatenation: with test_mode
/// high, the 8 chains behave as 4 chains of length 20; a pattern shifted in
/// through tsi comes back out of tso intact after a full traversal.
TEST(ProtectedDesign, TestModeConcatenationShiftsThrough) {
  const ProtectedDesign design = make_design(CodeKind::HammingPlusCrc);
  RetentionSession session(design);
  Simulator& sim = session.sim();
  const std::size_t concat_len =
      design.test_config().concatenated_length(design.chain_length());
  ASSERT_EQ(concat_len, 20u);

  Rng rng(10);
  std::vector<BitVec> streams;
  for (int g = 0; g < 4; ++g) {
    streams.push_back(rng.next_bits(concat_len));
  }
  sim.set_input(design.chains().se, true);
  sim.set_input("test_mode", true);
  sim.set_input("retain", false);
  // Load the full concatenated length.
  for (std::size_t t = 0; t < concat_len; ++t) {
    for (int g = 0; g < 4; ++g) {
      sim.set_input("tsi" + std::to_string(g), streams[g].get(t));
    }
    sim.step();
  }
  // Unload while shifting zeros behind; first-in bit emerges first.
  for (std::size_t t = 0; t < concat_len; ++t) {
    for (int g = 0; g < 4; ++g) {
      sim.set_input("tsi" + std::to_string(g), false);
      EXPECT_EQ(sim.output("tso" + std::to_string(g)), streams[g].get(t))
          << "group " << g << " cycle " << t;
    }
    sim.step();
  }
}

TEST(ProtectedDesign, ActivityMeasurementProducesSaneNumbers) {
  const TechLibrary tech = TechLibrary::st120();
  const ProtectedDesign design = make_design(CodeKind::HammingCorrect);
  RetentionSession session(design);
  Rng rng(11);
  randomize_state(session, rng);
  const ActivityReport enc = session.measure_encode(tech);
  EXPECT_EQ(enc.steps, design.chain_length() + 1);  // + clear strobe
  EXPECT_GT(enc.dynamic_energy_pj, 0.0);
  const double power_mw = enc.average_power_mw(10.0);  // 100 MHz
  EXPECT_GT(power_mw, 0.1);
  EXPECT_LT(power_mw, 100.0);
}

TEST(ProtectedDesign, RejectsGeometryMismatches) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingCorrect;
  config.chain_count = 10;  // not a multiple of k=4
  config.test_width = 5;
  EXPECT_THROW(ProtectedDesign(make_fifo(FifoSpec{32, 2}), config), Error);
}

}  // namespace
}  // namespace retscan
