#include "scan/scan_insert.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "scan/scan_io.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

TEST(ScanInsert, ChainPartitioning) {
  Netlist nl = make_counter(12);
  ScanInsertionOptions options;
  options.chain_count = 3;
  const ScanChains chains = insert_scan(nl, options);
  EXPECT_EQ(chains.chain_count(), 3u);
  EXPECT_EQ(chains.length(), 4u);
  EXPECT_EQ(chains.flop_count(), 12u);
  // Every flop now has a scan variant.
  for (const CellId flop : nl.flops()) {
    EXPECT_EQ(nl.cell(flop).type, CellType::Rdff);
    EXPECT_EQ(nl.domain(flop), options.gated_domain);
  }
}

TEST(ScanInsert, LocateIsConsistent) {
  Netlist nl = make_counter(12);
  ScanInsertionOptions options;
  options.chain_count = 4;
  const ScanChains chains = insert_scan(nl, options);
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::size_t p = 0; p < 3; ++p) {
      const CellId flop = chains.at(c, p);
      const auto [cc, pp] = chains.locate(flop);
      EXPECT_EQ(cc, c);
      EXPECT_EQ(pp, p);
    }
  }
}

TEST(ScanInsert, InterleavedAssignment) {
  Netlist nl = make_counter(8);
  const auto flops_before = nl.flops();
  ScanInsertionOptions options;
  options.chain_count = 2;
  options.assignment = ChainAssignment::Interleaved;
  const ScanChains chains = insert_scan(nl, options);
  // Flop i lands in chain i % 2 at position i / 2.
  for (std::size_t i = 0; i < 8; ++i) {
    const auto [c, p] = chains.locate(flops_before[i]);
    EXPECT_EQ(c, i % 2);
    EXPECT_EQ(p, i / 2);
  }
}

TEST(ScanInsert, RejectsBadConfigs) {
  {
    Netlist nl = make_counter(10);
    ScanInsertionOptions options;
    options.chain_count = 4;  // 10 % 4 != 0
    EXPECT_THROW(insert_scan(nl, options), Error);
  }
  {
    Netlist nl = make_counter(4);
    ScanInsertionOptions options;
    options.chain_count = 5;  // more chains than flops
    EXPECT_THROW(insert_scan(nl, options), Error);
  }
  {
    Netlist nl = make_counter(4);
    ScanInsertionOptions options;
    options.chain_count = 2;
    insert_scan(nl, options);
    EXPECT_THROW(insert_scan(nl, options), Error);  // already scanned
  }
}

TEST(ScanInsert, ScanStyleUsesSdffWithoutRetain) {
  Netlist nl = make_counter(6);
  ScanInsertionOptions options;
  options.chain_count = 2;
  options.style = ScanStyle::Scan;
  const ScanChains chains = insert_scan(nl, options);
  EXPECT_EQ(chains.retain, kNullNet);
  for (const CellId flop : nl.flops()) {
    EXPECT_EQ(nl.cell(flop).type, CellType::Sdff);
  }
}

/// The DFT guarantee: with se=0 the scanned design behaves exactly like the
/// original. Compare a scanned counter against a pristine one cycle by
/// cycle.
TEST(ScanInsert, FunctionPreservedWhenScanDisabled) {
  Netlist plain = make_counter(8);
  Netlist scanned = make_counter(8);
  ScanInsertionOptions options;
  options.chain_count = 2;
  const ScanChains chains = insert_scan(scanned, options);
  Simulator sim_plain(plain);
  Simulator sim_scanned(scanned);
  sim_scanned.set_input(chains.se, false);
  sim_scanned.set_input(chains.retain, false);
  Rng rng(17);
  for (int cycle = 0; cycle < 200; ++cycle) {
    const bool en = rng.next_bool(0.7);
    sim_plain.set_input("en", en);
    sim_scanned.set_input("en", en);
    sim_plain.step();
    sim_scanned.step();
    for (int b = 0; b < 8; ++b) {
      const std::string port = "q" + std::to_string(b);
      ASSERT_EQ(sim_plain.output(port), sim_scanned.output(port))
          << "cycle " << cycle << " bit " << b;
    }
  }
}

class ScanIoFixture : public ::testing::Test {
 protected:
  ScanIoFixture() : nl_(make_counter(12)) {
    ScanInsertionOptions options;
    options.chain_count = 3;
    chains_ = insert_scan(nl_, options);
    sim_ = std::make_unique<Simulator>(nl_);
    sim_->set_input(chains_.retain, false);
    sim_->set_input("en", false);
  }

  Netlist nl_;
  ScanChains chains_;
  std::unique_ptr<Simulator> sim_;
};

TEST_F(ScanIoFixture, LoadThenSnapshotMatches) {
  Rng rng(23);
  std::vector<BitVec> data;
  for (int c = 0; c < 3; ++c) {
    data.push_back(rng.next_bits(4));
  }
  scan_load(*sim_, chains_, data);
  EXPECT_EQ(scan_snapshot(*sim_, chains_), data);
}

TEST_F(ScanIoFixture, LoadThenUnloadRoundTrip) {
  Rng rng(29);
  std::vector<BitVec> data;
  for (int c = 0; c < 3; ++c) {
    data.push_back(rng.next_bits(4));
  }
  scan_load(*sim_, chains_, data);
  const auto unloaded = scan_unload(*sim_, chains_);
  EXPECT_EQ(unloaded, data);
}

TEST_F(ScanIoFixture, UnloadWithRefillLeavesRefillBehind) {
  Rng rng(31);
  std::vector<BitVec> data, refill;
  for (int c = 0; c < 3; ++c) {
    data.push_back(rng.next_bits(4));
    refill.push_back(rng.next_bits(4));
  }
  scan_load(*sim_, chains_, data);
  const auto unloaded = scan_unload(*sim_, chains_, refill);
  EXPECT_EQ(unloaded, data);
  EXPECT_EQ(scan_snapshot(*sim_, chains_), refill);
}

TEST_F(ScanIoFixture, RestoreWritesDirectly) {
  Rng rng(37);
  std::vector<BitVec> data;
  for (int c = 0; c < 3; ++c) {
    data.push_back(rng.next_bits(4));
  }
  scan_restore(*sim_, chains_, data);
  EXPECT_EQ(scan_snapshot(*sim_, chains_), data);
}

TEST(ScanIo, FlattenUnflattenRoundTrip) {
  Rng rng(41);
  std::vector<BitVec> data;
  for (int c = 0; c < 5; ++c) {
    data.push_back(rng.next_bits(7));
  }
  const BitVec flat = flatten_chain_data(data);
  EXPECT_EQ(flat.size(), 35u);
  EXPECT_EQ(unflatten_chain_data(flat, 5), data);
  EXPECT_THROW(unflatten_chain_data(flat, 4), Error);
}

/// Circulating a chain for exactly l cycles returns every bit to its
/// original position — the property the paper's encode/decode passes rely
/// on. This is the loopback the monitor muxes implement; here we emulate it
/// through scan_shift_cycle.
TEST_F(ScanIoFixture, CirculationRoundTrip) {
  Rng rng(43);
  std::vector<BitVec> data;
  for (int c = 0; c < 3; ++c) {
    data.push_back(rng.next_bits(4));
  }
  scan_restore(*sim_, chains_, data);
  for (std::size_t t = 0; t < chains_.length(); ++t) {
    const BitVec so = scan_outs(*sim_, chains_);
    scan_shift_cycle(*sim_, chains_, so);  // feed so back into si
  }
  EXPECT_EQ(scan_snapshot(*sim_, chains_), data);
}

TEST(TestConcat, GroupsAreStrided) {
  const TestModeConfig config = make_test_concatenation(16, 4);
  ASSERT_EQ(config.groups.size(), 4u);
  // Fig. 5(b): group g = {g, g+4, g+8, g+12}.
  for (std::size_t g = 0; g < 4; ++g) {
    ASSERT_EQ(config.groups[g].size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(config.groups[g][i], g + 4 * i);
    }
  }
  EXPECT_EQ(config.concatenated_length(13), 52u);
}

TEST(TestConcat, RejectsIndivisible) {
  EXPECT_THROW(make_test_concatenation(10, 4), Error);
  EXPECT_THROW(make_test_concatenation(4, 0), Error);
  EXPECT_THROW(make_test_concatenation(4, 8), Error);
}

/// The paper's Section III speed-up example: 128 flops, 4 chains -> 32
/// encode cycles; 16 chains -> 8 cycles (4x speed-up).
TEST(ScanInsert, SectionThreeSpeedupExample) {
  Netlist nl4 = make_shift_register(128);
  ScanInsertionOptions four;
  four.chain_count = 4;
  EXPECT_EQ(insert_scan(nl4, four).length(), 32u);

  Netlist nl16 = make_shift_register(128);
  ScanInsertionOptions sixteen;
  sixteen.chain_count = 16;
  EXPECT_EQ(insert_scan(nl16, sixteen).length(), 8u);
}

}  // namespace
}  // namespace retscan
