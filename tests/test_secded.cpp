#include "coding/secded.hpp"

#include <gtest/gtest.h>

#include "circuits/fifo.hpp"
#include "coding/protectors.hpp"
#include "core/protected_design.hpp"
#include "scan/scan_io.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

TEST(SecDed, Parameters) {
  const SecDedCode code = SecDedCode::s8_4();
  EXPECT_EQ(code.k(), 4u);
  EXPECT_EQ(code.check_bits(), 4u);  // 3 Hamming + 1 overall
  EXPECT_EQ(code.name(), "SEC-DED(8,4)");
}

class SecDedCodes : public ::testing::TestWithParam<unsigned> {};

TEST_P(SecDedCodes, CleanAndSingleErrors) {
  const SecDedCode code(GetParam());
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec original = rng.next_bits(code.k());
    const BitVec check = code.encode(original);
    {
      BitVec received = original;
      EXPECT_EQ(code.decode(received, check).outcome, SecDedOutcome::Clean);
      EXPECT_EQ(received, original);
    }
    for (std::size_t bit = 0; bit < code.k(); ++bit) {
      BitVec received = original;
      received.flip(bit);
      const auto result = code.decode(received, check);
      EXPECT_EQ(result.outcome, SecDedOutcome::Corrected);
      EXPECT_EQ(result.corrected_data_bit, bit);
      EXPECT_EQ(received, original);
    }
  }
}

TEST_P(SecDedCodes, EveryDoubleErrorDetectedNeverMiscorrected) {
  const SecDedCode code(GetParam());
  Rng rng(100 + GetParam());
  const BitVec original = rng.next_bits(code.k());
  const BitVec check = code.encode(original);
  for (std::size_t i = 0; i < code.k(); ++i) {
    for (std::size_t j = i + 1; j < code.k(); ++j) {
      BitVec received = original;
      received.flip(i);
      received.flip(j);
      const BitVec as_received = received;
      const auto result = code.decode(received, check);
      EXPECT_EQ(result.outcome, SecDedOutcome::DoubleError) << i << "," << j;
      // Crucially: the word is untouched — no third error introduced.
      EXPECT_EQ(received, as_received);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Family, SecDedCodes, ::testing::Values(3u, 4u, 5u, 6u));

TEST(SecDed, TripleErrorsAreFlaggedOrMiscorrected) {
  // SEC-DED guarantees stop at double errors; triples (odd weight) either
  // miscorrect or land on MultiError — but are never reported Clean.
  const SecDedCode code = SecDedCode::s8_4();
  Rng rng(7);
  const BitVec original = rng.next_bits(4);
  const BitVec check = code.encode(original);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      for (std::size_t c = b + 1; c < 4; ++c) {
        BitVec received = original;
        received.flip(a);
        received.flip(b);
        received.flip(c);
        const auto result = code.decode(received, check);
        EXPECT_NE(result.outcome, SecDedOutcome::Clean);
        EXPECT_NE(result.outcome, SecDedOutcome::DoubleError);
      }
    }
  }
}

TEST(SecDedProtector, StorageCostsOneExtraBitPerWord) {
  const HammingChainProtector plain(HammingCode::h7_4(), 8, 13, false);
  const HammingChainProtector extended(HammingCode::h7_4(), 8, 13, true);
  EXPECT_EQ(plain.parity_storage_bits(), 78u);
  EXPECT_EQ(extended.parity_storage_bits(), 104u);  // 2 groups * 13 * 4
  EXPECT_TRUE(extended.extended());
}

TEST(SecDedProtector, DoublesFlaggedNotWorsened) {
  HammingChainProtector protector(HammingCode::h7_4(), 4, 13, true);
  Rng rng(9);
  std::vector<BitVec> original;
  for (int c = 0; c < 4; ++c) {
    original.push_back(rng.next_bits(13));
  }
  protector.encode(original);
  auto corrupted = original;
  corrupted[0].flip(5);
  corrupted[2].flip(5);  // same word
  const auto with_errors = corrupted;
  const auto stats = protector.decode_and_correct(corrupted);
  EXPECT_EQ(stats.double_errors, 1u);
  EXPECT_EQ(stats.bits_corrected, 0u);
  EXPECT_EQ(corrupted, with_errors);  // untouched, unlike plain SEC
}

TEST(SecDedProtector, SinglesStillFullyCorrected) {
  HammingChainProtector protector(HammingCode::h7_4(), 8, 13, true);
  Rng rng(10);
  std::vector<BitVec> original;
  for (int c = 0; c < 8; ++c) {
    original.push_back(rng.next_bits(13));
  }
  protector.encode(original);
  for (std::size_t chain = 0; chain < 8; ++chain) {
    auto corrupted = original;
    corrupted[chain].flip(chain % 13);
    const auto stats = protector.decode_and_correct(corrupted);
    EXPECT_EQ(stats.bits_corrected, 1u);
    EXPECT_EQ(corrupted, original);
  }
}

/// Structural SEC-DED end to end on the protected FIFO slice.
class StructuralSecDed : public ::testing::Test {
 protected:
  StructuralSecDed() {
    ProtectionConfig config;
    config.kind = CodeKind::HammingCorrect;
    config.secded = true;
    config.chain_count = 8;
    config.test_width = 4;
    design_ = std::make_unique<ProtectedDesign>(make_fifo(FifoSpec{32, 2}), config);
    session_ = std::make_unique<RetentionSession>(*design_);
    Rng rng(4);
    std::vector<BitVec> state;
    for (int c = 0; c < 8; ++c) {
      state.push_back(rng.next_bits(10));
    }
    scan_restore(session_->sim(), design_->chains(), state);
    before_ = state;
  }

  std::unique_ptr<ProtectedDesign> design_;
  std::unique_ptr<RetentionSession> session_;
  std::vector<BitVec> before_;
};

TEST_F(StructuralSecDed, SingleUpsetCorrected) {
  const auto outcome = session_->sleep_wake_cycle({ErrorLocation{3, 7}}, nullptr);
  EXPECT_TRUE(outcome.errors_detected);
  EXPECT_TRUE(outcome.recheck_clean);
  EXPECT_EQ(scan_snapshot(session_->sim(), design_->chains()), before_);
}

TEST_F(StructuralSecDed, DoubleUpsetFlaggedWithoutMiscorrection) {
  // Chains 0 and 2 are in the same Hamming group; same position = same word.
  const auto outcome =
      session_->sleep_wake_cycle({ErrorLocation{0, 4}, ErrorLocation{2, 4}}, nullptr);
  EXPECT_TRUE(outcome.errors_detected);
  EXPECT_FALSE(outcome.recheck_clean);
  EXPECT_EQ(outcome.final_state, PgState::ErrorFlagged);
  // The state still differs in exactly the two injected bits — SEC-DED did
  // not add a third error the way plain SEC would.
  auto expected = before_;
  expected[0].flip(4);
  expected[2].flip(4);
  EXPECT_EQ(scan_snapshot(session_->sim(), design_->chains()), expected);
}

TEST_F(StructuralSecDed, MatchesBehavioralProtector) {
  HammingChainProtector protector(HammingCode::h7_4(), 8, 10, true);
  protector.encode(before_);
  Rng rng(11);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<ErrorLocation> upsets;
    const std::size_t count = 1 + rng.next_below(3);
    for (std::size_t i = 0; i < count; ++i) {
      ErrorLocation loc{rng.next_below(8), rng.next_below(10)};
      if (std::find(upsets.begin(), upsets.end(), loc) == upsets.end()) {
        upsets.push_back(loc);
      }
    }
    auto behavioral = before_;
    ErrorInjector::flip_chain_data(behavioral, upsets);
    protector.decode_and_correct(behavioral);

    session_->sleep_wake_cycle(upsets, nullptr);
    EXPECT_EQ(scan_snapshot(session_->sim(), design_->chains()), behavioral)
        << "trial " << trial;
    scan_restore(session_->sim(), design_->chains(), before_);
    session_->reset_fsm();
  }
}

}  // namespace
}  // namespace retscan
