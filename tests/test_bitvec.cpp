#include "util/bitvec.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructFilled) {
  BitVec ones(130, true);
  EXPECT_EQ(ones.size(), 130u);
  EXPECT_EQ(ones.popcount(), 130u);
  BitVec zeros(130, false);
  EXPECT_EQ(zeros.popcount(), 0u);
}

TEST(BitVec, SetGetFlip) {
  BitVec v(100);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(99, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(99));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, BoundsChecked) {
  BitVec v(8);
  EXPECT_THROW(v.get(8), Error);
  EXPECT_THROW(v.set(8, true), Error);
  EXPECT_THROW(v.flip(100), Error);
}

TEST(BitVec, FromToStringRoundTrip) {
  const std::string s = "1011001110001";
  const BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("10x1"), Error);
}

TEST(BitVec, PushBackAndResize) {
  BitVec v;
  for (int i = 0; i < 70; ++i) {
    v.push_back(i % 3 == 0);
  }
  EXPECT_EQ(v.size(), 70u);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(69));
  EXPECT_FALSE(v.get(70 - 3 + 1));
  v.resize(3);
  EXPECT_EQ(v.size(), 3u);
  v.resize(80);
  EXPECT_FALSE(v.get(79));
  // Bits exposed by growth must be zero even though storage was reused.
  for (std::size_t i = 3; i < 80; ++i) {
    EXPECT_FALSE(v.get(i)) << i;
  }
}

TEST(BitVec, XorAndOrOperators) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
}

TEST(BitVec, OperatorsRejectSizeMismatch) {
  BitVec a(4);
  BitVec b(5);
  EXPECT_THROW(a ^= b, Error);
  EXPECT_THROW(a &= b, Error);
  EXPECT_THROW(a |= b, Error);
  EXPECT_THROW(a.hamming_distance(b), Error);
}

TEST(BitVec, SliceAndSplice) {
  const BitVec v = BitVec::from_string("110100101");
  EXPECT_EQ(v.slice(2, 4).to_string(), "0100");
  BitVec w(9);
  w.splice(2, BitVec::from_string("1111"));
  EXPECT_EQ(w.to_string(), "001111000");
  EXPECT_THROW(v.slice(7, 4), Error);
}

TEST(BitVec, HammingDistance) {
  const BitVec a = BitVec::from_string("101010");
  const BitVec b = BitVec::from_string("100110");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVec, SetBitsIndices) {
  BitVec v(200);
  v.set(5, true);
  v.set(64, true);
  v.set(199, true);
  const auto bits = v.set_bits();
  ASSERT_EQ(bits.size(), 3u);
  EXPECT_EQ(bits[0], 5u);
  EXPECT_EQ(bits[1], 64u);
  EXPECT_EQ(bits[2], 199u);
}

TEST(BitVec, ToUintFromUint) {
  BitVec v(70);
  v.from_uint(3, 16, 0xBEEF);
  EXPECT_EQ(v.to_uint(3, 16), 0xBEEFu);
  v.from_uint(60, 8, 0xA5);
  EXPECT_EQ(v.to_uint(60, 8), 0xA5u);
  EXPECT_THROW(v.to_uint(60, 20), Error);
}

TEST(BitVec, ParityMatchesPopcount) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const BitVec v = rng.next_bits(97);
    EXPECT_EQ(v.parity(), v.popcount() % 2 == 1);
  }
}

TEST(BitVec, FillPreservesSizeInvariant) {
  BitVec v(65);
  v.fill(true);
  EXPECT_EQ(v.popcount(), 65u);
  v.resize(70);
  // Trailing bits beyond the old size must have been masked off.
  for (std::size_t i = 65; i < 70; ++i) {
    EXPECT_FALSE(v.get(i));
  }
}

}  // namespace
}  // namespace retscan
