// The retscan v1 public API: Session/CampaignSpec routing must reproduce
// every legacy entry point bit-identically for the same seed (the facade is
// a router, not a reimplementation), spec validation must reject unrunnable
// campaigns with actionable messages, and the spec-file parser + runtime
// env helpers must parse strictly.
//
// This TU deliberately includes ONLY the public include/retscan/ surface —
// it doubles as a compile test that the v1 headers are self-contained.

#define RETSCAN_SUPPRESS_DEPRECATED  // legacy entry points are the oracles here

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "retscan/retscan.hpp"

using namespace retscan;

namespace {

/// The paper's Section IV geometry (behavioral tier: no synthesis cost).
Session paper_session() {
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.hamming_r = 3;
  protection.chain_count = 80;
  return Session(FifoSpec{32, 32}, protection);
}

ValidationConfig paper_config(std::uint64_t seed, InjectionMode mode) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 32};
  config.chain_count = 80;
  config.kind = CodeKind::HammingPlusCrc;
  config.hamming_r = 3;
  config.mode = mode;
  config.seed = seed;
  return config;
}

/// Small gate-level geometry (the 32-word x 2-bit FIFO slice the benches use).
Session gate_session() {
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.hamming_r = 3;
  protection.chain_count = 8;
  protection.test_width = 4;
  return Session(FifoSpec{32, 2}, protection);
}

ValidationConfig gate_config(std::uint64_t seed, InjectionMode mode) {
  ValidationConfig config;
  config.fifo = FifoSpec{32, 2};
  config.chain_count = 8;
  config.kind = CodeKind::HammingPlusCrc;
  config.hamming_r = 3;
  config.mode = mode;
  config.seed = seed;
  return config;
}

std::string error_message(const std::function<void()>& action) {
  try {
    action();
  } catch (const Error& error) {
    return error.what();
  }
  return "";
}

}  // namespace

// --- Session-routed campaigns vs legacy entry points ------------------------

TEST(ApiValidation, BehavioralReferenceMatchesFastTestbench) {
  const std::size_t sequences = 5000;
  Session session = paper_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.backend = Backend::Reference;
  spec.seed = 2024;
  spec.sequences = sequences;
  const CampaignResult result = session.run(spec);

  FastTestbench legacy(paper_config(2024, InjectionMode::SingleRandom));
  EXPECT_EQ(result.validation, legacy.run(sequences));
  EXPECT_EQ(result.backend, Backend::Reference);
  EXPECT_EQ(result.threads, 1u);
  EXPECT_TRUE(result.passed());
}

TEST(ApiValidation, BehavioralPooledMatchesCampaignRunner) {
  const std::size_t sequences = 20000;
  Session session = paper_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.backend = Backend::PackedParallel;
  spec.mode = InjectionMode::MultipleBurst;
  spec.burst_size = 4;
  spec.burst_spread = 1;
  spec.seed = 99;
  spec.sequences = sequences;
  const CampaignResult result = session.run(spec);

  parallel::CampaignRunner runner;
  ValidationConfig config = paper_config(99, InjectionMode::MultipleBurst);
  config.burst_size = 4;
  config.burst_spread = 1;
  const parallel::CampaignReport legacy = runner.run_fast(config, sequences);
  EXPECT_EQ(result.validation, legacy.stats);
  EXPECT_EQ(result.shard_count, legacy.shard_count);
  EXPECT_EQ(result.threads, legacy.threads);
}

TEST(ApiValidation, AutoResolvesToPackedParallelAndMatchesExplicit) {
  Session session = paper_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.seed = 7;
  spec.sequences = 4000;
  EXPECT_EQ(resolve_backend(spec, session), Backend::PackedParallel);
  const CampaignResult auto_run = session.run(spec);
  spec.backend = Backend::PackedParallel;
  const CampaignResult pinned = session.run(spec);
  EXPECT_EQ(auto_run.validation, pinned.validation);
  EXPECT_EQ(auto_run.backend, Backend::PackedParallel);
}

TEST(ApiValidation, ThreadCountInvariance) {
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.seed = 11;
  spec.sequences = 12000;
  spec.shard_size = 2048;
  Session session = paper_session();
  const CampaignResult pooled = session.run(spec);
  spec.threads = 1;
  const CampaignResult serial = session.run(spec);
  EXPECT_EQ(pooled.validation, serial.validation);
  EXPECT_EQ(serial.threads, 1u);
}

TEST(ApiValidation, StructuralBackendsMatchTestbenches) {
  const std::uint64_t seed = 7;
  Session session = gate_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.tier = ValidationTier::Structural;
  spec.seed = seed;

  spec.backend = Backend::Reference;
  spec.sequences = 6;
  const CampaignResult reference = session.run(spec);
  EXPECT_EQ(reference.validation,
            StructuralTestbench(gate_config(seed, InjectionMode::SingleRandom)).run(6));

  spec.backend = Backend::Packed;
  spec.sequences = 64;
  const CampaignResult packed = session.run(spec);
  EXPECT_EQ(packed.validation,
            StructuralTestbench(gate_config(seed, InjectionMode::SingleRandom))
                .run_packed(64));

  spec.backend = Backend::PackedParallel;
  spec.sequences = 128;
  spec.shard_size = 64;
  const CampaignResult pooled = session.run(spec);
  parallel::CampaignRunner runner;
  const parallel::CampaignReport legacy = runner.run_structural_packed(
      gate_config(seed, InjectionMode::SingleRandom), 128, 64);
  EXPECT_EQ(pooled.validation, legacy.stats);
  EXPECT_EQ(pooled.shard_count, 2u);
  EXPECT_TRUE(pooled.passed());
}

// The schedule knob must never change campaign statistics — only how the
// gate-level settles are computed. Sweep, Event and Auto runs of the same
// seeded structural campaign must agree counter-for-counter, at one thread
// and several, and the telemetry must reflect the schedule actually run.
TEST(ApiValidation, ScheduleIsStatisticsInvariant) {
  Session session = gate_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::Validation;
  spec.tier = ValidationTier::Structural;
  spec.backend = Backend::Packed;
  spec.seed = 23;
  spec.sequences = 128;

  spec.schedule = Schedule::Sweep;
  const CampaignResult sweep = session.run(spec);
  EXPECT_EQ(sweep.schedule, Schedule::Sweep);
  EXPECT_GT(sweep.activity.full_sweeps, 0u);
  EXPECT_EQ(sweep.activity.event_sweeps, 0u);
  EXPECT_DOUBLE_EQ(sweep.activity.avg_dirty_fraction(), 1.0);

  spec.schedule = Schedule::Event;
  const CampaignResult event = session.run(spec);
  EXPECT_EQ(event.schedule, Schedule::Event);
  EXPECT_EQ(event.validation, sweep.validation);
  EXPECT_GT(event.activity.event_sweeps, 0u);
  EXPECT_LT(event.activity.avg_dirty_fraction(), 1.0);

  spec.schedule = Schedule::Auto;
  const CampaignResult probed = session.run(spec);
  EXPECT_EQ(probed.validation, sweep.validation);

  // Pooled at several thread counts: still the same counters, telemetry
  // merged across shards instead of lost.
  spec.backend = Backend::PackedParallel;
  spec.shard_size = 64;
  spec.schedule = Schedule::Sweep;
  spec.threads = 1;
  const CampaignResult pooled_sweep = session.run(spec);
  EXPECT_EQ(pooled_sweep.validation, sweep.validation);
  for (const unsigned threads : {1u, 3u}) {
    spec.threads = threads;
    spec.schedule = Schedule::Event;
    const CampaignResult pooled_event = session.run(spec);
    EXPECT_EQ(pooled_event.validation, sweep.validation) << threads;
    EXPECT_GT(pooled_event.activity.event_sweeps, 0u) << threads;
  }
}

TEST(ApiInjection, RushModelMatchesLegacyRunner) {
  RushParameters rush;
  rush.resistance_ohm = 0.2;
  CorruptionParameters corruption;
  corruption.vulnerability = 0.02;

  Session session = paper_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::Injection;
  spec.mode = InjectionMode::RushModel;
  spec.seed = 201;
  spec.sequences = 8000;
  spec.rush = rush;
  spec.corruption = corruption;
  const CampaignResult result = session.run(spec);

  ValidationConfig config = paper_config(201, InjectionMode::RushModel);
  config.rush = rush;
  config.corruption = corruption;
  parallel::CampaignRunner runner;
  EXPECT_EQ(result.validation, runner.run_fast(config, 8000).stats);
  EXPECT_GT(result.validation.sequences_with_errors, 0u);
  EXPECT_TRUE(result.passed());
}

TEST(ApiFaultCoverage, MatchesLegacyAtpgPlusFaultSim) {
  Session session = gate_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::FaultCoverage;
  spec.backend = Backend::PackedParallel;
  spec.seed = 5;
  spec.atpg.random_patterns = 256;
  spec.atpg.max_backtracks = 200;
  const CampaignResult result = session.run(spec);

  // Legacy flow: hand-built frame with the same capture constraints.
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 8;
  protection.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), protection);
  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(design.netlist(), enumerate_faults(design.netlist()));
  AtpgOptions options;
  options.random_patterns = 256;
  options.max_backtracks = 200;
  options.seed = 5;
  const AtpgResult atpg = run_atpg(frame, faults, options);

  EXPECT_EQ(result.atpg.patterns, atpg.patterns);
  EXPECT_EQ(result.atpg.detected_random, atpg.detected_random);
  EXPECT_EQ(result.atpg.detected_podem, atpg.detected_podem);
  EXPECT_EQ(result.atpg.untestable, atpg.untestable);

  const FaultSimResult serial = fault_simulate(frame, faults, atpg.patterns);
  EXPECT_EQ(result.faults.detected, serial.detected);
  EXPECT_EQ(result.faults.detected_by, serial.detected_by);
  EXPECT_GT(result.atpg.coverage(), 0.9);
  EXPECT_TRUE(result.passed());
}

TEST(ApiScanTest, AllBackendsMatchLegacyDeliveries) {
  Session session = gate_session();
  AtpgOptions options;
  options.random_patterns = 128;
  options.max_backtracks = 100;
  const AtpgResult atpg = session.run_atpg(options);
  ASSERT_GT(atpg.patterns.size(), 0u);

  CombinationalFrame& frame = session.frame();
  const ProtectedDesign& design = session.design();

  // Test-mode access, all three backends vs the three legacy entry points.
  const ScanTestResult reference = session.run_scan_test(
      atpg.patterns, {.access = ScanAccess::TestMode, .backend = Backend::Reference});
  RetentionSession legacy_session(design);
  const ScanTestResult legacy_reference =
      apply_test_mode_scan_test(legacy_session, design, frame, atpg.patterns);
  EXPECT_EQ(reference.patterns_applied, legacy_reference.patterns_applied);
  EXPECT_EQ(reference.mismatches, legacy_reference.mismatches);
  EXPECT_TRUE(reference.all_passed());

  const ScanTestResult packed = session.run_scan_test(
      atpg.patterns, {.access = ScanAccess::TestMode, .backend = Backend::Packed});
  const ScanTestResult legacy_packed =
      apply_test_mode_scan_test_packed(design, frame, atpg.patterns);
  EXPECT_EQ(packed.patterns_applied, legacy_packed.patterns_applied);
  EXPECT_EQ(packed.mismatches, legacy_packed.mismatches);

  const ScanTestResult pooled = session.run_scan_test(
      atpg.patterns, {.access = ScanAccess::TestMode,
                      .backend = Backend::PackedParallel,
                      .patterns_per_shard = 128});
  const ScanTestResult legacy_pooled = apply_test_mode_scan_test_packed(
      design, frame, atpg.patterns, session.pool(), 128);
  EXPECT_EQ(pooled.patterns_applied, legacy_pooled.patterns_applied);
  EXPECT_EQ(pooled.mismatches, legacy_pooled.mismatches);
  EXPECT_TRUE(pooled.all_passed());

  // Full-width si/so access is rejected on protected designs: those ports
  // are superseded by the monitor feedback muxes, so silently delivering
  // through them would report phantom mismatches.
  EXPECT_NE(error_message([&] {
              session.run_scan_test(atpg.patterns,
                                    {.access = ScanAccess::FullWidth});
            }).find("monitor feedback muxes"),
            std::string::npos);
}

TEST(ApiScanTest, CampaignKindRunsAtpgAndDelivery) {
  Session session = gate_session();
  CampaignSpec spec;
  spec.kind = CampaignKind::ScanTest;
  spec.seed = 1;
  spec.atpg.random_patterns = 128;
  spec.atpg.max_backtracks = 100;
  const CampaignResult result = session.run(spec);
  EXPECT_EQ(result.backend, Backend::PackedParallel);
  EXPECT_EQ(result.scan_test.patterns_applied, result.atpg.patterns.size());
  EXPECT_EQ(result.scan_test.mismatches, 0u);
  EXPECT_TRUE(result.passed());

  // The uniform threads knob applies to scan-test campaigns too: the
  // delivery runs on a pool of spec.threads workers, with identical results.
  spec.threads = 2;
  const CampaignResult two_threads = session.run(spec);
  EXPECT_EQ(two_threads.threads, 2u);
  EXPECT_EQ(two_threads.scan_test.patterns_applied,
            result.scan_test.patterns_applied);
  EXPECT_EQ(two_threads.scan_test.mismatches, result.scan_test.mismatches);
}

// --- spec validation --------------------------------------------------------

TEST(ApiValidate, RejectsUnrunnableSpecs) {
  Session session = paper_session();

  CampaignSpec zero;
  zero.kind = CampaignKind::Validation;
  zero.sequences = 0;
  EXPECT_NE(error_message([&] { validate(zero, session); }).find("sequences must be > 0"),
            std::string::npos);

  CampaignSpec packed_behavioral;
  packed_behavioral.kind = CampaignKind::Validation;
  packed_behavioral.sequences = 10;
  packed_behavioral.backend = Backend::Packed;
  EXPECT_NE(error_message([&] { validate(packed_behavioral, session); })
                .find("behavioral tier"),
            std::string::npos);

  CampaignSpec bad_injection;
  bad_injection.kind = CampaignKind::Injection;
  bad_injection.sequences = 10;
  bad_injection.mode = InjectionMode::SingleRandom;
  EXPECT_NE(error_message([&] { validate(bad_injection, session); })
                .find("RushModel"),
            std::string::npos);

  CampaignSpec bad_shard;
  bad_shard.kind = CampaignKind::Validation;
  bad_shard.tier = ValidationTier::Structural;
  bad_shard.sequences = 100;
  bad_shard.shard_size = 100;  // not a multiple of 64
  EXPECT_NE(error_message([&] { validate(bad_shard, session); })
                .find("multiple of the 64-lane"),
            std::string::npos);

  // Protection features the Fig. 8 testbenches cannot model are rejected
  // instead of silently running on a reduced architecture.
  ProtectionConfig secded_protection;
  secded_protection.kind = CodeKind::HammingPlusCrc;
  secded_protection.chain_count = 80;
  secded_protection.secded = true;
  Session secded_session(FifoSpec{32, 32}, secded_protection);
  CampaignSpec secded_campaign;
  secded_campaign.kind = CampaignKind::Validation;
  secded_campaign.sequences = 10;
  EXPECT_NE(error_message([&] { validate(secded_campaign, secded_session); })
                .find("SEC-DED"),
            std::string::npos);

  CampaignSpec packed_shard;
  packed_shard.kind = CampaignKind::FaultCoverage;
  packed_shard.backend = Backend::Packed;
  packed_shard.shard_size = 4096;
  EXPECT_NE(error_message([&] { validate(packed_shard, session); })
                .find("shard_size"),
            std::string::npos);

  CampaignSpec no_patterns;
  no_patterns.kind = CampaignKind::FaultCoverage;
  no_patterns.atpg.random_patterns = 0;
  no_patterns.atpg.run_podem = false;
  EXPECT_NE(error_message([&] { validate(no_patterns, session); })
                .find("empty pattern set"),
            std::string::npos);

  CampaignSpec full_width;
  full_width.kind = CampaignKind::ScanTest;
  full_width.access = ScanAccess::FullWidth;
  EXPECT_NE(error_message([&] { validate(full_width, session); })
                .find("monitor feedback muxes"),
            std::string::npos);

  // Explicit event scheduling needs a gate-level sweep to schedule:
  // behavioral tier, the Reference oracle and non-validation kinds reject.
  CampaignSpec behavioral_event;
  behavioral_event.kind = CampaignKind::Validation;
  behavioral_event.sequences = 10;
  behavioral_event.schedule = Schedule::Event;
  EXPECT_NE(error_message([&] { validate(behavioral_event, session); })
                .find("behavioral tier"),
            std::string::npos);

  CampaignSpec reference_event = behavioral_event;
  reference_event.tier = ValidationTier::Structural;
  reference_event.backend = Backend::Reference;
  EXPECT_NE(error_message([&] { validate(reference_event, session); })
                .find("full-sweep oracle"),
            std::string::npos);

  CampaignSpec coverage_event;
  coverage_event.kind = CampaignKind::FaultCoverage;
  coverage_event.atpg.random_patterns = 16;
  coverage_event.schedule = Schedule::Event;
  EXPECT_NE(error_message([&] { validate(coverage_event, session); })
                .find("schedule = auto"),
            std::string::npos);

  // Auto is always accepted (it resolves to sweep where event can't apply).
  CampaignSpec auto_schedule = behavioral_event;
  auto_schedule.schedule = Schedule::Auto;
  EXPECT_NO_THROW(validate(auto_schedule, session));

  // Netlist-backed sessions cannot run validation campaigns...
  ProtectionConfig protection;
  protection.chain_count = 4;
  Session counter(make_counter(16), protection);
  CampaignSpec validation;
  validation.kind = CampaignKind::Validation;
  validation.sequences = 10;
  EXPECT_NE(error_message([&] { validate(validation, counter); })
                .find("golden FIFO model"),
            std::string::npos);
  // ...but fault-coverage kinds are fine.
  CampaignSpec coverage;
  coverage.kind = CampaignKind::FaultCoverage;
  coverage.atpg.random_patterns = 64;
  coverage.atpg.run_podem = false;
  EXPECT_NO_THROW(validate(coverage, counter));
}

TEST(ApiValidate, RejectsBadDurabilitySpecs) {
  Session session = paper_session();

  CampaignSpec base;
  base.kind = CampaignKind::Validation;
  base.sequences = 64;

  // A zero deadline would expire before any work happens.
  CampaignSpec zero_deadline = base;
  zero_deadline.deadline_ms = 0;
  EXPECT_NE(error_message([&] { validate(zero_deadline, session); })
                .find("deadline_ms = 0"),
            std::string::npos);

  // Resume without a journal path has nothing to resume from.
  CampaignSpec resume_only = base;
  resume_only.resume = true;
  EXPECT_NE(error_message([&] { validate(resume_only, session); })
                .find("no journal"),
            std::string::npos);

  // Durability rides the sharded validation runner only.
  CampaignSpec coverage = base;
  coverage.kind = CampaignKind::FaultCoverage;
  coverage.atpg.random_patterns = 16;
  coverage.checkpoint = "coverage.journal";
  EXPECT_NE(error_message([&] { validate(coverage, session); })
                .find("sharded validation"),
            std::string::npos);

  CampaignSpec reference = base;
  reference.backend = Backend::Reference;
  reference.checkpoint = "reference.journal";
  EXPECT_NE(error_message([&] { validate(reference, session); })
                .find("unsharded"),
            std::string::npos);

  // Checkpoint path problems are caught before any work runs.
  CampaignSpec dir_path = base;
  dir_path.checkpoint = ".";
  EXPECT_NE(error_message([&] { validate(dir_path, session); })
                .find("is a directory"),
            std::string::npos);

  CampaignSpec missing_dir = base;
  missing_dir.checkpoint = "/no/such/directory/campaign.journal";
  EXPECT_NE(error_message([&] { validate(missing_dir, session); })
                .find("does not exist"),
            std::string::npos);

  CampaignSpec file_parent = base;
  file_parent.checkpoint = "/etc/passwd/campaign.journal";
  EXPECT_NE(error_message([&] { validate(file_parent, session); })
                .find("does not exist"),
            std::string::npos);

  // A journal written by a different campaign (here: a foreign fingerprint)
  // is rejected on resume instead of silently merged.
  const std::string path = "test_api_foreign.journal";
  std::remove(path.c_str());
  {
    CampaignJournal foreign(path, 0xDEADBEEFu, base.seed,
                            CampaignJournal::Mode::Truncate);
    foreign.bind_plan(64, 64, 1);
    foreign.append(JournalRecord{});
  }
  CampaignSpec resume = base;
  resume.checkpoint = path;
  resume.resume = true;
  EXPECT_NE(error_message([&] { validate(resume, session); })
                .find("different campaign"),
            std::string::npos);
  // Same journal, same spec, different seed: also foreign.
  std::remove(path.c_str());
  {
    CampaignJournal mine(path, campaign_fingerprint(resume, session),
                         base.seed + 1, CampaignJournal::Mode::Truncate);
    mine.bind_plan(64, 64, 1);
    mine.append(JournalRecord{});
  }
  EXPECT_NE(error_message([&] { validate(resume, session); })
                .find("different campaign"),
            std::string::npos);
  // Matching fingerprint and seed: accepted.
  std::remove(path.c_str());
  {
    CampaignJournal mine(path, campaign_fingerprint(resume, session),
                         base.seed, CampaignJournal::Mode::Truncate);
    mine.bind_plan(64, 64, 1);
    mine.append(JournalRecord{});
  }
  EXPECT_NO_THROW(validate(resume, session));
  std::remove(path.c_str());
}

TEST(ApiSpecFile, ParsesDurabilityKeys) {
  const SpecFile file = parse_spec_text(R"(
campaign.checkpoint = run.journal
campaign.resume = true
campaign.deadline_ms = 5000
)");
  EXPECT_EQ(file.campaign.checkpoint, "run.journal");
  EXPECT_TRUE(file.campaign.resume);
  ASSERT_TRUE(file.campaign.deadline_ms.has_value());
  EXPECT_EQ(*file.campaign.deadline_ms, 5000u);

  // Bare shorthands, matching the CLI flag names.
  const SpecFile bare = parse_spec_text(
      "checkpoint = ck.journal\nresume = false\ndeadline_ms = 9\n");
  EXPECT_EQ(bare.campaign.checkpoint, "ck.journal");
  EXPECT_FALSE(bare.campaign.resume);
  EXPECT_EQ(*bare.campaign.deadline_ms, 9u);

  // Defaults: durability off.
  const SpecFile none = parse_spec_text("fifo.depth = 32\n");
  EXPECT_TRUE(none.campaign.checkpoint.empty());
  EXPECT_FALSE(none.campaign.resume);
  EXPECT_FALSE(none.campaign.deadline_ms.has_value());

  EXPECT_NE(error_message([] { parse_spec_text("campaign.resume = maybe\n"); })
                .find("not a boolean"),
            std::string::npos);
  EXPECT_NE(
      error_message([] { parse_spec_text("campaign.deadline_ms = -4\n"); })
          .find("not a non-negative integer"),
      std::string::npos);
}

TEST(ApiSession, ConstructionRejectsBadGeometry) {
  ProtectionConfig zero_chains;
  zero_chains.chain_count = 0;
  EXPECT_THROW(Session(FifoSpec{32, 2}, zero_chains), Error);

  ProtectionConfig indivisible;
  indivisible.chain_count = 7;  // 80 flops % 7 != 0
  EXPECT_NE(error_message([&] { Session session(FifoSpec{32, 2}, indivisible); })
                .find("equal scan chains"),
            std::string::npos);
}

TEST(ApiSession, RunScanTestRejectsBadPatternsAndOptions) {
  Session session = gate_session();
  EXPECT_THROW(session.run_scan_test({BitVec(3)}, {}), Error);
  ScanTestOptions bad_shard;
  bad_shard.patterns_per_shard = 0;
  EXPECT_THROW(session.run_scan_test({}, bad_shard), Error);
  ScanTestOptions full_width;
  full_width.access = ScanAccess::FullWidth;
  EXPECT_THROW(session.run_scan_test({}, full_width), Error);
}

// --- spec files -------------------------------------------------------------

TEST(ApiSpecFile, ParsesFullSpec) {
  const SpecFile file = parse_spec_text(R"(
# the paper's validation campaign
fifo.depth = 32
fifo.width = 32
protection.kind = hamming+crc
protection.hamming_r = 3
protection.chain_count = 80

campaign.kind = validation
campaign.backend = packed-parallel
campaign.seed = 2024        # campaign master seed
campaign.sequences = 200000
campaign.mode = multiple-burst
campaign.burst_size = 4
campaign.burst_spread = 1
campaign.schedule = event
)");
  EXPECT_EQ(file.fifo.depth, 32u);
  EXPECT_EQ(file.fifo.width, 32u);
  EXPECT_EQ(file.protection.kind, CodeKind::HammingPlusCrc);
  EXPECT_EQ(file.protection.chain_count, 80u);
  EXPECT_EQ(file.campaign.kind, CampaignKind::Validation);
  EXPECT_EQ(file.campaign.backend, Backend::PackedParallel);
  EXPECT_EQ(file.campaign.seed, 2024u);
  EXPECT_EQ(file.campaign.sequences, 200000u);
  EXPECT_EQ(file.campaign.mode, InjectionMode::MultipleBurst);
  EXPECT_EQ(file.campaign.burst_size, 4u);
  EXPECT_EQ(file.campaign.schedule, Schedule::Event);

  // `schedule =` is the short spelling of campaign.schedule.
  EXPECT_EQ(parse_spec_text("schedule = sweep\n").campaign.schedule,
            Schedule::Sweep);
  EXPECT_NE(error_message([] { parse_spec_text("schedule = sometimes\n"); })
                .find("auto, sweep, event"),
            std::string::npos);
}

TEST(ApiSpecFile, ErrorsNameTheLine) {
  EXPECT_NE(error_message([] { parse_spec_text("fifo.depth = 32\nbogus.key = 1\n"); })
                .find("spec line 2"),
            std::string::npos);
  EXPECT_NE(error_message([] { parse_spec_text("fifo.depth == 32"); })
                .find("not a non-negative integer"),
            std::string::npos);
  // Negative values must not wrap through stoull into huge geometries.
  EXPECT_NE(error_message([] { parse_spec_text("fifo.depth = -1"); })
                .find("not a non-negative integer"),
            std::string::npos);
  // Values past a narrow field's range must not silently truncate.
  EXPECT_NE(error_message([] { parse_spec_text("campaign.threads = 4294967298"); })
                .find("out of range"),
            std::string::npos);
  EXPECT_NE(error_message([] { parse_spec_text("protection.hamming_r = 999"); })
                .find("out of range"),
            std::string::npos);
  EXPECT_NE(error_message([] { parse_spec_text("fifo.depth\n"); })
                .find("expected 'key = value'"),
            std::string::npos);
  EXPECT_NE(error_message([] { parse_spec_text("campaign.mode = sideways\n"); })
                .find("sideways"),
            std::string::npos);
  EXPECT_NE(error_message([] { parse_spec_text("campaign.atpg.run_podem = maybe\n"); })
                .find("not a boolean"),
            std::string::npos);
  EXPECT_NE(error_message([] { (void)load_spec_file("/nonexistent/x.spec"); })
                .find("cannot open"),
            std::string::npos);
}

TEST(ApiSpecFile, ParseU64IsStrict) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~std::uint64_t{0});
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64("10abc").has_value());
  EXPECT_FALSE(parse_u64(" 10").has_value());
  EXPECT_FALSE(parse_u64("99999999999999999999").has_value());  // overflow
}

TEST(ApiSpecFile, EnumRoundTrips) {
  for (const auto kind : {CampaignKind::Validation, CampaignKind::Injection,
                          CampaignKind::FaultCoverage, CampaignKind::ScanTest}) {
    CampaignKind out{};
    EXPECT_TRUE(from_string(to_string(kind), out));
    EXPECT_EQ(out, kind);
  }
  for (const auto backend : {Backend::Auto, Backend::Reference, Backend::Packed,
                             Backend::PackedParallel}) {
    Backend out{};
    EXPECT_TRUE(from_string(to_string(backend), out));
    EXPECT_EQ(out, backend);
  }
  for (const auto schedule : {Schedule::Auto, Schedule::Sweep, Schedule::Event}) {
    Schedule out{};
    EXPECT_TRUE(from_string(to_string(schedule), out));
    EXPECT_EQ(out, schedule);
  }
  Backend out{};
  EXPECT_FALSE(from_string("warp-drive", out));
  Schedule schedule_out{};
  EXPECT_FALSE(from_string("lazy", schedule_out));
}

// --- runtime config ---------------------------------------------------------

TEST(ApiRuntime, ParsesAndRejectsEnvOverrides) {
  ::setenv("RETSCAN_THREADS", "3", 1);
  ::setenv("RETSCAN_SEQUENCES", "12345", 1);
  RuntimeConfig config = runtime_config_refresh();
  EXPECT_EQ(config.threads, 3u);
  ASSERT_TRUE(config.sequences.has_value());
  EXPECT_EQ(*config.sequences, 12345u);
  EXPECT_EQ(runtime_threads(), 3u);
  EXPECT_EQ(runtime_sequences(10), 12345u);

  ::setenv("RETSCAN_THREADS", "0", 1);
  ::setenv("RETSCAN_SEQUENCES", "12x", 1);
  // runtime_config() is a cache — environment edits are invisible until the
  // next refresh (one getenv round per process, not per engine).
  EXPECT_EQ(runtime_config().threads, 3u);
  config = runtime_config_refresh();
  // Invalid override → the resolved hardware default (always >= 1).
  EXPECT_EQ(config.threads, runtime_threads());
  EXPECT_GE(config.threads, 1u);
  EXPECT_FALSE(config.sequences.has_value());
  EXPECT_EQ(runtime_sequences(10), 10u);
  EXPECT_GE(runtime_threads(), 1u);

  ::setenv("RETSCAN_THREADS", "5000", 1);  // over the 4096 cap → hardware default
  EXPECT_EQ(runtime_config_refresh().threads, runtime_threads());

  // RETSCAN_THREADS=1 is the explicit serial opt-out.
  ::setenv("RETSCAN_THREADS", "1", 1);
  EXPECT_EQ(runtime_config_refresh().threads, 1u);

  ::unsetenv("RETSCAN_THREADS");
  ::unsetenv("RETSCAN_SEQUENCES");
  config = runtime_config_refresh();
  // Unset → threads defaults to hardware concurrency, never 0.
  EXPECT_EQ(config.threads, runtime_threads());
  EXPECT_GE(config.threads, 1u);
  EXPECT_FALSE(config.sequences.has_value());
  EXPECT_EQ(runtime_sequences(42), 42u);
}

TEST(ApiRuntime, ScheduleEnvKnob) {
  // Tests inherit the driver's environment; note what we must restore.
  const char* inherited = std::getenv("RETSCAN_SCHEDULE");
  const std::string saved = inherited != nullptr ? inherited : "";

  ::unsetenv("RETSCAN_SCHEDULE");
  EXPECT_FALSE(runtime_config_refresh().schedule.has_value());
  // Unset env: explicit requests pass through, Auto stays Auto.
  EXPECT_EQ(runtime_schedule(Schedule::Auto), Schedule::Auto);
  EXPECT_EQ(runtime_schedule(Schedule::Event), Schedule::Event);

  for (const auto& [text, want] :
       {std::pair<const char*, Schedule>{"sweep", Schedule::Sweep},
        {"event", Schedule::Event},
        {"auto", Schedule::Auto}}) {
    ::setenv("RETSCAN_SCHEDULE", text, 1);
    const RuntimeConfig config = runtime_config_refresh();
    ASSERT_TRUE(config.schedule.has_value()) << text;
    EXPECT_EQ(*config.schedule, want) << text;
    // The env knob only fills in Auto; explicit code wins.
    EXPECT_EQ(runtime_schedule(Schedule::Auto), want) << text;
    EXPECT_EQ(runtime_schedule(Schedule::Sweep), Schedule::Sweep) << text;
  }

  ::setenv("RETSCAN_SCHEDULE", "bogus", 1);  // warns on stderr, then ignores
  EXPECT_FALSE(runtime_config_refresh().schedule.has_value());

  if (saved.empty()) {
    ::unsetenv("RETSCAN_SCHEDULE");
  } else {
    ::setenv("RETSCAN_SCHEDULE", saved.c_str(), 1);
  }
  runtime_config_refresh();
}

TEST(ApiVersion, ConstantsAgree) {
  EXPECT_STREQ(version_string(), RETSCAN_VERSION_STRING);
  EXPECT_EQ(RETSCAN_VERSION_NUMBER,
            kVersionMajor * 10000 + kVersionMinor * 100 + kVersionPatch);
  EXPECT_EQ(kVersionMajor, 1);
}
