// Equivalence tests of the compiled simulation core against the retained
// reference interpreter path: the compiled flat-instruction sweep must match
// the per-Cell walk gate-for-gate on randomized netlists (including LatchL,
// Rdff and power-gating sequences), and fanout-cone incremental fault
// simulation must produce bit-identical detect masks and coverage to the
// full-circuit reference.

#include "sim/compiled_netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "core/protected_design.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace retscan {
namespace {

/// Random layered netlist with every compilable gate type, two flop ranks
/// (some converted to retention scan flops in the gated domain), always-on
/// parity-style latches, and gated combinational logic.
struct RandomDesign {
  Netlist nl;
  std::vector<NetId> data_inputs;
  NetId en = kNullNet;
  std::vector<CellId> rdffs;
};

RandomDesign random_design(Rng& rng) {
  RandomDesign d;
  Netlist& nl = d.nl;
  const NetId se = nl.add_input("se");
  const NetId retain = nl.add_input("retain");
  d.en = nl.add_input("en");
  std::vector<NetId> pool;
  for (int i = 0; i < 5; ++i) {
    const NetId in = nl.add_input("a" + std::to_string(i));
    d.data_inputs.push_back(in);
    pool.push_back(in);
  }
  pool.push_back(nl.n_const(true));
  pool.push_back(nl.n_const(false));
  auto random_gate = [&]() {
    const NetId a = pool[rng.next_below(pool.size())];
    const NetId b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(9)) {
      case 0: return nl.n_and(a, b);
      case 1: return nl.n_or(a, b);
      case 2: return nl.n_xor(a, b);
      case 3: return nl.n_nand(a, b);
      case 4: return nl.n_nor(a, b);
      case 5: return nl.n_xnor(a, b);
      case 6: return nl.n_not(a);
      case 7: return nl.n_buf(a);
      default: return nl.n_mux(a, b, pool[rng.next_below(pool.size())]);
    }
  };
  for (int layer = 0; layer < 3; ++layer) {
    for (int g = 0; g < 15; ++g) {
      pool.push_back(random_gate());
    }
    NetId scan_prev = se;
    for (int f = 0; f < 4; ++f) {
      const NetId q = nl.n_dff(pool[rng.next_below(pool.size())]);
      const CellId flop = nl.driver(q);
      if (rng.next_bool(0.5)) {
        nl.convert_flop(flop, CellType::Rdff, {scan_prev, se, retain});
        nl.set_domain(flop, 1);
        d.rdffs.push_back(flop);
        scan_prev = q;
      }
      pool.push_back(q);
    }
    // Always-on transparent latch (parity-storage style).
    const CellId latch = nl.add_cell(
        CellType::LatchL, {pool[rng.next_below(pool.size())], d.en});
    pool.push_back(nl.cell(latch).out);
  }
  // Combinational cells in the gated domain (isolation clamps).
  for (int g = 0; g < 6; ++g) {
    const NetId y = random_gate();
    nl.set_domain(nl.driver(y), 1);
    pool.push_back(y);
  }
  nl.add_output("y0", pool[pool.size() - 1]);
  nl.add_output("y1", nl.n_xor_tree({pool[5], pool[9], pool[pool.size() - 3]}));
  return d;
}

TEST(CompiledNetlist, SlotRenumberingIsTopological) {
  Rng rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    ASSERT_EQ(compiled->slot_count(), d.nl.net_count());
    // Slot mapping is a bijection.
    std::vector<bool> seen(compiled->slot_count(), false);
    for (NetId net = 0; net < d.nl.net_count(); ++net) {
      const std::uint32_t slot = compiled->slot(net);
      EXPECT_FALSE(seen[slot]);
      seen[slot] = true;
      EXPECT_EQ(compiled->net_of_slot(slot), net);
    }
    // Every instruction reads only slots below the one it writes, and the
    // stream writes strictly ascending slots — the locality invariant.
    std::uint32_t prev_out = 0;
    for (const CompiledInstr& in : compiled->instrs()) {
      EXPECT_LT(in.in0, in.out);
      EXPECT_LT(in.in1, in.out);
      EXPECT_LT(in.in2, in.out);
      EXPECT_GE(in.out, prev_out);
      prev_out = in.out;
    }
  }
}

TEST(CompiledNetlist, SweepMatchesReferenceInterpreterOnRandomNetlists) {
  Rng rng(22);
  for (int trial = 0; trial < 5; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    for (int sweep = 0; sweep < 10; ++sweep) {
      // Arbitrary source values (including ones unreachable in a real
      // simulation — the kernel must agree regardless).
      std::vector<LaneWord> by_net(d.nl.net_count());
      for (LaneWord& word : by_net) {
        word = rng.next_u64();
      }
      std::vector<LaneWord> by_slot(compiled->slot_count());
      for (NetId net = 0; net < d.nl.net_count(); ++net) {
        by_slot[compiled->slot(net)] = by_net[net];
      }
      CompiledNetlist::reference_eval(d.nl, by_net);
      compiled->eval_full(by_slot.data());
      for (NetId net = 0; net < d.nl.net_count(); ++net) {
        ASSERT_EQ(by_slot[compiled->slot(net)], by_net[net])
            << "trial " << trial << " sweep " << sweep << " net " << net;
      }
    }
  }
}

/// Every combinational net of a live PackedSim must equal the reference
/// interpreter re-run over the engine's own source values, with domain
/// clamps applied — through per-lane stimulus, RETAIN traffic, latch-enable
/// traffic and power cycles.
void expect_comb_matches_reference(const Netlist& nl, PackedSim& sim) {
  DomainId max_domain = 0;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    max_domain = std::max(max_domain, nl.cell(id).domain);
  }
  std::vector<LaneWord> clamp(static_cast<std::size_t>(max_domain) + 1);
  for (DomainId dom = 0; dom <= max_domain; ++dom) {
    clamp[dom] = sim.domain_powered(dom) ? kAllLanes : 0;
  }
  std::vector<LaneWord> values(nl.net_count());
  for (NetId net = 0; net < nl.net_count(); ++net) {
    values[net] = sim.net_lanes(net);
  }
  // Interpreted per-Cell walk with isolation clamps applied in propagation
  // order — a domain-0 gate fed by a clamped domain-1 net must see the
  // clamped value, exactly as the engine evaluates it.
  for (const CellId id : nl.combinational_order()) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    values[c.out] = eval_comb_word(c, values) & clamp[c.domain];
    ASSERT_EQ(values[c.out], sim.net_lanes(c.out)) << "cell " << id;
  }
}

TEST(CompiledNetlist, EngineMatchesReferenceThroughPowerAndRetention) {
  Rng build_rng(33);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(build_rng);
    PackedSim sim(d.nl);
    Rng stim(900 + trial);
    sim.set_input_all("se", false);
    sim.set_input_all("retain", false);
    for (int cycle = 0; cycle < 40; ++cycle) {
      for (const NetId in : d.data_inputs) {
        sim.set_input(in, stim.next_u64());
      }
      sim.set_input(d.en, stim.next_u64());
      sim.step();
      expect_comb_matches_reference(d.nl, sim);

      if (cycle % 10 == 9 && !d.rdffs.empty()) {
        sim.set_input_all("retain", true);
        sim.step();  // save edge
        Rng garbage(4000 + cycle);
        sim.power_off(1, &garbage);
        expect_comb_matches_reference(d.nl, sim);  // clamped while off
        sim.power_on(1);
        sim.set_input_all("retain", false);
        sim.step();  // restore edge
        expect_comb_matches_reference(d.nl, sim);
      }
    }
  }
}

TEST(CompiledNetlist, CacheInvalidatedOnStructuralMutation) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.n_and(a, b);
  nl.add_output("y", y);
  const auto first = nl.compiled();
  EXPECT_EQ(first.get(), nl.compiled().get());  // cached
  const std::size_t order_size = nl.combinational_order().size();

  const NetId z = nl.n_xor(a, y);  // structural mutation
  nl.add_output("z", z);
  const auto second = nl.compiled();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(second->slot_count(), nl.net_count());
  EXPECT_GT(nl.combinational_order().size(), order_size);
  // The old instance stays valid for holders (self-contained).
  EXPECT_EQ(first->instrs().size(), 1u);
}

/// Cone-incremental detect masks must be bit-identical to the full-circuit
/// reference for every fault and every batch, including when one shared
/// workspace is re-synced across interleaved batches.
TEST(FaultCone, DetectMasksMatchFullReferenceOnRandomNetlists) {
  Rng rng(44);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const CombinationalFrame frame(d.nl);
    const auto faults = collapse_faults(d.nl, enumerate_faults(d.nl));
    ASSERT_GT(faults.size(), 0u);
    std::vector<std::vector<BitVec>> batches(2);
    for (auto& batch : batches) {
      for (int p = 0; p < 64; ++p) {
        batch.push_back(frame.random_pattern(rng));
      }
    }
    std::vector<CombinationalFrame::LoadedPatternBatch> loaded;
    for (const auto& batch : batches) {
      loaded.push_back(frame.load_batch(batch));
    }
    std::vector<std::vector<std::uint64_t>> good_words;
    for (const auto& batch : batches) {
      good_words.push_back(frame.good_response_words(batch));
    }
    CombinationalFrame::Workspace workspace;
    for (const Fault& fault : faults) {
      // Alternate batches fault-major so the workspace resync path runs.
      for (std::size_t b = 0; b < batches.size(); ++b) {
        const std::uint64_t cone_mask =
            frame.detect_mask(fault, loaded[b], loaded[b].good, workspace);
        const std::uint64_t full_mask =
            frame.detect_mask_full(fault, batches[b], good_words[b]);
        ASSERT_EQ(cone_mask, full_mask)
            << "trial " << trial << " fault " << fault_name(d.nl, fault)
            << " batch " << b;
      }
    }
  }
}

TEST(FaultCone, DetectMasksMatchFullReferenceOnProtectedFifo) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(design.netlist(), enumerate_faults(design.netlist()));
  Rng rng(55);
  std::vector<BitVec> patterns;
  for (int p = 0; p < 64; ++p) {
    patterns.push_back(frame.random_pattern(rng));
  }
  const auto loaded = frame.load_batch(patterns);
  const auto good_words = frame.good_response_words(patterns);
  CombinationalFrame::Workspace workspace;
  for (const Fault& fault : faults) {
    ASSERT_EQ(frame.detect_mask(fault, loaded, loaded.good, workspace),
              frame.detect_mask_full(fault, patterns, good_words))
        << fault_name(design.netlist(), fault);
  }
}

/// fault_simulate (cone path, serial and pooled) must report exactly the
/// coverage and first-detecting-pattern indices of a reference simulator
/// built on full-circuit interpreted evaluation.
TEST(FaultCone, FaultSimulateMatchesReferenceCoverage) {
  const Netlist nl = make_registered_adder(4);
  const CombinationalFrame frame(nl);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Rng rng(66);
  std::vector<BitVec> patterns;
  for (int p = 0; p < 150; ++p) {  // 3 batches, last one partial
    patterns.push_back(frame.random_pattern(rng));
  }

  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> reference(faults.size(), npos);
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const auto good_words = frame.good_response_words(batch);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (reference[fi] != npos) {
        continue;
      }
      const std::uint64_t mask = frame.detect_mask_full(faults[fi], batch, good_words);
      if (mask != 0) {
        reference[fi] = base + static_cast<std::size_t>(std::countr_zero(mask));
      }
    }
  }

  const FaultSimResult serial = fault_simulate(frame, faults, patterns);
  EXPECT_EQ(serial.detected_by, reference);
  ThreadPool pool(3);
  const FaultSimResult pooled = fault_simulate(frame, faults, patterns, pool, 16);
  EXPECT_EQ(pooled.detected_by, reference);
  EXPECT_EQ(pooled.detected, serial.detected);
}

/// The lane-block kernel must agree with the single-word kernel and the
/// reference interpreter on every word of every block, with independent
/// stimulus in all kLaneWords words.
TEST(LaneBlock, BlockSweepMatchesWordSweepAndReference) {
  Rng rng(77);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    for (int sweep = 0; sweep < 5; ++sweep) {
      std::vector<LaneBlock> blocks(compiled->slot_count(), LaneBlock{});
      for (LaneBlock& block : blocks) {
        for (std::size_t w = 0; w < kLaneWords; ++w) {
          block.w[w] = rng.next_u64();
        }
      }
      // Word-kernel and interpreter copies of each block word's stimulus.
      std::vector<std::vector<LaneWord>> by_slot(
          kLaneWords, std::vector<LaneWord>(compiled->slot_count()));
      std::vector<std::vector<LaneWord>> by_net(
          kLaneWords, std::vector<LaneWord>(d.nl.net_count()));
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        for (std::uint32_t slot = 0; slot < compiled->slot_count(); ++slot) {
          by_slot[w][slot] = blocks[slot].w[w];
          by_net[w][compiled->net_of_slot(slot)] = blocks[slot].w[w];
        }
      }
      compiled->eval_full(blocks.data());
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        compiled->eval_full(by_slot[w].data());
        CompiledNetlist::reference_eval(d.nl, by_net[w]);
        for (NetId net = 0; net < d.nl.net_count(); ++net) {
          const std::uint32_t slot = compiled->slot(net);
          ASSERT_EQ(blocks[slot].w[w], by_slot[w][slot])
              << "trial " << trial << " sweep " << sweep << " word " << w
              << " net " << net << " (block vs word kernel)";
          ASSERT_EQ(blocks[slot].w[w], by_net[w][net])
              << "trial " << trial << " sweep " << sweep << " word " << w
              << " net " << net << " (block kernel vs interpreter)";
        }
      }
    }
  }
}

/// Same agreement through the clamped sweep: every word of a block sees the
/// identical per-domain isolation clamp the word kernel applies.
TEST(LaneBlock, ClampedBlockSweepMatchesWordSweep) {
  Rng rng(78);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    // Random designs place cells in domains 0 and 1; exercise powered,
    // clamped and per-lane-mixed clamp words.
    for (const LaneWord clamp1 : {kAllLanes, LaneWord{0}, rng.next_u64()}) {
      const LaneWord clamps[2] = {kAllLanes, clamp1};
      std::vector<LaneBlock> blocks(compiled->slot_count(), LaneBlock{});
      for (LaneBlock& block : blocks) {
        for (std::size_t w = 0; w < kLaneWords; ++w) {
          block.w[w] = rng.next_u64();
        }
      }
      std::vector<std::vector<LaneWord>> by_slot(
          kLaneWords, std::vector<LaneWord>(compiled->slot_count()));
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        for (std::uint32_t slot = 0; slot < compiled->slot_count(); ++slot) {
          by_slot[w][slot] = blocks[slot].w[w];
        }
      }
      compiled->eval_full_clamped(blocks.data(), clamps);
      for (std::size_t w = 0; w < kLaneWords; ++w) {
        compiled->eval_full_clamped(by_slot[w].data(), clamps);
        for (std::uint32_t slot = 0; slot < compiled->slot_count(); ++slot) {
          ASSERT_EQ(blocks[slot].w[w], by_slot[w][slot])
              << "trial " << trial << " clamp " << clamp1 << " word " << w
              << " slot " << slot;
        }
      }
    }
  }
}

/// detect_block over kLaneBlockBits-wide batches (shared workspace, cone
/// replay + undo) must reproduce the full-circuit reference word-for-word,
/// including partial last blocks at pattern counts that are not multiples
/// of the block width — lanes beyond the count must read zero.
TEST(LaneBlock, DetectBlockMatchesFullReferenceAtPartialCounts) {
  Rng rng(79);
  const RandomDesign d = random_design(rng);
  const CombinationalFrame frame(d.nl);
  const auto faults = collapse_faults(d.nl, enumerate_faults(d.nl));
  ASSERT_GT(faults.size(), 0u);
  std::vector<BitVec> all_patterns;
  for (int p = 0; p < 300; ++p) {
    all_patterns.push_back(frame.random_pattern(rng));
  }
  CombinationalFrame::Workspace workspace;
  for (const std::size_t count : {std::size_t{100}, std::size_t{150},
                                  std::size_t{300}}) {
    const std::vector<BitVec> patterns(all_patterns.begin(),
                                       all_patterns.begin() + count);
    for (std::size_t base = 0; base < patterns.size(); base += kLaneBlockBits) {
      const std::size_t chunk =
          std::min<std::size_t>(kLaneBlockBits, patterns.size() - base);
      const std::vector<BitVec> block_patterns(patterns.begin() + base,
                                               patterns.begin() + base + chunk);
      const auto loaded = frame.load_batch(block_patterns);
      ASSERT_EQ(loaded.count, chunk);
      for (const Fault& fault : faults) {
        const LaneBlock mask =
            frame.detect_block(fault, loaded, loaded.good, workspace);
        for (std::size_t w = 0; w < kLaneWords; ++w) {
          const std::size_t word_base = w * kLaneCount;
          if (word_base >= chunk) {
            // Lanes past the batch count must be silenced.
            ASSERT_EQ(mask.w[w], 0u) << "count " << count << " word " << w;
            continue;
          }
          const std::size_t word_count =
              std::min<std::size_t>(kLaneCount, chunk - word_base);
          const std::vector<BitVec> word_patterns(
              block_patterns.begin() + word_base,
              block_patterns.begin() + word_base + word_count);
          const auto good_words = frame.good_response_words(word_patterns);
          ASSERT_EQ(mask.w[w],
                    frame.detect_mask_full(fault, word_patterns, good_words))
              << "count " << count << " base " << base << " word " << w
              << " fault " << fault_name(d.nl, fault);
        }
      }
    }
  }
}

/// pack_lane_blocks/unpack_lane_blocks round-trip losslessly at full and
/// partial lane counts, and word 0 agrees with the single-word packer.
TEST(LaneBlock, PackLaneBlocksRoundTripsAndAgreesWithPackLanes) {
  Rng rng(80);
  const std::size_t width = 23;
  for (const std::size_t lanes :
       {kLaneBlockBits, kLaneBlockBits / 2 + 3, std::size_t{1}}) {
    std::vector<BitVec> rows;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      BitVec row(width);
      for (std::size_t i = 0; i < width; ++i) {
        row.set(i, rng.next_bool(0.5));
      }
      rows.push_back(row);
    }
    const std::vector<LaneBlock> blocks = pack_lane_blocks(rows);
    ASSERT_EQ(blocks.size(), width);
    const std::vector<BitVec> back = unpack_lane_blocks(blocks, lanes);
    ASSERT_EQ(back.size(), rows.size());
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      EXPECT_EQ(back[lane], rows[lane]) << "lanes " << lanes << " lane " << lane;
    }
    const std::vector<BitVec> head(
        rows.begin(), rows.begin() + std::min<std::size_t>(lanes, kLaneCount));
    const std::vector<std::uint64_t> words = pack_lanes(head);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_EQ(blocks[i].w[0], words[i]) << "lanes " << lanes << " bit " << i;
    }
  }
}

/// Block primitive semantics: lane masks, emptiness and first-lane index
/// across word boundaries.
TEST(LaneBlock, PrimitiveSemantics) {
  EXPECT_EQ(block_lane_mask(0), LaneBlock{});
  const LaneBlock full = block_lane_mask(kLaneBlockBits);
  for (std::size_t w = 0; w < kLaneWords; ++w) {
    EXPECT_EQ(full.w[w], kAllLanes);
  }
  // A partial mask fills whole words then a partial word, then zeros.
  const std::size_t cut = kLaneCount / 2 + (kLaneWords > 1 ? kLaneCount : 0);
  const LaneBlock partial = block_lane_mask(cut);
  for (std::size_t w = 0; w < kLaneWords; ++w) {
    const std::size_t lo = w * kLaneCount;
    if (cut >= lo + kLaneCount) {
      EXPECT_EQ(partial.w[w], kAllLanes) << "word " << w;
    } else if (cut <= lo) {
      EXPECT_EQ(partial.w[w], 0u) << "word " << w;
    } else {
      EXPECT_EQ(partial.w[w], (std::uint64_t{1} << (cut - lo)) - 1) << "word " << w;
    }
  }
  EXPECT_FALSE(block_any(LaneBlock{}));
  EXPECT_EQ(block_first_lane(LaneBlock{}), kLaneBlockBits);
  for (const std::size_t lane :
       {std::size_t{0}, std::size_t{5}, kLaneBlockBits - 1}) {
    LaneBlock one{};
    one.w[lane / kLaneCount] = std::uint64_t{1} << (lane % kLaneCount);
    EXPECT_TRUE(block_any(one));
    EXPECT_EQ(block_first_lane(one), lane) << "lane " << lane;
    // With a later lane also set, the first one still wins.
    one.w[kLaneWords - 1] |= std::uint64_t{1} << (kLaneCount - 1);
    EXPECT_EQ(block_first_lane(one), lane) << "lane " << lane;
  }
}

}  // namespace
}  // namespace retscan
