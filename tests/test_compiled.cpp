// Equivalence tests of the compiled simulation core against the retained
// reference interpreter path: the compiled flat-instruction sweep must match
// the per-Cell walk gate-for-gate on randomized netlists (including LatchL,
// Rdff and power-gating sequences), and fanout-cone incremental fault
// simulation must produce bit-identical detect masks and coverage to the
// full-circuit reference.

#include "sim/compiled_netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/fifo.hpp"
#include "circuits/generators.hpp"
#include "core/protected_design.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace retscan {
namespace {

/// Random layered netlist with every compilable gate type, two flop ranks
/// (some converted to retention scan flops in the gated domain), always-on
/// parity-style latches, and gated combinational logic.
struct RandomDesign {
  Netlist nl;
  std::vector<NetId> data_inputs;
  NetId en = kNullNet;
  std::vector<CellId> rdffs;
};

RandomDesign random_design(Rng& rng) {
  RandomDesign d;
  Netlist& nl = d.nl;
  const NetId se = nl.add_input("se");
  const NetId retain = nl.add_input("retain");
  d.en = nl.add_input("en");
  std::vector<NetId> pool;
  for (int i = 0; i < 5; ++i) {
    const NetId in = nl.add_input("a" + std::to_string(i));
    d.data_inputs.push_back(in);
    pool.push_back(in);
  }
  pool.push_back(nl.n_const(true));
  pool.push_back(nl.n_const(false));
  auto random_gate = [&]() {
    const NetId a = pool[rng.next_below(pool.size())];
    const NetId b = pool[rng.next_below(pool.size())];
    switch (rng.next_below(9)) {
      case 0: return nl.n_and(a, b);
      case 1: return nl.n_or(a, b);
      case 2: return nl.n_xor(a, b);
      case 3: return nl.n_nand(a, b);
      case 4: return nl.n_nor(a, b);
      case 5: return nl.n_xnor(a, b);
      case 6: return nl.n_not(a);
      case 7: return nl.n_buf(a);
      default: return nl.n_mux(a, b, pool[rng.next_below(pool.size())]);
    }
  };
  for (int layer = 0; layer < 3; ++layer) {
    for (int g = 0; g < 15; ++g) {
      pool.push_back(random_gate());
    }
    NetId scan_prev = se;
    for (int f = 0; f < 4; ++f) {
      const NetId q = nl.n_dff(pool[rng.next_below(pool.size())]);
      const CellId flop = nl.driver(q);
      if (rng.next_bool(0.5)) {
        nl.convert_flop(flop, CellType::Rdff, {scan_prev, se, retain});
        nl.set_domain(flop, 1);
        d.rdffs.push_back(flop);
        scan_prev = q;
      }
      pool.push_back(q);
    }
    // Always-on transparent latch (parity-storage style).
    const CellId latch = nl.add_cell(
        CellType::LatchL, {pool[rng.next_below(pool.size())], d.en});
    pool.push_back(nl.cell(latch).out);
  }
  // Combinational cells in the gated domain (isolation clamps).
  for (int g = 0; g < 6; ++g) {
    const NetId y = random_gate();
    nl.set_domain(nl.driver(y), 1);
    pool.push_back(y);
  }
  nl.add_output("y0", pool[pool.size() - 1]);
  nl.add_output("y1", nl.n_xor_tree({pool[5], pool[9], pool[pool.size() - 3]}));
  return d;
}

TEST(CompiledNetlist, SlotRenumberingIsTopological) {
  Rng rng(11);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    ASSERT_EQ(compiled->slot_count(), d.nl.net_count());
    // Slot mapping is a bijection.
    std::vector<bool> seen(compiled->slot_count(), false);
    for (NetId net = 0; net < d.nl.net_count(); ++net) {
      const std::uint32_t slot = compiled->slot(net);
      EXPECT_FALSE(seen[slot]);
      seen[slot] = true;
      EXPECT_EQ(compiled->net_of_slot(slot), net);
    }
    // Every instruction reads only slots below the one it writes, and the
    // stream writes strictly ascending slots — the locality invariant.
    std::uint32_t prev_out = 0;
    for (const CompiledInstr& in : compiled->instrs()) {
      EXPECT_LT(in.in0, in.out);
      EXPECT_LT(in.in1, in.out);
      EXPECT_LT(in.in2, in.out);
      EXPECT_GE(in.out, prev_out);
      prev_out = in.out;
    }
  }
}

TEST(CompiledNetlist, SweepMatchesReferenceInterpreterOnRandomNetlists) {
  Rng rng(22);
  for (int trial = 0; trial < 5; ++trial) {
    const RandomDesign d = random_design(rng);
    const auto compiled = d.nl.compiled();
    for (int sweep = 0; sweep < 10; ++sweep) {
      // Arbitrary source values (including ones unreachable in a real
      // simulation — the kernel must agree regardless).
      std::vector<LaneWord> by_net(d.nl.net_count());
      for (LaneWord& word : by_net) {
        word = rng.next_u64();
      }
      std::vector<LaneWord> by_slot(compiled->slot_count());
      for (NetId net = 0; net < d.nl.net_count(); ++net) {
        by_slot[compiled->slot(net)] = by_net[net];
      }
      CompiledNetlist::reference_eval(d.nl, by_net);
      compiled->eval_full(by_slot.data());
      for (NetId net = 0; net < d.nl.net_count(); ++net) {
        ASSERT_EQ(by_slot[compiled->slot(net)], by_net[net])
            << "trial " << trial << " sweep " << sweep << " net " << net;
      }
    }
  }
}

/// Every combinational net of a live PackedSim must equal the reference
/// interpreter re-run over the engine's own source values, with domain
/// clamps applied — through per-lane stimulus, RETAIN traffic, latch-enable
/// traffic and power cycles.
void expect_comb_matches_reference(const Netlist& nl, PackedSim& sim) {
  DomainId max_domain = 0;
  for (CellId id = 0; id < nl.cell_count(); ++id) {
    max_domain = std::max(max_domain, nl.cell(id).domain);
  }
  std::vector<LaneWord> clamp(static_cast<std::size_t>(max_domain) + 1);
  for (DomainId dom = 0; dom <= max_domain; ++dom) {
    clamp[dom] = sim.domain_powered(dom) ? kAllLanes : 0;
  }
  std::vector<LaneWord> values(nl.net_count());
  for (NetId net = 0; net < nl.net_count(); ++net) {
    values[net] = sim.net_lanes(net);
  }
  // Interpreted per-Cell walk with isolation clamps applied in propagation
  // order — a domain-0 gate fed by a clamped domain-1 net must see the
  // clamped value, exactly as the engine evaluates it.
  for (const CellId id : nl.combinational_order()) {
    const Cell& c = nl.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    values[c.out] = eval_comb_word(c, values) & clamp[c.domain];
    ASSERT_EQ(values[c.out], sim.net_lanes(c.out)) << "cell " << id;
  }
}

TEST(CompiledNetlist, EngineMatchesReferenceThroughPowerAndRetention) {
  Rng build_rng(33);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(build_rng);
    PackedSim sim(d.nl);
    Rng stim(900 + trial);
    sim.set_input_all("se", false);
    sim.set_input_all("retain", false);
    for (int cycle = 0; cycle < 40; ++cycle) {
      for (const NetId in : d.data_inputs) {
        sim.set_input(in, stim.next_u64());
      }
      sim.set_input(d.en, stim.next_u64());
      sim.step();
      expect_comb_matches_reference(d.nl, sim);

      if (cycle % 10 == 9 && !d.rdffs.empty()) {
        sim.set_input_all("retain", true);
        sim.step();  // save edge
        Rng garbage(4000 + cycle);
        sim.power_off(1, &garbage);
        expect_comb_matches_reference(d.nl, sim);  // clamped while off
        sim.power_on(1);
        sim.set_input_all("retain", false);
        sim.step();  // restore edge
        expect_comb_matches_reference(d.nl, sim);
      }
    }
  }
}

TEST(CompiledNetlist, CacheInvalidatedOnStructuralMutation) {
  Netlist nl;
  const NetId a = nl.add_input("a");
  const NetId b = nl.add_input("b");
  const NetId y = nl.n_and(a, b);
  nl.add_output("y", y);
  const auto first = nl.compiled();
  EXPECT_EQ(first.get(), nl.compiled().get());  // cached
  const std::size_t order_size = nl.combinational_order().size();

  const NetId z = nl.n_xor(a, y);  // structural mutation
  nl.add_output("z", z);
  const auto second = nl.compiled();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(second->slot_count(), nl.net_count());
  EXPECT_GT(nl.combinational_order().size(), order_size);
  // The old instance stays valid for holders (self-contained).
  EXPECT_EQ(first->instrs().size(), 1u);
}

/// Cone-incremental detect masks must be bit-identical to the full-circuit
/// reference for every fault and every batch, including when one shared
/// workspace is re-synced across interleaved batches.
TEST(FaultCone, DetectMasksMatchFullReferenceOnRandomNetlists) {
  Rng rng(44);
  for (int trial = 0; trial < 3; ++trial) {
    const RandomDesign d = random_design(rng);
    const CombinationalFrame frame(d.nl);
    const auto faults = collapse_faults(d.nl, enumerate_faults(d.nl));
    ASSERT_GT(faults.size(), 0u);
    std::vector<std::vector<BitVec>> batches(2);
    for (auto& batch : batches) {
      for (int p = 0; p < 64; ++p) {
        batch.push_back(frame.random_pattern(rng));
      }
    }
    std::vector<CombinationalFrame::LoadedPatternBatch> loaded;
    for (const auto& batch : batches) {
      loaded.push_back(frame.load_batch(batch));
    }
    CombinationalFrame::Workspace workspace;
    for (const Fault& fault : faults) {
      // Alternate batches fault-major so the workspace resync path runs.
      for (std::size_t b = 0; b < batches.size(); ++b) {
        const std::uint64_t cone_mask =
            frame.detect_mask(fault, loaded[b], loaded[b].good, workspace);
        const std::uint64_t full_mask =
            frame.detect_mask_full(fault, batches[b], loaded[b].good);
        ASSERT_EQ(cone_mask, full_mask)
            << "trial " << trial << " fault " << fault_name(d.nl, fault)
            << " batch " << b;
      }
    }
  }
}

TEST(FaultCone, DetectMasksMatchFullReferenceOnProtectedFifo) {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }
  const auto faults = collapse_faults(design.netlist(), enumerate_faults(design.netlist()));
  Rng rng(55);
  std::vector<BitVec> patterns;
  for (int p = 0; p < 64; ++p) {
    patterns.push_back(frame.random_pattern(rng));
  }
  const auto loaded = frame.load_batch(patterns);
  CombinationalFrame::Workspace workspace;
  for (const Fault& fault : faults) {
    ASSERT_EQ(frame.detect_mask(fault, loaded, loaded.good, workspace),
              frame.detect_mask_full(fault, patterns, loaded.good))
        << fault_name(design.netlist(), fault);
  }
}

/// fault_simulate (cone path, serial and pooled) must report exactly the
/// coverage and first-detecting-pattern indices of a reference simulator
/// built on full-circuit interpreted evaluation.
TEST(FaultCone, FaultSimulateMatchesReferenceCoverage) {
  const Netlist nl = make_registered_adder(4);
  const CombinationalFrame frame(nl);
  const auto faults = collapse_faults(nl, enumerate_faults(nl));
  Rng rng(66);
  std::vector<BitVec> patterns;
  for (int p = 0; p < 150; ++p) {  // 3 batches, last one partial
    patterns.push_back(frame.random_pattern(rng));
  }

  constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> reference(faults.size(), npos);
  for (std::size_t base = 0; base < patterns.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, patterns.size() - base);
    const std::vector<BitVec> batch(patterns.begin() + base,
                                    patterns.begin() + base + count);
    const auto loaded = frame.load_batch(batch);
    for (std::size_t fi = 0; fi < faults.size(); ++fi) {
      if (reference[fi] != npos) {
        continue;
      }
      const std::uint64_t mask = frame.detect_mask_full(faults[fi], batch, loaded.good);
      if (mask != 0) {
        reference[fi] = base + static_cast<std::size_t>(std::countr_zero(mask));
      }
    }
  }

  const FaultSimResult serial = fault_simulate(frame, faults, patterns);
  EXPECT_EQ(serial.detected_by, reference);
  ThreadPool pool(3);
  const FaultSimResult pooled = fault_simulate(frame, faults, patterns, pool, 16);
  EXPECT_EQ(pooled.detected_by, reference);
  EXPECT_EQ(pooled.detected, serial.detected);
}

}  // namespace
}  // namespace retscan
