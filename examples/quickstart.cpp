// Quickstart: protect a power-gated design with scan-based state
// monitoring, corrupt its retention state during sleep, and watch the
// monitoring architecture repair it — all through the retscan v1 API.
//
//   cmake --build build && ./build/example_quickstart

#include <iostream>

#include "retscan/retscan.hpp"

using namespace retscan;

int main() {
  // 1. A conventional power-gated design: here, a 16-bit counter. Any
  //    Netlist with plain Dff flops works; the paper's FIFO case study is
  //    one Session(FifoSpec{...}, ...) away.
  Netlist counter = make_counter(16);

  // 2. The reliability-aware synthesis step (Fig. 4 of the paper) happens
  //    inside the Session: retention scan chains, Hamming(7,4) + CRC-16
  //    monitoring blocks, correction logic and the mode multiplexers.
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 4;  // 16 flops -> 4 chains of 4
  protection.test_width = 4;
  Session session(std::move(counter), protection);
  std::cout << "protected design: " << session.netlist().cell_count() << " cells, "
            << session.chains().chain_count() << " chains of "
            << session.design().chain_length() << " (retscan " << version_string()
            << ")\n";

  // 3. Run it: count a while, then take it through a protected sleep/wake
  //    cycle with a rush-current upset injected into a retention latch.
  RetentionSession& retention = session.retention();
  retention.sim().set_input("en", true);
  retention.sim().step_n(1000);
  retention.sim().set_input("en", false);  // idle before sleep
  const auto before = scan_snapshot(retention.sim(), session.chains());

  const std::vector<ErrorLocation> upset = {ErrorLocation{2, 1}};
  const auto outcome = retention.sleep_wake_cycle(upset, nullptr);

  std::cout << "upset injected at chain 2, position 1\n"
            << "detected:  " << (outcome.errors_detected ? "yes" : "no") << "\n"
            << "repaired:  " << (outcome.recheck_clean ? "yes" : "no") << "\n"
            << "controller: " << pg_state_name(outcome.final_state) << "\n";

  const bool restored = scan_snapshot(retention.sim(), session.chains()) == before;
  std::cout << "state after wake matches state before sleep: "
            << (restored ? "yes" : "no") << "\n";

  // 4. Back to normal operation.
  retention.sim().set_input("en", true);
  retention.sim().step_n(10);
  std::cout << "counter resumed.\n";
  return restored && outcome.recheck_clean ? 0 : 1;
}
