// Quickstart: protect a power-gated design with scan-based state
// monitoring, corrupt its retention state during sleep, and watch the
// monitoring architecture repair it.
//
//   cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "circuits/generators.hpp"
#include "core/protected_design.hpp"
#include "scan/scan_io.hpp"

using namespace retscan;

int main() {
  // 1. A conventional power-gated design: here, a 16-bit counter. Any
  //    Netlist with plain Dff flops works.
  Netlist counter = make_counter(16);

  // 2. The reliability-aware synthesis step (Fig. 4 of the paper): insert
  //    retention scan chains, generate Hamming(7,4) + CRC-16 monitoring
  //    blocks and the error-correction logic, wire the mode multiplexers.
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 4;  // 16 flops -> 4 chains of 4
  config.test_width = 4;
  const ProtectedDesign design(std::move(counter), config);
  std::cout << "protected design: " << design.netlist().cell_count() << " cells, "
            << design.chains().chain_count() << " chains of "
            << design.chain_length() << "\n";

  // 3. Run it: count a while, then take it through a protected sleep/wake
  //    cycle with a rush-current upset injected into a retention latch.
  RetentionSession session(design);
  session.sim().set_input("en", true);
  session.sim().step_n(1000);
  session.sim().set_input("en", false);  // idle before sleep
  const auto before = scan_snapshot(session.sim(), design.chains());

  const std::vector<ErrorLocation> upset = {ErrorLocation{2, 1}};
  const auto outcome = session.sleep_wake_cycle(upset, nullptr);

  std::cout << "upset injected at chain 2, position 1\n"
            << "detected:  " << (outcome.errors_detected ? "yes" : "no") << "\n"
            << "repaired:  " << (outcome.recheck_clean ? "yes" : "no") << "\n"
            << "controller: " << pg_state_name(outcome.final_state) << "\n";

  const bool restored = scan_snapshot(session.sim(), design.chains()) == before;
  std::cout << "state after wake matches state before sleep: "
            << (restored ? "yes" : "no") << "\n";

  // 4. Back to normal operation.
  session.sim().set_input("en", true);
  session.sim().step_n(10);
  std::cout << "counter resumed.\n";
  return restored && outcome.recheck_clean ? 0 : 1;
}
