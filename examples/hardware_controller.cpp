// Autonomous hardware-controlled sleep/wake with waveform dump: the
// generated Fig. 3(b) controller runs the whole protection protocol in
// gates; this example requests sleep, injects a retention upset, and
// writes a VCD of the control signals (open with gtkwave).
//
//   ./build/example_hardware_controller && gtkwave retscan_episode.vcd

#include <fstream>
#include <iostream>

#include "retscan/design.hpp"
#include "retscan/netlist.hpp"
#include "retscan/sim.hpp"

using namespace retscan;

int main() {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  config.hardware_controller = true;
  config.settle_cycles = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  std::cout << "design with hardware controller: " << design.netlist().cell_count()
            << " cells\n";

  HardwareRetentionSession session(design);
  Rng rng(2024);
  std::vector<BitVec> state;
  for (int c = 0; c < 8; ++c) {
    state.push_back(rng.next_bits(10));
  }
  scan_restore(session.sim(), design.chains(), state);

  std::ofstream vcd_file("retscan_episode.vcd");
  VcdWriter vcd(vcd_file, session.sim());
  for (const char* signal : {"sleep", "ctrl_se", "ctrl_retain", "mon_en",
                             "mon_decode", "mon_clear", "sig_capture", "sig_compare"}) {
    vcd.add_signal(signal);
  }
  vcd.add_signal(design.netlist().output_net("pswitch_en"), "pswitch_en");
  vcd.add_signal(design.netlist().output_net("ctrl_error"), "ctrl_error");
  vcd.add_signal(design.netlist().output_net("ctrl_active"), "ctrl_active");
  vcd.add_signal(design.netlist().output_net("mon_err"), "mon_err");
  vcd.write_header("pg_controller");

  // Episode: sleep request, upset while down, autonomous wake + repair.
  session.set_sleep(true);
  std::size_t cycles = 0;
  auto tick = [&] {
    vcd.sample();
    session.step();
    ++cycles;
  };
  while (!session.asleep() && cycles < 1000) {
    tick();
  }
  std::cout << "asleep after " << cycles << " cycles; injecting upset at chain 5 pos 2\n";
  session.corrupt({ErrorLocation{5, 2}});
  session.set_sleep(false);
  while (!session.active() && !session.error() && cycles < 1000) {
    tick();
  }
  vcd.sample();

  const bool restored = scan_snapshot(session.sim(), design.chains()) == state;
  std::cout << "controller state: " << (session.error() ? "ERROR" : "active")
            << " after " << cycles << " cycles\n"
            << "state restored bit-exactly: " << (restored ? "yes" : "no") << "\n"
            << "waveform written to retscan_episode.vcd\n";
  return (restored && session.active()) ? 0 : 1;
}
