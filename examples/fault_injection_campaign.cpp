// Fault-injection campaign across electrical operating points: how often
// does a wake-up corrupt state, and what does monitoring recover? Sweeps
// the rush-current severity (switch resistance) under the physical
// corruption model, as one declarative CampaignSpec per operating point.
//
//   ./build/example_fault_injection_campaign

#include <iomanip>
#include <iostream>

#include "retscan/retscan.hpp"

using namespace retscan;

int main() {
  const std::size_t sequences = 20000;
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 80;
  Session session(FifoSpec{32, 32}, protection);
  // Injection campaigns shard across the session's work-stealing pool
  // (RETSCAN_THREADS knob); results are bit-identical at any thread count.
  std::cout << "Rush-current severity sweep (32x32 FIFO, 80 chains, Hamming(7,4)+CRC, "
            << session.threads() << " threads)\n";
  std::cout << "# R_switch  droop_V  p_upset      corrupted-wakes  corrected  flagged\n"
            << std::fixed;

  for (const double r : {2.0, 0.8, 0.4, 0.2, 0.1, 0.05}) {
    CampaignSpec spec;
    spec.kind = CampaignKind::Injection;
    spec.mode = InjectionMode::RushModel;
    spec.rush.resistance_ohm = r;
    spec.corruption.vulnerability = 0.02;
    spec.seed = static_cast<std::uint64_t>(r * 1000) + 1;
    spec.sequences = sequences;
    const CampaignResult result = session.run(spec);
    const ValidationStats& stats = result.validation;

    const RushCurrentModel model(spec.rush);
    const CorruptionModel corruption(spec.corruption, model);
    std::cout << std::setprecision(2) << std::setw(9) << r << std::setprecision(3)
              << std::setw(9) << model.peak_droop() << std::scientific
              << std::setprecision(2) << std::setw(12)
              << corruption.upset_probability() << std::fixed << std::setw(13)
              << stats.sequences_with_errors << " /" << sequences << std::setw(10)
              << stats.corrected << std::setw(9) << stats.flagged_uncorrectable
              << "\n";
    if (!result.passed()) {
      std::cout << "ESCAPE DETECTED — should never happen\n";
      return 1;
    }
  }
  std::cout << "\nEvery corrupted wake-up was either repaired or flagged; no state\n"
               "corruption ever reached active mode unnoticed.\n";
  return 0;
}
