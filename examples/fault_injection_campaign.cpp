// Fault-injection campaign across injection models and electrical operating
// points: how often does a wake-up corrupt state, and what does monitoring
// recover? Sweeps the rush-current severity (switch resistance) under the
// physical corruption model.
//
//   ./build/examples/fault_injection_campaign

#include <iomanip>
#include <iostream>

#include "parallel/campaign_runner.hpp"
#include "power/corruption.hpp"
#include "testbench/harness.hpp"

using namespace retscan;

int main() {
  const std::size_t sequences = 20000;
  // Campaigns shard across the work-stealing pool (RETSCAN_THREADS knob);
  // results are bit-identical at any thread count.
  parallel::CampaignRunner runner;
  std::cout << "Rush-current severity sweep (32x32 FIFO, 80 chains, Hamming(7,4)+CRC, "
            << runner.threads() << " threads)\n";
  std::cout << "# R_switch  droop_V  p_upset      corrupted-wakes  corrected  flagged\n"
            << std::fixed;

  for (const double r : {2.0, 0.8, 0.4, 0.2, 0.1, 0.05}) {
    RushParameters rush;
    rush.resistance_ohm = r;
    const RushCurrentModel model(rush);
    CorruptionParameters cparams;
    cparams.vulnerability = 0.02;
    const CorruptionModel corruption(cparams, model);

    ValidationConfig config;
    config.fifo = FifoSpec{32, 32};
    config.chain_count = 80;
    config.mode = InjectionMode::RushModel;
    config.rush = rush;
    config.corruption = cparams;
    config.seed = static_cast<std::uint64_t>(r * 1000) + 1;

    const ValidationStats stats = runner.run_fast(config, sequences).stats;
    std::cout << std::setprecision(2) << std::setw(9) << r << std::setprecision(3)
              << std::setw(9) << model.peak_droop() << std::scientific
              << std::setprecision(2) << std::setw(12)
              << corruption.upset_probability() << std::fixed << std::setw(13)
              << stats.sequences_with_errors << " /" << sequences << std::setw(10)
              << stats.corrected << std::setw(9) << stats.flagged_uncorrectable
              << "\n";
    if (stats.silent_corruptions != 0) {
      std::cout << "ESCAPE DETECTED — should never happen\n";
      return 1;
    }
  }
  std::cout << "\nEvery corrupted wake-up was either repaired or flagged; no state\n"
               "corruption ever reached active mode unnoticed.\n";
  return 0;
}
