// Design-space exploration with the reliability-aware synthesizer (Fig. 4):
// sweep code choices and chain configurations over the 32x32 FIFO, print
// the cost table, the Pareto front, and the quality solution under a
// configuration-file-style set of constraints.
//
//   ./build/example_design_space

#include <iostream>

#include "retscan/design.hpp"
#include "retscan/netlist.hpp"

using namespace retscan;

int main() {
  ReliabilitySynthesizer synth([] { return make_fifo(FifoSpec{32, 32}); },
                               TechLibrary::st120(), 10.0);

  // Candidate configurations: CRC-16 and two Hamming codes across the
  // feasible chain counts of a 1040-flop design.
  std::vector<ProtectionConfig> configs;
  for (const std::size_t w : {4u, 8u, 16u, 40u, 80u}) {
    ProtectionConfig crc;
    crc.kind = CodeKind::CrcDetect;
    crc.chain_count = w;
    crc.test_width = 4;
    configs.push_back(crc);

    ProtectionConfig h74 = crc;
    h74.kind = CodeKind::HammingCorrect;
    h74.hamming_r = 3;
    configs.push_back(h74);
  }
  // Hamming(31,26) fits W=52 exactly (1040 = 52 * 20).
  ProtectionConfig h3126;
  h3126.kind = CodeKind::HammingCorrect;
  h3126.hamming_r = 5;
  h3126.chain_count = 52;
  h3126.test_width = 4;
  configs.push_back(h3126);

  const auto rows = synth.sweep(configs);
  print_cost_table(std::cout, "design space (32x32 FIFO, 100 MHz)", rows);

  std::cout << "\nPareto front (area overhead vs decode energy):\n";
  for (const std::size_t i : ReliabilitySynthesizer::pareto_front(rows)) {
    std::cout << "  " << rows[i].code_name << " W=" << rows[i].chain_count << " ("
              << rows[i].overhead_percent << "%, " << rows[i].dec_energy_nj
              << " nJ)\n";
  }

  // The "configuration file" of Fig. 4: hardware correction required,
  // bounded area and wake-up latency.
  QualityConstraints constraints;
  constraints.min_capability_percent = 10.0;   // must be able to correct
  constraints.max_area_overhead_percent = 60.0;
  constraints.max_latency_ns = 700.0;
  const CostRow& choice = ReliabilitySynthesizer::pick(rows, constraints);
  std::cout << "\nquality solution under constraints (correcting, <=60% area, "
               "<=700 ns):\n  "
            << choice.code_name << " with W=" << choice.chain_count << ": "
            << choice.overhead_percent << "% area, " << choice.latency_ns
            << " ns, " << choice.dec_energy_nj << " nJ per decode\n";
  return 0;
}
