// The paper's case study end to end on the v1 API: a 32x32-bit FIFO
// protected with Hamming(7,4) + CRC-16 over 80 scan chains of 13 flops,
// validated with the Fig. 8 testbench at both tiers — behavioral
// (paper-scale, declarative CampaignSpec) and gate-level (structural tier).
//
//   ./build/example_fifo_protection

#include <iostream>

#include "retscan/retscan.hpp"

using namespace retscan;

namespace {
void report(const ValidationStats& stats) {
  std::cout << stats.sequences << " sequences: detection "
            << 100.0 * stats.detection_rate() << "%, correction "
            << 100.0 * stats.correction_rate() << "%, escapes "
            << stats.silent_corruptions << "\n";
}
}  // namespace

int main() {
  // Paper-scale behavioral campaigns (Section IV geometry). The Session is
  // cheap here: behavioral validation never synthesizes the gate level.
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 80;
  Session session(FifoSpec{32, 32}, protection);

  std::cout << "=== experiment 1: one random retention upset per sequence ===\n";
  CampaignSpec exp1;
  exp1.kind = CampaignKind::Validation;
  exp1.mode = InjectionMode::SingleRandom;
  exp1.seed = 42;
  exp1.sequences = 50000;
  report(session.run(exp1).validation);

  std::cout << "\n=== experiment 2: clustered burst per sequence ===\n";
  CampaignSpec exp2 = exp1;
  exp2.mode = InjectionMode::MultipleBurst;
  exp2.burst_size = 4;
  exp2.burst_spread = 1;
  exp2.sequences = 10000;
  std::cout << "(bursts defeat SEC: all detected, flagged instead of corrected)\n";
  report(session.run(exp2).validation);

  std::cout << "\n=== gate-level confirmation on a FIFO slice ===\n";
  ProtectionConfig slice_protection;
  slice_protection.kind = CodeKind::HammingPlusCrc;
  slice_protection.chain_count = 8;
  Session slice(FifoSpec{32, 2}, slice_protection);
  CampaignSpec gate;
  gate.kind = CampaignKind::Validation;
  gate.tier = ValidationTier::Structural;
  gate.backend = Backend::Reference;  // the scalar cycle-accurate oracle
  gate.seed = 7;
  gate.sequences = 30;
  const CampaignResult confirmation = slice.run(gate);
  report(confirmation.validation);
  std::cout << "comparator mismatches: "
            << confirmation.validation.comparator_mismatches << "\n";

  const TechLibrary tech = TechLibrary::st120();
  const AreaReport base = slice.design().base_area(tech);
  const AreaReport monitor = slice.design().monitor_area(tech);
  std::cout << "\nprotected slice area: base " << base.total_um2 << " um^2 + monitor "
            << monitor.total_um2 << " um^2 ("
            << slice.design().overhead_percent(tech) << "% overhead)\n";
  return confirmation.passed() ? 0 : 1;
}
