// The paper's case study end to end: a 32x32-bit FIFO protected with
// Hamming(7,4) + CRC-16 over 80 scan chains of 13 flops, validated with the
// Fig. 8 testbench at both tiers (gate-level and behavioral).
//
//   ./build/examples/fifo_protection

#include <iostream>

#include "netlist/techlib.hpp"
#include "testbench/harness.hpp"

using namespace retscan;

int main() {
  // Paper-scale behavioral campaign (Section IV geometry).
  ValidationConfig config;
  config.fifo = FifoSpec{32, 32};
  config.chain_count = 80;
  config.kind = CodeKind::HammingPlusCrc;
  config.seed = 42;

  std::cout << "=== experiment 1: one random retention upset per sequence ===\n";
  config.mode = InjectionMode::SingleRandom;
  {
    FastTestbench tb(config);
    const ValidationStats stats = tb.run(50000);
    std::cout << stats.sequences << " sequences: detection "
              << 100.0 * stats.detection_rate() << "%, correction "
              << 100.0 * stats.correction_rate() << "%, escapes "
              << stats.silent_corruptions << "\n";
  }

  std::cout << "\n=== experiment 2: clustered burst per sequence ===\n";
  config.mode = InjectionMode::MultipleBurst;
  config.burst_size = 4;
  config.burst_spread = 1;
  {
    FastTestbench tb(config);
    const ValidationStats stats = tb.run(10000);
    std::cout << stats.sequences << " sequences: detection "
              << 100.0 * stats.detection_rate() << "%, correction "
              << 100.0 * stats.correction_rate()
              << "% (bursts defeat SEC, all flagged), escapes "
              << stats.silent_corruptions << "\n";
  }

  std::cout << "\n=== gate-level confirmation on a FIFO slice ===\n";
  ValidationConfig gate;
  gate.fifo = FifoSpec{32, 2};
  gate.chain_count = 8;
  gate.mode = InjectionMode::SingleRandom;
  gate.seed = 7;
  StructuralTestbench tb(gate);
  const ValidationStats stats = tb.run(30);
  std::cout << stats.sequences << " gate-level sequences: detection "
            << 100.0 * stats.detection_rate() << "%, correction "
            << 100.0 * stats.correction_rate() << "%, comparator mismatches "
            << stats.comparator_mismatches << "\n";

  const TechLibrary tech = TechLibrary::st120();
  const AreaReport base = tb.design().base_area(tech);
  const AreaReport monitor = tb.design().monitor_area(tech);
  std::cout << "\nprotected slice area: base " << base.total_um2 << " um^2 + monitor "
            << monitor.total_um2 << " um^2 ("
            << tb.design().overhead_percent(tech) << "% overhead)\n";
  return 0;
}
