// Manufacturing-test walkthrough (Section III): generate a production
// stuck-at pattern set for the protected design with the built-in ATPG
// (random + PODEM), then deliver it through the narrow tsi/tso test ports
// using the Fig. 5(b) chain concatenation — proving the monitoring
// architecture is transparent to test.
//
//   ./build/examples/manufacturing_test

#include <iostream>

#include "atpg/atpg.hpp"
#include "atpg/scan_test.hpp"
#include "circuits/fifo.hpp"

using namespace retscan;

int main() {
  ProtectionConfig config;
  config.kind = CodeKind::HammingPlusCrc;
  config.chain_count = 8;
  config.test_width = 4;
  const ProtectedDesign design(make_fifo(FifoSpec{32, 2}), config);
  std::cout << "design: " << design.netlist().cell_count() << " cells, 8 chains of "
            << design.chain_length() << ", test I/O width 4\n";
  std::cout << "test-mode chains: 4 concatenated chains of "
            << design.test_config().concatenated_length(design.chain_length())
            << " flops (Fig. 5(b))\n";

  // Combinational test frame with capture-mode constraints.
  CombinationalFrame frame(design.netlist());
  for (const char* name : {"se", "retain", "mon_en", "mon_decode", "mon_clear",
                           "sig_capture", "sig_compare", "test_mode"}) {
    frame.constrain(name, false);
  }

  const auto faults = collapse_faults(design.netlist(), enumerate_faults(design.netlist()));
  std::cout << "collapsed stuck-at fault list: " << faults.size() << " faults\n";

  AtpgOptions options;
  options.random_patterns = 512;
  options.max_backtracks = 300;
  const AtpgResult atpg = run_atpg(frame, faults, options);
  std::cout << "ATPG: coverage " << 100.0 * atpg.coverage() << "% ("
            << atpg.detected_random << " random, " << atpg.detected_podem
            << " PODEM, " << atpg.untestable << " proven untestable, "
            << atpg.aborted << " aborted) with " << atpg.patterns.size()
            << " patterns\n";

  RetentionSession session(design);
  const ScanTestResult delivery =
      apply_test_mode_scan_test(session, design, frame, atpg.patterns);
  std::cout << "delivered " << delivery.patterns_applied
            << " patterns through tsi/tso: " << delivery.mismatches
            << " mismatches\n";
  std::cout << (delivery.all_passed()
                    ? "manufacturing test unaffected by the monitoring logic.\n"
                    : "DELIVERY FAILED\n");
  return delivery.all_passed() ? 0 : 1;
}
