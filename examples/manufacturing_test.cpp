// Manufacturing-test walkthrough (Section III): generate a production
// stuck-at pattern set for the protected design with the built-in ATPG
// (random + PODEM), then deliver it through the narrow tsi/tso test ports
// using the Fig. 5(b) chain concatenation — proving the monitoring
// architecture is transparent to test. One ScanTest CampaignSpec does the
// whole flow; the unbundled Session calls below show the pieces.
//
//   ./build/example_manufacturing_test

#include <iostream>

#include "retscan/retscan.hpp"

using namespace retscan;

int main() {
  ProtectionConfig protection;
  protection.kind = CodeKind::HammingPlusCrc;
  protection.chain_count = 8;
  protection.test_width = 4;
  Session session(FifoSpec{32, 2}, protection);
  std::cout << "design: " << session.netlist().cell_count() << " cells, 8 chains of "
            << session.design().chain_length() << ", test I/O width 4\n";
  std::cout << "test-mode chains: 4 concatenated chains of "
            << session.design().test_config().concatenated_length(
                   session.design().chain_length())
            << " flops (Fig. 5(b))\n";
  std::cout << "collapsed stuck-at fault list: " << session.faults().size()
            << " faults\n";

  // Piecewise: generate on the session's capture-constrained frame...
  AtpgOptions options;
  options.random_patterns = 512;
  options.max_backtracks = 300;
  const AtpgResult atpg = session.run_atpg(options);
  std::cout << "ATPG: coverage " << 100.0 * atpg.coverage() << "% ("
            << atpg.detected_random << " random, " << atpg.detected_podem
            << " PODEM, " << atpg.untestable << " proven untestable, "
            << atpg.aborted << " aborted) with " << atpg.patterns.size()
            << " patterns\n";

  // ...then deliver through the tsi/tso concatenation. Backend::Reference is
  // the scalar tester oracle; the default (Auto) is pooled 64-lane delivery.
  const ScanTestResult delivery = session.run_scan_test(
      atpg.patterns, {.access = ScanAccess::TestMode, .backend = Backend::Reference});
  std::cout << "delivered " << delivery.patterns_applied
            << " patterns through tsi/tso: " << delivery.mismatches
            << " mismatches\n";

  // Or as one declarative campaign (ATPG + pooled delivery, same seed knob).
  CampaignSpec spec;
  spec.kind = CampaignKind::ScanTest;
  spec.atpg = options;
  const CampaignResult campaign = session.run(spec);
  std::cout << "campaign: " << campaign.scan_test.patterns_applied
            << " patterns on " << to_string(campaign.backend) << " ("
            << campaign.threads << " threads), " << campaign.scan_test.mismatches
            << " mismatches\n";
  std::cout << (delivery.all_passed() && campaign.passed()
                    ? "manufacturing test unaffected by the monitoring logic.\n"
                    : "DELIVERY FAILED\n");
  return delivery.all_passed() && campaign.passed() ? 0 : 1;
}
