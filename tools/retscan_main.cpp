// retscan — command-line driver for declarative campaigns.
//
//   retscan run <campaign.spec> [overrides]   run a campaign spec file
//   retscan describe <campaign.spec>          validate + print the plan only
//   retscan serve [flags]                     campaign daemon (docs/serve.md)
//   retscan submit <campaign.spec> [flags]    queue a job on the daemon
//   retscan jobs | job <id> | cancel <id> | shutdown
//   retscan --version                         print the library version
//
// Overrides (applied after the file is parsed; submit forwards them):
//   --seed N --threads N --sequences N --backend NAME --schedule NAME
//   --checkpoint PATH --resume --deadline-ms N
//
// The spec format is `key = value` lines with '#' comments; see
// examples/validation.spec for the full key reference. Exit status: 0 when
// the campaign's pass verdict holds (no silent corruptions / no delivery
// mismatches), 1 otherwise, 2 on usage or spec errors, 3 when a deadline_ms
// budget expired, 130 when interrupted by SIGINT/SIGTERM (partial results —
// and, with --checkpoint, a journal to --resume from). `submit --wait`
// mirrors the same convention from the daemon-side result.

#include <csignal>
#include <cstring>
#include <iostream>
#include <string>

#include "retscan/retscan.hpp"
#include "retscan/serve.hpp"

namespace {

using namespace retscan;

/// Strict override-value parse — the spec-file rules (retscan::parse_u64):
/// '-1' and '10abc' are usage errors, not silently wrapped/truncated
/// campaigns. `max` guards fields narrower than 64 bits.
std::uint64_t parse_override_u64(const std::string& flag, const std::string& value,
                                 std::uint64_t max = ~std::uint64_t{0}) {
  const std::optional<std::uint64_t> parsed = parse_u64(value);
  if (!parsed) {
    throw Error(flag + " needs a non-negative integer, got '" + value + "'");
  }
  if (*parsed > max) {
    throw Error(flag + " = " + value + " is out of range (max " +
                std::to_string(max) + ")");
  }
  return *parsed;
}

int usage(std::ostream& out, int status) {
  out << "usage: retscan run <campaign.spec> [--seed N] [--threads N]\n"
         "                   [--sequences N] [--backend auto|reference|packed|"
         "packed-parallel]\n"
         "                   [--schedule auto|sweep|event]\n"
         "                   [--checkpoint PATH] [--resume] [--deadline-ms N]\n"
         "       retscan describe <campaign.spec>\n"
         "       retscan serve [--socket PATH] [--cache-dir DIR] [--threads N]\n"
         "                     [--active N] [--session-cache N]\n"
         "       retscan submit <campaign.spec> [--socket PATH] [--wait]\n"
         "                      [run overrides as above]\n"
         "       retscan jobs [--socket PATH]\n"
         "       retscan job <id> [--socket PATH]\n"
         "       retscan cancel <id> [--socket PATH]\n"
         "       retscan shutdown [--socket PATH]\n"
         "       retscan --version | --help\n"
         "The daemon socket defaults to $RETSCAN_SOCKET, then ./retscan.sock.\n";
  return status;
}

/// SIGINT/SIGTERM land on the process-global cooperative cancel flag (an
/// async-signal-safe atomic store): running shards finish, pending shards
/// are skipped, the checkpoint journal keeps whatever completed, and the
/// campaign returns with CampaignStatus::Cancelled instead of dying
/// mid-write. A second signal falls back to the default handler — if the
/// graceful path itself wedged, the user can still kill the process.
extern "C" void on_cancel_signal(int signum) {
  retscan::request_global_cancel();
  std::signal(signum, SIG_DFL);
}

/// The spec's base netlist provenance + size — generator vs. imported file,
/// cell/flop counts — so spec debugging never needs a rebuild. `base` is
/// null when the caller skipped loading it (plain FIFO `run`).
void print_netlist_line(std::ostream& out, const SpecFile& file, const Netlist* base) {
  out << "netlist:  ";
  if (file.netlist_file.empty()) {
    // depth x width — the repo-wide convention ("32x2 FIFO slice").
    out << "generated " << file.fifo.depth << "x" << file.fifo.width << " FIFO";
  } else {
    out << "imported " << file.netlist_file;
  }
  if (base != nullptr) {
    const std::size_t ports = base->inputs().size() + base->outputs().size();
    out << " (module " << base->name() << ": " << base->cell_count() - ports
        << " cells, " << base->flops().size() << " flops, "
        << base->inputs().size() << " in / " << base->outputs().size() << " out)";
  }
  out << "\n";
}

void print_plan(std::ostream& out, const SpecFile& file, const Netlist* base,
                bool is_protected, Backend resolved, unsigned threads) {
  const CampaignSpec& c = file.campaign;
  print_netlist_line(out, file, base);
  if (!is_protected) {
    out << "design:   bare — no protection architecture (combinational import; "
           "coverage campaigns only)\n";
  } else {
    out << "design:   " << file.protection.chain_count << " chains, code ";
    switch (file.protection.kind) {
      case CodeKind::CrcDetect:      out << "crc"; break;
      case CodeKind::HammingCorrect: out << "hamming(r=" << file.protection.hamming_r << ")"; break;
      case CodeKind::HammingPlusCrc: out << "hamming(r=" << file.protection.hamming_r << ")+crc"; break;
    }
    out << (file.protection.secded ? " secded" : "") << "\n";
  }
  out << "campaign: " << to_string(c.kind) << ", seed " << c.seed << ", backend "
      << to_string(c.backend);
  if (c.backend == Backend::Auto) {
    out << " -> " << to_string(resolved);
  }
  out << ", " << threads << " threads\n";
  if (c.kind == CampaignKind::Validation || c.kind == CampaignKind::Injection) {
    out << "workload: " << c.sequences << " sequences, tier " << to_string(c.tier)
        << ", mode " << to_string(c.mode) << ", schedule " << to_string(c.schedule)
        << "\n";
  } else if (c.kind == CampaignKind::SequentialCoverage) {
    out << "workload: " << c.sequences << " random sequences x " << c.cycles
        << " cycles, no scan access\n";
  } else {
    out << "workload: atpg " << c.atpg.random_patterns << " random patterns, podem "
        << (c.atpg.run_podem ? "on" : "off");
    if (c.kind == CampaignKind::ScanTest) {
      out << ", access " << to_string(c.access);
    }
    if (c.kind == CampaignKind::TransitionDelay) {
      out << ", launch/capture pairs";
    }
    out << "\n";
  }
  if (!c.checkpoint.empty() || c.deadline_ms) {
    out << "durable:  ";
    if (!c.checkpoint.empty()) {
      out << "checkpoint " << c.checkpoint << (c.resume ? " (resume)" : "");
    }
    if (c.deadline_ms) {
      out << (c.checkpoint.empty() ? "" : ", ") << "deadline " << *c.deadline_ms
          << " ms";
    }
    out << "\n";
  }
}

void print_result(std::ostream& out, const CampaignResult& r,
                  const CampaignSpec& spec) {
  out << "ran:      " << to_string(r.kind) << " on " << to_string(r.backend) << ", "
      << r.threads << " threads x " << r.shard_count << " shards, " << r.seconds
      << " s\n";
  if (r.shards_resumed != 0) {
    out << "resumed:  " << r.shards_resumed << " of " << r.shard_count
        << " shards merged from " << spec.checkpoint << "\n";
  }
  if (r.status != CampaignStatus::Complete) {
    // Interrupted: the statistics below are partial (completed shards
    // only) — still exact for those shards, and checkpointed if armed.
    out << "status:   " << to_string(r.status) << " after " << r.shards_completed
        << " of " << r.shard_count << " shards";
    if (!spec.checkpoint.empty()) {
      out << "; journal " << spec.checkpoint << " holds the completed work "
          << "(rerun with --resume)";
    }
    out << "\n";
  }
  switch (r.kind) {
    case CampaignKind::Validation:
    case CampaignKind::Injection: {
      const ValidationStats& v = r.validation;
      out << "result:   " << v.sequences << " sequences, " << v.sequences_with_errors
          << " with errors, detection " << 100.0 * v.detection_rate()
          << "%, correction " << 100.0 * v.correction_rate() << "%\n"
          << "          flagged-uncorrectable " << v.flagged_uncorrectable
          << ", silent corruptions " << v.silent_corruptions << "\n";
      if (r.activity.settles() != 0) {
        out << "schedule: " << to_string(r.schedule) << " — "
            << r.activity.event_sweeps << " event settles, "
            << r.activity.full_sweeps << " full sweeps ("
            << r.activity.full_sweep_fallbacks << " fallbacks), avg dirty "
            << "fraction " << r.activity.avg_dirty_fraction() << "\n";
      }
      break;
    }
    case CampaignKind::FaultCoverage:
      out << "result:   " << r.atpg.patterns.size() << " patterns, coverage "
          << 100.0 * r.atpg.coverage() << "% (" << r.faults.detected << "/"
          << r.faults.total_faults << " faults via fault-sim)\n";
      break;
    case CampaignKind::TransitionDelay:
      out << "result:   " << r.atpg.patterns.size() << " patterns ("
          << (r.atpg.patterns.empty() ? 0 : r.atpg.patterns.size() - 1)
          << " launch/capture pairs), transition coverage "
          << 100.0 * r.faults.coverage() << "% (" << r.faults.detected << "/"
          << r.faults.total_faults << " faults)\n";
      break;
    case CampaignKind::Bridging:
      out << "result:   " << r.atpg.patterns.size() << " patterns, bridging "
          << "coverage " << 100.0 * r.faults.coverage() << "% ("
          << r.faults.detected << "/" << r.faults.total_faults << " faults)\n";
      break;
    case CampaignKind::SequentialCoverage:
      out << "result:   " << spec.sequences << " sequences x " << spec.cycles
          << " cycles, sequential coverage " << 100.0 * r.faults.coverage()
          << "% (" << r.faults.detected << "/" << r.faults.total_faults
          << " faults)\n";
      break;
    case CampaignKind::ScanTest:
      out << "result:   " << r.scan_test.patterns_applied << " patterns delivered, "
          << r.scan_test.mismatches << " mismatches (coverage "
          << 100.0 * r.atpg.coverage() << "%)\n";
      break;
  }
  out << "verdict:  " << (r.passed() ? "PASS" : "FAIL") << "\n";
}

int run_command(const std::string& command, int argc, char** argv) {
  if (argc < 1) {
    std::cerr << "retscan " << command << ": missing spec file\n";
    return usage(std::cerr, 2);
  }
  SpecFile file = load_spec_file(argv[0]);
  for (int i = 1; i < argc;) {
    const std::string flag = argv[i];
    // Boolean flags (no value operand) first.
    if (flag == "--resume") {
      file.campaign.resume = true;
      i += 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "retscan: " << flag << " needs a value\n";
      return 2;
    }
    const std::string value = argv[i + 1];
    i += 2;
    if (flag == "--seed") {
      file.campaign.seed = parse_override_u64(flag, value);
    } else if (flag == "--threads") {
      file.campaign.threads =
          static_cast<unsigned>(parse_override_u64(flag, value, 4096));
    } else if (flag == "--sequences") {
      file.campaign.sequences = parse_override_u64(flag, value);
    } else if (flag == "--backend") {
      if (!from_string(value, file.campaign.backend)) {
        std::cerr << "retscan: unknown backend '" << value << "'\n";
        return 2;
      }
    } else if (flag == "--schedule") {
      if (!from_string(value, file.campaign.schedule)) {
        std::cerr << "retscan: unknown schedule '" << value
                  << "' (want auto, sweep or event)\n";
        return 2;
      }
    } else if (flag == "--checkpoint") {
      file.campaign.checkpoint = value;
    } else if (flag == "--deadline-ms") {
      file.campaign.deadline_ms = parse_override_u64(flag, value);
    } else {
      std::cerr << "retscan: unknown flag '" << flag << "'\n";
      return usage(std::cerr, 2);
    }
  }

  Session session = make_session(file);
  const Backend resolved = resolve_backend(file.campaign, session);  // validates
  // describe always reports the base netlist's provenance and size; runs
  // over imported circuits get it too. This re-parses the Verilog file the
  // session already consumed — deliberate: the session only exposes the
  // *protected* netlist (and building it would trigger synthesis), while
  // this line reports the pre-protection base. Frontend parses are
  // milliseconds even on c880-scale files. Plain FIFO runs skip the extra
  // generator pass.
  std::optional<Netlist> base;
  if (command == "describe" || !file.netlist_file.empty()) {
    base.emplace(spec_base_netlist(file));
  }
  if (command == "describe") {
    // Provenance first — version, lane geometry, AVX2, resolved threads and
    // schedule — so a described plan can be tied to the binary/environment
    // that would execute it.
    print_build_info(std::cout);
  }
  print_plan(std::cout, file, base ? &*base : nullptr, session.is_protected(),
             resolved, session.threads());
  if (command == "describe") {
    std::cout << "spec OK (describe only, nothing run)\n";
    return 0;
  }
  // Graceful SIGINT/SIGTERM only around the actual campaign body — spec
  // parsing and synthesis stay immediately killable.
  std::signal(SIGINT, on_cancel_signal);
  std::signal(SIGTERM, on_cancel_signal);
  const CampaignResult result = run(session, file.campaign);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  print_result(std::cout, result, file.campaign);
  switch (result.status) {
    case CampaignStatus::Cancelled:
      return 130;  // 128 + SIGINT, the shell convention for "interrupted"
    case CampaignStatus::Timeout:
      return 3;
    case CampaignStatus::Complete:
      break;
  }
  return result.passed() ? 0 : 1;
}

// --- service commands (docs/serve.md) --------------------------------------

/// SIGTERM/SIGINT on the daemon start the graceful drain: stop accepting,
/// finish every queued and running job, then exit. Running campaigns are
/// NOT cancelled — drain means "finish what was accepted". A second signal
/// falls back to the default handler for a hard kill.
extern "C" void on_serve_signal(int signum) {
  serve::Server::notify_signal();
  std::signal(signum, SIG_DFL);
}

int serve_command(int argc, char** argv) {
  std::string socket_path = serve::default_socket_path();
  serve::ServeOptions options;
  for (int i = 0; i < argc;) {
    const std::string flag = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "retscan serve: " << flag << " needs a value\n";
      return 2;
    }
    const std::string value = argv[i + 1];
    i += 2;
    if (flag == "--socket") {
      socket_path = value;
    } else if (flag == "--cache-dir") {
      options.cache_dir = value;
    } else if (flag == "--threads") {
      options.threads =
          static_cast<unsigned>(parse_override_u64(flag, value, 4096));
    } else if (flag == "--active") {
      options.max_active =
          static_cast<std::size_t>(parse_override_u64(flag, value, 64));
    } else if (flag == "--session-cache") {
      options.session_capacity =
          static_cast<std::size_t>(parse_override_u64(flag, value, 1024));
    } else {
      std::cerr << "retscan serve: unknown flag '" << flag << "'\n";
      return usage(std::cerr, 2);
    }
  }
  serve::Server server(socket_path, options);
  // Startup banner: the same provenance block `retscan describe` prints,
  // plus where the daemon is listening and what it caches.
  print_build_info(std::cout);
  std::cout << "socket:   " << server.socket_path() << "\n"
            << "cache:    "
            << (options.cache_dir.empty() ? std::string("(no artifact dir)")
                                          : options.cache_dir)
            << ", " << options.session_capacity << " warm sessions, "
            << options.max_active << " active jobs\n"
            << "serving\n"
            << std::flush;
  std::signal(SIGINT, on_serve_signal);
  std::signal(SIGTERM, on_serve_signal);
  server.run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::cout << "drained, exiting\n";
  return 0;
}

/// Shared --socket extraction for the client commands: removes the flag
/// pair from argv in place and returns the resolved path.
std::string take_socket_flag(int& argc, char** argv) {
  std::string socket_path = serve::default_socket_path();
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[i + 1];
      for (int j = i + 2; j < argc; ++j) {
        argv[j - 2] = argv[j];
      }
      argc -= 2;
      break;
    }
  }
  return socket_path;
}

int submit_command(int argc, char** argv) {
  const std::string socket_path = take_socket_flag(argc, argv);
  if (argc < 1) {
    std::cerr << "retscan submit: missing spec file\n";
    return usage(std::cerr, 2);
  }
  const std::string spec_path = argv[0];
  bool wait = false;
  serve::SubmitOverrides overrides;
  for (int i = 1; i < argc;) {
    const std::string flag = argv[i];
    if (flag == "--wait") {
      wait = true;
      i += 1;
      continue;
    }
    if (flag == "--resume") {
      overrides.resume = true;
      i += 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "retscan submit: " << flag << " needs a value\n";
      return 2;
    }
    const std::string value = argv[i + 1];
    i += 2;
    if (flag == "--seed") {
      overrides.seed = parse_override_u64(flag, value);
    } else if (flag == "--threads") {
      overrides.threads = parse_override_u64(flag, value, 4096);
    } else if (flag == "--sequences") {
      overrides.sequences = parse_override_u64(flag, value);
    } else if (flag == "--backend") {
      overrides.backend = value;
    } else if (flag == "--schedule") {
      overrides.schedule = value;
    } else if (flag == "--checkpoint") {
      overrides.checkpoint = value;
    } else if (flag == "--deadline-ms") {
      overrides.deadline_ms = parse_override_u64(flag, value);
    } else {
      std::cerr << "retscan submit: unknown flag '" << flag << "'\n";
      return usage(std::cerr, 2);
    }
  }

  serve::Client client(socket_path);
  serve::Json request = serve::Json::Object{};
  request.set("cmd", "submit")
      .set("spec", spec_path)
      .set("overrides", to_json(overrides));
  if (!wait) {
    const serve::Json response = client.request(request);
    std::cout << "job:      " << response.at("id").as_u64() << "\n";
    return 0;
  }
  request.set("wait", true);
  client.send(request);
  // Event lines stream until the terminal record arrives as the response.
  // Progress goes to stderr so stdout stays byte-comparable with a
  // one-shot `retscan run` of the same spec.
  for (;;) {
    const serve::Json line = client.read_line();
    if (line.has("event")) {
      std::cerr << "progress: job " << line.at("id").as_u64() << " "
                << line.at("state").as_string() << ", "
                << line.at("shards_done").as_u64() << "/"
                << line.at("shard_count").as_u64() << " shards\n";
      continue;
    }
    if (!line.at("ok").as_bool()) {
      std::cerr << "retscan: daemon: " << line.at("error").as_string() << "\n";
      return 2;
    }
    const serve::JobRecord record = serve::job_from_json(line.at("job"));
    if (record.state == serve::JobState::Failed) {
      std::cerr << "retscan: job " << record.id << " failed: " << record.error
                << "\n";
      return 2;
    }
    if (record.summary) {
      serve::print_summary(std::cout, *record.summary);
    }
    return serve::exit_code_for(record.state,
                                record.summary ? &*record.summary : nullptr);
  }
}

void print_job_line(std::ostream& out, const serve::JobRecord& record) {
  out << record.id << "\t" << to_string(record.state) << "\t"
      << record.shards_done << "/" << record.shard_count << "\t"
      << record.spec_path;
  if (record.summary) {
    out << "\t" << (record.summary->passed ? "PASS" : "FAIL") << " digest "
        << serve::summary_digest(*record.summary);
  }
  if (!record.error.empty()) {
    out << "\t" << record.error;
  }
  out << "\n";
}

int jobs_command(int argc, char** argv) {
  const std::string socket_path = take_socket_flag(argc, argv);
  serve::Client client(socket_path);
  serve::Json request = serve::Json::Object{};
  request.set("cmd", "list");
  const serve::Json response = client.request(request);
  for (const serve::Json& json : response.at("jobs").as_array()) {
    print_job_line(std::cout, serve::job_from_json(json));
  }
  return 0;
}

int job_command(int argc, char** argv) {
  const std::string socket_path = take_socket_flag(argc, argv);
  if (argc < 1) {
    std::cerr << "retscan job: missing job id\n";
    return 2;
  }
  const std::uint64_t id = parse_override_u64("job id", argv[0]);
  serve::Client client(socket_path);
  serve::Json request = serve::Json::Object{};
  request.set("cmd", "status").set("id", id);
  const serve::Json response = client.request(request);
  const serve::JobRecord record = serve::job_from_json(response.at("job"));
  print_job_line(std::cout, record);
  if (record.summary) {
    serve::print_summary(std::cout, *record.summary);
  }
  return 0;
}

int cancel_command(int argc, char** argv) {
  const std::string socket_path = take_socket_flag(argc, argv);
  if (argc < 1) {
    std::cerr << "retscan cancel: missing job id\n";
    return 2;
  }
  const std::uint64_t id = parse_override_u64("job id", argv[0]);
  serve::Client client(socket_path);
  serve::Json request = serve::Json::Object{};
  request.set("cmd", "cancel").set("id", id);
  const serve::Json response = client.request(request);
  const bool cancelled = response.at("cancelled").as_bool();
  std::cout << "cancel:   job " << id << " "
            << (cancelled ? "cancelled" : "not cancellable (unknown or "
                                          "already finished)")
            << "\n";
  return cancelled ? 0 : 1;
}

int shutdown_command(int argc, char** argv) {
  const std::string socket_path = take_socket_flag(argc, argv);
  serve::Client client(socket_path);
  serve::Json request = serve::Json::Object{};
  request.set("cmd", "shutdown");
  client.request(request);
  std::cout << "shutdown: daemon at " << socket_path << " is draining\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(std::cerr, 2);
  }
  const std::string command = argv[1];
  if (command == "--version" || command == "-v" || command == "version") {
    std::cout << "retscan " << retscan::version_string() << "\n";
    return 0;
  }
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  try {
    if (command == "serve") {
      return serve_command(argc - 2, argv + 2);
    }
    if (command == "submit") {
      return submit_command(argc - 2, argv + 2);
    }
    if (command == "jobs") {
      return jobs_command(argc - 2, argv + 2);
    }
    if (command == "job") {
      return job_command(argc - 2, argv + 2);
    }
    if (command == "cancel") {
      return cancel_command(argc - 2, argv + 2);
    }
    if (command == "shutdown") {
      return shutdown_command(argc - 2, argv + 2);
    }
    if (command != "run" && command != "describe") {
      std::cerr << "retscan: unknown command '" << command << "'\n";
      return usage(std::cerr, 2);
    }
    return run_command(command, argc - 2, argv + 2);
  } catch (const retscan::Error& error) {
    std::cerr << "retscan: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "retscan: " << error.what() << "\n";
    return 2;
  }
}
