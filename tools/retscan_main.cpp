// retscan — command-line driver for declarative campaigns.
//
//   retscan run <campaign.spec> [overrides]   run a campaign spec file
//   retscan describe <campaign.spec>          validate + print the plan only
//   retscan --version                         print the library version
//
// Overrides (applied after the file is parsed):
//   --seed N --threads N --sequences N --backend NAME --schedule NAME
//   --checkpoint PATH --resume --deadline-ms N
//
// The spec format is `key = value` lines with '#' comments; see
// examples/validation.spec for the full key reference. Exit status: 0 when
// the campaign's pass verdict holds (no silent corruptions / no delivery
// mismatches), 1 otherwise, 2 on usage or spec errors, 3 when a deadline_ms
// budget expired, 130 when interrupted by SIGINT/SIGTERM (partial results —
// and, with --checkpoint, a journal to --resume from).

#include <csignal>
#include <cstring>
#include <iostream>
#include <string>

#include "retscan/retscan.hpp"

namespace {

using namespace retscan;

/// Strict override-value parse — the spec-file rules (retscan::parse_u64):
/// '-1' and '10abc' are usage errors, not silently wrapped/truncated
/// campaigns. `max` guards fields narrower than 64 bits.
std::uint64_t parse_override_u64(const std::string& flag, const std::string& value,
                                 std::uint64_t max = ~std::uint64_t{0}) {
  const std::optional<std::uint64_t> parsed = parse_u64(value);
  if (!parsed) {
    throw Error(flag + " needs a non-negative integer, got '" + value + "'");
  }
  if (*parsed > max) {
    throw Error(flag + " = " + value + " is out of range (max " +
                std::to_string(max) + ")");
  }
  return *parsed;
}

int usage(std::ostream& out, int status) {
  out << "usage: retscan run <campaign.spec> [--seed N] [--threads N]\n"
         "                   [--sequences N] [--backend auto|reference|packed|"
         "packed-parallel]\n"
         "                   [--schedule auto|sweep|event]\n"
         "                   [--checkpoint PATH] [--resume] [--deadline-ms N]\n"
         "       retscan describe <campaign.spec>\n"
         "       retscan --version | --help\n";
  return status;
}

/// SIGINT/SIGTERM land on the process-global cooperative cancel flag (an
/// async-signal-safe atomic store): running shards finish, pending shards
/// are skipped, the checkpoint journal keeps whatever completed, and the
/// campaign returns with CampaignStatus::Cancelled instead of dying
/// mid-write. A second signal falls back to the default handler — if the
/// graceful path itself wedged, the user can still kill the process.
extern "C" void on_cancel_signal(int signum) {
  retscan::request_global_cancel();
  std::signal(signum, SIG_DFL);
}

/// The spec's base netlist provenance + size — generator vs. imported file,
/// cell/flop counts — so spec debugging never needs a rebuild. `base` is
/// null when the caller skipped loading it (plain FIFO `run`).
void print_netlist_line(std::ostream& out, const SpecFile& file, const Netlist* base) {
  out << "netlist:  ";
  if (file.netlist_file.empty()) {
    // depth x width — the repo-wide convention ("32x2 FIFO slice").
    out << "generated " << file.fifo.depth << "x" << file.fifo.width << " FIFO";
  } else {
    out << "imported " << file.netlist_file;
  }
  if (base != nullptr) {
    const std::size_t ports = base->inputs().size() + base->outputs().size();
    out << " (module " << base->name() << ": " << base->cell_count() - ports
        << " cells, " << base->flops().size() << " flops, "
        << base->inputs().size() << " in / " << base->outputs().size() << " out)";
  }
  out << "\n";
}

void print_plan(std::ostream& out, const SpecFile& file, const Netlist* base,
                bool is_protected, Backend resolved, unsigned threads) {
  const CampaignSpec& c = file.campaign;
  print_netlist_line(out, file, base);
  if (!is_protected) {
    out << "design:   bare — no protection architecture (combinational import; "
           "fault-coverage campaigns only)\n";
  } else {
    out << "design:   " << file.protection.chain_count << " chains, code ";
    switch (file.protection.kind) {
      case CodeKind::CrcDetect:      out << "crc"; break;
      case CodeKind::HammingCorrect: out << "hamming(r=" << file.protection.hamming_r << ")"; break;
      case CodeKind::HammingPlusCrc: out << "hamming(r=" << file.protection.hamming_r << ")+crc"; break;
    }
    out << (file.protection.secded ? " secded" : "") << "\n";
  }
  out << "campaign: " << to_string(c.kind) << ", seed " << c.seed << ", backend "
      << to_string(c.backend);
  if (c.backend == Backend::Auto) {
    out << " -> " << to_string(resolved);
  }
  out << ", " << threads << " threads\n";
  if (c.kind == CampaignKind::Validation || c.kind == CampaignKind::Injection) {
    out << "workload: " << c.sequences << " sequences, tier " << to_string(c.tier)
        << ", mode " << to_string(c.mode) << ", schedule " << to_string(c.schedule)
        << "\n";
  } else {
    out << "workload: atpg " << c.atpg.random_patterns << " random patterns, podem "
        << (c.atpg.run_podem ? "on" : "off");
    if (c.kind == CampaignKind::ScanTest) {
      out << ", access " << to_string(c.access);
    }
    out << "\n";
  }
  if (!c.checkpoint.empty() || c.deadline_ms) {
    out << "durable:  ";
    if (!c.checkpoint.empty()) {
      out << "checkpoint " << c.checkpoint << (c.resume ? " (resume)" : "");
    }
    if (c.deadline_ms) {
      out << (c.checkpoint.empty() ? "" : ", ") << "deadline " << *c.deadline_ms
          << " ms";
    }
    out << "\n";
  }
}

void print_result(std::ostream& out, const CampaignResult& r,
                  const CampaignSpec& spec) {
  out << "ran:      " << to_string(r.kind) << " on " << to_string(r.backend) << ", "
      << r.threads << " threads x " << r.shard_count << " shards, " << r.seconds
      << " s\n";
  if (r.shards_resumed != 0) {
    out << "resumed:  " << r.shards_resumed << " of " << r.shard_count
        << " shards merged from " << spec.checkpoint << "\n";
  }
  if (r.status != CampaignStatus::Complete) {
    // Interrupted: the statistics below are partial (completed shards
    // only) — still exact for those shards, and checkpointed if armed.
    out << "status:   " << to_string(r.status) << " after " << r.shards_completed
        << " of " << r.shard_count << " shards";
    if (!spec.checkpoint.empty()) {
      out << "; journal " << spec.checkpoint << " holds the completed work "
          << "(rerun with --resume)";
    }
    out << "\n";
  }
  switch (r.kind) {
    case CampaignKind::Validation:
    case CampaignKind::Injection: {
      const ValidationStats& v = r.validation;
      out << "result:   " << v.sequences << " sequences, " << v.sequences_with_errors
          << " with errors, detection " << 100.0 * v.detection_rate()
          << "%, correction " << 100.0 * v.correction_rate() << "%\n"
          << "          flagged-uncorrectable " << v.flagged_uncorrectable
          << ", silent corruptions " << v.silent_corruptions << "\n";
      if (r.activity.settles() != 0) {
        out << "schedule: " << to_string(r.schedule) << " — "
            << r.activity.event_sweeps << " event settles, "
            << r.activity.full_sweeps << " full sweeps ("
            << r.activity.full_sweep_fallbacks << " fallbacks), avg dirty "
            << "fraction " << r.activity.avg_dirty_fraction() << "\n";
      }
      break;
    }
    case CampaignKind::FaultCoverage:
      out << "result:   " << r.atpg.patterns.size() << " patterns, coverage "
          << 100.0 * r.atpg.coverage() << "% (" << r.faults.detected << "/"
          << r.faults.total_faults << " faults via fault-sim)\n";
      break;
    case CampaignKind::ScanTest:
      out << "result:   " << r.scan_test.patterns_applied << " patterns delivered, "
          << r.scan_test.mismatches << " mismatches (coverage "
          << 100.0 * r.atpg.coverage() << "%)\n";
      break;
  }
  out << "verdict:  " << (r.passed() ? "PASS" : "FAIL") << "\n";
}

int run_command(const std::string& command, int argc, char** argv) {
  if (argc < 1) {
    std::cerr << "retscan " << command << ": missing spec file\n";
    return usage(std::cerr, 2);
  }
  SpecFile file = load_spec_file(argv[0]);
  for (int i = 1; i < argc;) {
    const std::string flag = argv[i];
    // Boolean flags (no value operand) first.
    if (flag == "--resume") {
      file.campaign.resume = true;
      i += 1;
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "retscan: " << flag << " needs a value\n";
      return 2;
    }
    const std::string value = argv[i + 1];
    i += 2;
    if (flag == "--seed") {
      file.campaign.seed = parse_override_u64(flag, value);
    } else if (flag == "--threads") {
      file.campaign.threads =
          static_cast<unsigned>(parse_override_u64(flag, value, 4096));
    } else if (flag == "--sequences") {
      file.campaign.sequences = parse_override_u64(flag, value);
    } else if (flag == "--backend") {
      if (!from_string(value, file.campaign.backend)) {
        std::cerr << "retscan: unknown backend '" << value << "'\n";
        return 2;
      }
    } else if (flag == "--schedule") {
      if (!from_string(value, file.campaign.schedule)) {
        std::cerr << "retscan: unknown schedule '" << value
                  << "' (want auto, sweep or event)\n";
        return 2;
      }
    } else if (flag == "--checkpoint") {
      file.campaign.checkpoint = value;
    } else if (flag == "--deadline-ms") {
      file.campaign.deadline_ms = parse_override_u64(flag, value);
    } else {
      std::cerr << "retscan: unknown flag '" << flag << "'\n";
      return usage(std::cerr, 2);
    }
  }

  Session session = make_session(file);
  const Backend resolved = resolve_backend(file.campaign, session);  // validates
  // describe always reports the base netlist's provenance and size; runs
  // over imported circuits get it too. This re-parses the Verilog file the
  // session already consumed — deliberate: the session only exposes the
  // *protected* netlist (and building it would trigger synthesis), while
  // this line reports the pre-protection base. Frontend parses are
  // milliseconds even on c880-scale files. Plain FIFO runs skip the extra
  // generator pass.
  std::optional<Netlist> base;
  if (command == "describe" || !file.netlist_file.empty()) {
    base.emplace(spec_base_netlist(file));
  }
  print_plan(std::cout, file, base ? &*base : nullptr, session.is_protected(),
             resolved, session.threads());
  if (command == "describe") {
    std::cout << "spec OK (describe only, nothing run)\n";
    return 0;
  }
  // Graceful SIGINT/SIGTERM only around the actual campaign body — spec
  // parsing and synthesis stay immediately killable.
  std::signal(SIGINT, on_cancel_signal);
  std::signal(SIGTERM, on_cancel_signal);
  const CampaignResult result = run(session, file.campaign);
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  print_result(std::cout, result, file.campaign);
  switch (result.status) {
    case CampaignStatus::Cancelled:
      return 130;  // 128 + SIGINT, the shell convention for "interrupted"
    case CampaignStatus::Timeout:
      return 3;
    case CampaignStatus::Complete:
      break;
  }
  return result.passed() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage(std::cerr, 2);
  }
  const std::string command = argv[1];
  if (command == "--version" || command == "-v" || command == "version") {
    std::cout << "retscan " << retscan::version_string() << "\n";
    return 0;
  }
  if (command == "--help" || command == "-h" || command == "help") {
    return usage(std::cout, 0);
  }
  if (command != "run" && command != "describe") {
    std::cerr << "retscan: unknown command '" << command << "'\n";
    return usage(std::cerr, 2);
  }
  try {
    return run_command(command, argc - 2, argv + 2);
  } catch (const retscan::Error& error) {
    std::cerr << "retscan: " << error.what() << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "retscan: " << error.what() << "\n";
    return 2;
  }
}
