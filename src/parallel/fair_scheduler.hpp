#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace retscan {
class CancelToken;
}  // namespace retscan

namespace retscan::parallel {

/// Fair round-robin dispatcher multiplexing concurrent campaigns onto one
/// shared ThreadPool — the serve daemon's scheduling layer.
///
/// ThreadPool::parallel_for enqueues a whole campaign's shards up front, so
/// a second campaign submitted a moment later waits behind every shard of
/// the first. FairScheduler instead keeps one shard queue per in-flight job
/// and feeds the pool through a bounded dispatch window (one slot per pool
/// worker): each time a slot frees, the next shard comes from the next job
/// in round-robin order. Two concurrent campaigns therefore interleave
/// shard-for-shard instead of running back-to-back, and a short job is
/// never starved by a long one.
///
/// run_job() replicates the parallel_for contract exactly — it blocks until
/// every body has finished or been skipped, a throwing body abandons the
/// bodies not yet started and the lowest-index exception is the one
/// rethrown, a cancelled token skips unstarted bodies — so CampaignRunner
/// can swap it in for parallel_for without changing campaign semantics.
/// Determinism is untouched: the scheduler only reorders which shard runs
/// when; shard seeds and the shard-order merge stay the campaign's.
class FairScheduler {
 public:
  explicit FairScheduler(ThreadPool& pool);

  /// Blocks until no job of this scheduler is in flight (callers must have
  /// returned from run_job; this is a safety net for teardown ordering).
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  ThreadPool& pool() { return pool_; }

  /// Run body(0) .. body(count-1) on the shared pool, interleaved fairly
  /// with every other job currently inside run_job. Thread-safe — each
  /// concurrent caller is one job. Runs inline (serial loop, same
  /// skip/error semantics) on a serial pool or when called from a pool
  /// worker thread.
  void run_job(std::size_t count, const std::function<void(std::size_t)>& body,
               const CancelToken* cancel = nullptr);

 private:
  /// One in-flight run_job call: its body, cursor and completion state.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    const CancelToken* cancel = nullptr;
    std::size_t count = 0;
    std::size_t next = 0;        ///< next body index to dispatch
    std::size_t unfinished = 0;  ///< bodies not yet finished or skipped
    bool abandoned = false;      ///< a body threw: skip the rest
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  void pump_locked();
  void finish_one_locked(Job* job);
  void run_one(Job* job, std::size_t index);

  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  std::vector<Job*> jobs_;       ///< jobs with work left to dispatch or drain
  std::size_t rr_ = 0;           ///< round-robin cursor into jobs_
  std::size_t in_flight_ = 0;    ///< bodies currently enqueued/running
  std::size_t window_;           ///< dispatch cap: one slot per pool worker
};

}  // namespace retscan::parallel
