#include "parallel/campaign_runner.hpp"

#include "sim/packed_sim.hpp"
#include "util/rng.hpp"

namespace retscan::parallel {

std::vector<ShardRange> plan_shards(std::size_t total, std::size_t shard_size) {
  std::vector<ShardRange> shards;
  if (total == 0) {
    return shards;
  }
  if (shard_size == 0) {
    shard_size = total;
  }
  shards.reserve((total + shard_size - 1) / shard_size);
  for (std::size_t first = 0; first < total; first += shard_size) {
    ShardRange shard;
    shard.index = shards.size();
    shard.first = first;
    shard.count = std::min(shard_size, total - first);
    shards.push_back(shard);
  }
  return shards;
}

std::uint64_t shard_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  return Rng::derive_stream(campaign_seed, index);
}

CampaignRunner::CampaignRunner(const CampaignOptions& options)
    : options_(options), pool_(options.threads) {}

namespace {

/// Shared campaign driver on top of CampaignRunner::map_reduce — the one
/// copy of the shard/merge logic: per-shard config with a derived seed
/// stream, run_shard builds and runs the testbench tier.
template <typename RunShard>
CampaignReport run_campaign(CampaignRunner& runner, const ValidationConfig& config,
                            std::size_t count, std::size_t shard_size,
                            RunShard&& run_shard) {
  CampaignReport report;
  report.threads = runner.threads();
  report.shard_count = plan_shards(count, shard_size).size();
  report.stats = runner.map_reduce<ValidationStats>(
      count, shard_size, [&](const ShardRange& shard) {
        ValidationConfig shard_config = config;
        shard_config.seed = shard_seed(config.seed, shard.index);
        return run_shard(shard_config, shard.count);
      });
  return report;
}

}  // namespace

CampaignReport CampaignRunner::run_fast(const ValidationConfig& config,
                                        std::size_t count, std::size_t shard_size) {
  if (shard_size == 0) {
    shard_size = options_.shard_size;
  }
  return run_campaign(*this, config, count, shard_size,
                      [](const ValidationConfig& shard_config, std::size_t n) {
                        return FastTestbench(shard_config).run(n);
                      });
}

CampaignReport CampaignRunner::run_structural_packed(const ValidationConfig& config,
                                                     std::size_t count,
                                                     std::size_t shard_size) {
  if (shard_size == 0) {
    shard_size = options_.structural_shard_size;
  }
  const std::size_t lanes = PackedSim::lane_count();
  shard_size = (shard_size + lanes - 1) / lanes * lanes;
  return run_campaign(*this, config, count, shard_size,
                      [](const ValidationConfig& shard_config, std::size_t n) {
                        return StructuralTestbench(shard_config).run_packed(n);
                      });
}

}  // namespace retscan::parallel
