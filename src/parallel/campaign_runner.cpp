#include "parallel/campaign_runner.hpp"

#include <atomic>
#include <mutex>
#include <optional>

#include "parallel/fair_scheduler.hpp"
#include "sim/packed_sim.hpp"
#include "util/failpoint.hpp"
#include "util/journal.hpp"
#include "util/rng.hpp"

namespace retscan::parallel {

std::vector<ShardRange> plan_shards(std::size_t total, std::size_t shard_size) {
  std::vector<ShardRange> shards;
  if (total == 0) {
    return shards;
  }
  if (shard_size == 0) {
    shard_size = total;
  }
  shards.reserve((total + shard_size - 1) / shard_size);
  for (std::size_t first = 0; first < total; first += shard_size) {
    ShardRange shard;
    shard.index = shards.size();
    shard.first = first;
    shard.count = std::min(shard_size, total - first);
    shards.push_back(shard);
  }
  return shards;
}

std::uint64_t shard_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  return Rng::derive_stream(campaign_seed, index);
}

namespace {

/// True when two campaign configurations differ only in seed — the
/// condition under which a warm testbench can be reseeded instead of
/// rebuilt. Every shape-defining field is compared explicitly; the seed is
/// deliberately excluded (reseeding per shard is the whole point).
bool same_campaign_shape(const ValidationConfig& a, const ValidationConfig& b) {
  return a.fifo.depth == b.fifo.depth && a.fifo.width == b.fifo.width &&
         a.chain_count == b.chain_count && a.kind == b.kind &&
         a.schedule == b.schedule &&
         a.hamming_r == b.hamming_r && a.mode == b.mode &&
         a.burst_size == b.burst_size && a.burst_spread == b.burst_spread &&
         a.corruption.noise_margin_volts == b.corruption.noise_margin_volts &&
         a.corruption.margin_sigma_volts == b.corruption.margin_sigma_volts &&
         a.corruption.vulnerability == b.corruption.vulnerability &&
         a.corruption.cluster_spread == b.corruption.cluster_spread &&
         a.corruption.cluster_fraction == b.corruption.cluster_fraction &&
         a.rush.vdd_volts == b.rush.vdd_volts &&
         a.rush.resistance_ohm == b.rush.resistance_ohm &&
         a.rush.inductance_nh == b.rush.inductance_nh &&
         a.rush.capacitance_nf == b.rush.capacitance_nf &&
         a.rush.stagger_stages == b.rush.stagger_stages;
}

}  // namespace

/// Free-lists of warm testbenches, one tier per campaign kind. acquire()
/// hands out a reseeded warm instance when the shape matches (the steady
/// state: one instance per pool thread), otherwise constructs fresh;
/// release() returns it for the next shard. A shape change retires the old
/// pool — campaigns against a different design rebuild once, as before.
struct CampaignRunner::WorkspacePool {
  template <typename Bench>
  struct Tier {
    std::mutex mutex;
    bool shaped = false;
    ValidationConfig shape;
    std::vector<std::unique_ptr<Bench>> free_list;

    std::unique_ptr<Bench> acquire(const ValidationConfig& config) {
      std::unique_ptr<Bench> warm;
      {
        const std::lock_guard<std::mutex> lock(mutex);
        if (!shaped || !same_campaign_shape(shape, config)) {
          free_list.clear();
          shape = config;
          shaped = true;
        } else if (!free_list.empty()) {
          warm = std::move(free_list.back());
          free_list.pop_back();
        }
      }
      if (warm) {
        warm->reseed(config.seed);  // outside the lock: resets a simulator
        return warm;
      }
      return std::make_unique<Bench>(config);
    }

    void release(std::unique_ptr<Bench> bench) {
      const std::lock_guard<std::mutex> lock(mutex);
      free_list.push_back(std::move(bench));
    }
  };

  Tier<FastTestbench> fast;
  Tier<StructuralTestbench> structural;
};

CampaignRunner::CampaignRunner(const CampaignOptions& options)
    : options_(options), pool_(options.threads),
      workspaces_(std::make_unique<WorkspacePool>()) {}

CampaignRunner::~CampaignRunner() = default;

namespace {

/// Per-shard result pair: campaign statistics plus the shard's drained
/// schedule telemetry, merged in shard order like everything else.
struct ShardOutcome {
  ValidationStats stats;
  ScheduleTelemetry telemetry;
  ShardOutcome& operator+=(const ShardOutcome& other) {
    stats += other.stats;
    telemetry += other.telemetry;
    return *this;
  }
};

/// ShardOutcome ⇄ JournalRecord: the journal stores raw u64 counters (it is
/// a util-layer facility with no view of the testbench types), so the
/// flattening lives here, field by field in declaration order.
JournalRecord encode_outcome(std::uint64_t shard_index,
                             const ShardOutcome& outcome) {
  JournalRecord record;
  record.shard_index = shard_index;
  const ValidationStats& s = outcome.stats;
  const std::uint64_t stats[JournalRecord::kStatsWords] = {
      s.sequences,  s.errors_injected,       s.sequences_with_errors,
      s.detected,   s.corrected,             s.flagged_uncorrectable,
      s.comparator_mismatches, s.silent_corruptions};
  const ScheduleTelemetry& t = outcome.telemetry;
  const std::uint64_t telemetry[JournalRecord::kTelemetryWords] = {
      t.event_sweeps, t.full_sweeps,  t.full_sweep_fallbacks,
      t.event_instrs, t.sweep_instrs, t.instr_capacity};
  for (std::size_t i = 0; i < JournalRecord::kStatsWords; ++i) {
    record.stats[i] = stats[i];
  }
  for (std::size_t i = 0; i < JournalRecord::kTelemetryWords; ++i) {
    record.telemetry[i] = telemetry[i];
  }
  return record;
}

ShardOutcome decode_outcome(const JournalRecord& record) {
  ShardOutcome outcome;
  ValidationStats& s = outcome.stats;
  s.sequences = record.stats[0];
  s.errors_injected = record.stats[1];
  s.sequences_with_errors = record.stats[2];
  s.detected = record.stats[3];
  s.corrected = record.stats[4];
  s.flagged_uncorrectable = record.stats[5];
  s.comparator_mismatches = record.stats[6];
  s.silent_corruptions = record.stats[7];
  ScheduleTelemetry& t = outcome.telemetry;
  t.event_sweeps = record.telemetry[0];
  t.full_sweeps = record.telemetry[1];
  t.full_sweep_fallbacks = record.telemetry[2];
  t.event_instrs = record.telemetry[3];
  t.sweep_instrs = record.telemetry[4];
  t.instr_capacity = record.telemetry[5];
  return outcome;
}

/// Shared campaign driver — the one copy of the shard/merge logic: per-shard
/// config with a derived seed stream, run_shard runs a testbench tier
/// against it, per-shard outcomes merge in shard-index order. The
/// RunControls hooks slot in around that invariant: journaled shards merge
/// from the checkpoint instead of rerunning, a cancelled token (or a
/// Cancelled thrown out of a settle loop) leaves shards incomplete rather
/// than failing the campaign, and every completed shard is appended to the
/// journal the moment it finishes. Because the shard plan, the per-shard
/// seeds and the merge order never depend on which shards came from the
/// journal, a resumed campaign is bit-identical to an uninterrupted one.
template <typename RunShard>
CampaignReport run_campaign(CampaignRunner& runner, const ValidationConfig& config,
                            std::size_t count, std::size_t shard_size,
                            const RunControls& controls, RunShard&& run_shard) {
  CampaignReport report;
  report.threads = runner.threads();
  const std::vector<ShardRange> shards = plan_shards(count, shard_size);
  report.shard_count = shards.size();
  if (controls.journal != nullptr) {
    controls.journal->bind_plan(count, shard_size, shards.size());
  }

  std::vector<std::optional<ShardOutcome>> partial(shards.size());
  std::atomic<std::size_t> resumed{0};
  std::atomic<std::size_t> settled{0};
  const auto note_progress = [&] {
    if (controls.progress) {
      controls.progress(settled.fetch_add(1, std::memory_order_relaxed) + 1,
                        shards.size());
    }
  };
  const std::function<void(std::size_t)> shard_body = [&](std::size_t s) {
    if (controls.journal != nullptr) {
      if (const std::optional<JournalRecord> record =
              controls.journal->find(shards[s].index)) {
        partial[s] = decode_outcome(*record);
        resumed.fetch_add(1, std::memory_order_relaxed);
        note_progress();
        return;
      }
    }
    if (controls.cancel != nullptr && controls.cancel->cancelled()) {
      return;  // skip: merged below as "not completed"
    }
    failpoint("shard.run");
    ValidationConfig shard_config = config;
    shard_config.seed = shard_seed(config.seed, shards[s].index);
    ShardOutcome outcome;
    try {
      outcome = run_shard(shard_config, shards[s].count);
    } catch (const Cancelled&) {
      return;  // interrupted mid-shard (settle-loop cancellation point)
    }
    if (controls.journal != nullptr) {
      controls.journal->append(encode_outcome(shards[s].index, outcome));
    }
    partial[s] = outcome;
    note_progress();
  };
  // The cancel token is deliberately NOT handed to the dispatcher: the body
  // must still run for every shard so journal-resumed outcomes merge even
  // under cancellation; the body's own poll skips the actual work.
  if (controls.scheduler != nullptr) {
    controls.scheduler->run_job(shards.size(), shard_body);
  } else {
    runner.pool().parallel_for(shards.size(), shard_body);
  }

  ShardOutcome merged;
  std::size_t completed = 0;
  for (const std::optional<ShardOutcome>& outcome : partial) {
    if (outcome) {
      merged += *outcome;
      ++completed;
    }
  }
  report.stats = merged.stats;
  report.telemetry = merged.telemetry;
  report.shards_completed = completed;
  report.shards_resumed = resumed.load(std::memory_order_relaxed);
  if (completed == shards.size()) {
    report.status = CampaignStatus::Complete;
  } else if (controls.cancel != nullptr &&
             controls.cancel->why() == CancelReason::Deadline) {
    report.status = CampaignStatus::Timeout;
  } else {
    report.status = CampaignStatus::Cancelled;
  }
  return report;
}

/// Run one shard on a pooled workspace: acquire (reseed or build), run,
/// release. If the run throws, the instance is simply dropped — the pool
/// never sees a half-run testbench. Telemetry is drained before release so
/// a warm instance never carries counters across shards.
template <typename Tier, typename Run>
ShardOutcome run_on_tier(Tier& tier, const ValidationConfig& shard_config,
                         Run&& run) {
  auto bench = tier.acquire(shard_config);
  // Discard acquire-time counters (construction / reseed resync settles) so
  // a shard's telemetry covers exactly its own run. Without this, warm and
  // fresh workspaces report different counts for the same shard — and which
  // shards land on warm instances is a scheduling accident, which would make
  // the merged telemetry vary across thread counts and break the
  // kill/resume byte-identical contract.
  (void)bench->take_telemetry();
  ShardOutcome outcome;
  outcome.stats = run(*bench);
  outcome.telemetry = bench->take_telemetry();
  tier.release(std::move(bench));
  return outcome;
}

}  // namespace

CampaignReport CampaignRunner::run_fast(const ValidationConfig& config,
                                        std::size_t count, std::size_t shard_size,
                                        const RunControls& controls) {
  if (shard_size == 0) {
    shard_size = options_.shard_size;
  }
  return run_campaign(*this, config, count, shard_size, controls,
                      [this](const ValidationConfig& shard_config, std::size_t n) {
                        return run_on_tier(workspaces_->fast, shard_config,
                                           [n](FastTestbench& b) { return b.run(n); });
                      });
}

CampaignReport CampaignRunner::run_structural_packed(const ValidationConfig& config,
                                                     std::size_t count,
                                                     std::size_t shard_size,
                                                     const RunControls& controls) {
  if (shard_size == 0) {
    shard_size = options_.structural_shard_size;
  }
  const std::size_t lanes = PackedSim::lane_count();
  shard_size = (shard_size + lanes - 1) / lanes * lanes;
  return run_campaign(
      *this, config, count, shard_size, controls,
      [this](const ValidationConfig& shard_config, std::size_t n) {
        return run_on_tier(workspaces_->structural, shard_config,
                           [n](StructuralTestbench& b) { return b.run_packed(n); });
      });
}

}  // namespace retscan::parallel
