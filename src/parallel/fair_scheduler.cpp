#include "parallel/fair_scheduler.hpp"

#include <algorithm>

#include "util/cancel.hpp"

namespace retscan::parallel {

FairScheduler::FairScheduler(ThreadPool& pool)
    : pool_(pool), window_(std::max<std::size_t>(1, pool.size())) {}

FairScheduler::~FairScheduler() {
  // Every Job lives on its run_job caller's stack, and the last pool task
  // of a job releases mutex_ before the caller can return — so once jobs_
  // drains, no task references this scheduler any more.
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return jobs_.empty(); });
}

void FairScheduler::finish_one_locked(Job* job) {
  if (--job->unfinished == 0) {
    done_.notify_all();
  }
}

void FairScheduler::pump_locked() {
  while (in_flight_ < window_ && !jobs_.empty()) {
    // Next job with work, round-robin from the cursor. Jobs that were
    // cancelled or abandoned drain their undispatched tail here — those
    // bodies are "skipped", exactly like parallel_for's skip-on-cancel.
    Job* job = nullptr;
    for (std::size_t k = 0; k < jobs_.size(); ++k) {
      Job* candidate = jobs_[(rr_ + k) % jobs_.size()];
      if (candidate->next >= candidate->count) {
        continue;
      }
      if (candidate->abandoned ||
          (candidate->cancel != nullptr && candidate->cancel->cancelled())) {
        candidate->unfinished -= candidate->count - candidate->next;
        candidate->next = candidate->count;
        if (candidate->unfinished == 0) {
          done_.notify_all();
        }
        continue;
      }
      job = candidate;
      rr_ = (rr_ + k + 1) % jobs_.size();
      break;
    }
    if (job == nullptr) {
      return;
    }
    const std::size_t index = job->next++;
    ++in_flight_;
    try {
      pool_.enqueue([this, job, index] { run_one(job, index); });
    } catch (...) {
      // Dispatch itself failed (allocation, pool.dispatch failpoint):
      // treated like a body failure at this index — lowest index wins,
      // the job abandons its remaining bodies, and the count settles so
      // run_job never deadlocks.
      --in_flight_;
      job->abandoned = true;
      if (index < job->error_index) {
        job->error_index = index;
        job->error = std::current_exception();
      }
      finish_one_locked(job);
    }
  }
}

void FairScheduler::run_one(Job* job, std::size_t index) {
  bool skip;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    skip = job->abandoned ||
           (job->cancel != nullptr && job->cancel->cancelled());
  }
  if (!skip) {
    try {
      (*job->body)(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      job->abandoned = true;
      if (index < job->error_index) {
        job->error_index = index;
        job->error = std::current_exception();
      }
    }
  }
  // One locked epilogue: free the window slot, settle this body, refill the
  // window. Holding the lock across the notify means the waiting run_job
  // cannot return (and pop its Job off its stack) until this task is done
  // touching the scheduler.
  const std::lock_guard<std::mutex> lock(mutex_);
  --in_flight_;
  finish_one_locked(job);
  pump_locked();
}

void FairScheduler::run_job(std::size_t count,
                            const std::function<void(std::size_t)>& body,
                            const CancelToken* cancel) {
  if (count == 0) {
    return;
  }
  if (pool_.size() <= 1 || pool_.on_worker_thread()) {
    // Inline fallback, same as parallel_for: serial pools have no window to
    // share, and a pool worker blocking on its own pool would deadlock.
    // Index order and start order coincide, so error/cancel semantics hold.
    for (std::size_t i = 0; i < count; ++i) {
      if (cancel != nullptr && cancel->cancelled()) {
        return;
      }
      body(i);
    }
    return;
  }

  Job job;
  job.body = &body;
  job.cancel = cancel;
  job.count = count;
  job.unfinished = count;
  job.error_index = count;

  std::unique_lock<std::mutex> lock(mutex_);
  jobs_.push_back(&job);
  pump_locked();
  done_.wait(lock, [&job] { return job.unfinished == 0; });
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  if (jobs_.empty()) {
    rr_ = 0;
    done_.notify_all();  // wake a destructor waiting for drain
  } else {
    rr_ %= jobs_.size();
  }
  lock.unlock();
  if (job.error) {
    std::rethrow_exception(job.error);
  }
}

}  // namespace retscan::parallel
