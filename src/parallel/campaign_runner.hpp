#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "testbench/harness.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace retscan {
class CampaignJournal;
}  // namespace retscan

namespace retscan::parallel {

class FairScheduler;

/// One contiguous chunk of a campaign: trials [first, first + count).
struct ShardRange {
  std::size_t index = 0;
  std::size_t first = 0;
  std::size_t count = 0;
};

/// Fixed-size decomposition of `total` trials into shards of `shard_size`
/// (last shard takes the remainder). The plan depends only on
/// (total, shard_size) — never on the thread count — which is what makes
/// merged campaign results bit-identical at any parallelism.
std::vector<ShardRange> plan_shards(std::size_t total, std::size_t shard_size);

/// Seed of shard `index` in a campaign seeded with `campaign_seed`: an
/// independent Rng stream per shard, so a shard's trials are a pure
/// function of (campaign_seed, index).
std::uint64_t shard_seed(std::uint64_t campaign_seed, std::uint64_t index);

struct CampaignOptions {
  /// 0 → RETSCAN_THREADS env override, else hardware_concurrency().
  unsigned threads = 0;
  /// Behavioral-tier (FastTestbench) trials per shard. Large enough to
  /// amortize per-shard testbench construction, small enough that the
  /// work-stealing pool balances tail shards.
  std::size_t shard_size = 4096;
  /// Gate-level trials per shard; rounded up to whole 64-lane batches so a
  /// shard never runs a partially filled PackedSim batch mid-campaign.
  std::size_t structural_shard_size = 256;
};

/// Durability + service hooks threaded through a campaign run. All
/// optional; the default (nullptrs) reproduces the plain uninterruptible
/// single-campaign run exactly. None of them can change the statistics —
/// they reorder, interrupt or observe the shard loop, never reseed it.
struct RunControls {
  /// Polled before each shard; a cancelled token skips the shards that have
  /// not started (completed shards still merge — partial statistics).
  const CancelToken* cancel = nullptr;
  /// Checkpoint journal: completed shards are appended (and flushed) as
  /// they finish; shards already in the journal are merged from it instead
  /// of rerun. Shard-order determinism makes the merge bit-exact.
  CampaignJournal* journal = nullptr;
  /// Fair round-robin shard dispatcher shared across concurrent campaigns
  /// (the serve daemon): shards go through scheduler->run_job instead of
  /// the runner's own parallel_for, interleaving with every other job on
  /// the same pool. Must wrap the same pool as the runner. nullptr → the
  /// runner's pool runs this campaign alone.
  FairScheduler* scheduler = nullptr;
  /// Progress observer, called after each shard completes (run or resumed
  /// — never for cancel-skipped shards) with (shards_done, shard_count).
  /// Invoked from pool threads — must be thread-safe and cheap; exceptions
  /// must not escape.
  std::function<void(std::size_t, std::size_t)> progress;
};

/// Campaign result plus the parallel execution shape, for BENCH_*.json.
struct CampaignReport {
  ValidationStats stats;
  /// Settle-schedule telemetry merged across shards (always zero for the
  /// behavioral tier). Lives beside — never inside — ValidationStats: the
  /// statistics must stay bit-identical across schedules and thread counts,
  /// while telemetry legitimately varies with execution shape.
  ScheduleTelemetry telemetry;
  unsigned threads = 1;
  std::size_t shard_count = 0;
  /// Complete unless a RunControls cancel token fired mid-campaign; then
  /// stats/telemetry cover shards_completed shards, not the whole count.
  CampaignStatus status = CampaignStatus::Complete;
  std::size_t shards_completed = 0;
  /// Subset of shards_completed merged from the journal instead of run.
  std::size_t shards_resumed = 0;
};

/// Shard-map-reduce driver for statistical campaigns: shards a trial count
/// into independent chunks, runs each with its own seed stream on a
/// work-stealing pool, and merges the per-shard statistics in shard order.
/// `threads == 1` reproduces the serial path (same shards, same seeds), so
/// the thread count is purely a throughput knob.
class CampaignRunner {
 public:
  explicit CampaignRunner(const CampaignOptions& options = {});
  ~CampaignRunner();

  unsigned threads() const { return pool_.size(); }
  const CampaignOptions& options() const { return options_; }
  ThreadPool& pool() { return pool_; }

  /// Generic deterministic map-reduce: fn(shard) → Result, merged with
  /// operator+= in shard index order. Result must be value-initializable.
  template <typename Result, typename ShardFn>
  Result map_reduce(std::size_t total, std::size_t shard_size, ShardFn&& fn) {
    const std::vector<ShardRange> shards = plan_shards(total, shard_size);
    std::vector<Result> partial(shards.size());
    pool_.parallel_for(shards.size(),
                       [&](std::size_t s) { partial[s] = fn(shards[s]); });
    Result merged{};
    for (const Result& p : partial) {
      merged += p;
    }
    return merged;
  }

  /// Behavioral-tier validation campaign (FastTestbench::run) across the
  /// pool. shard_size == 0 → options().shard_size.
  CampaignReport run_fast(const ValidationConfig& config, std::size_t count,
                          std::size_t shard_size = 0,
                          const RunControls& controls = {});

  /// Gate-level packed campaign (StructuralTestbench::run_packed): each
  /// shard simulates its own design copy with 64 corruption trials per
  /// batch. shard_size == 0 → options().structural_shard_size.
  CampaignReport run_structural_packed(const ValidationConfig& config,
                                       std::size_t count,
                                       std::size_t shard_size = 0,
                                       const RunControls& controls = {});

 private:
  // Persistent per-thread workspaces: warm testbenches (compiled design +
  // sessions + cone caches) kept across shards and campaigns, reseeded per
  // shard instead of rebuilt. In the steady state one testbench per pool
  // thread circulates; results stay bit-identical because reseed() restores
  // the exact fresh-construction state (see StructuralTestbench::reseed).
  struct WorkspacePool;

  CampaignOptions options_;
  ThreadPool pool_;
  std::unique_ptr<WorkspacePool> workspaces_;
};

}  // namespace retscan::parallel
