// The Session facade's backends route onto the pre-v1 entry points; calling
// them here must not trip their deprecation attributes.
#ifndef RETSCAN_SUPPRESS_DEPRECATED
#define RETSCAN_SUPPRESS_DEPRECATED
#endif

#include "retscan/session.hpp"

#include <string>

#include "atpg/atpg.hpp"
#include "atpg/scan_test.hpp"
#include "circuits/fifo.hpp"
#include "netlist/lint.hpp"
#include "netlist/verilog_reader.hpp"
#include "util/error.hpp"

namespace retscan {

namespace {

/// The primary inputs a capture pattern must hold quiescent: scan-enable,
/// retention and every monitor control. Designs built with the hardware
/// controller own some of these internally (they are nets, not ports), so
/// each is constrained only where it exists as a primary input.
constexpr const char* kCaptureControls[] = {
    "se",        "retain",      "mon_en",      "mon_decode",
    "mon_clear", "sig_capture", "sig_compare", "test_mode",
};

/// Geometry sanity with actionable messages, paid at Session construction
/// (before any synthesis) so a misconfigured spec fails fast.
void check_geometry(std::size_t flops, const ProtectionConfig& protection) {
  RETSCAN_CHECK(protection.chain_count > 0,
                "Session: ProtectionConfig.chain_count must be > 0 — a protected "
                "design needs at least one retention scan chain");
  RETSCAN_CHECK(flops > 0, "Session: the base design has no flip-flops to protect");
  if (flops % protection.chain_count != 0) {
    throw Error("Session: " + std::to_string(flops) +
                " flip-flops cannot split into " +
                std::to_string(protection.chain_count) +
                " equal scan chains; pick a chain_count dividing the flop count");
  }
}

}  // namespace

Session::Session(const FifoSpec& fifo, const ProtectionConfig& protection,
                 const SessionOptions& options)
    : options_(options), protection_(protection), fifo_(fifo), has_fifo_(true) {
  check_geometry(fifo.flop_count(), protection);
}

Session::Session(Netlist base, const ProtectionConfig& protection,
                 const SessionOptions& options)
    : options_(options), protection_(protection) {
  check_geometry(base.flops().size(), protection);
  base_.emplace(std::move(base));
}

Session::Session(BareTag, Netlist base, const SessionOptions& options)
    : options_(options), protected_(false) {
  base_.emplace(std::move(base));
}

Session Session::unprotected(Netlist base, const SessionOptions& options) {
  return Session(BareTag{}, std::move(base), options);
}

Session Session::from_verilog(const std::string& path,
                              const ProtectionConfig& protection,
                              const SessionOptions& options) {
  Netlist imported = Netlist::from_verilog(path);
  // The parser already guarantees driven nets and acyclic logic; the lint
  // pass adds the structural checks a synthesis handoff would insist on.
  // Dangling/unreachable logic and floating inputs (e.g. an unread clock
  // port) are tolerated — they waste area but simulate fine.
  const std::vector<LintIssue> issues = lint_netlist(imported);
  std::string hard;
  for (const LintIssue& issue : issues) {
    if (issue.kind == LintKind::UndrivenNet || issue.kind == LintKind::CombinationalLoop) {
      hard += (hard.empty() ? "" : "; ") + issue.message;
    }
  }
  if (!hard.empty()) {
    throw Error("Session::from_verilog: " + path + " fails lint: " + hard);
  }
  if (imported.flops().empty()) {
    return unprotected(std::move(imported), options);
  }
  return Session(std::move(imported), protection, options);
}

Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

const FifoSpec& Session::fifo() const {
  RETSCAN_CHECK(has_fifo_,
                "Session::fifo: this session wraps an arbitrary netlist, not a "
                "FIFO — construct it from a FifoSpec to run validation campaigns");
  return fifo_;
}

const ProtectedDesign& Session::design() {
  if (!protected_) {
    throw Error(
        "Session::design: this is a bare session (unprotected netlist import) "
        "— there is no protection architecture to synthesize; construct the "
        "Session with a ProtectionConfig over a flop-bearing netlist for "
        "scan/retention workloads");
  }
  if (!design_) {
    Netlist base = has_fifo_ ? make_fifo(fifo_) : std::move(*base_);
    base_.reset();
    design_ = std::make_unique<ProtectedDesign>(std::move(base), protection_);
  }
  return *design_;
}

const Netlist& Session::netlist() {
  return protected_ ? design().netlist() : *base_;
}

CombinationalFrame& Session::frame() {
  if (!frame_) {
    const Netlist& nl = netlist();
    frame_ = std::make_unique<CombinationalFrame>(nl);
    // Capture constraints only apply to the protected fabric's control
    // inputs; a bare netlist's ports are all fair game for ATPG (an imported
    // design may even name a port "se" — it is not ours to pin).
    if (protected_) {
      for (const char* name : kCaptureControls) {
        if (!nl.has_net(name)) {
          continue;
        }
        const NetId net = nl.find_net(name);
        for (const NetId pi : frame_->pi_nets()) {
          if (pi == net) {
            frame_->constrain(name, false);
            break;
          }
        }
      }
    }
  }
  return *frame_;
}

const std::vector<Fault>& Session::faults() {
  if (!faults_) {
    faults_ = std::make_unique<std::vector<Fault>>(
        collapse_faults(netlist(), enumerate_faults(netlist())));
  }
  return *faults_;
}

RetentionSession& Session::retention() {
  if (!retention_) {
    retention_ = std::make_unique<RetentionSession>(design());
  }
  return *retention_;
}

parallel::CampaignRunner& Session::runner() {
  if (!runner_) {
    parallel::CampaignOptions options;
    options.threads = options_.threads;
    runner_ = std::make_unique<parallel::CampaignRunner>(options);
  }
  return *runner_;
}

unsigned Session::threads() const {
  if (runner_) {
    return runner_->threads();
  }
  return options_.threads != 0 ? options_.threads
                               : ThreadPool::default_thread_count();
}

CampaignResult Session::run(const CampaignSpec& spec) {
  return ::retscan::run(*this, spec);
}

ScanTestResult Session::run_scan_test(const std::vector<BitVec>& patterns,
                                      const ScanTestOptions& options) {
  if (!protected_) {
    throw Error(
        "Session::run_scan_test: bare sessions have no scan fabric to deliver "
        "patterns through — wrap the netlist in a ProtectionConfig (it needs "
        "flip-flops), or run a fault-coverage campaign instead");
  }
  if (options.access == ScanAccess::FullWidth) {
    throw Error(
        "Session::run_scan_test: full-width scan access only applies to plain "
        "scanned netlists — in a ProtectedDesign the per-chain si ports are "
        "superseded by the monitor feedback muxes, so responses would "
        "mismatch; use ScanAccess::TestMode (the Fig. 5(b) tsi/tso "
        "concatenation), or drive apply_scan_test on a pre-monitor netlist "
        "directly");
  }
  Backend backend = options.backend;
  if (backend == Backend::Auto) {
    backend = Backend::PackedParallel;
  }
  RETSCAN_CHECK(options.patterns_per_shard > 0,
                "Session::run_scan_test: patterns_per_shard must be > 0 (it is "
                "floored to whole 64-lane batches, minimum one batch)");
  CombinationalFrame& test_frame = frame();
  for (const BitVec& pattern : patterns) {
    if (pattern.size() != test_frame.pattern_width()) {
      throw Error("Session::run_scan_test: pattern width " +
                  std::to_string(pattern.size()) + " does not match the frame's " +
                  std::to_string(test_frame.pattern_width()) +
                  " (PIs + scan flops) — generate patterns with run_atpg() or "
                  "CombinationalFrame::random_pattern()");
    }
  }

  switch (backend) {
    case Backend::Reference:
      return apply_test_mode_scan_test(retention(), design(), test_frame, patterns);
    case Backend::Packed:
      return apply_test_mode_scan_test_packed(design(), test_frame, patterns);
    case Backend::PackedParallel:
    default:
      return apply_test_mode_scan_test_packed(design(), test_frame, patterns,
                                              pool(), options.patterns_per_shard);
  }
}

AtpgResult Session::run_atpg(const AtpgOptions& options) {
  return ::retscan::run_atpg(frame(), faults(), options);
}

}  // namespace retscan
