#include "retscan/runtime.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace retscan {

namespace {

/// Strict positive-decimal-integer parse shared by both knobs: the whole
/// string must be consumed, the value must be > 0 and fit without overflow.
std::optional<unsigned long long> parse_positive(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value <= 0) {
    return std::nullopt;
  }
  return static_cast<unsigned long long>(value);
}

unsigned hardware_fallback() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned threads_override() {
  const char* env = std::getenv("RETSCAN_THREADS");
  if (env == nullptr) {
    return 0;
  }
  const auto value = parse_positive(env);
  if (value && *value <= 4096) {
    return static_cast<unsigned>(*value);
  }
  std::fprintf(stderr,
               "[retscan] warning: invalid RETSCAN_THREADS='%s' (want 1..4096); "
               "using %u\n",
               env, hardware_fallback());
  return 0;
}

std::optional<std::size_t> sequences_override() {
  const char* env = std::getenv("RETSCAN_SEQUENCES");
  if (env == nullptr) {
    return std::nullopt;
  }
  const auto value = parse_positive(env);
  if (value) {
    return static_cast<std::size_t>(*value);
  }
  std::fprintf(stderr,
               "[retscan] warning: invalid RETSCAN_SEQUENCES='%s' (want a "
               "positive integer); using the built-in default\n",
               env);
  return std::nullopt;
}

}  // namespace

RuntimeConfig runtime_config() {
  RuntimeConfig config;
  config.threads = runtime_threads();
  config.sequences = sequences_override();
  return config;
}

unsigned runtime_threads() {
  const unsigned override = threads_override();
  return override != 0 ? override : hardware_fallback();
}

std::size_t runtime_sequences(std::size_t default_count) {
  return sequences_override().value_or(default_count);
}

}  // namespace retscan
