#include "retscan/runtime.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <ostream>
#include <thread>

#include "retscan/version.hpp"
#include "util/lanes.hpp"

namespace retscan {

namespace {

/// Strict positive-decimal-integer parse shared by both knobs: the whole
/// string must be consumed, the value must be > 0 and fit without overflow.
std::optional<unsigned long long> parse_positive(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || value <= 0) {
    return std::nullopt;
  }
  return static_cast<unsigned long long>(value);
}

unsigned hardware_fallback() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned threads_override() {
  const char* env = std::getenv("RETSCAN_THREADS");
  if (env == nullptr) {
    return 0;
  }
  const auto value = parse_positive(env);
  if (value && *value <= 4096) {
    return static_cast<unsigned>(*value);
  }
  std::fprintf(stderr,
               "[retscan] warning: invalid RETSCAN_THREADS='%s' (want 1..4096); "
               "using %u\n",
               env, hardware_fallback());
  return 0;
}

std::optional<std::size_t> sequences_override() {
  const char* env = std::getenv("RETSCAN_SEQUENCES");
  if (env == nullptr) {
    return std::nullopt;
  }
  const auto value = parse_positive(env);
  if (value) {
    return static_cast<std::size_t>(*value);
  }
  std::fprintf(stderr,
               "[retscan] warning: invalid RETSCAN_SEQUENCES='%s' (want a "
               "positive integer); using the built-in default\n",
               env);
  return std::nullopt;
}

std::optional<Schedule> schedule_override() {
  const char* env = std::getenv("RETSCAN_SCHEDULE");
  if (env == nullptr) {
    return std::nullopt;
  }
  Schedule schedule;
  if (from_string(env, schedule)) {
    return schedule;
  }
  std::fprintf(stderr,
               "[retscan] warning: invalid RETSCAN_SCHEDULE='%s' (want "
               "auto, sweep or event); ignoring\n",
               env);
  return std::nullopt;
}

RuntimeConfig parse_runtime_config() {
  RuntimeConfig config;
  const unsigned override = threads_override();
  config.threads = override != 0 ? override : hardware_fallback();
  config.sequences = sequences_override();
  config.schedule = schedule_override();
  return config;
}

std::mutex& config_mutex() {
  static std::mutex mutex;
  return mutex;
}

std::optional<RuntimeConfig>& config_cache() {
  static std::optional<RuntimeConfig> cache;
  return cache;
}

}  // namespace

RuntimeConfig runtime_config() {
  const std::lock_guard<std::mutex> lock(config_mutex());
  std::optional<RuntimeConfig>& cache = config_cache();
  if (!cache) {
    cache = parse_runtime_config();
  }
  return *cache;
}

RuntimeConfig runtime_config_refresh() {
  const std::lock_guard<std::mutex> lock(config_mutex());
  config_cache() = parse_runtime_config();
  return *config_cache();
}

unsigned runtime_threads() {
  return runtime_config().threads;
}

std::size_t runtime_sequences(std::size_t default_count) {
  return runtime_config().sequences.value_or(default_count);
}

Schedule runtime_schedule(Schedule requested) {
  if (requested != Schedule::Auto) {
    return requested;
  }
  return runtime_config().schedule.value_or(Schedule::Auto);
}

BuildInfo build_info() {
  const RuntimeConfig config = runtime_config();
  BuildInfo info;
  info.version = RETSCAN_VERSION_STRING;
  info.lane_words = kLaneWords;
  info.lane_bits = kLaneBlockBits;
#if RETSCAN_LANE_BLOCK_AVX2
  info.avx2 = true;
#else
  info.avx2 = false;
#endif
  info.threads = config.threads;
  info.schedule = config.schedule;
  return info;
}

void print_build_info(std::ostream& out) {
  const BuildInfo info = build_info();
  out << "retscan:  " << info.version << "\n"
      << "lanes:    " << info.lane_words << " x 64 = " << info.lane_bits
      << " per block (" << (info.avx2 ? "avx2" : "portable") << " kernels)\n"
      << "threads:  " << info.threads << " ("
      << (std::getenv("RETSCAN_THREADS") != nullptr ? "RETSCAN_THREADS"
                                                    : "hardware")
      << ")\n"
      << "schedule: "
      << (info.schedule ? to_string(*info.schedule) : "auto");
  if (!info.schedule) {
    out << " (engine activity probing)";
  } else {
    out << " (RETSCAN_SCHEDULE)";
  }
  out << "\n";
}

}  // namespace retscan
