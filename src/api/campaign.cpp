// The campaign router is the one place that dispatches onto the pre-v1
// entry points (testbenches, CampaignRunner, apply_* deliveries); calling
// them here must not trip their deprecation attributes.
#ifndef RETSCAN_SUPPRESS_DEPRECATED
#define RETSCAN_SUPPRESS_DEPRECATED
#endif

#include "retscan/campaign.hpp"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "atpg/atpg.hpp"
#include "atpg/fault_models.hpp"
#include "atpg/scan_test.hpp"
#include "circuits/fifo.hpp"
#include "retscan/runtime.hpp"
#include "retscan/session.hpp"
#include "retscan/version.hpp"
#include "sim/packed_sim.hpp"
#include "util/error.hpp"
#include "util/fnv.hpp"
#include "util/journal.hpp"

namespace retscan {

const char* to_string(CampaignKind kind) {
  switch (kind) {
    case CampaignKind::Validation:         return "validation";
    case CampaignKind::Injection:          return "injection";
    case CampaignKind::FaultCoverage:      return "fault-coverage";
    case CampaignKind::ScanTest:           return "scan-test";
    case CampaignKind::TransitionDelay:    return "transition-delay";
    case CampaignKind::Bridging:           return "bridging";
    case CampaignKind::SequentialCoverage: return "sequential-coverage";
  }
  return "?";
}

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::Auto:           return "auto";
    case Backend::Reference:      return "reference";
    case Backend::Packed:         return "packed";
    case Backend::PackedParallel: return "packed-parallel";
  }
  return "?";
}

const char* to_string(ValidationTier tier) {
  switch (tier) {
    case ValidationTier::Behavioral: return "behavioral";
    case ValidationTier::Structural: return "structural";
  }
  return "?";
}

const char* to_string(ScanAccess access) {
  switch (access) {
    case ScanAccess::TestMode:  return "test-mode";
    case ScanAccess::FullWidth: return "full-width";
  }
  return "?";
}

const char* to_string(InjectionMode mode) {
  switch (mode) {
    case InjectionMode::None:          return "none";
    case InjectionMode::SingleRandom:  return "single-random";
    case InjectionMode::MultipleBurst: return "multiple-burst";
    case InjectionMode::RushModel:     return "rush-model";
  }
  return "?";
}

namespace {

/// Generic inverse over an enum's value list via to_string.
template <typename Enum>
bool enum_from_string(std::string_view text, Enum& out,
                      std::initializer_list<Enum> values) {
  for (const Enum value : values) {
    if (text == to_string(value)) {
      out = value;
      return true;
    }
  }
  return false;
}

}  // namespace

bool from_string(std::string_view text, CampaignKind& out) {
  return enum_from_string(
      text, out,
      {CampaignKind::Validation, CampaignKind::Injection, CampaignKind::FaultCoverage,
       CampaignKind::ScanTest, CampaignKind::TransitionDelay, CampaignKind::Bridging,
       CampaignKind::SequentialCoverage});
}

bool from_string(std::string_view text, Backend& out) {
  return enum_from_string(text, out,
                          {Backend::Auto, Backend::Reference, Backend::Packed,
                           Backend::PackedParallel});
}

bool from_string(std::string_view text, ValidationTier& out) {
  return enum_from_string(text, out,
                          {ValidationTier::Behavioral, ValidationTier::Structural});
}

bool from_string(std::string_view text, ScanAccess& out) {
  return enum_from_string(text, out, {ScanAccess::TestMode, ScanAccess::FullWidth});
}

bool from_string(std::string_view text, InjectionMode& out) {
  return enum_from_string(text, out,
                          {InjectionMode::None, InjectionMode::SingleRandom,
                           InjectionMode::MultipleBurst, InjectionMode::RushModel});
}

bool CampaignResult::passed() const {
  if (status != CampaignStatus::Complete) {
    // Partial statistics can't certify anything: a cancelled or timed-out
    // campaign never passes, however clean the shards that did finish look.
    return false;
  }
  switch (kind) {
    case CampaignKind::Validation:
    case CampaignKind::Injection:
      return validation.silent_corruptions == 0;
    case CampaignKind::FaultCoverage:
    case CampaignKind::TransitionDelay:
    case CampaignKind::Bridging:
    case CampaignKind::SequentialCoverage:
      return true;  // a coverage measurement has no pass/fail verdict
    case CampaignKind::ScanTest:
      return scan_test.all_passed();
  }
  return false;
}

namespace {

bool is_validation_kind(CampaignKind kind) {
  return kind == CampaignKind::Validation || kind == CampaignKind::Injection;
}

/// Kinds that run ATPG to build the pattern set they replay.
bool is_pattern_kind(CampaignKind kind) {
  return kind == CampaignKind::FaultCoverage || kind == CampaignKind::ScanTest ||
         kind == CampaignKind::TransitionDelay || kind == CampaignKind::Bridging;
}

/// Kinds whose result is a FaultSimResult coverage measurement.
bool is_coverage_kind(CampaignKind kind) {
  return kind == CampaignKind::FaultCoverage ||
         kind == CampaignKind::TransitionDelay || kind == CampaignKind::Bridging ||
         kind == CampaignKind::SequentialCoverage;
}

/// The session's geometry + the spec's workload, as the legacy testbenches
/// expect it. This mapping is what makes Session-routed campaigns
/// bit-identical to the legacy entry points for the same seed.
ValidationConfig validation_config(Session& session, const CampaignSpec& spec) {
  ValidationConfig config;
  config.fifo = session.fifo();
  config.chain_count = session.protection().chain_count;
  config.kind = session.protection().kind;
  config.hamming_r = session.protection().hamming_r;
  config.mode = spec.kind == CampaignKind::Injection ? InjectionMode::RushModel
                                                     : spec.mode;
  config.burst_size = spec.burst_size;
  config.burst_spread = spec.burst_spread;
  config.seed = spec.seed;
  config.corruption = spec.corruption;
  config.rush = spec.rush;
  config.schedule = spec.schedule;
  return config;
}

[[noreturn]] void reject(const CampaignSpec& spec, const std::string& why) {
  throw Error("CampaignSpec (" + std::string(to_string(spec.kind)) + "/" +
              to_string(spec.backend) + "): " + why);
}

/// The campaign fingerprint is a plain FNV-1a 64 over the fields below —
/// the shared util accumulator, so journal headers and artifact keys hash
/// identically everywhere.
using Fingerprint = Fnv1a;

/// True when the spec carries any of the durability knobs this PR routes
/// through the sharded campaign runner.
bool wants_durability(const CampaignSpec& spec) {
  return !spec.checkpoint.empty() || spec.resume || spec.deadline_ms.has_value();
}

void validate_durability(const CampaignSpec& spec, const Session& session) {
  if (spec.deadline_ms && *spec.deadline_ms == 0) {
    reject(spec,
           "deadline_ms = 0 would time out before the first shard — drop the "
           "key for no deadline, or give the campaign a real budget");
  }
  if (spec.resume && spec.checkpoint.empty()) {
    reject(spec,
           "resume = true without a checkpoint path: there is no journal to "
           "resume from — set checkpoint = <path> (the same path the "
           "interrupted run used)");
  }
  if (!wants_durability(spec)) {
    return;
  }
  // Checkpoint/resume/deadline all ride the shard loop of the pooled
  // campaign runner — the only place with a resumable unit of work.
  if (!is_validation_kind(spec.kind)) {
    reject(spec,
           "checkpoint/resume/deadline_ms ride the sharded validation "
           "campaign runner; coverage and scan-test kinds replay a "
           "fault/pattern set in one pass — split the workload and rerun "
           "instead");
  }
  if (spec.backend == Backend::Reference || spec.backend == Backend::Packed) {
    reject(spec,
           std::string("checkpoint/resume/deadline_ms need the sharded "
                       "campaign runner, but Backend::") +
               (spec.backend == Backend::Reference ? "Reference" : "Packed") +
               " runs one unsharded pass with nothing to checkpoint between "
               "— use Backend::PackedParallel or Backend::Auto");
  }
  if (!spec.checkpoint.empty()) {
    namespace fs = std::filesystem;
    const fs::path path(spec.checkpoint);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      reject(spec, "checkpoint path '" + spec.checkpoint +
                       "' is a directory — name a journal file inside it");
    }
    fs::path dir = path.parent_path();
    if (dir.empty()) {
      dir = ".";
    }
    if (!fs::is_directory(dir, ec)) {
      reject(spec, "checkpoint directory '" + dir.string() +
                       "' does not exist (or is not a directory) — create it "
                       "first; the journal only creates the file, never its "
                       "parents");
    }
    if (::access(dir.c_str(), W_OK) != 0) {
      reject(spec, "checkpoint directory '" + dir.string() +
                       "' is not writable — the journal appends a record "
                       "after every shard; pick a writable location");
    }
    if (spec.resume) {
      if (const std::optional<CampaignJournal::Header> header =
              CampaignJournal::peek(spec.checkpoint)) {
        const std::uint64_t current = campaign_fingerprint(spec, session);
        if (header->fingerprint != current || header->seed != spec.seed) {
          reject(spec,
                 "checkpoint journal '" + spec.checkpoint +
                     "' was written by a different campaign, design, seed or "
                     "library version — merging it would corrupt the "
                     "statistics; rerun without resume to discard it, or "
                     "restore the original spec/netlist/seed");
        }
      }
      // No file (or a torn header) is fine: resume degenerates to a fresh
      // checkpointed run.
    }
  }
}

}  // namespace

std::uint64_t campaign_fingerprint(const CampaignSpec& spec, const Session& session) {
  Fingerprint fp;
  fp.add_text(RETSCAN_VERSION_STRING);
  // Workload: everything that shapes per-shard outcomes. The seed and shard
  // plan are stored (and checked) separately in the journal header; the
  // seed also folds in here so one comparison catches everything.
  fp.add(static_cast<std::uint64_t>(spec.kind));
  fp.add(static_cast<std::uint64_t>(spec.tier));
  fp.add(static_cast<std::uint64_t>(runtime_schedule(spec.schedule)));
  fp.add(spec.seed);
  fp.add(spec.sequences);
  fp.add(spec.cycles);
  fp.add(static_cast<std::uint64_t>(spec.mode));
  fp.add(spec.burst_size);
  fp.add(spec.burst_spread);
  fp.add_double(spec.corruption.noise_margin_volts);
  fp.add_double(spec.corruption.margin_sigma_volts);
  fp.add_double(spec.corruption.vulnerability);
  fp.add(spec.corruption.cluster_spread);
  fp.add_double(spec.corruption.cluster_fraction);
  fp.add_double(spec.rush.vdd_volts);
  fp.add_double(spec.rush.resistance_ohm);
  fp.add_double(spec.rush.inductance_nh);
  fp.add_double(spec.rush.capacitance_nf);
  fp.add(spec.rush.stagger_stages);
  // Design geometry: the session side of validation_config(). Hashing the
  // construction inputs (not the synthesized gates) keeps lazy sessions
  // lazy; equal inputs synthesize equal designs.
  fp.add(session.has_fifo() ? 1 : 0);
  if (session.has_fifo()) {
    fp.add(session.fifo().depth);
    fp.add(session.fifo().width);
  }
  const ProtectionConfig& protection = session.protection();
  fp.add(static_cast<std::uint64_t>(protection.kind));
  fp.add(protection.hamming_r);
  fp.add(protection.secded ? 1 : 0);
  fp.add(protection.crc_polynomial);
  fp.add(protection.chain_count);
  fp.add(protection.crc_group_width);
  fp.add(protection.test_width);
  fp.add(static_cast<std::uint64_t>(protection.assignment));
  fp.add(protection.gated_domain);
  fp.add(protection.hardware_controller ? 1 : 0);
  fp.add(protection.settle_cycles);
  return fp.hash;
}

void validate(const CampaignSpec& spec, const Session& session) {
  if (spec.threads > 4096) {
    reject(spec, "threads = " + std::to_string(spec.threads) +
                     " is past any plausible machine; use 1..4096 (0 = the "
                     "session's pool)");
  }
  if (is_validation_kind(spec.kind)) {
    if (spec.sequences == 0) {
      reject(spec,
             "sequences must be > 0 — a validation campaign with no sleep/wake "
             "trials measures nothing; set spec.sequences (RETSCAN_SEQUENCES "
             "scales bench defaults, see retscan/runtime.hpp)");
    }
    if (!session.has_fifo()) {
      reject(spec,
             "this session wraps an arbitrary netlist, but validation campaigns "
             "compare against the behavioral golden FIFO model — construct the "
             "Session from a FifoSpec, or run fault-coverage / scan-test kinds");
    }
    // The Fig. 8 testbenches parameterize on (kind, hamming_r, chain_count)
    // only; refuse to silently run a campaign on a reduced model of the
    // session's protection architecture.
    const ProtectionConfig& protection = session.protection();
    if (protection.secded) {
      reject(spec,
             "the validation testbenches model plain Hamming/CRC monitors, not "
             "SEC-DED — a secded session would silently report plain-Hamming "
             "statistics; use fault-coverage / scan-test kinds, or the "
             "SEC-DED ablation bench (bench_ablation_secded)");
    }
    if (protection.crc_group_width != 0) {
      reject(spec,
             "the validation testbenches model one wide CRC block "
             "(crc_group_width = 0); per-group CRC statistics would silently "
             "differ — drop crc_group_width or use fault-coverage kinds");
    }
    if (protection.assignment != ChainAssignment::Blocked) {
      reject(spec,
             "the validation testbenches assume the blocked flop-to-chain "
             "assignment; interleaved assignment changes how bursts map onto "
             "codewords (see bench_ablation_interleave) and would silently "
             "misreport — use ChainAssignment::Blocked for validation kinds");
    }
    if (protection.crc_polynomial != 0x1021) {
      reject(spec,
             "the validation testbenches check with the CCITT CRC-16 "
             "(0x1021); a custom crc_polynomial would silently not be the "
             "one validated — use the default polynomial for validation kinds");
    }
    if (spec.tier == ValidationTier::Behavioral && spec.backend == Backend::Packed) {
      reject(spec,
             "the behavioral tier has no single-thread packed backend (it is "
             "already word-parallel per trial); use Backend::Reference, "
             "Backend::PackedParallel or Backend::Auto");
    }
    if (spec.schedule == Schedule::Event) {
      if (spec.tier == ValidationTier::Behavioral) {
        reject(spec,
               "the behavioral tier evaluates closed-form protectors — there "
               "is no gate-level settle loop for the event scheduler to "
               "drive; use tier = structural, or Schedule::Auto (the "
               "default), which resolves to sweep where event cannot apply");
      }
      if (spec.backend == Backend::Reference) {
        reject(spec,
               "Backend::Reference is the scalar full-sweep oracle the event "
               "scheduler is checked against, so it always sweeps; use "
               "Backend::Packed / Backend::PackedParallel for an event-"
               "scheduled run, or Schedule::Auto to let the backend decide");
      }
    }
    if (spec.kind == CampaignKind::Injection && spec.mode != InjectionMode::RushModel) {
      reject(spec,
             std::string("injection campaigns sample upsets from the electrical "
                         "corruption model; spec.mode must be "
                         "InjectionMode::RushModel (got ") +
                 to_string(spec.mode) +
                 ") — for LFSR injection modes use CampaignKind::Validation");
    }
    if (spec.mode == InjectionMode::MultipleBurst && spec.burst_size == 0) {
      reject(spec, "burst_size must be > 0 for InjectionMode::MultipleBurst");
    }
    if (spec.tier == ValidationTier::Structural && spec.shard_size != 0 &&
        spec.shard_size % PackedSim::lane_count() != 0) {
      reject(spec,
             "shard_size = " + std::to_string(spec.shard_size) +
                 " is not a multiple of the 64-lane batch width — gate-level "
                 "shards run whole PackedSim batches, and silent rounding would "
                 "change the shard plan (and the statistics) behind your back");
    }
  } else {
    if (spec.schedule == Schedule::Event) {
      reject(spec,
             "the schedule knob drives the settle loop of gate-level "
             "validation campaigns; fault-coverage and scan-test kinds replay "
             "fault cones / scan patterns, which have no full-sweep settles "
             "to schedule — leave schedule = auto for these kinds");
    }
    if (spec.kind == CampaignKind::ScanTest && !session.is_protected()) {
      reject(spec,
             "this session wraps a bare (unprotected) netlist with no scan "
             "fabric to deliver patterns through — wrap the netlist in a "
             "ProtectionConfig (it needs flip-flops), or run a fault-coverage "
             "campaign instead");
    }
    if (is_pattern_kind(spec.kind) && spec.atpg.random_patterns == 0 &&
        !spec.atpg.run_podem) {
      reject(spec,
             "atpg.random_patterns == 0 with run_podem == false generates an "
             "empty pattern set — enable one of the two ATPG phases");
    }
    if (spec.kind == CampaignKind::SequentialCoverage) {
      if (spec.sequences == 0) {
        reject(spec,
               "sequences must be > 0 — sequential coverage drives random "
               "primary-input sequences, and zero of them measures nothing");
      }
      if (spec.cycles == 0) {
        reject(spec,
               "cycles must be > 0 — each sequence clocks the design for "
               "spec.cycles cycles from the all-zero state; set "
               "campaign.cycles (32 is a reasonable start for '89-class "
               "circuits)");
      }
    }
    if (spec.kind == CampaignKind::ScanTest) {
      if (spec.patterns_per_shard == 0) {
        reject(spec,
               "patterns_per_shard must be > 0 (it is floored to whole "
               "64-lane batches, minimum one batch)");
      }
      if (spec.access == ScanAccess::FullWidth) {
        reject(spec,
               "full-width scan access only applies to plain scanned netlists — "
               "in a ProtectedDesign the per-chain si ports are superseded by "
               "the monitor feedback muxes, so responses would mismatch; use "
               "ScanAccess::TestMode (the Fig. 5(b) tsi/tso concatenation), or "
               "drive apply_scan_test on a pre-monitor netlist directly");
      }
    } else if (is_coverage_kind(spec.kind) && spec.shard_size != 0 &&
               (spec.backend == Backend::Reference || spec.backend == Backend::Packed)) {
      reject(spec,
             "shard_size only applies to the pooled fault simulator; "
             "Backend::Reference and Backend::Packed run the serial path — "
             "drop shard_size or pick Backend::PackedParallel");
    }
  }
  if (spec.cycles != 0 && spec.kind != CampaignKind::SequentialCoverage) {
    reject(spec, "cycles only applies to sequential-coverage campaigns — no "
                 "other kind steps a clock; drop campaign.cycles");
  }
  validate_durability(spec, session);
}

Backend resolve_backend(const CampaignSpec& spec, const Session& session) {
  validate(spec, session);
  if (spec.backend != Backend::Auto) {
    return spec.backend;
  }
  return Backend::PackedParallel;
}

namespace {

/// Campaign runner honouring the service/thread overrides, strongest
/// first: an embedding service's shared runner (RunHooks), else the
/// session's pool when the spec doesn't insist, else a private pool.
/// (Results are thread-count invariant either way; this is throughput only.)
parallel::CampaignRunner& select_runner(
    Session& session, const CampaignSpec& spec, const RunHooks& hooks,
    std::unique_ptr<parallel::CampaignRunner>& local) {
  if (hooks.runner != nullptr) {
    return *hooks.runner;
  }
  if (spec.threads == 0 || spec.threads == session.threads()) {
    return session.runner();
  }
  parallel::CampaignOptions options;
  options.threads = spec.threads;
  local = std::make_unique<parallel::CampaignRunner>(options);
  return *local;
}

void run_validation(Session& session, const CampaignSpec& spec, Backend backend,
                    const RunHooks& hooks, CampaignResult& result) {
  ValidationConfig config = validation_config(session, spec);
  const bool behavioral = spec.tier == ValidationTier::Behavioral;
  // Reference is the scalar full-sweep oracle the event scheduler is
  // validated against, and behavioral runs have no gate level at all;
  // both pin sweep here (explicit beats RETSCAN_SCHEDULE downstream).
  // validate() already rejected explicit Event for these combinations.
  if (behavioral || backend == Backend::Reference) {
    config.schedule = Schedule::Sweep;
  }
  result.schedule = runtime_schedule(config.schedule);
  switch (backend) {
    case Backend::Reference:
      if (behavioral) {
        result.validation = FastTestbench(config).run(spec.sequences);
      } else {
        StructuralTestbench bench(config);
        result.validation = bench.run(spec.sequences);
        result.activity = bench.take_telemetry();
      }
      result.threads = 1;
      result.shard_count = 1;
      result.shards_completed = 1;
      break;
    case Backend::Packed: {
      StructuralTestbench bench(config);
      result.validation = bench.run_packed(spec.sequences);
      result.activity = bench.take_telemetry();
      result.threads = 1;
      result.shard_count = 1;
      result.shards_completed = 1;
      break;
    }
    case Backend::PackedParallel:
    default: {
      std::unique_ptr<parallel::CampaignRunner> local;
      parallel::CampaignRunner& runner = select_runner(session, spec, hooks, local);
      // Durability hooks: a cancel token (SIGINT via the global flag plus
      // the spec's deadline budget) and, when armed, the checkpoint
      // journal. A service passes its own per-job token via RunHooks so it
      // can cancel this campaign without touching the others; the deadline
      // is armed on whichever token is in play. validate() has already
      // vetted the checkpoint path and, for resume, the journal header —
      // constructing the journal re-checks both anyway (TOCTOU-safe).
      CancelToken local_cancel;
      CancelToken* cancel = hooks.cancel != nullptr ? hooks.cancel : &local_cancel;
      if (spec.deadline_ms) {
        cancel->set_deadline_ms(*spec.deadline_ms);
      }
      parallel::RunControls controls;
      controls.cancel = cancel;
      controls.scheduler = hooks.scheduler;
      controls.progress = hooks.progress;
      std::unique_ptr<CampaignJournal> journal;
      if (!spec.checkpoint.empty()) {
        journal = std::make_unique<CampaignJournal>(
            spec.checkpoint, campaign_fingerprint(spec, session), spec.seed,
            spec.resume ? CampaignJournal::Mode::Resume
                        : CampaignJournal::Mode::Truncate);
        controls.journal = journal.get();
      }
      const parallel::CampaignReport report =
          behavioral
              ? runner.run_fast(config, spec.sequences, spec.shard_size, controls)
              : runner.run_structural_packed(config, spec.sequences,
                                             spec.shard_size, controls);
      result.validation = report.stats;
      result.activity = report.telemetry;
      result.threads = report.threads;
      result.shard_count = report.shard_count;
      result.status = report.status;
      result.shards_completed = report.shards_completed;
      result.shards_resumed = report.shards_resumed;
      break;
    }
  }
}

void run_fault_coverage(Session& session, const CampaignSpec& spec, Backend backend,
                        const RunHooks& hooks, CampaignResult& result) {
  AtpgOptions options = spec.atpg;
  options.seed = spec.seed;
  result.atpg = run_atpg(session.frame(), session.faults(), options);
  if (backend == Backend::PackedParallel) {
    std::unique_ptr<parallel::CampaignRunner> local;
    parallel::CampaignRunner& runner = select_runner(session, spec, hooks, local);
    const std::size_t fault_shard = spec.shard_size != 0 ? spec.shard_size : 128;
    result.faults = fault_simulate(session.frame(), session.faults(),
                                   result.atpg.patterns, runner.pool(), fault_shard);
    result.threads = runner.threads();
    result.shard_count =
        (session.faults().size() + fault_shard - 1) / fault_shard;
  } else {
    // Reference and Packed coincide here: the serial fault simulator IS the
    // 64-lane cone path (the oracle detect_mask_full stays a frame method).
    result.faults =
        fault_simulate(session.frame(), session.faults(), result.atpg.patterns);
    result.threads = 1;
    result.shard_count = 1;
  }
}

void run_transition_delay(Session& session, const CampaignSpec& spec, Backend backend,
                          const RunHooks& hooks, CampaignResult& result) {
  AtpgOptions options = spec.atpg;
  options.seed = spec.seed;
  result.atpg = run_atpg(session.frame(), session.faults(), options);
  const std::vector<TransitionFault> faults =
      enumerate_transition_faults(session.netlist());
  if (backend == Backend::PackedParallel) {
    std::unique_ptr<parallel::CampaignRunner> local;
    parallel::CampaignRunner& runner = select_runner(session, spec, hooks, local);
    const std::size_t fault_shard = spec.shard_size != 0 ? spec.shard_size : 128;
    result.faults = transition_fault_simulate(session.frame(), faults,
                                              result.atpg.patterns, runner.pool(),
                                              fault_shard);
    result.threads = runner.threads();
    result.shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  } else {
    result.faults =
        transition_fault_simulate(session.frame(), faults, result.atpg.patterns);
    result.threads = 1;
    result.shard_count = 1;
  }
}

void run_bridging(Session& session, const CampaignSpec& spec, Backend backend,
                  const RunHooks& hooks, CampaignResult& result) {
  AtpgOptions options = spec.atpg;
  options.seed = spec.seed;
  result.atpg = run_atpg(session.frame(), session.faults(), options);
  const std::vector<BridgingFault> faults =
      enumerate_bridging_faults(session.netlist());
  if (backend == Backend::PackedParallel) {
    std::unique_ptr<parallel::CampaignRunner> local;
    parallel::CampaignRunner& runner = select_runner(session, spec, hooks, local);
    const std::size_t fault_shard = spec.shard_size != 0 ? spec.shard_size : 128;
    result.faults = bridging_fault_simulate(session.frame(), faults,
                                            result.atpg.patterns, runner.pool(),
                                            fault_shard);
    result.threads = runner.threads();
    result.shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  } else {
    result.faults =
        bridging_fault_simulate(session.frame(), faults, result.atpg.patterns);
    result.threads = 1;
    result.shard_count = 1;
  }
}

void run_sequential_coverage(Session& session, const CampaignSpec& spec,
                             Backend backend, const RunHooks& hooks,
                             CampaignResult& result) {
  // Runs on the session's gate-level netlist directly (no scan frame): the
  // same collapsed stuck-at universe as fault-coverage, detected through
  // free-running multi-cycle simulation instead of scan capture.
  const Netlist& netlist = session.netlist();
  const std::vector<Fault>& faults = session.faults();
  if (backend == Backend::PackedParallel) {
    std::unique_ptr<parallel::CampaignRunner> local;
    parallel::CampaignRunner& runner = select_runner(session, spec, hooks, local);
    const std::size_t fault_shard = spec.shard_size != 0 ? spec.shard_size : 64;
    result.faults = sequential_fault_simulate(netlist, faults, spec.sequences,
                                              spec.cycles, spec.seed, runner.pool(),
                                              fault_shard);
    result.threads = runner.threads();
    result.shard_count = (faults.size() + fault_shard - 1) / fault_shard;
  } else {
    result.faults = sequential_fault_simulate(netlist, faults, spec.sequences,
                                              spec.cycles, spec.seed);
    result.threads = 1;
    result.shard_count = 1;
  }
}

void run_scan_test_campaign(Session& session, const CampaignSpec& spec,
                            Backend backend, const RunHooks& hooks,
                            CampaignResult& result) {
  AtpgOptions options = spec.atpg;
  options.seed = spec.seed;
  result.atpg = run_atpg(session.frame(), session.faults(), options);
  if (backend == Backend::PackedParallel) {
    // Routed directly (not via Session::run_scan_test, which always uses the
    // session's shared pool) so the spec's threads knob is honored here too.
    std::unique_ptr<parallel::CampaignRunner> local;
    parallel::CampaignRunner& runner = select_runner(session, spec, hooks, local);
    result.scan_test =
        apply_test_mode_scan_test_packed(session.design(), session.frame(),
                                         result.atpg.patterns, runner.pool(),
                                         spec.patterns_per_shard);
    const std::size_t per_shard =
        test_mode_patterns_per_shard(spec.patterns_per_shard);
    result.threads = runner.threads();
    result.shard_count =
        (result.atpg.patterns.size() + per_shard - 1) / per_shard;
  } else {
    ScanTestOptions delivery;
    delivery.access = spec.access;
    delivery.backend = backend;
    delivery.patterns_per_shard = spec.patterns_per_shard;
    result.scan_test = session.run_scan_test(result.atpg.patterns, delivery);
    result.threads = 1;
    result.shard_count = 1;
  }
}

}  // namespace

CampaignResult run(Session& session, const CampaignSpec& spec) {
  return run(session, spec, RunHooks{});
}

CampaignResult run(Session& session, const CampaignSpec& spec,
                   const RunHooks& hooks) {
  const Backend backend = resolve_backend(spec, session);
  CampaignResult result;
  result.kind = spec.kind;
  result.backend = backend;
  const auto start = std::chrono::steady_clock::now();
  switch (spec.kind) {
    case CampaignKind::Validation:
    case CampaignKind::Injection:
      run_validation(session, spec, backend, hooks, result);
      break;
    case CampaignKind::FaultCoverage:
      run_fault_coverage(session, spec, backend, hooks, result);
      break;
    case CampaignKind::ScanTest:
      run_scan_test_campaign(session, spec, backend, hooks, result);
      break;
    case CampaignKind::TransitionDelay:
      run_transition_delay(session, spec, backend, hooks, result);
      break;
    case CampaignKind::Bridging:
      run_bridging(session, spec, backend, hooks, result);
      break;
    case CampaignKind::SequentialCoverage:
      run_sequential_coverage(session, spec, backend, hooks, result);
      break;
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

// --- campaign spec files ----------------------------------------------------

namespace {

std::string trim(std::string text) {
  const auto first = text.find_first_not_of(" \t\r");
  const auto last = text.find_last_not_of(" \t\r");
  if (first == std::string::npos) {
    return "";
  }
  return text.substr(first, last - first + 1);
}

[[noreturn]] void spec_error(int line, const std::string& why) {
  throw Error("spec line " + std::to_string(line) + ": " + why);
}

std::uint64_t parse_spec_u64(const std::string& value, int line) {
  const std::optional<std::uint64_t> parsed = parse_u64(value);
  if (!parsed) {
    spec_error(line, "'" + value + "' is not a non-negative integer");
  }
  return *parsed;
}

/// Narrowing guard for keys stored in sub-64-bit fields: values past `max`
/// are spec errors, never silent truncations.
std::uint64_t parse_spec_bounded(const std::string& value, int line,
                                 std::uint64_t max, const char* what) {
  const std::uint64_t parsed = parse_spec_u64(value, line);
  if (parsed > max) {
    spec_error(line, "'" + value + "' is out of range for " + what + " (max " +
                         std::to_string(max) + ")");
  }
  return parsed;
}

double parse_spec_double(const std::string& value, int line) {
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(value, &consumed);
    if (consumed != value.size()) {
      throw std::invalid_argument("trailing junk");
    }
    return parsed;
  } catch (const std::exception&) {
    spec_error(line, "'" + value + "' is not a number");
  }
}

bool parse_spec_bool(const std::string& value, int line) {
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  spec_error(line, "'" + value + "' is not a boolean (true/false)");
}

template <typename Enum>
Enum parse_spec_enum(const std::string& value, int line, const char* expected) {
  Enum out{};
  if (!from_string(value, out)) {
    spec_error(line, "'" + value + "' is not one of: " + expected);
  }
  return out;
}

CodeKind parse_code_kind(const std::string& value, int line) {
  if (value == "crc") {
    return CodeKind::CrcDetect;
  }
  if (value == "hamming") {
    return CodeKind::HammingCorrect;
  }
  if (value == "hamming+crc") {
    return CodeKind::HammingPlusCrc;
  }
  spec_error(line, "'" + value + "' is not one of: crc, hamming, hamming+crc");
}

ChainAssignment parse_assignment(const std::string& value, int line) {
  if (value == "blocked") {
    return ChainAssignment::Blocked;
  }
  if (value == "interleaved") {
    return ChainAssignment::Interleaved;
  }
  spec_error(line, "'" + value + "' is not one of: blocked, interleaved");
}

void apply_spec_key(SpecFile& file, const std::string& key, const std::string& value,
                    int line) {
  CampaignSpec& c = file.campaign;
  // clang-format off
  if      (key == "fifo.depth")                  file.fifo.depth = parse_spec_u64(value, line);
  else if (key == "fifo.width")                  file.fifo.width = parse_spec_u64(value, line);
  else if (key == "protection.kind")             file.protection.kind = parse_code_kind(value, line);
  else if (key == "protection.hamming_r")        file.protection.hamming_r = static_cast<unsigned>(parse_spec_bounded(value, line, 16, "protection.hamming_r"));
  else if (key == "protection.secded")           file.protection.secded = parse_spec_bool(value, line);
  else if (key == "protection.chain_count")      file.protection.chain_count = parse_spec_u64(value, line);
  else if (key == "protection.crc_group_width")  file.protection.crc_group_width = parse_spec_u64(value, line);
  else if (key == "protection.test_width")       file.protection.test_width = parse_spec_u64(value, line);
  else if (key == "protection.assignment")       file.protection.assignment = parse_assignment(value, line);
  else if (key == "campaign.kind")               c.kind = parse_spec_enum<CampaignKind>(value, line, "validation, injection, fault-coverage, scan-test, transition-delay, bridging, sequential-coverage");
  else if (key == "campaign.backend")            c.backend = parse_spec_enum<Backend>(value, line, "auto, reference, packed, packed-parallel");
  else if (key == "campaign.seed")               c.seed = parse_spec_u64(value, line);
  else if (key == "campaign.threads")            c.threads = static_cast<unsigned>(parse_spec_bounded(value, line, 4096, "campaign.threads"));
  else if (key == "campaign.shard_size")         c.shard_size = parse_spec_u64(value, line);
  else if (key == "campaign.sequences")          c.sequences = parse_spec_u64(value, line);
  else if (key == "campaign.cycles")             c.cycles = parse_spec_u64(value, line);
  else if (key == "campaign.tier")               c.tier = parse_spec_enum<ValidationTier>(value, line, "behavioral, structural");
  else if (key == "campaign.schedule" || key == "schedule") c.schedule = parse_spec_enum<Schedule>(value, line, "auto, sweep, event");
  else if (key == "campaign.mode")               c.mode = parse_spec_enum<InjectionMode>(value, line, "none, single-random, multiple-burst, rush-model");
  else if (key == "campaign.burst_size")         c.burst_size = parse_spec_u64(value, line);
  else if (key == "campaign.burst_spread")       c.burst_spread = parse_spec_u64(value, line);
  else if (key == "campaign.access")             c.access = parse_spec_enum<ScanAccess>(value, line, "test-mode, full-width");
  else if (key == "campaign.patterns_per_shard") c.patterns_per_shard = parse_spec_u64(value, line);
  else if (key == "campaign.checkpoint" || key == "checkpoint") c.checkpoint = value;
  else if (key == "campaign.resume" || key == "resume")         c.resume = parse_spec_bool(value, line);
  else if (key == "campaign.deadline_ms" || key == "deadline_ms") c.deadline_ms = parse_spec_u64(value, line);
  else if (key == "campaign.atpg.random_patterns") c.atpg.random_patterns = parse_spec_u64(value, line);
  else if (key == "campaign.atpg.max_backtracks")  c.atpg.max_backtracks = parse_spec_u64(value, line);
  else if (key == "campaign.atpg.run_podem")       c.atpg.run_podem = parse_spec_bool(value, line);
  else if (key == "corruption.noise_margin_volts") c.corruption.noise_margin_volts = parse_spec_double(value, line);
  else if (key == "corruption.margin_sigma_volts") c.corruption.margin_sigma_volts = parse_spec_double(value, line);
  else if (key == "corruption.vulnerability")      c.corruption.vulnerability = parse_spec_double(value, line);
  else if (key == "corruption.cluster_spread")     c.corruption.cluster_spread = parse_spec_u64(value, line);
  else if (key == "corruption.cluster_fraction")   c.corruption.cluster_fraction = parse_spec_double(value, line);
  else if (key == "rush.vdd_volts")                c.rush.vdd_volts = parse_spec_double(value, line);
  else if (key == "rush.resistance_ohm")           c.rush.resistance_ohm = parse_spec_double(value, line);
  else if (key == "rush.inductance_nh")            c.rush.inductance_nh = parse_spec_double(value, line);
  else if (key == "rush.capacitance_nf")           c.rush.capacitance_nf = parse_spec_double(value, line);
  else if (key == "rush.stagger_stages")           c.rush.stagger_stages = parse_spec_u64(value, line);
  else if (key == "netlist")                       file.netlist_file = value;
  else spec_error(line, "unknown key '" + key + "' (see docs/spec-reference.md for the key reference)");
  // clang-format on
}

}  // namespace

SpecFile parse_spec(std::istream& in) {
  SpecFile file;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto comment = line.find('#');
    if (comment != std::string::npos) {
      line.resize(comment);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      spec_error(lineno, "expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      spec_error(lineno, "empty key before '='");
    }
    if (value.empty()) {
      spec_error(lineno, "empty value for key '" + key + "'");
    }
    apply_spec_key(file, key, value, lineno);
  }
  return file;
}

SpecFile parse_spec_text(const std::string& text) {
  std::istringstream in(text);
  return parse_spec(in);
}

SpecFile load_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open spec file '" + path + "'");
  }
  SpecFile file = parse_spec(in);
  if (!file.netlist_file.empty()) {
    // Relative circuit paths travel with the spec, not with the caller's
    // working directory, so `retscan run examples/external.spec` works from
    // anywhere.
    const std::filesystem::path netlist_path(file.netlist_file);
    if (netlist_path.is_relative()) {
      file.netlist_file =
          (std::filesystem::path(path).parent_path() / netlist_path).string();
    }
  }
  return file;
}

Netlist spec_base_netlist(const SpecFile& file) {
  if (!file.netlist_file.empty()) {
    return Netlist::from_verilog(file.netlist_file);
  }
  return make_fifo(file.fifo);
}

Session make_session(const SpecFile& file) {
  SessionOptions options;
  options.threads = file.campaign.threads;
  if (!file.netlist_file.empty()) {
    return Session::from_verilog(file.netlist_file, file.protection, options);
  }
  return Session(file.fifo, file.protection, options);
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  // std::stoull would silently wrap negatives to huge values; require the
  // text to be plain decimal digits, fully consumed.
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    return std::nullopt;
  }
  const std::string copy(text);
  try {
    std::size_t consumed = 0;
    const unsigned long long parsed = std::stoull(copy, &consumed, 10);
    if (consumed != copy.size()) {
      return std::nullopt;
    }
    return parsed;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace retscan
