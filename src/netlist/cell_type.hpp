#pragma once

#include <cstddef>
#include <string_view>

namespace retscan {

/// Gate-level cell vocabulary. The library deliberately restricts itself to
/// 2-input combinational gates plus flip-flop variants so that area and power
/// modelling maps one-to-one onto standard-cell rows of a 120nm-class library.
enum class CellType {
  // Constants and buffers.
  Const0,
  Const1,
  Buf,
  Not,
  // Two-input gates.
  And2,
  Or2,
  Xor2,
  Nand2,
  Nor2,
  Xnor2,
  // 2:1 multiplexer: fanin {sel, a, b}; out = sel ? b : a.
  Mux2,
  // Plain D flip-flop: fanin {D}.
  Dff,
  // Scan D flip-flop: fanin {D, SI, SE}; captures SE ? SI : D.
  Sdff,
  // Retention scan flip-flop (Fig. 1 of the paper): fanin {D, SI, SE,
  // RETAIN}. Master behaves like Sdff and lives in the cell's power domain;
  // the slave retention latch is always-on, loads from master while
  // RETAIN=1, and drives the master restore when the domain wakes with
  // RETAIN falling.
  Rdff,
  // Always-on transparent-low latch used for parity storage: fanin {D, EN}.
  LatchL,
  // Port pseudo-cells.
  Input,   // no fanin, output net is the primary input
  Output,  // fanin {net}, no output net
};

/// Number of fanin pins the cell type requires.
constexpr std::size_t cell_fanin_count(CellType type) {
  switch (type) {
    case CellType::Const0:
    case CellType::Const1:
    case CellType::Input:
      return 0;
    case CellType::Buf:
    case CellType::Not:
    case CellType::Dff:
    case CellType::Output:
      return 1;
    case CellType::And2:
    case CellType::Or2:
    case CellType::Xor2:
    case CellType::Nand2:
    case CellType::Nor2:
    case CellType::Xnor2:
    case CellType::LatchL:
      return 2;
    case CellType::Mux2:
    case CellType::Sdff:
      return 3;
    case CellType::Rdff:
      return 4;
  }
  return 0;
}

/// True for state-holding cells (flip-flops and latches).
constexpr bool cell_is_sequential(CellType type) {
  switch (type) {
    case CellType::Dff:
    case CellType::Sdff:
    case CellType::Rdff:
    case CellType::LatchL:
      return true;
    default:
      return false;
  }
}

/// True for any flavour of D flip-flop.
constexpr bool cell_is_flop(CellType type) {
  return type == CellType::Dff || type == CellType::Sdff || type == CellType::Rdff;
}

/// True if the cell produces an output net.
constexpr bool cell_has_output(CellType type) { return type != CellType::Output; }

/// Stable lowercase name for reports and DOT export.
std::string_view cell_type_name(CellType type);

}  // namespace retscan
