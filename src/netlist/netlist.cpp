#include "netlist/netlist.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace retscan {

std::string_view cell_type_name(CellType type) {
  switch (type) {
    case CellType::Const0: return "const0";
    case CellType::Const1: return "const1";
    case CellType::Buf: return "buf";
    case CellType::Not: return "not";
    case CellType::And2: return "and2";
    case CellType::Or2: return "or2";
    case CellType::Xor2: return "xor2";
    case CellType::Nand2: return "nand2";
    case CellType::Nor2: return "nor2";
    case CellType::Xnor2: return "xnor2";
    case CellType::Mux2: return "mux2";
    case CellType::Dff: return "dff";
    case CellType::Sdff: return "sdff";
    case CellType::Rdff: return "rdff";
    case CellType::LatchL: return "latchl";
    case CellType::Input: return "input";
    case CellType::Output: return "output";
  }
  return "?";
}

NetId Netlist::add_net(const std::string& net_name) {
  const NetId id = static_cast<NetId>(net_driver_.size());
  net_driver_.push_back(kNullCell);
  net_names_.emplace_back(net_name);
  if (!net_name.empty()) {
    RETSCAN_CHECK(!net_by_name_.contains(net_name), "Netlist: duplicate net name " + net_name);
    net_by_name_.emplace(net_name, id);
  }
  invalidate_fanouts();
  return id;
}

CellId Netlist::driver(NetId net) const {
  RETSCAN_CHECK(net < net_driver_.size(), "Netlist::driver: bad net");
  return net_driver_[net];
}

const std::string& Netlist::net_name(NetId net) const {
  RETSCAN_CHECK(net < net_names_.size(), "Netlist::net_name: bad net");
  return net_names_[net];
}

void Netlist::set_net_name(NetId net, const std::string& net_name) {
  RETSCAN_CHECK(net < net_names_.size(), "Netlist::set_net_name: bad net");
  if (!net_names_[net].empty()) {
    net_by_name_.erase(net_names_[net]);
  }
  net_names_[net] = net_name;
  if (!net_name.empty()) {
    RETSCAN_CHECK(!net_by_name_.contains(net_name), "Netlist: duplicate net name " + net_name);
    net_by_name_.emplace(net_name, net);
  }
}

NetId Netlist::find_net(const std::string& net_name) const {
  const auto it = net_by_name_.find(net_name);
  RETSCAN_CHECK(it != net_by_name_.end(), "Netlist: no net named " + net_name);
  return it->second;
}

bool Netlist::has_net(const std::string& net_name) const {
  return net_by_name_.contains(net_name);
}

CellId Netlist::add_cell(CellType type, std::vector<NetId> fanin, const std::string& cell_name) {
  RETSCAN_CHECK(fanin.size() == cell_fanin_count(type),
                std::string("Netlist::add_cell: wrong pin count for ") +
                    std::string(cell_type_name(type)));
  for (const NetId net : fanin) {
    RETSCAN_CHECK(net < net_driver_.size(), "Netlist::add_cell: fanin net does not exist");
  }
  const CellId id = static_cast<CellId>(cells_.size());
  Cell cell;
  cell.type = type;
  cell.fanin = std::move(fanin);
  cell.name = cell_name;
  if (cell_has_output(type)) {
    cell.out = add_net();
    net_driver_[cell.out] = id;
  }
  cells_.push_back(std::move(cell));
  invalidate_fanouts();
  return id;
}

std::size_t Netlist::replace_readers(NetId from, NetId to, CellId limit) {
  RETSCAN_CHECK(from < net_driver_.size() && to < net_driver_.size(),
                "Netlist::replace_readers: bad net");
  RETSCAN_CHECK(limit <= cells_.size(), "Netlist::replace_readers: bad limit");
  std::size_t replaced = 0;
  for (CellId id = 0; id < limit; ++id) {
    for (NetId& net : cells_[id].fanin) {
      if (net == from) {
        net = to;
        ++replaced;
      }
    }
  }
  invalidate_fanouts();
  return replaced;
}

CellId Netlist::add_cell_bound(CellType type, std::vector<NetId> fanin, NetId out,
                               const std::string& cell_name) {
  RETSCAN_CHECK(fanin.size() == cell_fanin_count(type),
                "Netlist::add_cell_bound: wrong pin count");
  for (const NetId net : fanin) {
    RETSCAN_CHECK(net < net_driver_.size(), "Netlist::add_cell_bound: bad fanin net");
  }
  const CellId id = static_cast<CellId>(cells_.size());
  Cell cell;
  cell.type = type;
  cell.fanin = std::move(fanin);
  cell.name = cell_name;
  if (cell_has_output(type)) {
    RETSCAN_CHECK(out < net_driver_.size(), "Netlist::add_cell_bound: bad output net");
    RETSCAN_CHECK(net_driver_[out] == kNullCell,
                  "Netlist::add_cell_bound: output net already driven");
    cell.out = out;
    net_driver_[out] = id;
  } else {
    RETSCAN_CHECK(out == kNullNet, "Netlist::add_cell_bound: Output cell has no out net");
  }
  cells_.push_back(std::move(cell));
  if (type == CellType::Input) {
    inputs_.push_back(id);
  } else if (type == CellType::Output) {
    outputs_.push_back(id);
    RETSCAN_CHECK(!output_by_name_.contains(cell_name),
                  "Netlist::add_cell_bound: duplicate output port " + cell_name);
    output_by_name_.emplace(cell_name, id);
  }
  invalidate_fanouts();
  return id;
}

const Cell& Netlist::cell(CellId id) const {
  RETSCAN_CHECK(id < cells_.size(), "Netlist::cell: bad cell id");
  return cells_[id];
}

void Netlist::set_domain(CellId id, DomainId domain) {
  RETSCAN_CHECK(id < cells_.size(), "Netlist::set_domain: bad cell id");
  cells_[id].domain = domain;
}

void Netlist::rewire_fanin(CellId id, std::size_t pin, NetId net) {
  RETSCAN_CHECK(id < cells_.size(), "Netlist::rewire_fanin: bad cell id");
  RETSCAN_CHECK(pin < cells_[id].fanin.size(), "Netlist::rewire_fanin: bad pin");
  RETSCAN_CHECK(net < net_driver_.size(), "Netlist::rewire_fanin: bad net");
  cells_[id].fanin[pin] = net;
  invalidate_fanouts();
}

void Netlist::convert_flop(CellId id, CellType new_type, const std::vector<NetId>& extra_fanin) {
  RETSCAN_CHECK(id < cells_.size(), "Netlist::convert_flop: bad cell id");
  Cell& c = cells_[id];
  RETSCAN_CHECK(c.type == CellType::Dff, "Netlist::convert_flop: cell is not a plain Dff");
  RETSCAN_CHECK(new_type == CellType::Sdff || new_type == CellType::Rdff,
                "Netlist::convert_flop: target must be Sdff or Rdff");
  RETSCAN_CHECK(1 + extra_fanin.size() == cell_fanin_count(new_type),
                "Netlist::convert_flop: wrong extra pin count");
  for (const NetId net : extra_fanin) {
    RETSCAN_CHECK(net < net_driver_.size(), "Netlist::convert_flop: bad net");
  }
  c.type = new_type;
  c.fanin.insert(c.fanin.end(), extra_fanin.begin(), extra_fanin.end());
  invalidate_fanouts();
}

NetId Netlist::add_input(const std::string& port_name) {
  const CellId id = add_cell(CellType::Input, {}, port_name);
  inputs_.push_back(id);
  set_net_name(cells_[id].out, port_name);
  return cells_[id].out;
}

CellId Netlist::add_output(const std::string& port_name, NetId net) {
  const CellId id = add_cell(CellType::Output, {net}, port_name);
  outputs_.push_back(id);
  RETSCAN_CHECK(!output_by_name_.contains(port_name),
                "Netlist: duplicate output port " + port_name);
  output_by_name_.emplace(port_name, id);
  return id;
}

NetId Netlist::input_net(const std::string& port_name) const {
  return find_net(port_name);
}

NetId Netlist::output_net(const std::string& port_name) const {
  const auto it = output_by_name_.find(port_name);
  RETSCAN_CHECK(it != output_by_name_.end(), "Netlist: no output port " + port_name);
  return cells_[it->second].fanin[0];
}

NetId Netlist::n_const(bool value) {
  return cells_[add_cell(value ? CellType::Const1 : CellType::Const0, {})].out;
}
NetId Netlist::n_buf(NetId a) { return cells_[add_cell(CellType::Buf, {a})].out; }
NetId Netlist::n_not(NetId a) { return cells_[add_cell(CellType::Not, {a})].out; }
NetId Netlist::n_and(NetId a, NetId b) { return cells_[add_cell(CellType::And2, {a, b})].out; }
NetId Netlist::n_or(NetId a, NetId b) { return cells_[add_cell(CellType::Or2, {a, b})].out; }
NetId Netlist::n_xor(NetId a, NetId b) { return cells_[add_cell(CellType::Xor2, {a, b})].out; }
NetId Netlist::n_nand(NetId a, NetId b) { return cells_[add_cell(CellType::Nand2, {a, b})].out; }
NetId Netlist::n_nor(NetId a, NetId b) { return cells_[add_cell(CellType::Nor2, {a, b})].out; }
NetId Netlist::n_xnor(NetId a, NetId b) { return cells_[add_cell(CellType::Xnor2, {a, b})].out; }
NetId Netlist::n_mux(NetId sel, NetId lo, NetId hi) {
  return cells_[add_cell(CellType::Mux2, {sel, lo, hi})].out;
}

NetId Netlist::n_and_tree(const std::vector<NetId>& nets) {
  RETSCAN_CHECK(!nets.empty(), "Netlist::n_and_tree: empty input");
  std::vector<NetId> level = nets;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(n_and(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level[0];
}

NetId Netlist::n_or_tree(const std::vector<NetId>& nets) {
  RETSCAN_CHECK(!nets.empty(), "Netlist::n_or_tree: empty input");
  std::vector<NetId> level = nets;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(n_or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level[0];
}

NetId Netlist::n_xor_tree(const std::vector<NetId>& nets) {
  RETSCAN_CHECK(!nets.empty(), "Netlist::n_xor_tree: empty input");
  std::vector<NetId> level = nets;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(n_xor(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = std::move(next);
  }
  return level[0];
}

NetId Netlist::n_dff(NetId d, const std::string& cell_name) {
  return cells_[add_cell(CellType::Dff, {d}, cell_name)].out;
}

std::vector<CellId> Netlist::flops() const {
  std::vector<CellId> out;
  for (CellId id = 0; id < cells_.size(); ++id) {
    if (cell_is_flop(cells_[id].type)) {
      out.push_back(id);
    }
  }
  return out;
}

const std::vector<std::vector<CellId>>& Netlist::fanouts() const {
  if (!fanouts_valid_) {
    fanouts_.assign(net_driver_.size(), {});
    for (CellId id = 0; id < cells_.size(); ++id) {
      for (const NetId net : cells_[id].fanin) {
        fanouts_[net].push_back(id);
      }
    }
    fanouts_valid_ = true;
  }
  return fanouts_;
}

const std::vector<CellId>& Netlist::combinational_order() const {
  if (comb_order_valid_) {
    return comb_order_;
  }
  // Kahn's algorithm over combinational cells only; sequential cell outputs
  // and primary inputs/constants are sources.
  std::vector<std::size_t> pending(cells_.size(), 0);
  std::deque<CellId> ready;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    if (cell_is_sequential(c.type) || c.type == CellType::Input ||
        c.type == CellType::Const0 || c.type == CellType::Const1) {
      continue;
    }
    std::size_t unresolved = 0;
    for (const NetId net : c.fanin) {
      const CellId drv = net_driver_[net];
      RETSCAN_CHECK(drv != kNullCell, "Netlist: undriven net in combinational_order");
      const CellType dt = cells_[drv].type;
      if (!cell_is_sequential(dt) && dt != CellType::Input && dt != CellType::Const0 &&
          dt != CellType::Const1) {
        ++unresolved;
      }
    }
    pending[id] = unresolved;
    if (unresolved == 0) {
      ready.push_back(id);
    }
  }

  const auto& fo = fanouts();
  std::vector<CellId> order;
  std::size_t comb_total = 0;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const CellType t = cells_[id].type;
    if (!cell_is_sequential(t) && t != CellType::Input && t != CellType::Const0 &&
        t != CellType::Const1) {
      ++comb_total;
    }
  }
  order.reserve(comb_total);
  while (!ready.empty()) {
    const CellId id = ready.front();
    ready.pop_front();
    order.push_back(id);
    const Cell& c = cells_[id];
    if (c.out == kNullNet) {
      continue;
    }
    for (const CellId reader : fo[c.out]) {
      const CellType rt = cells_[reader].type;
      if (cell_is_sequential(rt) || rt == CellType::Input || rt == CellType::Const0 ||
          rt == CellType::Const1) {
        continue;
      }
      if (--pending[reader] == 0) {
        ready.push_back(reader);
      }
    }
  }
  RETSCAN_CHECK(order.size() == comb_total, "Netlist: combinational cycle detected");
  comb_order_ = std::move(order);
  comb_order_valid_ = true;
  return comb_order_;
}

std::unordered_map<CellType, std::size_t> Netlist::type_histogram() const {
  std::unordered_map<CellType, std::size_t> histogram;
  for (const Cell& c : cells_) {
    ++histogram[c.type];
  }
  return histogram;
}

}  // namespace retscan
