#include "netlist/dot.hpp"

#include <sstream>

namespace retscan {

void write_dot(std::ostream& os, const Netlist& netlist, const DotOptions& options) {
  os << "digraph \"" << netlist.name() << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=9];\n";
  const std::size_t limit = std::min<std::size_t>(netlist.cell_count(), options.max_cells);
  for (CellId id = 0; id < limit; ++id) {
    const Cell& c = netlist.cell(id);
    os << "  c" << id << " [label=\"" << cell_type_name(c.type);
    if (!c.name.empty()) {
      os << "\\n" << c.name;
    }
    os << "\"";
    if (c.type == CellType::Input || c.type == CellType::Output) {
      os << ", shape=invhouse, style=filled, fillcolor=lightblue";
    } else if (options.highlight_sequential && cell_is_sequential(c.type)) {
      os << ", shape=box, style=filled, fillcolor=khaki";
    }
    os << "];\n";
  }
  for (CellId id = 0; id < limit; ++id) {
    const Cell& c = netlist.cell(id);
    for (std::size_t pin = 0; pin < c.fanin.size(); ++pin) {
      const CellId drv = netlist.driver(c.fanin[pin]);
      if (drv != kNullCell && drv < limit) {
        os << "  c" << drv << " -> c" << id << " [label=\"" << pin << "\", fontsize=7];\n";
      }
    }
  }
  if (limit < netlist.cell_count()) {
    os << "  truncated [label=\"... " << (netlist.cell_count() - limit)
       << " more cells\", shape=plaintext];\n";
  }
  os << "}\n";
}

std::string to_dot(const Netlist& netlist, const DotOptions& options) {
  std::ostringstream oss;
  write_dot(oss, netlist, options);
  return oss.str();
}

}  // namespace retscan
