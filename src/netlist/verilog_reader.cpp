#include "netlist/verilog_reader.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/expr_synth.hpp"
#include "netlist/techlib.hpp"
#include "util/error.hpp"

namespace retscan {

namespace {

// --- lexing -----------------------------------------------------------------

struct Token {
  enum class Kind { Ident, Literal, Punct, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 0;
};

[[noreturn]] void fail_at(const std::string& filename, int line, const std::string& message) {
  throw Error(filename + ":" + std::to_string(line) + ": " + message);
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::vector<Token> tokenize(const std::string& text, const std::string& filename) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  int line = 1;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
      while (pos < text.size() && text[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '*') {
      const int start_line = line;
      pos += 2;
      while (pos + 1 < text.size() && !(text[pos] == '*' && text[pos + 1] == '/')) {
        if (text[pos] == '\n') {
          ++line;
        }
        ++pos;
      }
      if (pos + 1 >= text.size()) {
        fail_at(filename, start_line, "unterminated block comment");
      }
      pos += 2;
      continue;
    }
    if (c == '\\') {
      fail_at(filename, line, "escaped identifiers (\\name) are unsupported");
    }
    if (ident_start(c)) {
      std::size_t end = pos;
      while (end < text.size() && ident_char(text[end])) {
        ++end;
      }
      tokens.push_back({Token::Kind::Ident, text.substr(pos, end - pos), line});
      pos = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Decimal digits, optionally a based literal tail: 1'b0, 4'hF, ...
      std::size_t end = pos;
      while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      if (end < text.size() && text[end] == '\'') {
        ++end;
        if (end < text.size() && std::isalpha(static_cast<unsigned char>(text[end]))) {
          ++end;
        }
        while (end < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[end])) || text[end] == '_')) {
          ++end;
        }
      }
      tokens.push_back({Token::Kind::Literal, text.substr(pos, end - pos), line});
      pos = end;
      continue;
    }
    // Two-character operators first (the expression subset plus the common
    // unsupported ones, so they reach the parser as one token and earn a
    // targeted diagnostic instead of a lex error).
    static const char* kTwoCharOps[] = {"==", "!=", "<<", ">>", "&&", "||", "<=", ">="};
    if (pos + 1 < text.size()) {
      const std::string pair = text.substr(pos, 2);
      bool matched = false;
      for (const char* op : kTwoCharOps) {
        if (pair == op) {
          tokens.push_back({Token::Kind::Punct, pair, line});
          pos += 2;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
    }
    const std::string punct = "(),;.=#[]:~&|^?{}<>!+-*/%";
    if (punct.find(c) != std::string::npos) {
      tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
      ++pos;
      continue;
    }
    fail_at(filename, line, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({Token::Kind::End, "", line});
  return tokens;
}

// --- parsing ----------------------------------------------------------------

/// One pin/net connection of an instantiation, before name resolution.
struct Connection {
  std::string pin;   ///< empty for positional connections
  std::string net;   ///< identifier, or empty when constant >= 0
  int constant = -1; ///< 0 / 1 for 1'b0 / 1'b1 connections
  int index = -1;    ///< bus bit select (net[index]), -1 for scalar refs
  int line = 0;
};

struct Instance {
  std::string type_name;
  std::string name;  ///< optional instance name
  std::vector<Connection> connections;
  bool named = false;  ///< named (.pin(net)) vs positional connections
  int line = 0;
};

enum class DeclKind { Input, Output, Wire };

struct Declaration {
  std::string name;
  DeclKind kind;
  int line;
  bool vector = false;  ///< declared with a [msb:lsb] range
  int msb = 0;
  int lsb = 0;
};

/// One target of an `assign`, before name resolution: a whole signal, a bit
/// select, or a part select. msb < 0 means the whole signal.
struct LValueRef {
  std::string name;
  int msb = -1;
  int lsb = -1;
  int line = 0;
};

struct AssignStmt {
  std::vector<LValueRef> lhs;  ///< MSB-first as written ({a, b} puts a high)
  NetExpr rhs;
  int line = 0;
};

/// Recursive-descent parser over the token stream; collects declarations and
/// instances first, then builds the Netlist so that declaration order in the
/// file does not matter (standard Verilog allows use-before-declare).
class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string filename)
      : tokens_(std::move(tokens)), filename_(std::move(filename)) {}

  Netlist parse() {
    parse_module();
    return build();
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token advance() { return tokens_[index_++]; }

  [[noreturn]] void fail(int line, const std::string& message) const {
    fail_at(filename_, line, message);
  }

  Token expect_ident(const std::string& what) {
    if (peek().kind != Token::Kind::Ident) {
      fail(peek().line, "expected " + what + ", got '" + describe(peek()) + "'");
    }
    return advance();
  }

  bool at_punct(char c) const {
    return peek().kind == Token::Kind::Punct && peek().text.size() == 1 &&
           peek().text[0] == c;
  }

  void expect_punct(char c, const std::string& context) {
    if (!at_punct(c)) {
      fail(peek().line, "expected '" + std::string(1, c) + "' " + context + ", got '" +
                            describe(peek()) + "'");
    }
    advance();
  }

  bool accept_punct(char c) {
    if (at_punct(c)) {
      advance();
      return true;
    }
    return false;
  }

  bool accept_op(const char* op) {
    if (peek().kind == Token::Kind::Punct && peek().text == op) {
      advance();
      return true;
    }
    return false;
  }

  int expect_number(const std::string& what) {
    if (peek().kind != Token::Kind::Literal) {
      fail(peek().line, "expected " + what + ", got '" + describe(peek()) + "'");
    }
    const Token tok = advance();
    for (const char c : tok.text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        fail(tok.line, "expected a plain decimal number for " + what + ", got '" +
                           tok.text + "'");
      }
    }
    if (tok.text.size() > 7) {
      fail(tok.line, "number '" + tok.text + "' is implausibly large for " + what);
    }
    return std::stoi(tok.text);
  }

  static std::string describe(const Token& token) {
    return token.kind == Token::Kind::End ? "end of file" : token.text;
  }

  void parse_module() {
    const Token keyword = expect_ident("'module'");
    if (keyword.text != "module") {
      fail(keyword.line, "expected 'module', got '" + keyword.text + "'");
    }
    module_line_ = keyword.line;
    module_name_ = expect_ident("module name").text;
    if (accept_punct('(')) {
      if (!accept_punct(')')) {
        while (true) {
          const Token port = expect_ident("port name in module header");
          if (port.text == "input" || port.text == "output" || port.text == "wire" ||
              port.text == "reg") {
            fail(port.line,
                 "ANSI-style port declarations are unsupported — list plain port "
                 "names in the header and declare directions in the module body");
          }
          header_ports_.emplace_back(port.text, port.line);
          if (accept_punct(')')) {
            break;
          }
          expect_punct(',', "between header ports");
        }
      }
    }
    expect_punct(';', "after the module header");

    while (true) {
      const Token item = expect_ident("a declaration, an instantiation or 'endmodule'");
      if (item.text == "endmodule") {
        break;
      }
      if (item.text == "input" || item.text == "output" || item.text == "wire") {
        parse_declaration(item);
      } else if (item.text == "assign") {
        parse_assign(item);
      } else if (item.text == "reg" || item.text == "always" || item.text == "initial" ||
                 item.text == "parameter" || item.text == "specify" ||
                 item.text == "supply0" || item.text == "supply1" ||
                 item.text == "tri" || item.text == "integer" || item.text == "function" ||
                 item.text == "task" || item.text == "generate") {
        fail(item.line, "'" + item.text +
                            "' is unsupported — only the structural gate-level "
                            "subset is accepted (see docs/verilog-frontend.md)");
      } else {
        parse_instantiation(item);
      }
    }
    if (peek().kind != Token::Kind::End) {
      if (peek().kind == Token::Kind::Ident && peek().text == "module") {
        fail(peek().line, "multiple modules per file are unsupported");
      }
      fail(peek().line, "unexpected '" + describe(peek()) + "' after endmodule");
    }
  }

  void parse_declaration(const Token& keyword) {
    const DeclKind kind = keyword.text == "input"    ? DeclKind::Input
                          : keyword.text == "output" ? DeclKind::Output
                                                     : DeclKind::Wire;
    Declaration proto;
    proto.kind = kind;
    if (accept_punct('[')) {
      const int range_line = peek().line;
      proto.msb = expect_number("the bus msb");
      expect_punct(':', "in the [msb:lsb] range");
      proto.lsb = expect_number("the bus lsb");
      expect_punct(']', "after the bus range");
      if (proto.msb < proto.lsb) {
        fail(range_line, "ascending bit range [" + std::to_string(proto.msb) + ":" +
                             std::to_string(proto.lsb) +
                             "] is unsupported — declare [msb:lsb] with msb >= lsb");
      }
      proto.vector = true;
    }
    while (true) {
      const Token name = expect_ident("net name in " + keyword.text + " declaration");
      Declaration decl = proto;
      decl.name = name.text;
      decl.line = name.line;
      declarations_.push_back(std::move(decl));
      if (accept_punct(';')) {
        break;
      }
      expect_punct(',', "between declared nets");
    }
  }

  Connection parse_net_ref(const std::string& context) {
    Connection conn;
    conn.line = peek().line;
    if (peek().kind == Token::Kind::Literal) {
      const Token literal = advance();
      if (literal.text == "1'b0" || literal.text == "1'B0") {
        conn.constant = 0;
      } else if (literal.text == "1'b1" || literal.text == "1'B1") {
        conn.constant = 1;
      } else {
        fail(literal.line, "unsupported literal '" + literal.text +
                               "' — only the 1'b0 / 1'b1 constants are accepted");
      }
      return conn;
    }
    conn.net = expect_ident("net name " + context).text;
    if (accept_punct('[')) {
      conn.index = expect_number("the bit index");
      expect_punct(']', "after the bit index");
    }
    return conn;
  }

  void parse_instantiation(const Token& type_token) {
    while (true) {
      Instance inst;
      inst.type_name = type_token.text;
      inst.line = type_token.line;
      if (peek().kind == Token::Kind::Ident) {
        inst.name = advance().text;
      }
      expect_punct('(', "to open the connection list");
      if (accept_punct(')')) {
        fail(type_token.line, "instance of '" + inst.type_name + "' has no connections");
      }
      inst.named = peek().kind == Token::Kind::Punct && peek().text[0] == '.';
      while (true) {
        if (inst.named) {
          expect_punct('.', "before a pin name");
          Connection conn;
          const Token pin = expect_ident("pin name after '.'");
          conn.pin = pin.text;
          conn.line = pin.line;
          expect_punct('(', "after pin name");
          if (peek().kind == Token::Kind::Punct && peek().text[0] == ')') {
            fail(pin.line, "pin ." + conn.pin + " is unconnected — every listed pin "
                               "must name a net");
          }
          const Connection ref = parse_net_ref("inside .(...)");
          conn.net = ref.net;
          conn.constant = ref.constant;
          conn.index = ref.index;
          expect_punct(')', "after the pin's net");
          inst.connections.push_back(std::move(conn));
        } else {
          inst.connections.push_back(parse_net_ref("in the connection list"));
        }
        if (accept_punct(')')) {
          break;
        }
        expect_punct(',', "between connections");
      }
      instances_.push_back(std::move(inst));
      if (accept_punct(';')) {
        break;
      }
      expect_punct(',', "between instances (or ';' to end the statement)");
    }
  }

  // --- assign statements and the expression subset ---------------------------

  LValueRef parse_lvalue_ref() {
    LValueRef ref;
    const Token name = expect_ident("a net name on the left of the assign");
    ref.name = name.text;
    ref.line = name.line;
    if (accept_punct('[')) {
      ref.msb = expect_number("the bit index");
      ref.lsb = accept_punct(':') ? expect_number("the part-select lsb") : ref.msb;
      expect_punct(']', "after the select");
    }
    return ref;
  }

  void parse_assign(const Token& keyword) {
    AssignStmt stmt;
    stmt.line = keyword.line;
    if (accept_punct('{')) {
      while (true) {
        stmt.lhs.push_back(parse_lvalue_ref());
        if (accept_punct('}')) {
          break;
        }
        expect_punct(',', "between concatenated assign targets");
      }
    } else {
      stmt.lhs.push_back(parse_lvalue_ref());
    }
    expect_punct('=', "in the assign statement");
    stmt.rhs = parse_expression();
    expect_punct(';', "after the assign statement");
    assigns_.push_back(std::move(stmt));
  }

  /// Operators that exist in Verilog but are outside the synthesizable
  /// subset get a targeted diagnostic instead of a generic parse error.
  void reject_unsupported_op() {
    static const char* kUnsupported[] = {"+",  "-",  "*",  "/", "%", "<",
                                         ">",  "<=", ">=", "&&", "||", "!"};
    if (peek().kind != Token::Kind::Punct) {
      return;
    }
    for (const char* op : kUnsupported) {
      if (peek().text == op) {
        fail(peek().line,
             "operator '" + peek().text +
                 "' is unsupported — the synthesizable expression subset is "
                 "~ & | ^ ?: == != << >> and {concatenation} "
                 "(see docs/verilog-frontend.md)");
      }
    }
  }

  // Precedence (loosest to tightest), matching Verilog for the subset:
  // ?:  <  |  <  ^  <  &  <  == !=  <  << >>  <  ~  <  primary.
  NetExpr parse_expression() { return parse_ternary(); }

  NetExpr parse_ternary() {
    NetExpr cond = parse_or();
    if (at_punct('?')) {
      const int line = advance().line;
      NetExpr then_arm = parse_expression();
      expect_punct(':', "in the '?:' expression");
      NetExpr else_arm = parse_ternary();
      NetExpr mux;
      mux.kind = NetExpr::Kind::Mux;
      mux.line = line;
      mux.args.push_back(std::move(cond));
      mux.args.push_back(std::move(then_arm));
      mux.args.push_back(std::move(else_arm));
      return mux;
    }
    return cond;
  }

  NetExpr binary_node(NetExpr::Kind kind, int line, NetExpr lhs, NetExpr rhs) {
    NetExpr node;
    node.kind = kind;
    node.line = line;
    node.args.push_back(std::move(lhs));
    node.args.push_back(std::move(rhs));
    return node;
  }

  NetExpr parse_or() {
    NetExpr lhs = parse_xor();
    while (true) {
      reject_unsupported_op();
      if (!at_punct('|')) {
        return lhs;
      }
      const int line = advance().line;
      lhs = binary_node(NetExpr::Kind::Or, line, std::move(lhs), parse_xor());
    }
  }

  NetExpr parse_xor() {
    NetExpr lhs = parse_and();
    while (at_punct('^')) {
      const int line = advance().line;
      lhs = binary_node(NetExpr::Kind::Xor, line, std::move(lhs), parse_and());
    }
    return lhs;
  }

  NetExpr parse_and() {
    NetExpr lhs = parse_equality();
    while (at_punct('&')) {
      const int line = advance().line;
      lhs = binary_node(NetExpr::Kind::And, line, std::move(lhs), parse_equality());
    }
    return lhs;
  }

  NetExpr parse_equality() {
    NetExpr lhs = parse_shift();
    while (peek().kind == Token::Kind::Punct &&
           (peek().text == "==" || peek().text == "!=")) {
      const Token op = advance();
      lhs = binary_node(op.text == "==" ? NetExpr::Kind::Eq : NetExpr::Kind::Ne,
                        op.line, std::move(lhs), parse_shift());
    }
    return lhs;
  }

  NetExpr parse_shift() {
    NetExpr lhs = parse_unary();
    while (peek().kind == Token::Kind::Punct &&
           (peek().text == "<<" || peek().text == ">>")) {
      const Token op = advance();
      NetExpr node;
      node.kind = op.text == "<<" ? NetExpr::Kind::Shl : NetExpr::Kind::Shr;
      node.line = op.line;
      if (peek().kind != Token::Kind::Literal) {
        fail(peek().line, "shift amount must be a constant — variable shifts are "
                          "unsupported (build the mux stages explicitly)");
      }
      node.amount = static_cast<std::uint64_t>(expect_number("the shift amount"));
      node.args.push_back(std::move(lhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  NetExpr parse_unary() {
    reject_unsupported_op();
    if (at_punct('~')) {
      const int line = advance().line;
      NetExpr node;
      node.kind = NetExpr::Kind::Not;
      node.line = line;
      node.args.push_back(parse_unary());
      return node;
    }
    return parse_primary();
  }

  NetExpr parse_primary() {
    if (accept_punct('(')) {
      NetExpr inner = parse_expression();
      expect_punct(')', "to close the parenthesized expression");
      return inner;
    }
    if (at_punct('{')) {
      NetExpr node;
      node.kind = NetExpr::Kind::Concat;
      node.line = advance().line;
      while (true) {
        node.args.push_back(parse_expression());
        if (accept_punct('}')) {
          return node;
        }
        expect_punct(',', "between concatenation operands");
      }
    }
    if (peek().kind == Token::Kind::Literal) {
      return parse_sized_literal(advance());
    }
    const Token name = expect_ident("an operand (net, literal, '(' or '{')");
    NetExpr ref;
    ref.kind = NetExpr::Kind::Ref;
    ref.name = name.text;
    ref.line = name.line;
    if (accept_punct('[')) {
      ref.sel_msb = expect_number("the bit index");
      ref.sel_lsb = accept_punct(':') ? expect_number("the part-select lsb") : ref.sel_msb;
      expect_punct(']', "after the select");
    }
    return ref;
  }

  NetExpr parse_sized_literal(const Token& tok) {
    std::string text;
    for (const char c : tok.text) {
      if (c != '_') {
        text.push_back(c);
      }
    }
    const std::size_t tick = text.find('\'');
    if (tick == std::string::npos) {
      fail(tok.line, "unsized literal '" + tok.text +
                         "' — size it as <width>'b/<width>'h/<width>'d so "
                         "bit-blasting has a width");
    }
    const int width = std::stoi(text.substr(0, tick));
    if (width < 1 || width > 64) {
      fail(tok.line, "literal width " + std::to_string(width) + " is out of the "
                         "supported 1..64 range");
    }
    if (tick + 1 >= text.size()) {
      fail(tok.line, "malformed literal '" + tok.text + "'");
    }
    const char base = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[tick + 1])));
    const std::string digits = text.substr(tick + 2);
    if (digits.empty()) {
      fail(tok.line, "malformed literal '" + tok.text + "' — no digits after the base");
    }
    std::uint64_t value = 0;
    for (const char raw : digits) {
      const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
      int digit = -1;
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = 10 + (c - 'a');
      }
      if (c == 'x' || c == 'z') {
        fail(tok.line, "x/z digits in '" + tok.text +
                           "' are unsupported — the subset is two-valued");
      }
      switch (base) {
        case 'b':
          if (digit < 0 || digit > 1) {
            fail(tok.line, "bad binary digit in '" + tok.text + "'");
          }
          value = (value << 1) | static_cast<std::uint64_t>(digit);
          break;
        case 'h':
          if (digit < 0) {
            fail(tok.line, "bad hex digit in '" + tok.text + "'");
          }
          value = (value << 4) | static_cast<std::uint64_t>(digit);
          break;
        case 'd':
          if (digit < 0 || digit > 9) {
            fail(tok.line, "bad decimal digit in '" + tok.text + "'");
          }
          value = value * 10 + static_cast<std::uint64_t>(digit);
          break;
        default:
          fail(tok.line, "unsupported literal base '" + std::string(1, base) +
                             "' — use 'b, 'h or 'd");
      }
    }
    NetExpr node;
    node.kind = NetExpr::Kind::Const;
    node.line = tok.line;
    node.bits.resize(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      node.bits[static_cast<std::size_t>(i)] = ((value >> i) & 1) != 0;
    }
    return node;
  }

  // --- netlist construction -------------------------------------------------

  /// Per-bit bookkeeping: buses are bit-blasted at declaration time, so
  /// drivers and reads are tracked at the bit level (a bus may mix assign-
  /// and instance-driven bits).
  struct BitRecord {
    NetId net = kNullNet;
    int driver_line = -1;  ///< line of the driver, -1 if undriven
    int first_read_line = -1;
  };

  struct NetRecord {
    DeclKind kind = DeclKind::Wire;
    int decl_line = 0;
    bool vector = false;
    int msb = 0;
    int lsb = 0;
    std::vector<BitRecord> bits;  ///< LSB-first; scalars have exactly one
  };

  /// Display name of one bit: `name` for scalars, `name[v]` for bus bits.
  static std::string bit_label(const std::string& name, const NetRecord& record,
                               std::size_t bit) {
    return record.vector
               ? name + "[" + std::to_string(record.lsb + static_cast<int>(bit)) + "]"
               : name;
  }

  NetRecord& resolve(const std::string& name, int line) {
    const auto it = nets_.find(name);
    if (it == nets_.end()) {
      fail(line, "undeclared net '" + name + "' — declare it with `wire " + name +
                     ";` (or as a port)");
    }
    return it->second;
  }

  /// Resolve a scalar bit reference: a plain name for scalar nets, or
  /// name[index] for one bit of a bus. Connection lists are scalar contexts.
  BitRecord& select_bit(NetRecord& record, const std::string& name, int index, int line) {
    if (index < 0) {
      if (record.vector) {
        fail(line, "'" + name + "' is a " + std::to_string(record.bits.size()) +
                       "-bit bus — select one bit (" + name + "[i]) in this context");
      }
      return record.bits[0];
    }
    if (!record.vector) {
      fail(line, "'" + name + "' is a scalar net — bit select " + name + "[" +
                     std::to_string(index) + "] is invalid");
    }
    if (index < record.lsb || index > record.msb) {
      fail(line, "bit select " + name + "[" + std::to_string(index) +
                     "] is out of range [" + std::to_string(record.msb) + ":" +
                     std::to_string(record.lsb) + "]");
    }
    return record.bits[static_cast<std::size_t>(index - record.lsb)];
  }

  /// ExprSynth resolver: a whole-signal, bit-select or part-select read in
  /// an assign expression, returned LSB-first with read lines recorded.
  std::vector<NetId> resolve_expr_ref(const std::string& name, int msb, int lsb,
                                      int line) {
    NetRecord& record = resolve(name, line);
    std::vector<NetId> out;
    const auto mark_read = [&](BitRecord& bit) {
      if (bit.first_read_line < 0) {
        bit.first_read_line = line;
      }
      out.push_back(bit.net);
    };
    if (msb < 0) {
      for (BitRecord& bit : record.bits) {
        mark_read(bit);
      }
      return out;
    }
    if (!record.vector) {
      fail(line, "'" + name + "' is a scalar net — bit select " + name + "[" +
                     std::to_string(msb) + "] is invalid");
    }
    if (msb < lsb) {
      fail(line, "part select [" + std::to_string(msb) + ":" + std::to_string(lsb) +
                     "] has msb < lsb");
    }
    if (lsb < record.lsb || msb > record.msb) {
      fail(line, "select " + name + "[" + std::to_string(msb) + ":" +
                     std::to_string(lsb) + "] is out of range [" +
                     std::to_string(record.msb) + ":" + std::to_string(record.lsb) +
                     "]");
    }
    for (int v = lsb; v <= msb; ++v) {
      mark_read(record.bits[static_cast<std::size_t>(v - record.lsb)]);
    }
    return out;
  }

  NetId read_net(Netlist& nl, const Connection& conn) {
    if (conn.constant >= 0) {
      NetId& cache = const_nets_[conn.constant];
      if (cache == kNullNet) {
        cache = nl.n_const(conn.constant == 1);
      }
      return cache;
    }
    NetRecord& record = resolve(conn.net, conn.line);
    BitRecord& bit = select_bit(record, conn.net, conn.index, conn.line);
    if (bit.first_read_line < 0) {
      bit.first_read_line = conn.line;
    }
    return bit.net;
  }

  NetId claim_output(const Connection& conn, const std::string& inst_label) {
    if (conn.constant >= 0) {
      fail(conn.line, "a constant cannot be an output connection (" + inst_label + ")");
    }
    NetRecord& record = resolve(conn.net, conn.line);
    if (record.kind == DeclKind::Input) {
      fail(conn.line, "gate output cannot drive input port '" + conn.net + "'");
    }
    BitRecord& bit = select_bit(record, conn.net, conn.index, conn.line);
    if (bit.driver_line >= 0) {
      const std::string label =
          conn.index >= 0 ? conn.net + "[" + std::to_string(conn.index) + "]" : conn.net;
      fail(conn.line, "net '" + label + "' is already driven (first driver at line " +
                          std::to_string(bit.driver_line) + ")");
    }
    bit.driver_line = conn.line;
    return bit.net;
  }

  /// Primitive gate table: the Verilog gate name, the 2-input fold cell and
  /// the cell of the final stage (they differ for the inverting gates:
  /// nand(a,b,c) = ~(a&b&c) folds with And2 and finishes with Nand2).
  struct Primitive {
    const char* name;
    CellType fold;
    CellType final;
    bool unary;
  };
  static const Primitive* primitive(const std::string& name) {
    static const Primitive table[] = {
        {"and", CellType::And2, CellType::And2, false},
        {"or", CellType::Or2, CellType::Or2, false},
        {"xor", CellType::Xor2, CellType::Xor2, false},
        {"nand", CellType::And2, CellType::Nand2, false},
        {"nor", CellType::Or2, CellType::Nor2, false},
        {"xnor", CellType::Xor2, CellType::Xnor2, false},
        {"not", CellType::Not, CellType::Not, true},
        {"buf", CellType::Buf, CellType::Buf, true},
    };
    for (const Primitive& p : table) {
      if (name == p.name) {
        return &p;
      }
    }
    return nullptr;
  }

  void build_primitive(Netlist& nl, const Instance& inst, const Primitive& prim) {
    if (inst.named) {
      fail(inst.line, "primitive gate '" + inst.type_name +
                          "' uses positional connections (output first), not "
                          "named pins");
    }
    const std::string label = inst.name.empty() ? inst.type_name : inst.name;
    if (prim.unary) {
      if (inst.connections.size() != 2) {
        fail(inst.line, "'" + inst.type_name + "' takes exactly (out, in); got " +
                            std::to_string(inst.connections.size()) + " connections");
      }
    } else if (inst.connections.size() < 3) {
      fail(inst.line, "'" + inst.type_name + "' needs an output and at least two "
                          "inputs; got " + std::to_string(inst.connections.size()) +
                          " connections");
    }
    const NetId out = claim_output(inst.connections[0], label);
    std::vector<NetId> inputs;
    for (std::size_t i = 1; i < inst.connections.size(); ++i) {
      inputs.push_back(read_net(nl, inst.connections[i]));
    }
    if (prim.unary) {
      nl.add_cell_bound(prim.final, {inputs[0]}, out, inst.name);
      return;
    }
    // Left-fold all but the last input with the non-inverting cell, then a
    // single final-stage cell onto the declared output net: Verilog's
    // reduction semantics for every arity, with inversion only at the end.
    NetId acc = inputs[0];
    for (std::size_t i = 1; i + 1 < inputs.size(); ++i) {
      acc = nl.cell(nl.add_cell(prim.fold, {acc, inputs[i]})).out;
    }
    nl.add_cell_bound(prim.final, {acc, inputs.back()}, out, inst.name);
  }

  void build_techlib(Netlist& nl, const Instance& inst, const TechCellSpec& spec) {
    if (!inst.named) {
      fail(inst.line, "techlib cell '" + inst.type_name +
                          "' needs named pin connections (." +
                          (spec.input_pins[0] ? spec.input_pins[0] : spec.output_pin) +
                          "(net), ...) — positional order is tool-specific");
    }
    const std::string label = inst.name.empty() ? inst.type_name : inst.name;
    const std::size_t fanin_count = cell_fanin_count(spec.type);
    std::vector<const Connection*> fanin(fanin_count, nullptr);
    const Connection* output = nullptr;
    for (const Connection& conn : inst.connections) {
      std::string pin;
      for (const char c : conn.pin) {
        pin.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
      if (pin == spec.output_pin) {
        if (output != nullptr) {
          fail(conn.line, "pin ." + conn.pin + " connected twice on '" + label + "'");
        }
        output = &conn;
        continue;
      }
      if ((pin == "CK" || pin == "CLK") && cell_is_sequential(spec.type)) {
        // Every flop/latch shares the library's implicit global clock; the
        // pin is accepted (and the net must exist) but connects to nothing.
        read_net(nl, conn);
        continue;
      }
      bool matched = false;
      for (std::size_t i = 0; i < fanin_count; ++i) {
        if (pin == spec.input_pins[i]) {
          if (fanin[i] != nullptr) {
            fail(conn.line, "pin ." + conn.pin + " connected twice on '" + label + "'");
          }
          fanin[i] = &conn;
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::string expected = std::string(".") + spec.output_pin;
        for (std::size_t i = 0; i < fanin_count; ++i) {
          expected += std::string(" .") + spec.input_pins[i];
        }
        fail(conn.line, "cell '" + std::string(spec.name) + "' has no pin ." + conn.pin +
                            " (pins: " + expected + ")");
      }
    }
    if (output == nullptr) {
      fail(inst.line, "instance '" + label + "' of " + spec.name + " leaves output pin ." +
                          spec.output_pin + " unconnected");
    }
    std::vector<NetId> fanin_nets;
    for (std::size_t i = 0; i < fanin_count; ++i) {
      if (fanin[i] == nullptr) {
        fail(inst.line, "instance '" + label + "' of " + spec.name + " leaves input pin ." +
                            spec.input_pins[i] + " unconnected");
      }
      fanin_nets.push_back(read_net(nl, *fanin[i]));
    }
    const NetId out = claim_output(*output, label);
    nl.add_cell_bound(spec.type, std::move(fanin_nets), out, inst.name);
  }

  Netlist build() {
    Netlist nl(module_name_);

    std::unordered_set<std::string> header_names;
    for (const auto& [name, line] : header_ports_) {
      if (!header_names.insert(name).second) {
        fail(line, "port '" + name + "' listed twice in the module header");
      }
    }
    for (const Declaration& decl : declarations_) {
      if (nets_.contains(decl.name)) {
        fail(decl.line, "'" + decl.name + "' is declared twice (first at line " +
                            std::to_string(nets_.at(decl.name).decl_line) + ")");
      }
      if (decl.kind != DeclKind::Wire && !header_ports_.empty() &&
          !header_names.contains(decl.name)) {
        fail(decl.line, "port '" + decl.name + "' is missing from the module header");
      }
      NetRecord record;
      record.kind = decl.kind;
      record.decl_line = decl.line;
      record.vector = decl.vector;
      record.msb = decl.msb;
      record.lsb = decl.lsb;
      const int width = decl.vector ? decl.msb - decl.lsb + 1 : 1;
      record.bits.resize(static_cast<std::size_t>(width));
      for (int i = 0; i < width; ++i) {
        const std::string bit_name =
            decl.vector ? decl.name + "[" + std::to_string(decl.lsb + i) + "]"
                        : decl.name;
        BitRecord& bit = record.bits[static_cast<std::size_t>(i)];
        if (decl.kind == DeclKind::Input) {
          bit.net = nl.add_input(bit_name);
          bit.driver_line = decl.line;  // driven by the Input port cell
        } else {
          bit.net = nl.add_net(bit_name);
        }
      }
      nets_.emplace(decl.name, std::move(record));
    }
    for (const auto& [name, line] : header_ports_) {
      const auto it = nets_.find(name);
      if (it == nets_.end() || it->second.kind == DeclKind::Wire) {
        fail(line, "header port '" + name + "' has no input/output declaration");
      }
    }

    for (const Instance& inst : instances_) {
      if (const Primitive* prim = primitive(inst.type_name)) {
        build_primitive(nl, inst, *prim);
      } else if (const TechCellSpec* spec = techlib_cell(inst.type_name)) {
        build_techlib(nl, inst, *spec);
      } else {
        fail(inst.line,
             "unknown gate or cell '" + inst.type_name +
                 "' — supported: the and/or/nand/nor/xor/xnor/not/buf primitives "
                 "and the techlib cells (INVX1, NAND2X1, DFFX1, ... — see "
                 "docs/verilog-frontend.md for the full table)");
      }
    }

    // Continuous assigns: lower each right-hand side through the expression
    // synthesizer, then bind the result onto the (bit-blasted) targets with
    // buffers so bit-level driver bookkeeping stays uniform with instances.
    ExprSynth synth(
        nl,
        [this](const std::string& name, int msb, int lsb, int line) {
          return this->resolve_expr_ref(name, msb, lsb, line);
        },
        filename_);
    for (const AssignStmt& stmt : assigns_) {
      const std::vector<NetId> rhs = synth.lower(stmt.rhs);
      // Flatten the (MSB-first) target list into LSB-first bit records: the
      // last concat operand takes the low bits, matching Concat lowering.
      std::vector<std::pair<BitRecord*, std::string>> targets;
      for (auto it = stmt.lhs.rbegin(); it != stmt.lhs.rend(); ++it) {
        NetRecord& record = resolve(it->name, it->line);
        if (record.kind == DeclKind::Input) {
          fail(it->line, "assign cannot drive input port '" + it->name + "'");
        }
        int lo = record.lsb;
        int hi = record.msb;
        if (it->msb >= 0) {
          if (!record.vector) {
            fail(it->line, "'" + it->name + "' is a scalar net — bit select " +
                               it->name + "[" + std::to_string(it->msb) +
                               "] is invalid");
          }
          if (it->msb < it->lsb) {
            fail(it->line, "part select [" + std::to_string(it->msb) + ":" +
                               std::to_string(it->lsb) + "] has msb < lsb");
          }
          if (it->lsb < record.lsb || it->msb > record.msb) {
            fail(it->line, "select " + it->name + "[" + std::to_string(it->msb) +
                               ":" + std::to_string(it->lsb) + "] is out of range [" +
                               std::to_string(record.msb) + ":" +
                               std::to_string(record.lsb) + "]");
          }
          lo = it->lsb;
          hi = it->msb;
        }
        for (int v = lo; v <= hi; ++v) {
          BitRecord& bit = record.bits[static_cast<std::size_t>(v - record.lsb)];
          const std::string label =
              record.vector ? it->name + "[" + std::to_string(v) + "]" : it->name;
          targets.emplace_back(&bit, label);
        }
      }
      if (targets.size() != rhs.size()) {
        fail(stmt.line, "width mismatch: assign target is " +
                            std::to_string(targets.size()) +
                            " bits but the expression is " +
                            std::to_string(rhs.size()) + " bits");
      }
      for (std::size_t i = 0; i < targets.size(); ++i) {
        BitRecord& bit = *targets[i].first;
        if (bit.driver_line >= 0) {
          fail(stmt.line, "net '" + targets[i].second +
                              "' is already driven (first driver at line " +
                              std::to_string(bit.driver_line) + ")");
        }
        bit.driver_line = stmt.line;
        nl.add_cell_bound(CellType::Buf, {rhs[i]}, bit.net);
      }
    }

    // Structural soundness with source locations, so downstream consumers
    // (lint, compile, SimEngine) never see an unbuildable import.
    for (const Declaration& decl : declarations_) {
      const NetRecord& record = nets_.at(decl.name);
      for (std::size_t i = 0; i < record.bits.size(); ++i) {
        const BitRecord& bit = record.bits[i];
        if (record.kind == DeclKind::Output && bit.driver_line < 0) {
          fail(decl.line,
               "output port '" + bit_label(decl.name, record, i) + "' is never driven");
        }
        if (record.kind == DeclKind::Wire && bit.driver_line < 0 &&
            bit.first_read_line >= 0) {
          fail(bit.first_read_line, "wire '" + bit_label(decl.name, record, i) +
                                        "' is read here but never driven");
        }
      }
    }
    for (const Declaration& decl : declarations_) {
      if (decl.kind != DeclKind::Output) {
        continue;
      }
      const NetRecord& record = nets_.at(decl.name);
      for (std::size_t i = 0; i < record.bits.size(); ++i) {
        nl.add_output(bit_label(decl.name, record, i), record.bits[i].net);
      }
    }
    try {
      (void)nl.combinational_order();
    } catch (const Error&) {
      fail(module_line_, "combinational cycle detected in module '" + module_name_ +
                             "' — feedback must go through a flip-flop");
    }
    return nl;
  }

  std::vector<Token> tokens_;
  std::string filename_;
  std::size_t index_ = 0;

  int module_line_ = 1;
  std::string module_name_;
  std::vector<std::pair<std::string, int>> header_ports_;
  std::vector<Declaration> declarations_;
  std::vector<Instance> instances_;
  std::vector<AssignStmt> assigns_;
  std::unordered_map<std::string, NetRecord> nets_;
  NetId const_nets_[2] = {kNullNet, kNullNet};
};

}  // namespace

Netlist read_verilog(std::istream& in, const std::string& filename) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parser(tokenize(buffer.str(), filename), filename).parse();
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open Verilog file '" + path + "'");
  }
  return read_verilog(in, path);
}

Netlist read_verilog_text(const std::string& text, const std::string& filename) {
  return Parser(tokenize(text, filename), filename).parse();
}

Netlist Netlist::from_verilog(const std::string& path) {
  return read_verilog_file(path);
}

// --- export -----------------------------------------------------------------

namespace {

bool verilog_ident(const std::string& name) {
  static const std::unordered_set<std::string> kKeywords = {
      "module", "endmodule", "input",  "output", "wire",   "assign", "and",
      "or",     "nand",      "nor",    "xor",    "xnor",   "not",    "buf",
      "reg",    "always",    "initial", "parameter"};
  if (name.empty() || !ident_start(name[0])) {
    return false;
  }
  for (const char c : name) {
    if (!ident_char(c)) {
      return false;
    }
  }
  return !kKeywords.contains(name);
}

std::string unique_name(std::string candidate, std::unordered_set<std::string>& used) {
  while (used.contains(candidate)) {
    candidate += "_";
  }
  used.insert(candidate);
  return candidate;
}

/// Legal-identifier form of a name that isn't one: bus bit nets like `a[3]`
/// become `a_3_` so exported netlists keep recognizable (and stable) names
/// instead of falling back to n<id>. Empty when no legal form exists.
std::string sanitized_ident(const std::string& name) {
  if (name.empty() || !ident_start(name[0])) {
    return {};
  }
  std::string out = name;
  for (char& c : out) {
    if (!ident_char(c)) {
      c = '_';
    }
  }
  return verilog_ident(out) ? out : std::string{};
}

std::string ident_candidate(const std::string& name) {
  return verilog_ident(name) ? name : sanitized_ident(name);
}

}  // namespace

void write_verilog(std::ostream& os, const Netlist& netlist) {
  // Resolve a Verilog-safe, collision-free name for every net (named nets
  // keep their name when it is a legal identifier; everything else becomes
  // n<id>) and every instance (u<id> fallback).
  std::unordered_set<std::string> used;
  std::vector<std::string> net_names(netlist.net_count());
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    const std::string candidate = ident_candidate(netlist.net_name(net));
    if (!candidate.empty() && !used.contains(candidate)) {
      net_names[net] = candidate;
      used.insert(candidate);
    }
  }
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    if (net_names[net].empty()) {
      net_names[net] = unique_name("n" + std::to_string(net), used);
    }
  }

  // Output ports are named nets in Verilog: when the port name differs from
  // the net feeding it, a buffer bridges the two.
  struct PortBuffer {
    std::string port;
    NetId source;
  };
  std::vector<std::string> output_ports;
  std::vector<PortBuffer> buffers;
  for (const CellId id : netlist.outputs()) {
    const Cell& cell = netlist.cell(id);
    const NetId source = cell.fanin[0];
    const std::string candidate = ident_candidate(cell.name);
    if (!candidate.empty() && candidate == net_names[source]) {
      output_ports.push_back(net_names[source]);
    } else {
      const std::string port = unique_name(
          !candidate.empty() ? candidate : "po" + std::to_string(id), used);
      output_ports.push_back(port);
      buffers.push_back({port, source});
    }
  }

  const std::string module_name =
      verilog_ident(netlist.name()) ? netlist.name() : "top";
  os << "// exported by retscan write_verilog — structural gate-level subset\n";
  os << "module " << module_name << " (";
  bool first = true;
  for (const CellId id : netlist.inputs()) {
    os << (first ? "" : ", ") << net_names[netlist.cell(id).out];
    first = false;
  }
  for (const std::string& port : output_ports) {
    os << (first ? "" : ", ") << port;
    first = false;
  }
  os << ");\n";

  std::unordered_set<std::string> port_nets;
  for (const CellId id : netlist.inputs()) {
    os << "  input " << net_names[netlist.cell(id).out] << ";\n";
    port_nets.insert(net_names[netlist.cell(id).out]);
  }
  for (const std::string& port : output_ports) {
    os << "  output " << port << ";\n";
    port_nets.insert(port);
  }
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    const CellId driver = netlist.driver(net);
    if (driver == kNullCell && netlist.fanouts()[net].empty()) {
      continue;  // orphaned net: nothing would reference the wire
    }
    if (!port_nets.contains(net_names[net])) {
      os << "  wire " << net_names[net] << ";\n";
    }
  }

  // Verilog puts nets and instances in one module namespace, so instance
  // names are made unique against the net/port names too — external tools
  // reject the clash even though retscan's own reader tolerates it.
  std::unordered_set<std::string> instance_names = used;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& cell = netlist.cell(id);
    if (cell.type == CellType::Input || cell.type == CellType::Output) {
      continue;
    }
    const TechCellSpec& spec = techlib_cell_for(cell.type);
    const std::string inst = unique_name(
        verilog_ident(cell.name) ? cell.name : "u" + std::to_string(id),
        instance_names);
    os << "  " << spec.name << " " << inst << " (";
    for (std::size_t pin = 0; pin < cell.fanin.size(); ++pin) {
      os << "." << spec.input_pins[pin] << "(" << net_names[cell.fanin[pin]] << "), ";
    }
    os << "." << spec.output_pin << "(" << net_names[cell.out] << "));\n";
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    os << "  BUFX1 " << unique_name("ob" + std::to_string(i), instance_names)
       << " (.A(" << net_names[buffers[i].source] << "), .Y(" << buffers[i].port
       << "));\n";
  }
  os << "endmodule\n";
}

}  // namespace retscan
