#include "netlist/verilog_reader.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/techlib.hpp"
#include "util/error.hpp"

namespace retscan {

namespace {

// --- lexing -----------------------------------------------------------------

struct Token {
  enum class Kind { Ident, Literal, Punct, End };
  Kind kind = Kind::End;
  std::string text;
  int line = 0;
};

[[noreturn]] void fail_at(const std::string& filename, int line, const std::string& message) {
  throw Error(filename + ":" + std::to_string(line) + ": " + message);
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::vector<Token> tokenize(const std::string& text, const std::string& filename) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  int line = 1;
  while (pos < text.size()) {
    const char c = text[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
      while (pos < text.size() && text[pos] != '\n') {
        ++pos;
      }
      continue;
    }
    if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '*') {
      const int start_line = line;
      pos += 2;
      while (pos + 1 < text.size() && !(text[pos] == '*' && text[pos + 1] == '/')) {
        if (text[pos] == '\n') {
          ++line;
        }
        ++pos;
      }
      if (pos + 1 >= text.size()) {
        fail_at(filename, start_line, "unterminated block comment");
      }
      pos += 2;
      continue;
    }
    if (c == '\\') {
      fail_at(filename, line, "escaped identifiers (\\name) are unsupported");
    }
    if (ident_start(c)) {
      std::size_t end = pos;
      while (end < text.size() && ident_char(text[end])) {
        ++end;
      }
      tokens.push_back({Token::Kind::Ident, text.substr(pos, end - pos), line});
      pos = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Decimal digits, optionally a based literal tail: 1'b0, 4'hF, ...
      std::size_t end = pos;
      while (end < text.size() && std::isdigit(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      if (end < text.size() && text[end] == '\'') {
        ++end;
        if (end < text.size() && std::isalpha(static_cast<unsigned char>(text[end]))) {
          ++end;
        }
        while (end < text.size() && std::isalnum(static_cast<unsigned char>(text[end]))) {
          ++end;
        }
      }
      tokens.push_back({Token::Kind::Literal, text.substr(pos, end - pos), line});
      pos = end;
      continue;
    }
    const std::string punct = "(),;.=#[]:";
    if (punct.find(c) != std::string::npos) {
      tokens.push_back({Token::Kind::Punct, std::string(1, c), line});
      ++pos;
      continue;
    }
    fail_at(filename, line, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({Token::Kind::End, "", line});
  return tokens;
}

// --- parsing ----------------------------------------------------------------

/// One pin/net connection of an instantiation, before name resolution.
struct Connection {
  std::string pin;   ///< empty for positional connections
  std::string net;   ///< identifier, or empty when constant >= 0
  int constant = -1; ///< 0 / 1 for 1'b0 / 1'b1 connections
  int line = 0;
};

struct Instance {
  std::string type_name;
  std::string name;  ///< optional instance name
  std::vector<Connection> connections;
  bool named = false;  ///< named (.pin(net)) vs positional connections
  int line = 0;
};

enum class DeclKind { Input, Output, Wire };

struct Declaration {
  std::string name;
  DeclKind kind;
  int line;
};

/// Recursive-descent parser over the token stream; collects declarations and
/// instances first, then builds the Netlist so that declaration order in the
/// file does not matter (standard Verilog allows use-before-declare).
class Parser {
 public:
  Parser(std::vector<Token> tokens, std::string filename)
      : tokens_(std::move(tokens)), filename_(std::move(filename)) {}

  Netlist parse() {
    parse_module();
    return build();
  }

 private:
  const Token& peek() const { return tokens_[index_]; }
  Token advance() { return tokens_[index_++]; }

  [[noreturn]] void fail(int line, const std::string& message) const {
    fail_at(filename_, line, message);
  }

  Token expect_ident(const std::string& what) {
    if (peek().kind != Token::Kind::Ident) {
      fail(peek().line, "expected " + what + ", got '" + describe(peek()) + "'");
    }
    return advance();
  }

  void expect_punct(char c, const std::string& context) {
    if (peek().kind != Token::Kind::Punct || peek().text[0] != c) {
      fail(peek().line, "expected '" + std::string(1, c) + "' " + context + ", got '" +
                            describe(peek()) + "'");
    }
    advance();
  }

  bool accept_punct(char c) {
    if (peek().kind == Token::Kind::Punct && peek().text[0] == c) {
      advance();
      return true;
    }
    return false;
  }

  static std::string describe(const Token& token) {
    return token.kind == Token::Kind::End ? "end of file" : token.text;
  }

  void parse_module() {
    const Token keyword = expect_ident("'module'");
    if (keyword.text != "module") {
      fail(keyword.line, "expected 'module', got '" + keyword.text + "'");
    }
    module_line_ = keyword.line;
    module_name_ = expect_ident("module name").text;
    if (accept_punct('(')) {
      if (!accept_punct(')')) {
        while (true) {
          const Token port = expect_ident("port name in module header");
          if (port.text == "input" || port.text == "output" || port.text == "wire" ||
              port.text == "reg") {
            fail(port.line,
                 "ANSI-style port declarations are unsupported — list plain port "
                 "names in the header and declare directions in the module body");
          }
          header_ports_.emplace_back(port.text, port.line);
          if (accept_punct(')')) {
            break;
          }
          expect_punct(',', "between header ports");
        }
      }
    }
    expect_punct(';', "after the module header");

    while (true) {
      const Token item = expect_ident("a declaration, an instantiation or 'endmodule'");
      if (item.text == "endmodule") {
        break;
      }
      if (item.text == "input" || item.text == "output" || item.text == "wire") {
        parse_declaration(item);
      } else if (item.text == "assign") {
        fail(item.line,
             "continuous 'assign' is unsupported — instantiate a buf/primitive "
             "gate instead (structural gate-level subset, see "
             "docs/verilog-frontend.md)");
      } else if (item.text == "reg" || item.text == "always" || item.text == "initial" ||
                 item.text == "parameter" || item.text == "specify" ||
                 item.text == "supply0" || item.text == "supply1" ||
                 item.text == "tri" || item.text == "integer" || item.text == "function" ||
                 item.text == "task" || item.text == "generate") {
        fail(item.line, "'" + item.text +
                            "' is unsupported — only the structural gate-level "
                            "subset is accepted (see docs/verilog-frontend.md)");
      } else {
        parse_instantiation(item);
      }
    }
    if (peek().kind != Token::Kind::End) {
      if (peek().kind == Token::Kind::Ident && peek().text == "module") {
        fail(peek().line, "multiple modules per file are unsupported");
      }
      fail(peek().line, "unexpected '" + describe(peek()) + "' after endmodule");
    }
  }

  void parse_declaration(const Token& keyword) {
    const DeclKind kind = keyword.text == "input"    ? DeclKind::Input
                          : keyword.text == "output" ? DeclKind::Output
                                                     : DeclKind::Wire;
    if (peek().kind == Token::Kind::Punct && peek().text[0] == '[') {
      fail(peek().line,
           "vector/bus declarations are unsupported — the gate-level subset is "
           "scalar; expand buses to one net per bit (see docs/verilog-frontend.md)");
    }
    while (true) {
      const Token name = expect_ident("net name in " + keyword.text + " declaration");
      declarations_.push_back({name.text, kind, name.line});
      if (accept_punct(';')) {
        break;
      }
      expect_punct(',', "between declared nets");
    }
  }

  Connection parse_net_ref(const std::string& context) {
    Connection conn;
    conn.line = peek().line;
    if (peek().kind == Token::Kind::Literal) {
      const Token literal = advance();
      if (literal.text == "1'b0" || literal.text == "1'B0") {
        conn.constant = 0;
      } else if (literal.text == "1'b1" || literal.text == "1'B1") {
        conn.constant = 1;
      } else {
        fail(literal.line, "unsupported literal '" + literal.text +
                               "' — only the 1'b0 / 1'b1 constants are accepted");
      }
      return conn;
    }
    conn.net = expect_ident("net name " + context).text;
    return conn;
  }

  void parse_instantiation(const Token& type_token) {
    while (true) {
      Instance inst;
      inst.type_name = type_token.text;
      inst.line = type_token.line;
      if (peek().kind == Token::Kind::Ident) {
        inst.name = advance().text;
      }
      expect_punct('(', "to open the connection list");
      if (accept_punct(')')) {
        fail(type_token.line, "instance of '" + inst.type_name + "' has no connections");
      }
      inst.named = peek().kind == Token::Kind::Punct && peek().text[0] == '.';
      while (true) {
        if (inst.named) {
          expect_punct('.', "before a pin name");
          Connection conn;
          const Token pin = expect_ident("pin name after '.'");
          conn.pin = pin.text;
          conn.line = pin.line;
          expect_punct('(', "after pin name");
          if (peek().kind == Token::Kind::Punct && peek().text[0] == ')') {
            fail(pin.line, "pin ." + conn.pin + " is unconnected — every listed pin "
                               "must name a net");
          }
          const Connection ref = parse_net_ref("inside .(...)");
          conn.net = ref.net;
          conn.constant = ref.constant;
          expect_punct(')', "after the pin's net");
          inst.connections.push_back(std::move(conn));
        } else {
          inst.connections.push_back(parse_net_ref("in the connection list"));
        }
        if (accept_punct(')')) {
          break;
        }
        expect_punct(',', "between connections");
      }
      instances_.push_back(std::move(inst));
      if (accept_punct(';')) {
        break;
      }
      expect_punct(',', "between instances (or ';' to end the statement)");
    }
  }

  // --- netlist construction -------------------------------------------------

  struct NetRecord {
    NetId net = kNullNet;
    DeclKind kind = DeclKind::Wire;
    int decl_line = 0;
    int driver_line = -1;  ///< line of the instance driving it, -1 if undriven
    int first_read_line = -1;
  };

  NetRecord& resolve(const std::string& name, int line) {
    const auto it = nets_.find(name);
    if (it == nets_.end()) {
      fail(line, "undeclared net '" + name + "' — declare it with `wire " + name +
                     ";` (or as a port)");
    }
    return it->second;
  }

  NetId read_net(Netlist& nl, const Connection& conn) {
    if (conn.constant >= 0) {
      NetId& cache = const_nets_[conn.constant];
      if (cache == kNullNet) {
        cache = nl.n_const(conn.constant == 1);
      }
      return cache;
    }
    NetRecord& record = resolve(conn.net, conn.line);
    if (record.first_read_line < 0) {
      record.first_read_line = conn.line;
    }
    return record.net;
  }

  NetId claim_output(const Connection& conn, const std::string& inst_label) {
    if (conn.constant >= 0) {
      fail(conn.line, "a constant cannot be an output connection (" + inst_label + ")");
    }
    NetRecord& record = resolve(conn.net, conn.line);
    if (record.kind == DeclKind::Input) {
      fail(conn.line, "gate output cannot drive input port '" + conn.net + "'");
    }
    if (record.driver_line >= 0) {
      fail(conn.line, "net '" + conn.net + "' is already driven (first driver at line " +
                          std::to_string(record.driver_line) + ")");
    }
    record.driver_line = conn.line;
    return record.net;
  }

  /// Primitive gate table: the Verilog gate name, the 2-input fold cell and
  /// the cell of the final stage (they differ for the inverting gates:
  /// nand(a,b,c) = ~(a&b&c) folds with And2 and finishes with Nand2).
  struct Primitive {
    const char* name;
    CellType fold;
    CellType final;
    bool unary;
  };
  static const Primitive* primitive(const std::string& name) {
    static const Primitive table[] = {
        {"and", CellType::And2, CellType::And2, false},
        {"or", CellType::Or2, CellType::Or2, false},
        {"xor", CellType::Xor2, CellType::Xor2, false},
        {"nand", CellType::And2, CellType::Nand2, false},
        {"nor", CellType::Or2, CellType::Nor2, false},
        {"xnor", CellType::Xor2, CellType::Xnor2, false},
        {"not", CellType::Not, CellType::Not, true},
        {"buf", CellType::Buf, CellType::Buf, true},
    };
    for (const Primitive& p : table) {
      if (name == p.name) {
        return &p;
      }
    }
    return nullptr;
  }

  void build_primitive(Netlist& nl, const Instance& inst, const Primitive& prim) {
    if (inst.named) {
      fail(inst.line, "primitive gate '" + inst.type_name +
                          "' uses positional connections (output first), not "
                          "named pins");
    }
    const std::string label = inst.name.empty() ? inst.type_name : inst.name;
    if (prim.unary) {
      if (inst.connections.size() != 2) {
        fail(inst.line, "'" + inst.type_name + "' takes exactly (out, in); got " +
                            std::to_string(inst.connections.size()) + " connections");
      }
    } else if (inst.connections.size() < 3) {
      fail(inst.line, "'" + inst.type_name + "' needs an output and at least two "
                          "inputs; got " + std::to_string(inst.connections.size()) +
                          " connections");
    }
    const NetId out = claim_output(inst.connections[0], label);
    std::vector<NetId> inputs;
    for (std::size_t i = 1; i < inst.connections.size(); ++i) {
      inputs.push_back(read_net(nl, inst.connections[i]));
    }
    if (prim.unary) {
      nl.add_cell_bound(prim.final, {inputs[0]}, out, inst.name);
      return;
    }
    // Left-fold all but the last input with the non-inverting cell, then a
    // single final-stage cell onto the declared output net: Verilog's
    // reduction semantics for every arity, with inversion only at the end.
    NetId acc = inputs[0];
    for (std::size_t i = 1; i + 1 < inputs.size(); ++i) {
      acc = nl.cell(nl.add_cell(prim.fold, {acc, inputs[i]})).out;
    }
    nl.add_cell_bound(prim.final, {acc, inputs.back()}, out, inst.name);
  }

  void build_techlib(Netlist& nl, const Instance& inst, const TechCellSpec& spec) {
    if (!inst.named) {
      fail(inst.line, "techlib cell '" + inst.type_name +
                          "' needs named pin connections (." +
                          (spec.input_pins[0] ? spec.input_pins[0] : spec.output_pin) +
                          "(net), ...) — positional order is tool-specific");
    }
    const std::string label = inst.name.empty() ? inst.type_name : inst.name;
    const std::size_t fanin_count = cell_fanin_count(spec.type);
    std::vector<const Connection*> fanin(fanin_count, nullptr);
    const Connection* output = nullptr;
    for (const Connection& conn : inst.connections) {
      std::string pin;
      for (const char c : conn.pin) {
        pin.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
      }
      if (pin == spec.output_pin) {
        if (output != nullptr) {
          fail(conn.line, "pin ." + conn.pin + " connected twice on '" + label + "'");
        }
        output = &conn;
        continue;
      }
      if ((pin == "CK" || pin == "CLK") && cell_is_sequential(spec.type)) {
        // Every flop/latch shares the library's implicit global clock; the
        // pin is accepted (and the net must exist) but connects to nothing.
        read_net(nl, conn);
        continue;
      }
      bool matched = false;
      for (std::size_t i = 0; i < fanin_count; ++i) {
        if (pin == spec.input_pins[i]) {
          if (fanin[i] != nullptr) {
            fail(conn.line, "pin ." + conn.pin + " connected twice on '" + label + "'");
          }
          fanin[i] = &conn;
          matched = true;
          break;
        }
      }
      if (!matched) {
        std::string expected = std::string(".") + spec.output_pin;
        for (std::size_t i = 0; i < fanin_count; ++i) {
          expected += std::string(" .") + spec.input_pins[i];
        }
        fail(conn.line, "cell '" + std::string(spec.name) + "' has no pin ." + conn.pin +
                            " (pins: " + expected + ")");
      }
    }
    if (output == nullptr) {
      fail(inst.line, "instance '" + label + "' of " + spec.name + " leaves output pin ." +
                          spec.output_pin + " unconnected");
    }
    std::vector<NetId> fanin_nets;
    for (std::size_t i = 0; i < fanin_count; ++i) {
      if (fanin[i] == nullptr) {
        fail(inst.line, "instance '" + label + "' of " + spec.name + " leaves input pin ." +
                            spec.input_pins[i] + " unconnected");
      }
      fanin_nets.push_back(read_net(nl, *fanin[i]));
    }
    const NetId out = claim_output(*output, label);
    nl.add_cell_bound(spec.type, std::move(fanin_nets), out, inst.name);
  }

  Netlist build() {
    Netlist nl(module_name_);

    std::unordered_set<std::string> header_names;
    for (const auto& [name, line] : header_ports_) {
      if (!header_names.insert(name).second) {
        fail(line, "port '" + name + "' listed twice in the module header");
      }
    }
    for (const Declaration& decl : declarations_) {
      if (nets_.contains(decl.name)) {
        fail(decl.line, "'" + decl.name + "' is declared twice (first at line " +
                            std::to_string(nets_.at(decl.name).decl_line) + ")");
      }
      if (decl.kind != DeclKind::Wire && !header_ports_.empty() &&
          !header_names.contains(decl.name)) {
        fail(decl.line, "port '" + decl.name + "' is missing from the module header");
      }
      NetRecord record;
      record.kind = decl.kind;
      record.decl_line = decl.line;
      if (decl.kind == DeclKind::Input) {
        record.net = nl.add_input(decl.name);
        record.driver_line = decl.line;  // driven by the Input port cell
      } else {
        record.net = nl.add_net(decl.name);
      }
      nets_.emplace(decl.name, record);
    }
    for (const auto& [name, line] : header_ports_) {
      const auto it = nets_.find(name);
      if (it == nets_.end() || it->second.kind == DeclKind::Wire) {
        fail(line, "header port '" + name + "' has no input/output declaration");
      }
    }

    for (const Instance& inst : instances_) {
      if (const Primitive* prim = primitive(inst.type_name)) {
        build_primitive(nl, inst, *prim);
      } else if (const TechCellSpec* spec = techlib_cell(inst.type_name)) {
        build_techlib(nl, inst, *spec);
      } else {
        fail(inst.line,
             "unknown gate or cell '" + inst.type_name +
                 "' — supported: the and/or/nand/nor/xor/xnor/not/buf primitives "
                 "and the techlib cells (INVX1, NAND2X1, DFFX1, ... — see "
                 "docs/verilog-frontend.md for the full table)");
      }
    }

    // Structural soundness with source locations, so downstream consumers
    // (lint, compile, SimEngine) never see an unbuildable import.
    for (const Declaration& decl : declarations_) {
      const NetRecord& record = nets_.at(decl.name);
      if (record.kind == DeclKind::Output && record.driver_line < 0) {
        fail(decl.line, "output port '" + decl.name + "' is never driven");
      }
      if (record.kind == DeclKind::Wire && record.driver_line < 0 &&
          record.first_read_line >= 0) {
        fail(record.first_read_line,
             "wire '" + decl.name + "' is read here but never driven");
      }
    }
    for (const Declaration& decl : declarations_) {
      if (decl.kind == DeclKind::Output) {
        nl.add_output(decl.name, nets_.at(decl.name).net);
      }
    }
    try {
      (void)nl.combinational_order();
    } catch (const Error&) {
      fail(module_line_, "combinational cycle detected in module '" + module_name_ +
                             "' — feedback must go through a flip-flop");
    }
    return nl;
  }

  std::vector<Token> tokens_;
  std::string filename_;
  std::size_t index_ = 0;

  int module_line_ = 1;
  std::string module_name_;
  std::vector<std::pair<std::string, int>> header_ports_;
  std::vector<Declaration> declarations_;
  std::vector<Instance> instances_;
  std::unordered_map<std::string, NetRecord> nets_;
  NetId const_nets_[2] = {kNullNet, kNullNet};
};

}  // namespace

Netlist read_verilog(std::istream& in, const std::string& filename) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parser(tokenize(buffer.str(), filename), filename).parse();
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw Error("cannot open Verilog file '" + path + "'");
  }
  return read_verilog(in, path);
}

Netlist read_verilog_text(const std::string& text, const std::string& filename) {
  return Parser(tokenize(text, filename), filename).parse();
}

Netlist Netlist::from_verilog(const std::string& path) {
  return read_verilog_file(path);
}

// --- export -----------------------------------------------------------------

namespace {

bool verilog_ident(const std::string& name) {
  static const std::unordered_set<std::string> kKeywords = {
      "module", "endmodule", "input",  "output", "wire",   "assign", "and",
      "or",     "nand",      "nor",    "xor",    "xnor",   "not",    "buf",
      "reg",    "always",    "initial", "parameter"};
  if (name.empty() || !ident_start(name[0])) {
    return false;
  }
  for (const char c : name) {
    if (!ident_char(c)) {
      return false;
    }
  }
  return !kKeywords.contains(name);
}

std::string unique_name(std::string candidate, std::unordered_set<std::string>& used) {
  while (used.contains(candidate)) {
    candidate += "_";
  }
  used.insert(candidate);
  return candidate;
}

}  // namespace

void write_verilog(std::ostream& os, const Netlist& netlist) {
  // Resolve a Verilog-safe, collision-free name for every net (named nets
  // keep their name when it is a legal identifier; everything else becomes
  // n<id>) and every instance (u<id> fallback).
  std::unordered_set<std::string> used;
  std::vector<std::string> net_names(netlist.net_count());
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    const std::string& name = netlist.net_name(net);
    if (verilog_ident(name) && !used.contains(name)) {
      net_names[net] = name;
      used.insert(name);
    }
  }
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    if (net_names[net].empty()) {
      net_names[net] = unique_name("n" + std::to_string(net), used);
    }
  }

  // Output ports are named nets in Verilog: when the port name differs from
  // the net feeding it, a buffer bridges the two.
  struct PortBuffer {
    std::string port;
    NetId source;
  };
  std::vector<std::string> output_ports;
  std::vector<PortBuffer> buffers;
  for (const CellId id : netlist.outputs()) {
    const Cell& cell = netlist.cell(id);
    const NetId source = cell.fanin[0];
    if (!cell.name.empty() && cell.name == net_names[source]) {
      output_ports.push_back(net_names[source]);
    } else {
      const std::string port = unique_name(
          verilog_ident(cell.name) ? cell.name : "po" + std::to_string(id), used);
      output_ports.push_back(port);
      buffers.push_back({port, source});
    }
  }

  const std::string module_name =
      verilog_ident(netlist.name()) ? netlist.name() : "top";
  os << "// exported by retscan write_verilog — structural gate-level subset\n";
  os << "module " << module_name << " (";
  bool first = true;
  for (const CellId id : netlist.inputs()) {
    os << (first ? "" : ", ") << net_names[netlist.cell(id).out];
    first = false;
  }
  for (const std::string& port : output_ports) {
    os << (first ? "" : ", ") << port;
    first = false;
  }
  os << ");\n";

  std::unordered_set<std::string> port_nets;
  for (const CellId id : netlist.inputs()) {
    os << "  input " << net_names[netlist.cell(id).out] << ";\n";
    port_nets.insert(net_names[netlist.cell(id).out]);
  }
  for (const std::string& port : output_ports) {
    os << "  output " << port << ";\n";
    port_nets.insert(port);
  }
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    const CellId driver = netlist.driver(net);
    if (driver == kNullCell && netlist.fanouts()[net].empty()) {
      continue;  // orphaned net: nothing would reference the wire
    }
    if (!port_nets.contains(net_names[net])) {
      os << "  wire " << net_names[net] << ";\n";
    }
  }

  // Verilog puts nets and instances in one module namespace, so instance
  // names are made unique against the net/port names too — external tools
  // reject the clash even though retscan's own reader tolerates it.
  std::unordered_set<std::string> instance_names = used;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& cell = netlist.cell(id);
    if (cell.type == CellType::Input || cell.type == CellType::Output) {
      continue;
    }
    const TechCellSpec& spec = techlib_cell_for(cell.type);
    const std::string inst = unique_name(
        verilog_ident(cell.name) ? cell.name : "u" + std::to_string(id),
        instance_names);
    os << "  " << spec.name << " " << inst << " (";
    for (std::size_t pin = 0; pin < cell.fanin.size(); ++pin) {
      os << "." << spec.input_pins[pin] << "(" << net_names[cell.fanin[pin]] << "), ";
    }
    os << "." << spec.output_pin << "(" << net_names[cell.out] << "));\n";
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    os << "  BUFX1 " << unique_name("ob" + std::to_string(i), instance_names)
       << " (.A(" << net_names[buffers[i].source] << "), .Y(" << buffers[i].port
       << "));\n";
  }
  os << "endmodule\n";
}

}  // namespace retscan
