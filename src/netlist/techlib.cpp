#include "netlist/techlib.hpp"

#include "util/error.hpp"

namespace retscan {

namespace {
constexpr std::size_t index_of(CellType type) { return static_cast<std::size_t>(type); }
}  // namespace

TechLibrary TechLibrary::st120() {
  TechLibrary lib;
  lib.name_ = "st120-class";
  lib.vdd_volts_ = 1.2;

  // Switching energies are calibrated with a single global factor so that
  // the reproduced Table I lands on the paper's absolute power (~5 mW for
  // CRC-16 at 100 MHz) — the per-cell *ratios* are untouched.
  constexpr double kEnergyCalibration = 0.38;
  auto set = [&lib](CellType type, double area, double energy_pj, double leak_nw) {
    lib.physics_[index_of(type)] =
        CellPhysics{area, energy_pj * kEnergyCalibration, leak_nw};
  };

  // area um^2, switching energy pJ/toggle, leakage nW.
  set(CellType::Const0, 0.0, 0.0, 0.0);
  set(CellType::Const1, 0.0, 0.0, 0.0);
  set(CellType::Buf,    7.0, 0.012, 0.8);
  set(CellType::Not,    5.5, 0.010, 0.7);
  set(CellType::And2,  10.0, 0.016, 1.1);
  set(CellType::Or2,   10.0, 0.016, 1.1);
  set(CellType::Xor2,  18.0, 0.028, 1.8);
  set(CellType::Nand2,  8.0, 0.014, 1.0);
  set(CellType::Nor2,   8.0, 0.014, 1.0);
  set(CellType::Xnor2, 18.0, 0.028, 1.8);
  set(CellType::Mux2,  16.0, 0.024, 1.6);
  set(CellType::Dff,   50.0, 0.090, 4.5);
  set(CellType::Sdff,  58.0, 0.100, 5.0);
  // Retention flop: master (low-Vt, fast) + always-on high-Vt balloon latch
  // and retain routing — noticeably larger and more power-hungry (Fig. 1).
  set(CellType::Rdff,  76.0, 0.118, 3.2);
  set(CellType::LatchL, 30.0, 0.055, 2.4);
  set(CellType::Input,  0.0, 0.0, 0.0);
  set(CellType::Output, 0.0, 0.0, 0.0);
  return lib;
}

const CellPhysics& TechLibrary::physics(CellType type) const {
  return physics_[index_of(type)];
}

AreaReport TechLibrary::area(const Netlist& netlist) const {
  AreaReport report;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    const double a = physics(c.type).area_um2;
    report.total_um2 += a;
    if (cell_is_sequential(c.type)) {
      report.sequential_um2 += a;
      if (cell_is_flop(c.type)) {
        ++report.flop_count;
      }
    } else {
      report.combinational_um2 += a;
    }
    if (c.type != CellType::Input && c.type != CellType::Output) {
      ++report.cell_count;
    }
  }
  return report;
}

double TechLibrary::sleep_leakage_nw(const Netlist& netlist, DomainId gated_domain) const {
  double total = 0.0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    if (c.domain != gated_domain) {
      total += physics(c.type).leakage_nw;  // always-on logic leaks fully
    } else if (c.type == CellType::Rdff) {
      total += physics(CellType::Rdff).leakage_nw;  // balloon latch only
    }
  }
  return total;
}

double TechLibrary::leakage_nw(const Netlist& netlist, DomainId domain) const {
  double total = 0.0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    if (c.domain == domain) {
      total += physics(c.type).leakage_nw;
    }
  }
  return total;
}

}  // namespace retscan
