#include "netlist/techlib.hpp"

#include "util/error.hpp"

namespace retscan {

namespace {
constexpr std::size_t index_of(CellType type) { return static_cast<std::size_t>(type); }

// The frontend's cell vocabulary. Aliases map the generic lowercase names
// (cell_type_name spellings, and the INV/TLAT industry spellings) onto the
// same rows; lookup normalizes case and strips the X<digits> drive suffix.
constexpr TechCellSpec kTechCells[] = {
    {CellType::Const0, "TIELO",  "Y", {}},
    {CellType::Const1, "TIEHI",  "Y", {}},
    {CellType::Buf,    "BUFX1",  "Y", {"A"}},
    {CellType::Not,    "INVX1",  "Y", {"A"}},
    {CellType::And2,   "AND2X1", "Y", {"A", "B"}},
    {CellType::Or2,    "OR2X1",  "Y", {"A", "B"}},
    {CellType::Xor2,   "XOR2X1", "Y", {"A", "B"}},
    {CellType::Nand2,  "NAND2X1","Y", {"A", "B"}},
    {CellType::Nor2,   "NOR2X1", "Y", {"A", "B"}},
    {CellType::Xnor2,  "XNOR2X1","Y", {"A", "B"}},
    // Mux2 fanin order is {sel, lo, hi}: Y = S ? B : A.
    {CellType::Mux2,   "MUX2X1", "Y", {"S", "A", "B"}},
    {CellType::Dff,    "DFFX1",  "Q", {"D"}},
    {CellType::Sdff,   "SDFFX1", "Q", {"D", "SI", "SE"}},
    {CellType::Rdff,   "RDFFX1", "Q", {"D", "SI", "SE", "RET"}},
    {CellType::LatchL, "TLATX1", "Q", {"D", "EN"}},
};

// name (already normalized) -> additional aliases beyond the canonical rows.
struct TechCellAlias {
  const char* alias;
  CellType type;
};
constexpr TechCellAlias kTechAliases[] = {
    {"CONST0", CellType::Const0}, {"TIE0", CellType::Const0},
    {"CONST1", CellType::Const1}, {"TIE1", CellType::Const1},
    {"BUF", CellType::Buf},
    {"INV", CellType::Not},       {"NOT", CellType::Not},
    {"AND2", CellType::And2},     {"OR2", CellType::Or2},
    {"XOR2", CellType::Xor2},     {"NAND2", CellType::Nand2},
    {"NOR2", CellType::Nor2},     {"XNOR2", CellType::Xnor2},
    {"MUX2", CellType::Mux2},
    {"DFF", CellType::Dff},       {"SDFF", CellType::Sdff},
    {"RDFF", CellType::Rdff},
    {"TLAT", CellType::LatchL},   {"LATCHL", CellType::LatchL},
};

std::string upper_name(std::string_view name) {
  std::string upper;
  upper.reserve(name.size());
  for (const char c : name) {
    upper.push_back(c >= 'a' && c <= 'z' ? static_cast<char>(c - 'a' + 'A') : c);
  }
  return upper;
}

const TechCellSpec* lookup_exact(const std::string& upper) {
  for (const TechCellSpec& spec : kTechCells) {
    if (upper == spec.name) {
      return &spec;
    }
  }
  for (const TechCellAlias& alias : kTechAliases) {
    if (upper == alias.alias) {
      return &techlib_cell_for(alias.type);
    }
  }
  return nullptr;
}
}  // namespace

const TechCellSpec* techlib_cell(std::string_view name) {
  const std::string upper = upper_name(name);
  // Exact names (canonical rows and aliases) win before drive-suffix
  // stripping: MUX2's real name ends in X<digit>, so stripping first would
  // mangle it to "MU" and make the generic mux2 spelling unreachable.
  if (const TechCellSpec* spec = lookup_exact(upper)) {
    return spec;
  }
  std::size_t end = upper.size();
  while (end > 0 && upper[end - 1] >= '0' && upper[end - 1] <= '9') {
    --end;
  }
  if (end > 0 && end < upper.size() && upper[end - 1] == 'X') {
    return lookup_exact(upper.substr(0, end - 1));
  }
  return nullptr;
}

const TechCellSpec& techlib_cell_for(CellType type) {
  for (const TechCellSpec& spec : kTechCells) {
    if (spec.type == type) {
      return spec;
    }
  }
  throw Error("techlib_cell_for: " + std::string(cell_type_name(type)) +
              " is a port pseudo-cell, not a library cell");
}

TechLibrary TechLibrary::st120() {
  TechLibrary lib;
  lib.name_ = "st120-class";
  lib.vdd_volts_ = 1.2;

  // Switching energies are calibrated with a single global factor so that
  // the reproduced Table I lands on the paper's absolute power (~5 mW for
  // CRC-16 at 100 MHz) — the per-cell *ratios* are untouched.
  constexpr double kEnergyCalibration = 0.38;
  auto set = [&lib](CellType type, double area, double energy_pj, double leak_nw) {
    lib.physics_[index_of(type)] =
        CellPhysics{area, energy_pj * kEnergyCalibration, leak_nw};
  };

  // area um^2, switching energy pJ/toggle, leakage nW.
  set(CellType::Const0, 0.0, 0.0, 0.0);
  set(CellType::Const1, 0.0, 0.0, 0.0);
  set(CellType::Buf,    7.0, 0.012, 0.8);
  set(CellType::Not,    5.5, 0.010, 0.7);
  set(CellType::And2,  10.0, 0.016, 1.1);
  set(CellType::Or2,   10.0, 0.016, 1.1);
  set(CellType::Xor2,  18.0, 0.028, 1.8);
  set(CellType::Nand2,  8.0, 0.014, 1.0);
  set(CellType::Nor2,   8.0, 0.014, 1.0);
  set(CellType::Xnor2, 18.0, 0.028, 1.8);
  set(CellType::Mux2,  16.0, 0.024, 1.6);
  set(CellType::Dff,   50.0, 0.090, 4.5);
  set(CellType::Sdff,  58.0, 0.100, 5.0);
  // Retention flop: master (low-Vt, fast) + always-on high-Vt balloon latch
  // and retain routing — noticeably larger and more power-hungry (Fig. 1).
  set(CellType::Rdff,  76.0, 0.118, 3.2);
  set(CellType::LatchL, 30.0, 0.055, 2.4);
  set(CellType::Input,  0.0, 0.0, 0.0);
  set(CellType::Output, 0.0, 0.0, 0.0);
  return lib;
}

const CellPhysics& TechLibrary::physics(CellType type) const {
  return physics_[index_of(type)];
}

AreaReport TechLibrary::area(const Netlist& netlist) const {
  AreaReport report;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    const double a = physics(c.type).area_um2;
    report.total_um2 += a;
    if (cell_is_sequential(c.type)) {
      report.sequential_um2 += a;
      if (cell_is_flop(c.type)) {
        ++report.flop_count;
      }
    } else {
      report.combinational_um2 += a;
    }
    if (c.type != CellType::Input && c.type != CellType::Output) {
      ++report.cell_count;
    }
  }
  return report;
}

double TechLibrary::sleep_leakage_nw(const Netlist& netlist, DomainId gated_domain) const {
  double total = 0.0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    if (c.domain != gated_domain) {
      total += physics(c.type).leakage_nw;  // always-on logic leaks fully
    } else if (c.type == CellType::Rdff) {
      total += physics(CellType::Rdff).leakage_nw;  // balloon latch only
    }
  }
  return total;
}

double TechLibrary::leakage_nw(const Netlist& netlist, DomainId domain) const {
  double total = 0.0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& c = netlist.cell(id);
    if (c.domain == domain) {
      total += physics(c.type).leakage_nw;
    }
  }
  return total;
}

}  // namespace retscan
