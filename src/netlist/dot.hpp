#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.hpp"

namespace retscan {

/// Options controlling Graphviz export.
struct DotOptions {
  /// Skip cells beyond this count (huge netlists are unreadable anyway).
  std::size_t max_cells = 4000;
  /// Color sequential cells differently.
  bool highlight_sequential = true;
};

/// Write the netlist as a Graphviz digraph. Intended for debugging and for
/// documentation figures of the generated monitor/corrector blocks.
void write_dot(std::ostream& os, const Netlist& netlist, const DotOptions& options = {});

/// Convenience: render to string.
std::string to_dot(const Netlist& netlist, const DotOptions& options = {});

}  // namespace retscan
