#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace retscan {

/// Structural (gate-level) Verilog frontend — the import path for
/// externally-authored designs (ISCAS-style benchmark circuits, synthesis
/// netlists). The supported subset is exactly what a gate-level netlist
/// needs and nothing more:
///
///   * one `module ... endmodule` per file, non-ANSI header;
///   * scalar `input` / `output` / `wire` declarations;
///   * primitive gate instantiations `and/or/nand/nor/xor/xnor/not/buf`
///     (output first, 2+ inputs for the multi-input gates, Verilog
///     reduction semantics);
///   * techlib cell instantiations (NAND2X1, DFFX1, ... — see
///     netlist/techlib.hpp) with named pin connections; sequential cells
///     accept an optional .CK/.CLK pin, ignored in favour of the library's
///     implicit global clock;
///   * `1'b0` / `1'b1` constant connections.
///
/// Everything else (vectors, `assign`, behavioural blocks, hierarchy, ...)
/// is rejected with a `file:line:` diagnostic — the full subset, mapping
/// table and error catalogue are documented in docs/verilog-frontend.md.
/// A successfully parsed netlist is guaranteed structurally sound: every
/// read net is driven, every output port is driven, and the combinational
/// logic is acyclic — so it flows straight into lint_netlist(),
/// Netlist::compiled() and the SimEngine / CombinationalFrame stack.
///
/// All errors are thrown as retscan::Error with messages of the form
/// `<filename>:<line>: <what went wrong>`.
Netlist read_verilog(std::istream& in, const std::string& filename = "<verilog>");

/// Parse from a file; the path doubles as the diagnostic filename.
Netlist read_verilog_file(const std::string& path);

/// Parse from an in-memory string (tests, generated netlists).
Netlist read_verilog_text(const std::string& text,
                          const std::string& filename = "<string>");

/// Export a netlist as structural Verilog: ports from the netlist's
/// input/output cells, every other cell as a named-pin techlib
/// instantiation (netlist/techlib.hpp rows). Nets and instances without a
/// Verilog-safe name are emitted as n<id> / u<id>. The output reparses via
/// read_verilog into a simulation-equivalent netlist (round-trip asserted
/// by tests/test_verilog.cpp).
void write_verilog(std::ostream& os, const Netlist& netlist);

}  // namespace retscan
