#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace retscan {

/// Categories of structural problems the linter reports.
enum class LintKind {
  UndrivenNet,       ///< net read by a cell but driven by nothing
  DanglingNet,       ///< net driven but read by nothing (dead logic)
  UnreachableCell,   ///< cell whose output cone reaches no output/flop
  FloatingInput,     ///< primary input with no readers
  CombinationalLoop, ///< cycle through combinational cells
};

struct LintIssue {
  LintKind kind;
  NetId net = kNullNet;
  CellId cell = kNullCell;
  std::string message;
};

/// Structural sanity checks a synthesis handoff would run. The scan
/// inserter and monitor generators intentionally leave the original si{c}
/// port nets dangling (Fig. 2 rewires them into the mode muxes); the
/// linter reports them and callers may filter by kind.
std::vector<LintIssue> lint_netlist(const Netlist& netlist);

/// Count issues of one kind.
std::size_t lint_count(const std::vector<LintIssue>& issues, LintKind kind);

}  // namespace retscan
