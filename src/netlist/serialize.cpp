#include "netlist/serialize.hpp"

#include <sstream>
#include <unordered_map>

#include "util/error.hpp"

namespace retscan {

namespace {

const std::unordered_map<std::string, CellType>& type_by_name() {
  static const std::unordered_map<std::string, CellType> map = [] {
    std::unordered_map<std::string, CellType> m;
    for (int t = 0; t <= static_cast<int>(CellType::Output); ++t) {
      const CellType type = static_cast<CellType>(t);
      m.emplace(std::string(cell_type_name(type)), type);
    }
    return m;
  }();
  return map;
}

bool is_token(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (const char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return false;
    }
  }
  return true;
}

}  // namespace

void write_netlist(std::ostream& os, const Netlist& netlist) {
  os << "# retscan netlist v1\n";
  RETSCAN_CHECK(is_token(netlist.name()), "write_netlist: netlist name must be a token");
  os << "name " << netlist.name() << "\n";
  os << "nets " << netlist.net_count() << "\n";
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    const std::string& name = netlist.net_name(net);
    if (!name.empty()) {
      RETSCAN_CHECK(is_token(name), "write_netlist: net name must be a token");
      os << "netname " << net << " " << name << "\n";
    }
  }
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& cell = netlist.cell(id);
    os << "cell " << cell_type_name(cell.type) << " " << cell.domain << " ";
    if (cell.name.empty()) {
      os << "-";
    } else {
      RETSCAN_CHECK(is_token(cell.name), "write_netlist: cell name must be a token");
      os << cell.name;
    }
    os << " ";
    if (cell.out == kNullNet) {
      os << "-";
    } else {
      os << cell.out;
    }
    os << " " << cell.fanin.size();
    for (const NetId net : cell.fanin) {
      os << " " << net;
    }
    os << "\n";
  }
}

Netlist read_netlist(std::istream& is) {
  std::string line;
  std::string name = "top";
  std::size_t net_count = 0;
  bool nets_created = false;
  Netlist netlist("pending");
  std::vector<std::pair<NetId, std::string>> net_names;

  // Two-phase: we cannot create the Netlist with the right name until the
  // header is read, so collect and build.
  std::vector<std::string> cell_lines;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    std::string keyword;
    fields >> keyword;
    if (keyword == "name") {
      fields >> name;
      RETSCAN_CHECK(is_token(name), "read_netlist: bad name");
    } else if (keyword == "nets") {
      fields >> net_count;
      nets_created = true;
    } else if (keyword == "netname") {
      NetId net = 0;
      std::string net_name;
      fields >> net >> net_name;
      net_names.emplace_back(net, net_name);
    } else if (keyword == "cell") {
      RETSCAN_CHECK(nets_created, "read_netlist: cell before nets header");
      cell_lines.push_back(line);
    } else {
      RETSCAN_CHECK(false, "read_netlist: unknown keyword " + keyword);
    }
  }
  RETSCAN_CHECK(nets_created, "read_netlist: missing nets header");

  Netlist result(name);
  for (std::size_t i = 0; i < net_count; ++i) {
    result.add_net();
  }
  for (const auto& [net, net_name] : net_names) {
    RETSCAN_CHECK(net < net_count, "read_netlist: netname id out of range");
    result.set_net_name(net, net_name);
  }
  for (const std::string& cell_line : cell_lines) {
    std::istringstream fields(cell_line);
    std::string keyword, type_name, cell_name, out_token;
    DomainId domain = 0;
    std::size_t fanin_count = 0;
    fields >> keyword >> type_name >> domain >> cell_name >> out_token >> fanin_count;
    const auto type_it = type_by_name().find(type_name);
    RETSCAN_CHECK(type_it != type_by_name().end(),
                  "read_netlist: unknown cell type " + type_name);
    std::vector<NetId> fanin(fanin_count);
    for (std::size_t i = 0; i < fanin_count; ++i) {
      fields >> fanin[i];
      RETSCAN_CHECK(!fields.fail() && fanin[i] < net_count,
                    "read_netlist: bad fanin net id");
    }
    NetId out = kNullNet;
    if (out_token != "-") {
      out = static_cast<NetId>(std::stoul(out_token));
      RETSCAN_CHECK(out < net_count, "read_netlist: output net id out of range");
    }
    const CellId id = result.add_cell_bound(
        type_it->second, std::move(fanin), out,
        cell_name == "-" ? std::string{} : cell_name);
    result.set_domain(id, domain);
  }
  return result;
}

}  // namespace retscan
