#pragma once

#include <istream>
#include <ostream>

#include "netlist/netlist.hpp"

namespace retscan {

/// Plain-text netlist interchange format, the library's persistence layer
/// (what a real flow would hand between the scan inserter, the monitor
/// generator and downstream tools):
///
///   # retscan netlist v1
///   name <identifier>
///   nets <count>
///   netname <id> <token>
///   cell <type> <domain> <name|-> <out-net|-> <fanin-count> <net-ids...>
///
/// Cells appear in id order; net ids are preserved exactly, so a
/// deserialized netlist is bit-identical in structure (verified by the
/// round-trip tests, including simulation equivalence).
void write_netlist(std::ostream& os, const Netlist& netlist);

/// Parse; throws retscan::Error on malformed content.
Netlist read_netlist(std::istream& is);

}  // namespace retscan
