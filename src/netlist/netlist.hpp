#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell_type.hpp"

namespace retscan {

class CompiledNetlist;  // sim/compiled_netlist.hpp

using NetId = std::uint32_t;
using CellId = std::uint32_t;
using DomainId = std::uint16_t;

inline constexpr NetId kNullNet = std::numeric_limits<NetId>::max();
inline constexpr CellId kNullCell = std::numeric_limits<CellId>::max();

/// The always-on power domain; cells default to it.
inline constexpr DomainId kAlwaysOnDomain = 0;

/// One instantiated cell. `fanin` holds the input nets in pin order as
/// documented on CellType; `out` is the output net (kNullNet for Output).
struct Cell {
  CellType type = CellType::Buf;
  std::vector<NetId> fanin;
  NetId out = kNullNet;
  DomainId domain = kAlwaysOnDomain;
  std::string name;  // optional instance name, may be empty
};

/// Gate-level netlist: a DAG of cells connected by single-driver nets.
///
/// Construction is additive; convenience factories (n_and, n_xor, ...) create
/// a gate and return its output net so that datapath logic reads like
/// expressions. The netlist validates single-driver and pin-count rules at
/// insertion time and offers structural queries (fanout lists, combinational
/// topological order) used by the simulator, scan inserter and ATPG.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  /// Import a structural (gate-level) Verilog file — primitive gates,
  /// techlib cell instantiations and DFF cells; see
  /// netlist/verilog_reader.hpp for the accepted subset and the
  /// `file:line:` diagnostic contract. The returned netlist is structurally
  /// sound (every read net driven, no combinational cycles) and flows
  /// straight into lint_netlist(), compiled() and the simulation stack.
  static Netlist from_verilog(const std::string& path);

  const std::string& name() const { return name_; }

  // --- nets -------------------------------------------------------------
  NetId add_net(const std::string& net_name = {});
  std::size_t net_count() const { return net_driver_.size(); }
  CellId driver(NetId net) const;
  const std::string& net_name(NetId net) const;
  void set_net_name(NetId net, const std::string& net_name);
  /// Net with the given name; throws if absent.
  NetId find_net(const std::string& net_name) const;
  bool has_net(const std::string& net_name) const;

  // --- cells ------------------------------------------------------------
  /// Add a cell; output net is created automatically (except Output cells).
  CellId add_cell(CellType type, std::vector<NetId> fanin, const std::string& cell_name = {});

  /// Add a cell bound to an existing, currently undriven output net
  /// (kNullNet for Output cells). Used by the deserializer, where net ids
  /// must be preserved exactly. Port cells are registered like add_input /
  /// add_output.
  CellId add_cell_bound(CellType type, std::vector<NetId> fanin, NetId out,
                        const std::string& cell_name = {});
  std::size_t cell_count() const { return cells_.size(); }
  const Cell& cell(CellId id) const;
  NetId output_of(CellId id) const { return cell(id).out; }

  void set_domain(CellId id, DomainId domain);
  DomainId domain(CellId id) const { return cell(id).domain; }

  /// Rewire one fanin pin of an existing cell. Used by the scan inserter.
  void rewire_fanin(CellId id, std::size_t pin, NetId net);

  /// Redirect every fanin reference to `from` onto `to`, for cells with id
  /// below `limit` (pass cell_count() for all). Used when interposing
  /// generated logic (e.g. the hardware controller taking over control
  /// nets that scan insertion created as input ports).
  std::size_t replace_readers(NetId from, NetId to, CellId limit);

  /// Upgrade a plain Dff into a scan (Sdff) or retention (Rdff) flop,
  /// keeping its D pin and output net intact and appending the extra pins
  /// (SI, SE [, RETAIN]). This mirrors what DFT insertion does to a design.
  void convert_flop(CellId id, CellType new_type, const std::vector<NetId>& extra_fanin);

  // --- ports ------------------------------------------------------------
  /// Create a primary input; returns its net.
  NetId add_input(const std::string& port_name);
  /// Create a primary output sourced by `net`.
  CellId add_output(const std::string& port_name, NetId net);
  const std::vector<CellId>& inputs() const { return inputs_; }
  const std::vector<CellId>& outputs() const { return outputs_; }
  /// Primary-input net by port name; throws if absent.
  NetId input_net(const std::string& port_name) const;
  /// The net feeding the named primary output; throws if absent.
  NetId output_net(const std::string& port_name) const;

  // --- gate factories (return output net) --------------------------------
  NetId n_const(bool value);
  NetId n_buf(NetId a);
  NetId n_not(NetId a);
  NetId n_and(NetId a, NetId b);
  NetId n_or(NetId a, NetId b);
  NetId n_xor(NetId a, NetId b);
  NetId n_nand(NetId a, NetId b);
  NetId n_nor(NetId a, NetId b);
  NetId n_xnor(NetId a, NetId b);
  /// 2:1 mux, out = sel ? hi : lo.
  NetId n_mux(NetId sel, NetId lo, NetId hi);
  /// Wide reductions built from 2-input gate trees.
  NetId n_and_tree(const std::vector<NetId>& nets);
  NetId n_or_tree(const std::vector<NetId>& nets);
  NetId n_xor_tree(const std::vector<NetId>& nets);
  /// D flip-flop; returns Q.
  NetId n_dff(NetId d, const std::string& cell_name = {});

  // --- structure --------------------------------------------------------
  /// All flip-flop cells (Dff/Sdff/Rdff) in insertion order.
  std::vector<CellId> flops() const;
  /// Cells reading each net. Rebuilt lazily after mutation.
  const std::vector<std::vector<CellId>>& fanouts() const;
  /// Combinational cells in topological evaluation order. Throws on a
  /// combinational cycle (sequential cells cut the graph). Computed once and
  /// cached until the next structural mutation — SimEngine, the fault-sim
  /// frame and PODEM all walk it at construction, and per-shard construction
  /// in CampaignRunner multiplies that, so the sort must not re-run per call.
  const std::vector<CellId>& combinational_order() const;
  /// The compiled simulation core lowered from this netlist (see
  /// sim/compiled_netlist.hpp), built lazily, shared by every engine and
  /// fault frame on this netlist, and discarded on structural mutation. The
  /// instance is self-contained, so holders survive netlist moves/copies.
  /// Like fanouts(), the first call must not race with other threads; build
  /// an engine or frame on the owning thread before fanning out.
  std::shared_ptr<const CompiledNetlist> compiled() const;
  /// Count of cells per type.
  std::unordered_map<CellType, std::size_t> type_histogram() const;

 private:
  void invalidate_fanouts() {
    fanouts_valid_ = false;
    comb_order_valid_ = false;
    compiled_.reset();
  }

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<CellId> net_driver_;
  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::unordered_map<std::string, CellId> output_by_name_;
  mutable std::vector<std::vector<CellId>> fanouts_;
  mutable bool fanouts_valid_ = false;
  mutable std::vector<CellId> comb_order_;
  mutable bool comb_order_valid_ = false;
  mutable std::shared_ptr<const CompiledNetlist> compiled_;
};

}  // namespace retscan
