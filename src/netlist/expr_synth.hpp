#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace retscan {

/// Bit-vector expression tree for the synthesizable `assign` subset of the
/// Verilog frontend. Buses are LSB-first everywhere; a scalar is a width-1
/// bus. The reader parses `assign` right-hand sides into this AST with
/// identifiers still unresolved (standard Verilog allows use-before-declare,
/// so name resolution happens at netlist-build time via ExprSynth::Resolver).
struct NetExpr {
  enum class Kind {
    Ref,     ///< identifier, optionally with a bit or part select
    Const,   ///< sized literal (bits LSB-first)
    Not,     ///< ~a, elementwise
    And,     ///< a & b, elementwise (equal widths)
    Or,      ///< a | b, elementwise (equal widths)
    Xor,     ///< a ^ b, elementwise (equal widths)
    Eq,      ///< a == b, 1-bit result (equal widths)
    Ne,      ///< a != b, 1-bit result (equal widths)
    Shl,     ///< a << k, constant shift, zero fill, width preserved
    Shr,     ///< a >> k, constant shift, zero fill, width preserved
    Mux,     ///< cond ? a : b — args {cond, a, b}, cond 1-bit, a/b equal widths
    Concat,  ///< {a, b, ...} — args MSB-first as written
  };

  Kind kind = Kind::Ref;
  int line = 0;

  // Ref: signal name plus optional select. sel_msb < 0 means the whole
  // signal; a bit select has sel_msb == sel_lsb.
  std::string name;
  int sel_msb = -1;
  int sel_lsb = -1;

  std::vector<bool> bits;     ///< Const payload, LSB-first
  std::uint64_t amount = 0;   ///< Shl/Shr shift distance

  std::vector<NetExpr> args;
};

/// Lowers NetExpr trees into gate networks on a Netlist — the NetExpr→gates
/// pattern: every operator becomes a column of 2-input gates (or a
/// reduction tree for the comparisons), so the result feeds the exact same
/// compiled kernel as structural imports.
class ExprSynth {
 public:
  /// Maps an identifier reference to its bit nets, LSB-first. `msb`/`lsb`
  /// mirror NetExpr::sel_msb/sel_lsb (-1 = whole signal). The resolver owns
  /// the undeclared-net / bad-select diagnostics since it has the symbol
  /// table; `line` is the reference's source line.
  using Resolver =
      std::function<std::vector<NetId>(const std::string& name, int msb, int lsb, int line)>;

  ExprSynth(Netlist& netlist, Resolver resolver, std::string filename);

  /// Synthesize `expr`; returns the result bus LSB-first. Throws Error with
  /// a `<file>:<line>:` prefix on width mismatches.
  std::vector<NetId> lower(const NetExpr& expr);

 private:
  [[noreturn]] void fail(int line, const std::string& message) const;
  NetId const_net(bool value);
  /// Lower both operands of a binary node and insist on equal widths.
  std::pair<std::vector<NetId>, std::vector<NetId>> lower_binary(const NetExpr& expr,
                                                                 const char* op);

  Netlist& nl_;
  Resolver resolver_;
  std::string filename_;
  NetId const_nets_[2] = {kNullNet, kNullNet};
};

}  // namespace retscan
