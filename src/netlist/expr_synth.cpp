#include "netlist/expr_synth.hpp"

#include <utility>

#include "util/error.hpp"

namespace retscan {

ExprSynth::ExprSynth(Netlist& netlist, Resolver resolver, std::string filename)
    : nl_(netlist), resolver_(std::move(resolver)), filename_(std::move(filename)) {}

void ExprSynth::fail(int line, const std::string& message) const {
  throw Error(filename_ + ":" + std::to_string(line) + ": " + message);
}

NetId ExprSynth::const_net(bool value) {
  NetId& cache = const_nets_[value ? 1 : 0];
  if (cache == kNullNet) {
    cache = nl_.n_const(value);
  }
  return cache;
}

std::pair<std::vector<NetId>, std::vector<NetId>> ExprSynth::lower_binary(
    const NetExpr& expr, const char* op) {
  std::vector<NetId> a = lower(expr.args[0]);
  std::vector<NetId> b = lower(expr.args[1]);
  if (a.size() != b.size()) {
    fail(expr.line, std::string("width mismatch: '") + op + "' operands are " +
                        std::to_string(a.size()) + " and " + std::to_string(b.size()) +
                        " bits wide");
  }
  return {std::move(a), std::move(b)};
}

std::vector<NetId> ExprSynth::lower(const NetExpr& expr) {
  switch (expr.kind) {
    case NetExpr::Kind::Ref:
      return resolver_(expr.name, expr.sel_msb, expr.sel_lsb, expr.line);

    case NetExpr::Kind::Const: {
      std::vector<NetId> out;
      out.reserve(expr.bits.size());
      for (const bool bit : expr.bits) {
        out.push_back(const_net(bit));
      }
      return out;
    }

    case NetExpr::Kind::Not: {
      std::vector<NetId> a = lower(expr.args[0]);
      for (NetId& net : a) {
        net = nl_.n_not(net);
      }
      return a;
    }

    case NetExpr::Kind::And:
    case NetExpr::Kind::Or:
    case NetExpr::Kind::Xor: {
      const char* op = expr.kind == NetExpr::Kind::And  ? "&"
                       : expr.kind == NetExpr::Kind::Or ? "|"
                                                        : "^";
      auto [a, b] = lower_binary(expr, op);
      for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = expr.kind == NetExpr::Kind::And  ? nl_.n_and(a[i], b[i])
               : expr.kind == NetExpr::Kind::Or ? nl_.n_or(a[i], b[i])
                                                : nl_.n_xor(a[i], b[i]);
      }
      return a;
    }

    case NetExpr::Kind::Eq:
    case NetExpr::Kind::Ne: {
      // a == b lowers to an AND tree over per-bit XNORs; != to an OR tree
      // over per-bit XORs. Both reduce to one bit.
      auto [a, b] = lower_binary(expr, expr.kind == NetExpr::Kind::Eq ? "==" : "!=");
      std::vector<NetId> cmp(a.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        cmp[i] = expr.kind == NetExpr::Kind::Eq ? nl_.n_xnor(a[i], b[i])
                                                : nl_.n_xor(a[i], b[i]);
      }
      return {expr.kind == NetExpr::Kind::Eq ? nl_.n_and_tree(cmp) : nl_.n_or_tree(cmp)};
    }

    case NetExpr::Kind::Shl:
    case NetExpr::Kind::Shr: {
      // Constant wire shift with zero fill; width preserved (Verilog
      // self-determined width of the left operand).
      const std::vector<NetId> a = lower(expr.args[0]);
      const std::size_t width = a.size();
      const std::uint64_t k = expr.amount;
      std::vector<NetId> out(width, kNullNet);
      for (std::size_t i = 0; i < width; ++i) {
        if (expr.kind == NetExpr::Kind::Shl) {
          out[i] = i >= k ? a[i - k] : const_net(false);
        } else {
          out[i] = i + k < width ? a[i + k] : const_net(false);
        }
      }
      return out;
    }

    case NetExpr::Kind::Mux: {
      const std::vector<NetId> cond = lower(expr.args[0]);
      if (cond.size() != 1) {
        fail(expr.line, "width mismatch: '?:' condition must be 1 bit wide, got " +
                            std::to_string(cond.size()));
      }
      std::vector<NetId> then_bus = lower(expr.args[1]);
      const std::vector<NetId> else_bus = lower(expr.args[2]);
      if (then_bus.size() != else_bus.size()) {
        fail(expr.line, "width mismatch: '?:' arms are " +
                            std::to_string(then_bus.size()) + " and " +
                            std::to_string(else_bus.size()) + " bits wide");
      }
      for (std::size_t i = 0; i < then_bus.size(); ++i) {
        then_bus[i] = nl_.n_mux(cond[0], else_bus[i], then_bus[i]);
      }
      return then_bus;
    }

    case NetExpr::Kind::Concat: {
      // Source order is MSB-first; the LSB-first result takes the last
      // operand's bits lowest.
      std::vector<NetId> out;
      for (auto it = expr.args.rbegin(); it != expr.args.rend(); ++it) {
        const std::vector<NetId> part = lower(*it);
        out.insert(out.end(), part.begin(), part.end());
      }
      if (out.empty()) {
        fail(expr.line, "empty concatenation");
      }
      return out;
    }
  }
  fail(expr.line, "internal error: unhandled expression kind");
}

}  // namespace retscan
