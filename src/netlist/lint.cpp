#include "netlist/lint.hpp"

#include <deque>

#include "util/error.hpp"

namespace retscan {

std::vector<LintIssue> lint_netlist(const Netlist& netlist) {
  std::vector<LintIssue> issues;
  const auto& fanouts = netlist.fanouts();

  auto net_label = [&](NetId net) {
    const std::string& name = netlist.net_name(net);
    return name.empty() ? "net " + std::to_string(net) : name;
  };

  // Undriven / dangling nets, floating inputs.
  for (NetId net = 0; net < netlist.net_count(); ++net) {
    const CellId driver = netlist.driver(net);
    const bool read = !fanouts[net].empty();
    if (driver == kNullCell && read) {
      issues.push_back({LintKind::UndrivenNet, net, kNullCell,
                        "undriven net " + net_label(net)});
    }
    if (driver != kNullCell && !read) {
      const CellType type = netlist.cell(driver).type;
      if (type == CellType::Input) {
        issues.push_back({LintKind::FloatingInput, net, driver,
                          "floating input " + net_label(net)});
      } else {
        issues.push_back({LintKind::DanglingNet, net, driver,
                          "dangling net " + net_label(net)});
      }
    }
  }

  // Unreachable cells: reverse reachability from outputs and sequential
  // elements (state is observable through scan).
  std::vector<char> reachable(netlist.cell_count(), 0);
  std::deque<CellId> frontier;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const CellType type = netlist.cell(id).type;
    if (type == CellType::Output || cell_is_sequential(type)) {
      reachable[id] = 1;
      frontier.push_back(id);
    }
  }
  while (!frontier.empty()) {
    const CellId id = frontier.front();
    frontier.pop_front();
    for (const NetId net : netlist.cell(id).fanin) {
      const CellId driver = netlist.driver(net);
      if (driver != kNullCell && !reachable[driver]) {
        reachable[driver] = 1;
        frontier.push_back(driver);
      }
    }
  }
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const CellType type = netlist.cell(id).type;
    if (!reachable[id] && type != CellType::Input && type != CellType::Const0 &&
        type != CellType::Const1) {
      issues.push_back({LintKind::UnreachableCell, netlist.cell(id).out, id,
                        "unreachable cell " + std::string(cell_type_name(type))});
    }
  }

  // Combinational loops.
  try {
    (void)netlist.combinational_order();
  } catch (const Error&) {
    issues.push_back({LintKind::CombinationalLoop, kNullNet, kNullCell,
                      "combinational cycle detected"});
  }
  return issues;
}

std::size_t lint_count(const std::vector<LintIssue>& issues, LintKind kind) {
  std::size_t count = 0;
  for (const LintIssue& issue : issues) {
    if (issue.kind == kind) {
      ++count;
    }
  }
  return count;
}

}  // namespace retscan
