#pragma once

#include <string>
#include <string_view>

#include "netlist/cell_type.hpp"
#include "netlist/netlist.hpp"

namespace retscan {

/// Per-cell physical characterization.
struct CellPhysics {
  double area_um2 = 0.0;        ///< placed cell area
  double switch_energy_pj = 0.0;///< dynamic energy per output toggle at Vdd
  double leakage_nw = 0.0;      ///< static leakage power when powered
};

/// Aggregate physical report for a netlist (or a subset of it).
struct AreaReport {
  double total_um2 = 0.0;
  double sequential_um2 = 0.0;
  double combinational_um2 = 0.0;
  std::size_t cell_count = 0;
  std::size_t flop_count = 0;
};

/// One standard cell the structural-Verilog frontend can instantiate (and
/// write_verilog emits): the canonical library name, the gate semantics it
/// lowers to, and its pin names. `input_pins` lists pins in Cell::fanin
/// order; sequential cells additionally accept an optional CK/CLK pin
/// (ignored — every flop shares the library's implicit global clock).
struct TechCellSpec {
  CellType type;
  const char* name;          ///< canonical Verilog cell name, e.g. "NAND2X1"
  const char* output_pin;    ///< "Y" for gates, "Q" for sequential cells
  const char* input_pins[4]; ///< fanin-order pin names; unused slots null
};

/// Look up a techlib cell by the module name used in a Verilog
/// instantiation. Matching is case-insensitive and ignores a trailing
/// `X<digits>` drive-strength suffix, so "NAND2X1", "nand2x4" and "nand2"
/// all resolve to the Nand2 row. Returns nullptr for unknown names (the
/// frontend then reports an unknown-module diagnostic).
const TechCellSpec* techlib_cell(std::string_view name);

/// The canonical techlib row for a cell type — what write_verilog emits.
/// Throws for the port pseudo-cells (Input/Output), which render as module
/// ports, not instances.
const TechCellSpec& techlib_cell_for(CellType type);

/// A standard-cell technology characterization used in place of the paper's
/// STMicroelectronics 120 nm library. Values are representative of a
/// 120 nm-class process at Vdd = 1.2 V: gate areas of ~10-20 um^2, flip-flop
/// areas of ~50-80 um^2, switching energies of tens of femtojoules. Absolute
/// numbers differ from the proprietary library; the cost-model *ratios*
/// (retention flop > scan flop > flop > latch > gates; XOR > NAND) match
/// standard-cell reality, which is what the paper's trade-off shapes rely on.
class TechLibrary {
 public:
  /// The default 120 nm-class characterization described above.
  static TechLibrary st120();

  const std::string& name() const { return name_; }
  double vdd_volts() const { return vdd_volts_; }

  const CellPhysics& physics(CellType type) const;

  /// Sum of cell areas. Port pseudo-cells contribute zero.
  AreaReport area(const Netlist& netlist) const;

  /// Total leakage (nW) of all cells in the given power domain.
  double leakage_nw(const Netlist& netlist, DomainId domain) const;

  /// Leakage (nW) while `gated_domain` is asleep: every always-on cell
  /// leaks normally, and each retention flop in the gated domain still
  /// leaks through its always-on balloon latch (the Rdff characterization
  /// is exactly that high-Vt balloon portion — the master is off). This is
  /// the quantity power gating exists to minimize, and what the always-on
  /// monitor storage inflates (see bench_ablation_leakage).
  double sleep_leakage_nw(const Netlist& netlist, DomainId gated_domain) const;

 private:
  TechLibrary() = default;

  std::string name_;
  double vdd_volts_ = 1.2;
  CellPhysics physics_[static_cast<std::size_t>(CellType::Output) + 1];
};

}  // namespace retscan
