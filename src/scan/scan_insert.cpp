#include "scan/scan_insert.hpp"

#include <string>

#include "util/error.hpp"

namespace retscan {

std::size_t ScanChains::length() const {
  RETSCAN_CHECK(!chains.empty(), "ScanChains::length: no chains");
  const std::size_t l = chains.front().size();
  for (const auto& chain : chains) {
    RETSCAN_CHECK(chain.size() == l, "ScanChains::length: chains have unequal length");
  }
  return l;
}

std::size_t ScanChains::flop_count() const {
  std::size_t total = 0;
  for (const auto& chain : chains) {
    total += chain.size();
  }
  return total;
}

std::pair<std::size_t, std::size_t> ScanChains::locate(CellId flop) const {
  const auto it = position_of.find(flop);
  RETSCAN_CHECK(it != position_of.end(), "ScanChains::locate: flop not in any chain");
  return it->second;
}

CellId ScanChains::at(std::size_t chain, std::size_t position) const {
  RETSCAN_CHECK(chain < chains.size(), "ScanChains::at: bad chain");
  RETSCAN_CHECK(position < chains[chain].size(), "ScanChains::at: bad position");
  return chains[chain][position];
}

ScanChains insert_scan(Netlist& netlist, const ScanInsertionOptions& options) {
  RETSCAN_CHECK(options.chain_count >= 1, "insert_scan: need at least one chain");

  // Move the pre-existing design into the gated domain before adding
  // always-on ports.
  const std::size_t pre_existing = netlist.cell_count();
  for (CellId id = 0; id < pre_existing; ++id) {
    netlist.set_domain(id, options.gated_domain);
  }

  const std::vector<CellId> flops = netlist.flops();
  RETSCAN_CHECK(!flops.empty(), "insert_scan: design has no flip-flops");
  for (const CellId flop : flops) {
    RETSCAN_CHECK(netlist.cell(flop).type == CellType::Dff,
                  "insert_scan: design already contains scan flops");
  }
  const std::size_t w = options.chain_count;
  RETSCAN_CHECK(w <= flops.size(), "insert_scan: more chains than flops");
  if (options.require_equal_length) {
    RETSCAN_CHECK(flops.size() % w == 0,
                  "insert_scan: flop count not divisible by chain count");
  }

  ScanChains result;
  result.gated_domain = options.gated_domain;
  result.se = netlist.add_input("se");
  if (options.style == ScanStyle::Retention) {
    result.retain = netlist.add_input("retain");
  }

  // Partition flops into chains.
  result.chains.assign(w, {});
  const std::size_t base = flops.size() / w;
  const std::size_t extra = flops.size() % w;
  if (options.assignment == ChainAssignment::Blocked) {
    std::size_t next = 0;
    for (std::size_t c = 0; c < w; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      for (std::size_t p = 0; p < len; ++p) {
        result.chains[c].push_back(flops[next++]);
      }
    }
  } else {
    for (std::size_t i = 0; i < flops.size(); ++i) {
      result.chains[i % w].push_back(flops[i]);
    }
  }

  // Convert flops and stitch. Conversion preserves each flop's output net,
  // so downstream functional logic is untouched.
  const CellType new_type =
      options.style == ScanStyle::Retention ? CellType::Rdff : CellType::Sdff;
  for (std::size_t c = 0; c < w; ++c) {
    const NetId si = netlist.add_input("si" + std::to_string(c));
    result.si.push_back(si);
    NetId prev_q = si;
    for (std::size_t p = 0; p < result.chains[c].size(); ++p) {
      const CellId flop = result.chains[c][p];
      std::vector<NetId> extra_pins = {prev_q, result.se};
      if (options.style == ScanStyle::Retention) {
        extra_pins.push_back(result.retain);
      }
      netlist.convert_flop(flop, new_type, extra_pins);
      netlist.set_domain(flop, options.gated_domain);
      result.position_of[flop] = {c, p};
      prev_q = netlist.output_of(flop);
    }
    result.so.push_back(prev_q);
    netlist.add_output("so" + std::to_string(c), prev_q);
  }
  return result;
}

std::size_t TestModeConfig::concatenated_length(std::size_t chain_length) const {
  RETSCAN_CHECK(!groups.empty(), "TestModeConfig: empty");
  return groups.front().size() * chain_length;
}

TestModeConfig make_test_concatenation(std::size_t chain_count, std::size_t test_width) {
  RETSCAN_CHECK(test_width >= 1 && test_width <= chain_count,
                "make_test_concatenation: test width out of range");
  RETSCAN_CHECK(chain_count % test_width == 0,
                "make_test_concatenation: chain count not divisible by test width");
  TestModeConfig config;
  config.test_width = test_width;
  config.groups.assign(test_width, {});
  for (std::size_t g = 0; g < test_width; ++g) {
    for (std::size_t c = g; c < chain_count; c += test_width) {
      config.groups[g].push_back(c);
    }
  }
  return config;
}

}  // namespace retscan
