#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace retscan {

/// Which flip-flop variant replaces plain Dffs during insertion.
enum class ScanStyle {
  Scan,       ///< Sdff: scan-only, no retention (plain DFT)
  Retention,  ///< Rdff: scan + always-on balloon latch (power-gated design)
};

/// How flip-flops are distributed across chains. The paper's Section III
/// re-orders flops between chains to trade chain length against monitor
/// parallelism; the assignment policy also determines how physically
/// clustered burst errors map onto codewords (ablation A-3).
enum class ChainAssignment {
  Blocked,      ///< consecutive flops fill chain 0, then chain 1, ...
  Interleaved,  ///< flop i goes to chain i mod W (round-robin)
};

/// Options for insert_scan.
struct ScanInsertionOptions {
  std::size_t chain_count = 1;
  ScanStyle style = ScanStyle::Retention;
  ChainAssignment assignment = ChainAssignment::Blocked;
  /// Every pre-existing cell of the design is moved into this power domain
  /// (the PGC); newly created scan ports stay always-on.
  DomainId gated_domain = 1;
  /// Require all chains to have identical length (the monitor generator
  /// needs this; 1040 flops over 80 chains gives l = 13 exactly).
  bool require_equal_length = true;
};

/// Result of scan insertion: chain membership and the control/port nets.
struct ScanChains {
  /// chains[c] lists flop cells in scan order: element 0 receives si{c},
  /// the last element drives so{c}.
  std::vector<std::vector<CellId>> chains;
  std::vector<NetId> si;  ///< scan-in port nets, one per chain
  std::vector<NetId> so;  ///< scan-out nets (also primary outputs)
  NetId se = kNullNet;      ///< scan-enable input net
  NetId retain = kNullNet;  ///< retention control net (Retention style only)
  DomainId gated_domain = 1;

  std::size_t chain_count() const { return chains.size(); }
  /// Uniform chain length; throws if chains are unequal.
  std::size_t length() const;
  std::size_t flop_count() const;

  /// Chain index and position of a flop; throws if the flop is unknown.
  std::pair<std::size_t, std::size_t> locate(CellId flop) const;
  /// Flop at (chain, position).
  CellId at(std::size_t chain, std::size_t position) const;

  std::unordered_map<CellId, std::pair<std::size_t, std::size_t>> position_of;
};

/// Replace every plain Dff in `netlist` with a scan (Sdff) or retention
/// (Rdff) flop, stitch the requested number of chains, and create ports
/// `se`, `si{c}`, `so{c}` (+ `retain` for Retention style). Output nets of
/// the original flops are preserved, so the functional behaviour of the
/// design is untouched when se=0 — the property EDA scan insertion
/// guarantees, and which the tests verify.
ScanChains insert_scan(Netlist& netlist, const ScanInsertionOptions& options);

/// Manufacturing-test chain concatenation (Fig. 5(b)). With W monitoring
/// chains and a test I/O width of T (W divisible by T), test group g chains
/// are {g, g+T, g+2T, ...}: external test input g feeds chain g, so of chain
/// c feeds si of chain c+T, and the last chain of the group drives external
/// test output g.
struct TestModeConfig {
  std::size_t test_width = 0;
  /// groups[g] = chain indices in concatenation order.
  std::vector<std::vector<std::size_t>> groups;

  /// Effective concatenated chain length given uniform monitoring length l.
  std::size_t concatenated_length(std::size_t chain_length) const;
};

TestModeConfig make_test_concatenation(std::size_t chain_count, std::size_t test_width);

}  // namespace retscan
