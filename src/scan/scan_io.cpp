#include "scan/scan_io.hpp"

#include "util/error.hpp"

namespace retscan {

BitVec scan_outs(const Simulator& sim, const ScanChains& chains) {
  BitVec bits(chains.chain_count());
  for (std::size_t c = 0; c < chains.chain_count(); ++c) {
    bits.set(c, sim.net_value(chains.so[c]));
  }
  return bits;
}

BitVec scan_shift_cycle(Simulator& sim, const ScanChains& chains, const BitVec& si_bits) {
  RETSCAN_CHECK(si_bits.size() == chains.chain_count(),
                "scan_shift_cycle: si width mismatch");
  sim.set_input(chains.se, true);
  for (std::size_t c = 0; c < chains.chain_count(); ++c) {
    sim.set_input(chains.si[c], si_bits.get(c));
  }
  sim.eval();
  const BitVec outs = scan_outs(sim, chains);
  sim.step();
  return outs;
}

void scan_load(Simulator& sim, const ScanChains& chains, const std::vector<BitVec>& data) {
  RETSCAN_CHECK(data.size() == chains.chain_count(), "scan_load: chain count mismatch");
  const std::size_t l = chains.length();
  for (const auto& d : data) {
    RETSCAN_CHECK(d.size() == l, "scan_load: chain data length mismatch");
  }
  // The bit destined for position l-1 must enter first.
  for (std::size_t t = 0; t < l; ++t) {
    BitVec si_bits(chains.chain_count());
    for (std::size_t c = 0; c < chains.chain_count(); ++c) {
      si_bits.set(c, data[c].get(l - 1 - t));
    }
    scan_shift_cycle(sim, chains, si_bits);
  }
}

std::vector<BitVec> scan_unload(Simulator& sim, const ScanChains& chains,
                                const std::vector<BitVec>& refill) {
  const std::size_t w = chains.chain_count();
  const std::size_t l = chains.length();
  if (!refill.empty()) {
    RETSCAN_CHECK(refill.size() == w, "scan_unload: refill chain count mismatch");
  }
  std::vector<BitVec> out(w, BitVec(l));
  // Position l-1 appears on so first; successive shifts expose lower
  // positions.
  for (std::size_t t = 0; t < l; ++t) {
    BitVec si_bits(w);
    if (!refill.empty()) {
      for (std::size_t c = 0; c < w; ++c) {
        si_bits.set(c, refill[c].get(l - 1 - t));
      }
    }
    const BitVec so_bits = scan_shift_cycle(sim, chains, si_bits);
    for (std::size_t c = 0; c < w; ++c) {
      out[c].set(l - 1 - t, so_bits.get(c));
    }
  }
  return out;
}

std::vector<BitVec> scan_snapshot(const Simulator& sim, const ScanChains& chains) {
  std::vector<BitVec> out;
  out.reserve(chains.chain_count());
  for (const auto& chain : chains.chains) {
    BitVec bits(chain.size());
    for (std::size_t p = 0; p < chain.size(); ++p) {
      bits.set(p, sim.flop_state(chain[p]));
    }
    out.push_back(std::move(bits));
  }
  return out;
}

void scan_restore(Simulator& sim, const ScanChains& chains, const std::vector<BitVec>& data) {
  RETSCAN_CHECK(data.size() == chains.chain_count(), "scan_restore: chain count mismatch");
  std::vector<std::pair<CellId, bool>> updates;
  for (std::size_t c = 0; c < chains.chain_count(); ++c) {
    RETSCAN_CHECK(data[c].size() == chains.chains[c].size(),
                  "scan_restore: chain data length mismatch");
    for (std::size_t p = 0; p < data[c].size(); ++p) {
      updates.emplace_back(chains.chains[c][p], data[c].get(p));
    }
  }
  sim.set_flop_states(updates);  // one commit + settle for the whole restore
}

BitVec flatten_chain_data(const std::vector<BitVec>& data) {
  BitVec flat(0);
  for (const auto& chain : data) {
    for (std::size_t p = 0; p < chain.size(); ++p) {
      flat.push_back(chain.get(p));
    }
  }
  return flat;
}

std::vector<BitVec> unflatten_chain_data(const BitVec& flat, std::size_t chain_count) {
  RETSCAN_CHECK(chain_count > 0 && flat.size() % chain_count == 0,
                "unflatten_chain_data: size not divisible by chain count");
  const std::size_t l = flat.size() / chain_count;
  std::vector<BitVec> out;
  out.reserve(chain_count);
  for (std::size_t c = 0; c < chain_count; ++c) {
    out.push_back(flat.slice(c * l, l));
  }
  return out;
}

}  // namespace retscan
