#pragma once

#include <vector>

#include "scan/scan_insert.hpp"
#include "sim/simulator.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Simulation-level helpers for driving scan chains. These model exactly
/// what a tester (or the paper's state monitoring block) sees: with se=1,
/// each clock shifts every chain one position toward its scan-out.
///
/// Conventions: chain position 0 is adjacent to si; position l-1 drives so.
/// During a shift cycle, so presents the value held at position l-1 *before*
/// the clock edge.

/// Current scan-out values of all chains (one bit per chain).
BitVec scan_outs(const Simulator& sim, const ScanChains& chains);

/// Apply one shift cycle: assert se, drive si{c} = si_bits[c], clock once.
/// Returns the so values observed before the edge.
BitVec scan_shift_cycle(Simulator& sim, const ScanChains& chains, const BitVec& si_bits);

/// Serially load every chain with `data[c]` (data[c][p] = target value of
/// the flop at position p). Leaves se asserted.
void scan_load(Simulator& sim, const ScanChains& chains,
               const std::vector<BitVec>& data);

/// Serially unload every chain, shifting in `refill[c]` behind the data
/// (zeros if refill is empty). Returns per-chain contents, indexed like
/// scan_load. Leaves se asserted.
std::vector<BitVec> scan_unload(Simulator& sim, const ScanChains& chains,
                                const std::vector<BitVec>& refill = {});

/// Snapshot of chain contents read directly from flop states (no clocks).
std::vector<BitVec> scan_snapshot(const Simulator& sim, const ScanChains& chains);

/// Write chain contents directly into flop states (no clocks). Used by
/// tests and by the corruption model.
void scan_restore(Simulator& sim, const ScanChains& chains,
                  const std::vector<BitVec>& data);

/// Flatten per-chain data into one BitVec ordered chain-major
/// (chain 0 pos 0, chain 0 pos 1, ..., chain 1 pos 0, ...).
BitVec flatten_chain_data(const std::vector<BitVec>& data);
/// Inverse of flatten_chain_data given uniform chain length.
std::vector<BitVec> unflatten_chain_data(const BitVec& flat, std::size_t chain_count);

}  // namespace retscan
