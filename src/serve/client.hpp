#pragma once

/// Client side of the serve protocol — what `retscan submit`, `jobs`,
/// `cancel` and `shutdown` are built from, and what tests drive the
/// daemon with. One connection, blocking, line-delimited JSON.

#include <string>

#include "serve/json.hpp"

namespace retscan::serve {

class Client {
 public:
  /// Connect to a daemon's socket; throws retscan::Error (with the
  /// connect errno) when no daemon is listening.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request line and read one response line. Responses with
  /// {"ok": false} are surfaced as thrown retscan::Error carrying the
  /// daemon's message; event lines are NOT consumed here (use read_line
  /// for streams).
  Json request(const Json& request);

  /// Send a request without waiting for the response (streamed flows).
  void send(const Json& request);

  /// Read the next line — an event or the final response. Throws on a
  /// closed connection.
  Json read_line();

  const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace retscan::serve
