#include "serve/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "util/error.hpp"

namespace retscan::serve {

Client::Client(const std::string& socket_path) : socket_path_(socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw Error("socket path too long: '" + socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int connect_errno = errno;
    ::close(fd_);
    fd_ = -1;
    throw Error("no retscan daemon at '" + socket_path +
                "' (connect: " + std::strerror(connect_errno) +
                "); start one with `retscan serve`");
  }
}

Client::~Client() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Client::send(const Json& request) {
  const std::string line = request.dump() + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      throw Error("daemon connection lost while sending");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Json Client::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (line.empty()) {
        continue;
      }
      return Json::parse(line);
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    throw Error("daemon connection closed");
  }
}

Json Client::request(const Json& request) {
  send(request);
  const Json response = read_line();
  if (response.has("ok") && !response.at("ok").as_bool()) {
    throw Error("daemon: " + response.at("error").as_string());
  }
  return response;
}

}  // namespace retscan::serve
