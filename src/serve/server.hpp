#pragma once

/// `retscan serve` daemon: a local AF_UNIX stream-socket front end over
/// the JobManager. Framing is one JSON object per LF-terminated line
/// (serve/protocol.hpp); each accepted connection gets its own thread, so
/// a client blocked in `result` (wait-for-terminal) never stalls another
/// client's `submit`.
///
/// Commands:
///   {"cmd":"ping"}                         → daemon liveness + provenance
///   {"cmd":"submit","spec":P,"overrides":{...}[,"wait":true]}
///                                          → {"ok":true,"id":N}; with
///                                            wait, progress event lines
///                                            then the terminal job record
///   {"cmd":"status","id":N}                → job record snapshot
///   {"cmd":"result","id":N}                → blocks until terminal
///   {"cmd":"cancel","id":N}                → cooperative cancel
///   {"cmd":"list"}                         → every job record
///   {"cmd":"stats"}                        → session/artifact cache stats
///   {"cmd":"shutdown"}                     → graceful drain, then exit
///
/// Shutdown (the `shutdown` command or SIGTERM via notify_signal()) is a
/// drain: stop accepting, finish every queued and running job, answer the
/// clients still connected, then return from run(). A client killed
/// mid-flight (even SIGKILL) only drops its connection — the job it
/// submitted keeps running and its result stays queryable, which is what
/// the serve CI job asserts.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "serve/job_manager.hpp"

namespace retscan::serve {

class Server {
 public:
  /// Bind + listen on `socket_path`. A stale socket file (left by a
  /// killed daemon) is detected by a probe connect and replaced; a live
  /// daemon on the path is an error.
  Server(const std::string& socket_path, const ServeOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept/serve until shutdown; drains jobs before returning.
  void run();

  /// Ask run() to begin the graceful drain (thread-safe).
  void request_shutdown() { shutdown_.store(true); }

  /// Async-signal-safe shutdown request for SIGTERM handlers: a relaxed
  /// store on a process-global flag every Server polls.
  static void notify_signal() noexcept;

  const std::string& socket_path() const { return socket_path_; }
  JobManager& jobs() { return manager_; }

 private:
  void serve_connection(int fd);
  Json handle(const Json& request, int fd, bool& close_connection);
  bool shutdown_requested() const;

  std::string socket_path_;
  int listen_fd_ = -1;
  JobManager manager_;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> stopping_{false};  ///< connection threads should exit
  std::vector<std::thread> connections_;
};

}  // namespace retscan::serve
