#pragma once

/// Campaign job multiplexer behind the `retscan serve` daemon.
///
/// Jobs (spec file + overrides) queue in submission order; a small set of
/// driver threads executes them, every campaign running on ONE shared
/// CampaignRunner through a FairScheduler, so N concurrent jobs
/// round-robin the pool shard-by-shard instead of fighting over cores
/// with N private pools. Sessions come from the SessionCache, compiled
/// netlists from the process-global CompiledArtifactStore — neither cache
/// can change a campaign's statistics (same seed → same results, cold or
/// warm; asserted by tests/test_serve.cpp and the serve CI job).
///
/// Each job owns a CancelToken: cancel() stops a queued job immediately
/// and interrupts a running sharded campaign at the next shard boundary,
/// inheriting the CampaignSpec checkpoint/deadline semantics — a
/// cancelled job with a checkpoint journal resumes bit-exactly. drain()
/// is the SIGTERM path: stop accepting, finish everything queued, join.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "parallel/fair_scheduler.hpp"
#include "retscan/campaign.hpp"
#include "serve/protocol.hpp"
#include "serve/session_cache.hpp"
#include "sim/artifact_store.hpp"

namespace retscan::serve {

struct ServeOptions {
  /// On-disk compiled-netlist artifact directory; empty disables the
  /// store (sessions still cache in memory).
  std::string cache_dir;
  /// Idle sessions kept warm (LRU).
  std::size_t session_capacity = 8;
  /// Shared pool size; 0 → RETSCAN_THREADS / hardware_concurrency().
  unsigned threads = 0;
  /// Campaigns executing concurrently (each gets a driver thread; their
  /// shards interleave fairly on the one shared pool).
  std::size_t max_active = 2;
};

/// Wire-safe snapshot of one job, returned by status/list/wait and
/// serialized into every response that mentions a job.
struct JobRecord {
  std::uint64_t id = 0;
  std::string spec_path;
  JobState state = JobState::Queued;
  std::uint64_t shards_done = 0;
  std::uint64_t shard_count = 0;
  bool session_reused = false;  ///< session came from the in-memory cache
  double setup_seconds = 0.0;   ///< spec parse + session build/warm-up
  double run_seconds = 0.0;     ///< campaign body wall-clock
  std::string error;            ///< Failed only
  std::optional<ResultSummary> summary;  ///< terminal non-Failed states
};

Json to_json(const JobRecord& record);
JobRecord job_from_json(const Json& json);

class JobManager {
 public:
  explicit JobManager(const ServeOptions& options);
  ~JobManager();  ///< drains (finishes queued + running jobs) and joins

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  /// Queue a job. Throws retscan::Error once drain() has begun. The spec
  /// file is parsed on the driver thread — a bad spec fails the job, not
  /// the submission.
  std::uint64_t submit(const std::string& spec_path,
                       const SubmitOverrides& overrides);

  /// Cancel a job: queued → Cancelled immediately; running → its token is
  /// cancelled and the sharded campaign stops at the next shard boundary.
  /// Returns false for unknown or already-terminal jobs.
  bool cancel(std::uint64_t id);

  std::optional<JobRecord> status(std::uint64_t id) const;
  std::vector<JobRecord> list() const;

  /// Block until the job reaches a terminal state; nullopt if unknown.
  std::optional<JobRecord> wait(std::uint64_t id);

  /// Stop accepting submissions, run everything already queued to
  /// completion, and join the driver threads. Idempotent; the destructor
  /// calls it. Cancel jobs first for a fast exit.
  void drain();

  const ServeOptions& options() const { return options_; }
  unsigned threads() { return runner_.threads(); }
  SessionCache::Stats session_stats() const { return sessions_.stats(); }
  /// Stats of the daemon's artifact store; zeros when cache_dir is empty.
  CompiledArtifactStore::Stats artifact_stats() const;

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string spec_path;
    SubmitOverrides overrides;
    JobState state = JobState::Queued;
    CancelToken token;
    std::uint64_t shards_done = 0;
    std::uint64_t shard_count = 0;
    bool session_reused = false;
    double setup_seconds = 0.0;
    double run_seconds = 0.0;
    std::string error;
    std::optional<ResultSummary> summary;
  };

  void driver_loop();
  void execute(Job& job);
  JobRecord snapshot_locked(const Job& job) const;

  ServeOptions options_;
  std::shared_ptr<CompiledArtifactStore> artifacts_;  ///< also installed globally
  parallel::CampaignRunner runner_;
  parallel::FairScheduler scheduler_;
  mutable SessionCache sessions_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< wakes drivers
  std::condition_variable done_cv_;  ///< wakes wait()/drain()
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::deque<std::uint64_t> queue_;
  std::uint64_t next_id_ = 1;
  std::size_t active_ = 0;
  bool draining_ = false;  ///< submit() rejects
  bool stopping_ = false;  ///< drivers exit once the queue is empty
  std::vector<std::thread> drivers_;
};

}  // namespace retscan::serve
