#include "serve/protocol.hpp"

#include <cstdlib>
#include <ostream>

#include "util/fnv.hpp"

namespace retscan::serve {

std::string default_socket_path() {
  const char* env = std::getenv("RETSCAN_SOCKET");
  if (env != nullptr && *env != '\0') {
    return env;
  }
  return "retscan.sock";
}

const char* to_string(JobState state) {
  switch (state) {
    case JobState::Queued:    return "queued";
    case JobState::Running:   return "running";
    case JobState::Done:      return "done";
    case JobState::Failed:    return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::Timeout:   return "timeout";
  }
  return "?";
}

bool from_string(std::string_view text, JobState& out) {
  if (text == "queued")    { out = JobState::Queued;    return true; }
  if (text == "running")   { out = JobState::Running;   return true; }
  if (text == "done")      { out = JobState::Done;      return true; }
  if (text == "failed")    { out = JobState::Failed;    return true; }
  if (text == "cancelled") { out = JobState::Cancelled; return true; }
  if (text == "timeout")   { out = JobState::Timeout;   return true; }
  return false;
}

bool is_terminal(JobState state) {
  return state != JobState::Queued && state != JobState::Running;
}

ResultSummary summarize(const CampaignResult& result, const CampaignSpec& spec) {
  ResultSummary s;
  s.kind = to_string(result.kind);
  s.backend = to_string(result.backend);
  s.schedule = to_string(result.schedule);
  s.status = to_string(result.status);
  s.threads = result.threads;
  s.shard_count = result.shard_count;
  s.shards_completed = result.shards_completed;
  s.shards_resumed = result.shards_resumed;
  s.seconds = result.seconds;
  s.checkpoint = spec.checkpoint;
  s.passed = result.passed();

  s.sequences = result.validation.sequences;
  s.errors_injected = result.validation.errors_injected;
  s.sequences_with_errors = result.validation.sequences_with_errors;
  s.detected = result.validation.detected;
  s.corrected = result.validation.corrected;
  s.flagged_uncorrectable = result.validation.flagged_uncorrectable;
  s.comparator_mismatches = result.validation.comparator_mismatches;
  s.silent_corruptions = result.validation.silent_corruptions;

  s.atpg_patterns = result.atpg.patterns.size();
  s.atpg_total_faults = result.atpg.total_faults;
  s.atpg_detected_random = result.atpg.detected_random;
  s.atpg_detected_podem = result.atpg.detected_podem;
  s.atpg_untestable = result.atpg.untestable;
  s.atpg_aborted = result.atpg.aborted;
  s.faults_total = result.faults.total_faults;
  s.faults_detected = result.faults.detected;
  s.scan_patterns_applied = result.scan_test.patterns_applied;
  s.scan_mismatches = result.scan_test.mismatches;

  s.event_sweeps = result.activity.event_sweeps;
  s.full_sweeps = result.activity.full_sweeps;
  s.full_sweep_fallbacks = result.activity.full_sweep_fallbacks;
  s.event_instrs = result.activity.event_instrs;
  s.sweep_instrs = result.activity.sweep_instrs;
  s.instr_capacity = result.activity.instr_capacity;
  return s;
}

std::uint64_t summary_digest(const ResultSummary& s) {
  Fnv1a digest;
  digest.add_text(s.kind);
  digest.add_text(s.schedule);
  digest.add_text(s.status);
  digest.add(s.passed ? 1 : 0);
  digest.add(s.shard_count);
  digest.add(s.shards_completed);
  digest.add(s.sequences);
  digest.add(s.errors_injected);
  digest.add(s.sequences_with_errors);
  digest.add(s.detected);
  digest.add(s.corrected);
  digest.add(s.flagged_uncorrectable);
  digest.add(s.comparator_mismatches);
  digest.add(s.silent_corruptions);
  digest.add(s.atpg_patterns);
  digest.add(s.atpg_total_faults);
  digest.add(s.atpg_detected_random);
  digest.add(s.atpg_detected_podem);
  digest.add(s.atpg_untestable);
  digest.add(s.atpg_aborted);
  digest.add(s.faults_total);
  digest.add(s.faults_detected);
  digest.add(s.scan_patterns_applied);
  digest.add(s.scan_mismatches);
  digest.add(s.event_sweeps);
  digest.add(s.full_sweeps);
  digest.add(s.full_sweep_fallbacks);
  digest.add(s.event_instrs);
  digest.add(s.sweep_instrs);
  digest.add(s.instr_capacity);
  return digest.hash;
}

Json to_json(const ResultSummary& s) {
  Json json = Json::Object{};
  json.set("kind", s.kind)
      .set("backend", s.backend)
      .set("schedule", s.schedule)
      .set("status", s.status)
      .set("threads", s.threads)
      .set("shard_count", s.shard_count)
      .set("shards_completed", s.shards_completed)
      .set("shards_resumed", s.shards_resumed)
      .set("seconds", s.seconds)
      .set("checkpoint", s.checkpoint)
      .set("passed", s.passed)
      .set("sequences", s.sequences)
      .set("errors_injected", s.errors_injected)
      .set("sequences_with_errors", s.sequences_with_errors)
      .set("detected", s.detected)
      .set("corrected", s.corrected)
      .set("flagged_uncorrectable", s.flagged_uncorrectable)
      .set("comparator_mismatches", s.comparator_mismatches)
      .set("silent_corruptions", s.silent_corruptions)
      .set("atpg_patterns", s.atpg_patterns)
      .set("atpg_total_faults", s.atpg_total_faults)
      .set("atpg_detected_random", s.atpg_detected_random)
      .set("atpg_detected_podem", s.atpg_detected_podem)
      .set("atpg_untestable", s.atpg_untestable)
      .set("atpg_aborted", s.atpg_aborted)
      .set("faults_total", s.faults_total)
      .set("faults_detected", s.faults_detected)
      .set("scan_patterns_applied", s.scan_patterns_applied)
      .set("scan_mismatches", s.scan_mismatches)
      .set("event_sweeps", s.event_sweeps)
      .set("full_sweeps", s.full_sweeps)
      .set("full_sweep_fallbacks", s.full_sweep_fallbacks)
      .set("event_instrs", s.event_instrs)
      .set("sweep_instrs", s.sweep_instrs)
      .set("instr_capacity", s.instr_capacity)
      .set("digest", summary_digest(s));
  return json;
}

ResultSummary summary_from_json(const Json& json) {
  ResultSummary s;
  s.kind = json.at("kind").as_string();
  s.backend = json.at("backend").as_string();
  s.schedule = json.at("schedule").as_string();
  s.status = json.at("status").as_string();
  s.threads = json.at("threads").as_u64();
  s.shard_count = json.at("shard_count").as_u64();
  s.shards_completed = json.at("shards_completed").as_u64();
  s.shards_resumed = json.at("shards_resumed").as_u64();
  s.seconds = json.at("seconds").as_double();
  s.checkpoint = json.at("checkpoint").as_string();
  s.passed = json.at("passed").as_bool();
  s.sequences = json.at("sequences").as_u64();
  s.errors_injected = json.at("errors_injected").as_u64();
  s.sequences_with_errors = json.at("sequences_with_errors").as_u64();
  s.detected = json.at("detected").as_u64();
  s.corrected = json.at("corrected").as_u64();
  s.flagged_uncorrectable = json.at("flagged_uncorrectable").as_u64();
  s.comparator_mismatches = json.at("comparator_mismatches").as_u64();
  s.silent_corruptions = json.at("silent_corruptions").as_u64();
  s.atpg_patterns = json.at("atpg_patterns").as_u64();
  s.atpg_total_faults = json.at("atpg_total_faults").as_u64();
  s.atpg_detected_random = json.at("atpg_detected_random").as_u64();
  s.atpg_detected_podem = json.at("atpg_detected_podem").as_u64();
  s.atpg_untestable = json.at("atpg_untestable").as_u64();
  s.atpg_aborted = json.at("atpg_aborted").as_u64();
  s.faults_total = json.at("faults_total").as_u64();
  s.faults_detected = json.at("faults_detected").as_u64();
  s.scan_patterns_applied = json.at("scan_patterns_applied").as_u64();
  s.scan_mismatches = json.at("scan_mismatches").as_u64();
  s.event_sweeps = json.at("event_sweeps").as_u64();
  s.full_sweeps = json.at("full_sweeps").as_u64();
  s.full_sweep_fallbacks = json.at("full_sweep_fallbacks").as_u64();
  s.event_instrs = json.at("event_instrs").as_u64();
  s.sweep_instrs = json.at("sweep_instrs").as_u64();
  s.instr_capacity = json.at("instr_capacity").as_u64();
  // The shipped digest is advisory (recomputable); verify when present so
  // a corrupted relay is caught at the protocol layer.
  if (const Json* digest = json.find("digest")) {
    if (digest->as_u64() != summary_digest(s)) {
      throw Error("result summary digest mismatch (corrupt relay?)");
    }
  }
  return s;
}

namespace {

double ratio(std::uint64_t numerator, std::uint64_t denominator) {
  return denominator == 0 ? 1.0
                          : static_cast<double>(numerator) /
                                static_cast<double>(denominator);
}

}  // namespace

void print_summary(std::ostream& out, const ResultSummary& s) {
  // Byte-compatible with tools/retscan_main.cpp print_result: the serve CI
  // job diffs `^(result|schedule|verdict):` lines between `retscan submit
  // --wait` and a one-shot `retscan run` of the same spec.
  out << "ran:      " << s.kind << " on " << s.backend << ", " << s.threads
      << " threads x " << s.shard_count << " shards, " << s.seconds << " s\n";
  if (s.shards_resumed != 0) {
    out << "resumed:  " << s.shards_resumed << " of " << s.shard_count
        << " shards merged from " << s.checkpoint << "\n";
  }
  if (s.status != "complete") {
    out << "status:   " << s.status << " after " << s.shards_completed
        << " of " << s.shard_count << " shards";
    if (!s.checkpoint.empty()) {
      out << "; journal " << s.checkpoint << " holds the completed work "
          << "(rerun with --resume)";
    }
    out << "\n";
  }
  if (s.kind == "validation" || s.kind == "injection") {
    out << "result:   " << s.sequences << " sequences, "
        << s.sequences_with_errors << " with errors, detection "
        << 100.0 * ratio(s.detected, s.sequences_with_errors)
        << "%, correction "
        << 100.0 * ratio(s.corrected, s.sequences_with_errors) << "%\n"
        << "          flagged-uncorrectable " << s.flagged_uncorrectable
        << ", silent corruptions " << s.silent_corruptions << "\n";
    if (s.event_sweeps + s.full_sweeps != 0) {
      const double dirty =
          s.instr_capacity == 0
              ? 0.0
              : static_cast<double>(s.event_instrs + s.sweep_instrs) /
                    static_cast<double>(s.instr_capacity);
      out << "schedule: " << s.schedule << " — " << s.event_sweeps
          << " event settles, " << s.full_sweeps << " full sweeps ("
          << s.full_sweep_fallbacks << " fallbacks), avg dirty "
          << "fraction " << dirty << "\n";
    }
  } else if (s.kind == "fault-coverage") {
    const std::uint64_t testable = s.atpg_total_faults - s.atpg_untestable;
    out << "result:   " << s.atpg_patterns << " patterns, coverage "
        << 100.0 * ratio(s.atpg_detected_random + s.atpg_detected_podem,
                         testable)
        << "% (" << s.faults_detected << "/" << s.faults_total
        << " faults via fault-sim)\n";
  } else if (s.kind == "transition-delay" || s.kind == "bridging" ||
             s.kind == "sequential-coverage") {
    out << "result:   " << s.kind << " coverage "
        << 100.0 * ratio(s.faults_detected, s.faults_total) << "% ("
        << s.faults_detected << "/" << s.faults_total << " faults)\n";
  } else {
    const std::uint64_t testable = s.atpg_total_faults - s.atpg_untestable;
    out << "result:   " << s.scan_patterns_applied << " patterns delivered, "
        << s.scan_mismatches << " mismatches (coverage "
        << 100.0 * ratio(s.atpg_detected_random + s.atpg_detected_podem,
                         testable)
        << "%)\n";
  }
  out << "verdict:  " << (s.passed ? "PASS" : "FAIL") << "\n";
}

Json to_json(const SubmitOverrides& overrides) {
  Json json = Json::Object{};
  if (overrides.seed)      json.set("seed", *overrides.seed);
  if (overrides.threads)   json.set("threads", *overrides.threads);
  if (overrides.sequences) json.set("sequences", *overrides.sequences);
  if (overrides.backend)   json.set("backend", *overrides.backend);
  if (overrides.schedule)  json.set("schedule", *overrides.schedule);
  if (overrides.checkpoint) json.set("checkpoint", *overrides.checkpoint);
  if (overrides.resume)    json.set("resume", true);
  if (overrides.deadline_ms) json.set("deadline_ms", *overrides.deadline_ms);
  return json;
}

SubmitOverrides overrides_from_json(const Json& json) {
  SubmitOverrides overrides;
  if (const Json* v = json.find("seed"))      overrides.seed = v->as_u64();
  if (const Json* v = json.find("threads"))   overrides.threads = v->as_u64();
  if (const Json* v = json.find("sequences")) overrides.sequences = v->as_u64();
  if (const Json* v = json.find("backend"))   overrides.backend = v->as_string();
  if (const Json* v = json.find("schedule"))  overrides.schedule = v->as_string();
  if (const Json* v = json.find("checkpoint")) {
    overrides.checkpoint = v->as_string();
  }
  if (const Json* v = json.find("resume"))    overrides.resume = v->as_bool();
  if (const Json* v = json.find("deadline_ms")) {
    overrides.deadline_ms = v->as_u64();
  }
  return overrides;
}

void apply_overrides(SpecFile& file, const SubmitOverrides& overrides) {
  if (overrides.seed) {
    file.campaign.seed = *overrides.seed;
  }
  if (overrides.threads) {
    if (*overrides.threads > 4096) {
      throw Error("--threads = " + std::to_string(*overrides.threads) +
                  " is out of range (max 4096)");
    }
    file.campaign.threads = static_cast<unsigned>(*overrides.threads);
  }
  if (overrides.sequences) {
    file.campaign.sequences = *overrides.sequences;
  }
  if (overrides.backend &&
      !from_string(*overrides.backend, file.campaign.backend)) {
    throw Error("unknown backend '" + *overrides.backend + "'");
  }
  if (overrides.schedule &&
      !from_string(*overrides.schedule, file.campaign.schedule)) {
    throw Error("unknown schedule '" + *overrides.schedule +
                "' (want auto, sweep or event)");
  }
  if (overrides.checkpoint) {
    file.campaign.checkpoint = *overrides.checkpoint;
  }
  if (overrides.resume) {
    file.campaign.resume = true;
  }
  if (overrides.deadline_ms) {
    file.campaign.deadline_ms = *overrides.deadline_ms;
  }
}

int exit_code_for(JobState state, const ResultSummary* summary) {
  switch (state) {
    case JobState::Done:
      return summary != nullptr && summary->passed ? 0 : 1;
    case JobState::Cancelled:
      return 130;
    case JobState::Timeout:
      return 3;
    case JobState::Failed:
      return 2;
    case JobState::Queued:
    case JobState::Running:
      break;
  }
  return 2;
}

}  // namespace retscan::serve
