#include "serve/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "retscan/runtime.hpp"
#include "retscan/version.hpp"
#include "util/error.hpp"
#include "util/lanes.hpp"

namespace retscan::serve {

namespace {

/// SIGTERM handlers can only do async-signal-safe work; they land here.
std::atomic<bool> g_signal_shutdown{false};

/// Guard against protocol abuse / a client writing garbage forever.
constexpr std::size_t kMaxLineBytes = 1u << 20;

int connect_probe(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0) {
    return fd;  // a live daemon answered
  }
  ::close(fd);
  return -1;
}

int make_listener(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw Error("socket path too long: '" + path + "'");
  }
  if (::access(path.c_str(), F_OK) == 0) {
    const int live = connect_probe(path);
    if (live >= 0) {
      ::close(live);
      throw Error("a retscan daemon is already serving '" + path + "'");
    }
    // Stale socket file from a killed daemon — reclaim it.
    ::unlink(path.c_str());
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int bind_errno = errno;
    ::close(fd);
    throw Error("bind '" + path + "': " + std::strerror(bind_errno));
  }
  if (::listen(fd, 16) != 0) {
    const int listen_errno = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw Error("listen '" + path + "': " + std::strerror(listen_errno));
  }
  return fd;
}

/// Write one LF-terminated JSON line; false when the peer is gone
/// (MSG_NOSIGNAL: a SIGKILLed client must not SIGPIPE the daemon).
bool send_line(int fd, const Json& message) {
  const std::string line = message.dump() + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Json error_response(const std::string& message) {
  Json response = Json::Object{};
  response.set("ok", false).set("error", message);
  return response;
}

}  // namespace

void Server::notify_signal() noexcept {
  g_signal_shutdown.store(true, std::memory_order_relaxed);
}

bool Server::shutdown_requested() const {
  return shutdown_.load() || g_signal_shutdown.load(std::memory_order_relaxed);
}

Server::Server(const std::string& socket_path, const ServeOptions& options)
    : socket_path_(socket_path),
      listen_fd_(make_listener(socket_path)),
      manager_(options) {}

Server::~Server() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
  }
  stopping_.store(true);
  for (std::thread& connection : connections_) {
    if (connection.joinable()) {
      connection.join();
    }
  }
}

void Server::run() {
  while (!shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0 && errno != EINTR) {
      break;
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // 500 ms receive timeout: connection threads wake periodically to
    // notice the drain instead of blocking in recv forever.
    timeval timeout{0, 500 * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
  // Graceful drain: no new connections, finish every accepted job, let
  // the connection threads answer their clients, then join them.
  ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
  listen_fd_ = -1;
  manager_.drain();
  stopping_.store(true);
  for (std::thread& connection : connections_) {
    if (connection.joinable()) {
      connection.join();
    }
  }
  connections_.clear();
}

void Server::serve_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool close_connection = false;
  while (!close_connection) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) {
        continue;
      }
      Json response;
      try {
        const Json request = Json::parse(line);
        response = handle(request, fd, close_connection);
      } catch (const std::exception& error) {
        // Malformed request: answer, then drop the connection — the
        // line framing may be out of sync.
        response = error_response(error.what());
        close_connection = true;
      }
      if (!send_line(fd, response)) {
        break;
      }
      continue;
    }
    if (buffer.size() > kMaxLineBytes) {
      send_line(fd, error_response("request line too long"));
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      if (stopping_.load()) {
        break;  // drained and idle — the daemon is exiting
      }
      continue;
    }
    break;  // peer closed (SIGKILLed clients land here); its jobs live on
  }
  ::close(fd);
}

Json Server::handle(const Json& request, int fd, bool& close_connection) {
  const std::string cmd = request.at("cmd").as_string();
  Json response = Json::Object{};

  if (cmd == "ping") {
    const BuildInfo info = build_info();
    response.set("ok", true)
        .set("protocol", kProtocolVersion)
        .set("version", info.version)
        .set("lane_words", info.lane_words)
        .set("lane_bits", info.lane_bits)
        .set("avx2", info.avx2)
        .set("threads", manager_.threads());
    return response;
  }
  if (cmd == "submit") {
    const std::string spec = request.at("spec").as_string();
    SubmitOverrides overrides;
    if (const Json* json = request.find("overrides")) {
      overrides = overrides_from_json(*json);
    }
    const std::uint64_t id = manager_.submit(spec, overrides);
    const bool wait = request.has("wait") && request.at("wait").as_bool();
    if (!wait) {
      response.set("ok", true).set("id", id);
      return response;
    }
    // Streamed wait: progress event lines, then the terminal record as
    // the response. A client that dies mid-stream just breaks the send;
    // the job itself is unaffected.
    std::uint64_t last_done = ~std::uint64_t{0};
    JobState last_state = JobState::Queued;
    for (;;) {
      const std::optional<JobRecord> record = manager_.status(id);
      if (!record) {
        return error_response("job " + std::to_string(id) + " vanished");
      }
      if (is_terminal(record->state)) {
        response.set("ok", true).set("id", id).set("job", to_json(*record));
        return response;
      }
      if (record->shards_done != last_done || record->state != last_state) {
        last_done = record->shards_done;
        last_state = record->state;
        Json event = Json::Object{};
        event.set("event", "progress")
            .set("id", id)
            .set("state", to_string(record->state))
            .set("shards_done", record->shards_done)
            .set("shard_count", record->shard_count);
        if (!send_line(fd, event)) {
          close_connection = true;
          return error_response("client gone");
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (cmd == "status" || cmd == "result") {
    const std::uint64_t id = request.at("id").as_u64();
    const std::optional<JobRecord> record =
        cmd == "result" ? manager_.wait(id) : manager_.status(id);
    if (!record) {
      return error_response("unknown job " + std::to_string(id));
    }
    response.set("ok", true).set("job", to_json(*record));
    return response;
  }
  if (cmd == "cancel") {
    const std::uint64_t id = request.at("id").as_u64();
    response.set("ok", true).set("cancelled", manager_.cancel(id));
    return response;
  }
  if (cmd == "list") {
    Json jobs = Json::Array{};
    for (const JobRecord& record : manager_.list()) {
      jobs.push(to_json(record));
    }
    response.set("ok", true).set("jobs", std::move(jobs));
    return response;
  }
  if (cmd == "stats") {
    const SessionCache::Stats sessions = manager_.session_stats();
    const CompiledArtifactStore::Stats artifacts = manager_.artifact_stats();
    Json session_json = Json::Object{};
    session_json.set("hits", sessions.hits)
        .set("misses", sessions.misses)
        .set("evictions", sessions.evictions);
    Json artifact_json = Json::Object{};
    artifact_json.set("hits", artifacts.hits)
        .set("misses", artifacts.misses)
        .set("rejected", artifacts.rejected)
        .set("stored", artifacts.stored)
        .set("write_errors", artifacts.write_errors);
    response.set("ok", true)
        .set("sessions", std::move(session_json))
        .set("artifacts", std::move(artifact_json))
        .set("threads", manager_.threads());
    return response;
  }
  if (cmd == "shutdown") {
    shutdown_.store(true);
    close_connection = true;
    response.set("ok", true).set("draining", true);
    return response;
  }
  return error_response("unknown command '" + cmd + "'");
}

}  // namespace retscan::serve
