#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace retscan::serve {

/// Minimal JSON value for the serve wire protocol — one object per line,
/// flat-ish messages, no dependencies. Deliberately small: UTF-8 strings
/// with the standard escapes, exact u64 integers (campaign counters and
/// seeds do not fit in a double), doubles for rates/seconds, objects and
/// arrays. dump() emits a single line (no raw newlines can escape — they
/// are always \-escaped), which is what makes line-delimited framing safe.
class Json {
 public:
  using Object = std::map<std::string, Json>;
  using Array = std::vector<Json>;

  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool value) : value_(value) {}
  Json(std::uint64_t value) : value_(value) {}
  Json(int value) : value_(static_cast<std::uint64_t>(value)) {}
  Json(unsigned value) : value_(static_cast<std::uint64_t>(value)) {}
  Json(double value) : value_(value) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(Object value) : value_(std::move(value)) {}
  Json(Array value) : value_(std::move(value)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_u64() const { return std::holds_alternative<std::uint64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_u64() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }

  /// Typed accessors; throw retscan::Error on a type mismatch so protocol
  /// errors surface as actionable messages, not UB.
  bool as_bool() const;
  std::uint64_t as_u64() const;  ///< exact integers only (rejects doubles)
  double as_double() const;      ///< any number
  const std::string& as_string() const;
  const Object& as_object() const;
  const Array& as_array() const;

  /// Object field lookup; `get` returns null for a missing key, `at`
  /// throws naming it.
  const Json* find(const std::string& key) const;
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Mutating object/array builders.
  Json& set(const std::string& key, Json value);
  Json& push(Json value);

  /// Compact single-line serialization.
  std::string dump() const;

  /// Strict parse of one complete JSON value (trailing junk is an error).
  /// Throws retscan::Error with a byte offset on malformed input.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::uint64_t, double, std::string,
               Object, Array>
      value_;
};

}  // namespace retscan::serve
