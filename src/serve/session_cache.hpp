#pragma once

/// In-memory session cache for the serve daemon.
///
/// Building a Session is the expensive part of a small campaign: protected
/// synthesis, scan insertion, netlist compilation, workspace warm-up. Two
/// jobs over the same design should pay it once. The cache keys on a
/// content hash of everything that shapes the design — the library
/// version, the lane geometry, the *bytes* of an imported netlist file
/// (not its path: editing the file must miss), the FIFO geometry and
/// every protection field. Thread count is deliberately excluded: daemon
/// jobs execute on the shared runner via RunHooks, so the session's own
/// pool size never shapes results.
///
/// Cached sessions are handed out exclusively (checkout removes the
/// entry) and returned with checkin, so two concurrent jobs over the same
/// design simply build two sessions — no aliasing of mutable session
/// state. Eviction is LRU by checkin order. tests/test_serve.cpp asserts
/// cached-session campaign results are byte-identical to cold-session
/// runs across campaign kinds and thread counts.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>

#include "retscan/campaign.hpp"
#include "retscan/session.hpp"

namespace retscan::serve {

/// Content hash of the design a spec file describes (see file comment for
/// what participates). Reads the netlist file when one is named; throws
/// retscan::Error if it cannot be read.
std::uint64_t session_key(const SpecFile& file);

class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity) : capacity_(capacity) {}

  /// Remove and return an idle session for `key`, or nullptr on a miss.
  std::unique_ptr<Session> checkout(std::uint64_t key);

  /// Return an idle session to the cache (most-recently-used position).
  /// Evicts the least-recently-used entry beyond capacity. A capacity of
  /// zero makes this a drop — every checkout misses.
  void checkin(std::uint64_t key, std::unique_ptr<Session> session);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };
  Stats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t key;
    std::unique_ptr<Session> session;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> entries_;  ///< front = most recently checked in
  Stats stats_;
};

}  // namespace retscan::serve
