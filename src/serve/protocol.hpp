#pragma once

/// serve wire protocol — the shared vocabulary of the `retscan serve`
/// daemon and the `retscan submit`/`jobs`/`cancel` client commands.
///
/// Framing is one JSON object per LF-terminated line on a local
/// AF_UNIX stream socket. Requests carry {"cmd": ...}; responses carry
/// {"ok": true, ...} or {"ok": false, "error": "..."}. The protocol is
/// versioned (kProtocolVersion) and the daemon rejects clients that ask
/// for a version it does not speak.
///
/// A campaign's statistics cross the wire as a ResultSummary: every
/// counter as an exact u64 (never a double — counters like 100M-sequence
/// budgets must survive the round trip bit-for-bit), plus the resolved
/// execution shape. summary_digest() hashes only the statistics-bearing
/// fields, so two runs of the same spec compare equal across thread
/// counts, sessions and daemon restarts — the serve CI job asserts cold
/// vs artifact-warm submissions digest-identically.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "retscan/campaign.hpp"
#include "serve/json.hpp"

namespace retscan::serve {

/// Bumped whenever a message shape changes incompatibly.
inline constexpr std::uint64_t kProtocolVersion = 1;

/// Socket path resolution: explicit flag > RETSCAN_SOCKET > ./retscan.sock.
std::string default_socket_path();

/// Where a submitted job is in its lifecycle.
enum class JobState {
  Queued,     ///< accepted, waiting for a driver slot
  Running,    ///< campaign body executing on the shared pool
  Done,       ///< finished with CampaignStatus::Complete
  Failed,     ///< spec/setup/run error; see the job's error text
  Cancelled,  ///< cancel request (client or daemon drain) took effect
  Timeout,    ///< the spec's deadline_ms expired mid-run
};

const char* to_string(JobState state);
bool from_string(std::string_view text, JobState& out);
bool is_terminal(JobState state);

/// Flattened, wire-safe image of a CampaignResult. Counters are exact
/// u64s; rates are recomputed from them on display, never shipped as
/// doubles. Only the section matching `kind` is meaningful, mirroring
/// CampaignResult itself.
struct ResultSummary {
  std::string kind;      ///< to_string(CampaignKind)
  std::string backend;   ///< resolved backend actually run
  std::string schedule;  ///< schedule the gate-level engines were asked for
  std::string status;    ///< to_string(CampaignStatus)
  std::uint64_t threads = 1;
  std::uint64_t shard_count = 1;
  std::uint64_t shards_completed = 0;
  std::uint64_t shards_resumed = 0;
  double seconds = 0.0;
  std::string checkpoint;  ///< journal path, for the status/resumed lines
  bool passed = false;

  // Validation / Injection (testbench/harness.hpp ValidationStats).
  std::uint64_t sequences = 0;
  std::uint64_t errors_injected = 0;
  std::uint64_t sequences_with_errors = 0;
  std::uint64_t detected = 0;
  std::uint64_t corrected = 0;
  std::uint64_t flagged_uncorrectable = 0;
  std::uint64_t comparator_mismatches = 0;
  std::uint64_t silent_corruptions = 0;

  // FaultCoverage / ScanTest (atpg/atpg.hpp, atpg/scan_test.hpp).
  std::uint64_t atpg_patterns = 0;
  std::uint64_t atpg_total_faults = 0;
  std::uint64_t atpg_detected_random = 0;
  std::uint64_t atpg_detected_podem = 0;
  std::uint64_t atpg_untestable = 0;
  std::uint64_t atpg_aborted = 0;
  std::uint64_t faults_total = 0;
  std::uint64_t faults_detected = 0;
  std::uint64_t scan_patterns_applied = 0;
  std::uint64_t scan_mismatches = 0;

  // Schedule telemetry (sim/schedule.hpp) — thread-count invariant, so it
  // participates in the digest.
  std::uint64_t event_sweeps = 0;
  std::uint64_t full_sweeps = 0;
  std::uint64_t full_sweep_fallbacks = 0;
  std::uint64_t event_instrs = 0;
  std::uint64_t sweep_instrs = 0;
  std::uint64_t instr_capacity = 0;
};

/// Flatten a finished campaign for the wire.
ResultSummary summarize(const CampaignResult& result, const CampaignSpec& spec);

/// FNV-1a over the statistics-bearing fields only: kind, status, pass
/// verdict, every counter and the schedule telemetry. Deliberately excludes
/// threads, shard sizes realized per run (shard_count IS included — it is
/// seed/spec-determined, not thread-determined), wall-clock seconds and the
/// checkpoint path, so equal work ⇒ equal digest at any thread count.
std::uint64_t summary_digest(const ResultSummary& summary);

Json to_json(const ResultSummary& summary);
ResultSummary summary_from_json(const Json& json);

/// The exact `ran:`/`resumed:`/`status:`/`result:`/`schedule:`/`verdict:`
/// block `retscan run` prints (tools/retscan_main.cpp print_result), so
/// `retscan submit --wait` output diffs cleanly against a one-shot run —
/// the serve CI job greps `^(result|schedule|verdict):` from both and
/// requires byte equality.
void print_summary(std::ostream& out, const ResultSummary& summary);

/// The CLI override flags a submit request may attach to a spec file —
/// the same knobs `retscan run` accepts, shipped as JSON so the daemon
/// applies them after parsing the spec on its side of the socket.
struct SubmitOverrides {
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> threads;
  std::optional<std::uint64_t> sequences;
  std::optional<std::string> backend;
  std::optional<std::string> schedule;
  std::optional<std::string> checkpoint;
  bool resume = false;
  std::optional<std::uint64_t> deadline_ms;
};

Json to_json(const SubmitOverrides& overrides);
SubmitOverrides overrides_from_json(const Json& json);

/// Apply overrides onto a parsed spec (same semantics as the `retscan run`
/// flag loop). Throws retscan::Error on unknown backend/schedule names.
void apply_overrides(SpecFile& file, const SubmitOverrides& overrides);

/// Map a terminal job state + summary to the `retscan run` exit-code
/// convention: 0 pass, 1 fail, 2 spec/daemon error, 3 deadline expired,
/// 130 cancelled.
int exit_code_for(JobState state, const ResultSummary* summary);

}  // namespace retscan::serve
