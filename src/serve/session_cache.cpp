#include "serve/session_cache.hpp"

#include <fstream>
#include <sstream>

#include "retscan/version.hpp"
#include "util/error.hpp"
#include "util/fnv.hpp"
#include "util/lanes.hpp"

namespace retscan::serve {

std::uint64_t session_key(const SpecFile& file) {
  Fnv1a key;
  key.add_text(RETSCAN_VERSION_STRING);
  key.add(kLaneWords);
  if (!file.netlist_file.empty()) {
    // Hash the file's bytes, not its name: the same circuit under two
    // paths shares a session, and editing the file invalidates it.
    std::ifstream in(file.netlist_file, std::ios::binary);
    if (!in) {
      throw Error("cannot read netlist file '" + file.netlist_file + "'");
    }
    std::ostringstream bytes;
    bytes << in.rdbuf();
    const std::string content = bytes.str();
    key.add(1);  // source discriminator: imported netlist
    key.add_bytes(content.data(), content.size());
    key.add(content.size());
  } else {
    key.add(2);  // source discriminator: generated FIFO
    key.add(file.fifo.depth);
    key.add(file.fifo.width);
  }
  const ProtectionConfig& p = file.protection;
  key.add(static_cast<std::uint64_t>(p.kind));
  key.add(p.hamming_r);
  key.add(p.secded ? 1 : 0);
  key.add(p.crc_polynomial);
  key.add(p.chain_count);
  key.add(p.crc_group_width);
  key.add(p.test_width);
  key.add(static_cast<std::uint64_t>(p.assignment));
  key.add(p.gated_domain);
  key.add(p.hardware_controller ? 1 : 0);
  key.add(p.settle_cycles);
  return key.hash;
}

std::unique_ptr<Session> SessionCache::checkout(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      std::unique_ptr<Session> session = std::move(it->session);
      entries_.erase(it);
      ++stats_.hits;
      return session;
    }
  }
  ++stats_.misses;
  return nullptr;
}

void SessionCache::checkin(std::uint64_t key, std::unique_ptr<Session> session) {
  if (session == nullptr) {
    return;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_front(Entry{key, std::move(session)});
  while (entries_.size() > capacity_) {
    entries_.pop_back();
    ++stats_.evictions;
  }
}

SessionCache::Stats SessionCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SessionCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace retscan::serve
