#include "serve/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace retscan::serve {

namespace {

[[noreturn]] void type_error(const char* want, const Json& value) {
  const char* got = value.is_null()     ? "null"
                    : value.is_bool()   ? "bool"
                    : value.is_u64()    ? "integer"
                    : value.is_double() ? "double"
                    : value.is_string() ? "string"
                    : value.is_object() ? "object"
                                        : "array";
  throw Error(std::string("json: expected ") + want + ", got " + got);
}

}  // namespace

bool Json::as_bool() const {
  if (const bool* value = std::get_if<bool>(&value_)) {
    return *value;
  }
  type_error("bool", *this);
}

std::uint64_t Json::as_u64() const {
  if (const std::uint64_t* value = std::get_if<std::uint64_t>(&value_)) {
    return *value;
  }
  type_error("integer", *this);
}

double Json::as_double() const {
  if (const std::uint64_t* value = std::get_if<std::uint64_t>(&value_)) {
    return static_cast<double>(*value);
  }
  if (const double* value = std::get_if<double>(&value_)) {
    return *value;
  }
  type_error("number", *this);
}

const std::string& Json::as_string() const {
  if (const std::string* value = std::get_if<std::string>(&value_)) {
    return *value;
  }
  type_error("string", *this);
}

const Json::Object& Json::as_object() const {
  if (const Object* value = std::get_if<Object>(&value_)) {
    return *value;
  }
  type_error("object", *this);
}

const Json::Array& Json::as_array() const {
  if (const Array* value = std::get_if<Array>(&value_)) {
    return *value;
  }
  type_error("array", *this);
}

const Json* Json::find(const std::string& key) const {
  const Object& object = as_object();
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const Json& Json::at(const std::string& key) const {
  if (const Json* value = find(key)) {
    return *value;
  }
  throw Error("json: missing field '" + key + "'");
}

Json& Json::set(const std::string& key, Json value) {
  if (!is_object()) {
    value_ = Object{};
  }
  std::get<Object>(value_)[key] = std::move(value);
  return *this;
}

Json& Json::push(Json value) {
  if (!is_array()) {
    value_ = Array{};
  }
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

namespace {

void dump_string(const std::string& text, std::string& out) {
  out += '"';
  for (const char c : text) {
    const unsigned char byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (byte < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", byte);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_value(const Json& value, std::string& out);

void dump_object(const Json::Object& object, std::string& out) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : object) {
    if (!first) {
      out += ',';
    }
    first = false;
    dump_string(key, out);
    out += ':';
    dump_value(value, out);
  }
  out += '}';
}

void dump_array(const Json::Array& array, std::string& out) {
  out += '[';
  bool first = true;
  for (const Json& value : array) {
    if (!first) {
      out += ',';
    }
    first = false;
    dump_value(value, out);
  }
  out += ']';
}

void dump_value(const Json& value, std::string& out) {
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_u64()) {
    out += std::to_string(value.as_u64());
  } else if (value.is_double()) {
    const double number = value.as_double();
    if (!std::isfinite(number)) {
      throw Error("json: cannot serialize a non-finite number");
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", number);
    out += buffer;
  } else if (value.is_string()) {
    dump_string(value.as_string(), out);
  } else if (value.is_object()) {
    dump_object(value.as_object(), out);
  } else {
    dump_array(value.as_array(), out);
  }
}

/// Recursive-descent parser over a string_view with a cursor.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  int depth = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("json parse error at byte " + std::to_string(pos) + ": " + why);
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) {
      fail("unexpected end of input");
    }
    return text[pos];
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) {
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      fail("invalid literal");
    }
    pos += word.size();
  }

  std::uint32_t hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    return value;
  }

  void append_utf8(std::uint32_t cp, std::string& out) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) {
        fail("unterminated string");
      }
      const char c = text[pos++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = peek();
      ++pos;
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          std::uint32_t cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            if (!consume('\\') || !consume('u')) {
              fail("lone high surrogate");
            }
            const std::uint32_t low = hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(cp, out);
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    if (token.empty() || token == "-") {
      fail("bad number");
    }
    // Exact non-negative integers stay u64 (counters, seeds, fingerprints);
    // everything else goes through double.
    if (token.find_first_of(".eE-") == std::string::npos) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<std::uint64_t>(value));
      }
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
      fail("bad number '" + token + "'");
    }
    return Json(value);
  }

  Json parse_value() {
    if (++depth > 64) {
      fail("nesting too deep");
    }
    skip_ws();
    Json result;
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json::Object object;
      skip_ws();
      if (!consume('}')) {
        for (;;) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          object[std::move(key)] = parse_value();
          skip_ws();
          if (consume(',')) {
            continue;
          }
          expect('}');
          break;
        }
      }
      result = Json(std::move(object));
    } else if (c == '[') {
      ++pos;
      Json::Array array;
      skip_ws();
      if (!consume(']')) {
        for (;;) {
          array.push_back(parse_value());
          skip_ws();
          if (consume(',')) {
            continue;
          }
          expect(']');
          break;
        }
      }
      result = Json(std::move(array));
    } else if (c == '"') {
      result = Json(parse_string());
    } else if (c == 't') {
      expect_word("true");
      result = Json(true);
    } else if (c == 'f') {
      expect_word("false");
      result = Json(false);
    } else if (c == 'n') {
      expect_word("null");
      result = Json(nullptr);
    } else {
      result = parse_number();
    }
    --depth;
    return result;
  }
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(std::string_view text) {
  Parser parser{text};
  Json value = parser.parse_value();
  parser.skip_ws();
  if (parser.pos != text.size()) {
    parser.fail("trailing junk after value");
  }
  return value;
}

}  // namespace retscan::serve
