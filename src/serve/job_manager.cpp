#include "serve/job_manager.hpp"

#include <chrono>
#include <utility>

#include "retscan/session.hpp"
#include "util/error.hpp"

namespace retscan::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

JobState state_for(CampaignStatus status) {
  switch (status) {
    case CampaignStatus::Complete:  return JobState::Done;
    case CampaignStatus::Cancelled: return JobState::Cancelled;
    case CampaignStatus::Timeout:   return JobState::Timeout;
  }
  return JobState::Failed;
}

}  // namespace

Json to_json(const JobRecord& record) {
  Json json = Json::Object{};
  json.set("id", record.id)
      .set("spec", record.spec_path)
      .set("state", to_string(record.state))
      .set("shards_done", record.shards_done)
      .set("shard_count", record.shard_count)
      .set("session_reused", record.session_reused)
      .set("setup_seconds", record.setup_seconds)
      .set("run_seconds", record.run_seconds);
  if (!record.error.empty()) {
    json.set("error", record.error);
  }
  if (record.summary) {
    json.set("summary", to_json(*record.summary));
  }
  return json;
}

JobRecord job_from_json(const Json& json) {
  JobRecord record;
  record.id = json.at("id").as_u64();
  record.spec_path = json.at("spec").as_string();
  if (!from_string(json.at("state").as_string(), record.state)) {
    throw Error("unknown job state '" + json.at("state").as_string() + "'");
  }
  record.shards_done = json.at("shards_done").as_u64();
  record.shard_count = json.at("shard_count").as_u64();
  record.session_reused = json.at("session_reused").as_bool();
  record.setup_seconds = json.at("setup_seconds").as_double();
  record.run_seconds = json.at("run_seconds").as_double();
  if (const Json* error = json.find("error")) {
    record.error = error->as_string();
  }
  if (const Json* summary = json.find("summary")) {
    record.summary = summary_from_json(*summary);
  }
  return record;
}

JobManager::JobManager(const ServeOptions& options)
    : options_(options),
      runner_(parallel::CampaignOptions{options.threads, 4096, 256}),
      scheduler_(runner_.pool()),
      sessions_(options.session_capacity) {
  if (!options_.cache_dir.empty()) {
    artifacts_ = std::make_shared<CompiledArtifactStore>(options_.cache_dir);
    install_artifact_store(artifacts_);
  }
  const std::size_t drivers = options_.max_active == 0 ? 1 : options_.max_active;
  drivers_.reserve(drivers);
  for (std::size_t i = 0; i < drivers; ++i) {
    drivers_.emplace_back([this] { driver_loop(); });
  }
}

JobManager::~JobManager() {
  drain();
}

std::uint64_t JobManager::submit(const std::string& spec_path,
                                 const SubmitOverrides& overrides) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (draining_) {
    throw Error("daemon is draining; not accepting new jobs");
  }
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->spec_path = spec_path;
  job->overrides = overrides;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  work_cv_.notify_one();
  return id;
}

bool JobManager::cancel(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return false;
  }
  Job& job = *it->second;
  if (job.state == JobState::Queued) {
    // Terminal right here; the driver skips non-queued queue entries.
    job.state = JobState::Cancelled;
    done_cv_.notify_all();
    return true;
  }
  if (job.state == JobState::Running) {
    // Cooperative: the sharded campaign observes the token at the next
    // shard boundary and returns partial (checkpointed) statistics.
    job.token.request_cancel();
    return true;
  }
  return false;
}

std::optional<JobRecord> JobManager::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  return snapshot_locked(*it->second);
}

std::vector<JobRecord> JobManager::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobRecord> records;
  records.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) {
    records.push_back(snapshot_locked(*job));
  }
  return records;
}

std::optional<JobRecord> JobManager::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return std::nullopt;
  }
  Job* job = it->second.get();
  done_cv_.wait(lock, [job] { return is_terminal(job->state); });
  return snapshot_locked(*job);
}

void JobManager::drain() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    draining_ = true;
    // Everything already queued still runs — SIGTERM finishes accepted
    // work; it only refuses new work.
    done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& driver : drivers_) {
    if (driver.joinable()) {
      driver.join();
    }
  }
  drivers_.clear();
}

CompiledArtifactStore::Stats JobManager::artifact_stats() const {
  return artifacts_ != nullptr ? artifacts_->stats()
                               : CompiledArtifactStore::Stats{};
}

JobRecord JobManager::snapshot_locked(const Job& job) const {
  JobRecord record;
  record.id = job.id;
  record.spec_path = job.spec_path;
  record.state = job.state;
  record.shards_done = job.shards_done;
  record.shard_count = job.shard_count;
  record.session_reused = job.session_reused;
  record.setup_seconds = job.setup_seconds;
  record.run_seconds = job.run_seconds;
  record.error = job.error;
  record.summary = job.summary;
  return record;
}

void JobManager::driver_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      while (!queue_.empty()) {
        const std::uint64_t id = queue_.front();
        queue_.pop_front();
        Job& candidate = *jobs_.at(id);
        if (candidate.state == JobState::Queued) {
          candidate.state = JobState::Running;
          ++active_;
          job = &candidate;
          break;
        }
        // Cancelled while queued: already terminal, nothing to run.
      }
      if (job == nullptr) {
        if (stopping_) {
          return;
        }
        done_cv_.notify_all();  // queue emptied by cancelled entries
        continue;
      }
    }
    execute(*job);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      done_cv_.notify_all();
    }
  }
}

void JobManager::execute(Job& job) {
  const auto setup_start = std::chrono::steady_clock::now();
  std::uint64_t key = 0;
  std::unique_ptr<Session> session;
  try {
    SpecFile file = load_spec_file(job.spec_path);
    apply_overrides(file, job.overrides);
    key = session_key(file);
    session = sessions_.checkout(key);
    const bool reused = session != nullptr;
    if (session == nullptr) {
      session = std::make_unique<Session>(make_session(file));
    }
    const CampaignSpec& spec = file.campaign;
    const bool gate_level =
        !(spec.kind == CampaignKind::Validation ||
          spec.kind == CampaignKind::Injection) ||
        spec.tier == ValidationTier::Structural;
    if (gate_level) {
      // Force the compile now so setup_seconds captures it — this is the
      // cost the artifact store amortizes, and what the serve CI job
      // compares cold vs warm.
      session->frame();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.session_reused = reused;
      job.setup_seconds = seconds_since(setup_start);
    }

    RunHooks hooks;
    hooks.runner = &runner_;
    hooks.cancel = &job.token;
    hooks.scheduler = &scheduler_;
    hooks.progress = [this, &job](std::size_t done, std::size_t total) {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.shards_done = done;
      job.shard_count = total;
    };

    const auto run_start = std::chrono::steady_clock::now();
    const CampaignResult result = run(*session, file.campaign, hooks);
    const double run_seconds = seconds_since(run_start);

    // The session survived the campaign intact (cancelled/timeout runs
    // included) — recycle it.
    sessions_.checkin(key, std::move(session));

    const std::lock_guard<std::mutex> lock(mutex_);
    job.run_seconds = run_seconds;
    job.summary = summarize(result, file.campaign);
    job.shards_done = result.shards_completed;
    job.shard_count = result.shard_count;
    job.state = state_for(result.status);
  } catch (const std::exception& error) {
    // Failed: the session (if any) is dropped, not recycled — a campaign
    // that threw may have left it mid-protocol.
    const std::lock_guard<std::mutex> lock(mutex_);
    job.error = error.what();
    job.state = JobState::Failed;
  }
}

}  // namespace retscan::serve
