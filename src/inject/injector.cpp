#include "inject/injector.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace retscan {

namespace {
unsigned bits_for(std::size_t bound) {
  unsigned bits = 2;
  while ((std::size_t{1} << bits) < bound * 2 && bits < 32) {
    ++bits;
  }
  return bits;
}
}  // namespace

ErrorInjector::ErrorInjector(std::size_t chain_count, std::size_t chain_length,
                             std::uint64_t seed)
    : chain_count_(chain_count),
      chain_length_(chain_length),
      // Fold the full 64-bit seed through independent mix streams before
      // truncating to the LFSR state width: nearby seeds (per-shard streams
      // of a parallel campaign are dense integers post-mix) must land on
      // unrelated row/column sequences. `| 1` keeps the state nonzero.
      row_lfsr_(Lfsr::maximal(bits_for(chain_count),
                              (Rng::derive_stream(seed, 0x726f77) | 1) & 0xffff)),
      column_lfsr_(Lfsr::maximal(bits_for(chain_length),
                                 (Rng::derive_stream(seed, 0x636f6c) | 1) & 0xffff)) {
  RETSCAN_CHECK(chain_count_ > 0 && chain_length_ > 0, "ErrorInjector: empty fabric");
}

std::size_t ErrorInjector::next_index(std::size_t bound) {
  // Draw from whichever LFSR matches the axis; rejection-sample so every
  // index is reachable (an LFSR state is never zero, so we subtract 1).
  Lfsr& source = bound == chain_count_ ? row_lfsr_ : column_lfsr_;
  for (;;) {
    source.step();
    const std::size_t value = static_cast<std::size_t>(source.state() - 1);
    if (value < bound) {
      return value;
    }
  }
}

ErrorLocation ErrorInjector::random_single() {
  return ErrorLocation{next_index(chain_count_), next_index(chain_length_)};
}

std::vector<ErrorLocation> ErrorInjector::random_multiple(std::size_t count) {
  RETSCAN_CHECK(count <= chain_count_ * chain_length_,
                "ErrorInjector: more errors than flops");
  std::vector<ErrorLocation> errors;
  errors.reserve(count);
  while (errors.size() < count) {
    const ErrorLocation loc = random_single();
    if (std::find(errors.begin(), errors.end(), loc) == errors.end()) {
      errors.push_back(loc);
    }
  }
  return errors;
}

std::vector<ErrorLocation> ErrorInjector::clustered_burst(std::size_t count,
                                                          std::size_t spread) {
  RETSCAN_CHECK(count <= chain_count_ * chain_length_,
                "ErrorInjector: more errors than flops");
  const ErrorLocation centre = random_single();
  const std::size_t chain_span = std::min(chain_count_, 2 * spread + 1);
  const std::size_t pos_span = std::min(chain_length_, 2 * spread + 1);
  RETSCAN_CHECK(count <= chain_span * pos_span,
                "ErrorInjector: burst too large for spread window");
  std::vector<ErrorLocation> errors;
  errors.reserve(count);
  while (errors.size() < count) {
    // Offsets drawn from the LFSRs, folded into the window around centre.
    const std::size_t dc = next_index(chain_count_) % chain_span;
    const std::size_t dp = next_index(chain_length_) % pos_span;
    ErrorLocation loc;
    loc.chain = (centre.chain + dc) % chain_count_;
    loc.position = (centre.position + dp) % chain_length_;
    if (std::find(errors.begin(), errors.end(), loc) == errors.end()) {
      errors.push_back(loc);
    }
  }
  return errors;
}

void ErrorInjector::flip_retention(Simulator& sim, const ScanChains& chains,
                                   const std::vector<ErrorLocation>& errors) {
  for (const ErrorLocation& loc : errors) {
    sim.flip_retention(chains.at(loc.chain, loc.position));
  }
}

void ErrorInjector::flip_retention(
    PackedSim& sim, const ScanChains& chains,
    const std::vector<std::vector<ErrorLocation>>& per_lane) {
  RETSCAN_CHECK(per_lane.size() <= PackedSim::lane_count(),
                "ErrorInjector: more lanes than the packed simulator has");
  for (std::size_t lane = 0; lane < per_lane.size(); ++lane) {
    const LaneWord mask = LaneWord{1} << lane;
    for (const ErrorLocation& loc : per_lane[lane]) {
      sim.flip_retention(chains.at(loc.chain, loc.position), mask);
    }
  }
}

void ErrorInjector::flip_flops(Simulator& sim, const ScanChains& chains,
                               const std::vector<ErrorLocation>& errors) {
  std::vector<std::pair<CellId, bool>> updates;
  updates.reserve(errors.size());
  for (const ErrorLocation& loc : errors) {
    const CellId flop = chains.at(loc.chain, loc.position);
    updates.emplace_back(flop, !sim.flop_state(flop));
  }
  sim.set_flop_states(updates);  // one settle for the whole burst
}

void ErrorInjector::flip_chain_data(std::vector<BitVec>& chain_data,
                                    const std::vector<ErrorLocation>& errors) {
  for (const ErrorLocation& loc : errors) {
    RETSCAN_CHECK(loc.chain < chain_data.size() &&
                      loc.position < chain_data[loc.chain].size(),
                  "ErrorInjector: location outside fabric");
    chain_data[loc.chain].flip(loc.position);
  }
}

}  // namespace retscan
