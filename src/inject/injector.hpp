#pragma once

#include <cstddef>
#include <vector>

#include "scan/scan_insert.hpp"
#include "sim/packed_sim.hpp"
#include "sim/simulator.hpp"
#include "util/bitvec.hpp"
#include "util/lfsr.hpp"

namespace retscan {

/// A bit position in the scan fabric: chain index (the paper's "row") and
/// position within the chain (the "column").
struct ErrorLocation {
  std::size_t chain = 0;
  std::size_t position = 0;

  bool operator==(const ErrorLocation& other) const {
    return chain == other.chain && position == other.position;
  }
};

/// Behavioral model of the paper's error-injection circuit (Fig. 6): a row
/// injector and a column injector, both seeded from maximal-length LFSRs,
/// select which flip-flop(s) get flipped during a scan circulation. Single
/// errors (Fig. 7(a)) flip one (row, column); multiple errors (Fig. 7(b))
/// flip several, either scattered or clustered — the clustered variant
/// mirrors the paper's observation that rush-current burst errors land
/// close together.
class ErrorInjector {
 public:
  /// All 64 bits of `seed` contribute to the LFSR starting states (mixed
  /// through Rng::derive_stream), so per-shard campaign seeds — however
  /// they are derived — yield independent injection sequences.
  ErrorInjector(std::size_t chain_count, std::size_t chain_length, std::uint64_t seed = 1);

  std::size_t chain_count() const { return chain_count_; }
  std::size_t chain_length() const { return chain_length_; }

  /// One LFSR-selected location (Fig. 7(a)).
  ErrorLocation random_single();

  /// `count` distinct LFSR-selected locations scattered uniformly.
  std::vector<ErrorLocation> random_multiple(std::size_t count);

  /// `count` distinct locations clustered around a random centre within a
  /// +/- spread window in both chain and position (Fig. 7(b) burst shape).
  std::vector<ErrorLocation> clustered_burst(std::size_t count, std::size_t spread = 2);

  /// Flip the selected retention latches of a simulated design (the
  /// physical effect of wake-up rush current on the balloon latches).
  static void flip_retention(Simulator& sim, const ScanChains& chains,
                             const std::vector<ErrorLocation>& errors);

  /// Batch form: per_lane[b] is the upset set applied to lane b of a
  /// PackedSim — 64 independent corruption trials in one simulated design.
  static void flip_retention(PackedSim& sim, const ScanChains& chains,
                             const std::vector<std::vector<ErrorLocation>>& per_lane);

  /// Flip the selected master flip-flop states directly.
  static void flip_flops(Simulator& sim, const ScanChains& chains,
                         const std::vector<ErrorLocation>& errors);

  /// Flip bits in per-chain data vectors (offline form used by the
  /// behavioral protectors).
  static void flip_chain_data(std::vector<BitVec>& chain_data,
                              const std::vector<ErrorLocation>& errors);

 private:
  std::size_t next_index(std::size_t bound);

  std::size_t chain_count_;
  std::size_t chain_length_;
  Lfsr row_lfsr_;
  Lfsr column_lfsr_;
};

}  // namespace retscan
