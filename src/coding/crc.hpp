#pragma once

#include <cstdint>
#include <string>

#include "util/bitvec.hpp"

namespace retscan {

/// Bit-serial CRC-16 generator, modelling the 16-flop Galois LFSR the state
/// monitoring block implements in hardware. Bits are absorbed MSB-first
/// (the register's top bit XORs with the incoming bit to select the
/// polynomial feedback), which matches the serial scan-out stream order.
///
/// CRC detects *all* error patterns whose polynomial is not a multiple of
/// the generator — in particular every single-bit error, every odd-weight
/// error (for polynomials with (x+1) factor) and every burst up to 16 bits.
/// This is the paper's detection arm: 100% detection of the clustered
/// multi-error patterns rush current produces (Section IV).
class Crc16 {
 public:
  explicit Crc16(std::uint16_t polynomial, std::string name);

  /// CCITT polynomial x^16 + x^12 + x^5 + 1 (0x1021) — the paper's CRC-16.
  static Crc16 ccitt();
  /// IBM/ANSI polynomial x^16 + x^15 + x^2 + 1 (0x8005), for the ablation
  /// comparing generator polynomials.
  static Crc16 ibm();

  const std::string& name() const { return name_; }
  std::uint16_t polynomial() const { return polynomial_; }

  /// Streaming interface (hardware-shaped).
  void reset() { state_ = 0; }
  void shift_bit(bool bit);
  std::uint16_t value() const { return state_; }

  /// One-shot: CRC of a bit sequence from a zero initial state.
  std::uint16_t compute(const BitVec& bits) const;

 private:
  std::uint16_t polynomial_;
  std::uint16_t state_ = 0;
  std::string name_;
};

}  // namespace retscan
