#include "coding/secded.hpp"

#include "util/error.hpp"

namespace retscan {

SecDedCode::SecDedCode(unsigned hamming_parity_bits) : base_(hamming_parity_bits) {}

std::string SecDedCode::name() const {
  return "SEC-DED(" + std::to_string(base_.n() + 1) + "," + std::to_string(base_.k()) + ")";
}

BitVec SecDedCode::encode(const BitVec& data) const {
  RETSCAN_CHECK(data.size() == k(), "SecDedCode::encode: wrong data width");
  BitVec check = base_.encode(data);
  check.push_back(data.parity());
  return check;
}

SecDedDecodeResult SecDedCode::decode(BitVec& data, const BitVec& stored) const {
  RETSCAN_CHECK(stored.size() == check_bits(), "SecDedCode::decode: wrong check width");
  RETSCAN_CHECK(data.size() == k(), "SecDedCode::decode: wrong data width");

  const BitVec hamming_stored = stored.slice(0, base_.r());
  SecDedDecodeResult result;
  result.syndrome = base_.syndrome(data, hamming_stored);
  result.overall_mismatch = data.parity() != stored.get(base_.r());

  if (result.syndrome == 0 && !result.overall_mismatch) {
    result.outcome = SecDedOutcome::Clean;
    return result;
  }
  if (!result.overall_mismatch) {
    // Even error count with a nonzero syndrome: a double (or even-weight
    // multi) error. Touch nothing — this is the miscorrection SEC-DED
    // exists to prevent.
    result.outcome = SecDedOutcome::DoubleError;
    return result;
  }
  // Odd error count. A true single error has a syndrome naming a data
  // position; anything else is >= 3 errors aliasing somewhere unhelpful.
  if (result.syndrome != 0) {
    BitVec scratch = data;
    const HammingDecodeResult inner = base_.decode(scratch, hamming_stored);
    if (inner.outcome == HammingOutcome::Corrected) {
      data = scratch;
      result.outcome = SecDedOutcome::Corrected;
      result.corrected_data_bit = inner.corrected_data_bit;
      return result;
    }
  }
  result.outcome = SecDedOutcome::MultiError;
  return result;
}

}  // namespace retscan
