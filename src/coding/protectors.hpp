#pragma once

#include <cstddef>
#include <vector>

#include <optional>

#include "coding/crc.hpp"
#include "coding/hamming.hpp"
#include "coding/secded.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Behavioral model of the paper's Hamming state-monitoring + correction
/// blocks over a W-chain scan configuration (Fig. 2 / Fig. 5(a)).
///
/// Geometry: W chains of length l, grouped into W/k monitor groups of k
/// adjacent chains. At shift cycle t each group sees the k-bit word formed
/// by its chains' scan-out bits; encoding stores the r parity bits of that
/// word in the group's always-on parity memory (depth l). Decoding
/// recomputes parity, and a nonzero syndrome flips the named bit in the
/// stream before it re-enters the scan-in ports.
class HammingChainProtector {
 public:
  /// `extended` selects SEC-DED operation: one extra stored parity bit per
  /// word, doubles detected instead of miscorrected.
  HammingChainProtector(HammingCode code, std::size_t chain_count, std::size_t chain_length,
                        bool extended = false);

  const HammingCode& code() const { return code_; }
  bool extended() const { return extended_.has_value(); }
  std::size_t chain_count() const { return chain_count_; }
  std::size_t chain_length() const { return chain_length_; }
  std::size_t group_count() const { return group_count_; }
  /// Always-on parity storage in bits: groups * l * (r [+1 if SEC-DED]).
  std::size_t parity_storage_bits() const;

  /// Record parity of the given chain contents (data[c][p], position p as
  /// defined by ScanChains: so emits position l-1 first).
  void encode(const std::vector<BitVec>& chain_data);

  struct DecodeStats {
    std::size_t words_checked = 0;
    std::size_t words_with_error = 0;   ///< nonzero syndrome / mismatch
    std::size_t bits_corrected = 0;     ///< data flips applied
    std::size_t parity_syndromes = 0;   ///< syndrome aliased a parity position
    std::size_t double_errors = 0;      ///< SEC-DED only: flagged doubles
    bool any_error() const { return words_with_error > 0; }
  };

  /// Check chain contents against stored parity and apply single-bit
  /// corrections in place. Multi-bit words miscorrect, exactly like the
  /// hardware (see HammingCode).
  DecodeStats decode_and_correct(std::vector<BitVec>& chain_data) const;

 private:
  BitVec word_at(const std::vector<BitVec>& chain_data, std::size_t group,
                 std::size_t cycle) const;

  HammingCode code_;
  std::optional<SecDedCode> extended_;
  std::size_t chain_count_;
  std::size_t chain_length_;
  std::size_t group_count_;
  /// parity_[group][cycle] = stored check bits (r, or r+1 for SEC-DED).
  std::vector<std::vector<BitVec>> parity_;
  bool encoded_ = false;
};

/// Behavioral model of the CRC-16 state-monitoring blocks: detection only.
/// Each group of `group_width` chains owns one 16-bit signature register;
/// during a pass the group absorbs its chains' scan-out bits cycle-major
/// (cycle 0 chains in order, cycle 1, ...). Mismatch between the stored and
/// recomputed signatures flags the group.
class CrcChainProtector {
 public:
  CrcChainProtector(Crc16 crc, std::size_t chain_count, std::size_t chain_length,
                    std::size_t group_width);

  const Crc16& crc() const { return crc_; }
  std::size_t group_count() const { return group_count_; }
  std::size_t group_width() const { return group_width_; }
  /// Always-on signature storage in bits: groups * 16.
  std::size_t signature_storage_bits() const { return group_count_ * 16; }

  void encode(const std::vector<BitVec>& chain_data);

  struct CheckStats {
    std::size_t groups_checked = 0;
    std::size_t groups_mismatched = 0;
    bool any_error() const { return groups_mismatched > 0; }
  };

  CheckStats check(const std::vector<BitVec>& chain_data) const;

 private:
  std::uint16_t signature_of(const std::vector<BitVec>& chain_data, std::size_t group) const;

  Crc16 crc_;
  std::size_t chain_count_;
  std::size_t chain_length_;
  std::size_t group_width_;
  std::size_t group_count_;
  std::vector<std::uint16_t> signatures_;
  bool encoded_ = false;
};

/// Flat-block Hamming protection of an N-bit state (the Fig. 10 experiment:
/// 1000 flip-flops split into ceil(N/k) words, parity held safely aside).
/// Returns per-sequence correction statistics.
class BlockHammingCodec {
 public:
  BlockHammingCodec(HammingCode code, std::size_t state_bits);

  std::size_t word_count() const { return word_count_; }

  /// Parity of all words of `state`.
  std::vector<BitVec> encode(const BitVec& state) const;

  struct RepairStats {
    std::size_t words_with_error = 0;
    std::size_t bits_corrected = 0;
    std::size_t residual_wrong_bits = 0;  ///< vs the reference state
    bool fully_corrected = false;
  };

  /// Decode/correct `state` in place against `parity`; `reference` is the
  /// pre-corruption state used to score the outcome.
  RepairStats repair(BitVec& state, const std::vector<BitVec>& parity,
                     const BitVec& reference) const;

 private:
  HammingCode code_;
  std::size_t state_bits_;
  std::size_t word_count_;
};

}  // namespace retscan
