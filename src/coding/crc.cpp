#include "coding/crc.hpp"

namespace retscan {

Crc16::Crc16(std::uint16_t polynomial, std::string name)
    : polynomial_(polynomial), name_(std::move(name)) {}

Crc16 Crc16::ccitt() { return Crc16(0x1021, "CRC-16-CCITT"); }
Crc16 Crc16::ibm() { return Crc16(0x8005, "CRC-16-IBM"); }

void Crc16::shift_bit(bool bit) {
  const bool feedback = bit != (((state_ >> 15) & 1u) != 0);
  state_ = static_cast<std::uint16_t>(state_ << 1);
  if (feedback) {
    state_ ^= polynomial_;
  }
}

std::uint16_t Crc16::compute(const BitVec& bits) const {
  Crc16 scratch = *this;
  scratch.reset();
  for (std::size_t i = 0; i < bits.size(); ++i) {
    scratch.shift_bit(bits.get(i));
  }
  return scratch.value();
}

}  // namespace retscan
