#include "coding/misr.hpp"

#include "util/error.hpp"
#include "util/lfsr.hpp"

namespace retscan {

Misr::Misr(unsigned width) : width_(width) {
  RETSCAN_CHECK(width >= 2 && width <= 64, "Misr: width must be in [2, 64]");
  // Reuse the primitive-polynomial table; the taps of a maximal LFSR of
  // this width define the characteristic polynomial. Widths absent from
  // the table reject at construction, matching Lfsr::maximal.
  const Lfsr reference = Lfsr::maximal(width);
  // Recover the tap mask by probing the reference implementation once:
  // feed state with a single walking bit and observe feedback parity.
  feedback_mask_ = 0;
  for (unsigned bit = 0; bit < width; ++bit) {
    Lfsr probe = Lfsr::maximal(width, std::uint64_t{1} << bit);
    probe.step();
    if (probe.state() & 1u) {
      feedback_mask_ |= std::uint64_t{1} << bit;
    }
  }
  reg_mask_ = (width == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

void Misr::absorb(const BitVec& inputs) {
  RETSCAN_CHECK(inputs.size() == width_, "Misr::absorb: input width mismatch");
  const bool feedback = (__builtin_popcountll(state_ & feedback_mask_) & 1) != 0;
  state_ = ((state_ << 1) | static_cast<std::uint64_t>(feedback)) & reg_mask_;
  state_ ^= inputs.to_uint(0, width_);
}

MisrChainProtector::MisrChainProtector(std::size_t chain_count, std::size_t chain_length)
    : chain_count_(chain_count), chain_length_(chain_length) {
  RETSCAN_CHECK(chain_count_ >= 2 && chain_count_ <= 64,
                "MisrChainProtector: chain count must be in [2, 64]");
  RETSCAN_CHECK(chain_length_ > 0, "MisrChainProtector: empty chains");
}

std::uint64_t MisrChainProtector::signature_of(
    const std::vector<BitVec>& chain_data) const {
  RETSCAN_CHECK(chain_data.size() == chain_count_,
                "MisrChainProtector: chain count mismatch");
  Misr misr(static_cast<unsigned>(chain_count_));
  // Absorb in scan-out order: position l-1 first.
  for (std::size_t t = 0; t < chain_length_; ++t) {
    BitVec word(chain_count_);
    for (std::size_t c = 0; c < chain_count_; ++c) {
      word.set(c, chain_data[c].get(chain_length_ - 1 - t));
    }
    misr.absorb(word);
  }
  return misr.signature();
}

void MisrChainProtector::encode(const std::vector<BitVec>& chain_data) {
  reference_ = signature_of(chain_data);
  encoded_ = true;
}

MisrChainProtector::CheckStats MisrChainProtector::check(
    const std::vector<BitVec>& chain_data) const {
  RETSCAN_CHECK(encoded_, "MisrChainProtector: check before encode");
  CheckStats stats;
  stats.mismatch = signature_of(chain_data) != reference_;
  return stats;
}

}  // namespace retscan
