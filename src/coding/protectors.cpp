#include "coding/protectors.hpp"

#include "util/error.hpp"

namespace retscan {

HammingChainProtector::HammingChainProtector(HammingCode code, std::size_t chain_count,
                                             std::size_t chain_length, bool extended)
    : code_(std::move(code)), chain_count_(chain_count), chain_length_(chain_length) {
  RETSCAN_CHECK(chain_count_ > 0 && chain_length_ > 0,
                "HammingChainProtector: empty configuration");
  RETSCAN_CHECK(chain_count_ % code_.k() == 0,
                "HammingChainProtector: chain count must be a multiple of k");
  group_count_ = chain_count_ / code_.k();
  if (extended) {
    extended_.emplace(static_cast<unsigned>(code_.r()));
  }
}

std::size_t HammingChainProtector::parity_storage_bits() const {
  return group_count_ * chain_length_ * (code_.r() + (extended() ? 1 : 0));
}

BitVec HammingChainProtector::word_at(const std::vector<BitVec>& chain_data,
                                      std::size_t group, std::size_t cycle) const {
  BitVec word(code_.k());
  for (std::size_t j = 0; j < code_.k(); ++j) {
    word.set(j, chain_data[group * code_.k() + j].get(cycle));
  }
  return word;
}

void HammingChainProtector::encode(const std::vector<BitVec>& chain_data) {
  RETSCAN_CHECK(chain_data.size() == chain_count_,
                "HammingChainProtector::encode: chain count mismatch");
  for (const auto& chain : chain_data) {
    RETSCAN_CHECK(chain.size() == chain_length_,
                  "HammingChainProtector::encode: chain length mismatch");
  }
  parity_.assign(group_count_, std::vector<BitVec>(chain_length_));
  for (std::size_t g = 0; g < group_count_; ++g) {
    for (std::size_t t = 0; t < chain_length_; ++t) {
      const BitVec word = word_at(chain_data, g, t);
      parity_[g][t] = extended_ ? extended_->encode(word) : code_.encode(word);
    }
  }
  encoded_ = true;
}

HammingChainProtector::DecodeStats HammingChainProtector::decode_and_correct(
    std::vector<BitVec>& chain_data) const {
  RETSCAN_CHECK(encoded_, "HammingChainProtector: decode before encode");
  RETSCAN_CHECK(chain_data.size() == chain_count_,
                "HammingChainProtector::decode: chain count mismatch");
  DecodeStats stats;
  for (std::size_t g = 0; g < group_count_; ++g) {
    for (std::size_t t = 0; t < chain_length_; ++t) {
      BitVec word = word_at(chain_data, g, t);
      ++stats.words_checked;
      if (extended_) {
        const SecDedDecodeResult result = extended_->decode(word, parity_[g][t]);
        switch (result.outcome) {
          case SecDedOutcome::Clean:
            break;
          case SecDedOutcome::Corrected:
            ++stats.words_with_error;
            ++stats.bits_corrected;
            chain_data[g * code_.k() + result.corrected_data_bit].set(
                t, word.get(result.corrected_data_bit));
            break;
          case SecDedOutcome::DoubleError:
            ++stats.words_with_error;
            ++stats.double_errors;
            break;
          case SecDedOutcome::MultiError:
            ++stats.words_with_error;
            ++stats.parity_syndromes;
            break;
        }
        continue;
      }
      const HammingDecodeResult result = code_.decode(word, parity_[g][t]);
      switch (result.outcome) {
        case HammingOutcome::Clean:
          break;
        case HammingOutcome::Corrected:
          ++stats.words_with_error;
          ++stats.bits_corrected;
          chain_data[g * code_.k() + result.corrected_data_bit].set(
              t, word.get(result.corrected_data_bit));
          break;
        case HammingOutcome::ParityPosition:
          ++stats.words_with_error;
          ++stats.parity_syndromes;
          break;
      }
    }
  }
  return stats;
}

CrcChainProtector::CrcChainProtector(Crc16 crc, std::size_t chain_count,
                                     std::size_t chain_length, std::size_t group_width)
    : crc_(std::move(crc)),
      chain_count_(chain_count),
      chain_length_(chain_length),
      group_width_(group_width) {
  RETSCAN_CHECK(chain_count_ > 0 && chain_length_ > 0,
                "CrcChainProtector: empty configuration");
  RETSCAN_CHECK(group_width_ > 0 && chain_count_ % group_width_ == 0,
                "CrcChainProtector: chain count must be a multiple of group width");
  group_count_ = chain_count_ / group_width_;
}

std::uint16_t CrcChainProtector::signature_of(const std::vector<BitVec>& chain_data,
                                              std::size_t group) const {
  Crc16 reg = crc_;
  reg.reset();
  // Cycle-major order: at shift cycle t the group's chains emit the bits at
  // position l-1-t; hardware absorbs them in chain order within the cycle.
  for (std::size_t t = 0; t < chain_length_; ++t) {
    const std::size_t position = chain_length_ - 1 - t;
    for (std::size_t j = 0; j < group_width_; ++j) {
      reg.shift_bit(chain_data[group * group_width_ + j].get(position));
    }
  }
  return reg.value();
}

void CrcChainProtector::encode(const std::vector<BitVec>& chain_data) {
  RETSCAN_CHECK(chain_data.size() == chain_count_,
                "CrcChainProtector::encode: chain count mismatch");
  for (const auto& chain : chain_data) {
    RETSCAN_CHECK(chain.size() == chain_length_,
                  "CrcChainProtector::encode: chain length mismatch");
  }
  signatures_.assign(group_count_, 0);
  for (std::size_t g = 0; g < group_count_; ++g) {
    signatures_[g] = signature_of(chain_data, g);
  }
  encoded_ = true;
}

CrcChainProtector::CheckStats CrcChainProtector::check(
    const std::vector<BitVec>& chain_data) const {
  RETSCAN_CHECK(encoded_, "CrcChainProtector: check before encode");
  RETSCAN_CHECK(chain_data.size() == chain_count_,
                "CrcChainProtector::check: chain count mismatch");
  CheckStats stats;
  for (std::size_t g = 0; g < group_count_; ++g) {
    ++stats.groups_checked;
    if (signature_of(chain_data, g) != signatures_[g]) {
      ++stats.groups_mismatched;
    }
  }
  return stats;
}

BlockHammingCodec::BlockHammingCodec(HammingCode code, std::size_t state_bits)
    : code_(std::move(code)), state_bits_(state_bits) {
  RETSCAN_CHECK(state_bits_ > 0, "BlockHammingCodec: empty state");
  word_count_ = (state_bits_ + code_.k() - 1) / code_.k();
}

std::vector<BitVec> BlockHammingCodec::encode(const BitVec& state) const {
  RETSCAN_CHECK(state.size() == state_bits_, "BlockHammingCodec::encode: size mismatch");
  std::vector<BitVec> parity(word_count_);
  for (std::size_t w = 0; w < word_count_; ++w) {
    BitVec word(code_.k());
    for (std::size_t j = 0; j < code_.k(); ++j) {
      const std::size_t bit = w * code_.k() + j;
      word.set(j, bit < state_bits_ && state.get(bit));
    }
    parity[w] = code_.encode(word);
  }
  return parity;
}

BlockHammingCodec::RepairStats BlockHammingCodec::repair(
    BitVec& state, const std::vector<BitVec>& parity, const BitVec& reference) const {
  RETSCAN_CHECK(state.size() == state_bits_, "BlockHammingCodec::repair: size mismatch");
  RETSCAN_CHECK(parity.size() == word_count_, "BlockHammingCodec::repair: parity mismatch");
  RETSCAN_CHECK(reference.size() == state_bits_,
                "BlockHammingCodec::repair: reference mismatch");
  RepairStats stats;
  for (std::size_t w = 0; w < word_count_; ++w) {
    BitVec word(code_.k());
    for (std::size_t j = 0; j < code_.k(); ++j) {
      const std::size_t bit = w * code_.k() + j;
      word.set(j, bit < state_bits_ && state.get(bit));
    }
    const HammingDecodeResult result = code_.decode(word, parity[w]);
    if (result.outcome != HammingOutcome::Clean) {
      ++stats.words_with_error;
    }
    if (result.outcome == HammingOutcome::Corrected) {
      ++stats.bits_corrected;
      const std::size_t bit = w * code_.k() + result.corrected_data_bit;
      // Padding bits beyond the state are virtual zeros; a "correction"
      // aimed there cannot be applied (treated like a parity-position
      // syndrome by hardware).
      if (bit < state_bits_) {
        state.set(bit, word.get(result.corrected_data_bit));
      }
    }
  }
  stats.residual_wrong_bits = state.hamming_distance(reference);
  stats.fully_corrected = stats.residual_wrong_bits == 0;
  return stats;
}

}  // namespace retscan
