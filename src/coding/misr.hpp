#pragma once

#include <cstdint>
#include <vector>

#include "util/bitvec.hpp"

namespace retscan {

/// Multiple-input signature register — the classic BIST compaction
/// structure and the natural alternative to the paper's CRC-16 detection
/// arm. A W-bit LFSR absorbs W bits per cycle (one per scan chain, XORed
/// into the corresponding stage), so a single MISR the width of the chain
/// count replaces the CRC block with zero serialization logic. The cost of
/// compaction is *aliasing*: a multi-bit error pattern maps to the same
/// signature with probability ~2^-W, so the register width is a direct
/// reliability knob (see bench_ablation_misr).
class Misr {
 public:
  /// width in [2, 64]; characteristic polynomial from the maximal-length
  /// LFSR tap table.
  explicit Misr(unsigned width);

  unsigned width() const { return width_; }
  std::uint64_t signature() const { return state_; }
  void reset() { state_ = 0; }

  /// One clock: shift with polynomial feedback, then XOR the parallel
  /// inputs (inputs.size() == width) into the stages.
  void absorb(const BitVec& inputs);

 private:
  unsigned width_;
  std::uint64_t state_ = 0;
  std::uint64_t feedback_mask_;
  std::uint64_t reg_mask_;
};

/// MISR-based state monitoring over a W-chain scan configuration:
/// detection-only, like CrcChainProtector, but with a single register of
/// width W and signature storage of W bits (vs CRC's per-group 16+16).
class MisrChainProtector {
 public:
  MisrChainProtector(std::size_t chain_count, std::size_t chain_length);

  std::size_t chain_count() const { return chain_count_; }
  /// Always-on storage: the W-bit reference signature.
  std::size_t signature_storage_bits() const { return chain_count_; }

  void encode(const std::vector<BitVec>& chain_data);

  struct CheckStats {
    bool mismatch = false;
    bool any_error() const { return mismatch; }
  };
  CheckStats check(const std::vector<BitVec>& chain_data) const;

 private:
  std::uint64_t signature_of(const std::vector<BitVec>& chain_data) const;

  std::size_t chain_count_;
  std::size_t chain_length_;
  std::uint64_t reference_ = 0;
  bool encoded_ = false;
};

}  // namespace retscan
