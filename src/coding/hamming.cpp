#include "coding/hamming.hpp"

#include <limits>

#include "util/error.hpp"

namespace retscan {

namespace {
constexpr std::size_t kNoData = std::numeric_limits<std::size_t>::max();

bool is_power_of_two(unsigned v) { return v != 0 && (v & (v - 1)) == 0; }
}  // namespace

HammingCode::HammingCode(unsigned parity_bits) : r_(parity_bits) {
  RETSCAN_CHECK(parity_bits >= 2 && parity_bits <= 16, "HammingCode: r must be in [2, 16]");
  n_ = (std::size_t{1} << r_) - 1;
  k_ = n_ - r_;
  position_to_data_.assign(n_ + 1, kNoData);
  for (unsigned pos = 1; pos <= n_; ++pos) {
    if (!is_power_of_two(pos)) {
      position_to_data_[pos] = data_positions_.size();
      data_positions_.push_back(pos);
    }
  }
}

std::string HammingCode::name() const {
  return "Hamming(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
}

double HammingCode::redundancy() const {
  return static_cast<double>(n_ - k_) / static_cast<double>(k_);
}

BitVec HammingCode::encode(const BitVec& data) const {
  RETSCAN_CHECK(data.size() == k_, "HammingCode::encode: wrong data width");
  BitVec parity(r_);
  for (std::size_t i = 0; i < k_; ++i) {
    if (!data.get(i)) {
      continue;
    }
    const unsigned pos = data_positions_[i];
    for (unsigned b = 0; b < r_; ++b) {
      if ((pos >> b) & 1u) {
        parity.flip(b);
      }
    }
  }
  return parity;
}

unsigned HammingCode::syndrome(const BitVec& data, const BitVec& stored_parity) const {
  RETSCAN_CHECK(stored_parity.size() == r_, "HammingCode::syndrome: wrong parity width");
  const BitVec recomputed = encode(data);
  unsigned s = 0;
  for (unsigned b = 0; b < r_; ++b) {
    if (recomputed.get(b) != stored_parity.get(b)) {
      s |= 1u << b;
    }
  }
  return s;
}

HammingDecodeResult HammingCode::decode(BitVec& data, const BitVec& stored_parity) const {
  HammingDecodeResult result;
  result.syndrome = syndrome(data, stored_parity);
  if (result.syndrome == 0) {
    result.outcome = HammingOutcome::Clean;
    return result;
  }
  const std::size_t data_index =
      result.syndrome <= n_ ? position_to_data_[result.syndrome] : kNoData;
  if (data_index == kNoData) {
    // Syndrome names a parity position: detected, nothing to flip in data.
    result.outcome = HammingOutcome::ParityPosition;
    return result;
  }
  data.flip(data_index);
  result.outcome = HammingOutcome::Corrected;
  result.corrected_data_bit = data_index;
  return result;
}

unsigned HammingCode::data_position(std::size_t i) const {
  RETSCAN_CHECK(i < k_, "HammingCode::data_position: index out of range");
  return data_positions_[i];
}

}  // namespace retscan
