#pragma once

#include <string>

#include "coding/hamming.hpp"
#include "util/bitvec.hpp"

namespace retscan {

/// Outcome of one SEC-DED word decode.
enum class SecDedOutcome {
  Clean,
  Corrected,    ///< single data error located and flipped
  DoubleError,  ///< even-weight multi-error: detected, nothing touched
  MultiError,   ///< odd-weight >= 3 errors: detected, nothing touched
};

struct SecDedDecodeResult {
  SecDedOutcome outcome = SecDedOutcome::Clean;
  std::size_t corrected_data_bit = 0;  ///< valid when Corrected
  unsigned syndrome = 0;
  bool overall_mismatch = false;
};

/// Extended Hamming (SEC-DED) code: Hamming(2^r-1, 2^r-1-r) plus one
/// overall parity bit over the data word. The monitoring architecture
/// stores all r+1 check bits in the always-on parity memory, so only data
/// bits are exposed to rush-current upsets.
///
/// Why this matters here: the paper's experiment 2 shows clustered double
/// errors defeat plain SEC — worse, SEC *miscorrects* them, silently
/// adding a third wrong bit that only the CRC arm catches. SEC-DED
/// distinguishes single from double errors directly: singles are repaired,
/// doubles are flagged without touching the data, at the cost of one more
/// stored bit per word and one wider XOR tree per group. This is the
/// natural extension of the paper's scheme and is implemented both
/// behaviorally (here) and structurally (core/monitor_gen).
class SecDedCode {
 public:
  explicit SecDedCode(unsigned hamming_parity_bits);

  static SecDedCode s8_4() { return SecDedCode(3); }
  static SecDedCode s22_16() { return SecDedCode(5); }  // shortened-family feel

  const HammingCode& base() const { return base_; }
  std::size_t k() const { return base_.k(); }
  /// Stored check bits per word: r Hamming + 1 overall.
  std::size_t check_bits() const { return base_.r() + 1; }
  std::string name() const;

  /// Check bits of a k-bit data word: Hamming parity then overall parity.
  BitVec encode(const BitVec& data) const;

  /// Decode against stored check bits; corrects only genuine single
  /// errors, never miscorrects doubles.
  SecDedDecodeResult decode(BitVec& data, const BitVec& stored) const;

 private:
  HammingCode base_;
};

}  // namespace retscan
