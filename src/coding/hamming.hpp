#pragma once

#include <cstddef>
#include <string>

#include "util/bitvec.hpp"

namespace retscan {

/// Outcome of one Hamming word decode.
enum class HammingOutcome {
  Clean,            ///< syndrome zero: no error detected
  Corrected,        ///< syndrome named a data position; bit flipped
  ParityPosition,   ///< syndrome named a parity position: error detected but
                    ///< no data bit was changed (with parity stored in the
                    ///< always-on monitor memory this indicates a multi-bit
                    ///< data error whose syndrome aliases a parity position)
};

struct HammingDecodeResult {
  HammingOutcome outcome = HammingOutcome::Clean;
  /// Data bit index that was flipped (valid when outcome == Corrected).
  std::size_t corrected_data_bit = 0;
  /// Raw syndrome value (codeword position, 0 = clean).
  unsigned syndrome = 0;
};

/// Single-error-correcting Hamming code of length n = 2^r - 1 with
/// k = n - r data bits, in the standard positional layout: codeword
/// positions are numbered 1..n, parity bits sit at power-of-two positions,
/// and the syndrome of a single error equals its position.
///
/// The paper evaluates (7,4), (15,11), (31,26) and (63,57) — r = 3..6.
/// In the monitoring architecture the r parity bits per word are stored in
/// always-on monitor memory, so decode checks received *data* against
/// stored parity. Like any SEC code, words with two or more errors produce
/// a nonzero syndrome that names the wrong position: decode then
/// *miscorrects* (or aliases a parity position). The library reproduces
/// this faithfully — it is the mechanism behind the paper's finding that
/// clustered multi-bit errors are detected (by CRC) but not correctable by
/// Hamming (Section IV experiment 2, Fig. 10).
class HammingCode {
 public:
  /// r in [2, 16].
  explicit HammingCode(unsigned parity_bits);

  static HammingCode h7_4() { return HammingCode(3); }
  static HammingCode h15_11() { return HammingCode(4); }
  static HammingCode h31_26() { return HammingCode(5); }
  static HammingCode h63_57() { return HammingCode(6); }

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }
  std::size_t r() const { return r_; }
  std::string name() const;

  /// Redundancy (n-k)/k — the paper's Table III "cap(%)" column, the
  /// fraction of additional storage and (loosely) the per-word correction
  /// strength per data bit.
  double redundancy() const;

  /// Compute the r parity bits of a k-bit data word.
  BitVec encode(const BitVec& data) const;

  /// Check a (possibly corrupted) k-bit data word against stored parity and
  /// correct a single-bit data error in place.
  HammingDecodeResult decode(BitVec& data, const BitVec& stored_parity) const;

  /// Syndrome of received data vs stored parity without correcting.
  unsigned syndrome(const BitVec& data, const BitVec& stored_parity) const;

  /// Codeword position (1-based) of data bit `i`; positions skip powers of
  /// two. Exposed for the structural monitor generator.
  unsigned data_position(std::size_t i) const;

 private:
  unsigned r_;
  std::size_t n_;
  std::size_t k_;
  std::vector<unsigned> data_positions_;         // data index -> codeword position
  std::vector<std::size_t> position_to_data_;    // codeword position -> data index (or npos)
};

}  // namespace retscan
