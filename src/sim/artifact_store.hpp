#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>

#include "sim/compiled_netlist.hpp"

namespace retscan {

/// FNV-1a 64 over everything a CompiledNetlist is a pure function of: the
/// module name, net count, port lists and every cell's (type, domain,
/// fanin, out) in declaration order. Two netlists with equal fingerprints
/// lower to byte-identical instruction streams, which is what makes an
/// on-disk artifact keyed by this hash safe to substitute for a fresh
/// compile.
std::uint64_t netlist_structure_fingerprint(const Netlist& netlist);

/// Serialize a compiled netlist as a versioned binary artifact (the PR 8
/// journal format style: fixed-width host-endian fields, CRC'd header +
/// CRC'd body). `fingerprint` is the source netlist's structure fingerprint
/// and is embedded in the header so a foreign artifact can never be loaded
/// against the wrong design. Throws retscan::Error on I/O failure.
void write_compiled_artifact(std::ostream& out, const CompiledNetlist& compiled,
                             std::uint64_t fingerprint);

/// Parse and validate an artifact image. Every rejection names the field
/// that failed (magic, format, lane_words, header crc, netlist_fingerprint,
/// body size, body crc) so a corrupt or foreign file is diagnosable — and
/// the caller recompiles instead of trusting it. `expect_fingerprint` is
/// the structure fingerprint of the netlist the caller wants to simulate.
std::shared_ptr<const CompiledNetlist> read_compiled_artifact(
    std::istream& in, std::uint64_t expect_fingerprint);

/// On-disk cache of compiled netlists, one artifact file per structure
/// fingerprint (`<dir>/<hex fingerprint>.rsca`). Writes go through a
/// temp-file + atomic-rename so a crashed writer can never leave a torn
/// artifact behind; a torn/corrupt/foreign file is rejected by
/// read_compiled_artifact and silently recompiled (the rejection is
/// counted, never fatal). Thread-safe.
class CompiledArtifactStore {
 public:
  /// Creates `dir` (and parents) if missing. Throws retscan::Error when the
  /// path exists but is not a directory.
  explicit CompiledArtifactStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Path of the artifact file for one fingerprint.
  std::string artifact_path(std::uint64_t fingerprint) const;

  /// Load the artifact for `fingerprint`, or nullptr when missing or
  /// rejected (rejections are counted in stats().rejected).
  std::shared_ptr<const CompiledNetlist> load(std::uint64_t fingerprint);

  /// Persist a compiled netlist under `fingerprint` (atomic rename;
  /// concurrent writers race benignly — last rename wins, both images are
  /// valid). I/O failures are counted, not thrown: the cache is an
  /// accelerator, never a correctness dependency.
  void store(std::uint64_t fingerprint, const CompiledNetlist& compiled);

  /// The main entry: artifact hit → deserialized stream, otherwise compile
  /// from `netlist` and persist the result for the next process.
  std::shared_ptr<const CompiledNetlist> load_or_compile(const Netlist& netlist);

  struct Stats {
    std::uint64_t hits = 0;      ///< artifacts loaded successfully
    std::uint64_t misses = 0;    ///< fingerprint had no artifact file
    std::uint64_t rejected = 0;  ///< file present but corrupt/foreign
    std::uint64_t stored = 0;    ///< artifacts written
    std::uint64_t write_errors = 0;
  };
  Stats stats() const;

 private:
  std::string dir_;
  mutable std::mutex mutex_;
  Stats stats_;
};

/// Process-global artifact store consulted by Netlist::compiled(): when
/// installed, every lazy compile in the process (sessions, testbenches,
/// fault frames) first tries the store and persists on miss. Install with
/// nullptr to uninstall. The RETSCAN_ARTIFACT_DIR environment key
/// auto-installs a store on first use (strictly optional — unset means no
/// store, and a dir that cannot be created warns once and stays off).
void install_artifact_store(std::shared_ptr<CompiledArtifactStore> store);
std::shared_ptr<CompiledArtifactStore> installed_artifact_store();

}  // namespace retscan
