#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace retscan {

double ActivityReport::average_power_mw(double clock_period_ns) const {
  if (steps == 0 || clock_period_ns <= 0.0) {
    return 0.0;
  }
  const double total_time_ns = static_cast<double>(steps) * clock_period_ns;
  // pJ / ns == mW.
  return dynamic_energy_pj / total_time_ns;
}

Simulator::Simulator(const Netlist& netlist)
    : engine_(netlist, LaneWord{1}) {}  // activity accounted on lane 0 only

void Simulator::set_input(const std::string& port_name, bool value) {
  set_input(engine_.input_net(port_name), value);
}

void Simulator::set_input(NetId net, bool value) {
  engine_.check_input_net(net);
  engine_.set_net(net, lane_broadcast(value));
}

bool Simulator::input(NetId net) const { return net_value(net); }

void Simulator::reset() { engine_.reset(); }

void Simulator::eval() { engine_.eval(); }

void Simulator::step() { engine_.step(); }

void Simulator::step_n(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    step();
  }
}

bool Simulator::net_value(NetId net) const {
  RETSCAN_CHECK(net < engine_.net_count(), "Simulator::net_value: bad net");
  return (engine_.net(net) & 1u) != 0;
}

bool Simulator::output(const std::string& port_name) const {
  return net_value(netlist().output_net(port_name));
}

bool Simulator::flop_state(CellId flop) const {
  RETSCAN_CHECK(flop < netlist().cell_count() && cell_is_flop(netlist().cell(flop).type),
                "Simulator::flop_state: not a flop");
  return (engine_.flop(flop) & 1u) != 0;
}

void Simulator::set_flop_state(CellId flop, bool value) {
  RETSCAN_CHECK(flop < netlist().cell_count() && cell_is_flop(netlist().cell(flop).type),
                "Simulator::set_flop_state: not a flop");
  engine_.set_flop(flop, lane_broadcast(value));
}

BitVec Simulator::flop_states() const {
  const auto& flops = engine_.flop_cells();
  BitVec states(flops.size());
  for (std::size_t i = 0; i < flops.size(); ++i) {
    states.set(i, (engine_.flop(flops[i]) & 1u) != 0);
  }
  return states;
}

void Simulator::set_flop_states(const BitVec& states) {
  const auto& flops = engine_.flop_cells();
  RETSCAN_CHECK(states.size() == flops.size(), "Simulator::set_flop_states: size mismatch");
  for (std::size_t i = 0; i < flops.size(); ++i) {
    engine_.set_flop_raw(flops[i], lane_broadcast(states.get(i)));
  }
  engine_.commit_sequential_outputs();
  engine_.eval();
}

void Simulator::set_flop_states(const std::vector<std::pair<CellId, bool>>& updates) {
  for (const auto& [flop, value] : updates) {
    RETSCAN_CHECK(flop < netlist().cell_count() && cell_is_flop(netlist().cell(flop).type),
                  "Simulator::set_flop_states: not a flop");
    engine_.set_flop_raw(flop, lane_broadcast(value));
  }
  engine_.commit_sequential_outputs();
  engine_.eval();
}

bool Simulator::retention_state(CellId flop) const {
  RETSCAN_CHECK(flop < netlist().cell_count() && netlist().cell(flop).type == CellType::Rdff,
                "Simulator::retention_state: not an Rdff");
  return (engine_.retention(flop) & 1u) != 0;
}

void Simulator::set_retention_state(CellId flop, bool value) {
  RETSCAN_CHECK(flop < netlist().cell_count() && netlist().cell(flop).type == CellType::Rdff,
                "Simulator::set_retention_state: not an Rdff");
  engine_.set_retention(flop, lane_broadcast(value));
}

void Simulator::flip_retention(CellId flop) {
  set_retention_state(flop, !retention_state(flop));
}

BitVec Simulator::retention_states() const {
  const auto& rdffs = engine_.rdff_cells();
  BitVec states(rdffs.size());
  for (std::size_t i = 0; i < rdffs.size(); ++i) {
    states.set(i, (engine_.retention(rdffs[i]) & 1u) != 0);
  }
  return states;
}

void Simulator::power_off(DomainId domain, Rng* rng) {
  engine_.power_off(domain, rng, /*per_lane_garbage=*/false);
}

void Simulator::power_on(DomainId domain) { engine_.power_on(domain); }

bool Simulator::domain_powered(DomainId domain) const {
  return engine_.domain_powered(domain);
}

void Simulator::reset_activity() { engine_.reset_activity(); }

ActivityReport Simulator::activity(const TechLibrary& tech) const {
  ActivityReport report;
  report.steps = engine_.steps();
  const auto& toggles = engine_.toggles();
  double energy = 0.0;
  for (CellId id = 0; id < netlist().cell_count(); ++id) {
    report.output_toggles += toggles[id];
    energy += static_cast<double>(toggles[id]) *
              tech.physics(netlist().cell(id).type).switch_energy_pj;
  }
  // Clock-tree/pin energy: every powered sequential cell pays a fraction of
  // its switching energy on each clock edge it receives.
  double clock_energy = 0.0;
  if (engine_.clocked_cell_edges() > 0) {
    // Average sequential switch energy weighted by actual edges delivered.
    // For simplicity each edge is charged at the Sdff rate; the netlists in
    // this library are dominated by scan flops, for which this is exact.
    clock_energy = static_cast<double>(engine_.clocked_cell_edges()) *
                   kClockPinEnergyFraction * tech.physics(CellType::Sdff).switch_energy_pj;
  }
  report.dynamic_energy_pj = energy + clock_energy;
  return report;
}

}  // namespace retscan
