#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace retscan {

double ActivityReport::average_power_mw(double clock_period_ns) const {
  if (steps == 0 || clock_period_ns <= 0.0) {
    return 0.0;
  }
  const double total_time_ns = static_cast<double>(steps) * clock_period_ns;
  // pJ / ns == mW.
  return dynamic_energy_pj / total_time_ns;
}

Simulator::Simulator(const Netlist& netlist)
    : netlist_(&netlist),
      comb_order_(netlist.combinational_order()),
      net_values_(netlist.net_count(), 0),
      flop_state_(netlist.cell_count(), 0),
      retention_state_(netlist.cell_count(), 0),
      prev_retain_(netlist.cell_count(), 0),
      toggles_(netlist.cell_count(), 0) {
  DomainId max_domain = 0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    max_domain = std::max(max_domain, netlist.cell(id).domain);
  }
  domain_powered_.assign(static_cast<std::size_t>(max_domain) + 1, 1);
  for (const CellId input : netlist.inputs()) {
    input_by_name_.emplace(netlist.cell(input).name, netlist.cell(input).out);
  }
  reset();
}

void Simulator::set_input(const std::string& port_name, bool value) {
  const auto it = input_by_name_.find(port_name);
  RETSCAN_CHECK(it != input_by_name_.end(), "Simulator: no input port " + port_name);
  set_input(it->second, value);
}

void Simulator::set_input(NetId net, bool value) {
  RETSCAN_CHECK(net < net_values_.size(), "Simulator::set_input: bad net");
  const CellId drv = netlist_->driver(net);
  RETSCAN_CHECK(drv != kNullCell && netlist_->cell(drv).type == CellType::Input,
                "Simulator::set_input: net is not a primary input");
  net_values_[net] = value ? 1 : 0;
}

bool Simulator::input(NetId net) const { return net_value(net); }

void Simulator::reset() {
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  std::fill(retention_state_.begin(), retention_state_.end(), 0);
  std::fill(prev_retain_.begin(), prev_retain_.end(), 0);
  std::fill(domain_powered_.begin(), domain_powered_.end(), 1);
  for (auto& v : net_values_) {
    v = 0;
  }
  commit_sequential_outputs();
  eval();
}

bool Simulator::eval_cell(const Cell& cell) const {
  auto in = [&](std::size_t pin) { return net_values_[cell.fanin[pin]] != 0; };
  switch (cell.type) {
    case CellType::Buf: return in(0);
    case CellType::Not: return !in(0);
    case CellType::And2: return in(0) && in(1);
    case CellType::Or2: return in(0) || in(1);
    case CellType::Xor2: return in(0) != in(1);
    case CellType::Nand2: return !(in(0) && in(1));
    case CellType::Nor2: return !(in(0) || in(1));
    case CellType::Xnor2: return in(0) == in(1);
    case CellType::Mux2: return in(0) ? in(2) : in(1);
    default:
      RETSCAN_CHECK(false, "Simulator::eval_cell: not a combinational cell");
      return false;
  }
}

void Simulator::eval() {
  for (const CellId id : comb_order_) {
    const Cell& c = netlist_->cell(id);
    if (c.type == CellType::Output) {
      continue;  // port sink, no logic
    }
    const bool powered = domain_powered_[c.domain] != 0;
    const std::uint8_t value = (powered && eval_cell(c)) ? 1 : 0;
    if (net_values_[c.out] != value) {
      net_values_[c.out] = value;
      ++toggles_[id];
    }
  }
}

void Simulator::commit_sequential_outputs() {
  for (CellId id = 0; id < netlist_->cell_count(); ++id) {
    const Cell& c = netlist_->cell(id);
    if (!cell_is_sequential(c.type)) {
      if (c.type == CellType::Const1 && net_values_[c.out] == 0) {
        net_values_[c.out] = 1;
        ++toggles_[id];
      }
      continue;
    }
    const bool powered = domain_powered_[c.domain] != 0;
    const std::uint8_t value = powered ? flop_state_[id] : 0;
    if (net_values_[c.out] != value) {
      net_values_[c.out] = value;
      ++toggles_[id];
    }
  }
}

void Simulator::step() {
  eval();
  // Capture phase: compute next states from settled nets.
  std::vector<std::pair<CellId, std::uint8_t>> next;
  next.reserve(64);
  for (CellId id = 0; id < netlist_->cell_count(); ++id) {
    const Cell& c = netlist_->cell(id);
    if (!cell_is_sequential(c.type)) {
      continue;
    }
    const bool powered = domain_powered_[c.domain] != 0;
    auto in = [&](std::size_t pin) { return net_values_[c.fanin[pin]] != 0; };
    switch (c.type) {
      case CellType::Dff: {
        if (powered) {
          next.emplace_back(id, in(0) ? 1 : 0);
          ++clocked_cell_edges_;
        }
        break;
      }
      case CellType::Sdff: {
        if (powered) {
          const bool d = in(2) ? in(1) : in(0);  // SE ? SI : D
          next.emplace_back(id, d ? 1 : 0);
          ++clocked_cell_edges_;
        }
        break;
      }
      case CellType::Rdff: {
        const bool retain = in(3);
        // Slave balloon latch is always-on and samples the master exactly
        // once, on the RETAIN rising edge (the save event). It must NOT
        // re-sample while RETAIN stays high through wake-up — at that point
        // the master holds garbage and the latch is the only good copy.
        if (retain && prev_retain_[id] == 0 && powered) {
          retention_state_[id] = flop_state_[id];
        }
        if (powered) {
          if (prev_retain_[id] != 0 && !retain) {
            // Restore edge: master reloads from the balloon latch.
            next.emplace_back(id, retention_state_[id]);
          } else if (!retain) {
            const bool d = in(2) ? in(1) : in(0);  // SE ? SI : D
            next.emplace_back(id, d ? 1 : 0);
          }
          // While RETAIN=1 the master holds (clock gated during save).
          ++clocked_cell_edges_;
        }
        prev_retain_[id] = retain ? 1 : 0;
        break;
      }
      case CellType::LatchL: {
        if (powered) {
          const bool en = in(1);
          if (en) {
            next.emplace_back(id, in(0) ? 1 : 0);
          }
          ++clocked_cell_edges_;
        }
        break;
      }
      default:
        break;
    }
  }
  for (const auto& [id, value] : next) {
    flop_state_[id] = value;
  }
  ++steps_;
  commit_sequential_outputs();
  eval();
}

void Simulator::step_n(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    step();
  }
}

bool Simulator::net_value(NetId net) const {
  RETSCAN_CHECK(net < net_values_.size(), "Simulator::net_value: bad net");
  return net_values_[net] != 0;
}

bool Simulator::output(const std::string& port_name) const {
  return net_value(netlist_->output_net(port_name));
}

bool Simulator::flop_state(CellId flop) const {
  RETSCAN_CHECK(flop < flop_state_.size() && cell_is_flop(netlist_->cell(flop).type),
                "Simulator::flop_state: not a flop");
  return flop_state_[flop] != 0;
}

void Simulator::set_flop_state(CellId flop, bool value) {
  RETSCAN_CHECK(flop < flop_state_.size() && cell_is_flop(netlist_->cell(flop).type),
                "Simulator::set_flop_state: not a flop");
  flop_state_[flop] = value ? 1 : 0;
  commit_sequential_outputs();
}

BitVec Simulator::flop_states() const {
  const auto flops = netlist_->flops();
  BitVec states(flops.size());
  for (std::size_t i = 0; i < flops.size(); ++i) {
    states.set(i, flop_state_[flops[i]] != 0);
  }
  return states;
}

void Simulator::set_flop_states(const BitVec& states) {
  const auto flops = netlist_->flops();
  RETSCAN_CHECK(states.size() == flops.size(), "Simulator::set_flop_states: size mismatch");
  for (std::size_t i = 0; i < flops.size(); ++i) {
    flop_state_[flops[i]] = states.get(i) ? 1 : 0;
  }
  commit_sequential_outputs();
  eval();
}

bool Simulator::retention_state(CellId flop) const {
  RETSCAN_CHECK(flop < retention_state_.size() && netlist_->cell(flop).type == CellType::Rdff,
                "Simulator::retention_state: not an Rdff");
  return retention_state_[flop] != 0;
}

void Simulator::set_retention_state(CellId flop, bool value) {
  RETSCAN_CHECK(flop < retention_state_.size() && netlist_->cell(flop).type == CellType::Rdff,
                "Simulator::set_retention_state: not an Rdff");
  retention_state_[flop] = value ? 1 : 0;
}

void Simulator::flip_retention(CellId flop) {
  set_retention_state(flop, !retention_state(flop));
}

BitVec Simulator::retention_states() const {
  BitVec states(0);
  for (const CellId flop : netlist_->flops()) {
    if (netlist_->cell(flop).type == CellType::Rdff) {
      states.push_back(retention_state_[flop] != 0);
    }
  }
  return states;
}

void Simulator::power_off(DomainId domain, Rng* rng) {
  RETSCAN_CHECK(domain < domain_powered_.size(), "Simulator::power_off: bad domain");
  RETSCAN_CHECK(domain != kAlwaysOnDomain, "Simulator: cannot power off the always-on domain");
  domain_powered_[domain] = 0;
  for (CellId id = 0; id < netlist_->cell_count(); ++id) {
    const Cell& c = netlist_->cell(id);
    if (c.domain == domain && cell_is_sequential(c.type)) {
      // Master state is physically lost. Retention latches are always-on by
      // construction and keep their contents.
      flop_state_[id] = (rng != nullptr && rng->next_bool(0.5)) ? 1 : 0;
    }
  }
  commit_sequential_outputs();
  eval();
}

void Simulator::power_on(DomainId domain) {
  RETSCAN_CHECK(domain < domain_powered_.size(), "Simulator::power_on: bad domain");
  domain_powered_[domain] = 1;
  commit_sequential_outputs();
  eval();
}

bool Simulator::domain_powered(DomainId domain) const {
  RETSCAN_CHECK(domain < domain_powered_.size(), "Simulator::domain_powered: bad domain");
  return domain_powered_[domain] != 0;
}

void Simulator::reset_activity() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  steps_ = 0;
  clocked_cell_edges_ = 0;
}

ActivityReport Simulator::activity(const TechLibrary& tech) const {
  ActivityReport report;
  report.steps = steps_;
  double energy = 0.0;
  for (CellId id = 0; id < netlist_->cell_count(); ++id) {
    report.output_toggles += toggles_[id];
    energy += static_cast<double>(toggles_[id]) *
              tech.physics(netlist_->cell(id).type).switch_energy_pj;
  }
  // Clock-tree/pin energy: every powered sequential cell pays a fraction of
  // its switching energy on each clock edge it receives.
  double clock_energy = 0.0;
  if (clocked_cell_edges_ > 0) {
    // Average sequential switch energy weighted by actual edges delivered.
    // For simplicity each edge is charged at the Sdff rate; the netlists in
    // this library are dominated by scan flops, for which this is exact.
    clock_energy = static_cast<double>(clocked_cell_edges_) * kClockPinEnergyFraction *
                   tech.physics(CellType::Sdff).switch_energy_pj;
  }
  report.dynamic_energy_pj = energy + clock_energy;
  return report;
}

}  // namespace retscan
