#pragma once

#include <cstdint>
#include <string_view>

namespace retscan {

/// How an engine settles the combinational logic between state changes.
///
///  * Sweep — every settle evaluates the full compiled instruction stream
///    (the PR 3 kernel). Cost is O(circuit) per settle regardless of how
///    little changed; still the fastest choice for high-activity phases
///    (scan circulation toggles every chain flop every cycle).
///  * Event — dirty-net worklist: settles seed from the source slots that
///    actually changed since the last settle and propagate level-by-level
///    through the readers CSR, evaluating only instructions whose inputs
///    changed. Falls back to one full sweep when the worklist crosses the
///    activity threshold. Bit-identical to Sweep by construction (and by
///    test) — instructions are pure functions of their inputs, so skipping
///    one whose inputs did not change cannot alter any value.
///  * Auto — start on the event path and measure: after a short probe
///    window the engine commits to Event or Sweep for the rest of its run,
///    based on the observed dirty fraction and fallback rate. This is the
///    per-campaign "pick from measured activity" default of the schedule
///    API knob.
enum class Schedule : std::uint8_t {
  Auto,
  Sweep,
  Event,
};

/// Canonical spellings, matching the spec-file / CLI / RETSCAN_SCHEDULE
/// values (same convention as the campaign enums in retscan/campaign.hpp).
inline const char* to_string(Schedule schedule) {
  switch (schedule) {
    case Schedule::Auto:  return "auto";
    case Schedule::Sweep: return "sweep";
    case Schedule::Event: return "event";
  }
  return "?";
}

inline bool from_string(std::string_view text, Schedule& out) {
  for (const Schedule value : {Schedule::Auto, Schedule::Sweep, Schedule::Event}) {
    if (text == to_string(value)) {
      out = value;
      return true;
    }
  }
  return false;
}

/// Activity telemetry accumulated by a SimEngine across its settles and
/// drained with take_schedule_telemetry(). Counters are pure sums, so
/// per-shard telemetry merges in shard order exactly like ValidationStats
/// (but lives outside it: telemetry describes the execution, not the
/// campaign outcome, and must not participate in the bit-identical
/// statistics contract).
struct ScheduleTelemetry {
  /// Settles completed by the dirty-net worklist alone.
  std::uint64_t event_sweeps = 0;
  /// Settles evaluated by a full instruction sweep (Sweep/Auto-sweep mode,
  /// forced resyncs after power/reset events, and threshold fallbacks).
  std::uint64_t full_sweeps = 0;
  /// Subset of full_sweeps that started on the worklist and crossed the
  /// activity threshold mid-settle.
  std::uint64_t full_sweep_fallbacks = 0;
  /// Instructions evaluated by worklist passes (including the partial work
  /// of settles that later fell back).
  std::uint64_t event_instrs = 0;
  /// Instructions evaluated by full sweeps.
  std::uint64_t sweep_instrs = 0;
  /// Instruction-stream size summed over every settle — the denominator
  /// that turns the two instruction counters into a dirty fraction.
  std::uint64_t instr_capacity = 0;

  std::uint64_t settles() const { return event_sweeps + full_sweeps; }

  /// Average fraction of the compiled instruction stream evaluated per
  /// settle: 1.0 in pure Sweep mode, near the circuit's true activity on
  /// the event path (fallback settles count their wasted partial worklist
  /// work on top of the full sweep, so they can push a settle above 1).
  double avg_dirty_fraction() const {
    if (instr_capacity == 0) {
      return 0.0;
    }
    return static_cast<double>(event_instrs + sweep_instrs) /
           static_cast<double>(instr_capacity);
  }

  /// Field-wise equality — what the kill/resume equivalence tests assert:
  /// a resumed campaign's merged telemetry must match the uninterrupted
  /// run's bit for bit, not just its statistics.
  bool operator==(const ScheduleTelemetry&) const = default;

  ScheduleTelemetry& operator+=(const ScheduleTelemetry& other) {
    event_sweeps += other.event_sweeps;
    full_sweeps += other.full_sweeps;
    full_sweep_fallbacks += other.full_sweep_fallbacks;
    event_instrs += other.event_instrs;
    sweep_instrs += other.sweep_instrs;
    instr_capacity += other.instr_capacity;
    return *this;
  }
};

}  // namespace retscan
