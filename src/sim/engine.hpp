#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled_netlist.hpp"
#include "sim/eval_kernel.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"

namespace retscan {

/// 64-lane bit-parallel two-phase simulation engine.
///
/// Combinational settling runs on the compiled simulation core
/// (sim/compiled_netlist.hpp): the netlist is lowered once into a flat
/// instruction stream with nets renumbered in evaluation order, shared via
/// Netlist::compiled() by every engine and fault frame on the same netlist,
/// so the hot loop never touches `Cell` objects.
///
/// This is the one implementation of the library's cycle semantics —
/// combinational settling, flop/latch capture, power-domain clamping, Rdff
/// balloon-latch save/restore on RETAIN edges. Two facades instantiate it:
///
///  * Simulator — the scalar API. Values are lane-replicated (0 or ~0) so
///    every lane computes the same circuit; activity is accounted on lane 0
///    only, preserving the original scalar toggle/energy numbers bit-exactly.
///  * PackedSim — the batch API. Each lane is an independent pattern/seed
///    slot, giving 64 simulations per gate operation for fault-simulation
///    and injection campaigns.
///
/// Power-gating semantics (shared verbatim by both facades):
///  * power_off(domain): master flip-flop state in the domain is lost
///    (garbage from the Rng, zeros if null); outputs of all cells in the
///    domain read 0 while off, modelling isolation clamps.
///  * Rdff retention flops: the always-on balloon latch samples the master
///    once, on the RETAIN rising edge; on the first powered clock with
///    RETAIN falling 1->0 the master restores from the latch; while RETAIN
///    is high the master holds (clock gated). RETAIN may stay asserted for
///    arbitrarily many cycles — including across multiple power cycles —
///    without re-sampling.
class SimEngine {
 public:
  /// `activity_lanes` selects which lanes contribute to toggle counts and
  /// clocked-edge accounting (the scalar facade passes lane 0 only so that
  /// replicated lanes are not multiply counted; PackedSim passes 0, which
  /// disables accounting and lets eval() run the plain-store sweep).
  SimEngine(const Netlist& netlist, LaneWord activity_lanes);

  const Netlist& netlist() const { return *netlist_; }

  /// Zero all state and inputs, power every domain on, settle.
  void reset();
  /// Combinational settle only (no clock edge).
  void eval();
  /// One full clock cycle: eval, capture, commit, settle.
  void step();

  // --- evaluation schedule -------------------------------------------------
  /// Select how settles run (see sim/schedule.hpp). The constructor default
  /// comes from runtime_config().schedule (RETSCAN_SCHEDULE), falling back
  /// to Sweep. Switching re-arms the Auto probe and forces one full resync
  /// sweep on the next settle; values are bit-identical under every mode.
  void set_schedule(Schedule schedule);
  Schedule schedule() const { return schedule_; }
  /// Drain accumulated activity telemetry (counters reset to zero).
  ScheduleTelemetry take_schedule_telemetry();
  /// Mark the whole net state stale: the next settle runs as one full
  /// resync sweep and the Auto probe restarts. Pooled testbenches call this
  /// on construction AND on reseed so warm and fresh engines enter a shard
  /// in the identical schedule state — per-shard telemetry stays a pure
  /// function of the shard, never of workspace history (the kill/resume
  /// byte-identical contract depends on it).
  void invalidate_schedule_state();

  // --- lane-word state access --------------------------------------------
  // Net values live in a slot-indexed array (nets renumbered in evaluation
  // order by the compiled core, for hot-loop locality); the NetId accessors
  // translate at the API boundary.
  LaneWord net(NetId net) const { return net_values_[compiled_->slot(net)]; }
  void set_net(NetId net, LaneWord value) {
    const std::uint32_t s = compiled_->slot(net);
    if (!event_active()) {
      net_values_[s] = value;
      return;
    }
    // Event mode: sources seed the worklist, so writes compare-and-mark.
    // A store of the same value is a no-op either way, so this is exactly
    // the sweep-mode semantics.
    if (net_values_[s] != value) {
      net_values_[s] = value;
      mark_dirty(s);
    }
  }
  std::size_t net_count() const { return net_values_.size(); }

  /// Primary-input net by port name; throws if absent.
  NetId input_net(const std::string& port_name) const;
  /// Throws unless `net` exists and is driven by an Input cell.
  void check_input_net(NetId net) const;

  LaneWord flop(CellId id) const { return flop_state_[id]; }
  /// Write a flop's master state, re-drive sequential outputs and settle the
  /// combinational logic — like power_off/power_on, the engine is fully
  /// consistent when this returns (the seed committed without re-eval(),
  /// leaving downstream nets stale until the next step()). Batch loaders
  /// should use set_flop_raw + commit_sequential_outputs + eval instead of
  /// paying one settle per flop.
  void set_flop(CellId id, LaneWord value);
  /// Write without recommitting outputs; callers batch-loading many flops
  /// must call commit_sequential_outputs() themselves.
  void set_flop_raw(CellId id, LaneWord value) { flop_state_[id] = value; }

  LaneWord retention(CellId id) const { return retention_state_[id]; }
  void set_retention(CellId id, LaneWord value) { retention_state_[id] = value; }
  void xor_retention(CellId id, LaneWord mask) { retention_state_[id] ^= mask; }

  /// Re-drive every sequential (and constant) output net from its committed
  /// state, applying domain clamps.
  void commit_sequential_outputs();

  // --- power domains ------------------------------------------------------
  /// Cut power in all lanes. Master state of sequential cells in the domain
  /// becomes garbage: per-lane random bits when `per_lane_garbage`, else one
  /// Bernoulli draw per cell replicated across lanes (the scalar contract,
  /// preserving the facade's Rng call sequence). Zeros when rng is null.
  void power_off(DomainId domain, Rng* rng, bool per_lane_garbage);
  void power_on(DomainId domain);
  bool domain_powered(DomainId domain) const;
  std::size_t domain_count() const { return domain_powered_.size(); }

  // --- precomputed structure ---------------------------------------------
  /// Flop cells (Dff/Sdff/Rdff) in netlist order, cached at construction.
  const std::vector<CellId>& flop_cells() const { return flop_cells_; }
  /// Rdff cells in netlist order, cached at construction.
  const std::vector<CellId>& rdff_cells() const { return rdff_cells_; }

  // --- activity accounting -------------------------------------------------
  void reset_activity();
  std::uint64_t steps() const { return steps_; }
  std::uint64_t clocked_cell_edges() const { return clocked_cell_edges_; }
  const std::vector<std::uint64_t>& toggles() const { return toggles_; }

 private:
  struct SeqCell {
    CellId id;
    CellType type;
    std::uint32_t out;  // output value slot
    DomainId domain;
    // Pin value slots (unused pins stay 0 and are never read for the type).
    std::uint32_t d = 0;
    std::uint32_t si = 0;
    std::uint32_t se = 0;
    std::uint32_t retain = 0;  // Rdff RETAIN or LatchL EN
  };

  void drive_slot(std::uint32_t slot, CellId cell, LaneWord value);

  // --- event-schedule internals -------------------------------------------
  /// True when the next settle should run the dirty-net worklist (explicit
  /// Event, or Auto still probing / committed to the event path).
  bool event_active() const {
    return schedule_ == Schedule::Event ||
           (schedule_ == Schedule::Auto && auto_use_event_);
  }
  void mark_dirty(std::uint32_t slot) {
    if (!slot_dirty_[slot]) {
      slot_dirty_[slot] = 1;
      dirty_slots_.push_back(slot);
    }
  }
  void clear_dirty();
  /// The unconditional compiled sweep (the PR 3 settle body).
  void full_sweep();
  /// Re-arm the Auto probe window (reset / schedule change).
  void rearm_auto_probe();

  const Netlist* netlist_;
  std::shared_ptr<const CompiledNetlist> compiled_;
  LaneWord activity_lanes_;

  // Structure precomputed once at construction: the per-cycle loops never
  // re-scan cell_count() or re-branch on non-sequential cells. The
  // combinational gates live in the compiled instruction stream.
  std::vector<SeqCell> seq_cells_;  // flops + latches in id order
  std::vector<std::pair<std::uint32_t, CellId>> const1_slots_;
  std::vector<CellId> flop_cells_;
  std::vector<CellId> rdff_cells_;
  std::vector<std::vector<CellId>> domain_seq_cells_;  // seq cells per domain

  std::vector<LaneWord> net_values_;       // indexed by value slot
  std::vector<LaneWord> flop_state_;       // indexed by CellId
  std::vector<LaneWord> retention_state_;  // indexed by CellId (Rdff only)
  std::vector<LaneWord> prev_retain_;      // indexed by CellId (Rdff only)
  std::vector<LaneWord> domain_powered_;   // 0 or ~0 per domain
  bool all_powered_ = true;                // fast-path flag for eval()
  std::vector<LaneWord> next_state_;       // capture scratch, per seq cell
  std::vector<LaneWord> write_mask_;       // capture scratch, per seq cell
  std::unordered_map<std::string, NetId> input_by_name_;

  std::vector<std::uint64_t> toggles_;  // per cell output, masked lanes only
  std::uint64_t steps_ = 0;
  std::uint64_t clocked_cell_edges_ = 0;

  // --- event-schedule state ------------------------------------------------
  Schedule schedule_ = Schedule::Sweep;
  /// Slots changed since the last settle (worklist seed) + membership flags.
  std::vector<std::uint32_t> dirty_slots_;
  std::vector<std::uint8_t> slot_dirty_;
  CompiledNetlist::EventWorkspace event_ws_;
  /// Worklist budget per settle: crossing it falls back to one full sweep.
  std::size_t event_budget_ = 0;
  /// Forces the next settle to be a full resync sweep — set whenever the
  /// dirty set cannot name everything stale (reset, power transitions,
  /// schedule switches).
  bool event_needs_full_ = true;
  // Auto probe: start on the event path, measure a window of settles, then
  // commit to Event or Sweep for the rest of the run (until reset()).
  static constexpr std::uint32_t kAutoProbeWindow = 64;
  bool auto_use_event_ = true;
  bool auto_locked_ = false;
  std::uint32_t auto_probe_left_ = kAutoProbeWindow;
  std::uint64_t auto_event_instrs_ = 0;
  std::uint64_t auto_capacity_ = 0;
  std::uint64_t auto_fallbacks_ = 0;
  ScheduleTelemetry telemetry_;
};

}  // namespace retscan
