#include "sim/compiled_netlist.hpp"

#include <algorithm>

#include "sim/artifact_store.hpp"

namespace retscan {

namespace {

CompiledOp lower_op(CellType type) {
  switch (type) {
    case CellType::Buf: return CompiledOp::Buf;
    case CellType::Not: return CompiledOp::Not;
    case CellType::And2: return CompiledOp::And2;
    case CellType::Or2: return CompiledOp::Or2;
    case CellType::Xor2: return CompiledOp::Xor2;
    case CellType::Nand2: return CompiledOp::Nand2;
    case CellType::Nor2: return CompiledOp::Nor2;
    case CellType::Xnor2: return CompiledOp::Xnor2;
    case CellType::Mux2: return CompiledOp::Mux2;
    default:
      RETSCAN_CHECK(false, "CompiledNetlist: not a compilable gate");
      return CompiledOp::Buf;
  }
}

}  // namespace

CompiledNetlist::CompiledNetlist(const Netlist& netlist) {
  const std::size_t net_count = netlist.net_count();
  constexpr std::uint32_t kUnassigned = ~std::uint32_t{0};
  slot_of_net_.assign(net_count, kUnassigned);
  net_of_slot_.resize(net_count);

  const std::vector<CellId>& order = netlist.combinational_order();

  // Mark which nets are driven by compiled instructions; everything else is
  // a source slot (inputs, constants, sequential outputs, dangling nets).
  std::vector<bool> compiled_out(net_count, false);
  std::size_t gate_count = 0;
  for (const CellId id : order) {
    const Cell& c = netlist.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    compiled_out[c.out] = true;
    ++gate_count;
  }

  // Slot renumbering: sources first (in NetId order), then each gate output
  // in topological order — so instruction operands always sit below the
  // output slot and a sweep touches the value array front-to-back.
  std::uint32_t next_slot = 0;
  for (NetId net = 0; net < net_count; ++net) {
    if (!compiled_out[net]) {
      slot_of_net_[net] = next_slot;
      net_of_slot_[next_slot] = net;
      ++next_slot;
    }
  }
  for (const CellId id : order) {
    const Cell& c = netlist.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    slot_of_net_[c.out] = next_slot;
    net_of_slot_[next_slot] = c.out;
    ++next_slot;
  }
  RETSCAN_CHECK(next_slot == net_count, "CompiledNetlist: slot renumbering leak");

  // Lower the instruction stream.
  instrs_.reserve(gate_count);
  DomainId max_domain = 0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    max_domain = std::max(max_domain, netlist.cell(id).domain);
  }
  domain_count_ = static_cast<std::size_t>(max_domain) + 1;
  for (const CellId id : order) {
    const Cell& c = netlist.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    CompiledInstr in;
    in.op = lower_op(c.type);
    in.cell = id;
    in.domain = c.domain;
    in.out = slot_of_net_[c.out];
    if (c.fanin.size() > 0) in.in0 = slot_of_net_[c.fanin[0]];
    if (c.fanin.size() > 1) in.in1 = slot_of_net_[c.fanin[1]];
    if (c.fanin.size() > 2) in.in2 = slot_of_net_[c.fanin[2]];
    instrs_.push_back(in);
  }

  // Readers CSR over slots, for cone extraction.
  reader_offsets_.assign(net_count + 1, 0);
  auto each_operand = [&](const CompiledInstr& in, auto&& fn) {
    fn(in.in0);
    if (in.op != CompiledOp::Buf && in.op != CompiledOp::Not) {
      fn(in.in1);
    }
    if (in.op == CompiledOp::Mux2) {
      fn(in.in2);
    }
  };
  for (const CompiledInstr& in : instrs_) {
    each_operand(in, [&](std::uint32_t s) { ++reader_offsets_[s + 1]; });
  }
  for (std::size_t s = 0; s < net_count; ++s) {
    reader_offsets_[s + 1] += reader_offsets_[s];
  }
  reader_instrs_.resize(reader_offsets_.back());
  std::vector<std::uint32_t> cursor(reader_offsets_.begin(), reader_offsets_.end() - 1);
  for (std::uint32_t i = 0; i < instrs_.size(); ++i) {
    each_operand(instrs_[i],
                 [&](std::uint32_t s) { reader_instrs_[cursor[s]++] = i; });
  }

  // Topological levels for the event scheduler: source slots sit at level 0,
  // each instruction one above its deepest operand. The stream is already
  // topological, so one forward pass suffices.
  std::vector<std::uint32_t> slot_level(net_count, 0);
  instr_level_.resize(instrs_.size());
  for (std::uint32_t i = 0; i < instrs_.size(); ++i) {
    std::uint32_t level = 0;
    each_operand(instrs_[i], [&](std::uint32_t s) {
      level = std::max(level, slot_level[s]);
    });
    instr_level_[i] = level;
    slot_level[instrs_[i].out] = level + 1;
    level_count_ = std::max(level_count_, static_cast<std::size_t>(level) + 1);
  }
}

void CompiledNetlist::eval_full(LaneWord* values) const {
  for (const CompiledInstr& in : instrs_) {
    values[in.out] = eval_instr(in, values);
  }
}

void CompiledNetlist::eval_full_clamped(LaneWord* values,
                                        const LaneWord* domain_clamps) const {
  for (const CompiledInstr& in : instrs_) {
    values[in.out] = eval_instr(in, values) & domain_clamps[in.domain];
  }
}

void CompiledNetlist::eval_full(LaneBlock* values) const {
  for (const CompiledInstr& in : instrs_) {
    values[in.out] = eval_instr(in, values);
  }
}

void CompiledNetlist::eval_full_clamped(LaneBlock* values,
                                        const LaneWord* domain_clamps) const {
  for (const CompiledInstr& in : instrs_) {
    values[in.out] = eval_instr(in, values) & block_fill(domain_clamps[in.domain]);
  }
}

CompiledNetlist::Cone CompiledNetlist::build_cone(NetId source) const {
  return build_cone(std::vector<NetId>{source});
}

CompiledNetlist::Cone CompiledNetlist::build_cone(
    const std::vector<NetId>& sources) const {
  Cone cone;
  cone.source_slots.reserve(sources.size());
  for (const NetId source : sources) {
    cone.source_slots.push_back(slot(source));
  }
  std::vector<bool> in_cone(instrs_.size(), false);
  // Worklist BFS over the readers CSR; the stream is topological, so the
  // collected indices just need one sort to become an evaluation slice.
  std::vector<std::uint32_t> work;
  const auto push_readers = [&](std::uint32_t s) {
    for (std::uint32_t r = reader_offsets_[s]; r < reader_offsets_[s + 1]; ++r) {
      const std::uint32_t i = reader_instrs_[r];
      if (!in_cone[i]) {
        in_cone[i] = true;
        work.push_back(i);
      }
    }
  };
  for (const std::uint32_t s : cone.source_slots) {
    push_readers(s);
  }
  for (std::size_t w = 0; w < work.size(); ++w) {
    push_readers(instrs_[work[w]].out);
  }
  std::sort(work.begin(), work.end());
  cone.instrs = std::move(work);
  cone.touched_slots = cone.source_slots;
  cone.touched_slots.reserve(cone.instrs.size() + cone.source_slots.size());
  for (const std::uint32_t i : cone.instrs) {
    cone.touched_slots.push_back(instrs_[i].out);
  }
  return cone;
}

void CompiledNetlist::reference_eval(const Netlist& netlist,
                                     std::vector<LaneWord>& values_by_net) {
  RETSCAN_CHECK(values_by_net.size() == netlist.net_count(),
                "CompiledNetlist::reference_eval: value array size mismatch");
  for (const CellId id : netlist.combinational_order()) {
    const Cell& c = netlist.cell(id);
    if (c.type == CellType::Output) {
      continue;
    }
    values_by_net[c.out] = eval_comb_word(c, values_by_net);
  }
}

// Defined here rather than in netlist.cpp so the netlist layer never includes
// sim headers: the sim layer owns the compiled core and implements the
// cache accessor the netlist declares.
std::shared_ptr<const CompiledNetlist> Netlist::compiled() const {
  if (!compiled_) {
    // Artifact-store fast path (sim/artifact_store.hpp): when a store is
    // installed — `retscan serve --cache-dir`, RETSCAN_ARTIFACT_DIR — a
    // prior process's lowering is deserialized instead of recompiled. The
    // loaded stream is keyed by the structure fingerprint, so it is
    // byte-identical to what the constructor would produce.
    if (std::shared_ptr<CompiledArtifactStore> store = installed_artifact_store()) {
      compiled_ = store->load_or_compile(*this);
    } else {
      compiled_ = std::make_shared<const CompiledNetlist>(*this);
    }
  }
  return compiled_;
}

}  // namespace retscan
